#!/usr/bin/env bash
# Reproduce the perf trajectory with one command: build every bench in
# Release, run them from the repo root, and collect one BENCH_<name>.json
# per bench at the repo root (the checked-in baselines live there).
#
#   scripts/bench_all.sh            # all benches
#   scripts/bench_all.sh decoder    # only benches whose name matches
#
# Collection works for both emission styles: benches that write their own
# BENCH_*.json land it in the repo root because we run them from there;
# for the rest, the `JSON [...]` stdout line every bench prints via
# bench_util.hpp's JsonRecords is captured and written out. bench_sketch
# (Google-Benchmark-based, no JSON line) is skipped.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

filter="${1:-}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake --preset release
cmake --build --preset release -j "$jobs"

ran=0
for bin in build/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  case "$name" in
    *.* ) continue ;;          # skip build droppings (bench_foo.d etc.)
    bench_sketch ) echo "--- skipping $name (no JSON emitter)"; continue ;;
  esac
  if [ -n "$filter" ] && [[ "$name" != *"$filter"* ]]; then
    continue
  fi
  echo "=== $name"
  out="$("./$bin" | tee /dev/fd/2)" || { echo "$name failed" >&2; exit 1; }
  json="$(printf '%s\n' "$out" | sed -n 's/^JSON //p' | tail -1)"
  if [ -n "$json" ]; then
    printf '%s\n' "$json" > "BENCH_${name#bench_}.json"
    echo "--- wrote BENCH_${name#bench_}.json"
  fi
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "no bench matched filter '$filter'" >&2
  exit 1
fi
echo "bench_all: $ran benches done; BENCH_*.json collected in $repo"
