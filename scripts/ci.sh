#!/usr/bin/env bash
# CI entry point: release build + tests, then Debug+ASan/UBSan build +
# tests. Any ctest failure in any leg fails the script (set -e), so a
# regression in either preset is a CI regression. Run from anywhere;
# builds land in <repo>/build and <repo>/build-asan.
#
#   scripts/ci.sh             # both presets, full suite
#   scripts/ci.sh release     # just the release leg
#   scripts/ci.sh asan        # just the sanitizer leg
#   scripts/ci.sh store       # fast loop: asan build + run of the label
#                             # store / differential stress / decoder
#                             # workspace suites only (adversarial inputs
#                             # and the copy-on-write decoder state are
#                             # what most need the sanitizers)
#   scripts/ci.sh store-v2    # format-v2 focused asan leg: v1 fixture
#                             # load + v2 round-trip + vertex-fault
#                             # parity (fault-model suites) plus an
#                             # end-to-end ftc_store build/inspect/query
#                             # exercise with --vertex-faults
#   scripts/ci.sh bench-smoke # Release build of bench_decoder_hotpath +
#                             # bench_vertex_faults + bench_shard_swap,
#                             # tiny-size runs, JSON outputs validated —
#                             # keeps bench binaries from silently rotting
#   scripts/ci.sh store-shard # sharded-store leg: asan run of the
#                             # sharded/manifest + live-swap suites, then
#                             # an end-to-end CLI exercise — shard a
#                             # fixture store, reload it via the
#                             # manifest, parity-check 1k queries against
#                             # the unsharded container (lazy AND
#                             # prefetched: all three answer streams must
#                             # be byte-identical), merge back
#                             # byte-identically, run swap-demo with and
#                             # without --prefetch
#   scripts/ci.sh store-delta # deletion-journal / delta-push leg: asan
#                             # run of the journal + sharded + swap
#                             # suites (the adversarial journal corpus
#                             # wants the sanitizers), then a CLI
#                             # end-to-end: journal appends must answer
#                             # exactly like explicit query faults,
#                             # over-budget queries must be refused, and
#                             # a zero-delta push must reuse every shard
#                             # and swap in with every shard adopted
#   scripts/ci.sh torture     # fault-injection / crash-consistency leg:
#                             # asan run of the failpoint + SIGBUS +
#                             # torture-sweep suites, then a CLI drill —
#                             # env-armed ENOSPC aborts a push with the
#                             # serving generation left fsck-clean, and a
#                             # truncated shard makes fsck exit 2 naming
#                             # exactly that shard
#   scripts/ci.sh remote      # remote serving tier leg: asan run of the
#                             # shard-cache + remote-store suites, then a
#                             # loopback CLI e2e — ftc_store serve over a
#                             # sharded store, 1k-query parity remote vs
#                             # local, cache eviction under a tiny byte
#                             # budget, env-armed transport failpoints
#                             # (retry-then-succeed, FTC_RETRY_ATTEMPTS
#                             # tuning, quarantine on a dead origin
#                             # shard), warm-cache serving through origin
#                             # damage, and explicit fsck exit codes
#                             # (0 clean / 2 damaged)
#   scripts/ci.sh tsan        # ThreadSanitizer leg: tsan preset build +
#                             # run of the concurrency-heavy suites
#                             # (sharded prefetch races, live epoch swap,
#                             # shard-cache fetch/evict races, parallel
#                             # builder dispatches)
#   scripts/ci.sh build-parallel # parallel-build determinism leg: asan
#                             # run of the byte-identity suite
#                             # (test_parallel_build) + the randomized
#                             # parallel-vs-serial differential, then a
#                             # CLI e2e — `build --threads 8` vs
#                             # `--threads 1`, cmp byte-identical, for
#                             # all three backends
#   scripts/ci.sh docs        # documentation leg: every relative link in
#                             # README.md and docs/*.md must resolve to a
#                             # file in the repo (dead links fail)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

jobs="$(nproc 2>/dev/null || echo 2)"

if [ "${1:-}" = "store" ]; then
  echo "=== store/stress focused leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_label_store test_stress_differential \
    test_decoder_workspace ftc_store
  ctest --preset asan \
    -R 'test_label_store|test_stress_differential|test_decoder_workspace' \
    -j "$jobs"
  echo "ci: store/stress/workspace suites green under asan"
  exit 0
fi

if [ "${1:-}" = "store-v2" ]; then
  echo "=== store format-v2 / fault-model leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_label_store test_stress_differential test_fault_spec \
    ftc_store
  # v1 fixture compat, v2 adjacency round-trip + adversarial corpus, and
  # the vertex/mixed-fault differential sweeps, all under asan.
  ctest --preset asan \
    -R 'test_label_store|test_stress_differential|test_fault_spec' \
    -j "$jobs"
  # End-to-end CLI exercise: build a v2 store, inspect it, serve a
  # vertex-fault query, and confirm the v1 fixture still loads but
  # refuses vertex faults with the typed capability error (exit 2).
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  build-asan/ftc_store build --out "$tmp/v2.ftcs" --family grid \
    --rows 6 --cols 6 --backend core-ftc --f 8 >/dev/null
  build-asan/ftc_store inspect "$tmp/v2.ftcs" | grep -q 'format version     2'
  build-asan/ftc_store inspect "$tmp/v2.ftcs" | grep -q 'supported (adjacency'
  out="$(build-asan/ftc_store query "$tmp/v2.ftcs" --faults 1 \
    --vertex-faults 7 --pairs 0:35,7:7)"
  # Anchored: 'connected' is a substring of 'disconnected'. Deleting one
  # interior vertex (+ one edge) leaves the 6x6 grid connected, and a
  # deleted vertex stays connected to itself.
  printf '%s\n' "$out" | grep -qx '0 35 connected'
  printf '%s\n' "$out" | grep -qx '7 7 connected'
  build-asan/ftc_store inspect tests/data/v1_core_ftc.ftcs \
    | grep -q 'format version     1'
  if build-asan/ftc_store query tests/data/v1_core_ftc.ftcs \
       --vertex-faults 1 --pairs 0:2 2>/dev/null; then
    echo "ci: v1 store unexpectedly served a vertex-fault query" >&2
    exit 1
  fi
  echo "ci: store-v2 leg green (fixture compat + v2 round-trip + CLI)"
  exit 0
fi

if [ "${1:-}" = "store-shard" ]; then
  echo "=== sharded store / live swap leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_sharded_store test_store_swap ftc_store
  ctest --preset asan -R 'test_sharded_store|test_store_swap' -j "$jobs"
  # End-to-end CLI exercise: build a container, shard it, reload through
  # the manifest, and parity-check 1k queries (mixed edge + vertex
  # faults) against the unsharded store; then merge back byte-identically
  # and run the live-swap demo.
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  build-asan/ftc_store build --out "$tmp/flat.ftcs" --family grid \
    --rows 12 --cols 12 --backend core-ftc --f 8 >/dev/null
  build-asan/ftc_store shard "$tmp/flat.ftcs" --out "$tmp/labels.ftcm" \
    --shards 4 >/dev/null
  build-asan/ftc_store inspect "$tmp/labels.ftcm" | grep -q 'sharded manifest'
  build-asan/ftc_store inspect "$tmp/labels.ftcm" \
    | grep -q 'shards             4'
  # 1000 deterministic query pairs over the 144-vertex grid (no python
  # dependency on this leg).
  pairs=""
  for i in $(seq 0 999); do
    pairs+="$(( (i * 37 + 11) % 144 )):$(( (i * 53 + 29) % 144 )),"
  done
  pairs="${pairs%,}"
  build-asan/ftc_store query "$tmp/flat.ftcs" --faults 3,40 \
    --vertex-faults 77 --pairs "$pairs" > "$tmp/flat.out"
  build-asan/ftc_store query "$tmp/labels.ftcm" --faults 3,40 \
    --vertex-faults 77 --pairs "$pairs" > "$tmp/sharded.out"
  if ! cmp -s "$tmp/flat.out" "$tmp/sharded.out"; then
    echo "ci: sharded store answers diverge from the unsharded store" >&2
    exit 1
  fi
  [ "$(wc -l < "$tmp/sharded.out")" = "1000" ]
  # Prefetch parity: the warmed route-table fast path must answer
  # byte-identically to the lazy-open path (prefetch diagnostics go to
  # stderr, so stdout is comparable as-is).
  build-asan/ftc_store query "$tmp/labels.ftcm" --prefetch=4 --faults 3,40 \
    --vertex-faults 77 --pairs "$pairs" > "$tmp/prefetched.out" \
    2> "$tmp/prefetch.log"
  if ! cmp -s "$tmp/sharded.out" "$tmp/prefetched.out"; then
    echo "ci: prefetched answers diverge from lazy-open answers" >&2
    exit 1
  fi
  grep -q 'prefetch: 4 shard(s) newly mapped' "$tmp/prefetch.log"
  build-asan/ftc_store inspect "$tmp/labels.ftcm" --verbose \
    | grep -q 'route table resolved'
  build-asan/ftc_store merge "$tmp/labels.ftcm" --out "$tmp/merged.ftcs" \
    >/dev/null
  cmp "$tmp/flat.ftcs" "$tmp/merged.ftcs"
  build-asan/ftc_store swap-demo --n 64 --m 80 --f 3 --swaps 4 \
    --queries 64 >/dev/null
  build-asan/ftc_store swap-demo --n 64 --m 80 --f 3 --swaps 4 \
    --queries 64 --prefetch >/dev/null 2>&1
  echo "ci: store-shard leg green (suites + 1k-query CLI parity incl. prefetch + merge + swap-demo)"
  exit 0
fi

if [ "${1:-}" = "store-delta" ]; then
  echo "=== deletion journal / delta push leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_journal test_sharded_store test_store_swap ftc_store
  ctest --preset asan -R 'test_journal|test_sharded_store|test_store_swap' \
    -j "$jobs"
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  build-asan/ftc_store build --out "$tmp/flat.ftcs" --family grid \
    --rows 12 --cols 12 --backend core-ftc --f 8 >/dev/null
  # Journal lifecycle: first append needs --budget, later ones inherit
  # it; idempotent and incremental epochs are covered by the suite, the
  # CLI leg checks the served answers.
  build-asan/ftc_store journal append "$tmp/flat.ftcs" --edges 3,40 \
    --budget 8 | grep -q 'epoch 1, 2/8 deletions journaled'
  build-asan/ftc_store journal append "$tmp/flat.ftcs" --edges 77 \
    | grep -q 'epoch 2, 3/8 deletions journaled'
  build-asan/ftc_store inspect "$tmp/flat.ftcs" \
    | grep -q 'journal            epoch 2: 3/8 deletions'
  pairs=""
  for i in $(seq 0 499); do
    pairs+="$(( (i * 37 + 11) % 144 )):$(( (i * 53 + 29) % 144 )),"
  done
  pairs="${pairs%,}"
  # Replay parity: the journal folded into every query must answer
  # byte-identically to the same deletions passed as explicit faults —
  # with and without extra query-time faults on top.
  build-asan/ftc_store query "$tmp/flat.ftcs" --pairs "$pairs" \
    > "$tmp/journaled.out"
  build-asan/ftc_store query "$tmp/flat.ftcs" --ignore-journal \
    --faults 3,40,77 --pairs "$pairs" > "$tmp/explicit.out"
  cmp "$tmp/journaled.out" "$tmp/explicit.out"
  build-asan/ftc_store query "$tmp/flat.ftcs" --faults 100,101 \
    --pairs "$pairs" > "$tmp/journaled_plus.out"
  build-asan/ftc_store query "$tmp/flat.ftcs" --ignore-journal \
    --faults 3,40,77,100,101 --pairs "$pairs" > "$tmp/explicit_plus.out"
  cmp "$tmp/journaled_plus.out" "$tmp/explicit_plus.out"
  # 3 journaled + 6 query faults overflows f=8: must be refused, and
  # --ignore-journal must make the same request legal again.
  if build-asan/ftc_store query "$tmp/flat.ftcs" \
       --faults 100,101,102,103,104,105 --pairs 0:1 >/dev/null 2>&1; then
    echo "ci: over-budget journal+fault query was not refused" >&2
    exit 1
  fi
  build-asan/ftc_store query "$tmp/flat.ftcs" --ignore-journal \
    --faults 100,101,102,103,104,105 --pairs 0:1 >/dev/null
  build-asan/ftc_store journal compact "$tmp/flat.ftcs" \
    | grep -q 'compacted .* 2 -> 1 frames'
  build-asan/ftc_store query "$tmp/flat.ftcs" --pairs "$pairs" \
    > "$tmp/compacted.out"
  cmp "$tmp/journaled.out" "$tmp/compacted.out"
  # Delta push: a full push seeds epoch 1; pushing the same store over
  # it must reuse every shard by hard link and bump the epoch.
  build-asan/ftc_store push "$tmp/flat.ftcs" --out "$tmp/gen.ftcm" \
    --shards 4 | grep -q 'full push .* epoch 1, 4 shards'
  build-asan/ftc_store push "$tmp/flat.ftcs" --out "$tmp/gen.ftcm" \
    | grep -q 'epoch 2: 4/4 shards reused, 0 written'
  build-asan/ftc_store inspect "$tmp/gen.ftcm" \
    | grep -q 'manifest epoch     2'
  # Live cut-over: a zero-delta generation swap must adopt all four
  # serving shard maps and change no answers.
  build-asan/ftc_store swap-demo --delta --n 64 --m 80 --f 3 \
    --queries 64 | grep -q '4/4 shards adopted, 0 newly mapped'
  echo "ci: store-delta leg green (suites + journal parity + capacity refusal + delta push CLI)"
  exit 0
fi

if [ "${1:-}" = "torture" ]; then
  echo "=== fault-injection / crash-consistency torture leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_fault_injection test_torture ftc_store
  # The store's own SIGBUS translator replaces ASan's handler; tell ASan
  # to stand down on SIGBUS so guarded mapped reads stay recoverable.
  ASAN_OPTIONS="${ASAN_OPTIONS:+$ASAN_OPTIONS:}handle_sigbus=0" \
    ctest --preset asan -R 'test_fault_injection|test_torture' -j "$jobs"
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  build-asan/ftc_store build --out "$tmp/flat.ftcs" --family grid \
    --rows 12 --cols 12 --backend core-ftc --f 8 >/dev/null
  build-asan/ftc_store push "$tmp/flat.ftcs" --out "$tmp/gen.ftcm" \
    --shards 4 >/dev/null
  build-asan/ftc_store fsck "$tmp/gen.ftcm" | grep -q ': clean'
  # Env-armed failpoint drill: the injected ENOSPC must abort the push
  # typed, and the serving generation must stay intact and fsck-clean.
  if FTC_FAILPOINTS='store.write.fsync=once:ENOSPC' \
       build-asan/ftc_store push "$tmp/flat.ftcs" --out "$tmp/gen.ftcm" \
       >/dev/null 2>&1; then
    echo "ci: push with injected ENOSPC unexpectedly succeeded" >&2
    exit 1
  fi
  build-asan/ftc_store fsck "$tmp/gen.ftcm" > "$tmp/fsck_after_abort.out"
  grep -q 'manifest ok (epoch 1' "$tmp/fsck_after_abort.out"
  grep -q ': clean' "$tmp/fsck_after_abort.out"
  # A clean push still lands on the untouched parent.
  build-asan/ftc_store push "$tmp/flat.ftcs" --out "$tmp/gen.ftcm" \
    | grep -q 'epoch 2: 4/4 shards reused, 0 written'
  build-asan/ftc_store fsck "$tmp/gen.ftcm" | grep -q ': clean'
  # Damage one shard behind the manifest: fsck must exit 2 and name
  # exactly that shard, with every other shard still verifying.
  : > "$tmp/gen.ftcm.shard2.ftcs"
  if build-asan/ftc_store fsck "$tmp/gen.ftcm" > "$tmp/fsck.out"; then
    echo "ci: fsck of a damaged store exited 0" >&2
    exit 1
  fi
  grep -q 'shard 2 .*: FAILED' "$tmp/fsck.out"
  grep -q ': 1 damaged' "$tmp/fsck.out"
  [ "$(grep -c ': FAILED' "$tmp/fsck.out")" = "1" ]
  grep -q 'shard 0 .*: ok' "$tmp/fsck.out"
  grep -q 'shard 3 .*: ok' "$tmp/fsck.out"
  echo "ci: torture leg green (suites + env failpoint drill + fsck triage)"
  exit 0
fi

if [ "${1:-}" = "remote" ]; then
  echo "=== remote serving tier leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_shard_cache test_remote_store ftc_store
  # The suites carry the fault ladder under asan: digest-refusal on a
  # corrupt origin, retry on transient EIO, quarantine + DegradedError on
  # a persistent one WHILE warm shards keep answering.
  ctest --preset asan -R 'test_shard_cache|test_remote_store' -j "$jobs"

  tmp="$(mktemp -d)"
  server_pid=""
  cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$tmp"
  }
  trap cleanup EXIT
  build-asan/ftc_store build --out "$tmp/flat.ftcs" --family grid \
    --rows 12 --cols 12 --backend core-ftc --f 8 >/dev/null
  mkdir "$tmp/srv"
  build-asan/ftc_store shard "$tmp/flat.ftcs" --out "$tmp/srv/labels.ftcm" \
    --shards 4 >/dev/null
  # Explicit fsck exit-code contract on the healthy store: 0 means clean.
  rc=0; build-asan/ftc_store fsck "$tmp/srv/labels.ftcm" >/dev/null || rc=$?
  [ "$rc" = "0" ]

  build-asan/ftc_store serve "$tmp/srv" --port 0 > "$tmp/serve.out" &
  server_pid=$!
  for _ in $(seq 1 100); do
    grep -q '^serving ' "$tmp/serve.out" 2>/dev/null && break
    sleep 0.05
  done
  url="$(sed -n 's/.* on \(http:[^ ]*\) .*/\1/p' "$tmp/serve.out")"
  [ -n "$url" ]
  manifest_url="${url}labels.ftcm"

  pairs=""
  for i in $(seq 0 999); do
    pairs+="$(( (i * 37 + 11) % 144 )):$(( (i * 53 + 29) % 144 )),"
  done
  pairs="${pairs%,}"
  build-asan/ftc_store query "$tmp/srv/labels.ftcm" --faults 3,40 \
    --vertex-faults 77 --pairs "$pairs" > "$tmp/local.out"
  [ "$(wc -l < "$tmp/local.out")" = "1000" ]

  # Cold remote serve: every shard crosses loopback once, digest-verified
  # into the cache, and the 1k answers must be byte-identical to local.
  FTC_CACHE_DIR="$tmp/cache" build-asan/ftc_store query "$manifest_url" \
    --faults 3,40 --vertex-faults 77 --pairs "$pairs" > "$tmp/remote.out"
  cmp "$tmp/local.out" "$tmp/remote.out"
  [ "$(ls "$tmp/cache"/shard-*.ftcs | wc -l)" = "4" ]
  # Warm re-serve over the populated cache: parity again, no new shards.
  FTC_CACHE_DIR="$tmp/cache" build-asan/ftc_store query "$manifest_url" \
    --faults 3,40 --vertex-faults 77 --pairs "$pairs" > "$tmp/warm.out"
  cmp "$tmp/local.out" "$tmp/warm.out"
  [ "$(ls "$tmp/cache"/shard-*.ftcs | wc -l)" = "4" ]

  # Eviction drill: a budget below one shard keeps at most the most
  # recent fetch resident — answers must not change.
  FTC_CACHE_DIR="$tmp/cache_tiny" FTC_CACHE_BYTES=4096 \
    build-asan/ftc_store query "$manifest_url" --faults 3,40 \
    --vertex-faults 77 --pairs "$pairs" > "$tmp/evicted.out"
  cmp "$tmp/local.out" "$tmp/evicted.out"
  [ "$(ls "$tmp/cache_tiny"/shard-*.ftcs | wc -l)" = "1" ]

  # Transport retry drill: one injected EIO on a socket read is absorbed
  # by the retry policy; answers stay byte-identical.
  FTC_CACHE_DIR="$tmp/cache_retry" \
    FTC_FAILPOINTS='remote.read=once:EIO' \
    build-asan/ftc_store query "$manifest_url" --faults 3,40 \
    --vertex-faults 77 --pairs "$pairs" > "$tmp/retried.out"
  cmp "$tmp/local.out" "$tmp/retried.out"
  # The same fault with retries tuned down to a single attempt via the
  # environment must surface as a typed store error (exit 2).
  rc=0
  FTC_CACHE_DIR="$tmp/cache_noretry" FTC_RETRY_ATTEMPTS=1 \
    FTC_FAILPOINTS='remote.read=once:EIO' \
    build-asan/ftc_store query "$manifest_url" --faults 3,40 \
    --pairs 0:1 >/dev/null 2> "$tmp/noretry.err" || rc=$?
  [ "$rc" = "2" ]
  grep -q 'remote read failed' "$tmp/noretry.err"

  # Degraded serving drill: drop one shard from the origin. Queries are
  # lazy, so a cold cache still answers pairs in the healthy shards'
  # ranges, while a pair needing the dead shard (vertex 80 lives in
  # shard 2 of 4 over 144 vertices) gets the typed quarantine (exit 2).
  # A warm cache keeps answering the full 1k parity stream — the origin
  # is damaged but every shard is already local.
  rm "$tmp/srv/labels.ftcm.shard2.ftcs"
  FTC_CACHE_DIR="$tmp/cache_cold2" build-asan/ftc_store query \
    "$manifest_url" --faults 3,40 --pairs 0:1 >/dev/null
  rc=0
  FTC_CACHE_DIR="$tmp/cache_cold2" build-asan/ftc_store query \
    "$manifest_url" --faults 3,40 --pairs 80:1 \
    >/dev/null 2> "$tmp/degraded.err" || rc=$?
  [ "$rc" = "2" ]
  grep -q 'quarantined' "$tmp/degraded.err"
  grep -q 'remote object not found' "$tmp/degraded.err"
  FTC_CACHE_DIR="$tmp/cache" build-asan/ftc_store query "$manifest_url" \
    --faults 3,40 --vertex-faults 77 --pairs "$pairs" > "$tmp/survivor.out"
  cmp "$tmp/local.out" "$tmp/survivor.out"

  # Explicit fsck exit-code contract on the damaged store: 2, naming it.
  rc=0; build-asan/ftc_store fsck "$tmp/srv/labels.ftcm" \
    > "$tmp/fsck.out" 2>&1 || rc=$?
  [ "$rc" = "2" ]
  grep -q 'shard 2 .*: FAILED' "$tmp/fsck.out"

  kill "$server_pid"
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
  echo "ci: remote leg green (suites + loopback parity + eviction + retry env + degraded serving + fsck exit codes)"
  exit 0
fi

if [ "${1:-}" = "tsan" ]; then
  echo "=== concurrency leg (tsan) ==="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" \
    --target test_sharded_store test_store_swap test_shard_cache \
    test_parallel_build
  ctest --preset tsan \
    -R 'test_sharded_store|test_store_swap|test_shard_cache|test_parallel_build' \
    -j "$jobs"
  echo "ci: sharded prefetch + live-swap + shard-cache + parallel-build suites green under tsan"
  exit 0
fi

if [ "${1:-}" = "build-parallel" ]; then
  echo "=== parallel build determinism leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_parallel_build test_stress_differential ftc_store
  # The byte-identity suite (flat + sharded stores across thread counts,
  # all backends) and the randomized parallel-vs-serial differential
  # sweep, both under asan.
  ctest --preset asan -R 'test_parallel_build|test_stress_differential' \
    -j "$jobs"
  # CLI end-to-end: an 8-thread build must produce the exact bytes of a
  # serial build — cmp, not just digest, so the check is independent of
  # the checksum machinery it is meant to vouch for.
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  for backend in core-ftc dp21-cycle dp21-agm; do
    build-asan/ftc_store build --out "$tmp/serial.ftcs" --backend "$backend" \
      --family grid --rows 14 --cols 17 --f 4 --threads 1 >/dev/null
    build-asan/ftc_store build --out "$tmp/parallel.ftcs" \
      --backend "$backend" \
      --family grid --rows 14 --cols 17 --f 4 --threads 8 >/dev/null
    cmp "$tmp/serial.ftcs" "$tmp/parallel.ftcs"
    echo "build-parallel: $backend 8-thread store byte-identical to serial"
  done
  echo "ci: parallel build determinism leg green (suites + CLI cmp)"
  exit 0
fi

if [ "${1:-}" = "docs" ]; then
  echo "=== docs link check ==="
  fail=0
  for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir="$(dirname "$doc")"
    # Relative markdown links: [text](target). External schemes and
    # pure #anchors are skipped; in-repo anchors are checked by file.
    while IFS= read -r target; do
      case "$target" in
        http://*|https://*|mailto:*|"#"*) continue ;;
      esac
      file="${target%%#*}"
      [ -n "$file" ] || continue
      if [ ! -e "$dir/$file" ] && [ ! -e "$file" ]; then
        echo "dead link in $doc: $target" >&2
        fail=1
      fi
    done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\((.*)\)$/\1/')
  done
  if [ "$fail" -ne 0 ]; then
    echo "ci: docs link check FAILED" >&2
    exit 1
  fi
  echo "ci: docs link check green"
  exit 0
fi

if [ "${1:-}" = "bench-smoke" ]; then
  echo "=== bench smoke leg (release) ==="
  cmake --preset release
  cmake --build --preset release -j "$jobs" \
    --target bench_decoder_hotpath bench_vertex_faults bench_shard_swap \
    bench_delta_push bench_fault_injection bench_remote_fetch \
    bench_build_scaling
  # Run inside build/ so the smoke-size JSON cannot clobber the
  # checked-in repo-root baseline (regenerate that via bench_all.sh).
  (cd build && ./bench_decoder_hotpath --smoke)
  (cd build && ./bench_vertex_faults --smoke)
  (cd build && ./bench_shard_swap --smoke)
  (cd build && ./bench_delta_push --smoke)
  (cd build && ./bench_fault_injection --smoke)
  (cd build && ./bench_remote_fetch --smoke)
  (cd build && ./bench_build_scaling --smoke)
  if command -v python3 >/dev/null; then
    python3 - build/BENCH_decoder_hotpath.json build/BENCH_vertex_faults.json \
      build/BENCH_shard_swap.json build/BENCH_delta_push.json \
      build/BENCH_fault_injection.json build/BENCH_remote_fetch.json \
      build/BENCH_build_scaling.json <<'EOF'
import json, sys
required = {
    "BENCH_decoder_hotpath.json": {"backend", "f", "single_query_us",
                                   "batch_qps"},
    "BENCH_vertex_faults.json": {"backend", "vertex_faults",
                                 "reduced_edge_faults", "single_query_us",
                                 "batch_qps"},
    "BENCH_shard_swap.json": {"backend", "k_shards", "save_ms", "open_us",
                              "batch_qps", "prefetch_us",
                              "prefetched_first_query_us",
                              "prefetched_batch_qps", "swap_us"},
    "BENCH_delta_push.json": {"backend", "k_shards", "shards_changed",
                              "full_save_ms", "delta_push_ms",
                              "shards_written", "shards_reused",
                              "bytes_written", "bytes_reused", "swap_ms",
                              "shards_adopted", "shards_remapped"},
    "BENCH_fault_injection.json": {"k_shards", "failpoint_off_ns",
                                   "failpoint_armed_miss_ns",
                                   "open_clean_ms", "open_retry_ms",
                                   "healthy_us_per_query",
                                   "degraded_us_per_query",
                                   "shards_quarantined"},
    "BENCH_remote_fetch.json": {"k_shards", "store_bytes", "bytes_fetched",
                                "cold_open_ms", "cold_prefetch_ms",
                                "warm_open_ms", "warm_prefetch_ms",
                                "cold_first_query_us", "warm_first_query_us",
                                "local_batch_qps", "remote_batch_qps"},
    "BENCH_build_scaling.json": {"family", "backend", "threads", "build_ms",
                                 "hierarchy_ms", "sketch_ms",
                                 "speedup_vs_serial",
                                 "digest_matches_serial",
                                 "hardware_concurrency"},
}
# The build-scaling bench hard-fails in-process on a digest mismatch;
# the recorded flag must therefore always be true — a false here means
# the bench's own gate was bypassed.
with open("build/BENCH_build_scaling.json") as fh:
    assert all(r["digest_matches_serial"] for r in json.load(fh)), \
        "parallel build digest mismatch recorded in BENCH_build_scaling.json"
for path in sys.argv[1:]:
    with open(path) as fh:
        records = json.load(fh)
    assert isinstance(records, list) and records, f"no bench records: {path}"
    need = required[path.split("/")[-1]]
    for r in records:
        missing = need - r.keys()
        assert not missing, f"{path}: record missing {missing}: {r}"
    print(f"bench-smoke: {path}: {len(records)} records, JSON well-formed")
EOF
  else
    # Degraded check without python3: the files must exist and at least
    # look like non-empty JSON arrays of objects.
    grep -q '^\[{.*}\]$' build/BENCH_decoder_hotpath.json
    grep -q '^\[{.*}\]$' build/BENCH_vertex_faults.json
    grep -q '^\[{.*}\]$' build/BENCH_shard_swap.json
    grep -q '^\[{.*}\]$' build/BENCH_fault_injection.json
    grep -q '^\[{.*}\]$' build/BENCH_remote_fetch.json
    grep -q '^\[{.*}\]$' build/BENCH_build_scaling.json
    echo "bench-smoke: JSON shape check passed (python3 unavailable)"
  fi
  echo "ci: bench smoke green"
  exit 0
fi

presets=("${@:-release}")
if [ "$#" -eq 0 ]; then
  presets=(release asan)
fi

for preset in "${presets[@]}"; do
  echo "=== preset: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

echo "ci: all presets green"
