#!/usr/bin/env bash
# CI entry point: release build + tests, then Debug+ASan/UBSan build +
# tests. Any ctest failure in any leg fails the script (set -e), so a
# regression in either preset is a CI regression. Run from anywhere;
# builds land in <repo>/build and <repo>/build-asan.
#
#   scripts/ci.sh            # both presets, full suite
#   scripts/ci.sh release    # just the release leg
#   scripts/ci.sh asan       # just the sanitizer leg
#   scripts/ci.sh store      # fast loop: asan build + run of the label
#                            # store / differential stress suites only
#                            # (adversarial container inputs are the
#                            # tests that most need the sanitizers)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

jobs="$(nproc 2>/dev/null || echo 2)"

if [ "${1:-}" = "store" ]; then
  echo "=== store/stress focused leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_label_store test_stress_differential ftc_store
  ctest --preset asan -R 'test_label_store|test_stress_differential' \
    -j "$jobs"
  echo "ci: store/stress suites green under asan"
  exit 0
fi

presets=("${@:-release}")
if [ "$#" -eq 0 ]; then
  presets=(release asan)
fi

for preset in "${presets[@]}"; do
  echo "=== preset: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

echo "ci: all presets green"
