#!/usr/bin/env bash
# CI entry point: release build + tests, then Debug+ASan/UBSan build +
# tests. Any ctest failure in any leg fails the script (set -e), so a
# regression in either preset is a CI regression. Run from anywhere;
# builds land in <repo>/build and <repo>/build-asan.
#
#   scripts/ci.sh             # both presets, full suite
#   scripts/ci.sh release     # just the release leg
#   scripts/ci.sh asan        # just the sanitizer leg
#   scripts/ci.sh store       # fast loop: asan build + run of the label
#                             # store / differential stress / decoder
#                             # workspace suites only (adversarial inputs
#                             # and the copy-on-write decoder state are
#                             # what most need the sanitizers)
#   scripts/ci.sh store-v2    # format-v2 focused asan leg: v1 fixture
#                             # load + v2 round-trip + vertex-fault
#                             # parity (fault-model suites) plus an
#                             # end-to-end ftc_store build/inspect/query
#                             # exercise with --vertex-faults
#   scripts/ci.sh bench-smoke # Release build of bench_decoder_hotpath +
#                             # bench_vertex_faults + bench_shard_swap,
#                             # tiny-size runs, JSON outputs validated —
#                             # keeps bench binaries from silently rotting
#   scripts/ci.sh store-shard # sharded-store leg: asan run of the
#                             # sharded/manifest + live-swap suites, then
#                             # an end-to-end CLI exercise — shard a
#                             # fixture store, reload it via the
#                             # manifest, parity-check 1k queries against
#                             # the unsharded container (lazy AND
#                             # prefetched: all three answer streams must
#                             # be byte-identical), merge back
#                             # byte-identically, run swap-demo with and
#                             # without --prefetch
#   scripts/ci.sh store-delta # deletion-journal / delta-push leg: asan
#                             # run of the journal + sharded + swap
#                             # suites (the adversarial journal corpus
#                             # wants the sanitizers), then a CLI
#                             # end-to-end: journal appends must answer
#                             # exactly like explicit query faults,
#                             # over-budget queries must be refused, and
#                             # a zero-delta push must reuse every shard
#                             # and swap in with every shard adopted
#   scripts/ci.sh torture     # fault-injection / crash-consistency leg:
#                             # asan run of the failpoint + SIGBUS +
#                             # torture-sweep suites, then a CLI drill —
#                             # env-armed ENOSPC aborts a push with the
#                             # serving generation left fsck-clean, and a
#                             # truncated shard makes fsck exit 2 naming
#                             # exactly that shard
#   scripts/ci.sh tsan        # ThreadSanitizer leg: tsan preset build +
#                             # run of the concurrency-heavy suites
#                             # (sharded prefetch races, live epoch swap)
#   scripts/ci.sh docs        # documentation leg: every relative link in
#                             # README.md and docs/*.md must resolve to a
#                             # file in the repo (dead links fail)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

jobs="$(nproc 2>/dev/null || echo 2)"

if [ "${1:-}" = "store" ]; then
  echo "=== store/stress focused leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_label_store test_stress_differential \
    test_decoder_workspace ftc_store
  ctest --preset asan \
    -R 'test_label_store|test_stress_differential|test_decoder_workspace' \
    -j "$jobs"
  echo "ci: store/stress/workspace suites green under asan"
  exit 0
fi

if [ "${1:-}" = "store-v2" ]; then
  echo "=== store format-v2 / fault-model leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_label_store test_stress_differential test_fault_spec \
    ftc_store
  # v1 fixture compat, v2 adjacency round-trip + adversarial corpus, and
  # the vertex/mixed-fault differential sweeps, all under asan.
  ctest --preset asan \
    -R 'test_label_store|test_stress_differential|test_fault_spec' \
    -j "$jobs"
  # End-to-end CLI exercise: build a v2 store, inspect it, serve a
  # vertex-fault query, and confirm the v1 fixture still loads but
  # refuses vertex faults with the typed capability error (exit 2).
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  build-asan/ftc_store build --out "$tmp/v2.ftcs" --family grid \
    --rows 6 --cols 6 --backend core-ftc --f 8 >/dev/null
  build-asan/ftc_store inspect "$tmp/v2.ftcs" | grep -q 'format version     2'
  build-asan/ftc_store inspect "$tmp/v2.ftcs" | grep -q 'supported (adjacency'
  out="$(build-asan/ftc_store query "$tmp/v2.ftcs" --faults 1 \
    --vertex-faults 7 --pairs 0:35,7:7)"
  # Anchored: 'connected' is a substring of 'disconnected'. Deleting one
  # interior vertex (+ one edge) leaves the 6x6 grid connected, and a
  # deleted vertex stays connected to itself.
  printf '%s\n' "$out" | grep -qx '0 35 connected'
  printf '%s\n' "$out" | grep -qx '7 7 connected'
  build-asan/ftc_store inspect tests/data/v1_core_ftc.ftcs \
    | grep -q 'format version     1'
  if build-asan/ftc_store query tests/data/v1_core_ftc.ftcs \
       --vertex-faults 1 --pairs 0:2 2>/dev/null; then
    echo "ci: v1 store unexpectedly served a vertex-fault query" >&2
    exit 1
  fi
  echo "ci: store-v2 leg green (fixture compat + v2 round-trip + CLI)"
  exit 0
fi

if [ "${1:-}" = "store-shard" ]; then
  echo "=== sharded store / live swap leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_sharded_store test_store_swap ftc_store
  ctest --preset asan -R 'test_sharded_store|test_store_swap' -j "$jobs"
  # End-to-end CLI exercise: build a container, shard it, reload through
  # the manifest, and parity-check 1k queries (mixed edge + vertex
  # faults) against the unsharded store; then merge back byte-identically
  # and run the live-swap demo.
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  build-asan/ftc_store build --out "$tmp/flat.ftcs" --family grid \
    --rows 12 --cols 12 --backend core-ftc --f 8 >/dev/null
  build-asan/ftc_store shard "$tmp/flat.ftcs" --out "$tmp/labels.ftcm" \
    --shards 4 >/dev/null
  build-asan/ftc_store inspect "$tmp/labels.ftcm" | grep -q 'sharded manifest'
  build-asan/ftc_store inspect "$tmp/labels.ftcm" \
    | grep -q 'shards             4'
  # 1000 deterministic query pairs over the 144-vertex grid (no python
  # dependency on this leg).
  pairs=""
  for i in $(seq 0 999); do
    pairs+="$(( (i * 37 + 11) % 144 )):$(( (i * 53 + 29) % 144 )),"
  done
  pairs="${pairs%,}"
  build-asan/ftc_store query "$tmp/flat.ftcs" --faults 3,40 \
    --vertex-faults 77 --pairs "$pairs" > "$tmp/flat.out"
  build-asan/ftc_store query "$tmp/labels.ftcm" --faults 3,40 \
    --vertex-faults 77 --pairs "$pairs" > "$tmp/sharded.out"
  if ! cmp -s "$tmp/flat.out" "$tmp/sharded.out"; then
    echo "ci: sharded store answers diverge from the unsharded store" >&2
    exit 1
  fi
  [ "$(wc -l < "$tmp/sharded.out")" = "1000" ]
  # Prefetch parity: the warmed route-table fast path must answer
  # byte-identically to the lazy-open path (prefetch diagnostics go to
  # stderr, so stdout is comparable as-is).
  build-asan/ftc_store query "$tmp/labels.ftcm" --prefetch=4 --faults 3,40 \
    --vertex-faults 77 --pairs "$pairs" > "$tmp/prefetched.out" \
    2> "$tmp/prefetch.log"
  if ! cmp -s "$tmp/sharded.out" "$tmp/prefetched.out"; then
    echo "ci: prefetched answers diverge from lazy-open answers" >&2
    exit 1
  fi
  grep -q 'prefetch: 4 shard(s) newly mapped' "$tmp/prefetch.log"
  build-asan/ftc_store inspect "$tmp/labels.ftcm" --verbose \
    | grep -q 'route table resolved'
  build-asan/ftc_store merge "$tmp/labels.ftcm" --out "$tmp/merged.ftcs" \
    >/dev/null
  cmp "$tmp/flat.ftcs" "$tmp/merged.ftcs"
  build-asan/ftc_store swap-demo --n 64 --m 80 --f 3 --swaps 4 \
    --queries 64 >/dev/null
  build-asan/ftc_store swap-demo --n 64 --m 80 --f 3 --swaps 4 \
    --queries 64 --prefetch >/dev/null 2>&1
  echo "ci: store-shard leg green (suites + 1k-query CLI parity incl. prefetch + merge + swap-demo)"
  exit 0
fi

if [ "${1:-}" = "store-delta" ]; then
  echo "=== deletion journal / delta push leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_journal test_sharded_store test_store_swap ftc_store
  ctest --preset asan -R 'test_journal|test_sharded_store|test_store_swap' \
    -j "$jobs"
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  build-asan/ftc_store build --out "$tmp/flat.ftcs" --family grid \
    --rows 12 --cols 12 --backend core-ftc --f 8 >/dev/null
  # Journal lifecycle: first append needs --budget, later ones inherit
  # it; idempotent and incremental epochs are covered by the suite, the
  # CLI leg checks the served answers.
  build-asan/ftc_store journal append "$tmp/flat.ftcs" --edges 3,40 \
    --budget 8 | grep -q 'epoch 1, 2/8 deletions journaled'
  build-asan/ftc_store journal append "$tmp/flat.ftcs" --edges 77 \
    | grep -q 'epoch 2, 3/8 deletions journaled'
  build-asan/ftc_store inspect "$tmp/flat.ftcs" \
    | grep -q 'journal            epoch 2: 3/8 deletions'
  pairs=""
  for i in $(seq 0 499); do
    pairs+="$(( (i * 37 + 11) % 144 )):$(( (i * 53 + 29) % 144 )),"
  done
  pairs="${pairs%,}"
  # Replay parity: the journal folded into every query must answer
  # byte-identically to the same deletions passed as explicit faults —
  # with and without extra query-time faults on top.
  build-asan/ftc_store query "$tmp/flat.ftcs" --pairs "$pairs" \
    > "$tmp/journaled.out"
  build-asan/ftc_store query "$tmp/flat.ftcs" --ignore-journal \
    --faults 3,40,77 --pairs "$pairs" > "$tmp/explicit.out"
  cmp "$tmp/journaled.out" "$tmp/explicit.out"
  build-asan/ftc_store query "$tmp/flat.ftcs" --faults 100,101 \
    --pairs "$pairs" > "$tmp/journaled_plus.out"
  build-asan/ftc_store query "$tmp/flat.ftcs" --ignore-journal \
    --faults 3,40,77,100,101 --pairs "$pairs" > "$tmp/explicit_plus.out"
  cmp "$tmp/journaled_plus.out" "$tmp/explicit_plus.out"
  # 3 journaled + 6 query faults overflows f=8: must be refused, and
  # --ignore-journal must make the same request legal again.
  if build-asan/ftc_store query "$tmp/flat.ftcs" \
       --faults 100,101,102,103,104,105 --pairs 0:1 >/dev/null 2>&1; then
    echo "ci: over-budget journal+fault query was not refused" >&2
    exit 1
  fi
  build-asan/ftc_store query "$tmp/flat.ftcs" --ignore-journal \
    --faults 100,101,102,103,104,105 --pairs 0:1 >/dev/null
  build-asan/ftc_store journal compact "$tmp/flat.ftcs" \
    | grep -q 'compacted .* 2 -> 1 frames'
  build-asan/ftc_store query "$tmp/flat.ftcs" --pairs "$pairs" \
    > "$tmp/compacted.out"
  cmp "$tmp/journaled.out" "$tmp/compacted.out"
  # Delta push: a full push seeds epoch 1; pushing the same store over
  # it must reuse every shard by hard link and bump the epoch.
  build-asan/ftc_store push "$tmp/flat.ftcs" --out "$tmp/gen.ftcm" \
    --shards 4 | grep -q 'full push .* epoch 1, 4 shards'
  build-asan/ftc_store push "$tmp/flat.ftcs" --out "$tmp/gen.ftcm" \
    | grep -q 'epoch 2: 4/4 shards reused, 0 written'
  build-asan/ftc_store inspect "$tmp/gen.ftcm" \
    | grep -q 'manifest epoch     2'
  # Live cut-over: a zero-delta generation swap must adopt all four
  # serving shard maps and change no answers.
  build-asan/ftc_store swap-demo --delta --n 64 --m 80 --f 3 \
    --queries 64 | grep -q '4/4 shards adopted, 0 newly mapped'
  echo "ci: store-delta leg green (suites + journal parity + capacity refusal + delta push CLI)"
  exit 0
fi

if [ "${1:-}" = "torture" ]; then
  echo "=== fault-injection / crash-consistency torture leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_fault_injection test_torture ftc_store
  # The store's own SIGBUS translator replaces ASan's handler; tell ASan
  # to stand down on SIGBUS so guarded mapped reads stay recoverable.
  ASAN_OPTIONS="${ASAN_OPTIONS:+$ASAN_OPTIONS:}handle_sigbus=0" \
    ctest --preset asan -R 'test_fault_injection|test_torture' -j "$jobs"
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  build-asan/ftc_store build --out "$tmp/flat.ftcs" --family grid \
    --rows 12 --cols 12 --backend core-ftc --f 8 >/dev/null
  build-asan/ftc_store push "$tmp/flat.ftcs" --out "$tmp/gen.ftcm" \
    --shards 4 >/dev/null
  build-asan/ftc_store fsck "$tmp/gen.ftcm" | grep -q ': clean'
  # Env-armed failpoint drill: the injected ENOSPC must abort the push
  # typed, and the serving generation must stay intact and fsck-clean.
  if FTC_FAILPOINTS='store.write.fsync=once:ENOSPC' \
       build-asan/ftc_store push "$tmp/flat.ftcs" --out "$tmp/gen.ftcm" \
       >/dev/null 2>&1; then
    echo "ci: push with injected ENOSPC unexpectedly succeeded" >&2
    exit 1
  fi
  build-asan/ftc_store fsck "$tmp/gen.ftcm" > "$tmp/fsck_after_abort.out"
  grep -q 'manifest ok (epoch 1' "$tmp/fsck_after_abort.out"
  grep -q ': clean' "$tmp/fsck_after_abort.out"
  # A clean push still lands on the untouched parent.
  build-asan/ftc_store push "$tmp/flat.ftcs" --out "$tmp/gen.ftcm" \
    | grep -q 'epoch 2: 4/4 shards reused, 0 written'
  build-asan/ftc_store fsck "$tmp/gen.ftcm" | grep -q ': clean'
  # Damage one shard behind the manifest: fsck must exit 2 and name
  # exactly that shard, with every other shard still verifying.
  : > "$tmp/gen.ftcm.shard2.ftcs"
  if build-asan/ftc_store fsck "$tmp/gen.ftcm" > "$tmp/fsck.out"; then
    echo "ci: fsck of a damaged store exited 0" >&2
    exit 1
  fi
  grep -q 'shard 2 .*: FAILED' "$tmp/fsck.out"
  grep -q ': 1 damaged' "$tmp/fsck.out"
  [ "$(grep -c ': FAILED' "$tmp/fsck.out")" = "1" ]
  grep -q 'shard 0 .*: ok' "$tmp/fsck.out"
  grep -q 'shard 3 .*: ok' "$tmp/fsck.out"
  echo "ci: torture leg green (suites + env failpoint drill + fsck triage)"
  exit 0
fi

if [ "${1:-}" = "tsan" ]; then
  echo "=== concurrency leg (tsan) ==="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" \
    --target test_sharded_store test_store_swap
  ctest --preset tsan -R 'test_sharded_store|test_store_swap' -j "$jobs"
  echo "ci: sharded prefetch + live-swap suites green under tsan"
  exit 0
fi

if [ "${1:-}" = "docs" ]; then
  echo "=== docs link check ==="
  fail=0
  for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir="$(dirname "$doc")"
    # Relative markdown links: [text](target). External schemes and
    # pure #anchors are skipped; in-repo anchors are checked by file.
    while IFS= read -r target; do
      case "$target" in
        http://*|https://*|mailto:*|"#"*) continue ;;
      esac
      file="${target%%#*}"
      [ -n "$file" ] || continue
      if [ ! -e "$dir/$file" ] && [ ! -e "$file" ]; then
        echo "dead link in $doc: $target" >&2
        fail=1
      fi
    done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\((.*)\)$/\1/')
  done
  if [ "$fail" -ne 0 ]; then
    echo "ci: docs link check FAILED" >&2
    exit 1
  fi
  echo "ci: docs link check green"
  exit 0
fi

if [ "${1:-}" = "bench-smoke" ]; then
  echo "=== bench smoke leg (release) ==="
  cmake --preset release
  cmake --build --preset release -j "$jobs" \
    --target bench_decoder_hotpath bench_vertex_faults bench_shard_swap \
    bench_delta_push bench_fault_injection
  # Run inside build/ so the smoke-size JSON cannot clobber the
  # checked-in repo-root baseline (regenerate that via bench_all.sh).
  (cd build && ./bench_decoder_hotpath --smoke)
  (cd build && ./bench_vertex_faults --smoke)
  (cd build && ./bench_shard_swap --smoke)
  (cd build && ./bench_delta_push --smoke)
  (cd build && ./bench_fault_injection --smoke)
  if command -v python3 >/dev/null; then
    python3 - build/BENCH_decoder_hotpath.json build/BENCH_vertex_faults.json \
      build/BENCH_shard_swap.json build/BENCH_delta_push.json \
      build/BENCH_fault_injection.json <<'EOF'
import json, sys
required = {
    "BENCH_decoder_hotpath.json": {"backend", "f", "single_query_us",
                                   "batch_qps"},
    "BENCH_vertex_faults.json": {"backend", "vertex_faults",
                                 "reduced_edge_faults", "single_query_us",
                                 "batch_qps"},
    "BENCH_shard_swap.json": {"backend", "k_shards", "save_ms", "open_us",
                              "batch_qps", "prefetch_us",
                              "prefetched_first_query_us",
                              "prefetched_batch_qps", "swap_us"},
    "BENCH_delta_push.json": {"backend", "k_shards", "shards_changed",
                              "full_save_ms", "delta_push_ms",
                              "shards_written", "shards_reused",
                              "bytes_written", "bytes_reused", "swap_ms",
                              "shards_adopted", "shards_remapped"},
    "BENCH_fault_injection.json": {"k_shards", "failpoint_off_ns",
                                   "failpoint_armed_miss_ns",
                                   "open_clean_ms", "open_retry_ms",
                                   "healthy_us_per_query",
                                   "degraded_us_per_query",
                                   "shards_quarantined"},
}
for path in sys.argv[1:]:
    with open(path) as fh:
        records = json.load(fh)
    assert isinstance(records, list) and records, f"no bench records: {path}"
    need = required[path.split("/")[-1]]
    for r in records:
        missing = need - r.keys()
        assert not missing, f"{path}: record missing {missing}: {r}"
    print(f"bench-smoke: {path}: {len(records)} records, JSON well-formed")
EOF
  else
    # Degraded check without python3: the files must exist and at least
    # look like non-empty JSON arrays of objects.
    grep -q '^\[{.*}\]$' build/BENCH_decoder_hotpath.json
    grep -q '^\[{.*}\]$' build/BENCH_vertex_faults.json
    grep -q '^\[{.*}\]$' build/BENCH_shard_swap.json
    grep -q '^\[{.*}\]$' build/BENCH_fault_injection.json
    echo "bench-smoke: JSON shape check passed (python3 unavailable)"
  fi
  echo "ci: bench smoke green"
  exit 0
fi

presets=("${@:-release}")
if [ "$#" -eq 0 ]; then
  presets=(release asan)
fi

for preset in "${presets[@]}"; do
  echo "=== preset: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

echo "ci: all presets green"
