#!/usr/bin/env bash
# CI entry point: release build + tests, then Debug+ASan/UBSan build +
# tests. Any ctest failure in any leg fails the script (set -e), so a
# regression in either preset is a CI regression. Run from anywhere;
# builds land in <repo>/build and <repo>/build-asan.
#
#   scripts/ci.sh             # both presets, full suite
#   scripts/ci.sh release     # just the release leg
#   scripts/ci.sh asan        # just the sanitizer leg
#   scripts/ci.sh store       # fast loop: asan build + run of the label
#                             # store / differential stress / decoder
#                             # workspace suites only (adversarial inputs
#                             # and the copy-on-write decoder state are
#                             # what most need the sanitizers)
#   scripts/ci.sh bench-smoke # Release build of bench_decoder_hotpath,
#                             # tiny-size run, JSON output validated —
#                             # keeps bench binaries from silently rotting
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

jobs="$(nproc 2>/dev/null || echo 2)"

if [ "${1:-}" = "store" ]; then
  echo "=== store/stress focused leg (asan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" \
    --target test_label_store test_stress_differential \
    test_decoder_workspace ftc_store
  ctest --preset asan \
    -R 'test_label_store|test_stress_differential|test_decoder_workspace' \
    -j "$jobs"
  echo "ci: store/stress/workspace suites green under asan"
  exit 0
fi

if [ "${1:-}" = "bench-smoke" ]; then
  echo "=== bench smoke leg (release) ==="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target bench_decoder_hotpath
  # Run inside build/ so the smoke-size JSON cannot clobber the
  # checked-in repo-root baseline (regenerate that via bench_all.sh).
  (cd build && ./bench_decoder_hotpath --smoke)
  if command -v python3 >/dev/null; then
    python3 - build/BENCH_decoder_hotpath.json <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    records = json.load(fh)
assert isinstance(records, list) and records, "no bench records"
required = {"backend", "f", "single_query_us", "batch_qps"}
for r in records:
    missing = required - r.keys()
    assert not missing, f"record missing {missing}: {r}"
print(f"bench-smoke: {len(records)} records, JSON well-formed")
EOF
  else
    # Degraded check without python3: the file must exist and at least
    # look like a non-empty JSON array of objects.
    grep -q '^\[{.*}\]$' build/BENCH_decoder_hotpath.json
    echo "bench-smoke: JSON shape check passed (python3 unavailable)"
  fi
  echo "ci: bench smoke green"
  exit 0
fi

presets=("${@:-release}")
if [ "$#" -eq 0 ]; then
  presets=(release asan)
fi

for preset in "${presets[@]}"; do
  echo "=== preset: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

echo "ci: all presets green"
