#!/usr/bin/env bash
# CI entry point: release build + tests, then Debug+ASan/UBSan build +
# tests. Run from anywhere; builds land in <repo>/build and
# <repo>/build-asan.
#
#   scripts/ci.sh            # both presets
#   scripts/ci.sh release    # just the release leg
#   scripts/ci.sh asan       # just the sanitizer leg
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

jobs="$(nproc 2>/dev/null || echo 2)"
presets=("${@:-release}")
if [ "$#" -eq 0 ]; then
  presets=(release asan)
fi

for preset in "${presets[@]}"; do
  echo "=== preset: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

echo "ci: all presets green"
