// Reproduces the paper's two illustrative figures on an instance with the
// same shape as the one drawn there: 8 vertices, 12 edges of which 5 are
// non-tree (e1, e3, e5, e9, e12 in the figure's naming).
//
// Figure 1: the auxiliary graph G' — every non-tree edge is subdivided,
// its first half joins the spanning tree T'.
// Figure 2: the Euler tour of T' numbers all 2n'-2 directed tree edges;
// each non-tree edge of G' becomes a 2D point, and the outgoing edges of
// any vertex set S form the intersection of the point set with a
// symmetric difference of halfspaces (Lemma 3), verified here explicitly.
#include <cstdio>
#include <vector>

#include "geometry/point_map.hpp"
#include "graph/aux_graph.hpp"
#include "graph/euler_tour.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"

int main() {
  using namespace ftc;
  using graph::EdgeId;
  using graph::VertexId;

  // 8 vertices, 12 edges; BFS from vertex 0 makes edges 0..6 the tree.
  graph::Graph g(8);
  g.add_edge(0, 1);  // e: tree
  g.add_edge(0, 2);  // tree
  g.add_edge(1, 3);  // tree
  g.add_edge(1, 4);  // tree
  g.add_edge(2, 5);  // tree
  g.add_edge(4, 6);  // tree
  g.add_edge(5, 7);  // tree
  g.add_edge(3, 4);  // non-tree ("e1")
  g.add_edge(3, 6);  // non-tree ("e3")
  g.add_edge(2, 4);  // non-tree ("e5")
  g.add_edge(6, 7);  // non-tree ("e9")
  g.add_edge(5, 1);  // non-tree ("e12")

  const auto t = graph::bfs_spanning_tree(g, 0);

  std::printf("== Figure 1: auxiliary graph G' ==\n");
  const auto aux = graph::build_aux_graph(g, t);
  std::printf("G : %u vertices, %u edges (%u tree + %u non-tree)\n",
              g.num_vertices(), g.num_edges(), g.num_vertices() - 1,
              g.num_edges() - g.num_vertices() + 1);
  std::printf("G': %u vertices, %u edges (subdivision per non-tree edge)\n",
              aux.g2.num_vertices(), aux.g2.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (aux.sub_vertex[e] == graph::kNoVertex) continue;
    const auto& ed = g.edge(e);
    std::printf("  edge e%-2u = (%u,%u) -> tree half (%u,w%u) + "
                "non-tree half e%u' = (w%u,%u)\n",
                e + 1, ed.u, ed.v, ed.u, aux.sub_vertex[e], e + 1,
                aux.sub_vertex[e], ed.v);
  }

  std::printf("\n== Figure 2: Euler tour and geometric embedding ==\n");
  const auto et = graph::euler_tour(aux.t2);
  std::printf("tour length 2n'-2 = %u directed edges (figure: 24)\n",
              2 * aux.g2.num_vertices() - 2);
  std::printf("vertex coordinates c(v) (root r = vertex 0 has c = 0):\n  ");
  for (VertexId v = 0; v < aux.g2.num_vertices(); ++v) {
    std::printf("c(%u)=%u ", v, et.coord[v]);
  }
  std::printf("\n\nnon-tree edges of G' as 2D points (c(u), c(v)):\n");
  const auto pts = geometry::map_nontree_edges(aux.g2, aux.t2, et);
  for (const auto& p : pts) {
    std::printf("  e%u' -> (%u, %u)\n", aux.orig_of[p.edge] + 1, p.x, p.y);
  }

  // Lemma 3 on a concrete S: the subtree below vertex 1 (plus the root's
  // other side excluded), i.e. S = {1, 3, 4, 6} in G.
  std::printf("\nLemma 3 check for S = {1, 3, 4, 6} (subtree of vertex 1):\n");
  std::vector<char> in_set(aux.g2.num_vertices(), 0);
  // S in G'; subdivision vertices inherit membership from their tree side.
  for (const VertexId v : {1u, 3u, 4u, 6u}) in_set[v] = 1;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (aux.sub_vertex[e] != graph::kNoVertex) {
      in_set[aux.sub_vertex[e]] = in_set[g.edge(e).u];
    }
  }
  // Complement so the root is inside S (the Lemma 9 convention); the cut
  // is unchanged.
  std::vector<char> s_mask(aux.g2.num_vertices());
  for (VertexId v = 0; v < aux.g2.num_vertices(); ++v) {
    s_mask[v] = !in_set[v];
  }
  const auto cuts = geometry::directed_cut_positions(aux.t2, et, s_mask);
  std::printf("  directed tree-cut positions:");
  for (const auto c : cuts) std::printf(" %u", c);
  std::printf("\n");
  for (const auto& p : pts) {
    const auto& ed = aux.g2.edge(p.edge);
    const bool crossing = in_set[ed.u] != in_set[ed.v];
    const bool in_region = geometry::in_cut_region(p, cuts);
    std::printf("  e%u' point (%2u,%2u): region=%d crossing=%d %s\n",
                aux.orig_of[p.edge] + 1, p.x, p.y, in_region, crossing,
                in_region == crossing ? "OK" : "MISMATCH");
  }
  return 0;
}
