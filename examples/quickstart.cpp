// Quickstart: build f-FTC labels for a graph, then answer connectivity
// queries under edge faults from the labels alone.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/batch_engine.hpp"
#include "core/ftc_scheme.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace ftc;

  // 1. A connected graph (here: random, 64 vertices, 160 edges).
  const graph::Graph g = graph::random_connected(64, 160, /*seed=*/7);

  // 2. Build the deterministic f-FTC labeling for up to f = 3 faults.
  core::FtcConfig config;
  config.f = 3;
  config.kind = core::SchemeKind::kDeterministic;  // Theorem 1, NetFind
  const core::FtcScheme scheme = core::FtcScheme::build(g, config);

  std::printf("built labels: %u-bit field, k=%u syndromes x %u levels\n",
              scheme.params().field_bits, scheme.params().k,
              scheme.params().num_levels);
  std::printf("label sizes: %zu bits per vertex, %zu bits per edge\n",
              scheme.vertex_label_bits(), scheme.edge_label_bits());

  // 3. Take some labels. In a distributed deployment these are the only
  //    things a node would store or receive.
  const core::VertexLabel s = scheme.vertex_label(3);
  const core::VertexLabel t = scheme.vertex_label(42);
  std::vector<core::EdgeLabel> faults{scheme.edge_label(10),
                                      scheme.edge_label(57),
                                      scheme.edge_label(98)};

  // 4. Decode: the decoder sees labels only — never the graph.
  core::QueryStats stats;
  const bool connected = core::FtcDecoder::connected(s, t, faults,
                                                     core::QueryOptions{},
                                                     &stats);
  std::printf("vertex 3 %s vertex 42 under faults {10, 57, 98}\n",
              connected ? "IS connected to" : "is NOT connected to");
  std::printf("query internals: %u fragments, %u sketch decodes, %u merges\n",
              stats.fragments, stats.outdetect_calls, stats.merges);

  // 5. Labels serialize byte-exactly for storage or transmission.
  const auto bytes = core::serialize(faults[0]);
  std::printf("serialized edge label: %zu bytes\n", bytes.size());

  // 6. The same query can run against any of the three labeling
  //    backends through the polymorphic ConnectivityScheme factory —
  //    and a BatchQueryEngine session amortizes the fault-set setup
  //    across many queries.
  for (const core::BackendKind backend : core::kAllBackends) {
    core::SchemeConfig sc;
    sc.backend = backend;
    sc.set_f(3);
    const auto backend_scheme = core::make_scheme(g, sc);
    core::BatchQueryEngine session(
        *backend_scheme,
        core::FaultSpec::edges(std::vector<graph::EdgeId>{10, 57, 98}));
    std::printf("[%-10s] 3 %s 42 | vertex label %zu b, edge label %zu b\n",
                core::backend_name(backend),
                session.connected(3, 42) ? "<-> " : "-/->",
                backend_scheme->vertex_label_bits(),
                backend_scheme->edge_label_bits());
  }
  return 0;
}
