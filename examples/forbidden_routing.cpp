// Forbidden-set routing demo (Corollary 2 / the paper's Section 1.1
// motivation): route packets around a set of known-bad links using only
// per-router label tables — the topology database stays offline.
#include <cstdio>

#include "distance/ft_routing.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

int main() {
  using namespace ftc;
  using namespace ftc::distance;
  using graph::EdgeId;
  using graph::VertexId;

  // A metro-area style network: ring of rings.
  const VertexId n = 48;
  const graph::Graph base = graph::random_connected(n, 120, 11);
  SplitMix64 rng(5);
  WeightedGraph g(n);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    g.add_edge(base.edge(e).u, base.edge(e).v, 1 + rng.next_below(5));
  }

  FtDistanceConfig cfg;
  cfg.f = 3;
  cfg.k = 2;
  const auto scheme = FtDistanceScheme::build(g, cfg);
  const FtRouter router(g, scheme);
  std::printf("routing tables built; router 0 stores %zu KiB\n",
              router.table_bits(0) / 8192);

  // An operator marks three links as forbidden (maintenance window).
  std::vector<EdgeId> forbidden;
  std::vector<DistEdgeLabel> forbidden_labels;
  for (int i = 0; i < 3; ++i) {
    const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
    forbidden.push_back(e);
    forbidden_labels.push_back(scheme.edge_label(e));
    std::printf("forbidden link %u: (%u, %u)\n", e, g.topology().edge(e).u,
                g.topology().edge(e).v);
  }

  int shown = 0;
  for (int attempt = 0; attempt < 200 && shown < 8; ++attempt) {
    const VertexId s = static_cast<VertexId>(rng.next_below(n));
    const VertexId t = static_cast<VertexId>(rng.next_below(n));
    if (s == t) continue;
    const Weight exact = exact_distance(g, s, t, forbidden);
    const auto res = router.route(s, t, forbidden, forbidden_labels);
    ++shown;
    if (exact == kInfinity) {
      std::printf("%2u -> %2u : destination unreachable (%s)\n", s, t,
                  res.delivered ? "BUG: routed anyway" : "correctly dropped");
      continue;
    }
    std::printf("%2u -> %2u : %s in %u hops, weight %llu (optimal %llu, "
                "stretch %.2f)\n",
                s, t, res.delivered ? "delivered" : "STUCK", res.hops,
                static_cast<unsigned long long>(res.path_weight),
                static_cast<unsigned long long>(exact),
                res.delivered ? static_cast<double>(res.path_weight) /
                                    static_cast<double>(exact)
                              : 0.0);
  }
  return 0;
}
