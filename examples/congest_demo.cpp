// Distributed label construction demo (Section 8): every node is an
// independent state machine exchanging O(log n)-bit messages; after
// quiescence, nodes hold their ancestry labels and subtree sketch sums —
// the building blocks of the f-FTC edge labels — with no centralized
// computation.
#include <cstdio>

#include "congest/dist_labeling.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"

int main() {
  using namespace ftc;
  using graph::VertexId;

  const graph::Graph g = graph::grid(8, 12);
  const unsigned k = 12;
  std::printf("grid network: %u nodes, %u links; k = %u syndrome slots\n",
              g.num_vertices(), g.num_edges(), k);

  const auto result = congest::run_distributed_labeling(g, /*root=*/0, k);

  const auto t = graph::bfs_spanning_tree(g, 0);
  unsigned depth = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    depth = std::max(depth, t.depth[v]);
  }
  std::printf("completed in %u rounds (BFS depth %u + %u slots, pipelined)\n",
              result.stats.rounds, depth, k);
  std::printf("traffic: %llu messages, %llu total bits, max message %u bits\n",
              static_cast<unsigned long long>(result.stats.messages),
              static_cast<unsigned long long>(result.stats.total_bits),
              result.stats.max_message_bits);

  std::printf("\nnode states (sample):\n");
  for (const VertexId v : {VertexId{0}, VertexId{13}, VertexId{95}}) {
    std::printf("  node %2u: parent=%2u depth=%u interval=[%u,%u] "
                "subtree=%u syndrome[0]=%016llx\n",
                v, result.parent[v], result.depth[v], result.tin[v],
                result.tout[v], result.subtree_size[v],
                static_cast<unsigned long long>(
                    result.subtree_syndromes[v][0].value()));
  }

  std::printf("\nLemma 13 model for the remaining (hierarchy) phase: "
              "%llu rounds at m'=%u, D=%u\n",
              static_cast<unsigned long long>(congest::netfind_round_model(
                  g.num_edges() - g.num_vertices() + 1, depth)),
              g.num_edges() - g.num_vertices() + 1, depth);
  return 0;
}
