// Scenario example: fault-tolerant connectivity monitoring of a
// datacenter-style fabric — the forbidden-set setting the paper's
// introduction motivates.
//
// A fat-tree-ish two-tier topology is labeled once, offline, by any of
// the three ConnectivityScheme backends (pick one with argv[1]:
// core-ftc | dp21-cycle | dp21-agm | all). At runtime a monitoring
// endpoint receives failure advertisements (the edge IDs of the
// currently dead links — at most f of them), opens a BatchQueryEngine
// session per failure epoch (fault labels materialized once), and
// answers "can rack A still reach rack B?" queries instantly with zero
// access to the topology database. Every answer is checked against a
// BFS oracle.
#include <cstdio>
#include <string>
#include <vector>

#include "core/batch_engine.hpp"
#include "graph/connectivity.hpp"
#include "util/common.hpp"

namespace {

using namespace ftc;
using graph::EdgeId;
using graph::VertexId;

struct Fabric {
  graph::Graph g;
  std::vector<VertexId> host;
  std::vector<EdgeId> uplinks;
};

Fabric build_fabric() {
  // Two-tier Clos-like fabric: 4 spines, 12 leaves, 2 uplinks per leaf,
  // 24 hosts (2 per leaf).
  Fabric fabric;
  graph::Graph& g = fabric.g;
  const unsigned kSpines = 4, kLeaves = 12, kHostsPerLeaf = 2;
  std::vector<VertexId> spine, leaf;
  for (unsigned i = 0; i < kSpines; ++i) spine.push_back(g.add_vertex());
  for (unsigned i = 0; i < kLeaves; ++i) leaf.push_back(g.add_vertex());
  for (unsigned i = 0; i < kLeaves * kHostsPerLeaf; ++i) {
    fabric.host.push_back(g.add_vertex());
  }
  SplitMix64 rng(2026);
  for (unsigned l = 0; l < kLeaves; ++l) {
    // Two uplinks to distinct spines.
    const unsigned s1 = static_cast<unsigned>(rng.next_below(kSpines));
    const unsigned s2 = (s1 + 1 + rng.next_below(kSpines - 1)) % kSpines;
    fabric.uplinks.push_back(g.add_edge(leaf[l], spine[s1]));
    fabric.uplinks.push_back(g.add_edge(leaf[l], spine[s2]));
    for (unsigned h = 0; h < kHostsPerLeaf; ++h) {
      g.add_edge(leaf[l], fabric.host[l * kHostsPerLeaf + h]);
    }
  }
  // Spine ring for resilience.
  for (unsigned s = 0; s < kSpines; ++s) {
    g.add_edge(spine[s], spine[(s + 1) % kSpines]);
  }
  return fabric;
}

int monitor(const Fabric& fabric, core::BackendKind backend) {
  const graph::Graph& g = fabric.g;
  const unsigned f = 4;
  core::SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  const auto scheme = core::make_scheme(g, cfg);
  std::printf("\n[%s] fabric: %u nodes, %u links; labels: %zu b/vertex, "
              "%zu b/link\n",
              std::string(scheme->name()).c_str(), g.num_vertices(),
              g.num_edges(), scheme->vertex_label_bits(),
              scheme->edge_label_bits());

  // Simulate 200 failure epochs. Each epoch kills up to f random links
  // (biased toward uplinks, the interesting failures), opens a query
  // session on the advertised fault set and runs host-pair reachability
  // queries through it.
  SplitMix64 rng(7);
  core::BatchQueryEngine engine(*scheme, core::FaultSpec{});
  int epochs = 0, queries = 0, disconnections = 0, mismatches = 0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    ++epochs;
    std::vector<EdgeId> dead;
    const unsigned kills = 1 + rng.next_below(f);
    for (unsigned i = 0; i < kills; ++i) {
      dead.push_back(rng.next_bool()
                         ? fabric.uplinks[rng.next_below(
                               fabric.uplinks.size())]
                         : static_cast<EdgeId>(
                               rng.next_below(g.num_edges())));
    }
    engine.reset_faults(core::FaultSpec::edges(dead));
    std::vector<core::BatchQueryEngine::Query> batch;
    for (int q = 0; q < 10; ++q) {
      batch.push_back({fabric.host[rng.next_below(fabric.host.size())],
                       fabric.host[rng.next_below(fabric.host.size())]});
    }
    const auto answers = engine.run_sequential(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const bool expect = graph::connected_avoiding(g, batch[i].s,
                                                    batch[i].t, dead);
      ++queries;
      if (!answers[i]) ++disconnections;
      if (answers[i] != expect) ++mismatches;
    }
  }
  std::printf("%d epochs, %d reachability queries: %d reported partitions, "
              "%d oracle mismatches\n",
              epochs, queries, disconnections, mismatches);
  std::printf(mismatches == 0 ? "all answers exact.\n"
                              : "ERROR: decoder disagreed with oracle!\n");
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  const Fabric fabric = build_fabric();
  const std::string backend_arg = argc > 1 ? argv[1] : "all";
  int mismatches = 0;
  if (backend_arg == "all") {
    for (const core::BackendKind b : core::kAllBackends) {
      mismatches += monitor(fabric, b);
    }
  } else {
    mismatches += monitor(fabric, core::parse_backend(backend_arg));
  }
  return mismatches == 0 ? 0 : 1;
}
