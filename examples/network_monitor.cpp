// Scenario example: fault-tolerant connectivity monitoring of a
// datacenter-style fabric — the forbidden-set setting the paper's
// introduction motivates.
//
// A fat-tree-ish two-tier topology is labeled once, offline. At runtime a
// monitoring endpoint receives failure advertisements (edge labels of the
// currently dead links — at most f of them) and answers "can rack A still
// reach rack B?" queries instantly from labels alone, with zero access to
// the topology database. Every answer is checked against a BFS oracle.
#include <cstdio>
#include <vector>

#include "core/ftc_query.hpp"
#include "core/ftc_scheme.hpp"
#include "graph/connectivity.hpp"
#include "util/common.hpp"

int main() {
  using namespace ftc;
  using graph::EdgeId;
  using graph::VertexId;

  // Two-tier Clos-like fabric: 4 spines, 12 leaves, 2 uplinks per leaf,
  // 24 hosts (2 per leaf).
  graph::Graph g;
  const unsigned kSpines = 4, kLeaves = 12, kHostsPerLeaf = 2;
  std::vector<VertexId> spine, leaf, host;
  for (unsigned i = 0; i < kSpines; ++i) spine.push_back(g.add_vertex());
  for (unsigned i = 0; i < kLeaves; ++i) leaf.push_back(g.add_vertex());
  for (unsigned i = 0; i < kLeaves * kHostsPerLeaf; ++i) {
    host.push_back(g.add_vertex());
  }
  SplitMix64 rng(2026);
  std::vector<EdgeId> uplinks;
  for (unsigned l = 0; l < kLeaves; ++l) {
    // Two uplinks to distinct spines.
    const unsigned s1 = static_cast<unsigned>(rng.next_below(kSpines));
    const unsigned s2 = (s1 + 1 + rng.next_below(kSpines - 1)) % kSpines;
    uplinks.push_back(g.add_edge(leaf[l], spine[s1]));
    uplinks.push_back(g.add_edge(leaf[l], spine[s2]));
    for (unsigned h = 0; h < kHostsPerLeaf; ++h) {
      g.add_edge(leaf[l], host[l * kHostsPerLeaf + h]);
    }
  }
  // Spine ring for resilience.
  for (unsigned s = 0; s < kSpines; ++s) {
    g.add_edge(spine[s], spine[(s + 1) % kSpines]);
  }

  const unsigned f = 4;
  core::FtcConfig cfg;
  cfg.f = f;
  const auto scheme = core::FtcScheme::build(g, cfg);
  std::printf("fabric: %u nodes, %u links; labels: %zu b/vertex, %zu b/link\n",
              g.num_vertices(), g.num_edges(), scheme.vertex_label_bits(),
              scheme.edge_label_bits());

  // Simulate 200 failure epochs. Each epoch kills up to f random links
  // (biased toward uplinks, the interesting failures) and runs host-pair
  // reachability queries.
  int epochs = 0, queries = 0, disconnections = 0, mismatches = 0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    ++epochs;
    std::vector<EdgeId> dead;
    std::vector<core::EdgeLabel> advert;
    const unsigned kills = 1 + rng.next_below(f);
    for (unsigned i = 0; i < kills; ++i) {
      const EdgeId e = rng.next_bool()
                           ? uplinks[rng.next_below(uplinks.size())]
                           : static_cast<EdgeId>(rng.next_below(g.num_edges()));
      dead.push_back(e);
      advert.push_back(scheme.edge_label(e));
    }
    for (int q = 0; q < 10; ++q) {
      const VertexId a = host[rng.next_below(host.size())];
      const VertexId b = host[rng.next_below(host.size())];
      const bool got = core::FtcDecoder::connected(
          scheme.vertex_label(a), scheme.vertex_label(b), advert);
      const bool expect = graph::connected_avoiding(g, a, b, dead);
      ++queries;
      if (!got) ++disconnections;
      if (got != expect) ++mismatches;
    }
  }
  std::printf("%d epochs, %d reachability queries: %d reported partitions, "
              "%d oracle mismatches\n",
              epochs, queries, disconnections, mismatches);
  std::printf(mismatches == 0 ? "all answers exact.\n"
                              : "ERROR: decoder disagreed with oracle!\n");
  return mismatches == 0 ? 0 : 1;
}
