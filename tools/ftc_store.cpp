// ftc_store: build, inspect and query persistent label stores.
//
//   ftc_store build   --out labels.ftcs [--backend core-ftc] [--f 3]
//                     [--family random|gnp|grid|barbell|cliques|pa|
//                      hypercube|cycle|complete] [--n N] [--m M] [--p P]
//                     [--rows R] [--cols C] [--k K] [--len L] [--deg D]
//                     [--dim D] [--seed S] [--threads T]
//       generates the graph, builds the selected backend's labels and
//       writes them as one container file. --threads T fans the build
//       across T workers (0 = hardware concurrency); the output bytes
//       are identical for every T.
//
//   ftc_store inspect labels.ftcs [--verbose]
//       prints the parsed header: backend, dimensions, per-section and
//       per-label sizes, checksum. --verbose additionally maps +
//       digest-verifies every shard of a sharded store and prints what
//       each one costs.
//
//   ftc_store query   labels.ftcs --faults 3,17,40 --vertex-faults 5,9
//                     --pairs 0:9,4:7 [--mode mmap|materialize]
//                     [--threads T] [--prefetch[=P]]
//       spins up a BatchQueryEngine session directly from the store file
//       (no graph, no rebuild) and answers the queries. --vertex-faults
//       deletes whole vertices (every incident edge) via the adjacency
//       side-table; format-v1 stores carry none and fail with a
//       capability error. The file may be a container or a manifest.
//       --prefetch maps + digest-verifies all shards up front (P worker
//       threads; bare = auto) and prints the timing on stderr — answers
//       on stdout are byte-identical with and without it.
//
//   ftc_store shard   labels.ftcs --out labels.ftcm [--shards K]
//       splits an existing store into K shard containers plus a
//       manifest (written next to the manifest path); build also takes
//       --shards to emit a sharded store directly.
//
//   ftc_store merge   labels.ftcm --out labels.ftcs
//       folds a sharded store back into one container file.
//
//   ftc_store push    labels.ftcm --out next.ftcm [--parent prev.ftcm]
//                     [--shards K]
//       content-addressed delta push: republishes the store as a new
//       manifest generation, hard-linking shards that are byte-identical
//       to the parent's instead of rewriting them, and chaining the new
//       manifest to the parent (epoch + 1, parent digest). --parent
//       defaults to --out when a manifest already exists there; with no
//       parent at all this is a plain full sharded save.
//
//   ftc_store fsck    labels.ftcm
//       offline health check: validates the manifest (or container)
//       structurally and by checksum, then opens and fully verifies
//       every shard individually — a damaged shard is reported with its
//       exact unservable vertex/edge ranges instead of aborting the
//       scan, and the "<path>.jrnl" sidecar (if any) is validated
//       against the store. Exit 0 when clean, 2 when anything is
//       damaged. The incident-response companion of degraded serving:
//       what fsck flags is exactly what a live session quarantines.
//
//   ftc_store journal append labels.ftcs --edges 3,17 [--budget F]
//   ftc_store journal compact labels.ftcs
//       appends edge deletions to the store's "<path>.jrnl" sidecar (the
//       zero-rebuild churn path: journaled deletions fold into every
//       query's fault set at load until the labels are rebuilt). The
//       first append fixes the journal's fault budget via --budget;
//       later appends inherit it. compact folds all frames into one.
//
//   ftc_store swap-demo [--f K] [--n N] [--m M] [--queries Q] [--swaps S]
//                       [--seed S] [--threads T] [--prefetch[=P]] [--delta]
//       end-to-end zero-downtime swap demonstration: builds two label
//       generations, serves batches from one BatchQueryEngine session
//       while another thread swap_store()s between them, and verifies
//       every answer against the BFS ground truth of the epoch it was
//       served from. --delta runs the delta-push variant instead: serve
//       a sharded store, push a new manifest generation against it, swap
//       by path, and report how many shard mmaps the new generation
//       adopted versus newly mapped (a no-op delta must adopt all K).
//
// build/inspect/query/shard/merge accept both single containers and
// sharded manifests anywhere a store path is expected (the magic
// dispatch in open_store_view / load_scheme decides).
//
// Exit codes: 0 ok, 1 usage error, 2 store/build/capability error.
#include <pthread.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/journal.hpp"
#include "core/label_store.hpp"
#include "core/shard_server.hpp"
#include "core/sharded_store.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"
#include "util/failpoint.hpp"

namespace {

using namespace ftc;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s build --out FILE [--backend B] [--f K] [--family F] "
               "[generator flags] [--seed S] [--shards K] [--threads T]\n"
               "       %s inspect FILE [--verbose]\n"
               "       %s query FILE --faults a,b,c --vertex-faults u,v "
               "--pairs s:t,s:t [--mode mmap|materialize] [--threads T] "
               "[--prefetch[=P]]\n"
               "       %s shard FILE --out MANIFEST [--shards K]\n"
               "       %s merge MANIFEST --out FILE\n"
               "       %s push FILE --out MANIFEST [--parent MANIFEST] "
               "[--shards K]\n"
               "       %s fsck FILE\n"
               "       %s journal append FILE --edges a,b,c [--budget F]\n"
               "       %s journal compact FILE\n"
               "       %s swap-demo [--f K] [--n N] [--m M] [--queries Q] "
               "[--swaps S] [--seed S] [--threads T] [--prefetch[=P]] "
               "[--delta]\n"
               "       %s serve DIR [--port P]\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0);
  std::exit(1);
}

// Flat --key value / --key=value argument list -> map. Flags in
// `allowed` must carry a value; flags in `optional_value` may appear
// bare ("--prefetch") or with an ATTACHED value ("--prefetch=8") — they
// never consume the next token, so "--prefetch FILE" keeps FILE
// positional. Unknown keys are a usage error — a typo'd flag must not
// silently fall back to the default.
std::map<std::string, std::string> parse_flags(
    int argc, char** argv, int begin, std::string* positional,
    std::initializer_list<const char*> allowed,
    std::initializer_list<const char*> optional_value = {}) {
  std::map<std::string, std::string> flags;
  for (int i = begin; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      std::string value;
      bool has_value = false;
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
        has_value = true;
      }
      bool known = false;
      for (const char* a : allowed) known = known || key == a;
      bool optional = false;
      for (const char* a : optional_value) optional = optional || key == a;
      if (!known && !optional) {
        std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
        std::exit(1);
      }
      if (!has_value && !optional) {
        // A following "--flag" token is a missing value, not a value.
        if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          std::exit(1);
        }
        value = argv[++i];
      }
      flags[key] = value;
    } else if (positional != nullptr && positional->empty()) {
      *positional = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(1);
    }
  }
  return flags;
}

// Strict numeric parsing with usage-error (exit 1) semantics: malformed
// or out-of-range values must not surface as exit-2 "store errors".
std::uint64_t parse_u64_or_die(const std::string& s) {
  try {
    if (s.empty() || s[0] == '-') throw std::invalid_argument(s);
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "bad numeric value: %s\n", s.c_str());
    std::exit(1);
  }
}

double parse_double_or_die(const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "bad numeric value: %s\n", s.c_str());
    std::exit(1);
  }
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// --prefetch[=THREADS]: absent -> no prefetch (negative sentinel); bare
// -> 0 (the view picks its fan-out); =N -> N threads.
long prefetch_threads(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("prefetch");
  if (it == flags.end()) return -1;
  if (it->second.empty()) return 0;
  return static_cast<long>(parse_u64_or_die(it->second));
}

// Runs view->prefetch and reports the timing on STDERR — query answers
// on stdout must stay byte-identical with and without --prefetch.
void run_prefetch(const core::StoreView& view, long threads) {
  const auto stats = view.prefetch(static_cast<unsigned>(threads));
  std::fprintf(stderr,
               "prefetch: %zu shard(s) newly mapped in %.1f us (%u threads)\n",
               stats.shards_opened, stats.total_us, stats.threads);
}

std::uint64_t flag_u64(const std::map<std::string, std::string>& flags,
                       const std::string& key, std::uint64_t fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : parse_u64_or_die(it->second);
}

graph::Graph make_graph(const std::map<std::string, std::string>& flags) {
  const std::string family = flag_or(flags, "family", "random");
  const auto n = static_cast<graph::VertexId>(flag_u64(flags, "n", 256));
  const std::uint64_t seed = flag_u64(flags, "seed", 1);
  if (family == "random") {
    const auto m = static_cast<graph::EdgeId>(flag_u64(flags, "m", 3 * n));
    return graph::random_connected(n, m, seed);
  }
  if (family == "gnp") {
    const double p = parse_double_or_die(flag_or(flags, "p", "0.1"));
    return graph::gnp(n, p, seed);
  }
  if (family == "grid") {
    return graph::grid(static_cast<graph::VertexId>(flag_u64(flags, "rows", 16)),
                       static_cast<graph::VertexId>(flag_u64(flags, "cols", 16)));
  }
  if (family == "barbell") {
    return graph::barbell(static_cast<graph::VertexId>(flag_u64(flags, "k", 12)),
                          static_cast<graph::VertexId>(flag_u64(flags, "len", 4)));
  }
  if (family == "cliques") {
    return graph::path_of_cliques(
        static_cast<graph::VertexId>(flag_u64(flags, "n", 8)),
        static_cast<graph::VertexId>(flag_u64(flags, "k", 8)));
  }
  if (family == "pa") {
    return graph::preferential_attachment(
        n, static_cast<unsigned>(flag_u64(flags, "deg", 3)), seed);
  }
  if (family == "hypercube") {
    return graph::hypercube(static_cast<unsigned>(flag_u64(flags, "dim", 8)));
  }
  if (family == "cycle") return graph::cycle(n);
  if (family == "complete") return graph::complete(n);
  std::fprintf(stderr, "unknown --family %s\n", family.c_str());
  std::exit(1);
}

// 32-bit range check on top of the strict parse, so oversized CLI IDs
// error out instead of silently wrapping to a different (valid) ID.
std::uint32_t parse_id32(const std::string& s) {
  const std::uint64_t v = parse_u64_or_die(s);
  if (v > UINT32_MAX) {
    std::fprintf(stderr, "ID out of range: %s\n", s.c_str());
    std::exit(1);
  }
  return static_cast<std::uint32_t>(v);
}

// "3,17,40" -> {3, 17, 40}; empty string -> {}.
std::vector<graph::EdgeId> parse_id_list(const std::string& s) {
  std::vector<graph::EdgeId> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(parse_id32(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

// "0:9,4:7" -> {(0,9), (4,7)}.
std::vector<core::BatchQueryEngine::Query> parse_pairs(const std::string& s) {
  std::vector<core::BatchQueryEngine::Query> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    const std::string pair = s.substr(pos, next - pos);
    const std::size_t colon = pair.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad pair (want s:t): %s\n", pair.c_str());
      std::exit(1);
    }
    out.push_back({parse_id32(pair.substr(0, colon)),
                   parse_id32(pair.substr(colon + 1))});
    pos = next + 1;
  }
  return out;
}

int cmd_build(int argc, char** argv) {
  const auto flags = parse_flags(
      argc, argv, 2, nullptr,
      {"out", "backend", "f", "scheme-seed", "family", "n", "m", "p", "rows",
       "cols", "k", "len", "deg", "dim", "seed", "shards", "threads"});
  const auto out_it = flags.find("out");
  if (out_it == flags.end()) {
    std::fprintf(stderr, "build: --out FILE is required\n");
    return 1;
  }
  core::SchemeConfig config;
  config.backend = core::parse_backend(flag_or(flags, "backend", "core-ftc"));
  config.set_f(static_cast<unsigned>(flag_u64(flags, "f", 3)));
  config.set_seed(flag_u64(flags, "scheme-seed", 1));
  // Build worker threads (0 = hardware concurrency). The store bytes are
  // identical for any value — only the wall-clock changes.
  config.set_build_threads(
      static_cast<unsigned>(flag_u64(flags, "threads", 1)));
  const auto shards = static_cast<unsigned>(flag_u64(flags, "shards", 0));

  const graph::Graph g = make_graph(flags);
  std::printf("graph: n=%u m=%u; building %s labels (f=%u)...\n",
              g.num_vertices(), g.num_edges(),
              core::backend_name(config.backend), config.f());
  const auto scheme = core::make_scheme(g, config);
  if (shards > 0) {
    core::save_sharded(*scheme, out_it->second, shards);
  } else {
    scheme->save(out_it->second);
  }
  const auto view = core::open_store_view(out_it->second);
  std::printf(
      "wrote %s: %zu bytes, %u shard(s) (%.2f bits/edge label, checksum "
      "%016llx)\n",
      out_it->second.c_str(), view->info().file_bytes,
      view->info().num_shards > 0 ? view->info().num_shards : 1,
      static_cast<double>(view->info().edge_label_bits),
      static_cast<unsigned long long>(view->info().payload_checksum));
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  std::string path;
  const auto flags = parse_flags(argc, argv, 2, &path, {}, {"verbose"});
  const bool verbose = flags.count("verbose") != 0;
  if (path.empty()) {
    std::fprintf(stderr, "inspect: FILE is required\n");
    return 1;
  }
  const auto view = core::open_store_view(path);
  const core::StoreInfo& info = view->info();
  const auto* sharded =
      dynamic_cast<const core::ShardedStoreView*>(view.get());
  std::printf("label store        %s%s\n", path.c_str(),
              sharded != nullptr ? " (sharded manifest)" : "");
  std::printf("format version     %u\n", info.format_version);
  std::printf("backend            %s\n", core::backend_name(info.backend));
  std::printf("vertices           %u\n", info.num_vertices);
  std::printf("edges              %u\n", info.num_edges);
  std::printf("file bytes         %zu\n", info.file_bytes);
  std::printf("  params blob      %zu\n", info.params_bytes);
  std::printf("  vertex section   %zu\n", info.vertex_section_bytes);
  std::printf("  edge index       %zu\n", info.edge_index_bytes);
  std::printf("  edge blobs       %zu\n", info.edge_blob_bytes);
  std::printf("  adjacency        %zu\n", info.adjacency_bytes);
  std::printf("vertex faults      %s\n",
              info.has_adjacency ? "supported (adjacency side-table)"
                                 : "unsupported (no adjacency; format v1?)");
  std::printf("vertex label bits  %zu\n", info.vertex_label_bits);
  std::printf("edge label bits    %zu\n", info.edge_label_bits);
  std::printf("payload checksum   %016llx\n",
              static_cast<unsigned long long>(info.payload_checksum));
  // Deletion-journal sidecar occupancy (the churn budget): report it
  // even when the journal itself is unusable, so operators can see WHY
  // (over capacity, digest mismatch after a push, corruption).
  const std::string jpath = core::journal_path_for(path);
  if (core::DeletionJournal::exists(jpath)) {
    try {
      const auto j = core::DeletionJournal::open(jpath);
      j->validate_against(info, path);
      std::printf("journal            epoch %llu: %zu/%u deletions "
                  "(%zu query-fault slots remain; %zu frames, %zu bytes)\n",
                  static_cast<unsigned long long>(j->epoch()), j->occupancy(),
                  j->fault_budget(), j->remaining(), j->num_frames(),
                  j->file_bytes());
    } catch (const std::exception& e) {
      std::printf("journal            UNSERVABLE: %s\n", e.what());
    }
  }
  if (sharded != nullptr) {
    std::printf("manifest epoch     %llu\n",
                static_cast<unsigned long long>(info.manifest_epoch));
    std::printf("parent digest      %016llx%s\n",
                static_cast<unsigned long long>(info.parent_digest),
                info.parent_digest == 0 ? " (full save, no parent)" : "");
  }
  if (sharded != nullptr) {
    // --verbose: sequentially map + digest-verify every shard and report
    // what each one costs (the per-shard share of a cold first query or
    // of a prefetch pass).
    core::store::PrefetchStats stats;
    if (verbose) stats = sharded->prefetch(1);
    std::printf("shards             %u\n", info.num_shards);
    std::size_t k = 0;
    for (const core::store::ShardRecord& rec : sharded->shards()) {
      std::printf(
          "  %-28s vertices [%llu, %llu) edges [%llu, %llu) %llu bytes "
          "digest %016llx",
          rec.name.c_str(),
          static_cast<unsigned long long>(rec.vertex_begin),
          static_cast<unsigned long long>(rec.vertex_end),
          static_cast<unsigned long long>(rec.edge_begin),
          static_cast<unsigned long long>(rec.edge_end),
          static_cast<unsigned long long>(rec.file_bytes),
          static_cast<unsigned long long>(rec.payload_digest));
      if (verbose) std::printf(" map+digest %.1f us", stats.shard_us[k]);
      std::printf("\n");
      ++k;
    }
    if (verbose) {
      std::printf("prefetch           %.1f us total, route table %s\n",
                  stats.total_us,
                  sharded->routes() != nullptr ? "resolved" : "unresolved");
    }
  }
  return 0;
}

int cmd_shard(int argc, char** argv) {
  std::string path;
  const auto flags = parse_flags(argc, argv, 2, &path, {"out", "shards"});
  const auto out_it = flags.find("out");
  if (path.empty() || out_it == flags.end()) {
    std::fprintf(stderr, "shard: FILE and --out MANIFEST are required\n");
    return 1;
  }
  const auto shards = static_cast<unsigned>(flag_u64(flags, "shards", 4));
  if (shards == 0) {
    std::fprintf(stderr, "shard: --shards must be >= 1\n");
    return 1;
  }
  const auto scheme = core::load_scheme(path);
  core::save_sharded(*scheme, out_it->second, shards);
  const auto view = core::open_store_view(out_it->second);
  std::printf("sharded %s -> %s: %u shards, %zu bytes total\n", path.c_str(),
              out_it->second.c_str(), view->info().num_shards,
              view->info().file_bytes);
  return 0;
}

int cmd_push(int argc, char** argv) {
  std::string path;
  const auto flags =
      parse_flags(argc, argv, 2, &path, {"out", "parent", "shards"});
  const auto out_it = flags.find("out");
  if (path.empty() || out_it == flags.end()) {
    std::fprintf(stderr, "push: FILE and --out MANIFEST are required\n");
    return 1;
  }
  // The pushed labels are the store's own (replay_journal=false: a
  // journal is query-side state, not label content — pushing does not
  // bake journaled deletions into the labels).
  core::LoadOptions options;
  options.replay_journal = false;
  const auto scheme = core::load_scheme(path, options);
  std::string parent = flag_or(flags, "parent", "");
  if (parent.empty()) {
    // Re-pushing over an existing manifest chains to it by default.
    struct stat st{};
    if (::stat(out_it->second.c_str(), &st) == 0) parent = out_it->second;
  }
  const auto shards = static_cast<unsigned>(flag_u64(flags, "shards", 0));
  if (parent.empty()) {
    core::save_sharded(*scheme, out_it->second, shards > 0 ? shards : 4);
    const auto view = core::open_store_view(out_it->second);
    std::printf("full push %s -> %s: epoch 1, %u shards, %zu bytes\n",
                path.c_str(), out_it->second.c_str(), view->info().num_shards,
                view->info().file_bytes);
    return 0;
  }
  const core::DeltaPushStats stats =
      core::save_sharded_delta(*scheme, out_it->second, parent, shards);
  std::printf(
      "delta push %s -> %s (parent %s)\n"
      "  epoch %llu: %zu/%zu shards reused, %zu written\n"
      "  bytes written %llu (+%llu manifest), bytes reused %llu\n",
      path.c_str(), out_it->second.c_str(), parent.c_str(),
      static_cast<unsigned long long>(stats.epoch), stats.shards_reused,
      stats.shards_total, stats.shards_written,
      static_cast<unsigned long long>(stats.bytes_written),
      static_cast<unsigned long long>(stats.manifest_bytes),
      static_cast<unsigned long long>(stats.bytes_reused));
  if (stats.shards_link_fallback != 0) {
    std::printf(
        "  hard-link reuse unavailable for %zu shards (written in full)\n",
        stats.shards_link_fallback);
  }
  return 0;
}

int cmd_fsck(int argc, char** argv) {
  std::string path;
  const auto flags = parse_flags(argc, argv, 2, &path, {});
  (void)flags;
  if (path.empty()) {
    std::fprintf(stderr, "fsck: FILE is required\n");
    return 1;
  }

  // Sniff the magic ourselves (open_store_view's sharded open is the
  // STRICT one, which aborts on the first damaged shard file — exactly
  // what fsck must not do): a manifest goes through open_degraded so
  // one dead shard leaves the others scannable.
  std::uint64_t magic = 0;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::printf("fsck %s: FAILED: cannot open (%s)\n", path.c_str(),
                  std::strerror(errno));
      return 2;
    }
    std::uint8_t buf[8] = {};
    const std::size_t got = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    if (got < sizeof(buf)) {
      std::printf("fsck %s: FAILED: truncated (no magic)\n", path.c_str());
      return 2;
    }
    for (int i = 0; i < 8; ++i) magic |= std::uint64_t{buf[i]} << (8 * i);
  }

  std::size_t damaged = 0;
  std::shared_ptr<const core::StoreView> view;
  try {
    if (magic != core::store::kManifestMagic) {
      // Flat container: the verifying open IS the full check.
      view = core::open_store_view(path, /*verify_checksum=*/true);
      std::printf("fsck %s: container ok (%zu bytes)\n", path.c_str(),
                  view->info().file_bytes);
    } else {
      const auto deg = core::ShardedStoreView::open_degraded(
          path, /*verify_checksum=*/true);
      view = deg;
      const auto shards = deg->shards();
      std::printf("fsck %s: manifest ok (epoch %llu, %u shards)\n",
                  path.c_str(),
                  static_cast<unsigned long long>(
                      deg->info().manifest_epoch),
                  deg->info().num_shards);
      for (std::size_t k = 0; k < shards.size(); ++k) {
        const auto& rec = shards[k];
        try {
          deg->verify_shard(k);
          std::printf("  shard %zu %s: ok\n", k, rec.name.c_str());
        } catch (const core::StoreError& e) {
          ++damaged;
          std::printf("  shard %zu %s: FAILED (vertices [%llu, %llu), "
                      "edges [%llu, %llu) unservable): %s\n",
                      k, rec.name.c_str(),
                      static_cast<unsigned long long>(rec.vertex_begin),
                      static_cast<unsigned long long>(rec.vertex_end),
                      static_cast<unsigned long long>(rec.edge_begin),
                      static_cast<unsigned long long>(rec.edge_end),
                      e.what());
        }
      }
    }
  } catch (const core::StoreError& e) {
    std::printf("fsck %s: FAILED: %s\n", path.c_str(), e.what());
    return 2;
  }

  const std::string jpath = core::journal_path_for(path);
  if (core::DeletionJournal::exists(jpath)) {
    try {
      const auto j = core::DeletionJournal::open(jpath);
      j->validate_against(view->info(), path);
      std::printf("  journal %s: ok (%zu deletions, epoch %llu)\n",
                  jpath.c_str(), j->occupancy(),
                  static_cast<unsigned long long>(j->epoch()));
    } catch (const std::exception& e) {
      ++damaged;
      std::printf("  journal %s: FAILED: %s\n", jpath.c_str(), e.what());
    }
  }

  if (damaged != 0) {
    std::printf("fsck %s: %zu damaged\n", path.c_str(), damaged);
    return 2;
  }
  std::printf("fsck %s: clean\n", path.c_str());
  return 0;
}

int cmd_journal(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "journal: append|compact subcommand required\n");
    return 1;
  }
  const std::string sub = argv[2];
  std::string path;
  if (sub == "append") {
    const auto flags = parse_flags(argc, argv, 3, &path, {"edges", "budget"});
    const auto edges_it = flags.find("edges");
    if (path.empty() || edges_it == flags.end()) {
      std::fprintf(stderr,
                   "journal append: FILE and --edges a,b,c are required\n");
      return 1;
    }
    const auto edges = parse_id_list(edges_it->second);
    if (edges.empty()) {
      std::fprintf(stderr, "journal append: --edges must name an edge\n");
      return 1;
    }
    // Bind to the store: digest for the chain, num_edges for ID hygiene
    // (a typo'd edge ID must fail here, not at some later load).
    const auto view = core::open_store_view(path, /*verify_checksum=*/false);
    for (const graph::EdgeId e : edges) {
      if (e >= view->info().num_edges) {
        std::fprintf(stderr, "journal append: edge %u out of range (m=%u)\n",
                     e, view->info().num_edges);
        return 1;
      }
    }
    const std::string jpath = core::journal_path_for(path);
    std::uint32_t budget = 0;
    if (flags.count("budget") != 0) {
      budget = static_cast<std::uint32_t>(
          parse_u64_or_die(flags.at("budget")));
    } else if (core::DeletionJournal::exists(jpath)) {
      budget = core::DeletionJournal::open(jpath)->fault_budget();
    } else {
      std::fprintf(stderr,
                   "journal append: --budget F is required for the first "
                   "append (stores do not record their fault budget)\n");
      return 1;
    }
    core::DeletionJournal::append(jpath, view->info().payload_checksum,
                                  budget, edges);
    const auto j = core::DeletionJournal::open(jpath);
    std::printf("journal %s: epoch %llu, %zu/%u deletions journaled "
                "(%zu query-fault slots remain)\n",
                jpath.c_str(), static_cast<unsigned long long>(j->epoch()),
                j->occupancy(), j->fault_budget(), j->remaining());
    return 0;
  }
  if (sub == "compact") {
    const auto flags = parse_flags(argc, argv, 3, &path, {});
    (void)flags;
    if (path.empty()) {
      std::fprintf(stderr, "journal compact: FILE is required\n");
      return 1;
    }
    const auto stats =
        core::DeletionJournal::compact(core::journal_path_for(path));
    std::printf("compacted %s: %zu -> %zu frames, %zu -> %zu bytes\n",
                core::journal_path_for(path).c_str(), stats.frames_before,
                stats.frames_after, stats.file_bytes_before,
                stats.file_bytes_after);
    return 0;
  }
  std::fprintf(stderr, "journal: unknown subcommand %s\n", sub.c_str());
  return 1;
}

int cmd_merge(int argc, char** argv) {
  std::string path;
  const auto flags = parse_flags(argc, argv, 2, &path, {"out"});
  const auto out_it = flags.find("out");
  if (path.empty() || out_it == flags.end()) {
    std::fprintf(stderr, "merge: MANIFEST and --out FILE are required\n");
    return 1;
  }
  const auto scheme = core::load_scheme(path);
  scheme->save(out_it->second);
  const auto view = core::open_store_view(out_it->second);
  std::printf("merged %s -> %s: %zu bytes\n", path.c_str(),
              out_it->second.c_str(), view->info().file_bytes);
  return 0;
}

// swap-demo --delta: one serving session, a zero-delta push from the
// serving manifest to a child manifest, then swap_store(path). Every
// shard is byte-identical to its parent, so the swap must adopt all of
// them (no new mmaps) and answers must not change.
int run_delta_swap_demo(const std::map<std::string, std::string>& flags) {
  const auto n = static_cast<graph::VertexId>(flag_u64(flags, "n", 96));
  const auto m = static_cast<graph::EdgeId>(flag_u64(flags, "m", 3 * n));
  const auto f = static_cast<unsigned>(flag_u64(flags, "f", 4));
  const auto queries_per_batch = flag_u64(flags, "queries", 256);
  const std::uint64_t seed = flag_u64(flags, "seed", 1);
  core::SchemeConfig config;
  config.backend = core::parse_backend(flag_or(flags, "backend", "core-ftc"));
  config.set_f(f).set_seed(seed);

  const graph::Graph g = graph::random_connected(n, m, seed);
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  const std::string store_a =
      dir + "/ftc_delta_demo_a_" + std::to_string(::getpid()) + ".ftcm";
  const std::string store_b =
      dir + "/ftc_delta_demo_b_" + std::to_string(::getpid()) + ".ftcm";
  constexpr unsigned kShards = 4;
  const auto scheme = core::make_scheme(g, config);
  core::save_sharded(*scheme, store_a, kShards);

  SplitMix64 rng(seed);
  std::vector<graph::EdgeId> faults;
  for (unsigned i = 0; i < f; ++i) {
    faults.push_back(static_cast<graph::EdgeId>(rng.next_below(m)));
  }
  std::vector<core::BatchQueryEngine::Query> batch;
  for (std::uint64_t i = 0; i < queries_per_batch; ++i) {
    batch.push_back({static_cast<graph::VertexId>(rng.next_below(n)),
                     static_cast<graph::VertexId>(rng.next_below(n))});
  }

  core::BatchQueryEngine session(core::load_scheme(store_a),
                                 core::FaultSpec::edges(faults));
  const auto before = session.run_sequential(batch);

  const core::DeltaPushStats stats =
      core::save_sharded_delta(*scheme, store_b, store_a);
  std::printf("delta push: epoch %llu, %zu/%zu shards reused, %zu written\n",
              static_cast<unsigned long long>(stats.epoch),
              stats.shards_reused, stats.shards_total, stats.shards_written);
  const auto epoch = session.swap_store(store_b);
  const auto view = std::dynamic_pointer_cast<const core::ShardedStoreView>(
      session.scheme().store_view());
  const std::size_t adopted = view != nullptr ? view->shards_adopted() : 0;
  std::printf("swap to %s (engine epoch %llu): %zu/%u shards adopted, "
              "%zu newly mapped\n",
              store_b.c_str(), static_cast<unsigned long long>(epoch),
              adopted, kShards, kShards - adopted);
  const auto after = session.run_sequential(batch);
  std::uint64_t mismatches = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    mismatches += before[i] != after[i];
  }
  std::printf("%zu queries re-run after swap, %llu answers changed\n",
              batch.size(), static_cast<unsigned long long>(mismatches));

  for (const auto& path : {store_b, store_a}) {
    const auto manifest = core::ShardedStoreView::open(path, false);
    for (const auto& rec : manifest->shards()) {
      std::remove((dir + "/" + rec.name).c_str());
    }
    std::remove(path.c_str());
  }
  if (stats.shards_reused != kShards || adopted != kShards ||
      mismatches != 0) {
    std::fprintf(stderr,
                 "delta swap-demo: expected a zero-delta push to reuse and "
                 "adopt all %u shards with unchanged answers\n",
                 kShards);
    return 2;
  }
  return 0;
}

// Live-swap demonstration: one serving session, two label generations,
// concurrent swap_store calls, every answer checked against the BFS
// ground truth of the epoch it was served from.
int cmd_swap_demo(int argc, char** argv) {
  const auto flags = parse_flags(
      argc, argv, 2, nullptr,
      {"f", "n", "m", "queries", "swaps", "seed", "threads", "backend"},
      {"prefetch", "delta"});
  if (flags.count("delta") != 0) return run_delta_swap_demo(flags);
  const auto n = static_cast<graph::VertexId>(flag_u64(flags, "n", 96));
  const auto m = static_cast<graph::EdgeId>(flag_u64(flags, "m", 3 * n));
  const auto f = static_cast<unsigned>(flag_u64(flags, "f", 4));
  const auto queries_per_batch = flag_u64(flags, "queries", 256);
  const auto swaps = flag_u64(flags, "swaps", 8);
  const std::uint64_t seed = flag_u64(flags, "seed", 1);
  const auto threads = static_cast<unsigned>(flag_u64(flags, "threads", 2));
  core::SchemeConfig config;
  config.backend = core::parse_backend(flag_or(flags, "backend", "core-ftc"));
  config.set_f(f).set_seed(seed);

  // Two label generations over two graphs with identical ID spaces, so
  // the same queries and fault IDs stay valid across the swap.
  const graph::Graph g_a = graph::random_connected(n, m, seed);
  const graph::Graph g_b = graph::random_connected(n, m, seed + 17);
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  const std::string store_a =
      dir + "/ftc_swap_demo_a_" + std::to_string(::getpid()) + ".ftcs";
  const std::string store_b =
      dir + "/ftc_swap_demo_b_" + std::to_string(::getpid()) + ".ftcm";
  core::make_scheme(g_a, config)->save(store_a);
  // Generation B served from a sharded store, to show the two artifact
  // layouts are interchangeable on the serving path.
  core::save_sharded(*core::make_scheme(g_b, config), store_b, 4);
  std::printf("generation A: %s\ngeneration B: %s (4 shards)\n",
              store_a.c_str(), store_b.c_str());

  SplitMix64 rng(seed);
  std::vector<graph::EdgeId> faults;
  for (unsigned i = 0; i < f; ++i) {
    faults.push_back(static_cast<graph::EdgeId>(rng.next_below(m)));
  }
  std::vector<core::BatchQueryEngine::Query> batch;
  for (std::uint64_t i = 0; i < queries_per_batch; ++i) {
    batch.push_back({static_cast<graph::VertexId>(rng.next_below(n)),
                     static_cast<graph::VertexId>(rng.next_below(n))});
  }
  std::vector<bool> truth_a;
  std::vector<bool> truth_b;
  for (const auto& q : batch) {
    truth_a.push_back(graph::connected_avoiding(g_a, q.s, q.t, faults));
    truth_b.push_back(graph::connected_avoiding(g_b, q.s, q.t, faults));
  }

  // --prefetch: warm each generation's labels explicitly before handing
  // it to the session (swap_store prefetches on its own; the flag makes
  // the warm-up visible and timed). Diagnostics go to stderr.
  const long pf = prefetch_threads(flags);
  auto load_generation = [&](const std::string& path) {
    auto scheme = core::load_scheme(path);
    if (pf >= 0) {
      const auto t0 = std::chrono::steady_clock::now();
      scheme->prefetch(static_cast<unsigned>(pf));
      std::fprintf(stderr, "prefetch %s: %.1f us\n", path.c_str(),
                   std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
    }
    return scheme;
  };

  core::BatchQueryEngine session(load_generation(store_a),
                                 core::FaultSpec::edges(faults));
  // Epoch 1 = A; the swapper alternates B, A, B, ... so odd epochs serve
  // A and even epochs serve B.
  std::atomic<bool> done{false};
  std::thread swapper([&] {
    for (std::uint64_t i = 0; i < swaps && !done.load(); ++i) {
      const bool to_b = i % 2 == 0;
      const auto epoch =
          session.swap_store(load_generation(to_b ? store_b : store_a));
      std::printf("swap #%llu -> generation %s now serving (epoch %llu)\n",
                  static_cast<unsigned long long>(i + 1), to_b ? "B" : "A",
                  static_cast<unsigned long long>(epoch));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done.store(true);
  });

  std::uint64_t total = 0;
  std::uint64_t mismatches = 0;
  std::map<std::uint64_t, std::uint64_t> per_epoch;
  while (!done.load()) {
    const auto results = threads > 1 ? session.run_parallel(batch, threads)
                                     : session.run_sequential(batch);
    const std::uint64_t epoch = session.last_run_epoch();
    const std::vector<bool>& truth = epoch % 2 == 1 ? truth_a : truth_b;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      mismatches += results[i] != truth[i];
    }
    total += batch.size();
    per_epoch[epoch] += batch.size();
  }
  swapper.join();
  std::remove(store_a.c_str());
  const auto manifest = core::ShardedStoreView::open(store_b);
  for (const auto& rec : manifest->shards()) {
    std::remove((dir + "/" + rec.name).c_str());
  }
  std::remove(store_b.c_str());

  for (const auto& [epoch, count] : per_epoch) {
    std::printf("epoch %llu answered %llu queries (generation %s)\n",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(count),
                epoch % 2 == 1 ? "A" : "B");
  }
  std::printf("%llu queries across %zu epochs, %llu inconsistent answers\n",
              static_cast<unsigned long long>(total), per_epoch.size(),
              static_cast<unsigned long long>(mismatches));
  if (mismatches != 0) {
    std::fprintf(stderr, "swap-demo: answers disagreed with their epoch\n");
    return 2;
  }
  return 0;
}

int cmd_query(int argc, char** argv) {
  std::string path;
  const auto flags =
      parse_flags(argc, argv, 2, &path,
                  {"mode", "faults", "vertex-faults", "pairs", "threads"},
                  {"prefetch", "ignore-journal"});
  if (path.empty()) {
    std::fprintf(stderr, "query: FILE is required\n");
    return 1;
  }
  core::LoadOptions options;
  const std::string mode = flag_or(flags, "mode", "mmap");
  if (mode == "mmap") {
    options.mode = core::LoadMode::kMmap;
  } else if (mode == "materialize") {
    options.mode = core::LoadMode::kMaterialize;
  } else {
    std::fprintf(stderr, "bad --mode %s (want mmap|materialize)\n",
                 mode.c_str());
    return 1;
  }
  const auto faults = parse_id_list(flag_or(flags, "faults", ""));
  const auto vertex_faults =
      parse_id_list(flag_or(flags, "vertex-faults", ""));
  const auto pairs = parse_pairs(flag_or(flags, "pairs", ""));
  if (pairs.empty()) {
    std::fprintf(stderr, "query: --pairs s:t[,s:t...] is required\n");
    return 1;
  }
  const auto threads = static_cast<unsigned>(flag_u64(flags, "threads", 1));

  const core::FaultSpec spec = core::FaultSpec::of(faults, vertex_faults);
  const auto view = core::open_store_view(path, options.verify_checksum);
  const long pf = prefetch_threads(flags);
  if (pf >= 0) run_prefetch(*view, pf);
  auto scheme = core::load_scheme(view, options.mode);
  // The view-based load skips sidecar discovery; attach the deletion
  // journal here so the CLI answers match load_scheme(path) semantics.
  if (flags.count("ignore-journal") == 0) {
    core::attach_journal_sidecar(*scheme, path, /*replay=*/true);
  }
  core::BatchQueryEngine session(std::move(scheme), spec);
  const auto results = threads > 1 ? session.run_parallel(pairs, threads)
                                   : session.run_sequential(pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::printf("%u %u %s\n", pairs[i].s, pairs[i].t,
                results[i] ? "connected" : "disconnected");
  }
  return 0;
}

// serve: a loopback static shard origin ("ftc_store serve DIR --port P")
// so demos and e2e tests can exercise the remote tier with no external
// server. Prints the base URL on stdout (machine-parseable: scripts
// read it to learn the ephemeral port), then blocks until SIGINT or
// SIGTERM and shuts down cleanly — exit 0 with every thread joined, so
// sanitizer legs can assert a leak-free lifecycle.
int cmd_serve(int argc, char** argv) {
  std::string dir;
  const auto flags = parse_flags(argc, argv, 2, &dir, {"port"});
  if (dir.empty()) usage(argv[0]);
  const std::uint64_t port = flag_u64(flags, "port", 0);
  if (port > 65535) {
    std::fprintf(stderr, "bad port: %llu\n",
                 static_cast<unsigned long long>(port));
    return 1;
  }

  // Block the shutdown signals BEFORE the server spawns threads so
  // every thread inherits the mask and sigwait below is the only
  // consumer.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  ::pthread_sigmask(SIG_BLOCK, &set, nullptr);

  core::ShardHttpServer server(dir, static_cast<std::uint16_t>(port));
  server.start();
  std::printf("serving %s on %s (pid %ld)\n", dir.c_str(),
              server.base_url().c_str(), static_cast<long>(::getpid()));
  std::fflush(stdout);

  int sig = 0;
  while (::sigwait(&set, &sig) != 0) {
  }
  server.stop();
  const auto stats = server.stats();
  std::fprintf(stderr,
               "serve: stopped on signal %d after %llu request(s) "
               "(%llu range, %llu not found, %llu bytes sent)\n",
               sig, static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.range_requests),
               static_cast<unsigned long long>(stats.not_found),
               static_cast<unsigned long long>(stats.bytes_sent));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  // Fault-injection drills: FTC_FAILPOINTS="name=spec;..." arms the
  // named failpoints for this invocation (also loaded by the library's
  // own static initializer; the explicit call makes a malformed spec
  // fail loudly here instead of silently depending on link order).
  ftc::failpoint::load_env();
  const std::string cmd = argv[1];
  try {
    if (cmd == "build") return cmd_build(argc, argv);
    if (cmd == "inspect") return cmd_inspect(argc, argv);
    if (cmd == "query") return cmd_query(argc, argv);
    if (cmd == "shard") return cmd_shard(argc, argv);
    if (cmd == "push") return cmd_push(argc, argv);
    if (cmd == "fsck") return cmd_fsck(argc, argv);
    if (cmd == "journal") return cmd_journal(argc, argv);
    if (cmd == "merge") return cmd_merge(argc, argv);
    if (cmd == "swap-demo") return cmd_swap_demo(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage(argv[0]);
}
