// The auxiliary graph transformation of Section 3.2 (Figure 1): every
// non-tree edge e = (u, v) of G is subdivided by a fresh vertex w_e into a
// tree edge (u, w_e) — which joins the spanning tree T' — and a non-tree
// edge e' = (w_e, v). This reduces general f-FTC labeling to the
// tree-edge-faults-only case (Proposition 1): the injective map sigma
// sends each original edge to a T'-tree edge, and s-t connectivity in
// G - F equals connectivity in G' - sigma(F).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/spanning_tree.hpp"

namespace ftc::graph {

struct AuxGraph {
  Graph g2;           // G'
  SpanningTree t2;    // T' rooted at the same root as T

  VertexId orig_n = 0;
  EdgeId orig_m = 0;

  // sigma: original EdgeId -> tree EdgeId of T' in g2 (Proposition 1).
  std::vector<EdgeId> sigma;
  // For original non-tree edges: the g2-EdgeId of the half e' = (w_e, v);
  // kNoEdge for original tree edges.
  std::vector<EdgeId> second_half;
  // For original non-tree edges: the subdivision vertex w_e; kNoVertex
  // for original tree edges.
  std::vector<VertexId> sub_vertex;
  // Inverse map: g2 non-tree EdgeId -> original EdgeId (kNoEdge for g2
  // tree edges).
  std::vector<EdgeId> orig_of;
};

AuxGraph build_aux_graph(const Graph& g, const SpanningTree& t);

}  // namespace ftc::graph
