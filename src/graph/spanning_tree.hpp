// Rooted spanning trees. The whole labeling framework is parameterized by
// an arbitrary rooted spanning tree T of the input graph (Section 3); we
// provide BFS construction (also the choice of the distributed algorithm
// in Section 8) and a constructor from explicit parent arrays (used for
// the auxiliary graph T', Section 3.2).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace ftc::graph {

struct SpanningTree {
  VertexId root = kNoVertex;
  std::vector<VertexId> parent;      // parent[root] == root
  std::vector<EdgeId> parent_edge;   // kNoEdge for the root
  std::vector<std::uint32_t> depth;  // depth[root] == 0
  std::vector<std::vector<VertexId>> children;
  std::vector<char> is_tree_edge;    // indexed by EdgeId of the host graph

  VertexId num_vertices() const {
    return static_cast<VertexId>(parent.size());
  }

  // The endpoint of tree edge e farther from the root ("lower vertex").
  VertexId lower_endpoint(const Graph& g, EdgeId e) const;
};

// Builds the BFS spanning tree rooted at root. Requires g connected.
SpanningTree bfs_spanning_tree(const Graph& g, VertexId root);

// Builds the tree structure from explicit parent/parent-edge arrays
// (children lists, depths, is_tree_edge derived). parent[root] must be
// root; every other vertex must reach the root by parent pointers.
SpanningTree tree_from_parents(const Graph& g, VertexId root,
                               std::vector<VertexId> parent,
                               std::vector<EdgeId> parent_edge);

bool is_connected(const Graph& g);

}  // namespace ftc::graph
