// Euler tour of a rooted tree, following Duan-Pettie as used in
// Section 4.3: every undirected tree edge is replaced by a downward and an
// upward directed edge; the tour orders all 2(n-1) directed edges, and
// each non-root vertex inherits the position of its entering (downward)
// edge as its one-dimensional coordinate c(v).
//
// Also computes the pre-order intervals (tin, tout) that realize the
// Kannan-Naor-Rudich ancestry labeling (Lemma 7).
#pragma once

#include <vector>

#include "graph/spanning_tree.hpp"

namespace ftc::graph {

struct EulerTour {
  // c(v): position in [1, 2n-2] of v's entering edge; c(root) = 0 (the
  // root precedes the whole tour, matching Lemma 9's parity convention).
  std::vector<std::uint32_t> coord;
  // Position in [1, 2n-2] of v's leaving (upward) edge; 2n-1 for the root
  // (conceptually after the whole tour).
  std::vector<std::uint32_t> exit_pos;
  // Pre-order DFS intervals over vertex counts: tin in [0, n); tout is the
  // largest tin in v's subtree. u is an ancestor-or-self of v iff
  // tin[u] <= tin[v] <= tout[u].
  std::vector<std::uint32_t> tin;
  std::vector<std::uint32_t> tout;

  bool is_ancestor_or_self(VertexId u, VertexId v) const {
    return tin[u] <= tin[v] && tin[v] <= tout[u];
  }
};

EulerTour euler_tour(const SpanningTree& t);

}  // namespace ftc::graph
