// Fragment structure of T - F (Section 7.2, Proposition 3 / DP21 Claim
// 3.14): removing |F| tree edges splits the spanning tree into |F| + 1
// fragments. Each fault edge is represented by the pre-order interval of
// its lower endpoint; the intervals form a laminar family, and locating
// the fragment of a vertex from its ancestry label takes O(log |F|) plus
// a walk up the laminar forest.
//
// The locator works purely on labels (intervals) — it never touches the
// tree — which is what makes the universal decoder possible.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/ancestry.hpp"

namespace ftc::graph {

class FragmentLocator {
 public:
  // intervals[i] = (tin, tout) of the lower endpoint of fault tree-edge i.
  // Duplicates are allowed (they map to the same fragment). Fragment 0 is
  // the root fragment; fragment j >= 1 corresponds to the j-th distinct
  // interval in increasing tin order.
  explicit FragmentLocator(
      std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals);

  int fragment_count() const {
    return static_cast<int>(sorted_.size()) + 1;
  }

  // Fragment containing a vertex with pre-order time tin.
  int locate(std::uint32_t tin) const;
  int locate(const AncestryLabel& label) const { return locate(label.tin); }

  // Laminar parent fragment (the fragment reached by crossing the fault
  // edge upward); -1 for the root fragment.
  int parent_fragment(int frag) const;

  // The distinct interval defining fragment frag (frag >= 1).
  std::pair<std::uint32_t, std::uint32_t> interval(int frag) const;

  // Maps each input interval index to its fragment id (handles dups).
  int fragment_of_fault(std::size_t input_index) const {
    return fault_fragment_[input_index];
  }

 private:
  // Distinct intervals sorted by tin; laminarity makes (tin sorted) imply
  // a stack-decomposable nesting structure.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sorted_;
  std::vector<int> parent_;          // laminar parent fragment of frag j+1
  std::vector<int> fault_fragment_;  // per input interval
};

}  // namespace ftc::graph
