#include "graph/ancestry.hpp"

#include "util/common.hpp"

namespace ftc::graph {

AncestryLabeling::AncestryLabeling(const SpanningTree& t, const EulerTour& et) {
  const VertexId n = t.num_vertices();
  FTC_REQUIRE(et.tin.size() == n, "Euler tour does not match tree");
  labels_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    labels_[v] = AncestryLabel{et.tin[v], et.tout[v]};
  }
}

unsigned AncestryLabeling::label_bits() const {
  const auto n = static_cast<std::uint64_t>(labels_.size());
  const unsigned per_coord = n <= 1 ? 1 : ceil_log2(n);
  return 2 * per_coord;
}

}  // namespace ftc::graph
