#include "graph/euler_tour.hpp"

namespace ftc::graph {

EulerTour euler_tour(const SpanningTree& t) {
  const VertexId n = t.num_vertices();
  EulerTour et;
  et.coord.assign(n, 0);
  et.exit_pos.assign(n, 0);
  et.tin.assign(n, 0);
  et.tout.assign(n, 0);
  if (n == 0) return et;

  // Iterative DFS. Each frame tracks the next child index to visit.
  std::vector<std::pair<VertexId, std::size_t>> stack;
  stack.reserve(n);
  stack.emplace_back(t.root, 0);
  std::uint32_t step = 0;      // directed-edge steps taken so far
  std::uint32_t pre = 0;       // pre-order counter
  et.tin[t.root] = pre++;
  while (!stack.empty()) {
    auto& [u, idx] = stack.back();
    if (idx < t.children[u].size()) {
      const VertexId c = t.children[u][idx++];
      et.coord[c] = ++step;  // downward edge u -> c
      et.tin[c] = pre++;
      stack.emplace_back(c, 0);
    } else {
      et.tout[u] = pre - 1;
      if (u != t.root) {
        et.exit_pos[u] = ++step;  // upward edge u -> parent
      }
      stack.pop_back();
    }
  }
  et.exit_pos[t.root] = 2 * n - 1;
  FTC_CHECK(step == (n >= 1 ? 2 * (n - 1) : 0), "Euler tour length mismatch");
  return et;
}

}  // namespace ftc::graph
