#include "graph/graph.hpp"

// Graph is header-only; this translation unit anchors the module in the
// static library.
namespace ftc::graph {}
