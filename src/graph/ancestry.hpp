// Ancestry labeling scheme (Kannan-Naor-Rudich, Lemma 7): each vertex of a
// rooted tree gets an O(log n)-bit label from which ancestor/descendant
// relations are decided in O(1) without access to the tree.
//
// The label is the pre-order interval (tin, tout): u is a (weak) ancestor
// of v iff [tin_v, tout_v] is nested in [tin_u, tout_u]. The labeling is
// injective (tin is a bijection onto [0, n)), which the framework relies
// on for unique edge IDs (Section 7.2).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/euler_tour.hpp"
#include "graph/spanning_tree.hpp"

namespace ftc::graph {

struct AncestryLabel {
  std::uint32_t tin = 0;
  std::uint32_t tout = 0;

  friend bool operator==(const AncestryLabel&, const AncestryLabel&) = default;
  friend auto operator<=>(const AncestryLabel&, const AncestryLabel&) = default;
};

// Universal decoder (no access to the tree): +1 if a is a proper ancestor
// of b, -1 if a proper descendant, 0 otherwise (including a == b).
inline int ancestry_relation(const AncestryLabel& a, const AncestryLabel& b) {
  if (a == b) return 0;
  if (a.tin <= b.tin && b.tout <= a.tout) return 1;
  if (b.tin <= a.tin && a.tout <= b.tout) return -1;
  return 0;
}

inline bool is_ancestor_or_self(const AncestryLabel& a, const AncestryLabel& b) {
  return a.tin <= b.tin && b.tout <= a.tout;
}

class AncestryLabeling {
 public:
  AncestryLabeling() = default;
  AncestryLabeling(const SpanningTree& t, const EulerTour& et);

  const AncestryLabel& label(VertexId v) const { return labels_[v]; }
  VertexId num_vertices() const {
    return static_cast<VertexId>(labels_.size());
  }

  // Bits per label when serialized: two coordinates of ceil(log2 n) bits.
  unsigned label_bits() const;

 private:
  std::vector<AncestryLabel> labels_;
};

}  // namespace ftc::graph
