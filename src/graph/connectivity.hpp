// Ground-truth connectivity under edge faults (plain BFS). Every labeling
// scheme in this library is validated against these oracles in tests.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ftc::graph {

// Is s connected to t in g - faults?
bool connected_avoiding(const Graph& g, VertexId s, VertexId t,
                        std::span<const EdgeId> faults);

// Same, after additionally deleting whole vertices (every incident edge
// of a faulty vertex goes down with it). A deleted endpoint is
// disconnected from everything else by definition, and connected to
// itself — matching the oracle's fault-model semantics.
bool connected_avoiding(const Graph& g, VertexId s, VertexId t,
                        std::span<const EdgeId> edge_faults,
                        std::span<const VertexId> vertex_faults);

// Component id per vertex in g - faults (ids are 0-based, arbitrary).
std::vector<int> components_avoiding(const Graph& g,
                                     std::span<const EdgeId> faults);

// Outgoing edges of vertex set S restricted to the edge set allowed
// (the literal definition of the cut operator used throughout the paper;
// O(m) reference implementation for tests).
std::vector<EdgeId> boundary_edges(const Graph& g,
                                   std::span<const char> in_set,
                                   std::span<const EdgeId> allowed);

}  // namespace ftc::graph
