#include "graph/aux_graph.hpp"

namespace ftc::graph {

AuxGraph build_aux_graph(const Graph& g, const SpanningTree& t) {
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();
  FTC_REQUIRE(t.num_vertices() == n, "tree does not match graph");

  AuxGraph a;
  a.orig_n = n;
  a.orig_m = m;
  a.sigma.assign(m, kNoEdge);
  a.second_half.assign(m, kNoEdge);
  a.sub_vertex.assign(m, kNoVertex);

  a.g2 = Graph(n);
  std::vector<VertexId> parent(n);
  std::vector<EdgeId> parent_edge(n, kNoEdge);

  // Original tree edges keep their role in T'.
  for (EdgeId e = 0; e < m; ++e) {
    if (!t.is_tree_edge[e]) continue;
    const Edge& ed = g.edge(e);
    const EdgeId id2 = a.g2.add_edge(ed.u, ed.v);
    a.sigma[e] = id2;
  }
  for (VertexId v = 0; v < n; ++v) {
    parent[v] = t.parent[v];
    if (v != t.root) {
      // Tree edges were added in increasing original-EdgeId order, so the
      // g2 id of v's parent edge is sigma[original parent edge].
      parent_edge[v] = a.sigma[t.parent_edge[v]];
    }
  }

  // Subdivide every non-tree edge: w_e hangs off ed.u via the tree edge
  // sigma(e); the remaining half (w_e, ed.v) is the sole non-tree edge.
  for (EdgeId e = 0; e < m; ++e) {
    if (t.is_tree_edge[e]) continue;
    const Edge& ed = g.edge(e);
    const VertexId w = a.g2.add_vertex();
    parent.push_back(ed.u);
    const EdgeId tree_half = a.g2.add_edge(ed.u, w);
    parent_edge.push_back(tree_half);
    const EdgeId nontree_half = a.g2.add_edge(w, ed.v);
    a.sigma[e] = tree_half;
    a.second_half[e] = nontree_half;
    a.sub_vertex[e] = w;
  }

  a.t2 = tree_from_parents(a.g2, t.root, std::move(parent),
                           std::move(parent_edge));

  a.orig_of.assign(a.g2.num_edges(), kNoEdge);
  for (EdgeId e = 0; e < m; ++e) {
    if (a.second_half[e] != kNoEdge) a.orig_of[a.second_half[e]] = e;
  }
  return a;
}

}  // namespace ftc::graph
