#include "graph/spanning_tree.hpp"

#include <queue>

namespace ftc::graph {

VertexId SpanningTree::lower_endpoint(const Graph& g, EdgeId e) const {
  FTC_REQUIRE(e < g.num_edges() && is_tree_edge[e], "not a tree edge");
  const Edge& ed = g.edge(e);
  // The lower endpoint is the one whose parent edge is e.
  if (parent_edge[ed.u] == e) return ed.u;
  FTC_CHECK(parent_edge[ed.v] == e, "tree edge inconsistent with parents");
  return ed.v;
}

SpanningTree bfs_spanning_tree(const Graph& g, VertexId root) {
  FTC_REQUIRE(root < g.num_vertices(), "root out of range");
  const VertexId n = g.num_vertices();
  SpanningTree t;
  t.root = root;
  t.parent.assign(n, kNoVertex);
  t.parent_edge.assign(n, kNoEdge);
  t.depth.assign(n, 0);
  t.children.assign(n, {});
  t.is_tree_edge.assign(g.num_edges(), 0);

  std::queue<VertexId> q;
  t.parent[root] = root;
  q.push(root);
  VertexId visited = 0;
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    ++visited;
    for (const EdgeId e : g.incident_edges(u)) {
      const VertexId w = g.other_endpoint(e, u);
      if (t.parent[w] != kNoVertex) continue;
      t.parent[w] = u;
      t.parent_edge[w] = e;
      t.depth[w] = t.depth[u] + 1;
      t.children[u].push_back(w);
      t.is_tree_edge[e] = 1;
      q.push(w);
    }
  }
  FTC_REQUIRE(visited == n, "graph must be connected to build a spanning tree");
  return t;
}

SpanningTree tree_from_parents(const Graph& g, VertexId root,
                               std::vector<VertexId> parent,
                               std::vector<EdgeId> parent_edge) {
  const VertexId n = g.num_vertices();
  FTC_REQUIRE(parent.size() == n && parent_edge.size() == n,
              "parent arrays must cover every vertex");
  FTC_REQUIRE(parent[root] == root, "parent of root must be root");
  SpanningTree t;
  t.root = root;
  t.parent = std::move(parent);
  t.parent_edge = std::move(parent_edge);
  t.depth.assign(n, 0);
  t.children.assign(n, {});
  t.is_tree_edge.assign(g.num_edges(), 0);
  for (VertexId v = 0; v < n; ++v) {
    if (v == root) continue;
    FTC_REQUIRE(t.parent[v] < n, "missing parent");
    t.children[t.parent[v]].push_back(v);
    FTC_REQUIRE(t.parent_edge[v] < g.num_edges(), "missing parent edge");
    t.is_tree_edge[t.parent_edge[v]] = 1;
  }
  // Compute depths in top-down order; also validates acyclicity.
  std::vector<VertexId> stack{root};
  VertexId seen = 0;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    ++seen;
    for (const VertexId c : t.children[u]) {
      t.depth[c] = t.depth[u] + 1;
      stack.push_back(c);
    }
  }
  FTC_REQUIRE(seen == n, "parent arrays do not form a tree rooted at root");
  return t;
}

bool is_connected(const Graph& g) {
  const VertexId n = g.num_vertices();
  if (n == 0) return true;
  std::vector<char> seen(n, 0);
  std::vector<VertexId> stack{0};
  seen[0] = 1;
  VertexId count = 0;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    ++count;
    for (const EdgeId e : g.incident_edges(u)) {
      const VertexId w = g.other_endpoint(e, u);
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return count == n;
}

}  // namespace ftc::graph
