// Disjoint-set forest with union by size and path halving. Used by the
// refined query processing algorithm (Section 7.6) to track merged
// component fragments, and by generators/validators.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace ftc::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  // Re-initializes to n singleton sets, reusing the existing storage.
  void reset(std::size_t n) {
    parent_.resize(n);
    size_.assign(n, 1);
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  // Returns true if the two sets were distinct (and are now merged).
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t component_size(std::size_t x) { return size_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace ftc::graph
