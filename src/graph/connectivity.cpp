#include "graph/connectivity.hpp"

#include "util/common.hpp"

namespace ftc::graph {

namespace {
std::vector<char> fault_mask(const Graph& g, std::span<const EdgeId> faults) {
  std::vector<char> faulty(g.num_edges(), 0);
  for (const EdgeId e : faults) {
    FTC_REQUIRE(e < g.num_edges(), "fault edge out of range");
    faulty[e] = 1;
  }
  return faulty;
}
}  // namespace

bool connected_avoiding(const Graph& g, VertexId s, VertexId t,
                        std::span<const EdgeId> faults) {
  FTC_REQUIRE(s < g.num_vertices() && t < g.num_vertices(),
              "vertex out of range");
  if (s == t) return true;
  const std::vector<char> faulty = fault_mask(g, faults);
  std::vector<char> seen(g.num_vertices(), 0);
  std::vector<VertexId> stack{s};
  seen[s] = 1;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (const EdgeId e : g.incident_edges(u)) {
      if (faulty[e]) continue;
      const VertexId w = g.other_endpoint(e, u);
      if (w == t) return true;
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return false;
}

bool connected_avoiding(const Graph& g, VertexId s, VertexId t,
                        std::span<const EdgeId> edge_faults,
                        std::span<const VertexId> vertex_faults) {
  FTC_REQUIRE(s < g.num_vertices() && t < g.num_vertices(),
              "vertex out of range");
  if (s == t) return true;
  std::vector<EdgeId> dead(edge_faults.begin(), edge_faults.end());
  for (const VertexId v : vertex_faults) {
    FTC_REQUIRE(v < g.num_vertices(), "fault vertex out of range");
    if (v == s || v == t) return false;  // an endpoint was deleted
    const auto inc = g.incident_edges(v);
    dead.insert(dead.end(), inc.begin(), inc.end());
  }
  return connected_avoiding(g, s, t, dead);
}

std::vector<int> components_avoiding(const Graph& g,
                                     std::span<const EdgeId> faults) {
  const std::vector<char> faulty = fault_mask(g, faults);
  std::vector<int> comp(g.num_vertices(), -1);
  int next = 0;
  for (VertexId start = 0; start < g.num_vertices(); ++start) {
    if (comp[start] != -1) continue;
    const int c = next++;
    std::vector<VertexId> stack{start};
    comp[start] = c;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const EdgeId e : g.incident_edges(u)) {
        if (faulty[e]) continue;
        const VertexId w = g.other_endpoint(e, u);
        if (comp[w] == -1) {
          comp[w] = c;
          stack.push_back(w);
        }
      }
    }
  }
  return comp;
}

std::vector<EdgeId> boundary_edges(const Graph& g,
                                   std::span<const char> in_set,
                                   std::span<const EdgeId> allowed) {
  FTC_REQUIRE(in_set.size() == g.num_vertices(),
              "membership mask must cover every vertex");
  std::vector<EdgeId> out;
  for (const EdgeId e : allowed) {
    const Edge& ed = g.edge(e);
    if (in_set[ed.u] != in_set[ed.v]) out.push_back(e);
  }
  return out;
}

}  // namespace ftc::graph
