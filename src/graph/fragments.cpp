#include "graph/fragments.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace ftc::graph {

namespace {
using Interval = std::pair<std::uint32_t, std::uint32_t>;

// Sort by lo ascending, hi DESCENDING: enclosing intervals precede nested
// ones, which the nesting-stack decomposition requires.
struct LaminarLess {
  bool operator()(const Interval& a, const Interval& b) const {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  }
};
}  // namespace

FragmentLocator::FragmentLocator(std::vector<Interval> intervals) {
  std::vector<Interval> distinct(intervals);
  std::sort(distinct.begin(), distinct.end(), LaminarLess{});
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  sorted_ = std::move(distinct);

  // Laminarity check + parent computation with a nesting stack.
  // parent_[i] is the fragment id of the enclosing fragment (0 = root
  // fragment when interval i is top-level).
  parent_.assign(sorted_.size(), 0);
  std::vector<int> stack;  // indices into sorted_, currently-open intervals
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    const auto [lo, hi] = sorted_[i];
    FTC_REQUIRE(lo <= hi, "malformed interval");
    while (!stack.empty() && sorted_[stack.back()].second < lo) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      const auto [plo, phi] = sorted_[stack.back()];
      FTC_REQUIRE(plo <= lo && hi <= phi,
                  "fault intervals are not laminar (not subtree intervals)");
      parent_[i] = stack.back() + 1;  // fragment id of enclosing interval
    }
    stack.push_back(static_cast<int>(i));
  }

  fault_fragment_.reserve(intervals.size());
  for (const auto& iv : intervals) {
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), iv,
                                     LaminarLess{});
    FTC_CHECK(it != sorted_.end() && *it == iv, "interval lost in dedup");
    fault_fragment_.push_back(static_cast<int>(it - sorted_.begin()) + 1);
  }
}

int FragmentLocator::locate(std::uint32_t tin) const {
  // Deepest interval containing tin. The predecessor by lo either
  // contains tin or its laminar ancestors do.
  // probe sorts after every interval with lo <= tin under LaminarLess
  // (hi descending), so upper_bound yields the first interval with
  // lo > tin.
  const Interval probe{tin, 0};
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), probe,
                             LaminarLess{});
  int idx = static_cast<int>(it - sorted_.begin()) - 1;
  while (idx >= 0) {
    if (sorted_[idx].second >= tin) return idx + 1;
    idx = parent_[idx] - 1;  // enclosing interval's index, or -2 at root
  }
  return 0;
}

int FragmentLocator::parent_fragment(int frag) const {
  FTC_REQUIRE(frag >= 0 && frag < fragment_count(), "fragment out of range");
  if (frag == 0) return -1;
  return parent_[frag - 1];
}

std::pair<std::uint32_t, std::uint32_t> FragmentLocator::interval(
    int frag) const {
  FTC_REQUIRE(frag >= 1 && frag < fragment_count(), "fragment out of range");
  return sorted_[frag - 1];
}

}  // namespace ftc::graph
