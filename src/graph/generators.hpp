// Deterministic (seeded) workload generators used by tests, examples and
// the benchmark harness. All generators produce simple connected graphs.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace ftc::graph {

// Uniform random spanning tree skeleton plus (m - n + 1) distinct random
// non-tree edges. Requires n >= 1 and n - 1 <= m <= n(n-1)/2.
Graph random_connected(VertexId n, EdgeId m, std::uint64_t seed);

// Erdos-Renyi G(n, p). May be disconnected; callers must check.
Graph gnp(VertexId n, double p, std::uint64_t seed);

// rows x cols grid (large diameter; stresses the CONGEST experiments).
Graph grid(VertexId rows, VertexId cols);

// Cycle, complete graph, hypercube of dimension dim.
Graph cycle(VertexId n);
Graph complete(VertexId n);
Graph hypercube(unsigned dim);

// Two cliques of size k joined by a path of length path_len: fault sets
// on the path disconnect the halves, exercising the negative branch.
Graph barbell(VertexId k, VertexId path_len);

// num_cliques cliques of size k chained by single bridge edges: maximizes
// fragment-size imbalance for the Lemma 6 query-strategy ablation.
Graph path_of_cliques(VertexId num_cliques, VertexId k);

// Preferential attachment: each new vertex attaches to `out_deg` distinct
// earlier vertices, biased by degree (scale-free-ish degree profile).
Graph preferential_attachment(VertexId n, unsigned out_deg,
                              std::uint64_t seed);

}  // namespace ftc::graph
