#include "graph/generators.hpp"

#include <set>
#include <utility>

#include "util/common.hpp"

namespace ftc::graph {

namespace {
std::pair<VertexId, VertexId> ordered(VertexId a, VertexId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

Graph random_connected(VertexId n, EdgeId m, std::uint64_t seed) {
  FTC_REQUIRE(n >= 1, "need at least one vertex");
  const std::uint64_t max_m =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  FTC_REQUIRE(m + 1 >= n && m <= max_m, "edge count out of range");
  SplitMix64 rng(seed);
  Graph g(n);
  std::set<std::pair<VertexId, VertexId>> used;
  // Random recursive tree: vertex i attaches to a uniform earlier vertex.
  for (VertexId i = 1; i < n; ++i) {
    const VertexId p = static_cast<VertexId>(rng.next_below(i));
    g.add_edge(p, i);
    used.insert(ordered(p, i));
  }
  while (g.num_edges() < m) {
    const VertexId u = static_cast<VertexId>(rng.next_below(n));
    const VertexId v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) continue;
    if (!used.insert(ordered(u, v)).second) continue;
    g.add_edge(u, v);
  }
  return g;
}

Graph gnp(VertexId n, double p, std::uint64_t seed) {
  FTC_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  SplitMix64 rng(seed);
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.next_double() < p) g.add_edge(u, v);
    }
  }
  return g;
}

Graph grid(VertexId rows, VertexId cols) {
  FTC_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  Graph g(rows * cols);
  const auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph cycle(VertexId n) {
  FTC_REQUIRE(n >= 3, "cycle needs >= 3 vertices");
  Graph g(n);
  for (VertexId i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

Graph complete(VertexId n) {
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph hypercube(unsigned dim) {
  FTC_REQUIRE(dim >= 1 && dim <= 20, "hypercube dimension out of range");
  const VertexId n = VertexId{1} << dim;
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (unsigned b = 0; b < dim; ++b) {
      const VertexId v = u ^ (VertexId{1} << b);
      if (u < v) g.add_edge(u, v);
    }
  }
  return g;
}

Graph barbell(VertexId k, VertexId path_len) {
  FTC_REQUIRE(k >= 2, "cliques need >= 2 vertices");
  Graph g(2 * k + path_len);
  const auto add_clique = [&g](VertexId base, VertexId size) {
    for (VertexId i = 0; i < size; ++i) {
      for (VertexId j = i + 1; j < size; ++j) g.add_edge(base + i, base + j);
    }
  };
  add_clique(0, k);
  add_clique(k, k);
  // Path from vertex k-1 (first clique) to vertex k (second clique)
  // through path_len intermediate vertices.
  VertexId prev = k - 1;
  for (VertexId i = 0; i < path_len; ++i) {
    const VertexId mid = 2 * k + i;
    g.add_edge(prev, mid);
    prev = mid;
  }
  g.add_edge(prev, k);
  return g;
}

Graph path_of_cliques(VertexId num_cliques, VertexId k) {
  FTC_REQUIRE(num_cliques >= 1 && k >= 2, "need cliques of size >= 2");
  Graph g(num_cliques * k);
  for (VertexId c = 0; c < num_cliques; ++c) {
    const VertexId base = c * k;
    for (VertexId i = 0; i < k; ++i) {
      for (VertexId j = i + 1; j < k; ++j) g.add_edge(base + i, base + j);
    }
    if (c + 1 < num_cliques) g.add_edge(base + k - 1, base + k);
  }
  return g;
}

Graph preferential_attachment(VertexId n, unsigned out_deg,
                              std::uint64_t seed) {
  FTC_REQUIRE(out_deg >= 1, "out degree must be >= 1");
  FTC_REQUIRE(n >= out_deg + 1, "too few vertices for the out degree");
  SplitMix64 rng(seed);
  Graph g(n);
  std::vector<VertexId> endpoint_pool;  // one entry per edge endpoint
  // Seed clique over the first out_deg + 1 vertices.
  for (VertexId u = 0; u <= out_deg; ++u) {
    for (VertexId v = u + 1; v <= out_deg; ++v) {
      g.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (VertexId u = out_deg + 1; u < n; ++u) {
    std::set<VertexId> targets;
    while (targets.size() < out_deg) {
      const VertexId v =
          endpoint_pool[rng.next_below(endpoint_pool.size())];
      if (v != u) targets.insert(v);
    }
    for (const VertexId v : targets) {
      g.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  return g;
}

}  // namespace ftc::graph
