// Undirected graph with stable integer edge IDs and incidence lists.
//
// This is the common substrate of the whole library: the labeling schemes
// index labels by EdgeId, the auxiliary-graph transformation (Fig. 1)
// remaps IDs, and the ground-truth connectivity checker works on the same
// representation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace ftc::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr VertexId kNoVertex = UINT32_MAX;
inline constexpr EdgeId kNoEdge = UINT32_MAX;

struct Edge {
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(VertexId n) : adj_(n) {}

  VertexId add_vertex() {
    adj_.emplace_back();
    return static_cast<VertexId>(adj_.size() - 1);
  }

  // Adds an undirected edge and returns its ID. Self-loops are rejected
  // (they are irrelevant to connectivity and break the subdivision step).
  EdgeId add_edge(VertexId u, VertexId v) {
    FTC_REQUIRE(u < num_vertices() && v < num_vertices(), "vertex out of range");
    FTC_REQUIRE(u != v, "self-loops are not supported");
    const EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Edge{u, v});
    adj_[u].push_back(id);
    adj_[v].push_back(id);
    return id;
  }

  VertexId num_vertices() const { return static_cast<VertexId>(adj_.size()); }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  const Edge& edge(EdgeId e) const {
    FTC_REQUIRE(e < num_edges(), "edge out of range");
    return edges_[e];
  }

  VertexId other_endpoint(EdgeId e, VertexId w) const {
    const Edge& ed = edge(e);
    FTC_REQUIRE(ed.u == w || ed.v == w, "vertex not an endpoint of edge");
    return ed.u == w ? ed.v : ed.u;
  }

  std::span<const EdgeId> incident_edges(VertexId v) const {
    FTC_REQUIRE(v < num_vertices(), "vertex out of range");
    return adj_[v];
  }

  std::size_t degree(VertexId v) const { return incident_edges(v).size(); }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adj_;
};

}  // namespace ftc::graph
