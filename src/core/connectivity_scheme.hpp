// ConnectivityScheme: one polymorphic interface over the repo's three
// f-FTC label constructions — this paper's deterministic/randomized
// FtcScheme (core/ftc_scheme.*), the Dory-Parter cycle-space scheme and
// the Dory-Parter AGM-sketch scheme (dp21/*). Section 1.4: any f-FTC
// labeling scheme doubles as a centralized oracle; this interface is the
// shape of that oracle, so every backend can sit behind the same facade,
// be benchmarked head-to-head, and feed the batch query engine
// (batch_engine.hpp).
//
// The fault model is a first-class value type (fault_spec.hpp): a
// FaultSpec names faulty edges AND faulty vertices, canonicalized once.
// The vertex -> incident-edges reduction (label cost Delta * f — the
// reduction the paper's open-problems section wants to beat) lives HERE,
// in the base class, behind the AdjacencyProvider abstraction: backends
// only ever see deduplicated edge faults, and any scheme that can name
// its adjacency — in-memory builds and format-v2 label stores alike —
// serves vertex and mixed faults identically. Schemes without adjacency
// (format-v1 stores) throw the typed CapabilityError.
//
// The query path is split into the three stages every backend shares:
//   1. prepare_faults — reduce vertex faults to incident edges, then
//      materialize the deduplicated fault-edge labels once per fault set
//      (immutable; concurrent reads are safe);
//   2. make_workspace — per-thread decode scratch, reused across queries;
//   3. query — answer one (s, t) pair against a prepared fault set.
// connected() bundles the three for one-shot use.
//
// Backends implement the protected hooks (prepare_edge_faults /
// query_edges); the public entry points are non-virtual so fault-model
// semantics (endpoint deletion, the reduction, validation) are identical
// across every backend and every serving path.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/fault_spec.hpp"
#include "core/ftc_query.hpp"
#include "dp21/agm_ftc.hpp"
#include "dp21/cycle_space_ftc.hpp"
#include "graph/graph.hpp"

namespace ftc::core {

namespace store {
class ByteWriter;
}  // namespace store

class DeletionJournal;  // journal.hpp
class StoreView;        // label_store.hpp

class ConnectivityScheme {
 public:
  // A materialized, deduplicated fault set. Immutable after creation:
  // any number of threads may query against the same FaultSet. Carries
  // the deleted vertices of its FaultSpec so query() can apply the
  // endpoint-deletion rule uniformly across backends.
  class FaultSet {
   public:
    virtual ~FaultSet() = default;
    // Deduplicated fault-edge labels materialized (vertex faults count
    // through their incident edges after the reduction).
    virtual std::size_t num_faults() const = 0;
    // The deleted vertices themselves (sorted, unique).
    std::span<const graph::VertexId> vertex_faults() const {
      return vertex_faults_;
    }

   private:
    std::vector<graph::VertexId> vertex_faults_;
    friend class ConnectivityScheme;
  };

  // Per-thread decode scratch. Not thread-safe; reuse across queries on
  // the owning thread to amortize allocation.
  class Workspace {
   public:
    virtual ~Workspace() = default;
  };

  virtual ~ConnectivityScheme() = default;

  virtual BackendKind backend() const = 0;
  std::string_view name() const { return backend_name(backend()); }

  virtual graph::VertexId num_vertices() const = 0;
  virtual graph::EdgeId num_edges() const = 0;

  // Label-size accounting in bits, per label and for the whole scheme
  // (the centralized-oracle space bound of Section 1.4).
  virtual std::size_t vertex_label_bits() const = 0;
  virtual std::size_t edge_label_bits() const = 0;
  virtual std::size_t total_label_bits() const {
    return static_cast<std::size_t>(num_vertices()) * vertex_label_bits() +
           static_cast<std::size_t>(num_edges()) * edge_label_bits();
  }

  // Incidence lists for the vertex-fault reduction, or nullptr when the
  // scheme carries none (format-v1 label stores). Vertex-fault capability
  // is exactly `adjacency() != nullptr`.
  virtual const AdjacencyProvider* adjacency() const { return nullptr; }

  // Warm-up hook: maps any lazily-opened label backing (the shards of a
  // sharded store) and resolves the flat route tables, so the first
  // query afterwards pays no cold-open cliff. threads = 0 lets the
  // backing pick its fan-out. Idempotent, safe concurrently with
  // queries; a no-op for in-memory schemes, whose labels are always
  // resident. Store-served schemes forward to StoreView::prefetch and
  // surface its typed StoreError on a corrupt backing.
  virtual void prefetch(unsigned threads = 0) const { (void)threads; }

  // Validates the spec's IDs against this scheme's dimensions
  // (std::invalid_argument on out-of-range), reduces vertex faults to
  // their incident edges (CapabilityError if adjacency() is null and the
  // spec names vertices), folds in any attached deletion journal
  // (CapacityError when the merged set exceeds the journal's fault
  // budget), and materializes the deduplicated fault-edge labels once.
  std::unique_ptr<FaultSet> prepare_faults(const FaultSpec& spec) const;

  virtual std::unique_ptr<Workspace> make_workspace() const = 0;

  // s-t connectivity in G - F. `faults` must come from this scheme's
  // prepare_faults and `workspace` from its make_workspace. A vertex is
  // connected to itself even when deleted; a deleted endpoint is
  // disconnected from everything else. QueryOptions drives the core-FTC
  // ablation switches; the dp21 backends have no such switches and
  // ignore it.
  bool query(graph::VertexId s, graph::VertexId t, const FaultSet& faults,
             Workspace& workspace, const QueryOptions& options = {}) const;

  // One-shot convenience: prepare + query with a throwaway workspace.
  bool connected(graph::VertexId s, graph::VertexId t, const FaultSpec& spec,
                 const QueryOptions& options = {}) const;

  // ------------------------------------------------------------- journal
  // Journaled deletions (journal.hpp): once attached, prepare_faults
  // folds the journal's edge set into every fault set it prepares — a
  // deleted edge is a permanent fault, so queries answer as if those
  // edges never existed, from the unchanged labels. Attached by the
  // load paths when a "<store>.jrnl" sidecar accompanies the artifact;
  // in-memory schemes normally carry none.
  void attach_journal(std::shared_ptr<const DeletionJournal> journal) {
    journal_ = std::move(journal);
  }
  const DeletionJournal* journal() const { return journal_.get(); }

  // The backing store view of a store-served scheme (label_store.hpp),
  // or nullptr for in-memory schemes. Swap paths use it to adopt the
  // current generation's already-mapped shards when installing a
  // delta-pushed manifest (sharded_store.hpp).
  virtual std::shared_ptr<const StoreView> store_view() const {
    return nullptr;
  }

  // ----------------------------------------------------------- persistence
  // Label export for the LabelStore container (label_store.hpp): the
  // backend-specific parameter blob plus fixed-layout per-vertex /
  // per-edge label blobs. Every backend — including schemes loaded back
  // from a store — implements these, so any scheme can be persisted.
  virtual void serialize_params(store::ByteWriter& out) const = 0;
  virtual void serialize_vertex_label(graph::VertexId v,
                                      store::ByteWriter& out) const = 0;
  virtual void serialize_edge_label(graph::EdgeId e,
                                    store::ByteWriter& out) const = 0;

  // Writes the whole scheme as one versioned container file (atomically:
  // a temp file is renamed into place). Format v2; includes the
  // adjacency side-table iff adjacency() != nullptr, so saved schemes
  // keep their vertex-fault capability. Implemented in label_store.cpp;
  // load it back with load_scheme(). Throws StoreError on I/O failure.
  void save(const std::string& path) const;

 protected:
  // Backend hooks. `edge_faults` arrives validated, sorted and
  // deduplicated (vertex faults already reduced to incident edges);
  // `query_edges` never sees a deleted endpoint (the base class resolves
  // those) and its fault set/workspace downcasts are backend-local.
  virtual std::unique_ptr<FaultSet> prepare_edge_faults(
      std::span<const graph::EdgeId> edge_faults) const = 0;
  virtual bool query_edges(graph::VertexId s, graph::VertexId t,
                           const FaultSet& faults, Workspace& workspace,
                           const QueryOptions& options) const = 0;

 private:
  // Journaled deletions folded into every prepared fault set (null when
  // no journal is attached). Shared: generations of a serving session
  // may reference the same journal.
  std::shared_ptr<const DeletionJournal> journal_;
};

// Per-backend build knobs, bundled so one config object can drive any
// backend. set_f() is the common knob: the fault budget every backend
// must support.
struct SchemeConfig {
  BackendKind backend = BackendKind::kCoreFtc;
  FtcConfig ftc;                // BackendKind::kCoreFtc
  dp21::CycleSpaceConfig cycle;  // BackendKind::kDp21CycleSpace
  dp21::AgmFtcConfig agm;       // BackendKind::kDp21Agm

  SchemeConfig() {
    // Cross-backend default: full-support variants, so all backends are
    // correct on every fault set of size <= f (the whp variants only
    // promise correctness per fixed fault set).
    cycle.full_support = true;
    agm.full_support = true;
  }

  unsigned f() const { return ftc.f; }
  SchemeConfig& set_f(unsigned f) {
    ftc.f = f;
    cycle.f = f;
    agm.f = f;
    return *this;
  }
  SchemeConfig& set_seed(std::uint64_t seed) {
    ftc.seed = seed;
    cycle.seed = seed;
    agm.seed = seed;
    return *this;
  }
  // Build worker threads for every backend (0 = hardware concurrency).
  // Purely a wall-clock knob: any value yields byte-identical labels.
  unsigned build_threads() const { return ftc.build_threads; }
  SchemeConfig& set_build_threads(unsigned threads) {
    ftc.build_threads = threads;
    cycle.build_threads = threads;
    agm.build_threads = threads;
    return *this;
  }
};

// Factory: build the labeling selected by config.backend for g. Throws
// std::invalid_argument on disconnected inputs (all backends require a
// connected graph).
std::unique_ptr<ConnectivityScheme> make_scheme(const graph::Graph& g,
                                                const SchemeConfig& config);

// CLI helper: "core-ftc" / "dp21-cycle" / "dp21-agm" (plus the short
// aliases "ftc", "cycle", "agm") -> BackendKind. Throws on anything else.
BackendKind parse_backend(std::string_view name);

}  // namespace ftc::core
