// ShardSource: the transport abstraction behind remote shard serving.
//
// A sharded label store is a manifest plus K verbatim container files
// (sharded_store.hpp); nothing about serving it requires those files to
// start out on the serving box. A ShardSource is "somewhere shard bytes
// can be fetched from by name": the local directory next to a manifest
// (refactored out of the path-concatenation opens the sharded view used
// to do inline), or an HTTP/1.1 server reached over a plain POSIX
// socket — no libcurl, no new dependencies. RemoteStoreView pulls
// shards through a ShardSource into the digest-verified local cache
// (shard_cache.hpp) and serves them from mmap exactly like a local
// store.
//
// Error taxonomy mirrors the store layer's: transport failures that a
// retry can plausibly cure (connect/read/timeouts/5xx, short bodies)
// throw StoreIoError and flow into the PR 8 RetryPolicy machinery;
// structural failures (object not found, malformed responses that
// re-reading cannot fix) throw plain StoreError and never retry.
//
// Fault-injection sites (util/failpoint.hpp), for the torture suite and
// the CI remote leg:
//   remote.connect     connect() to the origin fails with the errno
//   remote.read        a socket read fails with the errno
//   remote.short_body  the response body is cut short (transfer
//                      truncated mid-flight)
//   remote.digest      (in shard_cache.cpp) the fetched payload digest
//                      disagrees with the manifest record
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/label_store.hpp"

namespace ftc::core {

// True for paths the store layer routes to the remote tier
// ("http://host[:port]/path/manifest.ftcm").
inline bool is_http_url(const std::string& path) {
  return path.rfind("http://", 0) == 0;
}

// A fetch-by-name byte source. Names are the manifest's shard names:
// relative paths, already validated traversal-free by the manifest
// reader. Implementations are immutable after construction and safe to
// share across threads (prefetch fans fetches out).
class ShardSource {
 public:
  virtual ~ShardSource() = default;
  ShardSource(const ShardSource&) = delete;
  ShardSource& operator=(const ShardSource&) = delete;

  // The whole object. Throws StoreIoError (transient) / StoreError
  // (structural, including "not found").
  virtual std::vector<std::uint8_t> fetch(const std::string& name) const = 0;

  // Bytes [offset, offset + length) of the object. length must be >= 1;
  // a range past the object's end is structural (StoreError) — callers
  // know the exact sizes from the manifest.
  virtual std::vector<std::uint8_t> fetch_range(const std::string& name,
                                                std::uint64_t offset,
                                                std::uint64_t length) const = 0;

  // Size probe. Returns false when the object does not exist; throws
  // StoreIoError on transport failure.
  virtual bool stat(const std::string& name, std::uint64_t* size_out) const = 0;

  // Human-readable location of `name` for error messages and logs.
  virtual std::string describe(const std::string& name) const = 0;

 protected:
  ShardSource() = default;
};

// The local-directory source: fetch-by-name over plain file reads from
// one directory — the transport the sharded view's path-based opens
// always implied, now behind the same interface the HTTP source
// implements. Also the read half of ftc_store serve (shard_server.hpp),
// so the bytes a loopback server hands out go through exactly this
// code.
class LocalDirShardSource final : public ShardSource {
 public:
  // dir: directory the names resolve under ("" = current directory; a
  // trailing slash is appended when missing).
  explicit LocalDirShardSource(std::string dir);

  std::vector<std::uint8_t> fetch(const std::string& name) const override;
  std::vector<std::uint8_t> fetch_range(const std::string& name,
                                        std::uint64_t offset,
                                        std::uint64_t length) const override;
  bool stat(const std::string& name, std::uint64_t* size_out) const override;
  std::string describe(const std::string& name) const override;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;  // includes the trailing slash ("" = cwd)
};

// A parsed "http://host[:port]/dir/object" URL. `dir` keeps the leading
// and trailing slash ("/" for a root-level object); `object` is the
// last path segment (the manifest file name, typically).
struct HttpEndpoint {
  std::string host;
  std::uint16_t port = 80;
  std::string dir;
  std::string object;
};

// Parses an http:// URL into its endpoint parts. Returns false (leaving
// *out untouched) for anything malformed: wrong scheme, empty host, a
// port that is not a decimal in [1, 65535], or an empty object segment.
bool parse_http_url(const std::string& url, HttpEndpoint* out);

// The HTTP/1.1 client source: one short-lived loopback-friendly TCP
// connection per request (Connection: close — keep-alive buys nothing
// for shard-sized transfers and keeps the client stateless, hence
// thread-safe), GET with Range for fetch_range, HEAD for stat. Built on
// socket(2)/connect(2)/send(2)/recv(2) only.
class HttpShardSource final : public ShardSource {
 public:
  // Objects resolve as "http://host:port<dir><name>".
  HttpShardSource(std::string host, std::uint16_t port, std::string dir);

  std::vector<std::uint8_t> fetch(const std::string& name) const override;
  std::vector<std::uint8_t> fetch_range(const std::string& name,
                                        std::uint64_t offset,
                                        std::uint64_t length) const override;
  bool stat(const std::string& name, std::uint64_t* size_out) const override;
  std::string describe(const std::string& name) const override;

 private:
  struct Response {
    int status = 0;
    std::uint64_t content_length = 0;
    bool has_content_length = false;
    std::vector<std::uint8_t> body;
  };
  // One request/response round trip. want_body=false (HEAD) stops after
  // the headers. range_len == 0 means "no Range header".
  Response round_trip(const std::string& name, const char* method,
                      bool want_body, std::uint64_t range_off,
                      std::uint64_t range_len) const;

  std::string host_;
  std::uint16_t port_;
  std::string dir_;  // leading and trailing slash
};

}  // namespace ftc::core
