#include "core/shard_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "core/label_store.hpp"
#include "util/common.hpp"
#include "util/scoped_fd.hpp"

namespace ftc::core {

namespace {

// Same traversal discipline as manifest shard names: reject anything
// that could escape the served directory.
bool safe_object_name(const std::string& name) {
  if (name.empty() || name.front() == '/') return false;
  if (name.find('\0') != std::string::npos) return false;
  std::size_t pos = 0;
  while (pos <= name.size()) {
    std::size_t next = name.find('/', pos);
    if (next == std::string::npos) next = name.size();
    const std::string_view seg(name.data() + pos, next - pos);
    if (seg.empty() || seg == "." || seg == "..") return false;
    pos = next + 1;
  }
  return true;
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

struct Request {
  std::string method;
  std::string target;
  bool close = false;
  bool has_range = false;
  std::uint64_t range_begin = 0;
  bool has_range_end = false;
  std::uint64_t range_end = 0;  // inclusive, valid when has_range_end
};

// Reads and parses one request's head. Returns false on EOF or a
// malformed request (caller closes the connection either way).
bool read_request(int fd, std::string* carry, Request* out) {
  std::string& head = *carry;
  std::size_t end;
  while ((end = head.find("\r\n\r\n")) == std::string::npos) {
    char buf[4096];
    ssize_t n;
    do {
      n = ::recv(fd, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.size() > 64 * 1024) return false;
  }

  Request req;
  const std::size_t line_end = head.find("\r\n");
  {
    const std::string line = head.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 <= sp1) return false;
    req.method = line.substr(0, sp1);
    req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (line.compare(sp2 + 1, std::string::npos, "HTTP/1.1") != 0 &&
        line.compare(sp2 + 1, std::string::npos, "HTTP/1.0") != 0) {
      return false;
    }
  }
  std::size_t pos = line_end + 2;
  while (pos < end) {
    const std::size_t eol = head.find("\r\n", pos);
    const std::size_t colon = head.find(':', pos);
    if (colon != std::string::npos && colon < eol) {
      std::string key = head.substr(pos, colon - pos);
      for (char& c : key) c = static_cast<char>(std::tolower(c));
      std::size_t v = colon + 1;
      while (v < eol && head[v] == ' ') ++v;
      const std::string value = head.substr(v, eol - v);
      if (key == "connection") {
        std::string lowered = value;
        for (char& c : lowered) c = static_cast<char>(std::tolower(c));
        if (lowered == "close") req.close = true;
      } else if (key == "range") {
        // "bytes=a-b" or "bytes=a-"; anything else is ignored (served
        // as a full 200, which RFC 7233 permits).
        if (value.rfind("bytes=", 0) == 0) {
          const std::string spec = value.substr(6);
          const std::size_t dash = spec.find('-');
          if (dash != std::string::npos && dash > 0) {
            bool ok = true;
            std::uint64_t a = 0;
            for (std::size_t i = 0; i < dash && ok; ++i) {
              if (spec[i] < '0' || spec[i] > '9') ok = false;
              else a = a * 10 + static_cast<std::uint64_t>(spec[i] - '0');
            }
            std::uint64_t b = 0;
            const bool has_b = dash + 1 < spec.size();
            for (std::size_t i = dash + 1; i < spec.size() && ok; ++i) {
              if (spec[i] < '0' || spec[i] > '9') ok = false;
              else b = b * 10 + static_cast<std::uint64_t>(spec[i] - '0');
            }
            if (ok && (!has_b || b >= a)) {
              req.has_range = true;
              req.range_begin = a;
              req.has_range_end = has_b;
              req.range_end = b;
            }
          }
        }
      }
    }
    pos = eol + 2;
  }

  head.erase(0, end + 4);
  *out = std::move(req);
  return true;
}

}  // namespace

ShardHttpServer::ShardHttpServer(std::string dir, std::uint16_t port)
    : dir_(std::move(dir)), port_(port) {
  if (dir_.empty()) dir_ = ".";
  if (dir_.back() != '/') dir_ += '/';
}

ShardHttpServer::~ShardHttpServer() { stop(); }

std::string ShardHttpServer::base_url() const {
  return "http://127.0.0.1:" + std::to_string(port_) + "/";
}

ShardHttpServer::Stats ShardHttpServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ShardHttpServer::start() {
  FTC_CHECK(!running_.load(), "server already started");
  util::ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) {
    throw StoreIoError(std::string("serve: socket failed: ") +
                       std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw StoreIoError("serve: bind to 127.0.0.1:" + std::to_string(port_) +
                       " failed: " + std::strerror(errno));
  }
  if (::listen(fd.get(), 64) != 0) {
    throw StoreIoError(std::string("serve: listen failed: ") +
                       std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    throw StoreIoError(std::string("serve: getsockname failed: ") +
                       std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  listen_fd_ = fd.release();
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ShardHttpServer::stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Unblock accept() with a shutdown, then close. Connection threads
  // are unblocked the same way; each closes its own fd under mu_ on
  // the way out, so a slot that is still >= 0 here is still open.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : conn_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ShardHttpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    // Reap finished connections so a long-lived server does not
    // accumulate joinable threads (a finished thread has set its fd
    // slot to -1 and is about to return, so join() is instant).
    for (std::size_t i = 0; i < conn_fds_.size();) {
      if (conn_fds_[i] < 0) {
        if (conn_threads_[i].joinable()) conn_threads_[i].join();
        conn_fds_.erase(conn_fds_.begin() + static_cast<std::ptrdiff_t>(i));
        conn_threads_.erase(conn_threads_.begin() +
                            static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    const std::size_t slot = conn_fds_.size();
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd, slot] {
      serve_connection(fd);
      std::lock_guard<std::mutex> inner(mu_);
      ::close(fd);
      if (slot < conn_fds_.size() && conn_fds_[slot] == fd) {
        conn_fds_[slot] = -1;
      } else {
        // Reaping shifted the slots; find the fd by value.
        for (int& f : conn_fds_) {
          if (f == fd) {
            f = -1;
            break;
          }
        }
      }
    });
  }
}

void ShardHttpServer::serve_connection(int fd) {
  std::string carry;
  for (;;) {
    Request req;
    if (!read_request(fd, &carry, &req)) return;

    const bool is_head = req.method == "HEAD";
    if (!is_head && req.method != "GET") {
      const char resp[] =
          "HTTP/1.1 405 Method Not Allowed\r\nContent-Length: 0\r\n"
          "Connection: close\r\n\r\n";
      send_all(fd, resp, sizeof(resp) - 1);
      return;
    }

    std::string name = req.target;
    if (!name.empty() && name.front() == '/') name.erase(0, 1);
    const std::size_t query = name.find('?');
    if (query != std::string::npos) name.erase(query);

    std::uint64_t file_size = 0;
    util::ScopedFd file;
    if (safe_object_name(name)) {
      file.reset(::open((dir_ + name).c_str(), O_RDONLY | O_CLOEXEC));
      if (file) {
        struct stat st {};
        if (::fstat(file.get(), &st) == 0 && S_ISREG(st.st_mode)) {
          file_size = static_cast<std::uint64_t>(st.st_size);
        } else {
          file.reset();
        }
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.requests += 1;
      if (req.has_range) stats_.range_requests += 1;
      if (!file) stats_.not_found += 1;
    }

    std::ostringstream head;
    std::uint64_t body_begin = 0;
    std::uint64_t body_len = 0;
    if (!file) {
      head << "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n";
    } else if (req.has_range) {
      const std::uint64_t begin = req.range_begin;
      if (begin >= file_size) {
        head << "HTTP/1.1 416 Range Not Satisfiable\r\n"
             << "Content-Range: bytes */" << file_size << "\r\n"
             << "Content-Length: 0\r\n";
      } else {
        const std::uint64_t last =
            req.has_range_end ? std::min(req.range_end, file_size - 1)
                              : file_size - 1;
        body_begin = begin;
        body_len = last - begin + 1;
        head << "HTTP/1.1 206 Partial Content\r\n"
             << "Content-Range: bytes " << begin << '-' << last << '/'
             << file_size << "\r\n"
             << "Content-Length: " << body_len << "\r\n";
      }
    } else {
      body_len = file_size;
      head << "HTTP/1.1 200 OK\r\nContent-Length: " << file_size << "\r\n";
    }
    head << "Content-Type: application/octet-stream\r\n";
    if (req.close) head << "Connection: close\r\n";
    head << "\r\n";
    const std::string head_str = head.str();
    if (!send_all(fd, head_str.data(), head_str.size())) return;

    std::uint64_t sent_body = 0;
    if (!is_head && body_len > 0) {
      if (::lseek(file.get(), static_cast<off_t>(body_begin), SEEK_SET) < 0) {
        return;
      }
      char buf[64 * 1024];
      std::uint64_t remaining = body_len;
      while (remaining > 0) {
        const std::size_t want =
            static_cast<std::size_t>(std::min<std::uint64_t>(remaining,
                                                             sizeof(buf)));
        ssize_t n;
        do {
          n = ::read(file.get(), buf, want);
        } while (n < 0 && errno == EINTR);
        if (n <= 0) return;  // file shrank mid-send; drop the connection
        if (!send_all(fd, buf, static_cast<std::size_t>(n))) return;
        remaining -= static_cast<std::uint64_t>(n);
        sent_body += static_cast<std::uint64_t>(n);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.bytes_sent += head_str.size() + sent_body;
    }
    if (req.close) return;
  }
}

}  // namespace ftc::core
