// Bit-exact label serialization. The byte format is:
//   header: field_bits(u8) kind(u8) n_aux(u32) k(u32) num_levels(u32)
//   vertex labels: tin, tout at coord_bits each (bit-packed)
//   edge labels:   upper.tin, upper.tout, lower.tin, lower.tout at
//                  coord_bits each, then num_levels*k field elements as
//                  full 64-bit words.
// Round-trips exactly; benches serialize labels to measure real sizes.
#include <cstring>

#include "core/ftc_labels.hpp"

namespace ftc::core {

namespace {

class BitWriter {
 public:
  void write(std::uint64_t value, unsigned bits) {
    FTC_REQUIRE(bits <= 64, "too many bits");
    for (unsigned i = 0; i < bits; ++i) {
      const bool bit = (value >> i) & 1;
      if (pos_ % 8 == 0) bytes_.push_back(0);
      if (bit) bytes_.back() |= static_cast<std::uint8_t>(1u << (pos_ % 8));
      ++pos_;
    }
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t read(unsigned bits) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bits; ++i) {
      FTC_REQUIRE(pos_ / 8 < bytes_.size(), "serialized label truncated");
      const bool bit = (bytes_[pos_ / 8] >> (pos_ % 8)) & 1;
      if (bit) v |= std::uint64_t{1} << i;
      ++pos_;
    }
    return v;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void write_header(BitWriter& w, const LabelParams& p) {
  w.write(p.field_bits, 8);
  w.write(p.kind, 8);
  w.write(p.n_aux, 32);
  w.write(p.k, 32);
  w.write(p.num_levels, 32);
}

LabelParams read_header(BitReader& r) {
  LabelParams p;
  p.field_bits = static_cast<std::uint8_t>(r.read(8));
  p.kind = static_cast<std::uint8_t>(r.read(8));
  p.n_aux = static_cast<std::uint32_t>(r.read(32));
  p.k = static_cast<std::uint32_t>(r.read(32));
  p.num_levels = static_cast<std::uint32_t>(r.read(32));
  FTC_REQUIRE(p.field_bits == 64 || p.field_bits == 128,
              "corrupt label header");
  return p;
}

}  // namespace

std::vector<std::uint8_t> serialize(const VertexLabel& label) {
  BitWriter w;
  write_header(w, label.params);
  const unsigned cb = label.params.coord_bits();
  w.write(label.anc.tin, cb);
  w.write(label.anc.tout, cb);
  return w.take();
}

std::vector<std::uint8_t> serialize(const EdgeLabel& label) {
  BitWriter w;
  write_header(w, label.params);
  const unsigned cb = label.params.coord_bits();
  w.write(label.upper.tin, cb);
  w.write(label.upper.tout, cb);
  w.write(label.lower.tin, cb);
  w.write(label.lower.tout, cb);
  const std::size_t expect = static_cast<std::size_t>(label.params.num_levels) *
                             label.params.k * label.params.words_per_elem();
  FTC_REQUIRE(label.sketch_words.size() == expect,
              "edge label payload inconsistent with parameters");
  for (const std::uint64_t word : label.sketch_words) w.write(word, 64);
  return w.take();
}

VertexLabel deserialize_vertex_label(std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  VertexLabel label;
  label.params = read_header(r);
  const unsigned cb = label.params.coord_bits();
  label.anc.tin = static_cast<std::uint32_t>(r.read(cb));
  label.anc.tout = static_cast<std::uint32_t>(r.read(cb));
  return label;
}

EdgeLabel deserialize_edge_label(std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  EdgeLabel label;
  label.params = read_header(r);
  const unsigned cb = label.params.coord_bits();
  label.upper.tin = static_cast<std::uint32_t>(r.read(cb));
  label.upper.tout = static_cast<std::uint32_t>(r.read(cb));
  label.lower.tin = static_cast<std::uint32_t>(r.read(cb));
  label.lower.tout = static_cast<std::uint32_t>(r.read(cb));
  const std::size_t expect = static_cast<std::size_t>(label.params.num_levels) *
                             label.params.k * label.params.words_per_elem();
  label.sketch_words.resize(expect);
  for (std::uint64_t& word : label.sketch_words) word = r.read(64);
  return label;
}

}  // namespace ftc::core
