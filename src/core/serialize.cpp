// Label codecs, two layers:
//
// 1. Bit-exact single-label serialization (the honest-size codec used by
//    the benches). The byte format is:
//      header: field_bits(u8) kind(u8) n_aux(u32) k(u32) num_levels(u32)
//      vertex labels: tin, tout at coord_bits each (bit-packed)
//      edge labels:   upper.tin, upper.tout, lower.tin, lower.tout at
//                     coord_bits each, then num_levels*k field elements as
//                     full 64-bit words.
//    Round-trips exactly; benches serialize labels to measure real sizes.
//
// 2. The LabelStore container blob codecs (label_store.hpp): byte-aligned
//    fixed-layout records for all three backends, where the scheme
//    parameters are stored once per container and every decode is
//    validated against them (mismatch -> StoreError, never UB).
#include <cstring>

#include "core/ftc_labels.hpp"
#include "core/label_store.hpp"
#include "core/sharded_store.hpp"

namespace ftc::core {

namespace {

class BitWriter {
 public:
  void write(std::uint64_t value, unsigned bits) {
    FTC_REQUIRE(bits <= 64, "too many bits");
    for (unsigned i = 0; i < bits; ++i) {
      const bool bit = (value >> i) & 1;
      if (pos_ % 8 == 0) bytes_.push_back(0);
      if (bit) bytes_.back() |= static_cast<std::uint8_t>(1u << (pos_ % 8));
      ++pos_;
    }
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t read(unsigned bits) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bits; ++i) {
      FTC_REQUIRE(pos_ / 8 < bytes_.size(), "serialized label truncated");
      const bool bit = (bytes_[pos_ / 8] >> (pos_ % 8)) & 1;
      if (bit) v |= std::uint64_t{1} << i;
      ++pos_;
    }
    return v;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void write_header(BitWriter& w, const LabelParams& p) {
  w.write(p.field_bits, 8);
  w.write(p.kind, 8);
  w.write(p.n_aux, 32);
  w.write(p.k, 32);
  w.write(p.num_levels, 32);
}

LabelParams read_header(BitReader& r) {
  LabelParams p;
  p.field_bits = static_cast<std::uint8_t>(r.read(8));
  p.kind = static_cast<std::uint8_t>(r.read(8));
  p.n_aux = static_cast<std::uint32_t>(r.read(32));
  p.k = static_cast<std::uint32_t>(r.read(32));
  p.num_levels = static_cast<std::uint32_t>(r.read(32));
  FTC_REQUIRE(p.field_bits == 64 || p.field_bits == 128,
              "corrupt label header");
  return p;
}

}  // namespace

std::vector<std::uint8_t> serialize(const VertexLabel& label) {
  BitWriter w;
  write_header(w, label.params);
  const unsigned cb = label.params.coord_bits();
  w.write(label.anc.tin, cb);
  w.write(label.anc.tout, cb);
  return w.take();
}

std::vector<std::uint8_t> serialize(const EdgeLabel& label) {
  BitWriter w;
  write_header(w, label.params);
  const unsigned cb = label.params.coord_bits();
  w.write(label.upper.tin, cb);
  w.write(label.upper.tout, cb);
  w.write(label.lower.tin, cb);
  w.write(label.lower.tout, cb);
  const std::size_t expect = static_cast<std::size_t>(label.params.num_levels) *
                             label.params.k * label.params.words_per_elem();
  FTC_REQUIRE(label.sketch_words.size() == expect,
              "edge label payload inconsistent with parameters");
  for (const std::uint64_t word : label.sketch_words) w.write(word, 64);
  return w.take();
}

VertexLabel deserialize_vertex_label(std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  VertexLabel label;
  label.params = read_header(r);
  const unsigned cb = label.params.coord_bits();
  label.anc.tin = static_cast<std::uint32_t>(r.read(cb));
  label.anc.tout = static_cast<std::uint32_t>(r.read(cb));
  return label;
}

EdgeLabel deserialize_edge_label(std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  EdgeLabel label;
  label.params = read_header(r);
  const unsigned cb = label.params.coord_bits();
  label.upper.tin = static_cast<std::uint32_t>(r.read(cb));
  label.upper.tout = static_cast<std::uint32_t>(r.read(cb));
  label.lower.tin = static_cast<std::uint32_t>(r.read(cb));
  label.lower.tout = static_cast<std::uint32_t>(r.read(cb));
  const std::size_t expect = static_cast<std::size_t>(label.params.num_levels) *
                             label.params.k * label.params.words_per_elem();
  label.sketch_words.resize(expect);
  for (std::uint64_t& word : label.sketch_words) word = r.read(64);
  return label;
}

// ------------------------------------------------------------------
// LabelStore container blob codecs.

namespace store {

namespace {

// Caps on decoded parameters, so a corrupt params blob (with checksum
// verification disabled) cannot demand absurd allocations. Generous:
// far above anything the builders produce.
constexpr std::uint32_t kMaxCoordBits = 32;
constexpr std::uint32_t kMaxSketchDim = 1u << 24;

void check(bool ok, const char* what) {
  if (!ok) throw StoreError(what);
}

}  // namespace

void encode_core_params(const LabelParams& p,
                        std::span<const std::uint32_t> level_bounds,
                        ByteWriter& w) {
  w.u8(p.field_bits);
  w.u8(p.kind);
  w.u8(0);
  w.u8(0);
  w.u32(p.n_aux);
  w.u32(p.k);
  w.u32(p.num_levels);
  // v2 trailer: per-level sketch population bounds. Count is 0 (no
  // bounds, e.g. a re-saved v1 store) or exactly num_levels.
  FTC_REQUIRE(level_bounds.empty() || level_bounds.size() == p.num_levels,
              "level bounds inconsistent with the label hierarchy");
  w.u32(static_cast<std::uint32_t>(level_bounds.size()));
  for (const std::uint32_t b : level_bounds) {
    FTC_REQUIRE(b <= p.k, "level bound exceeds sketch capacity");
    w.u32(b);
  }
}

LabelParams decode_core_params(ByteReader& r, std::uint32_t format_version,
                               std::vector<std::uint32_t>* bounds_out) {
  LabelParams p;
  p.field_bits = r.u8();
  p.kind = r.u8();
  r.u8();
  r.u8();
  p.n_aux = r.u32();
  p.k = r.u32();
  p.num_levels = r.u32();
  check(p.field_bits == 64 || p.field_bits == 128,
        "corrupt core-ftc params: bad field width");
  check(p.k <= kMaxSketchDim && p.num_levels <= kMaxSketchDim,
        "corrupt core-ftc params: implausible sketch dimensions");
  if (bounds_out != nullptr) bounds_out->clear();
  if (format_version >= 2) {
    const std::uint32_t count = r.u32();
    check(count == 0 || count == p.num_levels,
          "corrupt core-ftc params: bad level-bound count");
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t b = r.u32();
      check(b <= p.k, "corrupt core-ftc params: level bound exceeds k");
      if (bounds_out != nullptr) bounds_out->push_back(b);
    }
  }
  return p;
}

void encode_cycle_params(const CycleParams& p, ByteWriter& w) {
  w.u32(p.coord_bits);
  w.u32(p.vector_bits);
}

CycleParams decode_cycle_params(ByteReader& r) {
  CycleParams p;
  p.coord_bits = r.u32();
  p.vector_bits = r.u32();
  check(p.coord_bits >= 1 && p.coord_bits <= kMaxCoordBits,
        "corrupt dp21-cycle params: bad coordinate width");
  check(p.vector_bits >= 1 && p.vector_bits <= kMaxSketchDim,
        "corrupt dp21-cycle params: bad vector width");
  return p;
}

void encode_agm_params(const AgmParams& p, ByteWriter& w) {
  w.u32(p.coord_bits);
  w.u32(p.levels);
  w.u32(p.reps);
  w.u32(0);
  w.u64(p.seed);
}

AgmParams decode_agm_params(ByteReader& r) {
  AgmParams p;
  p.coord_bits = r.u32();
  p.levels = r.u32();
  p.reps = r.u32();
  r.u32();
  p.seed = r.u64();
  check(p.coord_bits >= 1 && p.coord_bits <= kMaxCoordBits,
        "corrupt dp21-agm params: bad coordinate width");
  check(p.levels >= 1 && p.levels <= kMaxSketchDim && p.reps >= 1 &&
            p.reps <= kMaxSketchDim,
        "corrupt dp21-agm params: bad sketch dimensions");
  return p;
}

void encode_vertex_record(const graph::AncestryLabel& anc, ByteWriter& w) {
  w.u32(anc.tin);
  w.u32(anc.tout);
}

graph::AncestryLabel decode_vertex_record(ByteReader& r) {
  graph::AncestryLabel anc;
  anc.tin = r.u32();
  anc.tout = r.u32();
  return anc;
}

void encode_core_edge(const EdgeLabel& label, ByteWriter& w) {
  const std::size_t expect = static_cast<std::size_t>(label.params.num_levels) *
                             label.params.k * label.params.words_per_elem();
  FTC_REQUIRE(label.sketch_words.size() == expect,
              "edge label payload inconsistent with parameters");
  w.u32(label.upper.tin);
  w.u32(label.upper.tout);
  w.u32(label.lower.tin);
  w.u32(label.lower.tout);
  for (const std::uint64_t word : label.sketch_words) w.u64(word);
}

EdgeLabel decode_core_edge(ByteReader& r, const LabelParams& params) {
  EdgeLabel label;
  label.params = params;
  label.upper.tin = r.u32();
  label.upper.tout = r.u32();
  label.lower.tin = r.u32();
  label.lower.tout = r.u32();
  const std::size_t expect = static_cast<std::size_t>(params.num_levels) *
                             params.k * params.words_per_elem();
  label.sketch_words.resize(expect);
  for (std::uint64_t& word : label.sketch_words) word = r.u64();
  return label;
}

std::size_t core_edge_blob_bytes(const LabelParams& params) {
  return 16 + 8 * static_cast<std::size_t>(params.num_levels) * params.k *
                  params.words_per_elem();
}

void encode_cycle_edge(const dp21::CsEdgeLabel& label, ByteWriter& w) {
  w.u8(label.is_tree ? 1 : 0);
  w.u8(0);
  w.u8(0);
  w.u8(0);
  w.u32(label.a.tin);
  w.u32(label.a.tout);
  w.u32(label.b.tin);
  w.u32(label.b.tout);
  for (const std::uint64_t word : label.vec) w.u64(word);
}

dp21::CsEdgeLabel decode_cycle_edge(ByteReader& r, const CycleParams& params) {
  dp21::CsEdgeLabel label;
  const std::uint8_t flags = r.u8();
  check(flags <= 1, "corrupt dp21-cycle edge blob: bad flags");
  label.is_tree = flags != 0;
  r.u8();
  r.u8();
  r.u8();
  label.a.tin = r.u32();
  label.a.tout = r.u32();
  label.b.tin = r.u32();
  label.b.tout = r.u32();
  label.vec.resize(params.vector_words());
  for (std::uint64_t& word : label.vec) word = r.u64();
  return label;
}

std::size_t cycle_edge_blob_bytes(const CycleParams& params) {
  return 20 + 8 * params.vector_words();
}

void encode_agm_edge(const dp21::AgmEdgeLabel& label, ByteWriter& w) {
  w.u32(label.upper.tin);
  w.u32(label.upper.tout);
  w.u32(label.lower.tin);
  w.u32(label.lower.tout);
  std::vector<std::uint64_t> words;
  label.sketch.append_words(words);
  for (const std::uint64_t word : words) w.u64(word);
}

dp21::AgmEdgeLabel decode_agm_edge(ByteReader& r, const AgmParams& params) {
  dp21::AgmEdgeLabel label;
  label.upper.tin = r.u32();
  label.upper.tout = r.u32();
  label.lower.tin = r.u32();
  label.lower.tout = r.u32();
  std::vector<std::uint64_t> words(params.sketch_words());
  for (std::uint64_t& word : words) word = r.u64();
  label.sketch = sketch::AgmSketch::from_words(params.levels, params.reps,
                                               params.seed, words);
  return label;
}

std::size_t agm_edge_blob_bytes(const AgmParams& params) {
  return 16 + 8 * params.sketch_words();
}

// ------------------------------------------------------------------
// Sharded-manifest shard-table records (sharded_store.hpp). Fixed
// 48-byte range/digest prefix, u32 name length, name bytes, zero pad to
// an 8-byte record boundary — records always start 8-aligned in the
// manifest, so ByteWriter::pad_to(8) lands on the record boundary.

void encode_shard_record(const ShardRecord& rec, ByteWriter& w) {
  FTC_REQUIRE(w.size() % 8 == 0, "shard record must start 8-aligned");
  FTC_REQUIRE(!rec.name.empty() && rec.name.size() <= kMaxShardNameBytes,
              "shard name length out of range");
  w.u64(rec.vertex_begin);
  w.u64(rec.vertex_end);
  w.u64(rec.edge_begin);
  w.u64(rec.edge_end);
  w.u64(rec.file_bytes);
  w.u64(rec.payload_digest);
  w.u32(static_cast<std::uint32_t>(rec.name.size()));
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(rec.name.data()),
      rec.name.size()));
  w.pad_to(8);
}

ShardRecord decode_shard_record(ByteReader& r) {
  ShardRecord rec;
  rec.vertex_begin = r.u64();
  rec.vertex_end = r.u64();
  rec.edge_begin = r.u64();
  rec.edge_end = r.u64();
  rec.file_bytes = r.u64();
  rec.payload_digest = r.u64();
  const std::uint32_t len = r.u32();
  if (len == 0 || len > kMaxShardNameBytes) {
    throw StoreError("corrupt manifest (shard name length out of range)");
  }
  const auto name = r.take(len);
  rec.name.assign(name.begin(), name.end());
  for (const std::uint8_t b : r.take((8 - ((4 + len) % 8)) % 8)) {
    if (b != 0) throw StoreError("corrupt manifest (shard record padding)");
  }
  return rec;
}

}  // namespace store

}  // namespace ftc::core
