#include "core/batch_engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace ftc::core {

namespace {

// Workers claim queries in chunks to keep contention on the shared work
// index negligible while still load-balancing uneven query costs.
constexpr std::size_t kChunk = 16;

std::unique_ptr<ConnectivityScheme> require_scheme(
    std::unique_ptr<ConnectivityScheme> scheme) {
  FTC_REQUIRE(scheme != nullptr, "null scheme");
  return scheme;
}

}  // namespace

BatchQueryEngine::BatchQueryEngine(const ConnectivityScheme& scheme,
                                   std::span<const graph::EdgeId> edge_faults,
                                   const QueryOptions& options)
    : scheme_(scheme),
      options_(options),
      faults_(scheme.prepare_faults(edge_faults)) {}

BatchQueryEngine::BatchQueryEngine(std::unique_ptr<ConnectivityScheme> scheme,
                                   std::span<const graph::EdgeId> edge_faults,
                                   const QueryOptions& options)
    : owned_(require_scheme(std::move(scheme))),
      scheme_(*owned_),
      options_(options),
      faults_(scheme_.prepare_faults(edge_faults)) {}

void BatchQueryEngine::reset_faults(
    std::span<const graph::EdgeId> edge_faults) {
  faults_ = scheme_.prepare_faults(edge_faults);
}

ConnectivityScheme::Workspace& BatchQueryEngine::workspace(std::size_t i) {
  while (workspaces_.size() <= i) {
    workspaces_.push_back(scheme_.make_workspace());
  }
  return *workspaces_[i];
}

bool BatchQueryEngine::connected(graph::VertexId s, graph::VertexId t) {
  return scheme_.query(s, t, *faults_, workspace(0), options_);
}

std::vector<bool> BatchQueryEngine::run_sequential(
    std::span<const Query> queries) {
  std::vector<bool> out;
  out.reserve(queries.size());
  ConnectivityScheme::Workspace& ws = workspace(0);
  for (const Query& q : queries) {
    out.push_back(scheme_.query(q.s, q.t, *faults_, ws, options_));
  }
  return out;
}

std::vector<bool> BatchQueryEngine::run_parallel(
    std::span<const Query> queries, unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t max_useful = (queries.size() + kChunk - 1) / kChunk;
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, std::max<std::size_t>(max_useful, 1)));
  if (num_threads <= 1) return run_sequential(queries);

  // vector<bool> is not safe for concurrent writes; use one byte per
  // result and convert at the end.
  std::vector<std::uint8_t> results(queries.size(), 0);
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  // Pre-create every workspace on this thread: workspace() grows the
  // arena and must not race.
  for (unsigned i = 0; i < num_threads; ++i) workspace(i);

  const auto worker = [&](unsigned id) {
    ConnectivityScheme::Workspace& ws = workspace(id);
    try {
      for (;;) {
        const std::size_t begin = next.fetch_add(kChunk);
        if (begin >= queries.size()) break;
        const std::size_t end = std::min(begin + kChunk, queries.size());
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = scheme_.query(queries[i].s, queries[i].t, *faults_,
                                     ws, options_)
                           ? 1
                           : 0;
        }
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (unsigned i = 1; i < num_threads; ++i) threads.emplace_back(worker, i);
  worker(0);
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);

  return std::vector<bool>(results.begin(), results.end());
}

}  // namespace ftc::core
