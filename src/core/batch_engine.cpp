#include "core/batch_engine.hpp"

#include "core/journal.hpp"
#include "util/worker_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <utility>

namespace ftc::core {

namespace {

// Workers claim queries in chunks to keep contention on the shared work
// index negligible while still load-balancing uneven query costs.
constexpr std::size_t kChunk = 16;

std::shared_ptr<const ConnectivityScheme> require_scheme(
    std::unique_ptr<ConnectivityScheme> scheme) {
  FTC_REQUIRE(scheme != nullptr, "null scheme");
  return std::shared_ptr<const ConnectivityScheme>(std::move(scheme));
}

}  // namespace

// The persistent worker pool lives in util/worker_pool.hpp now, shared
// with the label builders: threads are created once (lazily) and parked
// on a condition variable between batches, so a small run_parallel()
// batch costs two mutex hand-offs instead of num_threads thread spawns
// + joins. run() is only ever entered from the engine's (single) caller
// thread.

BatchQueryEngine::BatchQueryEngine(
    std::shared_ptr<const ConnectivityScheme> scheme, const FaultSpec& spec,
    const QueryOptions& options)
    : spec_(spec), options_(options) {
  auto gen = std::make_shared<Generation>();
  gen->epoch = next_epoch_++;
  gen->scheme = std::move(scheme);
  gen->faults = gen->scheme->prepare_faults(spec_);
  gen_ = std::move(gen);
}

BatchQueryEngine::BatchQueryEngine(const ConnectivityScheme& scheme,
                                   const FaultSpec& spec,
                                   const QueryOptions& options)
    // Non-owning: the caller guarantees the scheme outlives the engine.
    : BatchQueryEngine(std::shared_ptr<const ConnectivityScheme>(
                           &scheme, [](const ConnectivityScheme*) {}),
                       spec, options) {}

BatchQueryEngine::BatchQueryEngine(std::unique_ptr<ConnectivityScheme> scheme,
                                   const FaultSpec& spec,
                                   const QueryOptions& options)
    : BatchQueryEngine(require_scheme(std::move(scheme)), spec, options) {}

BatchQueryEngine::~BatchQueryEngine() = default;

std::shared_ptr<BatchQueryEngine::Generation> BatchQueryEngine::snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return gen_;
}

std::uint64_t BatchQueryEngine::epoch() const { return snapshot()->epoch; }

std::size_t BatchQueryEngine::num_faults() const {
  return snapshot()->faults->num_faults();
}

const ConnectivityScheme& BatchQueryEngine::scheme() const {
  return *snapshot()->scheme;
}

BatchQueryEngine::GenerationStats BatchQueryEngine::generation_stats() const {
  const std::shared_ptr<Generation> gen = snapshot();
  GenerationStats stats;
  stats.epoch = gen->epoch;
  const auto sharded = std::dynamic_pointer_cast<const ShardedStoreView>(
      gen->scheme->store_view());
  if (sharded == nullptr) {
    // In-memory or single-container generation: no shards to degrade.
    stats.num_shards = 1;
    stats.shards_open = 1;
    return stats;
  }
  stats.num_shards = sharded->info().num_shards;
  stats.shards_open = sharded->shards_open();
  stats.shards_adopted = sharded->shards_adopted();
  stats.quarantine = sharded->quarantine_report();
  stats.shards_quarantined = stats.quarantine.size();
  stats.degraded = stats.shards_quarantined != 0;
  return stats;
}

std::uint64_t BatchQueryEngine::install(
    std::shared_ptr<const ConnectivityScheme> scheme) {
  // Warm the incoming labels OUTSIDE the lock before anything is
  // published: a sharded store maps + digest-verifies every shard here,
  // in parallel, and resolves its flat route table — so the first
  // queries on the new epoch never hit a cold lazy open (the
  // swap-under-load collapse) and a corrupt shard fails the swap while
  // the old generation keeps serving.
  scheme->prefetch();
  // Prepare the incoming generation outside the lock too (fault-label
  // decoding is the expensive part of a swap), then publish it only if
  // the fault spec did not change underneath; a concurrent reset_faults
  // wins and the preparation is redone against the fresh spec.
  for (;;) {
    FaultSpec spec;
    std::uint64_t spec_version;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      spec = spec_;
      spec_version = spec_version_;
    }
    auto gen = std::make_shared<Generation>();
    gen->scheme = scheme;
    gen->faults = scheme->prepare_faults(spec);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (spec_version_ != spec_version) continue;
    gen->epoch = next_epoch_++;
    gen_ = std::move(gen);
    return gen_->epoch;
  }
}

std::uint64_t BatchQueryEngine::swap_store(
    std::unique_ptr<ConnectivityScheme> scheme) {
  return install(require_scheme(std::move(scheme)));
}

std::uint64_t BatchQueryEngine::swap_store(
    std::shared_ptr<const StoreView> view, LoadMode mode) {
  return install(require_scheme(load_scheme(std::move(view), mode)));
}

std::uint64_t BatchQueryEngine::swap_store(const std::string& path,
                                           const LoadOptions& options) {
  // Open the incoming artifact with the CURRENT generation's view as
  // the reuse source: shards whose manifest digests match stay on their
  // existing mmaps (delta-push cut-over), so the prefetch in install()
  // maps only the changed ones.
  const std::shared_ptr<const StoreView> current =
      snapshot()->scheme->store_view();
  auto scheme = load_scheme(
      open_store_view(path, options.verify_checksum, current), options.mode);
  attach_journal_sidecar(*scheme, path, options.replay_journal);
  return install(require_scheme(std::move(scheme)));
}

void BatchQueryEngine::reset_faults(const FaultSpec& spec) {
  // Query-thread only, so no query is in flight on the current
  // generation; the new fault set is published as a sibling generation
  // (same scheme, same epoch) instead of mutated in place, because a
  // concurrent swap_store may still hold a reference to the old one.
  // Preparation happens before the spec commits, so a spec the scheme
  // rejects leaves the session fully unchanged. If a swap publishes a
  // new generation between our snapshot and our install, that
  // generation carries the OLD spec — loop and re-prepare against it
  // (mirroring install()'s spec_version_ retry in the other direction),
  // so the session never keeps serving a spec reset_faults replaced.
  for (;;) {
    const std::shared_ptr<Generation> cur = snapshot();
    auto gen = std::make_shared<Generation>();
    gen->epoch = cur->epoch;
    gen->scheme = cur->scheme;
    gen->faults = cur->scheme->prepare_faults(spec);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (gen_ != cur) continue;
    spec_ = spec;
    ++spec_version_;
    gen->workspaces = std::move(cur->workspaces);
    gen_ = std::move(gen);
    return;
  }
}

ConnectivityScheme::Workspace& BatchQueryEngine::workspace(Generation& gen,
                                                           std::size_t i) {
  while (gen.workspaces.size() <= i) {
    gen.workspaces.push_back(gen.scheme->make_workspace());
  }
  return *gen.workspaces[i];
}

bool BatchQueryEngine::connected(graph::VertexId s, graph::VertexId t) {
  const auto gen = snapshot();
  last_run_epoch_ = gen->epoch;
  return gen->scheme->query(s, t, *gen->faults, workspace(*gen, 0), options_);
}

std::vector<bool> BatchQueryEngine::run_sequential(
    std::span<const Query> queries) {
  const auto gen = snapshot();
  last_run_epoch_ = gen->epoch;
  std::vector<bool> out;
  out.reserve(queries.size());
  ConnectivityScheme::Workspace& ws = workspace(*gen, 0);
  for (const Query& q : queries) {
    out.push_back(gen->scheme->query(q.s, q.t, *gen->faults, ws, options_));
  }
  return out;
}

std::vector<bool> BatchQueryEngine::run_parallel(
    std::span<const Query> queries, unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t max_useful = (queries.size() + kChunk - 1) / kChunk;
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, std::max<std::size_t>(max_useful, 1)));
  if (num_threads <= 1) return run_sequential(queries);

  // The whole batch pins ONE generation: every result comes from the
  // same label epoch even if swap_store lands mid-batch.
  const auto gen = snapshot();
  last_run_epoch_ = gen->epoch;

  // vector<bool> is not safe for concurrent writes; use one byte per
  // result and convert at the end.
  std::vector<std::uint8_t> results(queries.size(), 0);
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  // Pre-create every workspace on this thread: workspace() grows the
  // arena and must not race.
  for (unsigned i = 0; i < num_threads; ++i) workspace(*gen, i);

  const std::function<void(unsigned)> worker = [&](unsigned id) {
    ConnectivityScheme::Workspace& ws = workspace(*gen, id);
    try {
      for (;;) {
        const std::size_t begin = next.fetch_add(kChunk);
        if (begin >= queries.size()) break;
        const std::size_t end = std::min(begin + kChunk, queries.size());
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = gen->scheme->query(queries[i].s, queries[i].t,
                                          *gen->faults, ws, options_)
                           ? 1
                           : 0;
        }
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  };

  if (pool_ == nullptr) pool_ = std::make_unique<util::WorkerPool>();
  pool_->run(num_threads, worker);
  if (error) std::rethrow_exception(error);

  return std::vector<bool>(results.begin(), results.end());
}

}  // namespace ftc::core
