// The label objects of the f-FTC labeling scheme (Section 7.1/7.2).
//
// A vertex label is its T'-ancestry label (O(log n) bits). An edge label
// carries the ancestry labels of its sigma-image's endpoints in T' plus,
// per hierarchy level, the XOR (field sum) of the outdetect labels of all
// vertices in the subtree below the edge — the quantity Proposition 4
// turns into per-fragment sketch sums at query time.
//
// Labels are self-describing (they embed the scheme parameters), so the
// decoder is universal: it sees only labels, never the graph.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/ancestry.hpp"
#include "util/common.hpp"

namespace ftc::core {

struct LabelParams {
  std::uint8_t field_bits = 64;   // 64 or 128
  std::uint32_t n_aux = 0;        // |V_{G'}|: coordinate domain size
  std::uint32_t k = 0;            // sketch threshold per level
  std::uint32_t num_levels = 0;   // nonempty hierarchy levels
  std::uint8_t kind = 0;          // SchemeKind, informational

  friend bool operator==(const LabelParams&, const LabelParams&) = default;

  unsigned coord_bits() const {
    return n_aux <= 2 ? 1 : ceil_log2(n_aux);
  }
  unsigned words_per_elem() const { return field_bits / 64; }
};

struct VertexLabel {
  LabelParams params;
  graph::AncestryLabel anc;

  // Serialized size in bits (information content; the shared params header
  // is amortized and not charged per label, matching the paper's
  // accounting of per-vertex O(log n) bits).
  std::size_t size_bits() const { return 2 * params.coord_bits(); }
};

struct EdgeLabel {
  LabelParams params;
  graph::AncestryLabel upper;  // endpoint nearer the root in T'
  graph::AncestryLabel lower;  // endpoint whose subtree the edge cuts
  // Sketch payload: num_levels * k field elements, level-major, each as
  // words_per_elem() 64-bit words (little-endian).
  std::vector<std::uint64_t> sketch_words;

  std::size_t size_bits() const {
    return 4 * params.coord_bits() +
           static_cast<std::size_t>(params.num_levels) * params.k *
               params.field_bits;
  }
};

// Thrown by the decoder when a sketch fails to decode within its capacity
// k — impossible under provable parameters, possible (and detected,
// never silently wrong) under aggressive practical ones.
class FtcCapacityError : public std::runtime_error {
 public:
  explicit FtcCapacityError(const std::string& what)
      : std::runtime_error(what) {}
};

// Byte-exact serialization (bit-packed coordinates). Round-trips exactly;
// used for honest label-size measurements in the benches.
std::vector<std::uint8_t> serialize(const VertexLabel& label);
std::vector<std::uint8_t> serialize(const EdgeLabel& label);
VertexLabel deserialize_vertex_label(std::span<const std::uint8_t> bytes);
EdgeLabel deserialize_edge_label(std::span<const std::uint8_t> bytes);

}  // namespace ftc::core
