// Configuration of the f-FTC labeling schemes (Theorem 1 variants).
#pragma once

#include <cstdint>

#include "geometry/hierarchy.hpp"

namespace ftc::core {

// Which sparsification hierarchy drives the scheme (Table 1 rows):
//  kDeterministic — NetFind epsilon-net (this paper, deterministic, full
//                   query support; near-linear construction).
//  kDeterministicGreedy — greedy-net hierarchy (the poly(n) Lemma 10 slot;
//                   small instances only).
//  kRandomized    — random halving (Prop. 5): the paper's randomized
//                   full-support variant, competitive with Dory-Parter.
enum class SchemeKind : std::uint8_t {
  kDeterministic = 0,
  kDeterministicGreedy = 1,
  kRandomized = 2,
};

// How the sketch threshold k is chosen.
//  kProvable  — the worst-case bound (Lemma 5 / Prop. 5 formulas). Label
//               sizes match the theorems' constants; practical only for
//               small graphs.
//  kPractical — k = ceil(k_scale * (f + 1) * log2 n'). The decoder is
//               fail-stop (FtcCapacityError) if this ever proves too
//               small; bench_k_tradeoff quantifies the safety margin.
enum class KMode : std::uint8_t {
  kProvable = 0,
  kPractical = 1,
};

enum class FieldKind : std::uint8_t {
  kAuto = 0,   // GF(2^64) when the auxiliary graph fits, else GF(2^128)
  kGF64 = 1,   // auxiliary graphs up to 2^16 - 1 vertices
  kGF128 = 2,  // auxiliary graphs up to 2^32 - 1 vertices
};

// Which labeling construction backs the ConnectivityScheme interface
// (connectivity_scheme.hpp). All three share the auxiliary-graph /
// fragment-merging framework but differ in the outdetect engine:
//  kCoreFtc        — this paper's FtcScheme (ftc_scheme.*): deterministic
//                    RS-sketch hierarchy, variant selected by SchemeKind.
//  kDp21CycleSpace — Dory-Parter first scheme (dp21/cycle_space_ftc.*):
//                    cycle-space sampling, smallest labels, whp.
//  kDp21Agm        — Dory-Parter second scheme (dp21/agm_ftc.*): AGM
//                    l0-sampler sketches, whp.
enum class BackendKind : std::uint8_t {
  kCoreFtc = 0,
  kDp21CycleSpace = 1,
  kDp21Agm = 2,
};

inline constexpr BackendKind kAllBackends[] = {
    BackendKind::kCoreFtc,
    BackendKind::kDp21CycleSpace,
    BackendKind::kDp21Agm,
};

constexpr const char* backend_name(BackendKind b) {
  switch (b) {
    case BackendKind::kCoreFtc:
      return "core-ftc";
    case BackendKind::kDp21CycleSpace:
      return "dp21-cycle";
    case BackendKind::kDp21Agm:
      return "dp21-agm";
  }
  return "unknown";
}

struct FtcConfig {
  unsigned f = 2;  // maximum number of faulty edges supported
  SchemeKind kind = SchemeKind::kDeterministic;
  KMode k_mode = KMode::kPractical;
  double k_scale = 4.0;      // multiplier for the practical k
  unsigned k_override = 0;   // nonzero: use exactly this k
  unsigned group_len = 0;    // NetFind group length (0 = provable default)
  std::uint64_t seed = 1;    // randomized hierarchy seed
  FieldKind field = FieldKind::kAuto;
  // Build worker threads (0 = hardware concurrency). Any value produces
  // byte-identical labels; this is purely a wall-clock knob.
  unsigned build_threads = 1;
};

}  // namespace ftc::core
