#include "core/journal.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "core/shard_source.hpp"
#include "core/sharded_store.hpp"
#include "util/failpoint.hpp"
#include "util/scoped_fd.hpp"

namespace ftc::core {

namespace {

using graph::EdgeId;

// Whole-file read; journals are bounded by f IDs plus frame framing, so
// slurping is the simple and correct choice (no mmap lifetime to manage).
std::vector<std::uint8_t> read_file(const std::string& path) {
  if (const int fe = FTC_FAILPOINT("journal.read")) {
    errno = fe;
    throw StoreIoError("cannot open deletion journal: " + path + " (" +
                       std::strerror(errno) + ")");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StoreIoError("cannot open deletion journal: " + path + " (" +
                       std::strerror(errno) + ")");
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) {
    throw StoreIoError("cannot read deletion journal: " + path);
  }
  return bytes;
}

// Advisory exclusive lock serializing the journal's read-modify-write
// cycles (append, compact) across processes. The lock lives on a
// sidecar "<journal>.lock" file: write_file_atomic replaces the
// journal's inode on every rewrite, so flocking the journal itself
// would hand two writers two different inodes and no exclusion.
class JournalLock {
 public:
  explicit JournalLock(const std::string& journal_path) {
    const std::string lock_path = journal_path + ".lock";
    int open_errno = 0;
    if (const int fe = FTC_FAILPOINT("journal.flock")) {
      open_errno = fe;
    } else {
      fd_.reset(::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                       0644));
      open_errno = errno;
    }
    if (!fd_) {
      throw StoreIoError("cannot open journal lock file: " + lock_path +
                         " (" + std::strerror(open_errno) + ")");
    }
    int rc;
    do {
      rc = ::flock(fd_.get(), LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      throw StoreIoError("cannot lock journal: " + lock_path + " (" +
                         std::strerror(errno) + ")");
    }
  }
  // Closing the fd releases the flock; the sidecar file stays behind
  // (unlinking it would race a third writer onto a fresh inode).

 private:
  util::ScopedFd fd_;
};

// One frame appended to `w`; returns the new chain value. `chain` seeds
// the running digest (kFnvBasis before the first frame).
std::uint64_t encode_frame(store::ByteWriter& w, std::uint64_t epoch,
                           std::uint64_t store_digest,
                           std::uint32_t fault_budget,
                           std::span<const EdgeId> edges,
                           std::uint64_t chain) {
  const std::size_t start = w.size();
  w.u64(store::kJournalMagic);
  w.u64(epoch);
  w.u64(store_digest);
  w.u32(fault_budget);
  w.u32(static_cast<std::uint32_t>(edges.size()));
  for (const EdgeId e : edges) w.u32(e);
  w.pad_to(8);
  chain = store::fnv1a(w.view().subspan(start), chain);
  w.u64(chain);
  return chain;
}

std::vector<EdgeId> canonical(std::span<const EdgeId> ids) {
  std::vector<EdgeId> out(ids.begin(), ids.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::string journal_path_for(const std::string& store_path) {
  return store_path + ".jrnl";
}

bool DeletionJournal::exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::shared_ptr<const DeletionJournal> DeletionJournal::open(
    const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  std::shared_ptr<DeletionJournal> j(new DeletionJournal());
  j->file_bytes_ = bytes.size();
  j->chain_ = store::kFnvBasis;

  const auto fail = [&](const char* why) -> StoreError {
    return StoreError(std::string("corrupt deletion journal (") + why +
                      "): " + path);
  };
  if (bytes.empty()) throw fail("empty file");

  store::ByteReader r(bytes);
  std::uint64_t last_epoch = 0;
  while (r.remaining() > 0) {
    const std::size_t start = r.pos();
    // A tail shorter than any legal frame is truncation, not a frame.
    if (r.remaining() < store::kJournalFramePrefixBytes + 8) {
      throw fail("truncated frame");
    }
    if (r.u64() != store::kJournalMagic) throw fail("bad frame magic");
    const std::uint64_t epoch = r.u64();
    if (epoch <= last_epoch) throw fail("epoch not increasing");
    const std::uint64_t digest = r.u64();
    const std::uint32_t budget = r.u32();
    const std::uint32_t count = r.u32();
    if (budget == 0) throw fail("zero fault budget");
    if (count == 0) throw fail("empty frame");
    if (j->num_frames_ == 0) {
      j->store_digest_ = digest;
      j->fault_budget_ = budget;
    } else if (digest != j->store_digest_) {
      throw fail("store digest differs between frames");
    } else if (budget != j->fault_budget_) {
      throw fail("fault budget differs between frames");
    }
    if (count > r.remaining() / 4) throw fail("truncated frame");
    EdgeId prev = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const EdgeId e = static_cast<EdgeId>(r.u32());
      if (i != 0 && e <= prev) {
        throw fail("duplicate or unsorted edge IDs in frame");
      }
      prev = e;
      j->edges_.push_back(e);
    }
    while ((r.pos() - start) % 8 != 0) {
      if (r.u8() != 0) throw fail("nonzero frame padding");
    }
    const std::uint64_t expected =
        store::fnv1a(std::span<const std::uint8_t>(bytes).subspan(
                         start, r.pos() - start),
                     j->chain_);
    if (r.remaining() < 8) throw fail("truncated frame");
    if (r.u64() != expected) throw fail("running digest mismatch");
    j->chain_ = expected;
    last_epoch = epoch;
    ++j->num_frames_;
  }
  j->epoch_ = last_epoch;

  std::sort(j->edges_.begin(), j->edges_.end());
  j->edges_.erase(std::unique(j->edges_.begin(), j->edges_.end()),
                  j->edges_.end());
  if (j->edges_.size() > j->fault_budget_) {
    throw CapacityError(
        "deletion journal over capacity: " + path, j->fault_budget_,
        j->edges_.size(), j->edges_.size());
  }
  return j;
}

std::uint64_t DeletionJournal::append(const std::string& path,
                                      std::uint64_t store_digest,
                                      std::uint32_t fault_budget,
                                      std::span<const EdgeId> edges) {
  const std::vector<EdgeId> ids = canonical(edges);
  FTC_REQUIRE(!ids.empty(), "journal append needs at least one edge ID");

  // Exclusive for the whole read-modify-write: two appenders serialized
  // here cannot drop each other's frames.
  const JournalLock lock(path);

  std::vector<std::uint8_t> existing;
  std::uint64_t epoch = 0;
  std::uint64_t chain = store::kFnvBasis;
  std::vector<EdgeId> journaled;
  if (exists(path)) {
    const auto prior = open(path);
    if (prior->store_digest() != store_digest) {
      throw StoreError(
          "deletion journal is bound to a different store generation "
          "(digest mismatch; the journal does not survive a label push): " +
          path);
    }
    if (fault_budget != 0 && fault_budget != prior->fault_budget()) {
      throw std::invalid_argument(
          "journal fault budget cannot change after creation: " + path);
    }
    fault_budget = prior->fault_budget();
    epoch = prior->epoch();
    chain = prior->chain_;
    journaled.assign(prior->deleted_edges().begin(),
                     prior->deleted_edges().end());
    existing = read_file(path);
  } else {
    FTC_REQUIRE(fault_budget >= 1,
                "a new journal needs a positive fault budget");
  }

  // Drop already-journaled IDs: deletions are idempotent, and only
  // distinct edges count against the budget.
  std::vector<EdgeId> fresh;
  for (const EdgeId e : ids) {
    if (!std::binary_search(journaled.begin(), journaled.end(), e)) {
      fresh.push_back(e);
    }
  }
  if (fresh.empty()) return epoch;
  if (journaled.size() + fresh.size() > fault_budget) {
    throw CapacityError("journal append would exceed the fault budget: " +
                            path,
                        fault_budget, journaled.size(),
                        journaled.size() + fresh.size());
  }

  store::ByteWriter w;
  w.bytes(existing);
  encode_frame(w, epoch + 1, store_digest, fault_budget, fresh, chain);
  store::write_file_atomic(path, w.view());
  return epoch + 1;
}

DeletionJournal::CompactStats DeletionJournal::compact(
    const std::string& path) {
  const JournalLock lock(path);
  const auto prior = open(path);
  CompactStats stats;
  stats.frames_before = prior->num_frames();
  stats.file_bytes_before = prior->file_bytes();
  store::ByteWriter w;
  encode_frame(w, prior->epoch(), prior->store_digest(),
               prior->fault_budget(), prior->deleted_edges(),
               store::kFnvBasis);
  store::write_file_atomic(path, w.view());
  stats.frames_after = 1;
  stats.file_bytes_after = w.size();
  return stats;
}

void DeletionJournal::validate_against(const StoreInfo& info,
                                       const std::string& store_path) const {
  if (store_digest_ != info.payload_checksum) {
    throw StoreError(
        "deletion journal is bound to a different store generation "
        "(digest mismatch — compact history belongs to the old labels; "
        "start a fresh journal after a push): " + store_path);
  }
  if (!edges_.empty() && edges_.back() >= info.num_edges) {
    throw StoreError(
        "deletion journal names unknown edge IDs (beyond the store's "
        "edge count): " + store_path);
  }
}

void attach_journal_sidecar(ConnectivityScheme& scheme,
                            const std::string& store_path, bool replay) {
  if (!replay) return;
  // A remote store's sidecar lives next to the manifest on the origin
  // ("<url>.jrnl"); fetch it into the cache and replay the local copy.
  // Validation still names the URL, and the digest binding inside the
  // journal makes a stale cached copy fail loudly rather than replay
  // against the wrong generation.
  const std::string jpath = is_http_url(store_path)
                                ? fetch_remote_journal(store_path)
                                : journal_path_for(store_path);
  if (jpath.empty() || !DeletionJournal::exists(jpath)) return;
  const std::shared_ptr<const StoreView> view = scheme.store_view();
  FTC_CHECK(view != nullptr,
            "journal replay needs a store-served scheme");
  auto journal = DeletionJournal::open(jpath);
  journal->validate_against(view->info(), store_path);
  scheme.attach_journal(std::move(journal));
}

}  // namespace ftc::core
