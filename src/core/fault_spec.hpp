// FaultSpec: the first-class fault model of the query API.
//
// A fault set is no longer "a span of edge IDs": queries may delete whole
// vertices (every incident edge goes down with them — the open-problems
// reduction of Section 1.4, cost Delta * f labels) alongside individual
// edges. FaultSpec is the canonical value type every layer accepts —
// ConnectivityScheme::prepare_faults, BatchQueryEngine sessions,
// ConnectivityOracle and the ftc_store CLI — so canonicalization
// (sorting + deduplication) happens exactly once, at construction, and
// every consumer downstream can rely on sorted unique IDs.
//
// Range validation is deliberately NOT done here: a FaultSpec is built
// without reference to any particular scheme, and prepare_faults checks
// the IDs against the scheme's dimensions (std::invalid_argument on
// out-of-range IDs, as before).
//
// Vertex faults need adjacency (the vertex -> incident-edges reduction);
// schemes that carry none — e.g. those loaded from a format-v1 label
// store — throw the typed CapabilityError below.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ftc::core {

// Thrown when a query asks a scheme for something it structurally cannot
// serve (vertex faults without adjacency), as opposed to a malformed
// request. Derives from std::invalid_argument so pre-FaultSpec callers
// that caught the old error type keep working.
class CapabilityError : public std::invalid_argument {
 public:
  explicit CapabilityError(const std::string& what)
      : std::invalid_argument(what) {}
};

// Thrown when journaled deletions plus a query's own fault set would
// exceed the fault budget f the deletion journal was created with
// (journal.hpp): the labels only promise correct answers for fault sets
// of size <= f, so past the budget the scheme refuses typed rather than
// answer wrong. Carries the full accounting so callers (and operators
// reading the message) can see how much budget is left before a
// compaction-and-rebuild is due.
class CapacityError : public std::invalid_argument {
 public:
  // budget: the journal's fault budget f. journaled: distinct journaled
  // deletions. requested: the merged fault count that overflowed
  // (journal union query-fault edges after the vertex reduction).
  CapacityError(const std::string& what, std::size_t budget,
                std::size_t journaled, std::size_t requested);

  std::size_t budget() const { return budget_; }
  std::size_t journaled() const { return journaled_; }
  std::size_t requested() const { return requested_; }
  // Query-fault headroom left next to the journaled deletions.
  std::size_t remaining() const {
    return budget_ > journaled_ ? budget_ - journaled_ : 0;
  }

 private:
  std::size_t budget_ = 0;
  std::size_t journaled_ = 0;
  std::size_t requested_ = 0;
};

class FaultSpec {
 public:
  // The empty fault set (every query answers "connected").
  FaultSpec() = default;

  // Factories canonicalize once: IDs come out sorted and deduplicated.
  static FaultSpec edges(std::span<const graph::EdgeId> edge_faults);
  static FaultSpec vertices(std::span<const graph::VertexId> vertex_faults);
  static FaultSpec of(std::span<const graph::EdgeId> edge_faults,
                      std::span<const graph::VertexId> vertex_faults);

  std::span<const graph::EdgeId> edge_faults() const { return edges_; }
  std::span<const graph::VertexId> vertex_faults() const { return vertices_; }

  bool has_vertex_faults() const { return !vertices_.empty(); }
  bool empty() const { return edges_.empty() && vertices_.empty(); }
  // Total distinct faulty elements (edges + vertices).
  std::size_t size() const { return edges_.size() + vertices_.size(); }

 private:
  FaultSpec(std::vector<graph::EdgeId> edges,
            std::vector<graph::VertexId> vertices)
      : edges_(std::move(edges)), vertices_(std::move(vertices)) {}

  std::vector<graph::EdgeId> edges_;      // sorted, unique
  std::vector<graph::VertexId> vertices_; // sorted, unique
};

// Incidence access for the vertex -> incident-edges reduction, decoupled
// from graph::Graph so both in-memory schemes (which copy the incidence
// lists at build time) and label-store-served schemes (which read an
// adjacency side-table straight from the mapped container) can serve
// vertex faults through one interface.
class AdjacencyProvider {
 public:
  virtual ~AdjacencyProvider() = default;

  virtual graph::VertexId num_vertices() const = 0;
  virtual std::size_t degree(graph::VertexId v) const = 0;
  // Appends v's incident edge IDs to out (order unspecified; callers
  // sort + dedup the merged set). Append-style instead of span-returning
  // so mapped providers can decode on the fly without stable storage.
  virtual void append_incident(graph::VertexId v,
                               std::vector<graph::EdgeId>& out) const = 0;
};

// Owning incidence lists in CSR layout. Built from a graph by the
// in-memory backends, or from a decoded store adjacency section by the
// kMaterialize load path.
class VectorAdjacency final : public AdjacencyProvider {
 public:
  explicit VectorAdjacency(const graph::Graph& g);
  // offsets: n + 1 monotone entry offsets into lists. 64-bit like the
  // on-disk v2 side-table: 2m entries can exceed uint32_t.
  VectorAdjacency(std::vector<std::uint64_t> offsets,
                  std::vector<graph::EdgeId> lists);

  graph::VertexId num_vertices() const override {
    return static_cast<graph::VertexId>(offsets_.size() - 1);
  }
  std::size_t degree(graph::VertexId v) const override;
  void append_incident(graph::VertexId v,
                       std::vector<graph::EdgeId>& out) const override;

 private:
  std::vector<std::uint64_t> offsets_;  // n + 1 entries
  std::vector<graph::EdgeId> lists_;
};

}  // namespace ftc::core
