// Centralized fault-tolerant connectivity oracle facade.
//
// Section 1.4: "any f-FTC labeling scheme is also usable as a centralized
// oracle with the space complexity of m times the label size". This
// wrapper owns a ConnectivityScheme backend (any of the three label
// constructions, selected by SchemeConfig::backend), answers (s, t, F)
// queries directly, and adds the vertex-fault reduction the paper
// sketches: a faulty vertex becomes the set of its incident edges (label
// size Delta * f in the worst case — the reduction the open-problems
// section wants to beat).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/connectivity_scheme.hpp"
#include "core/label_store.hpp"

namespace ftc::core {

class ConnectivityOracle {
 public:
  // Back-compat: the paper's own scheme (BackendKind::kCoreFtc).
  ConnectivityOracle(const graph::Graph& g, const FtcConfig& config);

  // Backend-agnostic: any labeling construction behind the factory.
  ConnectivityOracle(const graph::Graph& g, const SchemeConfig& config);

  // Serve straight from a persisted label store, without the graph.
  // Edge-fault queries behave identically to the oracle that wrote the
  // store; connected_vertex_faults throws std::invalid_argument (the
  // vertex->incident-edges reduction needs adjacency, which a label
  // store deliberately does not carry — Section 1.4's oracle is
  // labels-only).
  static ConnectivityOracle from_store(const std::string& path,
                                       const LoadOptions& options = {});

  // s-t connectivity in G - faults.
  bool connected(graph::VertexId s, graph::VertexId t,
                 std::span<const graph::EdgeId> edge_faults) const;

  // s-t connectivity after deleting whole vertices (all incident edges).
  // A deleted endpoint is disconnected from everything else by definition
  // (and connected to itself).
  bool connected_vertex_faults(
      graph::VertexId s, graph::VertexId t,
      std::span<const graph::VertexId> vertex_faults) const;

  struct Query {
    graph::VertexId s = 0;
    graph::VertexId t = 0;
  };
  // Shared fault set across a batch: fault labels are materialized once
  // and the decode workspace is reused (see batch_engine.hpp for the
  // multi-threaded version).
  std::vector<bool> batch_connected(
      std::span<const Query> queries,
      std::span<const graph::EdgeId> edge_faults) const;

  const ConnectivityScheme& scheme() const { return *scheme_; }
  std::size_t space_bits() const { return scheme_->total_label_bits(); }

 private:
  explicit ConnectivityOracle(std::unique_ptr<ConnectivityScheme> scheme);

  bool has_adjacency_ = false;  // false for store-loaded oracles
  std::vector<std::vector<graph::EdgeId>> incident_;  // adjacency copy
  std::unique_ptr<ConnectivityScheme> scheme_;
};

}  // namespace ftc::core
