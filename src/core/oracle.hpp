// Centralized fault-tolerant connectivity oracle facade.
//
// Section 1.4: "any f-FTC labeling scheme is also usable as a centralized
// oracle with the space complexity of m times the label size". This
// wrapper owns a ConnectivityScheme backend (any of the three label
// constructions, selected by SchemeConfig::backend) and answers
// (s, t, F) queries for any FaultSpec — edge faults, vertex faults, or
// both. The vertex -> incident-edges reduction itself (label size
// Delta * f in the worst case — the reduction the open-problems section
// wants to beat) lives in the scheme layer behind AdjacencyProvider, so
// the facade is a thin convenience: in-memory schemes and format-v2
// label stores serve vertex faults identically, and format-v1 stores
// raise the typed CapabilityError.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/connectivity_scheme.hpp"
#include "core/label_store.hpp"

namespace ftc::core {

class ConnectivityOracle {
 public:
  // Back-compat: the paper's own scheme (BackendKind::kCoreFtc).
  ConnectivityOracle(const graph::Graph& g, const FtcConfig& config);

  // Backend-agnostic: any labeling construction behind the factory.
  ConnectivityOracle(const graph::Graph& g, const SchemeConfig& config);

  // Serve straight from a persisted label store, without the graph. The
  // path may name a single container file or a sharded-store manifest
  // (sharded_store.hpp) — the magic dispatch in load_scheme() makes the
  // two indistinguishable up here. Queries behave identically to the
  // oracle that wrote the store; vertex-fault capability follows the
  // artifact (format-v2 containers and manifests carry the adjacency
  // side-table; v1 containers serve edge faults only and throw
  // CapabilityError on vertex faults).
  static ConnectivityOracle from_store(const std::string& path,
                                       const LoadOptions& options = {});

  // s-t connectivity in G - F for any mix of edge and vertex faults.
  // A deleted endpoint is disconnected from everything else by
  // definition (and connected to itself).
  bool connected(graph::VertexId s, graph::VertexId t,
                 const FaultSpec& spec) const;

  struct Query {
    graph::VertexId s = 0;
    graph::VertexId t = 0;
  };
  // Shared fault set across a batch: fault labels are materialized once
  // and the decode workspace is reused (see batch_engine.hpp for the
  // multi-threaded version).
  std::vector<bool> batch_connected(std::span<const Query> queries,
                                    const FaultSpec& spec) const;

  // True when the scheme can serve vertex faults (it carries adjacency).
  bool supports_vertex_faults() const {
    return scheme_->adjacency() != nullptr;
  }

  const ConnectivityScheme& scheme() const { return *scheme_; }
  std::size_t space_bits() const { return scheme_->total_label_bits(); }

 private:
  explicit ConnectivityOracle(std::unique_ptr<ConnectivityScheme> scheme);

  std::unique_ptr<ConnectivityScheme> scheme_;
};

}  // namespace ftc::core
