#include "core/fault_spec.hpp"

#include <algorithm>

namespace ftc::core {

namespace {

template <typename Id>
std::vector<Id> canonical(std::span<const Id> ids) {
  std::vector<Id> out(ids.begin(), ids.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string capacity_message(const std::string& what, std::size_t budget,
                             std::size_t journaled, std::size_t requested) {
  const std::size_t remaining = budget > journaled ? budget - journaled : 0;
  return what + " [requested " + std::to_string(requested) +
         " faults > budget f=" + std::to_string(budget) + "; " +
         std::to_string(journaled) + " journaled deletions, " +
         std::to_string(remaining) + " query-fault slots remaining]";
}

}  // namespace

CapacityError::CapacityError(const std::string& what, std::size_t budget,
                             std::size_t journaled, std::size_t requested)
    : std::invalid_argument(
          capacity_message(what, budget, journaled, requested)),
      budget_(budget),
      journaled_(journaled),
      requested_(requested) {}

FaultSpec FaultSpec::edges(std::span<const graph::EdgeId> edge_faults) {
  return FaultSpec(canonical(edge_faults), {});
}

FaultSpec FaultSpec::vertices(
    std::span<const graph::VertexId> vertex_faults) {
  return FaultSpec({}, canonical(vertex_faults));
}

FaultSpec FaultSpec::of(std::span<const graph::EdgeId> edge_faults,
                        std::span<const graph::VertexId> vertex_faults) {
  return FaultSpec(canonical(edge_faults), canonical(vertex_faults));
}

VectorAdjacency::VectorAdjacency(const graph::Graph& g) {
  offsets_.reserve(static_cast<std::size_t>(g.num_vertices()) + 1);
  offsets_.push_back(0);
  lists_.reserve(2 * static_cast<std::size_t>(g.num_edges()));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto inc = g.incident_edges(v);
    lists_.insert(lists_.end(), inc.begin(), inc.end());
    offsets_.push_back(lists_.size());
  }
}

VectorAdjacency::VectorAdjacency(std::vector<std::uint64_t> offsets,
                                 std::vector<graph::EdgeId> lists)
    : offsets_(std::move(offsets)), lists_(std::move(lists)) {
  FTC_REQUIRE(!offsets_.empty() && offsets_.front() == 0 &&
                  offsets_.back() == lists_.size() &&
                  std::is_sorted(offsets_.begin(), offsets_.end()),
              "malformed adjacency offsets");
}

std::size_t VectorAdjacency::degree(graph::VertexId v) const {
  FTC_REQUIRE(v < num_vertices(), "vertex out of range");
  return offsets_[v + 1] - offsets_[v];
}

void VectorAdjacency::append_incident(graph::VertexId v,
                                      std::vector<graph::EdgeId>& out) const {
  FTC_REQUIRE(v < num_vertices(), "vertex out of range");
  out.insert(out.end(), lists_.begin() + offsets_[v],
             lists_.begin() + offsets_[v + 1]);
}

}  // namespace ftc::core
