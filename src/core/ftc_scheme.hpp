// FtcScheme: builder of the deterministic / randomized f-FTC labeling
// schemes of Theorem 1 (wrap-up in Section 5):
//
//   1. fix a BFS spanning tree T of G;
//   2. build the auxiliary graph G' and tree T' (Section 3.2);
//   3. build an (S_{f,T'}, k)-good hierarchy of G' - T' edges (Lemma 5 or
//      Proposition 5);
//   4. for every level, compute Reed-Solomon k-threshold outdetect labels
//      and aggregate them into per-tree-edge subtree sums (Lemma 1);
//   5. attach ancestry labels (Lemma 7).
//
// The resulting labels are queried by the universal decoder in
// ftc_query.hpp, which never sees the graph.
#pragma once

#include <memory>
#include <span>

#include "core/config.hpp"
#include "core/ftc_labels.hpp"
#include "graph/graph.hpp"

namespace ftc::core {

struct BuildStats {
  unsigned k = 0;                   // sketch threshold used
  unsigned num_levels = 0;          // nonempty hierarchy levels
  unsigned field_bits = 0;
  std::uint32_t n_aux = 0;          // |V_{G'}|
  std::size_t hierarchy_edges = 0;  // sum of level sizes
  unsigned threads = 1;             // resolved build worker count
  // Wall-clock phase timings measured on the coordinating thread — NOT
  // summed per-worker CPU, so serial and parallel builds compare 1:1.
  double hierarchy_seconds = 0;
  double sketch_seconds = 0;
  double total_seconds = 0;
};

class FtcScheme {
 public:
  // Builds labels for the connected graph g. Throws std::invalid_argument
  // for disconnected inputs or graphs too large for the selected field.
  static FtcScheme build(const graph::Graph& g, const FtcConfig& config);

  FtcScheme(FtcScheme&&) noexcept;
  FtcScheme& operator=(FtcScheme&&) noexcept;
  ~FtcScheme();

  VertexLabel vertex_label(graph::VertexId v) const;
  EdgeLabel edge_label(graph::EdgeId e) const;

  graph::VertexId num_vertices() const;
  graph::EdgeId num_edges() const;
  const LabelParams& params() const;
  const BuildStats& build_stats() const;

  // Per hierarchy level: the level's edge population clamped to k — a
  // sound upper bound on any fragment boundary's size at that level
  // (boundaries are subsets of the level's edge set). Persisted by label
  // store format v2 and fed to PreparedFaults::prepare so the windowed
  // decode can shrink its capacity and fail-stop window per level.
  std::span<const std::uint32_t> level_populations() const;

  // Size accounting (bits), matching the labels' size_bits().
  std::size_t vertex_label_bits() const;
  std::size_t edge_label_bits() const;
  std::size_t total_label_bits() const;

 private:
  struct Impl;
  explicit FtcScheme(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftc::core
