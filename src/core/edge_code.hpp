// Edge-ID encoding (Section 3.1): each non-tree edge of the auxiliary
// graph gets, as its sketch-domain ID, the pair of ancestry labels of its
// endpoints packed into a single nonzero field element. Decoding an ID
// therefore immediately reveals the fragments containing both endpoints —
// the property the fragment-merging query relies on.
//
// Coordinate layout (little-endian nibbles of the field element):
//   [tin_a | tout_a | tin_b | tout_b], each kCoordBits wide,
// where endpoint a is the one with smaller tin (canonical orientation).
#pragma once

#include <utility>

#include "gf/gf2.hpp"
#include "graph/ancestry.hpp"
#include "util/common.hpp"

namespace ftc::core {

template <typename F>
struct EdgeCode {
  static constexpr unsigned kCoordBits = F::kBits / 4;
  static_assert(F::kBits % 4 == 0);

  // Largest auxiliary-graph size whose coordinates fit.
  static constexpr std::uint64_t max_vertices() {
    return std::uint64_t{1} << kCoordBits;
  }

  static bool fits(std::uint64_t n_aux) { return n_aux <= max_vertices(); }

  static F encode(const graph::AncestryLabel& x,
                  const graph::AncestryLabel& y) {
    FTC_REQUIRE(x.tin != y.tin, "edge endpoints must be distinct");
    const auto& a = x.tin < y.tin ? x : y;
    const auto& b = x.tin < y.tin ? y : x;
    if constexpr (F::kWords == 1) {
      const std::uint64_t v =
          (std::uint64_t{a.tin}) | (std::uint64_t{a.tout} << kCoordBits) |
          (std::uint64_t{b.tin} << (2 * kCoordBits)) |
          (std::uint64_t{b.tout} << (3 * kCoordBits));
      return F(v);
    } else {
      const std::uint64_t lo =
          (std::uint64_t{a.tin}) | (std::uint64_t{a.tout} << kCoordBits);
      const std::uint64_t hi =
          (std::uint64_t{b.tin}) | (std::uint64_t{b.tout} << kCoordBits);
      return F(lo, hi);
    }
  }

  // Inverse of encode: (a, b) with a.tin < b.tin.
  static std::pair<graph::AncestryLabel, graph::AncestryLabel> decode(F v) {
    const std::uint64_t mask = (kCoordBits == 64)
                                   ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << kCoordBits) - 1);
    graph::AncestryLabel a, b;
    if constexpr (F::kWords == 1) {
      const std::uint64_t w = v.value();
      a.tin = static_cast<std::uint32_t>(w & mask);
      a.tout = static_cast<std::uint32_t>((w >> kCoordBits) & mask);
      b.tin = static_cast<std::uint32_t>((w >> (2 * kCoordBits)) & mask);
      b.tout = static_cast<std::uint32_t>((w >> (3 * kCoordBits)) & mask);
    } else {
      a.tin = static_cast<std::uint32_t>(v.lo() & mask);
      a.tout = static_cast<std::uint32_t>((v.lo() >> kCoordBits) & mask);
      b.tin = static_cast<std::uint32_t>(v.hi() & mask);
      b.tout = static_cast<std::uint32_t>((v.hi() >> kCoordBits) & mask);
    }
    return {a, b};
  }

  // Structural sanity of a decoded ID (used by the fail-stop decoder):
  // valid intervals, canonical orientation, disjoint or properly oriented.
  static bool plausible(const graph::AncestryLabel& a,
                        const graph::AncestryLabel& b) {
    return a.tin <= a.tout && b.tin <= b.tout && a.tin < b.tin;
  }
};

}  // namespace ftc::core
