#include "core/ftc_query.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/edge_code.hpp"
#include "graph/fragments.hpp"
#include "graph/union_find.hpp"
#include "sketch/rs_sketch.hpp"

namespace ftc::core {

namespace {

using graph::AncestryLabel;

template <typename F>
F f_from_words(const std::uint64_t* w) {
  if constexpr (F::kWords == 1) {
    return F(w[0]);
  } else {
    return F(w[0], w[1]);
  }
}

}  // namespace

// Fault-set context shared by all queries: parameters, the fragment
// locator, and flattened per-fragment initial state. Fragment fr owns
// cut[fr * cut_words ..] and sums[fr * num_levels * k ..].
struct PreparedFaults::Impl {
  virtual ~Impl() = default;

  LabelParams params;
  graph::FragmentLocator loc{std::vector<std::pair<std::uint32_t, std::uint32_t>>{}};
  std::size_t nf = 0;         // deduplicated fault count
  std::size_t cut_words = 0;  // bitset words per fragment
  int num_frag = 0;
};

// Scratch reused across queries on one thread: working copies of the
// fragment states plus the merge bookkeeping. Both field widths keep
// their own sum buffer so one workspace serves any scheme.
struct DecoderWorkspace::Impl {
  std::vector<std::uint64_t> cut;
  std::vector<gf::GF2_64> sums64;
  std::vector<gf::GF2_128> sums128;
  graph::UnionFind uf{0};
  std::vector<char> closed;
  std::vector<std::uint32_t> version;
  // (cut size, fragment, version) min-heap with lazy invalidation.
  std::vector<std::tuple<unsigned, int, std::uint32_t>> heap;
};

namespace {

template <typename F>
struct PreparedImpl final : PreparedFaults::Impl {
  std::vector<std::uint64_t> cut;
  std::vector<F> sums;
};

template <typename F>
std::vector<F>& workspace_sums(DecoderWorkspace::Impl& ws) {
  if constexpr (F::kWords == 1) {
    return ws.sums64;
  } else {
    return ws.sums128;
  }
}

template <typename F>
std::unique_ptr<PreparedFaults::Impl> prepare_impl(
    std::span<const EdgeLabel> faults) {
  const LabelParams& params = faults[0].params;
  for (const EdgeLabel& f : faults) {
    FTC_REQUIRE(f.params == params, "fault labels from different schemes");
  }
  const unsigned k = params.k;
  const unsigned num_levels = params.num_levels;

  // Deduplicate faults: the lower endpoint identifies a tree edge.
  std::vector<const EdgeLabel*> uniq;
  uniq.reserve(faults.size());
  for (const EdgeLabel& f : faults) uniq.push_back(&f);
  std::sort(uniq.begin(), uniq.end(),
            [](const EdgeLabel* a, const EdgeLabel* b) {
              return a->lower.tin < b->lower.tin;
            });
  uniq.erase(std::unique(uniq.begin(), uniq.end(),
                         [](const EdgeLabel* a, const EdgeLabel* b) {
                           return a->lower.tin == b->lower.tin;
                         }),
             uniq.end());
  const std::size_t nf = uniq.size();

  // Fragment structure of T' - sigma(F) from the labels alone.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  intervals.reserve(nf);
  for (const EdgeLabel* f : uniq) {
    intervals.push_back({f->lower.tin, f->lower.tout});
  }
  graph::FragmentLocator loc(std::move(intervals));
  const int num_frag = loc.fragment_count();

  auto impl = std::make_unique<PreparedImpl<F>>();
  impl->params = params;
  impl->nf = nf;
  impl->cut_words = (nf + 63) / 64;
  impl->num_frag = num_frag;

  // Per-fragment cut bitsets and sketch sums (Proposition 4): each fault
  // edge contributes its subtree sketch to the fragment below it and the
  // fragment above it.
  const std::size_t sums_per_frag = static_cast<std::size_t>(num_levels) * k;
  impl->cut.assign(static_cast<std::size_t>(num_frag) * impl->cut_words, 0);
  impl->sums.assign(static_cast<std::size_t>(num_frag) * sums_per_frag,
                    F::zero());
  for (std::size_t j = 0; j < nf; ++j) {
    const int below = loc.fragment_of_fault(j);
    const int above = loc.parent_fragment(below);
    FTC_CHECK(above >= 0, "fault fragment without parent");
    const std::uint64_t* w = uniq[j]->sketch_words.data();
    FTC_REQUIRE(uniq[j]->sketch_words.size() == sums_per_frag * F::kWords,
                "edge label sketch payload has wrong size");
    for (const int fr : {below, above}) {
      impl->cut[fr * impl->cut_words + j / 64] ^= std::uint64_t{1}
                                                  << (j % 64);
      F* sums = impl->sums.data() + fr * sums_per_frag;
      for (std::size_t i = 0; i < sums_per_frag; ++i) {
        sums[i] += f_from_words<F>(w + i * F::kWords);
      }
    }
  }
  impl->loc = std::move(loc);
  return impl;
}

// Decodes the outgoing edges of a fragment set from its per-level sketch
// sums: scan from the sparsest level down; the first level with a nonzero
// sketch is the top nonempty boundary, which the hierarchy guarantees to
// be decodable (Lemma 2). Returns endpoint ancestry-label pairs; empty
// means no outgoing edge (the component is complete).
template <typename F>
std::vector<std::pair<AncestryLabel, AncestryLabel>> decode_outgoing(
    const F* sums, const LabelParams& params, const QueryOptions& options,
    QueryStats* stats) {
  const unsigned k = params.k;
  for (unsigned lev = params.num_levels; lev-- > 0;) {
    if (stats != nullptr) ++stats->levels_scanned;
    const F* s = sums + static_cast<std::size_t>(lev) * k;
    bool nonzero = false;
    for (unsigned j = 0; j < k; ++j) {
      if (!s[j].is_zero()) {
        nonzero = true;
        break;
      }
    }
    if (!nonzero) continue;
    if (stats != nullptr) ++stats->outdetect_calls;
    sketch::RsSketch<F> sk(std::vector<F>(s, s + k));
    const auto decoded =
        options.adaptive ? sk.decode_adaptive() : sk.decode(k);
    if (!decoded.has_value()) {
      throw FtcCapacityError(
          "outdetect sketch failed to decode: boundary exceeds k; rebuild "
          "with larger k (or KMode::kProvable)");
    }
    FTC_CHECK(!decoded->empty(), "nonzero sketch decoded to the empty set");
    std::vector<std::pair<AncestryLabel, AncestryLabel>> out;
    out.reserve(decoded->size());
    for (const F& id : *decoded) {
      const auto [a, b] = EdgeCode<F>::decode(id);
      if (!EdgeCode<F>::plausible(a, b)) {
        throw FtcCapacityError(
            "decoded edge ID is structurally invalid; sketch capacity "
            "exceeded");
      }
      out.emplace_back(a, b);
    }
    return out;
  }
  return {};
}

template <typename F>
bool query_impl(const VertexLabel& s, const VertexLabel& t,
                const PreparedImpl<F>& prep, DecoderWorkspace::Impl& ws,
                const QueryOptions& options, QueryStats* stats) {
  const LabelParams& params = prep.params;
  const unsigned k = params.k;
  const std::size_t sums_per_frag =
      static_cast<std::size_t>(params.num_levels) * k;
  const std::size_t cut_words = prep.cut_words;
  const int num_frag = prep.num_frag;
  if (stats != nullptr) stats->fragments = static_cast<unsigned>(num_frag);

  const int fs = prep.loc.locate(s.anc.tin);
  const int ft = prep.loc.locate(t.anc.tin);
  if (fs == ft) return true;  // connected within T' - sigma(F) already

  // Working copies of the immutable initial state, into reused buffers.
  ws.cut.assign(prep.cut.begin(), prep.cut.end());
  std::vector<F>& sums = workspace_sums<F>(ws);
  sums.assign(prep.sums.begin(), prep.sums.end());
  ws.uf.reset(static_cast<std::size_t>(num_frag));
  ws.closed.assign(num_frag, 0);
  ws.version.assign(num_frag, 0);
  ws.heap.clear();

  const auto cut_size = [&](int fr) {
    const std::uint64_t* w = ws.cut.data() + fr * cut_words;
    unsigned c = 0;
    for (std::size_t i = 0; i < cut_words; ++i) {
      c += static_cast<unsigned>(__builtin_popcountll(w[i]));
    }
    return c;
  };
  const auto merge_state = [&](std::size_t root, std::size_t other) {
    std::uint64_t* rc = ws.cut.data() + root * cut_words;
    const std::uint64_t* oc = ws.cut.data() + other * cut_words;
    for (std::size_t i = 0; i < cut_words; ++i) rc[i] ^= oc[i];
    F* rs = sums.data() + root * sums_per_frag;
    const F* os = sums.data() + other * sums_per_frag;
    for (std::size_t i = 0; i < sums_per_frag; ++i) rs[i] += os[i];
  };

  using HeapEntry = std::tuple<unsigned, int, std::uint32_t>;
  const auto heap_push = [&](HeapEntry e) {
    ws.heap.push_back(e);
    std::push_heap(ws.heap.begin(), ws.heap.end(), std::greater<>{});
  };
  const auto heap_pop = [&]() {
    std::pop_heap(ws.heap.begin(), ws.heap.end(), std::greater<>{});
    const HeapEntry e = ws.heap.back();
    ws.heap.pop_back();
    return e;
  };
  for (int fr = 0; fr < num_frag; ++fr) heap_push({cut_size(fr), fr, 0u});

  graph::UnionFind& uf = ws.uf;
  const auto pick_source_first = [&]() -> int {
    const int root = static_cast<int>(uf.find(fs));
    return ws.closed[root] ? -1 : root;
  };

  while (true) {
    int fr = -1;
    if (options.smallest_cut_first) {
      while (!ws.heap.empty()) {
        const auto [sz, cand, ver] = heap_pop();
        if (ws.closed[cand] || ws.version[cand] != ver ||
            uf.find(cand) != static_cast<std::size_t>(cand)) {
          continue;
        }
        (void)sz;
        fr = cand;
        break;
      }
      if (fr < 0) return false;  // everything closed; s and t never met
    } else {
      fr = pick_source_first();
      if (fr < 0) return false;
    }

    const auto edges = decode_outgoing(sums.data() + fr * sums_per_frag,
                                       params, options, stats);
    if (edges.empty()) {
      ws.closed[fr] = 1;
      // A closed set is a complete component of G - F. If it holds s or
      // t, the two can no longer meet.
      if (static_cast<std::size_t>(fr) == uf.find(fs) ||
          static_cast<std::size_t>(fr) == uf.find(ft)) {
        return false;
      }
      continue;
    }
    for (const auto& [a, b] : edges) {
      const std::size_t fa = uf.find(prep.loc.locate(a.tin));
      const std::size_t fb = uf.find(prep.loc.locate(b.tin));
      if (fa == fb) continue;  // joined by an earlier edge this round
      uf.unite(fa, fb);
      const std::size_t root = uf.find(fa);
      const std::size_t other = root == fa ? fb : fa;
      merge_state(root, other);
      if (stats != nullptr) ++stats->merges;
      if (uf.find(fs) == uf.find(ft)) return true;
    }
    const std::size_t root = uf.find(fr);
    ++ws.version[root];
    heap_push({cut_size(static_cast<int>(root)), static_cast<int>(root),
               ws.version[root]});
  }
}

}  // namespace

PreparedFaults::PreparedFaults(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
PreparedFaults::PreparedFaults(PreparedFaults&&) noexcept = default;
PreparedFaults& PreparedFaults::operator=(PreparedFaults&&) noexcept = default;
PreparedFaults::~PreparedFaults() = default;

PreparedFaults PreparedFaults::prepare(std::span<const EdgeLabel> faults) {
  if (faults.empty()) return PreparedFaults(nullptr);
  if (faults[0].params.field_bits == 64) {
    return PreparedFaults(prepare_impl<gf::GF2_64>(faults));
  }
  return PreparedFaults(prepare_impl<gf::GF2_128>(faults));
}

bool PreparedFaults::empty() const { return impl_ == nullptr; }

std::size_t PreparedFaults::num_faults() const {
  return impl_ == nullptr ? 0 : impl_->nf;
}

const LabelParams& PreparedFaults::params() const {
  FTC_REQUIRE(impl_ != nullptr, "empty fault set has no parameters");
  return impl_->params;
}

DecoderWorkspace::DecoderWorkspace() : impl_(std::make_unique<Impl>()) {}
DecoderWorkspace::DecoderWorkspace(DecoderWorkspace&&) noexcept = default;
DecoderWorkspace& DecoderWorkspace::operator=(DecoderWorkspace&&) noexcept =
    default;
DecoderWorkspace::~DecoderWorkspace() = default;

bool FtcDecoder::connected(const VertexLabel& s, const VertexLabel& t,
                           std::span<const EdgeLabel> faults,
                           const QueryOptions& options, QueryStats* stats) {
  if (s.anc == t.anc) return true;  // labels are injective: same vertex
  if (faults.empty()) return true;  // the input graph is connected
  const PreparedFaults prepared = PreparedFaults::prepare(faults);
  DecoderWorkspace workspace;
  return connected(s, t, prepared, workspace, options, stats);
}

bool FtcDecoder::connected(const VertexLabel& s, const VertexLabel& t,
                           const PreparedFaults& faults,
                           DecoderWorkspace& workspace,
                           const QueryOptions& options, QueryStats* stats) {
  if (s.anc == t.anc) return true;  // labels are injective: same vertex
  if (faults.empty()) return true;  // the input graph is connected
  const PreparedFaults::Impl& impl = *faults.impl_;
  FTC_REQUIRE(s.params == impl.params && t.params == impl.params,
              "vertex and edge labels from different schemes");
  if (impl.params.field_bits == 64) {
    return query_impl<gf::GF2_64>(
        s, t, static_cast<const PreparedImpl<gf::GF2_64>&>(impl),
        *workspace.impl_, options, stats);
  }
  return query_impl<gf::GF2_128>(
      s, t, static_cast<const PreparedImpl<gf::GF2_128>&>(impl),
      *workspace.impl_, options, stats);
}

}  // namespace ftc::core
