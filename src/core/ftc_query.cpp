#include "core/ftc_query.hpp"

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "core/edge_code.hpp"
#include "graph/fragments.hpp"
#include "graph/union_find.hpp"
#include "sketch/rs_sketch.hpp"
#include "util/xor_kernel.hpp"

namespace ftc::core {

namespace {

using graph::AncestryLabel;

}  // namespace

// Fault-set context shared by all queries: parameters, the fragment
// locator, and flattened per-fragment initial state, kept as raw
// std::uint64_t words so the XOR kernels (util/xor_kernel.hpp) apply and
// so the copy-on-write workspace can alias rows without knowing the field
// type. Fragment fr owns cut[fr * cut_words ..] and
// sum_words[fr * words_per_frag ..] (level-major, k syndromes per level,
// field_bits/64 words per syndrome).
struct PreparedFaults::Impl {
  LabelParams params;
  graph::FragmentLocator loc{std::vector<std::pair<std::uint32_t, std::uint32_t>>{}};
  std::size_t nf = 0;              // deduplicated fault count
  std::size_t cut_words = 0;       // bitset words per fragment
  std::size_t words_per_frag = 0;  // num_levels * k * (field_bits / 64)
  int num_frag = 0;
  std::vector<std::uint64_t> cut;
  std::vector<std::uint64_t> sum_words;
  // Initial |cut| per fragment, precomputed so the merge heap seeds
  // without re-popcounting prepared rows on every query.
  std::vector<unsigned> init_cut_size;
  // Optional sound per-level boundary-size bounds (empty = none); the
  // windowed decode clamps its capacity to min(k, bound) per level.
  std::vector<std::uint32_t> level_bounds;
};

// Scratch reused across queries on one thread. The fragment state is
// copy-on-write against PreparedFaults: a fragment's cut/sums row is
// copied into this workspace only when a merge first mutates it
// (frag_epoch[fr] == epoch marks a live materialization); reads of
// untouched fragments go straight to the immutable prepared arrays, and
// bumping `epoch` at query start invalidates every materialization in
// O(1). The word buffers carry no type, so one workspace serves either
// field width and any number of distinct PreparedFaults objects.
struct DecoderWorkspace::Impl {
  std::uint64_t epoch = 0;
  // Decode start hint: the previous round's support size within the
  // current query (boundaries change slowly across merges), seeding the
  // adaptive doubling threshold. Reset at query start.
  unsigned decode_hint = 0;
  std::vector<std::uint64_t> frag_epoch;  // per fragment: epoch when copied
  std::vector<std::uint64_t> cut;         // materialized cut rows
  std::vector<std::uint64_t> sum_words;   // materialized sum rows
  graph::UnionFind uf{0};
  std::vector<char> closed;
  std::vector<std::uint32_t> version;
  // (cut size, fragment, version) min-heap with lazy invalidation. Built
  // only in smallest-cut-first mode; source-first queries never pop it.
  std::vector<std::tuple<unsigned, int, std::uint32_t>> heap;
  // Allocation-free decode: per-field sketch scratch plus the reused
  // decoded-edge buffer decode_outgoing fills.
  sketch::SketchDecodeScratch<gf::GF2_64> scratch64;
  sketch::SketchDecodeScratch<gf::GF2_128> scratch128;
  std::vector<std::pair<AncestryLabel, AncestryLabel>> edges;
};

namespace {

template <typename F>
sketch::SketchDecodeScratch<F>& workspace_scratch(DecoderWorkspace::Impl& ws) {
  if constexpr (F::kWords == 1) {
    return ws.scratch64;
  } else {
    return ws.scratch128;
  }
}

std::unique_ptr<PreparedFaults::Impl> prepare_any(
    std::span<const EdgeLabel> faults,
    std::span<const std::uint32_t> level_bounds) {
  const LabelParams& params = faults[0].params;
  for (const EdgeLabel& f : faults) {
    FTC_REQUIRE(f.params == params, "fault labels from different schemes");
  }
  const unsigned k = params.k;
  const unsigned num_levels = params.num_levels;
  const std::size_t field_words = params.field_bits / 64;

  // Deduplicate faults: the lower endpoint identifies a tree edge.
  std::vector<const EdgeLabel*> uniq;
  uniq.reserve(faults.size());
  for (const EdgeLabel& f : faults) uniq.push_back(&f);
  std::sort(uniq.begin(), uniq.end(),
            [](const EdgeLabel* a, const EdgeLabel* b) {
              return a->lower.tin < b->lower.tin;
            });
  uniq.erase(std::unique(uniq.begin(), uniq.end(),
                         [](const EdgeLabel* a, const EdgeLabel* b) {
                           return a->lower.tin == b->lower.tin;
                         }),
             uniq.end());
  const std::size_t nf = uniq.size();

  // Fragment structure of T' - sigma(F) from the labels alone.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  intervals.reserve(nf);
  for (const EdgeLabel* f : uniq) {
    intervals.push_back({f->lower.tin, f->lower.tout});
  }
  graph::FragmentLocator loc(std::move(intervals));
  const int num_frag = loc.fragment_count();

  auto impl = std::make_unique<PreparedFaults::Impl>();
  impl->params = params;
  impl->nf = nf;
  impl->cut_words = (nf + 63) / 64;
  impl->words_per_frag =
      static_cast<std::size_t>(num_levels) * k * field_words;
  impl->num_frag = num_frag;

  // Per-fragment cut bitsets and sketch sums (Proposition 4): each fault
  // edge contributes its subtree sketch to the fragment below it and the
  // fragment above it. GF(2^w) addition is XOR, so the whole label
  // payload folds in as one word-level kernel call per fragment.
  impl->cut.assign(static_cast<std::size_t>(num_frag) * impl->cut_words, 0);
  impl->sum_words.assign(
      static_cast<std::size_t>(num_frag) * impl->words_per_frag, 0);
  for (std::size_t j = 0; j < nf; ++j) {
    const int below = loc.fragment_of_fault(j);
    const int above = loc.parent_fragment(below);
    FTC_CHECK(above >= 0, "fault fragment without parent");
    FTC_REQUIRE(uniq[j]->sketch_words.size() == impl->words_per_frag,
                "edge label sketch payload has wrong size");
    for (const int fr : {below, above}) {
      impl->cut[fr * impl->cut_words + j / 64] ^= std::uint64_t{1}
                                                  << (j % 64);
      xor_words(impl->sum_words.data() + fr * impl->words_per_frag,
                uniq[j]->sketch_words.data(), impl->words_per_frag);
    }
  }
  impl->init_cut_size.reserve(num_frag);
  for (int fr = 0; fr < num_frag; ++fr) {
    impl->init_cut_size.push_back(
        popcount_words(impl->cut.data() + fr * impl->cut_words,
                       impl->cut_words));
  }
  impl->loc = std::move(loc);
  if (!level_bounds.empty()) {
    FTC_REQUIRE(level_bounds.size() == num_levels,
                "level bounds inconsistent with the label hierarchy");
    impl->level_bounds.assign(level_bounds.begin(), level_bounds.end());
  }
  return impl;
}

// Decodes the outgoing edges of a fragment set from its per-level sketch
// sums: scan from the sparsest level down; the first level with a nonzero
// sketch is the top nonempty boundary, which the hierarchy guarantees to
// be decodable (Lemma 2). The level scan is a raw word scan — field
// elements only materialize (into the workspace scratch) for the one
// level that actually decodes. Fills ws.edges with endpoint
// ancestry-label pairs; empty means no outgoing edge (the component is
// complete).
template <typename F>
void decode_outgoing(const std::uint64_t* sum_row,
                     const PreparedFaults::Impl& prep,
                     const QueryOptions& options, DecoderWorkspace::Impl& ws,
                     QueryStats* stats) {
  const LabelParams& params = prep.params;
  const unsigned k = params.k;
  const std::size_t level_words =
      static_cast<std::size_t>(k) * F::kWords;
  sketch::SketchDecodeScratch<F>& scratch = workspace_scratch<F>(ws);
  ws.edges.clear();
  for (unsigned lev = params.num_levels; lev-- > 0;) {
    if (stats != nullptr) ++stats->levels_scanned;
    const std::uint64_t* lw = sum_row + lev * level_words;
    if (!any_word_nonzero(lw, level_words)) continue;
    if (stats != nullptr) ++stats->outdetect_calls;
    // A sound per-level population bound (format v2) shrinks the decode
    // capacity and its fail-stop window; 0 / missing means "use k".
    const unsigned bound =
        lev < prep.level_bounds.size() ? prep.level_bounds[lev] : 0;
    const bool decoded = sketch::decode_sketch_words<F>(
        lw, k, scratch, options.adaptive, bound, ws.decode_hint);
    if (decoded) {
      ws.decode_hint = static_cast<unsigned>(scratch.support.size());
    }
    if (!decoded) {
      throw FtcCapacityError(
          "outdetect sketch failed to decode: boundary exceeds k; rebuild "
          "with larger k (or KMode::kProvable)");
    }
    FTC_CHECK(!scratch.support.empty(),
              "nonzero sketch decoded to the empty set");
    ws.edges.reserve(scratch.support.size());
    for (const F& id : scratch.support) {
      const auto [a, b] = EdgeCode<F>::decode(id);
      if (!EdgeCode<F>::plausible(a, b)) {
        throw FtcCapacityError(
            "decoded edge ID is structurally invalid; sketch capacity "
            "exceeded");
      }
      ws.edges.emplace_back(a, b);
    }
    return;
  }
}

template <typename F>
bool query_impl(const VertexLabel& s, const VertexLabel& t,
                const PreparedFaults::Impl& prep, DecoderWorkspace::Impl& ws,
                const QueryOptions& options, QueryStats* stats) {
  const LabelParams& params = prep.params;
  const std::size_t wpf = prep.words_per_frag;
  const std::size_t cut_words = prep.cut_words;
  const int num_frag = prep.num_frag;
  if (stats != nullptr) stats->fragments = static_cast<unsigned>(num_frag);

  const int fs = prep.loc.locate(s.anc.tin);
  const int ft = prep.loc.locate(t.anc.tin);
  if (fs == ft) return true;  // connected within T' - sigma(F) already

  // New query: bump the epoch — every materialized row from any earlier
  // query (against this or any other PreparedFaults) dies in O(1). The
  // word buffers are only ever grown; stale contents are unreachable
  // because frag_epoch gates every read.
  ++ws.epoch;
  ws.decode_hint = 0;
  const std::size_t nfrag = static_cast<std::size_t>(num_frag);
  if (ws.frag_epoch.size() < nfrag) ws.frag_epoch.resize(nfrag, 0);
  if (ws.cut.size() < nfrag * cut_words) ws.cut.resize(nfrag * cut_words);
  if (ws.sum_words.size() < nfrag * wpf) ws.sum_words.resize(nfrag * wpf);
  ws.uf.reset(nfrag);
  ws.closed.assign(nfrag, 0);

  const auto materialized = [&](std::size_t fr) {
    return ws.frag_epoch[fr] == ws.epoch;
  };
  const auto cut_row = [&](std::size_t fr) -> const std::uint64_t* {
    return (materialized(fr) ? ws.cut.data() : prep.cut.data()) +
           fr * cut_words;
  };
  const auto sum_row = [&](std::size_t fr) -> const std::uint64_t* {
    return (materialized(fr) ? ws.sum_words.data() : prep.sum_words.data()) +
           fr * wpf;
  };
  const auto cut_size = [&](std::size_t fr) {
    // An unmaterialized fragment still holds its initial state.
    return materialized(fr) ? popcount_words(ws.cut.data() + fr * cut_words,
                                             cut_words)
                            : prep.init_cut_size[fr];
  };
  // Copy-on-write merge: the first mutation of `root` materializes it by
  // fusing the copy from the prepared row with the first XOR (one
  // streaming pass); later merges XOR in place.
  const auto merge_state = [&](std::size_t root, std::size_t other) {
    const std::uint64_t* oc = cut_row(other);
    const std::uint64_t* os = sum_row(other);
    if (materialized(root)) {
      xor_words(ws.cut.data() + root * cut_words, oc, cut_words);
      xor_words(ws.sum_words.data() + root * wpf, os, wpf);
    } else {
      xor_words_into(ws.cut.data() + root * cut_words,
                     prep.cut.data() + root * cut_words, oc, cut_words);
      xor_words_into(ws.sum_words.data() + root * wpf,
                     prep.sum_words.data() + root * wpf, os, wpf);
      ws.frag_epoch[root] = ws.epoch;
    }
  };

  using HeapEntry = std::tuple<unsigned, int, std::uint32_t>;
  const auto heap_push = [&](HeapEntry e) {
    ws.heap.push_back(e);
    std::push_heap(ws.heap.begin(), ws.heap.end(), std::greater<>{});
  };
  const auto heap_pop = [&]() {
    std::pop_heap(ws.heap.begin(), ws.heap.end(), std::greater<>{});
    const HeapEntry e = ws.heap.back();
    ws.heap.pop_back();
    return e;
  };
  // Only smallest-cut-first mode ever pops the heap, so only that mode
  // pays for building it (source-first queries skip it entirely).
  if (options.smallest_cut_first) {
    ws.version.assign(nfrag, 0);
    ws.heap.clear();
    ws.heap.reserve(nfrag);
    for (int fr = 0; fr < num_frag; ++fr) {
      ws.heap.push_back({prep.init_cut_size[fr], fr, 0u});
    }
    std::make_heap(ws.heap.begin(), ws.heap.end(), std::greater<>{});
  }

  graph::UnionFind& uf = ws.uf;
  const auto pick_source_first = [&]() -> int {
    const int root = static_cast<int>(uf.find(fs));
    return ws.closed[root] ? -1 : root;
  };

  while (true) {
    int fr = -1;
    if (options.smallest_cut_first) {
      while (!ws.heap.empty()) {
        const auto [sz, cand, ver] = heap_pop();
        if (ws.closed[cand] || ws.version[cand] != ver ||
            uf.find(cand) != static_cast<std::size_t>(cand)) {
          continue;
        }
        (void)sz;
        fr = cand;
        break;
      }
      if (fr < 0) return false;  // everything closed; s and t never met
    } else {
      fr = pick_source_first();
      if (fr < 0) return false;
    }

    decode_outgoing<F>(sum_row(fr), prep, options, ws, stats);
    if (ws.edges.empty()) {
      ws.closed[fr] = 1;
      // A closed set is a complete component of G - F. If it holds s or
      // t, the two can no longer meet.
      if (static_cast<std::size_t>(fr) == uf.find(fs) ||
          static_cast<std::size_t>(fr) == uf.find(ft)) {
        return false;
      }
      continue;
    }
    for (const auto& [a, b] : ws.edges) {
      const std::size_t fa = uf.find(prep.loc.locate(a.tin));
      const std::size_t fb = uf.find(prep.loc.locate(b.tin));
      if (fa == fb) continue;  // joined by an earlier edge this round
      uf.unite(fa, fb);
      const std::size_t root = uf.find(fa);
      const std::size_t other = root == fa ? fb : fa;
      merge_state(root, other);
      if (stats != nullptr) ++stats->merges;
      if (uf.find(fs) == uf.find(ft)) return true;
    }
    if (options.smallest_cut_first) {
      const std::size_t root = uf.find(fr);
      ++ws.version[root];
      heap_push({cut_size(root), static_cast<int>(root), ws.version[root]});
    }
  }
}

}  // namespace

PreparedFaults::PreparedFaults(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
PreparedFaults::PreparedFaults(PreparedFaults&&) noexcept = default;
PreparedFaults& PreparedFaults::operator=(PreparedFaults&&) noexcept = default;
PreparedFaults::~PreparedFaults() = default;

PreparedFaults PreparedFaults::prepare(
    std::span<const EdgeLabel> faults,
    std::span<const std::uint32_t> level_bounds) {
  if (faults.empty()) return PreparedFaults(nullptr);
  FTC_REQUIRE(faults[0].params.field_bits == 64 ||
                  faults[0].params.field_bits == 128,
              "unsupported field width in edge label");
  return PreparedFaults(prepare_any(faults, level_bounds));
}

bool PreparedFaults::empty() const { return impl_ == nullptr; }

std::size_t PreparedFaults::num_faults() const {
  return impl_ == nullptr ? 0 : impl_->nf;
}

const LabelParams& PreparedFaults::params() const {
  FTC_REQUIRE(impl_ != nullptr, "empty fault set has no parameters");
  return impl_->params;
}

DecoderWorkspace::DecoderWorkspace() : impl_(std::make_unique<Impl>()) {}
DecoderWorkspace::DecoderWorkspace(DecoderWorkspace&&) noexcept = default;
DecoderWorkspace& DecoderWorkspace::operator=(DecoderWorkspace&&) noexcept =
    default;
DecoderWorkspace::~DecoderWorkspace() = default;

bool FtcDecoder::connected(const VertexLabel& s, const VertexLabel& t,
                           std::span<const EdgeLabel> faults,
                           const QueryOptions& options, QueryStats* stats) {
  if (s.anc == t.anc) return true;  // labels are injective: same vertex
  if (faults.empty()) return true;  // the input graph is connected
  const PreparedFaults prepared = PreparedFaults::prepare(faults);
  DecoderWorkspace workspace;
  return connected(s, t, prepared, workspace, options, stats);
}

bool FtcDecoder::connected(const VertexLabel& s, const VertexLabel& t,
                           const PreparedFaults& faults,
                           DecoderWorkspace& workspace,
                           const QueryOptions& options, QueryStats* stats) {
  if (s.anc == t.anc) return true;  // labels are injective: same vertex
  if (faults.empty()) return true;  // the input graph is connected
  const PreparedFaults::Impl& impl = *faults.impl_;
  FTC_REQUIRE(s.params == impl.params && t.params == impl.params,
              "vertex and edge labels from different schemes");
  if (impl.params.field_bits == 64) {
    return query_impl<gf::GF2_64>(s, t, impl, *workspace.impl_, options,
                                  stats);
  }
  return query_impl<gf::GF2_128>(s, t, impl, *workspace.impl_, options,
                                 stats);
}

}  // namespace ftc::core
