#include "core/ftc_query.hpp"

#include <algorithm>
#include <queue>

#include "core/edge_code.hpp"
#include "graph/fragments.hpp"
#include "graph/union_find.hpp"
#include "sketch/rs_sketch.hpp"

namespace ftc::core {

namespace {

using graph::AncestryLabel;

template <typename F>
F f_from_words(const std::uint64_t* w) {
  if constexpr (F::kWords == 1) {
    return F(w[0]);
  } else {
    return F(w[0], w[1]);
  }
}

template <typename F>
struct FragState {
  std::vector<std::uint64_t> cut;  // bitset over deduplicated fault indices
  std::vector<F> sums;             // num_levels * k field elements

  unsigned cut_size() const {
    unsigned c = 0;
    for (const auto word : cut) {
      c += static_cast<unsigned>(__builtin_popcountll(word));
    }
    return c;
  }

  void merge_from(const FragState& o) {
    for (std::size_t i = 0; i < cut.size(); ++i) cut[i] ^= o.cut[i];
    for (std::size_t i = 0; i < sums.size(); ++i) sums[i] += o.sums[i];
  }
};

// Decodes the outgoing edges of a fragment set from its per-level sketch
// sums: scan from the sparsest level down; the first level with a nonzero
// sketch is the top nonempty boundary, which the hierarchy guarantees to
// be decodable (Lemma 2). Returns endpoint ancestry-label pairs; empty
// means no outgoing edge (the component is complete).
template <typename F>
std::vector<std::pair<AncestryLabel, AncestryLabel>> decode_outgoing(
    const FragState<F>& st, const LabelParams& params,
    const QueryOptions& options, QueryStats* stats) {
  const unsigned k = params.k;
  for (unsigned lev = params.num_levels; lev-- > 0;) {
    if (stats != nullptr) ++stats->levels_scanned;
    const F* s = &st.sums[static_cast<std::size_t>(lev) * k];
    bool nonzero = false;
    for (unsigned j = 0; j < k; ++j) {
      if (!s[j].is_zero()) {
        nonzero = true;
        break;
      }
    }
    if (!nonzero) continue;
    if (stats != nullptr) ++stats->outdetect_calls;
    sketch::RsSketch<F> sk(std::vector<F>(s, s + k));
    const auto decoded =
        options.adaptive ? sk.decode_adaptive() : sk.decode(k);
    if (!decoded.has_value()) {
      throw FtcCapacityError(
          "outdetect sketch failed to decode: boundary exceeds k; rebuild "
          "with larger k (or KMode::kProvable)");
    }
    FTC_CHECK(!decoded->empty(), "nonzero sketch decoded to the empty set");
    std::vector<std::pair<AncestryLabel, AncestryLabel>> out;
    out.reserve(decoded->size());
    for (const F& id : *decoded) {
      const auto [a, b] = EdgeCode<F>::decode(id);
      if (!EdgeCode<F>::plausible(a, b)) {
        throw FtcCapacityError(
            "decoded edge ID is structurally invalid; sketch capacity "
            "exceeded");
      }
      out.emplace_back(a, b);
    }
    return out;
  }
  return {};
}

template <typename F>
bool connected_impl(const VertexLabel& s, const VertexLabel& t,
                    std::span<const EdgeLabel> faults,
                    const QueryOptions& options, QueryStats* stats) {
  const LabelParams& params = faults[0].params;
  for (const EdgeLabel& f : faults) {
    FTC_REQUIRE(f.params == params, "fault labels from different schemes");
  }
  FTC_REQUIRE(s.params == params && t.params == params,
              "vertex and edge labels from different schemes");
  const unsigned k = params.k;
  const unsigned num_levels = params.num_levels;

  // Deduplicate faults: the lower endpoint identifies a tree edge.
  std::vector<const EdgeLabel*> uniq;
  uniq.reserve(faults.size());
  for (const EdgeLabel& f : faults) uniq.push_back(&f);
  std::sort(uniq.begin(), uniq.end(), [](const EdgeLabel* a, const EdgeLabel* b) {
    return a->lower.tin < b->lower.tin;
  });
  uniq.erase(std::unique(uniq.begin(), uniq.end(),
                         [](const EdgeLabel* a, const EdgeLabel* b) {
                           return a->lower.tin == b->lower.tin;
                         }),
             uniq.end());
  const std::size_t nf = uniq.size();

  // Fragment structure of T' - sigma(F) from the labels alone.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  intervals.reserve(nf);
  for (const EdgeLabel* f : uniq) {
    intervals.push_back({f->lower.tin, f->lower.tout});
  }
  const graph::FragmentLocator loc(std::move(intervals));
  const int num_frag = loc.fragment_count();
  if (stats != nullptr) stats->fragments = static_cast<unsigned>(num_frag);

  const int fs = loc.locate(s.anc.tin);
  const int ft = loc.locate(t.anc.tin);
  if (fs == ft) return true;  // connected within T' - sigma(F) already

  // Per-fragment cut bitsets and sketch sums (Proposition 4): each fault
  // edge contributes its subtree sketch to the fragment below it and the
  // fragment above it.
  const std::size_t cut_words = (nf + 63) / 64;
  std::vector<FragState<F>> state(num_frag);
  for (auto& st : state) {
    st.cut.assign(cut_words, 0);
    st.sums.assign(static_cast<std::size_t>(num_levels) * k, F::zero());
  }
  for (std::size_t j = 0; j < nf; ++j) {
    const int below = loc.fragment_of_fault(j);
    const int above = loc.parent_fragment(below);
    FTC_CHECK(above >= 0, "fault fragment without parent");
    for (const int fr : {below, above}) {
      state[fr].cut[j / 64] ^= std::uint64_t{1} << (j % 64);
      const std::uint64_t* w = uniq[j]->sketch_words.data();
      FTC_REQUIRE(uniq[j]->sketch_words.size() ==
                      static_cast<std::size_t>(num_levels) * k * F::kWords,
                  "edge label sketch payload has wrong size");
      for (std::size_t i = 0; i < state[fr].sums.size(); ++i) {
        state[fr].sums[i] += f_from_words<F>(w + i * F::kWords);
      }
    }
  }

  graph::UnionFind uf(static_cast<std::size_t>(num_frag));
  std::vector<char> closed(num_frag, 0);
  std::vector<std::uint32_t> version(num_frag, 0);

  // (cut size, fragment, version) min-heap with lazy invalidation.
  using HeapEntry = std::tuple<unsigned, int, std::uint32_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (int fr = 0; fr < num_frag; ++fr) {
    heap.emplace(state[fr].cut_size(), fr, 0u);
  }

  const auto pick_source_first = [&]() -> int {
    const int root = static_cast<int>(uf.find(fs));
    return closed[root] ? -1 : root;
  };

  while (true) {
    int fr = -1;
    if (options.smallest_cut_first) {
      while (!heap.empty()) {
        const auto [sz, cand, ver] = heap.top();
        heap.pop();
        if (closed[cand] || version[cand] != ver ||
            uf.find(cand) != static_cast<std::size_t>(cand)) {
          continue;
        }
        (void)sz;
        fr = cand;
        break;
      }
      if (fr < 0) return false;  // everything closed; s and t never met
    } else {
      fr = pick_source_first();
      if (fr < 0) return false;
    }

    const auto edges = decode_outgoing(state[fr], params, options, stats);
    if (edges.empty()) {
      closed[fr] = 1;
      // A closed set is a complete component of G - F. If it holds s or
      // t, the two can no longer meet.
      if (static_cast<std::size_t>(fr) == uf.find(fs) ||
          static_cast<std::size_t>(fr) == uf.find(ft)) {
        return false;
      }
      continue;
    }
    for (const auto& [a, b] : edges) {
      const std::size_t fa = uf.find(loc.locate(a.tin));
      const std::size_t fb = uf.find(loc.locate(b.tin));
      if (fa == fb) continue;  // joined by an earlier edge this round
      uf.unite(fa, fb);
      const std::size_t root = uf.find(fa);
      const std::size_t other = root == fa ? fb : fa;
      state[root].merge_from(state[other]);
      if (stats != nullptr) ++stats->merges;
      if (uf.find(fs) == uf.find(ft)) return true;
    }
    const std::size_t root = uf.find(fr);
    ++version[root];
    heap.emplace(state[root].cut_size(), static_cast<int>(root),
                 version[root]);
  }
}

}  // namespace

bool FtcDecoder::connected(const VertexLabel& s, const VertexLabel& t,
                           std::span<const EdgeLabel> faults,
                           const QueryOptions& options, QueryStats* stats) {
  if (s.anc == t.anc) return true;  // labels are injective: same vertex
  if (faults.empty()) return true;  // the input graph is connected
  if (faults[0].params.field_bits == 64) {
    return connected_impl<gf::GF2_64>(s, t, faults, options, stats);
  }
  return connected_impl<gf::GF2_128>(s, t, faults, options, stats);
}

}  // namespace ftc::core
