// DeletionJournal: a checksummed side-file of journaled edge deletions,
// the zero-rebuild half of serving under topology churn.
//
// The paper's f-FTC semantics make this sound for free: a deleted edge
// is indistinguishable from a permanently faulty one, so as long as the
// journaled deletions plus any query's own fault set stay within the
// fault budget f the scheme was built for, every query can be answered
// from the EXISTING labels — no rebuild, no store rewrite. The journal
// is that deletion set, durably: load_scheme() replays it by attaching
// it to the returned scheme, and ConnectivityScheme::prepare_faults
// folds the journaled edges into every fault set it prepares. Past the
// budget the typed CapacityError (fault_spec.hpp) fires with the
// remaining-budget accounting — never a wrong answer.
//
// Journal file format ("FTCJRNL" frames; all integers little-endian).
// The file is a sequence of frames, one per append, each 8-aligned:
//
//   0   u64  frame magic "FTCJRNL\0"
//   8   u64  epoch — strictly increasing across frames, first >= 1
//   16  u64  store digest — the bound store's payload checksum (header
//            field: container offset 40, manifest v2 offset 80); every
//            frame must carry the same value, and replay refuses a
//            journal whose digest disagrees with the store it sits next
//            to (a journal never outlives a label push)
//   24  u32  fault budget f — the capacity the journal was created
//            with; every frame must agree
//   28  u32  count — edge IDs deleted in this frame (>= 1)
//   32  u32 * count  edge IDs, strictly increasing within the frame
//       (pad with zero bytes to 8)
//   +0  u64  running digest — FNV-1a over this frame's bytes from the
//            frame start up to (not including) this field, seeded with
//            the previous frame's running digest (kFnvBasis for the
//            first frame). The chain makes every prefix self-checking:
//            truncation, reordering or any flipped bit upstream fails
//            the first digest at or after the damage.
//
// The journal sits next to its store as "<store-path>.jrnl" (see
// journal_path_for). Appends and compaction rewrite the whole file
// through write_file_atomic — journals are bounded by f edge IDs, so
// the rewrite is trivially small and a crash never leaves a torn tail
// frame under the live name.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/label_store.hpp"

namespace ftc::core {

namespace store {

// "FTCJRNL\0" read as a little-endian u64.
inline constexpr std::uint64_t kJournalMagic = 0x004C4E524A435446ULL;
// Fixed frame prefix: magic, epoch, store digest, budget, count.
inline constexpr std::size_t kJournalFramePrefixBytes = 32;

}  // namespace store

// The journal sidecar path for a store artifact (single container or
// sharded manifest): "<store-path>.jrnl".
std::string journal_path_for(const std::string& store_path);

// An immutable, fully validated deletion journal. open() parses and
// verifies the whole frame chain; accessors never touch the file again.
class DeletionJournal {
 public:
  // True when a journal sidecar exists at `path` (any regular file; a
  // corrupt one still "exists" — open() is where it fails typed).
  static bool exists(const std::string& path);

  // Maps and validates every frame: magic, epoch monotonicity, digest /
  // budget consistency, strictly-increasing IDs per frame, zero
  // padding, the running-digest chain, and no trailing bytes. Throws
  // StoreError on any structural damage and CapacityError when the
  // journaled deletions already exceed the recorded budget (such a
  // journal must never serve — refusing at open is what guarantees
  // "typed error instead of wrong answers").
  static std::shared_ptr<const DeletionJournal> open(const std::string& path);

  // Appends one frame recording `edges` as deleted (creating the file
  // bound to store_digest/fault_budget when absent). Input IDs are
  // canonicalized; already-journaled IDs are dropped, and when nothing
  // new remains the file is left untouched (idempotent re-appends).
  // Against an existing journal, store_digest must match and
  // fault_budget must be 0 (meaning "use the journal's") or equal to
  // it. Throws CapacityError when the union would exceed the budget —
  // the journal on disk is left unchanged. Returns the epoch now at
  // the journal head.
  static std::uint64_t append(const std::string& path,
                              std::uint64_t store_digest,
                              std::uint32_t fault_budget,
                              std::span<const graph::EdgeId> edges);

  struct CompactStats {
    std::size_t frames_before = 0;
    std::size_t frames_after = 0;
    std::size_t file_bytes_before = 0;
    std::size_t file_bytes_after = 0;
  };
  // Rewrites the journal as a single canonical frame (the head epoch,
  // the deduplicated union, a fresh digest chain). Answers are
  // unchanged; the frame chain stops growing with churn history.
  static CompactStats compact(const std::string& path);

  // Epoch of the newest frame.
  std::uint64_t epoch() const { return epoch_; }
  // Payload checksum of the store this journal is bound to.
  std::uint64_t store_digest() const { return store_digest_; }
  // The fault budget f recorded at creation.
  std::uint32_t fault_budget() const { return fault_budget_; }
  // Sorted, deduplicated union of every journaled deletion.
  std::span<const graph::EdgeId> deleted_edges() const { return edges_; }
  // Occupancy accounting for operators: distinct deletions used, and
  // the budget left for them plus any query's own edge faults.
  std::size_t occupancy() const { return edges_.size(); }
  std::size_t remaining() const { return fault_budget_ - edges_.size(); }
  std::size_t num_frames() const { return num_frames_; }
  std::size_t file_bytes() const { return file_bytes_; }

  // Binds the journal to an open store: the digest must equal the
  // store's payload checksum and every journaled ID must be a valid
  // edge of it. Throws StoreError naming store_path otherwise.
  void validate_against(const StoreInfo& info,
                        const std::string& store_path) const;

 private:
  DeletionJournal() = default;

  std::uint64_t epoch_ = 0;
  std::uint64_t store_digest_ = 0;
  std::uint32_t fault_budget_ = 0;
  std::uint64_t chain_ = 0;  // running digest at the journal head
  std::size_t num_frames_ = 0;
  std::size_t file_bytes_ = 0;
  std::vector<graph::EdgeId> edges_;  // sorted, unique
};

// Replays the journal sidecar next to `store_path` onto a store-served
// scheme: when replay is on and "<store_path>.jrnl" exists, opens it,
// validates it against the scheme's backing store and attaches it (so
// prepare_faults folds the deletions into every query). Shared by
// load_scheme(path) and BatchQueryEngine::swap_store(path).
void attach_journal_sidecar(ConnectivityScheme& scheme,
                            const std::string& store_path, bool replay);

}  // namespace ftc::core
