// The universal f-FTC decoder (Sections 3.1, 6 and 7.6).
//
// Given only the labels of s, t and the faulty edges — never the graph —
// the decoder rebuilds the fragment structure of T' - sigma(F), computes
// each fragment's outdetect sketch by XOR-ing fault-edge labels
// (Proposition 4), and merges fragments along decoded outgoing edges until
// s and t meet or a component closes.
//
// Two algorithmic switches reproduce the paper's ablations:
//  * adaptive   — prefix-doubling sketch decoding (Appendix B);
//  * smallest_cut_first — the refined Lemma 6 merge order (min-heap over
//    |cut| with bit-vector cut sets); disabled = the basic Section 3.1
//    source-first order.
//
// Query sessions: everything the decoder derives from the fault labels
// alone (dedup, fragment intervals, initial per-fragment cut bitsets and
// sketch sums) is independent of (s, t). PreparedFaults materializes it
// once — as flattened std::uint64_t arrays, since GF(2^w) addition is
// XOR — so a batch of queries against the same fault set skips that work.
// DecoderWorkspace holds the per-thread scratch and is copy-on-write
// against PreparedFaults: a query never copies the prepared fragment
// state up front; a fragment's row is materialized into the workspace
// only when a merge first mutates it (epoch-tagged, so invalidating all
// materializations between queries is O(1)), reads of untouched fragments
// fall through to the immutable prepared arrays, and sketch decoding runs
// out of reusable scratch buffers instead of per-call allocations. One
// workspace may serve queries against any number of PreparedFaults
// objects, of either field width, in any interleaving.
#pragma once

#include <memory>
#include <span>

#include "core/ftc_labels.hpp"

namespace ftc::core {

struct QueryOptions {
  bool adaptive = true;
  bool smallest_cut_first = true;
};

struct QueryStats {
  unsigned fragments = 0;        // |F'| + 1 after dedup
  unsigned outdetect_calls = 0;  // sketch decode invocations
  unsigned merges = 0;           // fragment-set unions performed
  unsigned levels_scanned = 0;   // hierarchy levels inspected
};

// Immutable fault-set context: deduplicated fault edges, the fragment
// locator of T' - sigma(F), and every fragment's initial cut bitset and
// per-level sketch sums. Built once per fault set; any number of threads
// may query against the same PreparedFaults concurrently (it is only
// read after prepare()).
class PreparedFaults {
 public:
  // Validates that all fault labels come from the same scheme. An empty
  // fault set is valid (every query answers "connected").
  //
  // level_bounds, when non-empty, must have one entry per hierarchy
  // level: a SOUND upper bound on any fragment boundary's size at that
  // level (e.g. the level's total edge population, as carried by label
  // store format v2). Levels bounded below k decode and fail-stop-verify
  // against a (bound + d)/2 window instead of (k + d)/2 — same exact
  // answers, fewer field operations. An empty span means "no bounds"
  // (every level uses k).
  static PreparedFaults prepare(std::span<const EdgeLabel> faults,
                                std::span<const std::uint32_t> level_bounds = {});

  PreparedFaults(PreparedFaults&&) noexcept;
  PreparedFaults& operator=(PreparedFaults&&) noexcept;
  ~PreparedFaults();

  bool empty() const;
  std::size_t num_faults() const;  // after tree-edge dedup
  const LabelParams& params() const;

  struct Impl;

 private:
  explicit PreparedFaults(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;

  friend class FtcDecoder;
};

// Reusable per-thread scratch: copy-on-write fragment-state rows
// (epoch-tagged against the PreparedFaults being queried), the union-find
// forest, closed/version flags, the merge heap and the sketch-decode
// buffers. NOT thread-safe — give each worker thread its own workspace
// and reuse it across that thread's queries (against one or many fault
// sets) to amortize allocation.
class DecoderWorkspace {
 public:
  DecoderWorkspace();
  DecoderWorkspace(DecoderWorkspace&&) noexcept;
  DecoderWorkspace& operator=(DecoderWorkspace&&) noexcept;
  ~DecoderWorkspace();

  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;

  friend class FtcDecoder;
};

class FtcDecoder {
 public:
  // Returns s-t connectivity in G - F. Throws FtcCapacityError if a
  // sketch fails to decode within its capacity (never happens under
  // provable parameters), std::invalid_argument on inconsistent labels.
  static bool connected(const VertexLabel& s, const VertexLabel& t,
                        std::span<const EdgeLabel> faults,
                        const QueryOptions& options = {},
                        QueryStats* stats = nullptr);

  // Session form: same answer as above, but the fault-set work is read
  // from `faults` and the scratch lives in `workspace`. This is the hot
  // path of the batch engine.
  static bool connected(const VertexLabel& s, const VertexLabel& t,
                        const PreparedFaults& faults,
                        DecoderWorkspace& workspace,
                        const QueryOptions& options = {},
                        QueryStats* stats = nullptr);
};

}  // namespace ftc::core
