// The universal f-FTC decoder (Sections 3.1, 6 and 7.6).
//
// Given only the labels of s, t and the faulty edges — never the graph —
// the decoder rebuilds the fragment structure of T' - sigma(F), computes
// each fragment's outdetect sketch by XOR-ing fault-edge labels
// (Proposition 4), and merges fragments along decoded outgoing edges until
// s and t meet or a component closes.
//
// Two algorithmic switches reproduce the paper's ablations:
//  * adaptive   — prefix-doubling sketch decoding (Appendix B);
//  * smallest_cut_first — the refined Lemma 6 merge order (min-heap over
//    |cut| with bit-vector cut sets); disabled = the basic Section 3.1
//    source-first order.
#pragma once

#include <span>

#include "core/ftc_labels.hpp"

namespace ftc::core {

struct QueryOptions {
  bool adaptive = true;
  bool smallest_cut_first = true;
};

struct QueryStats {
  unsigned fragments = 0;        // |F'| + 1 after dedup
  unsigned outdetect_calls = 0;  // sketch decode invocations
  unsigned merges = 0;           // fragment-set unions performed
  unsigned levels_scanned = 0;   // hierarchy levels inspected
};

class FtcDecoder {
 public:
  // Returns s-t connectivity in G - F. Throws FtcCapacityError if a
  // sketch fails to decode within its capacity (never happens under
  // provable parameters), std::invalid_argument on inconsistent labels.
  static bool connected(const VertexLabel& s, const VertexLabel& t,
                        std::span<const EdgeLabel> faults,
                        const QueryOptions& options = {},
                        QueryStats* stats = nullptr);
};

}  // namespace ftc::core
