#include "core/shard_source.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "util/common.hpp"
#include "util/failpoint.hpp"
#include "util/scoped_fd.hpp"

namespace ftc::core {

namespace {

std::string errno_suffix(int err) {
  return std::string(": ") + std::strerror(err);
}

}  // namespace

// ---------------------------------------------------------------------------
// LocalDirShardSource

LocalDirShardSource::LocalDirShardSource(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty() && dir_.back() != '/') dir_ += '/';
}

std::vector<std::uint8_t> LocalDirShardSource::fetch(const std::string& name) const {
  const std::string path = dir_ + name;
  util::ScopedFd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd) {
    const int err = errno;
    if (err == ENOENT || err == ENOTDIR) {
      throw StoreError("shard source object not found: " + path);
    }
    throw StoreIoError("shard source open failed: " + path + errno_suffix(err));
  }
  struct stat st {};
  if (::fstat(fd.get(), &st) != 0) {
    throw StoreIoError("shard source stat failed: " + path + errno_suffix(errno));
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
  if (!bytes.empty() && !util::read_full(fd.get(), bytes.data(), bytes.size())) {
    // EOF-before-size means the file shrank mid-read — transient from
    // the fetcher's point of view (a concurrent republish), retryable.
    throw StoreIoError("shard source read failed: " + path +
                       (errno != 0 ? errno_suffix(errno) : ": short read"));
  }
  return bytes;
}

std::vector<std::uint8_t> LocalDirShardSource::fetch_range(
    const std::string& name, std::uint64_t offset, std::uint64_t length) const {
  FTC_CHECK(length >= 1, "fetch_range needs a non-empty range");
  const std::string path = dir_ + name;
  util::ScopedFd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd) {
    const int err = errno;
    if (err == ENOENT || err == ENOTDIR) {
      throw StoreError("shard source object not found: " + path);
    }
    throw StoreIoError("shard source open failed: " + path + errno_suffix(err));
  }
  struct stat st {};
  if (::fstat(fd.get(), &st) != 0) {
    throw StoreIoError("shard source stat failed: " + path + errno_suffix(errno));
  }
  if (offset + length > static_cast<std::uint64_t>(st.st_size)) {
    throw StoreError("shard source range past end of object: " + path);
  }
  if (::lseek(fd.get(), static_cast<off_t>(offset), SEEK_SET) < 0) {
    throw StoreIoError("shard source seek failed: " + path + errno_suffix(errno));
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(length));
  if (!util::read_full(fd.get(), bytes.data(), bytes.size())) {
    throw StoreIoError("shard source read failed: " + path +
                       (errno != 0 ? errno_suffix(errno) : ": short read"));
  }
  return bytes;
}

bool LocalDirShardSource::stat(const std::string& name,
                               std::uint64_t* size_out) const {
  const std::string path = dir_ + name;
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    const int err = errno;
    if (err == ENOENT || err == ENOTDIR) return false;
    throw StoreIoError("shard source stat failed: " + path + errno_suffix(err));
  }
  if (!S_ISREG(st.st_mode)) return false;
  if (size_out != nullptr) *size_out = static_cast<std::uint64_t>(st.st_size);
  return true;
}

std::string LocalDirShardSource::describe(const std::string& name) const {
  return dir_ + name;
}

// ---------------------------------------------------------------------------
// URL parsing

bool parse_http_url(const std::string& url, HttpEndpoint* out) {
  constexpr const char kScheme[] = "http://";
  constexpr std::size_t kSchemeLen = sizeof(kScheme) - 1;
  if (url.rfind(kScheme, 0) != 0) return false;
  const std::size_t authority_begin = kSchemeLen;
  const std::size_t path_begin = url.find('/', authority_begin);
  if (path_begin == std::string::npos) return false;
  std::string authority = url.substr(authority_begin, path_begin - authority_begin);
  if (authority.empty()) return false;

  HttpEndpoint ep;
  const std::size_t colon = authority.find(':');
  if (colon == std::string::npos) {
    ep.host = authority;
  } else {
    ep.host = authority.substr(0, colon);
    const std::string port_str = authority.substr(colon + 1);
    if (ep.host.empty() || port_str.empty() || port_str.size() > 5) return false;
    std::uint32_t port = 0;
    for (const char c : port_str) {
      if (c < '0' || c > '9') return false;
      port = port * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (port < 1 || port > 65535) return false;
    ep.port = static_cast<std::uint16_t>(port);
  }
  if (ep.host.empty()) return false;

  const std::string path = url.substr(path_begin);  // starts with '/'
  const std::size_t last_slash = path.rfind('/');
  ep.dir = path.substr(0, last_slash + 1);
  ep.object = path.substr(last_slash + 1);
  if (ep.object.empty()) return false;
  *out = std::move(ep);
  return true;
}

// ---------------------------------------------------------------------------
// HttpShardSource

namespace {

// recv() with EINTR retry and the remote.read failpoint spliced in so
// the torture suite can fail any read on the response path.
ssize_t recv_some(int fd, void* buf, std::size_t len) {
  if (const int err = FTC_FAILPOINT("remote.read")) {
    errno = err;
    return -1;
  }
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

void send_all(int fd, const char* data, std::size_t len, const std::string& where) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StoreIoError("remote send failed: " + where + errno_suffix(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpShardSource::HttpShardSource(std::string host, std::uint16_t port,
                                 std::string dir)
    : host_(std::move(host)), port_(port), dir_(std::move(dir)) {
  if (dir_.empty() || dir_.front() != '/') dir_.insert(dir_.begin(), '/');
  if (dir_.back() != '/') dir_ += '/';
}

std::string HttpShardSource::describe(const std::string& name) const {
  return "http://" + host_ + ":" + std::to_string(port_) + dir_ + name;
}

HttpShardSource::Response HttpShardSource::round_trip(
    const std::string& name, const char* method, bool want_body,
    std::uint64_t range_off, std::uint64_t range_len) const {
  const std::string where = describe(name);

  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port_);
  const int gai = ::getaddrinfo(host_.c_str(), port_str.c_str(), &hints, &res);
  if (gai != 0) {
    // Resolution failures are transient as far as retry is concerned
    // (DNS hiccups); EAI_NONAME on a loopback test would fail every
    // attempt anyway, so retrying is merely slow, never wrong.
    throw StoreIoError("remote resolve failed: " + where + ": " +
                       ::gai_strerror(gai));
  }

  util::ScopedFd fd;
  int connect_err = 0;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd.reset(::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol));
    if (!fd) {
      connect_err = errno;
      continue;
    }
    if (const int err = FTC_FAILPOINT("remote.connect")) {
      connect_err = err;
      fd.reset();
      continue;
    }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) == 0) break;
    connect_err = errno;
    fd.reset();
  }
  ::freeaddrinfo(res);
  if (!fd) {
    throw StoreIoError("remote connect failed: " + where +
                       errno_suffix(connect_err != 0 ? connect_err : EHOSTUNREACH));
  }

  // A stuck origin must not wedge a query thread forever: 10s per
  // socket operation, after which the read fails transiently and the
  // retry/quarantine ladder takes over.
  struct timeval tv {};
  tv.tv_sec = 10;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::ostringstream req;
  req << method << ' ' << dir_ << name << " HTTP/1.1\r\n"
      << "Host: " << host_ << ':' << port_ << "\r\n";
  if (range_len > 0) {
    req << "Range: bytes=" << range_off << '-' << (range_off + range_len - 1)
        << "\r\n";
  }
  req << "Connection: close\r\n\r\n";
  const std::string request = req.str();
  send_all(fd.get(), request.data(), request.size(), where);

  // Read headers byte-buffered until the blank line.
  std::string head;
  std::vector<std::uint8_t> body;
  std::size_t body_start = 0;
  {
    char buf[4096];
    for (;;) {
      const ssize_t n = recv_some(fd.get(), buf, sizeof(buf));
      if (n < 0) {
        throw StoreIoError("remote read failed: " + where + errno_suffix(errno));
      }
      if (n == 0) {
        throw StoreIoError("remote connection closed before headers: " + where);
      }
      head.append(buf, static_cast<std::size_t>(n));
      const std::size_t end = head.find("\r\n\r\n");
      if (end != std::string::npos) {
        body_start = end + 4;
        break;
      }
      if (head.size() > 64 * 1024) {
        throw StoreError("remote response headers too large: " + where);
      }
    }
  }

  Response resp;
  {
    // Status line: "HTTP/1.1 200 OK".
    const std::size_t sp = head.find(' ');
    if (sp == std::string::npos || head.size() < sp + 4 ||
        head.rfind("HTTP/1.", 0) != 0) {
      throw StoreError("remote response malformed: " + where);
    }
    resp.status = 0;
    for (std::size_t i = sp + 1; i < sp + 4; ++i) {
      if (head[i] < '0' || head[i] > '9') {
        throw StoreError("remote response malformed: " + where);
      }
      resp.status = resp.status * 10 + (head[i] - '0');
    }
    // Content-Length, case-insensitive scan over header lines.
    std::size_t line = head.find("\r\n") + 2;
    while (line < body_start - 2) {
      const std::size_t eol = head.find("\r\n", line);
      const std::size_t colon = head.find(':', line);
      if (colon != std::string::npos && colon < eol) {
        std::string key = head.substr(line, colon - line);
        for (char& c : key) c = static_cast<char>(std::tolower(c));
        if (key == "content-length") {
          std::size_t v = colon + 1;
          while (v < eol && head[v] == ' ') ++v;
          std::uint64_t cl = 0;
          bool any = false;
          while (v < eol && head[v] >= '0' && head[v] <= '9') {
            cl = cl * 10 + static_cast<std::uint64_t>(head[v] - '0');
            ++v;
            any = true;
          }
          if (!any) throw StoreError("remote Content-Length malformed: " + where);
          resp.content_length = cl;
          resp.has_content_length = true;
        }
      }
      line = eol + 2;
    }
  }

  if (!want_body) return resp;

  // Body: what arrived with the headers plus the rest of the stream.
  body.assign(head.begin() + static_cast<std::ptrdiff_t>(body_start), head.end());
  if (resp.has_content_length) body.reserve(resp.content_length);
  {
    char buf[64 * 1024];
    for (;;) {
      if (resp.has_content_length && body.size() >= resp.content_length) break;
      const ssize_t n = recv_some(fd.get(), buf, sizeof(buf));
      if (n < 0) {
        throw StoreIoError("remote read failed: " + where + errno_suffix(errno));
      }
      if (n == 0) break;  // Connection: close — EOF delimits the body
      body.insert(body.end(), buf, buf + n);
    }
  }
  if (FTC_FAILPOINT("remote.short_body") != 0 && !body.empty()) {
    body.resize(body.size() / 2);
  }
  if (resp.has_content_length && body.size() != resp.content_length) {
    throw StoreIoError("remote body truncated: " + where + ": got " +
                       std::to_string(body.size()) + " of " +
                       std::to_string(resp.content_length) + " bytes");
  }
  resp.body = std::move(body);
  return resp;
}

namespace {

[[noreturn]] void throw_for_status(int status, const std::string& where) {
  if (status == 404) {
    throw StoreError("remote object not found: " + where);
  }
  if (status >= 500) {
    // Server-side failures are the transient class: retry may land on a
    // recovered origin.
    throw StoreIoError("remote server error " + std::to_string(status) + ": " +
                       where);
  }
  throw StoreError("remote request rejected with status " +
                   std::to_string(status) + ": " + where);
}

}  // namespace

std::vector<std::uint8_t> HttpShardSource::fetch(const std::string& name) const {
  Response resp = round_trip(name, "GET", /*want_body=*/true, 0, 0);
  if (resp.status != 200) throw_for_status(resp.status, describe(name));
  return std::move(resp.body);
}

std::vector<std::uint8_t> HttpShardSource::fetch_range(
    const std::string& name, std::uint64_t offset, std::uint64_t length) const {
  FTC_CHECK(length >= 1, "fetch_range needs a non-empty range");
  Response resp = round_trip(name, "GET", /*want_body=*/true, offset, length);
  if (resp.status == 206) {
    if (resp.body.size() != length) {
      throw StoreIoError("remote range response wrong size: " + describe(name));
    }
    return std::move(resp.body);
  }
  if (resp.status == 200) {
    // Origin ignored the Range header; slice the full body ourselves.
    if (offset + length > resp.body.size()) {
      throw StoreError("remote range past end of object: " + describe(name));
    }
    return std::vector<std::uint8_t>(
        resp.body.begin() + static_cast<std::ptrdiff_t>(offset),
        resp.body.begin() + static_cast<std::ptrdiff_t>(offset + length));
  }
  if (resp.status == 416) {
    throw StoreError("remote range past end of object: " + describe(name));
  }
  throw_for_status(resp.status, describe(name));
}

bool HttpShardSource::stat(const std::string& name,
                           std::uint64_t* size_out) const {
  Response resp = round_trip(name, "HEAD", /*want_body=*/false, 0, 0);
  if (resp.status == 404) return false;
  if (resp.status != 200) throw_for_status(resp.status, describe(name));
  if (!resp.has_content_length) {
    throw StoreError("remote HEAD without Content-Length: " + describe(name));
  }
  if (size_out != nullptr) *size_out = resp.content_length;
  return true;
}

}  // namespace ftc::core
