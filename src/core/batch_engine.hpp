// BatchQueryEngine: a query session over any ConnectivityScheme backend.
//
// The engine is the serving-path counterpart of the labeling theory: a
// fault set changes rarely (a failure epoch), while (s, t) queries arrive
// in bulk. One session therefore
//   1. materializes and deduplicates the fault-edge labels ONCE
//      (ConnectivityScheme::prepare_faults) instead of per query;
//   2. keeps an arena of per-thread decoder workspaces (fragment state,
//      cut bitsets, sketch sums) that are reused across queries instead
//      of reallocated inside every decode; and
//   3. fans batches across a PERSISTENT pool of condition-variable-parked
//      worker threads that pull chunks off a shared std::atomic work
//      index. The pool is created on first run_parallel() and reused
//      across run() and reset_faults() calls for the engine's lifetime,
//      so small batches stop paying thread-start cost on every call.
//
// connected() / run_sequential() answer on the calling thread (workspace
// 0); run_parallel() uses num_threads workers. Results are bit-for-bit
// identical across the three paths: workers share the immutable fault
// set and only write disjoint result slots. The engine itself is not
// thread-safe: one session is driven by one caller thread.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/connectivity_scheme.hpp"

namespace ftc::core {

class BatchQueryEngine {
 public:
  struct Query {
    graph::VertexId s = 0;
    graph::VertexId t = 0;
  };

  // Opens a session for one fault set — any mix of edge and vertex
  // faults (vertex faults need a scheme with adjacency; CapabilityError
  // otherwise). The scheme must outlive the engine. `options` applies to
  // every query of the session.
  BatchQueryEngine(const ConnectivityScheme& scheme, const FaultSpec& spec,
                   const QueryOptions& options = {});

  // Owning variant: the engine takes the scheme (typically one loaded
  // from a label store, see label_store.hpp) and keeps it alive for the
  // session — a serving session spun up directly from a store file:
  //   BatchQueryEngine session(load_scheme("labels.ftcs"), spec);
  BatchQueryEngine(std::unique_ptr<ConnectivityScheme> scheme,
                   const FaultSpec& spec, const QueryOptions& options = {});

  // Deprecated edge-only shims, kept one release: forward to FaultSpec.
  BatchQueryEngine(const ConnectivityScheme& scheme,
                   std::span<const graph::EdgeId> edge_faults,
                   const QueryOptions& options = {});
  BatchQueryEngine(std::unique_ptr<ConnectivityScheme> scheme,
                   std::span<const graph::EdgeId> edge_faults,
                   const QueryOptions& options = {});

  // Parks and joins the worker pool (if one was ever started).
  ~BatchQueryEngine();

  // Replaces the session's fault set; cached workspaces and the worker
  // pool are kept.
  void reset_faults(const FaultSpec& spec);
  // Deprecated edge-only shim, kept one release: forwards to FaultSpec.
  void reset_faults(std::span<const graph::EdgeId> edge_faults);

  // Single query on the calling thread, reusing the session workspace.
  bool connected(graph::VertexId s, graph::VertexId t);

  // Batch on the calling thread (one workspace, zero thread overhead).
  std::vector<bool> run_sequential(std::span<const Query> queries);

  // Batch fanned across num_threads workers (0 = hardware concurrency).
  // Falls back to the sequential path for tiny batches or one thread.
  std::vector<bool> run_parallel(std::span<const Query> queries,
                                 unsigned num_threads = 0);

  std::size_t num_faults() const { return faults_->num_faults(); }
  const ConnectivityScheme& scheme() const { return scheme_; }

 private:
  struct Pool;  // persistent worker pool, defined in batch_engine.cpp

  ConnectivityScheme::Workspace& workspace(std::size_t i);

  // Set only by the owning constructor; scheme_ refers to *owned_ then.
  std::unique_ptr<ConnectivityScheme> owned_;
  const ConnectivityScheme& scheme_;
  QueryOptions options_;
  std::unique_ptr<ConnectivityScheme::FaultSet> faults_;
  // Workspace arena: slot i belongs to worker i (slot 0 = caller).
  std::vector<std::unique_ptr<ConnectivityScheme::Workspace>> workspaces_;
  // Lazily created on the first parallel batch, then reused for the
  // engine's lifetime; idle workers park on a condition variable.
  std::unique_ptr<Pool> pool_;
};

}  // namespace ftc::core
