// BatchQueryEngine: a query session over any ConnectivityScheme backend,
// with epoch-based zero-downtime label swapping.
//
// The engine is the serving-path counterpart of the labeling theory: a
// fault set changes rarely (a failure epoch), while (s, t) queries arrive
// in bulk. One session therefore
//   1. materializes and deduplicates the fault-edge labels ONCE
//      (ConnectivityScheme::prepare_faults) instead of per query;
//   2. keeps an arena of per-thread decoder workspaces (fragment state,
//      cut bitsets, sketch sums) that are reused across queries instead
//      of reallocated inside every decode; and
//   3. fans batches across a PERSISTENT pool of condition-variable-parked
//      worker threads that pull chunks off a shared std::atomic work
//      index. The pool is created on first run_parallel() and reused
//      across run() and reset_faults() calls for the engine's lifetime,
//      so small batches stop paying thread-start cost on every call.
//
// Label generations and epochs. Everything a query reads — the scheme,
// the prepared fault set, the workspace arena — lives in one immutable
// *generation* tagged with a monotonically increasing epoch. A query or
// batch pins the current generation (one shared_ptr copy) on entry and
// runs against it to completion. swap_store() builds a NEW generation
// around a replacement scheme (typically freshly loaded labels from a
// store or sharded manifest), prepares the session's fault set against
// it off the hot path, and atomically publishes it: queries already in
// flight finish on the old generation, the next query starts on the new
// one, and the old generation — including any mmapped store behind it —
// is released when its last in-flight pin drops. No drain, no lost
// queries, no torn reads across label generations.
//
// Threading contract: queries (connected / run_sequential /
// run_parallel) and reset_faults are driven by ONE caller thread, as
// before. swap_store() — and only swap_store() — may additionally be
// called from ANY other thread, concurrently with in-flight queries.
// Results are bit-for-bit identical across the three query paths within
// one generation: workers share the immutable fault set and only write
// disjoint result slots.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/connectivity_scheme.hpp"
#include "core/label_store.hpp"
#include "core/sharded_store.hpp"

namespace ftc::util {
class WorkerPool;
}  // namespace ftc::util

namespace ftc::core {

class BatchQueryEngine {
 public:
  struct Query {
    graph::VertexId s = 0;
    graph::VertexId t = 0;
  };

  // Health snapshot of the current label generation, for serving-tier
  // observability: how much of the keyspace is mapped, adopted, or
  // quarantined. Non-sharded generations report one fully-open "shard".
  struct GenerationStats {
    std::uint64_t epoch = 0;
    std::size_t num_shards = 0;
    std::size_t shards_open = 0;
    std::size_t shards_adopted = 0;
    std::size_t shards_quarantined = 0;
    bool degraded = false;  // any shard quarantined
    std::vector<QuarantineRecord> quarantine;
  };

  // Opens a session for one fault set — any mix of edge and vertex
  // faults (vertex faults need a scheme with adjacency; CapabilityError
  // otherwise). The scheme must outlive the engine (and every generation
  // that references it — swap_store keeps the initial generation alive
  // only until in-flight queries finish). `options` applies to every
  // query of the session.
  BatchQueryEngine(const ConnectivityScheme& scheme, const FaultSpec& spec,
                   const QueryOptions& options = {});

  // Owning variant: the engine takes the scheme (typically one loaded
  // from a label store, see label_store.hpp) and keeps it alive while
  // any generation references it — a serving session spun up directly
  // from a store file:
  //   BatchQueryEngine session(load_scheme("labels.ftcs"), spec);
  BatchQueryEngine(std::unique_ptr<ConnectivityScheme> scheme,
                   const FaultSpec& spec, const QueryOptions& options = {});

  // Parks and joins the worker pool (if one was ever started).
  ~BatchQueryEngine();

  // Installs a new label generation — the zero-downtime cut-over. The
  // incoming scheme is prefetched off-lock first (a sharded store maps
  // and digest-verifies all shards in parallel and resolves its flat
  // route table, so the new epoch never serves a cold lazy open; a
  // corrupt shard throws StoreError with the old generation left fully
  // serving). The session's fault set is then prepared against the new
  // scheme (it must still name valid IDs there; std::invalid_argument
  // otherwise, again leaving the old generation serving), and the
  // generation is published under the next epoch. Safe to call from a
  // thread other than the query-driving one, concurrently with
  // in-flight queries; those finish on their pinned generation. Returns
  // the new epoch.
  std::uint64_t swap_store(std::unique_ptr<ConnectivityScheme> scheme);
  // Convenience: swap to labels served from an already-open store view
  // (single container or sharded manifest).
  std::uint64_t swap_store(std::shared_ptr<const StoreView> view,
                           LoadMode mode = LoadMode::kMmap);
  // Convenience: open the artifact at `path` and install it. When the
  // current generation serves a sharded store and the incoming manifest
  // records byte-identical shard digests (a delta push,
  // sharded_store.hpp), the matching shards' existing mmaps are ADOPTED
  // into the new generation — prefetch inside install() maps only the
  // changed shards, so swap cost scales with the delta, not the store.
  // A "<path>.jrnl" deletion-journal sidecar replays onto the new
  // generation per options.replay_journal.
  std::uint64_t swap_store(const std::string& path,
                           const LoadOptions& options = {});

  // Epoch of the currently installed generation (starts at 1; each
  // swap_store increments it). reset_faults keeps the epoch: it changes
  // the fault set, not the label generation.
  std::uint64_t epoch() const;
  // Epoch the most recent connected()/run_*() call on the query thread
  // answered from. Meaningful only on that thread.
  std::uint64_t last_run_epoch() const { return last_run_epoch_; }

  // Health of the current generation (see GenerationStats). Safe from
  // any thread; pins the generation for the duration of the call.
  GenerationStats generation_stats() const;

  // Replaces the session's fault set; cached workspaces and the worker
  // pool are kept. Query-thread only (like the query entry points).
  void reset_faults(const FaultSpec& spec);

  // Single query on the calling thread, reusing the session workspace.
  bool connected(graph::VertexId s, graph::VertexId t);

  // Batch on the calling thread (one workspace, zero thread overhead).
  std::vector<bool> run_sequential(std::span<const Query> queries);

  // Batch fanned across num_threads workers (0 = hardware concurrency).
  // Falls back to the sequential path for tiny batches or one thread.
  std::vector<bool> run_parallel(std::span<const Query> queries,
                                 unsigned num_threads = 0);

  std::size_t num_faults() const;
  // The scheme of the current generation. The reference stays valid
  // until the generation is retired: a later swap_store plus the end of
  // any in-flight queries. Callers that never swap can hold it freely.
  const ConnectivityScheme& scheme() const;

 private:
  // One immutable label generation: everything a pinned query touches.
  // The workspace arena rides along because workspaces are backend-
  // specific scratch — a swap to a different backend (or labels of a
  // different shape) must not reuse stale scratch.
  struct Generation {
    std::uint64_t epoch = 0;
    std::shared_ptr<const ConnectivityScheme> scheme;
    std::unique_ptr<ConnectivityScheme::FaultSet> faults;
    // Workspace arena: slot i belongs to worker i (slot 0 = caller).
    // Grown and used only by the query-driving thread and its workers.
    std::vector<std::unique_ptr<ConnectivityScheme::Workspace>> workspaces;
  };

  BatchQueryEngine(std::shared_ptr<const ConnectivityScheme> scheme,
                   const FaultSpec& spec, const QueryOptions& options);

  std::shared_ptr<Generation> snapshot() const;
  std::uint64_t install(std::shared_ptr<const ConnectivityScheme> scheme);
  static ConnectivityScheme::Workspace& workspace(Generation& gen,
                                                  std::size_t i);

  // Guards gen_, next_epoch_, spec_ and spec_version_. Held only for
  // pointer swaps and snapshots on the query path; swap_store prepares
  // the incoming generation outside the lock.
  mutable std::mutex mutex_;
  std::shared_ptr<Generation> gen_;
  std::uint64_t next_epoch_ = 1;
  FaultSpec spec_;
  std::uint64_t spec_version_ = 0;

  QueryOptions options_;
  std::uint64_t last_run_epoch_ = 0;  // query-thread only
  // Lazily created on the first parallel batch, then reused for the
  // engine's lifetime; idle workers park on a condition variable
  // (util::WorkerPool — the same parked pool the label builders use).
  std::unique_ptr<util::WorkerPool> pool_;
};

}  // namespace ftc::core
