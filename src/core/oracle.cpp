#include "core/oracle.hpp"

#include <algorithm>

namespace ftc::core {

using graph::EdgeId;
using graph::VertexId;

ConnectivityOracle::ConnectivityOracle(const graph::Graph& g,
                                       const FtcConfig& config)
    : scheme_(FtcScheme::build(g, config)) {
  incident_.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto edges = g.incident_edges(v);
    incident_[v].assign(edges.begin(), edges.end());
  }
}

std::vector<EdgeLabel> ConnectivityOracle::fault_labels(
    std::span<const EdgeId> edge_faults) const {
  std::vector<EdgeLabel> labels;
  labels.reserve(edge_faults.size());
  for (const EdgeId e : edge_faults) labels.push_back(scheme_.edge_label(e));
  return labels;
}

bool ConnectivityOracle::connected(
    VertexId s, VertexId t, std::span<const EdgeId> edge_faults) const {
  return FtcDecoder::connected(scheme_.vertex_label(s),
                               scheme_.vertex_label(t),
                               fault_labels(edge_faults));
}

bool ConnectivityOracle::connected_vertex_faults(
    VertexId s, VertexId t,
    std::span<const VertexId> vertex_faults) const {
  if (s == t) return true;
  std::vector<EdgeId> edges;
  for (const VertexId v : vertex_faults) {
    FTC_REQUIRE(v < incident_.size(), "vertex fault out of range");
    if (v == s || v == t) return false;  // an endpoint was deleted
    edges.insert(edges.end(), incident_[v].begin(), incident_[v].end());
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return connected(s, t, edges);
}

std::vector<bool> ConnectivityOracle::batch_connected(
    std::span<const Query> queries,
    std::span<const EdgeId> edge_faults) const {
  const auto labels = fault_labels(edge_faults);
  std::vector<bool> out;
  out.reserve(queries.size());
  for (const Query& q : queries) {
    out.push_back(FtcDecoder::connected(scheme_.vertex_label(q.s),
                                        scheme_.vertex_label(q.t), labels));
  }
  return out;
}

}  // namespace ftc::core
