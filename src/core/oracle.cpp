#include "core/oracle.hpp"

#include "core/batch_engine.hpp"

namespace ftc::core {

using graph::EdgeId;
using graph::VertexId;

namespace {

SchemeConfig core_config(const FtcConfig& config) {
  SchemeConfig sc;
  sc.backend = BackendKind::kCoreFtc;
  sc.ftc = config;
  return sc;
}

}  // namespace

ConnectivityOracle::ConnectivityOracle(const graph::Graph& g,
                                       const FtcConfig& config)
    : ConnectivityOracle(g, core_config(config)) {}

ConnectivityOracle::ConnectivityOracle(const graph::Graph& g,
                                       const SchemeConfig& config)
    : scheme_(make_scheme(g, config)) {}

ConnectivityOracle::ConnectivityOracle(
    std::unique_ptr<ConnectivityScheme> scheme)
    : scheme_(std::move(scheme)) {
  FTC_REQUIRE(scheme_ != nullptr, "null scheme");
}

ConnectivityOracle ConnectivityOracle::from_store(const std::string& path,
                                                  const LoadOptions& options) {
  return ConnectivityOracle(load_scheme(path, options));
}

bool ConnectivityOracle::connected(VertexId s, VertexId t,
                                   const FaultSpec& spec) const {
  return scheme_->connected(s, t, spec);
}

std::vector<bool> ConnectivityOracle::batch_connected(
    std::span<const Query> queries, const FaultSpec& spec) const {
  BatchQueryEngine engine(*scheme_, spec);
  std::vector<BatchQueryEngine::Query> batch;
  batch.reserve(queries.size());
  for (const Query& q : queries) batch.push_back({q.s, q.t});
  return engine.run_sequential(batch);
}

}  // namespace ftc::core
