#include "core/oracle.hpp"

#include <algorithm>

#include "core/batch_engine.hpp"

namespace ftc::core {

using graph::EdgeId;
using graph::VertexId;

namespace {

SchemeConfig core_config(const FtcConfig& config) {
  SchemeConfig sc;
  sc.backend = BackendKind::kCoreFtc;
  sc.ftc = config;
  return sc;
}

}  // namespace

ConnectivityOracle::ConnectivityOracle(const graph::Graph& g,
                                       const FtcConfig& config)
    : ConnectivityOracle(g, core_config(config)) {}

ConnectivityOracle::ConnectivityOracle(const graph::Graph& g,
                                       const SchemeConfig& config)
    : has_adjacency_(true), scheme_(make_scheme(g, config)) {
  incident_.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto edges = g.incident_edges(v);
    incident_[v].assign(edges.begin(), edges.end());
  }
}

ConnectivityOracle::ConnectivityOracle(
    std::unique_ptr<ConnectivityScheme> scheme)
    : scheme_(std::move(scheme)) {
  FTC_REQUIRE(scheme_ != nullptr, "null scheme");
}

ConnectivityOracle ConnectivityOracle::from_store(const std::string& path,
                                                  const LoadOptions& options) {
  return ConnectivityOracle(load_scheme(path, options));
}

bool ConnectivityOracle::connected(
    VertexId s, VertexId t, std::span<const EdgeId> edge_faults) const {
  return scheme_->connected(s, t, edge_faults);
}

bool ConnectivityOracle::connected_vertex_faults(
    VertexId s, VertexId t,
    std::span<const VertexId> vertex_faults) const {
  FTC_REQUIRE(has_adjacency_,
              "vertex-fault queries need adjacency; this oracle was loaded "
              "from a label store (edge-fault queries only)");
  if (s == t) return true;
  std::vector<EdgeId> edges;
  for (const VertexId v : vertex_faults) {
    FTC_REQUIRE(v < incident_.size(), "vertex fault out of range");
    if (v == s || v == t) return false;  // an endpoint was deleted
    edges.insert(edges.end(), incident_[v].begin(), incident_[v].end());
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return connected(s, t, edges);
}

std::vector<bool> ConnectivityOracle::batch_connected(
    std::span<const Query> queries,
    std::span<const EdgeId> edge_faults) const {
  BatchQueryEngine engine(*scheme_, edge_faults);
  std::vector<BatchQueryEngine::Query> batch;
  batch.reserve(queries.size());
  for (const Query& q : queries) batch.push_back({q.s, q.t});
  return engine.run_sequential(batch);
}

}  // namespace ftc::core
