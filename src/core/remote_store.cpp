// RemoteStoreView: a sharded store opened from an http:// manifest URL.
//
// The open fetches the manifest (small, always transferred in full),
// parks a verbatim copy in the shard cache, and runs the ordinary
// manifest reader over it — so a remote manifest gets every structural
// check a local one does, including the payload checksum over the
// transferred bytes. Shards stay lazy: the shard_local_path() override
// routes each first touch through ShardCache::fetch_shard(), and from
// there on the shard is a local mmap like any other. All the
// serving-tier machinery above (retry, quarantine, DegradedError,
// FlatRoutes, swap_store adoption) is inherited unchanged.
#include "core/sharded_store.hpp"

#include <thread>

#include "core/shard_cache.hpp"
#include "core/shard_source.hpp"

namespace ftc::core {

namespace {

// Whole-object fetch under default_retry_policy(): transient transport
// failures (StoreIoError) back off and retry; structural failures
// (absent object, malformed response) throw through immediately. The
// shard fetch path gets its retries from open_shard(); this helper
// covers the metadata objects (manifest, journal) that are fetched
// outside that loop.
std::vector<std::uint8_t> fetch_with_retry(const ShardSource& source,
                                           const std::string& name) {
  const RetryPolicy policy = default_retry_policy();
  const unsigned attempts = std::max(1u, policy.max_attempts);
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (unsigned attempt = 1;; ++attempt) {
    try {
      return source.fetch(name);
    } catch (const StoreIoError&) {
      if (attempt >= attempts) throw;
      std::this_thread::sleep_for(backoff);
      backoff = std::chrono::microseconds(static_cast<std::int64_t>(
          static_cast<double>(backoff.count()) * policy.multiplier));
      if (policy.max_backoff.count() > 0 && backoff > policy.max_backoff) {
        backoff = policy.max_backoff;
      }
    }
  }
}

HttpEndpoint parse_store_url(const std::string& url) {
  HttpEndpoint ep;
  if (!parse_http_url(url, &ep)) {
    throw StoreError("malformed store URL (expected "
                     "http://host[:port]/path/manifest): " + url);
  }
  return ep;
}

}  // namespace

std::shared_ptr<const RemoteStoreView> RemoteStoreView::open(
    const std::string& url, bool verify_checksum,
    const std::shared_ptr<const ShardedStoreView>& reuse_from,
    std::shared_ptr<ShardCache> cache) {
  const HttpEndpoint ep = parse_store_url(url);
  if (cache == nullptr) cache = default_remote_cache();
  auto source = std::make_shared<HttpShardSource>(ep.host, ep.port, ep.dir);

  // The manifest is re-fetched on every open (it is the mutable part of
  // a store — epochs move by replacing it), but put_blob content-
  // addresses the copy, so reopening an unchanged epoch rewrites
  // nothing.
  const std::vector<std::uint8_t> manifest_bytes =
      fetch_with_retry(*source, ep.object);
  const std::string local_manifest = cache->put_blob("manifest",
                                                     manifest_bytes);

  std::shared_ptr<RemoteStoreView> view(new RemoteStoreView());
  view->url_ = url;
  view->cache_ = std::move(cache);
  view->source_ = std::move(source);
  open_impl(view, local_manifest, verify_checksum, reuse_from,
            /*tolerate_missing_shards=*/false, /*stat_shards=*/false);
  // Error messages and journal validation should name the origin, not
  // the cache copy the manifest reader happened to map.
  view->path_ = url;
  return view;
}

std::string RemoteStoreView::shard_local_path(std::size_t k) const {
  return cache_->fetch_shard(*source_, records_[k]);
}

std::string RemoteStoreView::shard_display_name(std::size_t k) const {
  return source_->describe(records_[k].name);
}

std::string fetch_remote_journal(const std::string& store_url) {
  const HttpEndpoint ep = parse_store_url(store_url);
  const HttpShardSource source(ep.host, ep.port, ep.dir);
  const std::string journal_name = ep.object + ".jrnl";
  std::uint64_t size = 0;
  if (!source.stat(journal_name, &size)) return std::string();
  const std::vector<std::uint8_t> bytes =
      fetch_with_retry(source, journal_name);
  return default_remote_cache()->put_blob("journal", bytes);
}

}  // namespace ftc::core
