#include "core/connectivity_scheme.hpp"

#include <algorithm>
#include <vector>

#include "core/ftc_scheme.hpp"
#include "core/journal.hpp"
#include "core/label_store.hpp"
#include "core/scheme_adapters.hpp"

namespace ftc::core {

// ------------------------------------------------------------------
// Base-class fault model: every public entry point funnels through here,
// so validation, the vertex -> incident-edges reduction and the
// endpoint-deletion rule are identical across all backends and serving
// paths (in-memory, store-served, batch engine, oracle, CLI).

std::unique_ptr<ConnectivityScheme::FaultSet>
ConnectivityScheme::prepare_faults(const FaultSpec& spec) const {
  const graph::EdgeId m = num_edges();
  const graph::VertexId n = num_vertices();
  for (const graph::EdgeId e : spec.edge_faults()) {
    FTC_REQUIRE(e < m, "fault edge out of range");
  }
  for (const graph::VertexId v : spec.vertex_faults()) {
    FTC_REQUIRE(v < n, "fault vertex out of range");
  }

  std::vector<graph::EdgeId> edges(spec.edge_faults().begin(),
                                   spec.edge_faults().end());
  if (spec.has_vertex_faults()) {
    const AdjacencyProvider* adj = adjacency();
    if (adj == nullptr) {
      throw CapabilityError(
          "vertex faults need adjacency, which this scheme does not carry "
          "(e.g. it was loaded from a format-v1 label store; rebuild or "
          "re-save as format v2 with the adjacency side-table)");
    }
    // The Section 1.4 reduction: a faulty vertex becomes its incident
    // edges — Delta * f labels in the worst case.
    for (const graph::VertexId v : spec.vertex_faults()) {
      adj->append_incident(v, edges);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  if (journal_ != nullptr) {
    // Fold the journaled deletions in: a deleted edge is a permanent
    // fault, so every query answers against journal union query faults
    // — sound from the unchanged labels as long as the merged set stays
    // within the fault budget f the journal was created with. Past it,
    // refuse typed (the labels promise nothing there) instead of
    // risking a wrong answer.
    const auto del = journal_->deleted_edges();
    FTC_REQUIRE(del.empty() || del.back() < m,
                "journaled deletion out of range for this scheme");
    edges.insert(edges.end(), del.begin(), del.end());
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    if (edges.size() > journal_->fault_budget()) {
      throw CapacityError(
          "query faults plus journaled deletions exceed the fault budget",
          journal_->fault_budget(), journal_->occupancy(), edges.size());
    }
  }

  auto fault_set = prepare_edge_faults(edges);
  FTC_CHECK(fault_set != nullptr, "backend returned a null fault set");
  fault_set->vertex_faults_.assign(spec.vertex_faults().begin(),
                                   spec.vertex_faults().end());
  return fault_set;
}

bool ConnectivityScheme::query(graph::VertexId s, graph::VertexId t,
                               const FaultSet& faults, Workspace& workspace,
                               const QueryOptions& options) const {
  FTC_REQUIRE(s < num_vertices() && t < num_vertices(),
              "query vertex out of range");
  // A vertex is connected to itself even when deleted; a deleted
  // endpoint is disconnected from everything else.
  if (s == t) return true;
  const auto deleted = [&](graph::VertexId v) {
    const auto vf = faults.vertex_faults();
    return std::binary_search(vf.begin(), vf.end(), v);
  };
  if (deleted(s) || deleted(t)) return false;
  return query_edges(s, t, faults, workspace, options);
}

bool ConnectivityScheme::connected(graph::VertexId s, graph::VertexId t,
                                   const FaultSpec& spec,
                                   const QueryOptions& options) const {
  const auto faults = prepare_faults(spec);
  const auto workspace = make_workspace();
  return query(s, t, *faults, *workspace, options);
}

namespace {

// Fetch each (already canonicalized) fault edge's label from the wrapped
// scheme — the materialization step every adapter shares.
template <typename Scheme>
auto materialize_labels(const Scheme& scheme,
                        std::span<const graph::EdgeId> edge_faults) {
  std::vector<decltype(scheme.edge_label(graph::EdgeId{}))> labels;
  labels.reserve(edge_faults.size());
  for (const graph::EdgeId e : edge_faults) {
    labels.push_back(scheme.edge_label(e));
  }
  return labels;
}

using detail::BackendWorkspace;
using detail::EmptyWorkspace;
using detail::PreparedFaultSet;
using detail::checked_cast;

using CoreFaultSet = PreparedFaultSet<PreparedFaults>;
using CoreWorkspace = BackendWorkspace<DecoderWorkspace>;
using CycleFaultSet = PreparedFaultSet<dp21::CycleSpaceFtc::Prepared>;
using AgmFaultSet = PreparedFaultSet<dp21::AgmFtc::Prepared>;
using AgmWorkspace = BackendWorkspace<dp21::AgmFtc::Workspace>;

// In-memory backends share the graph-derived incidence lists (the store
// persists them as the format-v2 adjacency section).
class InMemoryBackendBase : public ConnectivityScheme {
 public:
  explicit InMemoryBackendBase(const graph::Graph& g) : adjacency_(g) {}

  const AdjacencyProvider* adjacency() const override { return &adjacency_; }

 private:
  VectorAdjacency adjacency_;
};

// ---------------------------------------------------------------- core

class CoreFtcBackend final : public InMemoryBackendBase {
 public:
  CoreFtcBackend(const graph::Graph& g, const FtcConfig& config)
      : InMemoryBackendBase(g), scheme_(FtcScheme::build(g, config)) {}

  BackendKind backend() const override { return BackendKind::kCoreFtc; }
  graph::VertexId num_vertices() const override {
    return scheme_.num_vertices();
  }
  graph::EdgeId num_edges() const override { return scheme_.num_edges(); }
  std::size_t vertex_label_bits() const override {
    return scheme_.vertex_label_bits();
  }
  std::size_t edge_label_bits() const override {
    return scheme_.edge_label_bits();
  }
  std::size_t total_label_bits() const override {
    return scheme_.total_label_bits();
  }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<CoreWorkspace>();
  }

  void serialize_params(store::ByteWriter& out) const override {
    store::encode_core_params(scheme_.params(), scheme_.level_populations(),
                              out);
  }
  void serialize_vertex_label(graph::VertexId v,
                              store::ByteWriter& out) const override {
    store::encode_vertex_record(scheme_.vertex_label(v).anc, out);
  }
  void serialize_edge_label(graph::EdgeId e,
                            store::ByteWriter& out) const override {
    store::encode_core_edge(scheme_.edge_label(e), out);
  }

 protected:
  std::unique_ptr<FaultSet> prepare_edge_faults(
      std::span<const graph::EdgeId> edge_faults) const override {
    const auto labels = materialize_labels(scheme_, edge_faults);
    auto prepared = PreparedFaults::prepare(labels, scheme_.level_populations());
    const std::size_t nf = prepared.num_faults();
    return std::make_unique<CoreFaultSet>(std::move(prepared), nf);
  }

  bool query_edges(graph::VertexId s, graph::VertexId t,
                   const FaultSet& faults, Workspace& workspace,
                   const QueryOptions& options) const override {
    const auto& fs = checked_cast<const CoreFaultSet&>(
        faults, "fault set from a different backend");
    auto& ws = checked_cast<CoreWorkspace&>(
        workspace, "workspace from a different backend");
    return FtcDecoder::connected(scheme_.vertex_label(s),
                                 scheme_.vertex_label(t), fs.prepared(),
                                 ws.inner(), options);
  }

 private:
  FtcScheme scheme_;
};

// ----------------------------------------------------- dp21 cycle-space

class CycleSpaceBackend final : public InMemoryBackendBase {
 public:
  CycleSpaceBackend(const graph::Graph& g,
                    const dp21::CycleSpaceConfig& config)
      : InMemoryBackendBase(g),
        scheme_(dp21::CycleSpaceFtc::build(g, config)),
        num_vertices_(g.num_vertices()),
        num_edges_(g.num_edges()) {}

  BackendKind backend() const override {
    return BackendKind::kDp21CycleSpace;
  }
  graph::VertexId num_vertices() const override { return num_vertices_; }
  graph::EdgeId num_edges() const override { return num_edges_; }
  std::size_t vertex_label_bits() const override {
    return scheme_.vertex_label_bits();
  }
  std::size_t edge_label_bits() const override {
    return scheme_.edge_label_bits();
  }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<EmptyWorkspace>();
  }

  void serialize_params(store::ByteWriter& out) const override {
    store::encode_cycle_params(
        {scheme_.coord_bits(), scheme_.vector_bits()}, out);
  }
  void serialize_vertex_label(graph::VertexId v,
                              store::ByteWriter& out) const override {
    store::encode_vertex_record(scheme_.vertex_label(v).anc, out);
  }
  void serialize_edge_label(graph::EdgeId e,
                            store::ByteWriter& out) const override {
    store::encode_cycle_edge(scheme_.edge_label(e), out);
  }

 protected:
  std::unique_ptr<FaultSet> prepare_edge_faults(
      std::span<const graph::EdgeId> edge_faults) const override {
    const auto labels = materialize_labels(scheme_, edge_faults);
    return std::make_unique<CycleFaultSet>(
        dp21::CycleSpaceFtc::Prepared::prepare(labels), labels.size());
  }

  bool query_edges(graph::VertexId s, graph::VertexId t,
                   const FaultSet& faults, Workspace& /*workspace*/,
                   const QueryOptions& /*options*/) const override {
    const auto& fs = checked_cast<const CycleFaultSet&>(
        faults, "fault set from a different backend");
    return dp21::CycleSpaceFtc::connected(scheme_.vertex_label(s),
                                          scheme_.vertex_label(t),
                                          fs.prepared());
  }

 private:
  dp21::CycleSpaceFtc scheme_;
  graph::VertexId num_vertices_;
  graph::EdgeId num_edges_;
};

// ------------------------------------------------------------ dp21 AGM

class AgmBackend final : public InMemoryBackendBase {
 public:
  AgmBackend(const graph::Graph& g, const dp21::AgmFtcConfig& config)
      : InMemoryBackendBase(g),
        scheme_(dp21::AgmFtc::build(g, config)),
        num_vertices_(g.num_vertices()),
        num_edges_(g.num_edges()) {}

  BackendKind backend() const override { return BackendKind::kDp21Agm; }
  graph::VertexId num_vertices() const override { return num_vertices_; }
  graph::EdgeId num_edges() const override { return num_edges_; }
  std::size_t vertex_label_bits() const override {
    return scheme_.vertex_label_bits();
  }
  std::size_t edge_label_bits() const override {
    return scheme_.edge_label_bits();
  }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<AgmWorkspace>();
  }

  void serialize_params(store::ByteWriter& out) const override {
    store::AgmParams p;
    p.coord_bits = scheme_.coord_bits();
    p.levels = scheme_.sketch_levels();
    p.reps = scheme_.sketch_reps();
    p.seed = scheme_.sketch_seed();
    store::encode_agm_params(p, out);
  }
  void serialize_vertex_label(graph::VertexId v,
                              store::ByteWriter& out) const override {
    store::encode_vertex_record(scheme_.vertex_label(v).anc, out);
  }
  void serialize_edge_label(graph::EdgeId e,
                            store::ByteWriter& out) const override {
    store::encode_agm_edge(scheme_.edge_label(e), out);
  }

 protected:
  std::unique_ptr<FaultSet> prepare_edge_faults(
      std::span<const graph::EdgeId> edge_faults) const override {
    const auto labels = materialize_labels(scheme_, edge_faults);
    return std::make_unique<AgmFaultSet>(
        dp21::AgmFtc::Prepared::prepare(labels), labels.size());
  }

  bool query_edges(graph::VertexId s, graph::VertexId t,
                   const FaultSet& faults, Workspace& workspace,
                   const QueryOptions& /*options*/) const override {
    const auto& fs = checked_cast<const AgmFaultSet&>(
        faults, "fault set from a different backend");
    auto& ws = checked_cast<AgmWorkspace&>(
        workspace, "workspace from a different backend");
    return dp21::AgmFtc::connected(scheme_.vertex_label(s),
                                   scheme_.vertex_label(t), fs.prepared(),
                                   ws.inner());
  }

 private:
  dp21::AgmFtc scheme_;
  graph::VertexId num_vertices_;
  graph::EdgeId num_edges_;
};

}  // namespace

std::unique_ptr<ConnectivityScheme> make_scheme(const graph::Graph& g,
                                                const SchemeConfig& config) {
  switch (config.backend) {
    case BackendKind::kCoreFtc:
      return std::make_unique<CoreFtcBackend>(g, config.ftc);
    case BackendKind::kDp21CycleSpace:
      return std::make_unique<CycleSpaceBackend>(g, config.cycle);
    case BackendKind::kDp21Agm:
      return std::make_unique<AgmBackend>(g, config.agm);
  }
  FTC_REQUIRE(false, "unknown BackendKind");
  return nullptr;  // unreachable
}

BackendKind parse_backend(std::string_view name) {
  for (const BackendKind b : kAllBackends) {
    if (name == backend_name(b)) return b;
  }
  if (name == "ftc" || name == "core") return BackendKind::kCoreFtc;
  if (name == "cycle" || name == "cs") return BackendKind::kDp21CycleSpace;
  if (name == "agm") return BackendKind::kDp21Agm;
  FTC_REQUIRE(false, "unknown backend name: " + std::string(name) +
                         " (expected core-ftc | dp21-cycle | dp21-agm)");
  return BackendKind::kCoreFtc;  // unreachable
}

}  // namespace ftc::core
