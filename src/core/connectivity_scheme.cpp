#include "core/connectivity_scheme.hpp"

#include <algorithm>
#include <vector>

#include "core/ftc_scheme.hpp"
#include "core/label_store.hpp"

namespace ftc::core {

std::vector<graph::EdgeId> canonicalize_faults(
    std::span<const graph::EdgeId> edge_faults, graph::EdgeId num_edges) {
  std::vector<graph::EdgeId> faults(edge_faults.begin(), edge_faults.end());
  for (const graph::EdgeId e : faults) {
    FTC_REQUIRE(e < num_edges, "fault edge out of range");
  }
  std::sort(faults.begin(), faults.end());
  faults.erase(std::unique(faults.begin(), faults.end()), faults.end());
  return faults;
}

namespace {

// Canonicalize the fault set, then fetch each edge's label from the
// wrapped scheme — the materialization step every adapter shares.
template <typename Scheme>
auto materialize_labels(const Scheme& scheme,
                        std::span<const graph::EdgeId> edge_faults,
                        graph::EdgeId num_edges) {
  const auto faults = canonicalize_faults(edge_faults, num_edges);
  std::vector<decltype(scheme.edge_label(graph::EdgeId{}))> labels;
  labels.reserve(faults.size());
  for (const graph::EdgeId e : faults) labels.push_back(scheme.edge_label(e));
  return labels;
}

class EmptyWorkspace final : public ConnectivityScheme::Workspace {};

// query() is the hot path: the fault-set/workspace types are fixed when
// prepare_faults()/make_workspace() hand them out, so downcast statically
// and keep the RTTI check as a debug-only guard against mixing backends.
template <typename T, typename U>
T& checked_cast(U& obj, const char* what) {
#ifndef NDEBUG
  FTC_REQUIRE(dynamic_cast<std::remove_reference_t<T>*>(&obj) != nullptr,
              what);
#else
  (void)what;
#endif
  return static_cast<T&>(obj);
}

// ---------------------------------------------------------------- core

class CoreFaultSet final : public ConnectivityScheme::FaultSet {
 public:
  explicit CoreFaultSet(PreparedFaults prepared)
      : prepared_(std::move(prepared)) {}

  std::size_t num_faults() const override { return prepared_.num_faults(); }
  const PreparedFaults& prepared() const { return prepared_; }

 private:
  PreparedFaults prepared_;
};

class CoreWorkspace final : public ConnectivityScheme::Workspace {
 public:
  DecoderWorkspace& decoder() { return decoder_; }

 private:
  DecoderWorkspace decoder_;
};

class CoreFtcBackend final : public ConnectivityScheme {
 public:
  CoreFtcBackend(const graph::Graph& g, const FtcConfig& config)
      : scheme_(FtcScheme::build(g, config)) {}

  BackendKind backend() const override { return BackendKind::kCoreFtc; }
  graph::VertexId num_vertices() const override {
    return scheme_.num_vertices();
  }
  graph::EdgeId num_edges() const override { return scheme_.num_edges(); }
  std::size_t vertex_label_bits() const override {
    return scheme_.vertex_label_bits();
  }
  std::size_t edge_label_bits() const override {
    return scheme_.edge_label_bits();
  }
  std::size_t total_label_bits() const override {
    return scheme_.total_label_bits();
  }

  std::unique_ptr<FaultSet> prepare_faults(
      std::span<const graph::EdgeId> edge_faults) const override {
    const auto labels = materialize_labels(scheme_, edge_faults, num_edges());
    return std::make_unique<CoreFaultSet>(PreparedFaults::prepare(labels));
  }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<CoreWorkspace>();
  }

  bool query(graph::VertexId s, graph::VertexId t, const FaultSet& faults,
             Workspace& workspace,
             const QueryOptions& options) const override {
    const auto& fs = checked_cast<const CoreFaultSet&>(
        faults, "fault set from a different backend");
    auto& ws = checked_cast<CoreWorkspace&>(
        workspace, "workspace from a different backend");
    return FtcDecoder::connected(scheme_.vertex_label(s),
                                 scheme_.vertex_label(t), fs.prepared(),
                                 ws.decoder(), options);
  }

  void serialize_params(store::ByteWriter& out) const override {
    store::encode_core_params(scheme_.params(), out);
  }
  void serialize_vertex_label(graph::VertexId v,
                              store::ByteWriter& out) const override {
    store::encode_vertex_record(scheme_.vertex_label(v).anc, out);
  }
  void serialize_edge_label(graph::EdgeId e,
                            store::ByteWriter& out) const override {
    store::encode_core_edge(scheme_.edge_label(e), out);
  }

 private:
  FtcScheme scheme_;
};

// ----------------------------------------------------- dp21 cycle-space

class CycleFaultSet final : public ConnectivityScheme::FaultSet {
 public:
  explicit CycleFaultSet(std::vector<dp21::CsEdgeLabel> labels)
      : labels_(std::move(labels)) {}
  std::size_t num_faults() const override { return labels_.size(); }
  std::span<const dp21::CsEdgeLabel> labels() const { return labels_; }

 private:
  std::vector<dp21::CsEdgeLabel> labels_;
};

class CycleSpaceBackend final : public ConnectivityScheme {
 public:
  CycleSpaceBackend(const graph::Graph& g,
                    const dp21::CycleSpaceConfig& config)
      : scheme_(dp21::CycleSpaceFtc::build(g, config)),
        num_vertices_(g.num_vertices()),
        num_edges_(g.num_edges()) {}

  BackendKind backend() const override {
    return BackendKind::kDp21CycleSpace;
  }
  graph::VertexId num_vertices() const override { return num_vertices_; }
  graph::EdgeId num_edges() const override { return num_edges_; }
  std::size_t vertex_label_bits() const override {
    return scheme_.vertex_label_bits();
  }
  std::size_t edge_label_bits() const override {
    return scheme_.edge_label_bits();
  }

  std::unique_ptr<FaultSet> prepare_faults(
      std::span<const graph::EdgeId> edge_faults) const override {
    return std::make_unique<CycleFaultSet>(
        materialize_labels(scheme_, edge_faults, num_edges_));
  }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<EmptyWorkspace>();
  }

  bool query(graph::VertexId s, graph::VertexId t, const FaultSet& faults,
             Workspace& /*workspace*/,
             const QueryOptions& /*options*/) const override {
    const auto& fs = checked_cast<const CycleFaultSet&>(
        faults, "fault set from a different backend");
    return dp21::CycleSpaceFtc::connected(scheme_.vertex_label(s),
                                          scheme_.vertex_label(t),
                                          fs.labels());
  }

  void serialize_params(store::ByteWriter& out) const override {
    store::encode_cycle_params(
        {scheme_.coord_bits(), scheme_.vector_bits()}, out);
  }
  void serialize_vertex_label(graph::VertexId v,
                              store::ByteWriter& out) const override {
    store::encode_vertex_record(scheme_.vertex_label(v).anc, out);
  }
  void serialize_edge_label(graph::EdgeId e,
                            store::ByteWriter& out) const override {
    store::encode_cycle_edge(scheme_.edge_label(e), out);
  }

 private:
  dp21::CycleSpaceFtc scheme_;
  graph::VertexId num_vertices_;
  graph::EdgeId num_edges_;
};

// ------------------------------------------------------------ dp21 AGM

class AgmFaultSet final : public ConnectivityScheme::FaultSet {
 public:
  explicit AgmFaultSet(std::vector<dp21::AgmEdgeLabel> labels)
      : labels_(std::move(labels)) {}
  std::size_t num_faults() const override { return labels_.size(); }
  std::span<const dp21::AgmEdgeLabel> labels() const { return labels_; }

 private:
  std::vector<dp21::AgmEdgeLabel> labels_;
};

class AgmBackend final : public ConnectivityScheme {
 public:
  AgmBackend(const graph::Graph& g, const dp21::AgmFtcConfig& config)
      : scheme_(dp21::AgmFtc::build(g, config)),
        num_vertices_(g.num_vertices()),
        num_edges_(g.num_edges()) {}

  BackendKind backend() const override { return BackendKind::kDp21Agm; }
  graph::VertexId num_vertices() const override { return num_vertices_; }
  graph::EdgeId num_edges() const override { return num_edges_; }
  std::size_t vertex_label_bits() const override {
    return scheme_.vertex_label_bits();
  }
  std::size_t edge_label_bits() const override {
    return scheme_.edge_label_bits();
  }

  std::unique_ptr<FaultSet> prepare_faults(
      std::span<const graph::EdgeId> edge_faults) const override {
    return std::make_unique<AgmFaultSet>(
        materialize_labels(scheme_, edge_faults, num_edges_));
  }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<EmptyWorkspace>();
  }

  bool query(graph::VertexId s, graph::VertexId t, const FaultSet& faults,
             Workspace& /*workspace*/,
             const QueryOptions& /*options*/) const override {
    const auto& fs = checked_cast<const AgmFaultSet&>(
        faults, "fault set from a different backend");
    return dp21::AgmFtc::connected(scheme_.vertex_label(s),
                                   scheme_.vertex_label(t), fs.labels());
  }

  void serialize_params(store::ByteWriter& out) const override {
    store::AgmParams p;
    p.coord_bits = scheme_.coord_bits();
    p.levels = scheme_.sketch_levels();
    p.reps = scheme_.sketch_reps();
    p.seed = scheme_.sketch_seed();
    store::encode_agm_params(p, out);
  }
  void serialize_vertex_label(graph::VertexId v,
                              store::ByteWriter& out) const override {
    store::encode_vertex_record(scheme_.vertex_label(v).anc, out);
  }
  void serialize_edge_label(graph::EdgeId e,
                            store::ByteWriter& out) const override {
    store::encode_agm_edge(scheme_.edge_label(e), out);
  }

 private:
  dp21::AgmFtc scheme_;
  graph::VertexId num_vertices_;
  graph::EdgeId num_edges_;
};

}  // namespace

bool ConnectivityScheme::connected(graph::VertexId s, graph::VertexId t,
                                   std::span<const graph::EdgeId> edge_faults,
                                   const QueryOptions& options) const {
  const auto faults = prepare_faults(edge_faults);
  const auto workspace = make_workspace();
  return query(s, t, *faults, *workspace, options);
}

std::unique_ptr<ConnectivityScheme> make_scheme(const graph::Graph& g,
                                                const SchemeConfig& config) {
  switch (config.backend) {
    case BackendKind::kCoreFtc:
      return std::make_unique<CoreFtcBackend>(g, config.ftc);
    case BackendKind::kDp21CycleSpace:
      return std::make_unique<CycleSpaceBackend>(g, config.cycle);
    case BackendKind::kDp21Agm:
      return std::make_unique<AgmBackend>(g, config.agm);
  }
  FTC_REQUIRE(false, "unknown BackendKind");
  return nullptr;  // unreachable
}

BackendKind parse_backend(std::string_view name) {
  for (const BackendKind b : kAllBackends) {
    if (name == backend_name(b)) return b;
  }
  if (name == "ftc" || name == "core") return BackendKind::kCoreFtc;
  if (name == "cycle" || name == "cs") return BackendKind::kDp21CycleSpace;
  if (name == "agm") return BackendKind::kDp21Agm;
  FTC_REQUIRE(false, "unknown backend name: " + std::string(name) +
                         " (expected core-ftc | dp21-cycle | dp21-agm)");
  return BackendKind::kCoreFtc;  // unreachable
}

}  // namespace ftc::core
