#include "core/shard_cache.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/digest.hpp"
#include "util/failpoint.hpp"

namespace ftc::core {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

// mkdir -p, restricted to the absolute/relative prefixes of `dir`.
void make_dirs(const std::string& dir) {
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    std::size_t next = dir.find('/', pos);
    if (next == std::string::npos) next = dir.size();
    prefix = dir.substr(0, next);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      throw StoreIoError("shard cache mkdir failed: " + prefix + ": " +
                         std::strerror(errno));
    }
    pos = next + 1;
  }
}

constexpr const char kShardPrefix[] = "shard-";
constexpr const char kShardSuffix[] = ".ftcs";

}  // namespace

std::string ShardCache::shard_key(const store::ShardRecord& rec) {
  return kShardPrefix + hex16(rec.payload_digest) + "-" +
         std::to_string(rec.file_bytes) + kShardSuffix;
}

ShardCache::ShardCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  if (dir_.empty()) dir_ = ".";
  if (dir_.back() != '/') dir_ += '/';
  make_dirs(dir_.substr(0, dir_.size() - 1));

  // Adopt shard files a previous process left behind, oldest access
  // first so they evict before anything this process fetches.
  struct Found {
    std::string key;
    std::uint64_t bytes;
    struct timespec atime;
  };
  std::vector<Found> found;
  if (DIR* d = ::opendir(dir_.c_str())) {
    while (const struct dirent* ent = ::readdir(d)) {
      const std::string key = ent->d_name;
      if (key.rfind(kShardPrefix, 0) != 0) continue;
      if (key.size() < sizeof(kShardSuffix) ||
          key.compare(key.size() - (sizeof(kShardSuffix) - 1),
                      sizeof(kShardSuffix) - 1, kShardSuffix) != 0) {
        continue;
      }
      struct stat st {};
      if (::stat((dir_ + key).c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
        continue;
      }
      found.push_back({key, static_cast<std::uint64_t>(st.st_size), st.st_atim});
    }
    ::closedir(d);
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    if (a.atime.tv_sec != b.atime.tv_sec) return a.atime.tv_sec < b.atime.tv_sec;
    return a.atime.tv_nsec < b.atime.tv_nsec;
  });
  for (auto& f : found) {
    lru_.push_back({f.key, f.bytes});
    index_.emplace(f.key, std::prev(lru_.end()));
    resident_bytes_ += f.bytes;
  }
}

void ShardCache::touch_locked(
    std::unordered_map<std::string, LruList::iterator>::iterator it) {
  lru_.splice(lru_.end(), lru_, it->second);
  it->second = std::prev(lru_.end());
  // Bump the on-disk timestamps so a future process's startup rescan
  // reconstructs the same LRU order.
  ::utimensat(AT_FDCWD, (dir_ + it->first).c_str(), nullptr, 0);
}

void ShardCache::evict_locked(const std::string& keep) {
  if (max_bytes_ == 0) return;
  auto it = lru_.begin();
  while (resident_bytes_ > max_bytes_ && it != lru_.end()) {
    if (it->key == keep) {
      ++it;
      continue;
    }
    // Unlink-under-mmap is safe: a view serving this shard keeps the
    // bytes alive through its mapping; only the directory entry dies.
    ::unlink((dir_ + it->key).c_str());
    resident_bytes_ -= it->bytes;
    counters_.evictions += 1;
    counters_.bytes_evicted += it->bytes;
    index_.erase(it->key);
    it = lru_.erase(it);
  }
}

bool ShardCache::contains(std::uint64_t payload_digest,
                          std::uint64_t file_bytes) const {
  const std::string key = kShardPrefix + hex16(payload_digest) + "-" +
                          std::to_string(file_bytes) + kShardSuffix;
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

ShardCacheStats ShardCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShardCacheStats out = counters_;
  out.bytes_resident = resident_bytes_;
  out.entries = lru_.size();
  return out;
}

std::string ShardCache::fetch_shard(const ShardSource& source,
                                    const store::ShardRecord& rec) {
  const std::string key = shard_key(rec);
  const std::string path = dir_ + key;

  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      const auto it = index_.find(key);
      if (it != index_.end()) {
        counters_.hits += 1;
        touch_locked(it);
        return path;
      }
      if (inflight_.count(key) == 0) break;
      // Another thread is fetching these exact bytes; one transfer
      // serves everyone.
      inflight_cv_.wait(lock);
    }
    inflight_.insert(key);
  }

  // Transfer and verify outside the lock — other keys keep flowing.
  std::vector<std::uint8_t> bytes;
  try {
    bytes = source.fetch(rec.name);
    if (bytes.size() != rec.file_bytes) {
      throw StoreIoError("remote shard size mismatch (got " +
                         std::to_string(bytes.size()) + ", manifest says " +
                         std::to_string(rec.file_bytes) + "): " +
                         source.describe(rec.name));
    }
    std::uint64_t digest =
        bytes.size() >= store::kHeaderBytes
            ? util::fnv1a(std::span<const std::uint8_t>(bytes).subspan(
                  store::kHeaderBytes))
            : 0;
    if (FTC_FAILPOINT("remote.digest") != 0) digest = ~digest;
    if (digest != rec.payload_digest) {
      // Transient by policy: the origin may be mid-republish; a retry
      // can land on a consistent copy. Persistent mismatch exhausts
      // the retry budget and quarantines the shard.
      throw StoreIoError("remote shard digest mismatch: " +
                         source.describe(rec.name));
    }
    store::write_file_atomic(path, bytes);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    inflight_cv_.notify_all();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    inflight_cv_.notify_all();
    if (index_.count(key) == 0) {
      lru_.push_back({key, rec.file_bytes});
      index_.emplace(key, std::prev(lru_.end()));
      resident_bytes_ += rec.file_bytes;
    }
    counters_.misses += 1;
    counters_.bytes_fetched += bytes.size();
    evict_locked(key);
  }
  return path;
}

std::string ShardCache::put_blob(const std::string& stem,
                                 std::span<const std::uint8_t> bytes) {
  const std::string key =
      stem + "-" + hex16(util::fnv1a(bytes)) + "-" +
      std::to_string(bytes.size()) + ".blob";
  const std::string path = dir_ + key;
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0 &&
      static_cast<std::uint64_t>(st.st_size) == bytes.size()) {
    return path;  // content-addressed: same key means same bytes
  }
  store::write_file_atomic(path, bytes);
  return path;
}

// ---------------------------------------------------------------------------
// Process-wide default cache.

namespace {

std::mutex g_default_cache_mu;
std::shared_ptr<ShardCache> g_default_cache;

std::uint64_t parse_bytes_env(const char* value, std::uint64_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::shared_ptr<ShardCache> default_remote_cache() {
  std::lock_guard<std::mutex> lock(g_default_cache_mu);
  if (!g_default_cache) {
    std::string dir;
    if (const char* env = std::getenv("FTC_CACHE_DIR"); env && *env) {
      dir = env;
    } else {
      const char* tmp = std::getenv("TMPDIR");
      dir = (tmp && *tmp) ? tmp : "/tmp";
      if (dir.back() != '/') dir += '/';
      dir += "ftc-shard-cache-" + std::to_string(::getuid());
    }
    const std::uint64_t budget = parse_bytes_env(
        std::getenv("FTC_CACHE_BYTES"), std::uint64_t{256} << 20);
    g_default_cache = std::make_shared<ShardCache>(dir, budget);
  }
  return g_default_cache;
}

std::shared_ptr<ShardCache> set_default_remote_cache(
    std::shared_ptr<ShardCache> cache) {
  std::lock_guard<std::mutex> lock(g_default_cache_mu);
  g_default_cache.swap(cache);
  return cache;
}

}  // namespace ftc::core
