// Internal adapter plumbing shared by the in-memory backends
// (connectivity_scheme.cpp) and the label-store-served backends
// (label_store.cpp): both wrap the same per-backend session state
// (core PreparedFaults, dp21 Prepared/Workspace types) behind the
// ConnectivityScheme::FaultSet / Workspace interfaces, so the wrappers
// live once here instead of drifting apart in two anonymous namespaces.
// Not part of the public API surface.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>

#include "core/connectivity_scheme.hpp"
#include "core/label_store.hpp"

namespace ftc::core::detail {

// Caches the owning view's resolved flat route table so the per-query
// hot path pays one acquire load + direct index instead of a virtual
// call per label read. A view publishes its FlatRoutes at most once and
// never retracts it (label_store.hpp), so caching the pointer is safe:
// until publication get() keeps asking the view (a sharded store may
// resolve routes mid-serve, via prefetch() or the last lazy open).
class RouteCache {
 public:
  explicit RouteCache(const StoreView& view) : view_(&view) {}

  const store::FlatRoutes* get() const {
    const store::FlatRoutes* rt = cached_.load(std::memory_order_acquire);
    if (rt != nullptr) return rt;
    rt = view_->routes();
    if (rt != nullptr) cached_.store(rt, std::memory_order_release);
    return rt;
  }

 private:
  const StoreView* view_;
  mutable std::atomic<const store::FlatRoutes*> cached_{nullptr};
};

// Immutable fault-set adapter: the backend's prepared session state plus
// the deduplicated fault-edge count reported through num_faults().
template <typename Prepared>
class PreparedFaultSet final : public ConnectivityScheme::FaultSet {
 public:
  PreparedFaultSet(Prepared prepared, std::size_t num_faults)
      : prepared_(std::move(prepared)), num_faults_(num_faults) {}

  std::size_t num_faults() const override { return num_faults_; }
  const Prepared& prepared() const { return prepared_; }

 private:
  Prepared prepared_;
  std::size_t num_faults_ = 0;
};

// Per-thread workspace adapter over a backend's scratch type.
template <typename Inner>
class BackendWorkspace final : public ConnectivityScheme::Workspace {
 public:
  Inner& inner() { return inner_; }

 private:
  Inner inner_;
};

// Backends whose query path needs no scratch (dp21 cycle-space: the
// prepared kernel is read-only).
class EmptyWorkspace final : public ConnectivityScheme::Workspace {};

// query_edges() is the hot path: the fault-set/workspace types are fixed
// when prepare_faults()/make_workspace() hand them out, so downcast
// statically and keep the RTTI check as a debug-only guard against
// mixing backends.
template <typename T, typename U>
T& checked_cast(U& obj, const char* what) {
#ifndef NDEBUG
  FTC_REQUIRE(dynamic_cast<std::remove_reference_t<T>*>(&obj) != nullptr,
              what);
#else
  (void)what;
#endif
  return static_cast<T&>(obj);
}

}  // namespace ftc::core::detail
