// ShardedLabelStore implementation: the manifest writer (save_sharded),
// the manifest-routed ShardedStoreView, and the magic-dispatching
// open_store_view() entry point.
//
// The split is by contiguous vertex/edge ranges so the manifest's range
// index is two sorted arrays and a lookup is one branchless-ish binary
// search — the offset-index layout inside each shard is exactly the
// single-container one, so the per-shard read path is byte-for-byte the
// code LabelStoreView already runs. Shards open lazily: a view that only
// ever serves queries touching one shard maps one shard.
#include "core/sharded_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <string_view>
#include <thread>
#include <utility>

#include "core/shard_source.hpp"
#include "util/digest.hpp"
#include "util/failpoint.hpp"
#include "util/scoped_fd.hpp"

namespace ftc::core {

namespace {

// Env-tunable retry knobs (satellite of the remote tier: operators
// adjust remote-fetch retries without a rebuild). Invalid or absent
// values keep the compiled default for that field only.
RetryPolicy policy_from_env() {
  RetryPolicy policy;
  const auto read_u64 = [](const char* name, std::uint64_t* out) {
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0') return false;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (errno != 0 || end == value || *end != '\0') return false;
    *out = static_cast<std::uint64_t>(v);
    return true;
  };
  std::uint64_t v = 0;
  if (read_u64("FTC_RETRY_ATTEMPTS", &v) && v >= 1) {
    policy.max_attempts = static_cast<unsigned>(std::min<std::uint64_t>(
        v, std::numeric_limits<unsigned>::max()));
  }
  if (read_u64("FTC_RETRY_BASE_US", &v)) {
    policy.initial_backoff = std::chrono::microseconds(v);
  }
  if (read_u64("FTC_RETRY_CAP_US", &v)) {
    policy.max_backoff = std::chrono::microseconds(v);
  }
  return policy;
}

}  // namespace

RetryPolicy& default_retry_policy() {
  static RetryPolicy policy = policy_from_env();
  return policy;
}

namespace {

using graph::EdgeId;
using graph::VertexId;

std::size_t align8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }

// Splits path into (directory prefix including the trailing slash — or
// empty for the current directory — and the file name).
std::pair<std::string, std::string> split_path(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return {std::string(), path};
  return {path.substr(0, slash + 1), path.substr(slash + 1)};
}

// Shard names come from a checksummed but untrusted file; resolving one
// must never escape the manifest's directory.
void validate_shard_name(const std::string& name, const std::string& path) {
  const auto fail = [&](const char* why) -> StoreError {
    return StoreError(std::string("corrupt manifest (") + why +
                      " in shard name): " + path);
  };
  if (name.empty()) throw fail("empty");
  if (name.front() == '/') throw fail("absolute path");
  if (name.find('\0') != std::string::npos) throw fail("NUL byte");
  std::size_t pos = 0;
  while (pos <= name.size()) {
    std::size_t next = name.find('/', pos);
    if (next == std::string::npos) next = name.size();
    const std::string_view seg(name.data() + pos, next - pos);
    if (seg.empty() || seg == "." || seg == "..") {
      throw fail("path traversal segment");
    }
    pos = next + 1;
  }
}

// What save_sharded_impl did to the file behind shard k, so error
// cleanup only unlinks files THIS call produced and never a parent's
// in-place-reused shard or a prior generation's published one.
enum class ShardFile : std::uint8_t {
  kNone = 0,       // nothing on disk yet for this slot
  kStaged = 1,     // bytes (or a hard link) under the stage name
  kPublished = 2,  // renamed onto the final shard name
  kInPlace = 3,    // parent's file reused where it already stood
};

// The parent side of a delta push, snapshotted from its manifest before
// any byte of the child is produced.
struct ParentManifest {
  std::string dir;  // parent manifest directory (trailing slash or empty)
  std::vector<store::ShardRecord> records;
  std::uint64_t manifest_digest = 0;  // its payload checksum
  std::uint64_t epoch = 0;
};

// How staging the byte-identical file at src for publication as dst
// went. kInPlace: dst already IS src (same inode — a push over the
// parent's own path), nothing to stage. kLinked: a hard link sits under
// the stage name (renamed onto dst in the publish phase with every
// other shard). kLinkFailedFallback: the mount refuses hard links
// (EXDEV/EPERM) — the caller writes the shard in full and records the
// typed fallback in DeltaPushStats. kNoSource: src gone, not regular,
// or the link failed for any other reason — plain full write.
enum class ReuseResult : std::uint8_t {
  kNoSource = 0,
  kInPlace = 1,
  kLinked = 2,
  kLinkFailedFallback = 3,
};

ReuseResult stage_shard_reuse(const std::string& src, const std::string& dst,
                              const std::string& stage) {
  struct stat src_st{};
  if (::stat(src.c_str(), &src_st) != 0 || !S_ISREG(src_st.st_mode)) {
    return ReuseResult::kNoSource;
  }
  struct stat dst_st{};
  if (::stat(dst.c_str(), &dst_st) == 0 && dst_st.st_dev == src_st.st_dev &&
      dst_st.st_ino == src_st.st_ino) {
    return ReuseResult::kInPlace;
  }
  ::unlink(stage.c_str());
  int rc;
  if (const int fe = FTC_FAILPOINT("store.shard.link")) {
    errno = fe;
    rc = -1;
  } else {
    rc = ::link(src.c_str(), stage.c_str());
  }
  if (rc == 0) return ReuseResult::kLinked;
  return errno == EXDEV || errno == EPERM ? ReuseResult::kLinkFailedFallback
                                          : ReuseResult::kNoSource;
}

DeltaPushStats save_sharded_impl(const ConnectivityScheme& scheme,
                                 const std::string& manifest_path,
                                 unsigned num_shards,
                                 const ParentManifest* parent) {
  FTC_REQUIRE(num_shards >= 1, "need at least one shard");
  FTC_REQUIRE(num_shards <= store::kMaxShards, "too many shards");
  const VertexId n = scheme.num_vertices();
  const EdgeId m = scheme.num_edges();
  const auto [dir, base] = split_path(manifest_path);

  // Contiguous, near-even split of both ID spaces. A shard's vertex and
  // edge ranges are independent partitions — edge e's endpoints need not
  // live in the same shard, and nothing on the read path assumes so.
  std::vector<store::ShardRecord> records(num_shards);
  for (unsigned k = 0; k < num_shards; ++k) {
    store::ShardRecord& rec = records[k];
    rec.vertex_begin = static_cast<std::uint64_t>(n) * k / num_shards;
    rec.vertex_end = static_cast<std::uint64_t>(n) * (k + 1) / num_shards;
    rec.edge_begin = static_cast<std::uint64_t>(m) * k / num_shards;
    rec.edge_end = static_cast<std::uint64_t>(m) * (k + 1) / num_shards;
    rec.name = base + ".shard" + std::to_string(k) + ".ftcs";
  }

  DeltaPushStats stats;
  stats.epoch = parent != nullptr ? parent->epoch + 1 : 1;
  stats.shards_total = num_shards;
  std::atomic<std::size_t> shards_reused{0};
  std::atomic<std::size_t> link_fallbacks{0};
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::uint64_t> bytes_reused{0};
  std::vector<ShardFile> produced(num_shards, ShardFile::kNone);
  // True for a published slot that replaced a pre-existing file (a prior
  // generation's shard): those must survive error cleanup.
  std::vector<std::uint8_t> replaced(num_shards, 0);
  const std::string stage_suffix =
      ".stage." + std::to_string(static_cast<long>(::getpid()));

  // Build the shard containers in parallel: serialization only reads the
  // (immutable) scheme, and every worker writes distinct files. Every
  // shard is STAGED under a temp name first and renamed onto its final
  // name only once all of them built, so a failed save never disturbs a
  // prior generation living under this path; the manifest goes last, so
  // a crash mid-save never publishes a manifest naming missing shards.
  // Shards stream straight from the scheme to disk
  // (write_container_streamed), so peak save memory per worker is one
  // flush chunk, not one shard image. In delta mode a no-I/O digest
  // pass runs first; a shard matching a parent record (payload digest +
  // exact size — digests are over the full payload, so a match means
  // byte-identical files) is hard-linked from the parent instead of
  // written, and only changed shards pay the serialize-again-to-disk
  // pass.
  std::vector<std::exception_ptr> errors(num_shards);
  const auto build_shard = [&](unsigned k) {
    try {
      store::ShardRecord& rec = records[k];
      const auto v_begin = static_cast<VertexId>(rec.vertex_begin);
      const auto v_end = static_cast<VertexId>(rec.vertex_end);
      const auto e_begin = static_cast<EdgeId>(rec.edge_begin);
      const auto e_end = static_cast<EdgeId>(rec.edge_end);
      if (parent != nullptr) {
        const store::ContainerDigest digest = store::digest_container(
            scheme, v_begin, v_end, e_begin, e_end,
            /*include_adjacency=*/false);
        rec.file_bytes = digest.file_bytes;
        rec.payload_digest = digest.payload_checksum;
        for (const store::ShardRecord& prec : parent->records) {
          if (prec.payload_digest != rec.payload_digest ||
              prec.file_bytes != rec.file_bytes) {
            continue;
          }
          const ReuseResult reuse =
              stage_shard_reuse(parent->dir + prec.name, dir + rec.name,
                                dir + rec.name + stage_suffix);
          if (reuse == ReuseResult::kInPlace ||
              reuse == ReuseResult::kLinked) {
            produced[k] = reuse == ReuseResult::kInPlace
                              ? ShardFile::kInPlace
                              : ShardFile::kStaged;
            shards_reused.fetch_add(1, std::memory_order_relaxed);
            bytes_reused.fetch_add(rec.file_bytes,
                                   std::memory_order_relaxed);
            return;
          }
          if (reuse == ReuseResult::kLinkFailedFallback) {
            // Hard-link-hostile mount: the push still succeeds, the
            // shard is just written in full below and the fallback is
            // surfaced in the stats.
            link_fallbacks.fetch_add(1, std::memory_order_relaxed);
          }
          break;  // reuse impossible (e.g. cross-device): write in full
        }
      }
      const store::ContainerDigest written = store::write_container_streamed(
          scheme, dir + rec.name + stage_suffix, v_begin, v_end, e_begin,
          e_end, /*include_adjacency=*/false);
      rec.file_bytes = written.file_bytes;
      rec.payload_digest = written.payload_checksum;
      produced[k] = ShardFile::kStaged;
      bytes_written.fetch_add(rec.file_bytes, std::memory_order_relaxed);
    } catch (...) {
      errors[k] = std::current_exception();
    }
  };

  try {
    const unsigned workers = std::min<unsigned>(
        num_shards, std::max(1u, std::thread::hardware_concurrency()));
    if (workers <= 1) {
      for (unsigned k = 0; k < num_shards; ++k) build_shard(k);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
          for (unsigned k = w; k < num_shards; k += workers) build_shard(k);
        });
      }
      for (std::thread& t : threads) t.join();
    }
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }

    store::ByteWriter params;
    scheme.serialize_params(params);
    const std::vector<std::uint8_t> adj_section =
        store::build_adjacency_section(scheme);

    store::ByteWriter w;
    w.u64(store::kManifestMagic);
    w.u32(static_cast<std::uint32_t>(store::kManifestFormatVersion));
    w.u8(static_cast<std::uint8_t>(scheme.backend()));
    w.u8(!adj_section.empty() ? store::kFlagHasAdjacency : 0);  // flags
    w.u8(0);
    w.u8(0);
    w.u64(n);
    w.u64(m);
    w.u64(num_shards);
    w.u64(params.size());
    w.u64(store::fnv1a(params.view()));
    w.u64(adj_section.size());
    w.u64(stats.epoch);
    w.u64(parent != nullptr ? parent->manifest_digest : 0);
    const std::size_t payload_checksum_off = w.size();
    w.u64(0);  // payload checksum, patched below
    const std::size_t header_checksum_off = w.size();
    w.u64(0);  // header checksum, patched below
    FTC_CHECK(w.size() == store::kManifestHeaderBytes,
              "manifest header layout drifted");

    w.bytes(params.view());
    w.pad_to(8);
    for (const store::ShardRecord& rec : records) {
      store::encode_shard_record(rec, w);
    }
    if (!adj_section.empty()) w.bytes(adj_section);

    const auto file = w.view();
    w.patch_u64(payload_checksum_off,
                store::fnv1a(file.subspan(store::kManifestHeaderBytes)));
    w.patch_u64(header_checksum_off,
                store::fnv1a(file.first(header_checksum_off)));

    // Publish: only now, with every shard built and the manifest bytes
    // assembled, do the staged files rename onto their final names. Up
    // to this point nothing under the live names has been touched, so
    // any build failure leaves a prior generation fully intact.
    for (unsigned k = 0; k < num_shards; ++k) {
      if (produced[k] != ShardFile::kStaged) continue;
      const std::string final_name = dir + records[k].name;
      struct stat st{};
      replaced[k] = ::stat(final_name.c_str(), &st) == 0;
      const std::string stage = final_name + stage_suffix;
      int rc;
      if (const int fe = FTC_FAILPOINT("store.shard.publish")) {
        errno = fe;
        rc = -1;
      } else {
        rc = ::rename(stage.c_str(), final_name.c_str());
      }
      if (rc != 0) {
        throw StoreIoError("cannot publish shard file: " + final_name + " (" +
                           std::strerror(errno) + ")");
      }
      produced[k] = ShardFile::kPublished;
    }
    store::write_file_atomic(manifest_path, w.view());
    stats.manifest_bytes = w.size();
  } catch (...) {
    // Failure hygiene: an aborted save must not litter the directory
    // with stage files or shard files no manifest names (or, worse,
    // that a LATER save under the same path would have to overwrite).
    // Only files this call created are unlinked — an in-place-reused
    // parent shard is the parent's, and a published slot that replaced
    // a prior generation's file stays (removing it would turn that
    // generation's detectable digest mismatch into a missing shard).
    for (unsigned k = 0; k < num_shards; ++k) {
      if (produced[k] == ShardFile::kStaged) {
        ::unlink((dir + records[k].name + stage_suffix).c_str());
      } else if (produced[k] == ShardFile::kPublished && !replaced[k]) {
        ::unlink((dir + records[k].name).c_str());
      }
    }
    throw;
  }

  // The manifest is live; now drop stale higher-numbered shard files
  // left by an earlier save with a larger K under this path — they
  // belong to no manifest and would otherwise shadow future saves.
  // Best-effort: stop at the first gap (ENOENT) or error.
  for (std::uint64_t k = num_shards; k < store::kMaxShards; ++k) {
    const std::string stale =
        dir + base + ".shard" + std::to_string(k) + ".ftcs";
    if (::unlink(stale.c_str()) != 0) break;
  }

  stats.shards_reused = shards_reused.load(std::memory_order_relaxed);
  stats.shards_written = stats.shards_total - stats.shards_reused;
  stats.bytes_written = bytes_written.load(std::memory_order_relaxed);
  stats.bytes_reused = bytes_reused.load(std::memory_order_relaxed);
  stats.shards_link_fallback = link_fallbacks.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace

// ------------------------------------------------------------------
// Writer.

void save_sharded(const ConnectivityScheme& scheme,
                  const std::string& manifest_path, unsigned num_shards) {
  save_sharded_impl(scheme, manifest_path, num_shards, nullptr);
}

DeltaPushStats save_sharded_delta(const ConnectivityScheme& scheme,
                                  const std::string& manifest_path,
                                  const std::string& parent_manifest_path,
                                  unsigned num_shards) {
  // Snapshot the parent BEFORE producing any child byte: records (the
  // content addresses), its payload checksum (the child's parent
  // digest), and its epoch. Structural validation runs in full; the
  // payload FNV pass is skipped — the checksum VALUE is what chains.
  const auto parent_view =
      ShardedStoreView::open(parent_manifest_path, /*verify_checksum=*/false);
  ParentManifest parent;
  parent.dir = split_path(parent_manifest_path).first;
  const auto precs = parent_view->shards();
  parent.records.assign(precs.begin(), precs.end());
  parent.manifest_digest = parent_view->info().payload_checksum;
  parent.epoch = parent_view->info().manifest_epoch;
  if (num_shards == 0) num_shards = parent_view->info().num_shards;
  return save_sharded_impl(scheme, manifest_path, num_shards, &parent);
}

// ------------------------------------------------------------------
// Reader.

ShardedStoreView::~ShardedStoreView() {
  store::unmap_file({map_, map_bytes_});
}

std::shared_ptr<const ShardedStoreView> ShardedStoreView::open(
    const std::string& path, bool verify_checksum,
    const std::shared_ptr<const ShardedStoreView>& reuse_from) {
  std::shared_ptr<ShardedStoreView> view(new ShardedStoreView());
  open_impl(view, path, verify_checksum, reuse_from,
            /*tolerate_missing_shards=*/false, /*stat_shards=*/true);
  return view;
}

std::shared_ptr<const ShardedStoreView> ShardedStoreView::open_degraded(
    const std::string& path, bool verify_checksum) {
  std::shared_ptr<ShardedStoreView> view(new ShardedStoreView());
  open_impl(view, path, verify_checksum, nullptr,
            /*tolerate_missing_shards=*/true, /*stat_shards=*/true);
  return view;
}

void ShardedStoreView::open_impl(
    const std::shared_ptr<ShardedStoreView>& view, const std::string& path,
    bool verify_checksum,
    const std::shared_ptr<const ShardedStoreView>& reuse_from,
    bool tolerate_missing_shards, bool stat_shards) {
  const store::MappedFile mapped = store::map_readonly(
      path, store::kManifestHeaderBytesV1, "store manifest");
  const std::size_t size = mapped.size;

  view->map_ = mapped.data;
  view->map_bytes_ = size;
  view->path_ = path;
  view->dir_ = split_path(path).first;
  view->verify_checksum_ = verify_checksum;

  const std::span<const std::uint8_t> bytes(view->map_, size);
  // Parse the header from a stack copy made under a SIGBUS guard: a
  // manifest truncated or replaced behind the mapping surfaces as a
  // typed StoreIoError instead of a crash, and every later header field
  // read is fault-free by construction.
  std::uint8_t header_copy[store::kManifestHeaderBytes];
  const std::size_t header_copy_bytes =
      std::min<std::size_t>(size, store::kManifestHeaderBytes);
  store::with_sigbus_guard(path, "store manifest header", [&] {
    std::memcpy(header_copy, view->map_, header_copy_bytes);
  });
  const std::span<const std::uint8_t> header_span(header_copy,
                                                  header_copy_bytes);
  store::ByteReader h(header_span);
  if (h.u64() != store::kManifestMagic) {
    throw StoreError("bad magic (not a store manifest): " + path);
  }
  StoreInfo& info = view->info_;
  // The header size depends on the version, so the version gates the
  // rest of the parse (an unsupported-version error wins over a
  // checksum-mismatch one for corrupt version bytes — both typed).
  const std::uint32_t manifest_version = h.u32();
  if (manifest_version < store::kMinManifestFormatVersion ||
      manifest_version > store::kManifestFormatVersion) {
    throw StoreError("unsupported manifest format version " +
                     std::to_string(manifest_version) + ": " + path);
  }
  const std::size_t header_bytes = manifest_version == 1
                                       ? store::kManifestHeaderBytesV1
                                       : store::kManifestHeaderBytes;
  if (size < header_bytes) {
    throw StoreError("store manifest truncated (header): " + path);
  }
  const std::uint8_t backend_byte = h.u8();
  const std::uint8_t flags = h.u8();
  h.u8();
  h.u8();
  const std::uint64_t n64 = h.u64();
  const std::uint64_t m64 = h.u64();
  const std::uint64_t num_shards = h.u64();
  const std::uint64_t params_size = h.u64();
  const std::uint64_t params_hash = h.u64();
  const std::uint64_t adj_size = h.u64();
  if (manifest_version >= 2) {
    // v2 lineage fields; v1 manifests predate delta pushes and read as
    // the root of their own chain.
    info.manifest_epoch = h.u64();
    info.parent_digest = h.u64();
  } else {
    info.manifest_epoch = 1;
    info.parent_digest = 0;
  }
  info.payload_checksum = h.u64();
  const std::size_t header_checksum_off = h.pos();
  const std::uint64_t header_checksum = h.u64();
  FTC_CHECK(h.pos() == header_bytes, "manifest header layout drifted");
  if (store::fnv1a(header_span.first(header_checksum_off)) !=
      header_checksum) {
    throw StoreError("corrupt manifest header (checksum mismatch): " + path);
  }
  if (info.manifest_epoch == 0) {
    throw StoreError("corrupt manifest (epoch zero): " + path);
  }
  if ((flags & ~store::kFlagHasAdjacency) != 0) {
    throw StoreError("unknown header flags in store manifest: " + path);
  }
  info.has_adjacency = (flags & store::kFlagHasAdjacency) != 0;
  if (info.has_adjacency != (adj_size != 0)) {
    throw StoreError("corrupt manifest (adjacency flag/size disagree): " +
                     path);
  }
  if (backend_byte > static_cast<std::uint8_t>(BackendKind::kDp21Agm)) {
    throw StoreError("unknown backend kind in store manifest: " + path);
  }
  info.backend = static_cast<BackendKind>(backend_byte);
  if (n64 >= graph::kNoVertex || m64 >= graph::kNoEdge) {
    throw StoreError("store manifest dimensions out of range: " + path);
  }
  info.num_vertices = static_cast<VertexId>(n64);
  info.num_edges = static_cast<EdgeId>(m64);
  if (num_shards < 1 || num_shards > store::kMaxShards) {
    throw StoreError("store manifest shard count out of range: " + path);
  }
  info.num_shards = static_cast<std::uint32_t>(num_shards);

  // The manifest reader never trusts the recorded section sizes: every
  // section bound is checked against the mapped size before any read.
  if (verify_checksum) {
    std::uint64_t payload_fnv = 0;
    store::with_sigbus_guard(path, "store manifest payload", [&] {
      payload_fnv = store::fnv1a(bytes.subspan(header_bytes));
    });
    if (payload_fnv != info.payload_checksum) {
      throw StoreError("payload checksum mismatch (corrupt manifest): " +
                       path);
    }
  }
  if (params_size > size - header_bytes) {
    throw StoreError("store manifest truncated (params exceed file): " + path);
  }
  view->params_off_ = header_bytes;
  info.params_bytes = static_cast<std::size_t>(params_size);
  std::uint64_t params_fnv = 0;
  store::with_sigbus_guard(path, "store manifest params", [&] {
    params_fnv = store::fnv1a(view->params_blob());
  });
  if (params_fnv != params_hash) {
    throw StoreError("corrupt manifest (params blob hash mismatch): " + path);
  }

  const std::size_t table_off = align8(view->params_off_ + info.params_bytes);
  if (table_off > size) {
    throw StoreError("store manifest truncated (shard table): " + path);
  }
  info.adjacency_bytes = static_cast<std::size_t>(adj_size);
  if (info.adjacency_bytes > size - table_off) {
    throw StoreError("store manifest truncated (adjacency section): " + path);
  }
  const std::size_t adj_off = size - info.adjacency_bytes;
  if (info.has_adjacency && adj_off % 8 != 0) {
    throw StoreError("corrupt manifest (adjacency misaligned): " + path);
  }

  // Shard table: K records that must tile [0, n) and [0, m) exactly —
  // contiguous, in order, no overlap, no gap — and consume the whole
  // region between params and adjacency.
  store::ByteReader table(bytes.subspan(table_off, adj_off - table_off));
  view->records_.reserve(info.num_shards);
  std::uint64_t v_cursor = 0;
  std::uint64_t e_cursor = 0;
  store::with_sigbus_guard(path, "store manifest shard table", [&] {
    for (std::uint32_t k = 0; k < info.num_shards; ++k) {
      store::ShardRecord rec;
      try {
        rec = store::decode_shard_record(table);
      } catch (const StoreError& e) {
        throw StoreError(std::string(e.what()) + ": " + path);
      }
      if (rec.vertex_begin != v_cursor || rec.vertex_end < rec.vertex_begin ||
          rec.edge_begin != e_cursor || rec.edge_end < rec.edge_begin) {
        throw StoreError(
            "corrupt manifest (shard ranges overlap or leave a gap): " + path);
      }
      v_cursor = rec.vertex_end;
      e_cursor = rec.edge_end;
      validate_shard_name(rec.name, path);
      view->records_.push_back(std::move(rec));
    }
  });
  if (v_cursor != n64 || e_cursor != m64) {
    throw StoreError("corrupt manifest (shard ranges do not cover the "
                     "store): " + path);
  }
  if (table.remaining() != 0) {
    throw StoreError("corrupt manifest (trailing bytes after shard table): " +
                     path);
  }

  if (info.has_adjacency) {
    view->adj_ = store::CsrAdjacency{view->map_, adj_off, info.adjacency_bytes,
                                     info.num_vertices, info.num_edges};
    store::with_sigbus_guard(path, "store manifest adjacency", [&] {
      view->adj_.validate(path);
    });
  }

  // Params must decode for this backend (also yields the per-edge blob
  // width for the aggregate accounting below). Format v2 semantics: the
  // manifest writer and the shard containers share the v2 params codec.
  info.format_version = static_cast<std::uint32_t>(store::kFormatVersion);
  std::size_t blob_bytes = 0;
  store::StoreLabelBits bits;
  store::with_sigbus_guard(path, "store manifest params", [&] {
    blob_bytes = store::expected_edge_blob_bytes(
        info.backend, view->params_blob(), info.format_version);
    bits = store::derive_label_bits(info.backend, view->params_blob(),
                                    info.format_version);
  });
  info.vertex_label_bits = bits.vertex_label_bits;
  info.edge_label_bits = bits.edge_label_bits;

  // Every shard file must already exist with exactly the recorded size;
  // mapping and full validation stay lazy. open_degraded() turns a
  // failed stat into a quarantine (applied below, once the quarantine
  // arrays exist) so the healthy ranges still come up. A remote open
  // (stat_shards == false) skips the check — the shards have no local
  // file until fetched; the manifest's recorded sizes stand in for the
  // stat, and the digest verification at fetch time is strictly
  // stronger than an existence probe.
  info.file_bytes = size;
  std::vector<std::pair<std::size_t, std::string>> dead_shards;
  for (std::size_t k = 0; k < view->records_.size(); ++k) {
    const store::ShardRecord& rec = view->records_[k];
    if (!stat_shards) {
      info.file_bytes += static_cast<std::size_t>(rec.file_bytes);
      continue;
    }
    struct stat shard_st{};
    const std::string shard_path = view->dir_ + rec.name;
    std::string why;
    if (::stat(shard_path.c_str(), &shard_st) != 0) {
      why = "missing shard file: " + shard_path + " (" +
            std::strerror(errno) + ")";
    } else if (!S_ISREG(shard_st.st_mode) ||
               static_cast<std::uint64_t>(shard_st.st_size) !=
                   rec.file_bytes) {
      why = "shard file size disagrees with manifest: " + shard_path;
    }
    if (why.empty()) {
      info.file_bytes += static_cast<std::size_t>(rec.file_bytes);
      continue;
    }
    if (!tolerate_missing_shards) throw StoreError(why);
    dead_shards.emplace_back(k, std::move(why));
  }

  // Aggregate section accounting (nominal; shards carry the real
  // sections): n fixed vertex records, K per-shard offset indices, and
  // m fixed-width edge blobs.
  info.vertex_section_bytes =
      static_cast<std::size_t>(info.num_vertices) * store::kVertexRecordBytes;
  info.edge_index_bytes =
      (static_cast<std::size_t>(info.num_edges) + info.num_shards) * 8;
  info.edge_blob_bytes = static_cast<std::size_t>(info.num_edges) * blob_bytes;

  view->shard_views_.resize(info.num_shards);
  view->opened_ = std::make_unique<std::atomic<bool>[]>(info.num_shards);
  view->quarantined_ = std::make_unique<std::atomic<bool>[]>(info.num_shards);
  view->quarantine_reasons_.resize(info.num_shards);
  for (std::uint32_t k = 0; k < info.num_shards; ++k) {
    view->opened_[k].store(false, std::memory_order_relaxed);
    view->quarantined_[k].store(false, std::memory_order_relaxed);
  }
  for (const auto& [k, why] : dead_shards) view->quarantine_shard(k, why);
  if (reuse_from != nullptr) view->adopt_shards(*reuse_from);
}

void ShardedStoreView::adopt_shards(const ShardedStoreView& parent) {
  // A parent shard is adoptable when its manifest record matches ours in
  // content address (payload digest + exact size — byte-identical files)
  // and ID extents, the backends agree, the params blobs are
  // byte-identical (the new manifest's per-shard params cross-check is
  // subsumed), and the parent has actually mapped it. Adopted slots
  // share the parent's LabelStoreView — its mmap stays alive through the
  // shared_ptr even after the parent view is retired.
  if (parent.info_.backend != info_.backend) return;
  const auto pp = parent.params_blob();
  const auto np = params_blob();
  if (pp.size() != np.size() || !std::equal(pp.begin(), pp.end(), np.begin())) {
    return;
  }
  for (std::size_t k = 0; k < records_.size(); ++k) {
    const store::ShardRecord& rec = records_[k];
    for (std::size_t j = 0; j < parent.records_.size(); ++j) {
      const store::ShardRecord& prec = parent.records_[j];
      if (prec.payload_digest != rec.payload_digest ||
          prec.file_bytes != rec.file_bytes ||
          prec.vertex_end - prec.vertex_begin !=
              rec.vertex_end - rec.vertex_begin ||
          prec.edge_end - prec.edge_begin != rec.edge_end - rec.edge_begin) {
        continue;
      }
      if (!parent.opened_[j].load(std::memory_order_acquire)) continue;
      shard_views_[k] = parent.shard_views_[j];
      opened_[k].store(true, std::memory_order_release);
      ++open_count_;
      ++adopted_count_;
      break;
    }
  }
  // Adopting every shard (a zero-delta republish) resolves routing
  // immediately; open() still has exclusive access, so no lock.
  if (open_count_ == records_.size()) resolve_routes();
}

std::string ShardedStoreView::shard_local_path(std::size_t k) const {
  return dir_ + records_[k].name;
}

std::string ShardedStoreView::shard_display_name(std::size_t k) const {
  return dir_ + records_[k].name;
}

std::shared_ptr<const LabelStoreView> ShardedStoreView::open_shard_once(
    std::size_t k) const {
  const store::ShardRecord& rec = records_[k];
  // The transport seam: the base class resolves to the file next to the
  // manifest; a remote view fetches through the cache here (and may
  // throw the transport's StoreIoError, retried by open_shard).
  const std::string shard_path = shard_local_path(k);
  auto v = LabelStoreView::open(shard_path, verify_checksum_);
  const StoreInfo& si = v->info();
  if (si.backend != info_.backend ||
      si.num_vertices != rec.vertex_end - rec.vertex_begin ||
      si.num_edges != rec.edge_end - rec.edge_begin) {
    throw StoreError("shard disagrees with manifest (backend or "
                     "dimensions): " + shard_path);
  }
  if (si.file_bytes != rec.file_bytes ||
      si.payload_checksum != rec.payload_digest) {
    throw StoreError("shard digest mismatch (stale or swapped shard): " +
                     shard_path);
  }
  const auto sp = v->params_blob();
  const auto mp = params_blob();
  if (sp.size() != mp.size() ||
      !std::equal(sp.begin(), sp.end(), mp.begin())) {
    throw StoreError("shard params blob differs from manifest: " +
                     shard_path);
  }
  return v;
}

std::shared_ptr<const LabelStoreView> ShardedStoreView::open_shard(
    std::size_t k) const {
  // Transient (StoreIoError) failures retry under the process-wide
  // policy; structural failures never do (re-reading corrupt bytes
  // cannot help). Either way, an exhausted shard is quarantined so the
  // next query over its range degrades instantly instead of re-paying
  // the open + backoff.
  const RetryPolicy policy = default_retry_policy();
  const unsigned attempts = std::max(1u, policy.max_attempts);
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (unsigned attempt = 1;; ++attempt) {
    try {
      return open_shard_once(k);
    } catch (const StoreIoError& e) {
      if (attempt >= attempts) {
        quarantine_shard(k, std::string(e.what()) + " (after " +
                                std::to_string(attempt) + " attempts)");
        throw_degraded(k);
      }
      std::this_thread::sleep_for(backoff);
      backoff = std::chrono::microseconds(static_cast<std::int64_t>(
          static_cast<double>(backoff.count()) * policy.multiplier));
      if (policy.max_backoff.count() > 0 && backoff > policy.max_backoff) {
        backoff = policy.max_backoff;
      }
    } catch (const DegradedError&) {
      throw;  // a racing opener already quarantined this shard
    } catch (const StoreError& e) {
      quarantine_shard(k, e.what());
      throw_degraded(k);
    }
  }
}

void ShardedStoreView::quarantine_shard(std::size_t k,
                                        const std::string& reason) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (quarantined_[k].load(std::memory_order_relaxed)) return;  // first wins
  quarantine_reasons_[k] = reason;
  quarantined_[k].store(true, std::memory_order_release);
}

void ShardedStoreView::throw_degraded(std::size_t k) const {
  const store::ShardRecord& rec = records_[k];
  std::string reason;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    reason = quarantine_reasons_[k];
  }
  throw DegradedError(
      "shard " + std::to_string(k) + " quarantined (vertices [" +
          std::to_string(rec.vertex_begin) + ", " +
          std::to_string(rec.vertex_end) + "), edges [" +
          std::to_string(rec.edge_begin) + ", " +
          std::to_string(rec.edge_end) + ") unservable): " + reason,
      k, rec.vertex_begin, rec.vertex_end, rec.edge_begin, rec.edge_end);
}

std::size_t ShardedStoreView::shards_quarantined() const {
  std::size_t count = 0;
  for (std::size_t k = 0; k < records_.size(); ++k) {
    if (quarantined_[k].load(std::memory_order_acquire)) ++count;
  }
  return count;
}

std::vector<QuarantineRecord> ShardedStoreView::quarantine_report() const {
  std::vector<QuarantineRecord> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t k = 0; k < records_.size(); ++k) {
    if (!quarantined_[k].load(std::memory_order_relaxed)) continue;
    const store::ShardRecord& rec = records_[k];
    out.push_back(QuarantineRecord{k, rec.vertex_begin, rec.vertex_end,
                                   rec.edge_begin, rec.edge_end,
                                   quarantine_reasons_[k]});
  }
  return out;
}

void ShardedStoreView::verify_shard(std::size_t k) const {
  FTC_REQUIRE(k < records_.size(), "shard index out of range");
  (void)open_shard_once(k);  // probe mapping discarded; never published
}

void ShardedStoreView::on_mapped_fault(const void* addr) const {
  // Attribute the fault to the shard whose live mapping covers it. The
  // snapshot under mutex_ is cheap (K shared_ptr copies) and only runs
  // on the already-catastrophic path.
  std::vector<std::shared_ptr<const LabelStoreView>> views;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    views = shard_views_;
  }
  for (std::size_t k = 0; k < views.size(); ++k) {
    if (views[k] != nullptr && views[k]->contains(addr)) {
      quarantine_shard(k, "mapped read faulted (file truncated or replaced "
                          "behind the mapping): " + shard_display_name(k));
      throw_degraded(k);
    }
  }
  throw StoreIoError(
      "mapped read faulted (file truncated or replaced behind the "
      "mapping): " + path_);
}

bool ShardedStoreView::publish_shard(
    std::size_t k, std::shared_ptr<const LabelStoreView> v) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (opened_[k].load(std::memory_order_relaxed)) return false;  // racer won
  shard_views_[k] = std::move(v);
  opened_[k].store(true, std::memory_order_release);
  if (++open_count_ < records_.size()) return true;
  resolve_routes();
  return true;
}

void ShardedStoreView::resolve_routes() const {
  // Last shard in: resolve routing once. Every shard container already
  // built its own flat table at open, so the global one is a splice —
  // per-ID pointers are absolute, only the array positions shift by the
  // manifest ranges. Published with a release store; queries that loaded
  // nullptr a moment ago keep using the per-shard path, bit-identically.
  auto routes = std::make_unique<store::FlatRoutes>();
  routes->num_vertices = info_.num_vertices;
  routes->num_edges = info_.num_edges;
  routes->vertex_ptr.reserve(info_.num_vertices);
  routes->edge_ptr.reserve(info_.num_edges);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const store::FlatRoutes* sub = shard_views_[i]->routes();
    FTC_CHECK(sub != nullptr, "shard container missing its route table");
    routes->edge_blob_bytes = sub->edge_blob_bytes;
    routes->vertex_ptr.insert(routes->vertex_ptr.end(),
                              sub->vertex_ptr.begin(), sub->vertex_ptr.end());
    routes->edge_ptr.insert(routes->edge_ptr.end(), sub->edge_ptr.begin(),
                            sub->edge_ptr.end());
  }
  FTC_CHECK(routes->vertex_ptr.size() == info_.num_vertices &&
                routes->edge_ptr.size() == info_.num_edges,
            "spliced route table does not tile the store");
  routes_storage_ = std::move(routes);
  routes_ptr_.store(routes_storage_.get(), std::memory_order_release);
}

const LabelStoreView& ShardedStoreView::shard(std::size_t k) const {
  // Lazy open with the mmap + validation OUTSIDE the lock, so cold
  // first-touch opens of different shards proceed in parallel. Racing
  // opens of the SAME shard both validate and the first publisher wins
  // (the loser's mapping is discarded); slot k is written exactly once,
  // and the release store publishes it to lock-free readers.
  if (!opened_[k].load(std::memory_order_acquire)) {
    if (quarantined_[k].load(std::memory_order_acquire)) throw_degraded(k);
    publish_shard(k, open_shard(k));
  }
  return *shard_views_[k];
}

store::PrefetchStats ShardedStoreView::prefetch(unsigned threads) const {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t num_shards = records_.size();
  store::PrefetchStats stats;
  stats.shard_us.assign(num_shards, 0.0);

  // Work-stealing over shard indices (the save_sharded writer pattern):
  // every worker pulls the next unclaimed shard, maps + digest-verifies
  // it outside any lock, and publishes through the same slot discipline
  // as the lazy path — so prefetch composes safely with concurrent
  // queries and with itself.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> opened{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto worker = [&] {
    for (;;) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_shards) return;
      if (opened_[k].load(std::memory_order_acquire)) continue;
      try {
        if (quarantined_[k].load(std::memory_order_acquire)) {
          throw_degraded(k);
        }
        const auto s0 = std::chrono::steady_clock::now();
        auto v = open_shard(k);
        stats.shard_us[k] =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - s0)
                .count();
        if (publish_shard(k, std::move(v))) {
          opened.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (...) {
        // Record the first failure but keep draining the queue: every
        // other shard still opens, so a single bad shard degrades its
        // own range instead of aborting the whole prefetch (swap_store
        // keeps the old generation serving when this rethrows below).
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(num_shards, 1)));
  stats.threads = threads;
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w) pool.emplace_back(worker);
    worker();
    for (std::thread& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);

  stats.shards_opened = opened.load(std::memory_order_relaxed);
  stats.shards_adopted = adopted_count_;
  stats.total_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return stats;
}

std::size_t ShardedStoreView::shard_of_vertex(VertexId v) const {
  FTC_REQUIRE(v < info_.num_vertices, "vertex out of range");
  // Last shard whose vertex_begin <= v; the tiling invariant makes it
  // the unique shard with vertex_begin <= v < vertex_end.
  std::size_t lo = 0;
  std::size_t hi = records_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (records_[mid].vertex_begin <= v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t ShardedStoreView::shard_of_edge(EdgeId e) const {
  FTC_REQUIRE(e < info_.num_edges, "edge out of range");
  std::size_t lo = 0;
  std::size_t hi = records_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (records_[mid].edge_begin <= e) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::span<const std::uint8_t> ShardedStoreView::params_blob() const {
  return {map_ + params_off_, info_.params_bytes};
}

std::span<const std::uint8_t> ShardedStoreView::vertex_blob(
    VertexId v) const {
  // Once the global route table is published, a lookup is one acquire
  // load and a direct index — no binary search, no shard indirection.
  if (const store::FlatRoutes* rt = routes()) {
    FTC_REQUIRE(v < rt->num_vertices, "vertex out of range");
    return {rt->vertex_ptr[v], store::kVertexRecordBytes};
  }
  const std::size_t k = shard_of_vertex(v);
  return shard(k).vertex_blob(
      static_cast<VertexId>(v - records_[k].vertex_begin));
}

std::span<const std::uint8_t> ShardedStoreView::edge_blob(EdgeId e) const {
  if (const store::FlatRoutes* rt = routes()) {
    FTC_REQUIRE(e < rt->num_edges, "edge out of range");
    return {rt->edge_ptr[e], rt->edge_blob_bytes};
  }
  const std::size_t k = shard_of_edge(e);
  return shard(k).edge_blob(static_cast<EdgeId>(e - records_[k].edge_begin));
}

std::size_t ShardedStoreView::adjacency_degree(VertexId v) const {
  return adj_.degree(v);
}

void ShardedStoreView::adjacency_append(VertexId v,
                                        std::vector<EdgeId>& out) const {
  adj_.append(v, out);
}

std::size_t ShardedStoreView::shards_open() const {
  std::size_t count = 0;
  for (std::size_t k = 0; k < records_.size(); ++k) {
    if (opened_[k].load(std::memory_order_acquire)) ++count;
  }
  return count;
}

// ------------------------------------------------------------------
// Magic dispatch.

std::shared_ptr<const StoreView> open_store_view(
    const std::string& path, bool verify_checksum,
    const std::shared_ptr<const StoreView>& reuse_from) {
  // URL dispatch comes before the sniff: a URL is not a local file, and
  // every caller (load_scheme, swap_store, the CLI) reaches the remote
  // tier through this one branch.
  if (is_http_url(path)) {
    return RemoteStoreView::open(
        path, verify_checksum,
        std::dynamic_pointer_cast<const ShardedStoreView>(reuse_from));
  }
  util::ScopedFd fd;
  if (const int fe = FTC_FAILPOINT("store.sniff.open")) {
    errno = fe;
  } else {
    fd.reset(::open(path.c_str(), O_RDONLY | O_CLOEXEC | O_NONBLOCK));
  }
  if (!fd) {
    throw StoreIoError("cannot open label store: " + path + " (" +
                       std::strerror(errno) + ")");
  }
  std::uint8_t buf[8];
  bool read_ok;
  if (const int fe = FTC_FAILPOINT("store.sniff.read")) {
    errno = fe;
    read_ok = false;
  } else {
    read_ok = util::read_full(fd.get(), buf, sizeof(buf));
  }
  if (!read_ok) {
    if (errno != 0) {
      throw StoreIoError("cannot read label store magic: " + path + " (" +
                         std::strerror(errno) + ")");
    }
    throw StoreError("label store truncated (no magic): " + path);
  }
  std::uint64_t magic = 0;
  for (int i = 0; i < 8; ++i) magic |= std::uint64_t{buf[i]} << (8 * i);
  if (magic == store::kMagic) {
    return LabelStoreView::open(path, verify_checksum);
  }
  if (magic == store::kManifestMagic) {
    // Adoption only has meaning sharded-to-sharded; any other pairing
    // quietly degrades to a plain open.
    return ShardedStoreView::open(
        path, verify_checksum,
        std::dynamic_pointer_cast<const ShardedStoreView>(reuse_from));
  }
  throw StoreError("bad magic (neither a label store nor a manifest): " +
                   path);
}

std::shared_ptr<const StoreView> open_store_view(const std::string& path,
                                                 bool verify_checksum) {
  return open_store_view(path, verify_checksum, nullptr);
}

}  // namespace ftc::core
