#include "core/ftc_scheme.hpp"

#include <algorithm>
#include <chrono>

#include "core/edge_code.hpp"
#include "geometry/netfind.hpp"
#include "geometry/point_map.hpp"
#include "graph/aux_graph.hpp"
#include "graph/euler_tour.hpp"
#include "graph/spanning_tree.hpp"
#include "sketch/rs_sketch.hpp"
#include "util/worker_pool.hpp"

namespace ftc::core {

using graph::EdgeId;
using graph::VertexId;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

geometry::HierarchyConfig hierarchy_config(const FtcConfig& cfg) {
  geometry::HierarchyConfig h;
  switch (cfg.kind) {
    case SchemeKind::kDeterministic:
      h.kind = geometry::HierarchyKind::kDeterministicNetFind;
      h.group_len = cfg.group_len;
      break;
    case SchemeKind::kDeterministicGreedy:
      h.kind = geometry::HierarchyKind::kDeterministicGreedy;
      break;
    case SchemeKind::kRandomized:
      h.kind = geometry::HierarchyKind::kRandomSampling;
      h.seed = cfg.seed;
      break;
  }
  return h;
}

unsigned resolve_k(const FtcConfig& cfg, std::size_t n_aux,
                   std::size_t num_points) {
  if (cfg.k_override != 0) return cfg.k_override;
  if (cfg.k_mode == KMode::kProvable) {
    if (cfg.kind == SchemeKind::kRandomized) {
      return geometry::randomized_hierarchy_k(cfg.f, n_aux);
    }
    const unsigned gl =
        cfg.group_len != 0
            ? cfg.group_len
            : geometry::provable_group_len(std::max<std::size_t>(num_points, 2));
    return geometry::provable_hierarchy_k(cfg.f, gl);
  }
  const unsigned logn =
      std::max(1u, ceil_log2(std::max<std::size_t>(n_aux, 2)));
  const double k = cfg.k_scale * (cfg.f + 1) * logn;
  return std::max(4u, static_cast<unsigned>(k));
}

}  // namespace

struct FtcScheme::Impl {
  LabelParams params;
  BuildStats stats;
  VertexId orig_n = 0;
  EdgeId orig_m = 0;
  // Per original vertex: T'-ancestry label.
  std::vector<graph::AncestryLabel> vertex_anc;
  // Per original edge: sigma-image endpoints in T'.
  std::vector<graph::AncestryLabel> edge_upper;
  std::vector<graph::AncestryLabel> edge_lower;
  // Per original edge: num_levels * k field elements as raw words,
  // level-major then syndrome index, each F::kWords words.
  std::size_t words_per_edge = 0;
  std::vector<std::uint64_t> sketch_data;
  // Per level: edge population clamped to k (sound boundary-size bound).
  std::vector<std::uint32_t> level_pops;

  // Computes, per hierarchy level, every T'-vertex's outdetect label (XOR
  // of incident level-edge IDs) and the subtree sum below every non-root
  // vertex; the sum below sigma(e)'s lower endpoint is recorded as e's
  // level sketch (Lemma 1 / Proposition 4).
  //
  // Parallel formulation. The subtree of v is the contiguous Euler-tin
  // range [tin(v), tout(v)], and all sums live in a characteristic-2
  // field where addition is word-XOR — so instead of the serial
  // bottom-up fold, index the accumulator by tin and take a prefix scan:
  //     P[t]          = XOR of own-contributions of tins <= t
  //     subtree(v)    = P[tout(v)] ^ P[tin(v) - 1]     (tin(v) >= 1)
  // Every stage partitions the tin axis into one stripe per worker:
  //   1. accumulate: each worker zeroes its stripe, then folds the
  //      power-sum contributions of exactly the edge endpoints whose tin
  //      it owns (an edge spanning two stripes recomputes its k power
  //      sums once per side — bounded 2x duplication, no communication);
  //   2. scan: stripe-local inclusive XOR scan;
  //   3. carry: a serial chain of per-stripe totals (k field elements
  //      per stripe — negligible), then a parallel carry application;
  //   4. write-out: per-vertex sketch rows; target rows are disjoint
  //      because parent_edge is injective over non-root vertices.
  // XOR makes every accumulation order produce identical bits, so the
  // result is byte-identical to the serial (1-stripe) build for any
  // worker count — the contract test_parallel_build enforces.
  template <typename F>
  void build_sketches(const graph::AuxGraph& aux,
                      const graph::AncestryLabeling& anc2,
                      const geometry::EdgeHierarchy& hier,
                      util::WorkerPool& pool) {
    const VertexId n2 = aux.g2.num_vertices();
    const unsigned k = params.k;
    const unsigned levels = params.num_levels;
    constexpr unsigned wpe = F::kWords;
    words_per_edge = static_cast<std::size_t>(levels) * k * wpe;
    sketch_data.assign(words_per_edge * orig_m, 0);

    // Map T'-tree-edge -> original edge (sigma is a bijection onto T').
    std::vector<EdgeId> sigma_inv(aux.g2.num_edges(), graph::kNoEdge);
    for (EdgeId e = 0; e < orig_m; ++e) sigma_inv[aux.sigma[e]] = e;

    std::vector<std::uint32_t> tin(n2), tout(n2);
    for (VertexId v = 0; v < n2; ++v) {
      const graph::AncestryLabel l = anc2.label(v);
      tin[v] = l.tin;
      tout[v] = l.tout;
    }

    const unsigned stripes = static_cast<unsigned>(std::min<std::size_t>(
        pool.default_active(), static_cast<std::size_t>(n2)));
    std::vector<std::size_t> bounds(stripes + 1);
    for (unsigned b = 0; b <= stripes; ++b) {
      bounds[b] = static_cast<std::size_t>(n2) * b / stripes;
    }

    std::vector<F> acc(static_cast<std::size_t>(n2) * k);  // indexed by tin
    std::vector<F> carry(static_cast<std::size_t>(stripes) * k, F::zero());
    for (unsigned lev = 0; lev < levels; ++lev) {
      // Stages 1 + 2 in one dispatch: a worker only touches rows in its
      // own tin stripe.
      pool.run(stripes, [&](unsigned b) {
        const std::size_t lo = bounds[b];
        const std::size_t hi = bounds[b + 1];
        std::fill(acc.begin() + static_cast<std::ptrdiff_t>(lo * k),
                  acc.begin() + static_cast<std::ptrdiff_t>(hi * k),
                  F::zero());
        // Own contributions: odd power sums of incident edge IDs.
        for (const EdgeId e2 : hier.levels[lev]) {
          const auto& ed = aux.g2.edge(e2);
          const std::size_t tu = tin[ed.u];
          const std::size_t tv = tin[ed.v];
          const bool own_u = tu >= lo && tu < hi;
          const bool own_v = tv >= lo && tv < hi;
          if (!own_u && !own_v) continue;
          const F id = EdgeCode<F>::encode(anc2.label(ed.u), anc2.label(ed.v));
          const F id2 = id.square();
          F p = id;
          F* au = own_u ? &acc[tu * k] : nullptr;
          F* av = own_v ? &acc[tv * k] : nullptr;
          for (unsigned j = 0; j < k; ++j) {
            if (au != nullptr) au[j] += p;
            if (av != nullptr) av[j] += p;
            p *= id2;
          }
        }
        // Stripe-local inclusive XOR scan over the tin axis.
        for (std::size_t t = lo + 1; t < hi; ++t) {
          const F* prev = &acc[(t - 1) * k];
          F* curr = &acc[t * k];
          for (unsigned j = 0; j < k; ++j) curr[j] += prev[j];
        }
      });
      // Stage 3a, serial: carry[b] = XOR of stripe totals before b (a
      // stripe's total after the local scan is its last row).
      for (unsigned j = 0; j < k; ++j) carry[j] = F::zero();
      for (unsigned b = 1; b < stripes; ++b) {
        const F* last = &acc[(bounds[b] - 1) * k];
        for (unsigned j = 0; j < k; ++j) {
          carry[static_cast<std::size_t>(b) * k + j] =
              carry[static_cast<std::size_t>(b - 1) * k + j] + last[j];
        }
      }
      // Stage 3b: apply carries; acc now holds the global prefix P[t].
      pool.run(stripes, [&](unsigned b) {
        if (b == 0) return;
        const F* cb = &carry[static_cast<std::size_t>(b) * k];
        for (std::size_t t = bounds[b]; t < bounds[b + 1]; ++t) {
          F* row = &acc[t * k];
          for (unsigned j = 0; j < k; ++j) row[j] += cb[j];
        }
      });
      // Stage 4: per-vertex write-out. Non-root v has tin >= 1 (the root
      // is the unique tin-0 vertex), and each writes a distinct edge row.
      pool.run(stripes, [&](unsigned b) {
        for (VertexId v = static_cast<VertexId>(bounds[b]);
             v < static_cast<VertexId>(bounds[b + 1]); ++v) {
          if (v == aux.t2.root) continue;
          const F* hi_row = &acc[static_cast<std::size_t>(tout[v]) * k];
          const F* lo_row = &acc[(static_cast<std::size_t>(tin[v]) - 1) * k];
          const EdgeId eo = sigma_inv[aux.t2.parent_edge[v]];
          FTC_CHECK(eo != graph::kNoEdge,
                    "T' tree edge without sigma preimage");
          std::uint64_t* out =
              &sketch_data[eo * words_per_edge +
                           static_cast<std::size_t>(lev) * k * wpe];
          for (unsigned j = 0; j < k; ++j) {
            F s = hi_row[j];
            s += lo_row[j];
            for (unsigned w = 0; w < wpe; ++w) out[j * wpe + w] = s.word(w);
          }
        }
      });
    }
  }
};

FtcScheme FtcScheme::build(const graph::Graph& g, const FtcConfig& config) {
  FTC_REQUIRE(g.num_vertices() >= 1, "empty graph");
  FTC_REQUIRE(graph::is_connected(g), "input graph must be connected");
  const auto t0 = std::chrono::steady_clock::now();

  auto impl = std::make_unique<Impl>();
  impl->orig_n = g.num_vertices();
  impl->orig_m = g.num_edges();

  // One parked pool for the whole build; every phase partitions its
  // output disjointly (or folds XOR-commutative sums), so the store
  // bytes are independent of the worker count.
  util::WorkerPool pool(util::WorkerPool::resolve_threads(config.build_threads));
  impl->stats.threads = pool.default_active();

  const graph::SpanningTree t = graph::bfs_spanning_tree(g, 0);
  const graph::AuxGraph aux = graph::build_aux_graph(g, t);
  const graph::EulerTour et2 = graph::euler_tour(aux.t2);
  const graph::AncestryLabeling anc2(aux.t2, et2);
  const std::uint32_t n_aux = aux.g2.num_vertices();

  // Field selection.
  FieldKind field = config.field;
  if (field == FieldKind::kAuto) {
    field = EdgeCode<gf::GF2_64>::fits(n_aux) ? FieldKind::kGF64
                                              : FieldKind::kGF128;
  }
  if (field == FieldKind::kGF64) {
    FTC_REQUIRE(EdgeCode<gf::GF2_64>::fits(n_aux),
                "auxiliary graph too large for GF(2^64) edge IDs");
  } else {
    FTC_REQUIRE(EdgeCode<gf::GF2_128>::fits(n_aux),
                "auxiliary graph too large for GF(2^128) edge IDs");
  }

  // Hierarchy over the auxiliary graph's non-tree edges.
  const auto th = std::chrono::steady_clock::now();
  const auto points = geometry::map_nontree_edges(aux.g2, aux.t2, et2);
  geometry::EdgeHierarchy hier =
      geometry::build_hierarchy(points, hierarchy_config(config), &pool);
  // Drop the trailing empty level: it carries no sketch content.
  FTC_CHECK(!hier.levels.empty() && hier.levels.back().empty(),
            "hierarchy must terminate with the empty set");
  if (hier.levels.size() > 1 || !points.empty()) {
    hier.levels.pop_back();
  }
  if (hier.levels.empty()) {
    hier.levels.push_back({});  // tree input: keep one (empty) level
  }
  impl->stats.hierarchy_seconds = seconds_since(th);

  impl->params.field_bits = (field == FieldKind::kGF64) ? 64 : 128;
  impl->params.n_aux = n_aux;
  impl->params.k = resolve_k(config, n_aux, points.size());
  impl->params.num_levels = static_cast<std::uint32_t>(hier.levels.size());
  impl->params.kind = static_cast<std::uint8_t>(config.kind);
  impl->level_pops.reserve(hier.levels.size());
  for (const auto& level : hier.levels) {
    impl->level_pops.push_back(static_cast<std::uint32_t>(
        std::min<std::size_t>(level.size(), impl->params.k)));
  }

  // Ancestry parts of the labels.
  impl->vertex_anc.reserve(impl->orig_n);
  for (VertexId v = 0; v < impl->orig_n; ++v) {
    impl->vertex_anc.push_back(anc2.label(v));
  }
  impl->edge_upper.resize(impl->orig_m);
  impl->edge_lower.resize(impl->orig_m);
  for (EdgeId e = 0; e < impl->orig_m; ++e) {
    const EdgeId te = aux.sigma[e];
    const VertexId lo = aux.t2.lower_endpoint(aux.g2, te);
    const VertexId up = aux.t2.parent[lo];
    impl->edge_lower[e] = anc2.label(lo);
    impl->edge_upper[e] = anc2.label(up);
  }

  // Sketch payload.
  // Wall-clock on the coordinating thread (NOT summed per-worker CPU):
  // parallel and serial builds report comparable phase timings.
  const auto ts = std::chrono::steady_clock::now();
  if (field == FieldKind::kGF64) {
    impl->build_sketches<gf::GF2_64>(aux, anc2, hier, pool);
  } else {
    impl->build_sketches<gf::GF2_128>(aux, anc2, hier, pool);
  }
  impl->stats.sketch_seconds = seconds_since(ts);

  impl->stats.k = impl->params.k;
  impl->stats.num_levels = impl->params.num_levels;
  impl->stats.field_bits = impl->params.field_bits;
  impl->stats.n_aux = n_aux;
  impl->stats.hierarchy_edges = hier.total_edges();
  impl->stats.total_seconds = seconds_since(t0);
  return FtcScheme(std::move(impl));
}

FtcScheme::FtcScheme(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
FtcScheme::FtcScheme(FtcScheme&&) noexcept = default;
FtcScheme& FtcScheme::operator=(FtcScheme&&) noexcept = default;
FtcScheme::~FtcScheme() = default;

VertexLabel FtcScheme::vertex_label(VertexId v) const {
  FTC_REQUIRE(v < impl_->orig_n, "vertex out of range");
  return VertexLabel{impl_->params, impl_->vertex_anc[v]};
}

EdgeLabel FtcScheme::edge_label(EdgeId e) const {
  FTC_REQUIRE(e < impl_->orig_m, "edge out of range");
  EdgeLabel label;
  label.params = impl_->params;
  label.upper = impl_->edge_upper[e];
  label.lower = impl_->edge_lower[e];
  const auto begin =
      impl_->sketch_data.begin() + static_cast<std::ptrdiff_t>(
                                       e * impl_->words_per_edge);
  label.sketch_words.assign(begin,
                            begin + static_cast<std::ptrdiff_t>(
                                        impl_->words_per_edge));
  return label;
}

std::span<const std::uint32_t> FtcScheme::level_populations() const {
  return impl_->level_pops;
}

graph::VertexId FtcScheme::num_vertices() const { return impl_->orig_n; }
graph::EdgeId FtcScheme::num_edges() const { return impl_->orig_m; }
const LabelParams& FtcScheme::params() const { return impl_->params; }
const BuildStats& FtcScheme::build_stats() const { return impl_->stats; }

std::size_t FtcScheme::vertex_label_bits() const {
  return VertexLabel{impl_->params, {}}.size_bits();
}

std::size_t FtcScheme::edge_label_bits() const {
  EdgeLabel label;
  label.params = impl_->params;
  return label.size_bits();
}

std::size_t FtcScheme::total_label_bits() const {
  return vertex_label_bits() * impl_->orig_n +
         edge_label_bits() * impl_->orig_m;
}

}  // namespace ftc::core
