#include "core/ftc_scheme.hpp"

#include <algorithm>
#include <chrono>

#include "core/edge_code.hpp"
#include "geometry/netfind.hpp"
#include "geometry/point_map.hpp"
#include "graph/aux_graph.hpp"
#include "graph/euler_tour.hpp"
#include "graph/spanning_tree.hpp"
#include "sketch/rs_sketch.hpp"

namespace ftc::core {

using graph::EdgeId;
using graph::VertexId;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

geometry::HierarchyConfig hierarchy_config(const FtcConfig& cfg) {
  geometry::HierarchyConfig h;
  switch (cfg.kind) {
    case SchemeKind::kDeterministic:
      h.kind = geometry::HierarchyKind::kDeterministicNetFind;
      h.group_len = cfg.group_len;
      break;
    case SchemeKind::kDeterministicGreedy:
      h.kind = geometry::HierarchyKind::kDeterministicGreedy;
      break;
    case SchemeKind::kRandomized:
      h.kind = geometry::HierarchyKind::kRandomSampling;
      h.seed = cfg.seed;
      break;
  }
  return h;
}

unsigned resolve_k(const FtcConfig& cfg, std::size_t n_aux,
                   std::size_t num_points) {
  if (cfg.k_override != 0) return cfg.k_override;
  if (cfg.k_mode == KMode::kProvable) {
    if (cfg.kind == SchemeKind::kRandomized) {
      return geometry::randomized_hierarchy_k(cfg.f, n_aux);
    }
    const unsigned gl =
        cfg.group_len != 0
            ? cfg.group_len
            : geometry::provable_group_len(std::max<std::size_t>(num_points, 2));
    return geometry::provable_hierarchy_k(cfg.f, gl);
  }
  const unsigned logn =
      std::max(1u, ceil_log2(std::max<std::size_t>(n_aux, 2)));
  const double k = cfg.k_scale * (cfg.f + 1) * logn;
  return std::max(4u, static_cast<unsigned>(k));
}

}  // namespace

struct FtcScheme::Impl {
  LabelParams params;
  BuildStats stats;
  VertexId orig_n = 0;
  EdgeId orig_m = 0;
  // Per original vertex: T'-ancestry label.
  std::vector<graph::AncestryLabel> vertex_anc;
  // Per original edge: sigma-image endpoints in T'.
  std::vector<graph::AncestryLabel> edge_upper;
  std::vector<graph::AncestryLabel> edge_lower;
  // Per original edge: num_levels * k field elements as raw words,
  // level-major then syndrome index, each F::kWords words.
  std::size_t words_per_edge = 0;
  std::vector<std::uint64_t> sketch_data;
  // Per level: edge population clamped to k (sound boundary-size bound).
  std::vector<std::uint32_t> level_pops;

  // Computes, per hierarchy level, every T'-vertex's outdetect label (XOR
  // of incident level-edge IDs) and aggregates subtree sums bottom-up; the
  // sum below sigma(e)'s lower endpoint is recorded as e's level sketch
  // (Lemma 1 / Proposition 4).
  template <typename F>
  void build_sketches(const graph::AuxGraph& aux,
                      const graph::AncestryLabeling& anc2,
                      const geometry::EdgeHierarchy& hier) {
    const VertexId n2 = aux.g2.num_vertices();
    const unsigned k = params.k;
    const unsigned levels = params.num_levels;
    constexpr unsigned wpe = F::kWords;
    words_per_edge = static_cast<std::size_t>(levels) * k * wpe;
    sketch_data.assign(words_per_edge * orig_m, 0);

    // Map T'-tree-edge -> original edge (sigma is a bijection onto T').
    std::vector<EdgeId> sigma_inv(aux.g2.num_edges(), graph::kNoEdge);
    for (EdgeId e = 0; e < orig_m; ++e) sigma_inv[aux.sigma[e]] = e;

    // Post-order over T': children strictly before parents.
    std::vector<VertexId> post;
    post.reserve(n2);
    {
      std::vector<VertexId> stack{aux.t2.root};
      while (!stack.empty()) {
        const VertexId u = stack.back();
        stack.pop_back();
        post.push_back(u);
        for (const VertexId c : aux.t2.children[u]) stack.push_back(c);
      }
      std::reverse(post.begin(), post.end());
    }

    std::vector<F> acc(static_cast<std::size_t>(n2) * k);
    for (unsigned lev = 0; lev < levels; ++lev) {
      std::fill(acc.begin(), acc.end(), F::zero());
      // Per-vertex own contribution: odd power sums of incident edge IDs.
      for (const EdgeId e2 : hier.levels[lev]) {
        const auto& ed = aux.g2.edge(e2);
        const F id = EdgeCode<F>::encode(anc2.label(ed.u), anc2.label(ed.v));
        const F id2 = id.square();
        F p = id;
        F* au = &acc[static_cast<std::size_t>(ed.u) * k];
        F* av = &acc[static_cast<std::size_t>(ed.v) * k];
        for (unsigned j = 0; j < k; ++j) {
          au[j] += p;
          av[j] += p;
          p *= id2;
        }
      }
      // Bottom-up: when v is reached its accumulator already holds the
      // full subtree sum (children were processed earlier). Record it as
      // the level sketch of sigma^{-1}(parent edge of v), then push it
      // into the parent.
      for (const VertexId v : post) {
        if (v == aux.t2.root) continue;
        const F* av = &acc[static_cast<std::size_t>(v) * k];
        const EdgeId eo = sigma_inv[aux.t2.parent_edge[v]];
        FTC_CHECK(eo != graph::kNoEdge, "T' tree edge without sigma preimage");
        std::uint64_t* out = &sketch_data[eo * words_per_edge +
                                          static_cast<std::size_t>(lev) * k *
                                              wpe];
        for (unsigned j = 0; j < k; ++j) {
          for (unsigned w = 0; w < wpe; ++w) out[j * wpe + w] = av[j].word(w);
        }
        F* ap = &acc[static_cast<std::size_t>(aux.t2.parent[v]) * k];
        for (unsigned j = 0; j < k; ++j) ap[j] += av[j];
      }
    }
  }
};

FtcScheme FtcScheme::build(const graph::Graph& g, const FtcConfig& config) {
  FTC_REQUIRE(g.num_vertices() >= 1, "empty graph");
  FTC_REQUIRE(graph::is_connected(g), "input graph must be connected");
  const auto t0 = std::chrono::steady_clock::now();

  auto impl = std::make_unique<Impl>();
  impl->orig_n = g.num_vertices();
  impl->orig_m = g.num_edges();

  const graph::SpanningTree t = graph::bfs_spanning_tree(g, 0);
  const graph::AuxGraph aux = graph::build_aux_graph(g, t);
  const graph::EulerTour et2 = graph::euler_tour(aux.t2);
  const graph::AncestryLabeling anc2(aux.t2, et2);
  const std::uint32_t n_aux = aux.g2.num_vertices();

  // Field selection.
  FieldKind field = config.field;
  if (field == FieldKind::kAuto) {
    field = EdgeCode<gf::GF2_64>::fits(n_aux) ? FieldKind::kGF64
                                              : FieldKind::kGF128;
  }
  if (field == FieldKind::kGF64) {
    FTC_REQUIRE(EdgeCode<gf::GF2_64>::fits(n_aux),
                "auxiliary graph too large for GF(2^64) edge IDs");
  } else {
    FTC_REQUIRE(EdgeCode<gf::GF2_128>::fits(n_aux),
                "auxiliary graph too large for GF(2^128) edge IDs");
  }

  // Hierarchy over the auxiliary graph's non-tree edges.
  const auto th = std::chrono::steady_clock::now();
  const auto points = geometry::map_nontree_edges(aux.g2, aux.t2, et2);
  geometry::EdgeHierarchy hier =
      geometry::build_hierarchy(points, hierarchy_config(config));
  // Drop the trailing empty level: it carries no sketch content.
  FTC_CHECK(!hier.levels.empty() && hier.levels.back().empty(),
            "hierarchy must terminate with the empty set");
  if (hier.levels.size() > 1 || !points.empty()) {
    hier.levels.pop_back();
  }
  if (hier.levels.empty()) {
    hier.levels.push_back({});  // tree input: keep one (empty) level
  }
  impl->stats.hierarchy_seconds = seconds_since(th);

  impl->params.field_bits = (field == FieldKind::kGF64) ? 64 : 128;
  impl->params.n_aux = n_aux;
  impl->params.k = resolve_k(config, n_aux, points.size());
  impl->params.num_levels = static_cast<std::uint32_t>(hier.levels.size());
  impl->params.kind = static_cast<std::uint8_t>(config.kind);
  impl->level_pops.reserve(hier.levels.size());
  for (const auto& level : hier.levels) {
    impl->level_pops.push_back(static_cast<std::uint32_t>(
        std::min<std::size_t>(level.size(), impl->params.k)));
  }

  // Ancestry parts of the labels.
  impl->vertex_anc.reserve(impl->orig_n);
  for (VertexId v = 0; v < impl->orig_n; ++v) {
    impl->vertex_anc.push_back(anc2.label(v));
  }
  impl->edge_upper.resize(impl->orig_m);
  impl->edge_lower.resize(impl->orig_m);
  for (EdgeId e = 0; e < impl->orig_m; ++e) {
    const EdgeId te = aux.sigma[e];
    const VertexId lo = aux.t2.lower_endpoint(aux.g2, te);
    const VertexId up = aux.t2.parent[lo];
    impl->edge_lower[e] = anc2.label(lo);
    impl->edge_upper[e] = anc2.label(up);
  }

  // Sketch payload.
  const auto ts = std::chrono::steady_clock::now();
  if (field == FieldKind::kGF64) {
    impl->build_sketches<gf::GF2_64>(aux, anc2, hier);
  } else {
    impl->build_sketches<gf::GF2_128>(aux, anc2, hier);
  }
  impl->stats.sketch_seconds = seconds_since(ts);

  impl->stats.k = impl->params.k;
  impl->stats.num_levels = impl->params.num_levels;
  impl->stats.field_bits = impl->params.field_bits;
  impl->stats.n_aux = n_aux;
  impl->stats.hierarchy_edges = hier.total_edges();
  impl->stats.total_seconds = seconds_since(t0);
  return FtcScheme(std::move(impl));
}

FtcScheme::FtcScheme(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
FtcScheme::FtcScheme(FtcScheme&&) noexcept = default;
FtcScheme& FtcScheme::operator=(FtcScheme&&) noexcept = default;
FtcScheme::~FtcScheme() = default;

VertexLabel FtcScheme::vertex_label(VertexId v) const {
  FTC_REQUIRE(v < impl_->orig_n, "vertex out of range");
  return VertexLabel{impl_->params, impl_->vertex_anc[v]};
}

EdgeLabel FtcScheme::edge_label(EdgeId e) const {
  FTC_REQUIRE(e < impl_->orig_m, "edge out of range");
  EdgeLabel label;
  label.params = impl_->params;
  label.upper = impl_->edge_upper[e];
  label.lower = impl_->edge_lower[e];
  const auto begin =
      impl_->sketch_data.begin() + static_cast<std::ptrdiff_t>(
                                       e * impl_->words_per_edge);
  label.sketch_words.assign(begin,
                            begin + static_cast<std::ptrdiff_t>(
                                        impl_->words_per_edge));
  return label;
}

std::span<const std::uint32_t> FtcScheme::level_populations() const {
  return impl_->level_pops;
}

graph::VertexId FtcScheme::num_vertices() const { return impl_->orig_n; }
graph::EdgeId FtcScheme::num_edges() const { return impl_->orig_m; }
const LabelParams& FtcScheme::params() const { return impl_->params; }
const BuildStats& FtcScheme::build_stats() const { return impl_->stats; }

std::size_t FtcScheme::vertex_label_bits() const {
  return VertexLabel{impl_->params, {}}.size_bits();
}

std::size_t FtcScheme::edge_label_bits() const {
  EdgeLabel label;
  label.params = impl_->params;
  return label.size_bits();
}

std::size_t FtcScheme::total_label_bits() const {
  return vertex_label_bits() * impl_->orig_n +
         edge_label_bits() * impl_->orig_m;
}

}  // namespace ftc::core
