// ShardCache: the digest-verified, byte-capacity-capped LRU staging
// area between a ShardSource and the mmap-serving store views.
//
// A RemoteStoreView never maps network bytes directly: every shard is
// fetched into this cache, verified against its manifest record (exact
// file size AND FNV-1a payload digest — the same digest the shard
// writer computed), atomically published under a content-addressed
// name, and only then mmapped. The cache directory therefore holds
// verbatim shard containers keyed by payload digest: any file in it is
// a complete, checksummed .ftcs container that fsck, cp, or a later
// process can use directly.
//
// Content addressing ("shard-<digest>-<bytes>.ftcs") is what makes the
// cache safe to share across epochs and processes: a delta-pushed child
// epoch reuses the parent's unchanged shards as cache HITS because the
// key depends only on the bytes, not on the manifest that referenced
// them. It also makes verification idempotent — a cached file was
// verified when published, so a hit needs no re-hash.
//
// Eviction is strict LRU by last use under a byte budget. Evicting
// unlinks the file; per POSIX an unlinked-but-mapped file stays fully
// readable until the last mapping drops, so eviction NEVER invalidates
// a store view currently serving that shard — the bytes only die with
// the mmap. The budget therefore bounds directory size, not resident
// memory of live views.
//
// Thread safety: all public methods are safe to call concurrently.
// Concurrent fetches of the same shard collapse to one transfer
// (single-flight); fetch/evict/query interleavings are exercised by the
// TSan leg of scripts/ci.sh.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sharded_store.hpp"
#include "core/shard_source.hpp"

namespace ftc::core {

// Monotonic counters, snapshot via ShardCache::stats(). hits/misses
// count fetch_shard() outcomes; bytes_resident/entries describe the
// directory right now.
struct ShardCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes_fetched = 0;
  std::uint64_t bytes_evicted = 0;
  std::uint64_t bytes_resident = 0;
  std::uint64_t entries = 0;
};

class ShardCache {
 public:
  // Creates `dir` (and parents) if missing and adopts any shard files
  // already present from a previous process, oldest-accessed first in
  // LRU order. max_bytes == 0 means "no budget" (nothing evicts).
  ShardCache(std::string dir, std::uint64_t max_bytes);

  ShardCache(const ShardCache&) = delete;
  ShardCache& operator=(const ShardCache&) = delete;

  // Returns the local path of a verified copy of `rec`'s shard,
  // fetching through `source` on a miss. The returned file is complete
  // and digest-verified; callers mmap it like any local shard. Throws
  // StoreIoError when the transfer fails or the fetched bytes do not
  // match the record (both transient: the origin may be mid-republish),
  // StoreError for structural source failures (object absent).
  std::string fetch_shard(const ShardSource& source,
                          const store::ShardRecord& rec);

  // Stores an arbitrary verified blob (manifest, journal sidecar) under
  // a content-addressed name derived from `stem` and the blob digest.
  // Not LRU-tracked — these are tiny metadata files, and evicting a
  // manifest out from under an about-to-open view would be a
  // self-inflicted failure. Returns the local path.
  std::string put_blob(const std::string& stem,
                       std::span<const std::uint8_t> bytes);

  // True when the shard with this (payload digest, size) key is
  // resident right now. Test/introspection hook; racing evictions make
  // the answer advisory.
  bool contains(std::uint64_t payload_digest, std::uint64_t file_bytes) const;

  ShardCacheStats stats() const;
  const std::string& dir() const { return dir_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string key;           // file name inside dir_
    std::uint64_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  static std::string shard_key(const store::ShardRecord& rec);

  // Moves key to the MRU end (touching its atime on disk) — caller
  // holds mu_.
  void touch_locked(std::unordered_map<std::string, LruList::iterator>::iterator it);
  // Unlinks LRU entries until resident <= budget; `keep` is never
  // evicted (the path being returned right now). Caller holds mu_.
  void evict_locked(const std::string& keep);

  std::string dir_;            // includes trailing slash
  std::uint64_t max_bytes_;

  mutable std::mutex mu_;
  std::condition_variable inflight_cv_;
  std::set<std::string> inflight_;                 // keys being fetched
  LruList lru_;                                    // front = LRU, back = MRU
  std::unordered_map<std::string, LruList::iterator> index_;
  std::uint64_t resident_bytes_ = 0;
  ShardCacheStats counters_;   // hits/misses/evictions/bytes_*
};

// Process-wide cache used by RemoteStoreView when the caller does not
// supply one. Created on first use from the environment:
//   FTC_CACHE_DIR    cache directory (default: $TMPDIR or /tmp, plus
//                    "/ftc-shard-cache-<uid>")
//   FTC_CACHE_BYTES  byte budget (default 256 MiB; 0 = unlimited)
std::shared_ptr<ShardCache> default_remote_cache();

// Replaces the process-wide cache (tests; pass nullptr to reset to
// env-derived on next use). Returns the previous cache.
std::shared_ptr<ShardCache> set_default_remote_cache(
    std::shared_ptr<ShardCache> cache);

}  // namespace ftc::core
