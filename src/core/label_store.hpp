// LabelStore: a durable, versioned on-disk container for a whole
// labeling scheme, and the zero-copy read path that serves queries
// straight from the file.
//
// The labeling-scheme model (Section 1.1) makes labels *artifacts*: they
// are computed once from the graph, after which every query is answered
// from the labels alone. This subsystem takes that seriously as a
// deployment story — labels are built offline, written as one
// self-describing binary file, and served by mmap without ever
// materializing per-label std::vector copies on the query path (only the
// <= f fault-edge labels of a session are decoded, once per fault set).
//
// Container format, version 2 (all integers little-endian):
//
//   header (64 bytes)
//     0   u64  magic "FTCSTORE"
//     8   u32  format version (2)
//     12  u8   BackendKind
//     13  u8   flags (bit 0: adjacency section present), u8[2] reserved
//     16  u64  num_vertices
//     24  u64  num_edges
//     32  u64  params blob size in bytes
//     40  u64  payload checksum: FNV-1a over bytes [64, file end)
//     48  u64  adjacency section size in bytes (0 when absent)
//     56  u64  header checksum: FNV-1a over bytes [0, 56)
//   params blob          backend-specific scheme parameters; for the core
//                        backend v2 appends per-level sketch population
//                        bounds (u32 count + count u32 values) so served
//                        schemes shrink their decode windows like the
//                        in-memory builder does
//   (pad to 8)
//   vertex section       num_vertices fixed 8-byte records (tin, tout)
//   (pad to 8)
//   edge offset index    (num_edges + 1) u64, byte offsets into the blob
//                        section; blob e spans [index[e], index[e+1])
//   edge blob section    concatenated per-edge label blobs
//   (pad to 8)
//   adjacency section    optional incidence side-table in CSR layout:
//                        (num_vertices + 1) u64 entry offsets, then the
//                        concatenated incidence lists as u32 edge IDs
//                        (2 * num_edges entries total). Carrying it is
//                        what lets store-served schemes answer vertex-
//                        and mixed-fault queries (the vertex -> incident-
//                        edges reduction needs incidence).
//
// Version 1 files (no flags byte semantics, no adjacency, core params
// without bounds) still load read-compatibly: edge-fault queries behave
// exactly as they always did, and vertex-fault queries raise the typed
// CapabilityError because the container carries no adjacency.
//
// Versioning policy: the format version is bumped on any layout change;
// readers accept versions [1, 2] and reject anything else (no silent
// best-effort parsing). Every structural property — magic, both
// checksums, section bounds, index monotonicity, blob sizes implied by
// the params, adjacency offset monotonicity and edge-ID ranges — is
// validated at open, and every read is bounds-checked, so corrupt or
// adversarial files throw StoreError and never invoke UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/connectivity_scheme.hpp"
#include "util/digest.hpp"
#include "util/sigbus_guard.hpp"

namespace ftc::core {

// Typed error for every container failure mode: I/O errors, truncated
// files, bad magic, unsupported versions, checksum mismatches, malformed
// indices. Distinct from std::invalid_argument (API misuse) so servers
// can map "bad artifact" separately from "bad request".
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

// Environmental I/O failure: a syscall failing on the open/map/write
// path (including injected failpoint errnos) or a SIGBUS translated
// from a mapping whose backing file was truncated or replaced. Distinct
// from structural StoreError (bad magic, checksum mismatch, malformed
// index — re-reading won't help) because the sharded view's retry
// layer treats only THIS subclass as transient and retryable.
class StoreIoError : public StoreError {
 public:
  explicit StoreIoError(const std::string& what) : StoreError(what) {}
};

namespace store {

// Written format version; readers accept [kMinFormatVersion, kFormatVersion].
inline constexpr std::uint64_t kFormatVersion = 2;
inline constexpr std::uint64_t kMinFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 64;
// "FTCSTORE" read as a little-endian u64.
inline constexpr std::uint64_t kMagic = 0x45524F5453435446ULL;
// Header flags byte (offset 13).
inline constexpr std::uint8_t kFlagHasAdjacency = 0x01;

// FNV-1a over a byte range (seedable so checksums can be streamed).
// The implementation lives in util/digest.hpp — one digest shared by
// containers, manifests, journals and the remote shard cache.
using util::fnv1a;
using util::kFnvBasis;

// Little-endian byte sink used by the container writer and the
// per-backend label blob encoders.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
  }
  void bytes(std::span<const std::uint8_t> b) {
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }
  void pad_to(std::size_t alignment) {
    while (bytes_.size() % alignment != 0) bytes_.push_back(0);
  }
  // Overwrite a previously written u64 (header checksum back-patching).
  void patch_u64(std::size_t offset, std::uint64_t v) {
    FTC_CHECK(offset + 8 <= bytes_.size(), "patch out of range");
    for (int i = 0; i < 8; ++i) bytes_[offset + i] = (v >> (8 * i)) & 0xff;
  }

  std::size_t size() const { return bytes_.size(); }
  std::span<const std::uint8_t> view() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Bounds-checked little-endian reader over a mapped (or in-memory) byte
// range. Out-of-range reads throw StoreError — this is the only way the
// decoders touch file bytes, so truncation can never read past the map.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    // Explicit little-endian assembly, mirroring ByteWriter: the
    // container format is LE regardless of host byte order.
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[i]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
    return v;
  }
  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > bytes_.size() - pos_) {
      throw StoreError("label store blob truncated");
    }
    const auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Per-backend blob codecs (implemented next to the per-label bit codec
// in serialize.cpp). Each backend has a params blob stored once per
// container plus fixed-size vertex/edge blobs; decode validates against
// the params and throws StoreError on any inconsistency.

struct CycleParams {
  std::uint32_t coord_bits = 0;
  std::uint32_t vector_bits = 0;
  std::size_t vector_words() const { return (vector_bits + 63) / 64; }
};

struct AgmParams {
  std::uint32_t coord_bits = 0;
  std::uint32_t levels = 0;
  std::uint32_t reps = 0;
  std::uint64_t seed = 0;
  std::size_t sketch_words() const {
    return static_cast<std::size_t>(levels) * reps * 3;
  }
};

// Core params carry the optional per-level sketch population bounds in
// format v2 (u32 count — 0 or num_levels — then the values); v1 blobs
// have no bounds fields at all, so decode needs the container version.
// bounds_out may be null when the caller only needs the fixed params.
void encode_core_params(const LabelParams& p,
                        std::span<const std::uint32_t> level_bounds,
                        ByteWriter& w);
LabelParams decode_core_params(ByteReader& r, std::uint32_t format_version,
                               std::vector<std::uint32_t>* bounds_out = nullptr);
void encode_cycle_params(const CycleParams& p, ByteWriter& w);
CycleParams decode_cycle_params(ByteReader& r);
void encode_agm_params(const AgmParams& p, ByteWriter& w);
AgmParams decode_agm_params(ByteReader& r);

// Vertex records are the same for all backends: one ancestry label.
inline constexpr std::size_t kVertexRecordBytes = 8;
void encode_vertex_record(const graph::AncestryLabel& anc, ByteWriter& w);
graph::AncestryLabel decode_vertex_record(ByteReader& r);
// Zero-copy decode of one fixed 8-byte vertex record (LE tin, tout)
// straight from a resolved route pointer — the per-query hot path.
inline graph::AncestryLabel decode_vertex_record_at(const std::uint8_t* p) {
  graph::AncestryLabel anc;
  for (int i = 0; i < 4; ++i) anc.tin |= std::uint32_t{p[i]} << (8 * i);
  for (int i = 0; i < 4; ++i) anc.tout |= std::uint32_t{p[4 + i]} << (8 * i);
  return anc;
}

void encode_core_edge(const EdgeLabel& label, ByteWriter& w);
EdgeLabel decode_core_edge(ByteReader& r, const LabelParams& params);
void encode_cycle_edge(const dp21::CsEdgeLabel& label, ByteWriter& w);
dp21::CsEdgeLabel decode_cycle_edge(ByteReader& r, const CycleParams& params);
void encode_agm_edge(const dp21::AgmEdgeLabel& label, ByteWriter& w);
dp21::AgmEdgeLabel decode_agm_edge(ByteReader& r, const AgmParams& params);

// Fixed per-edge blob size implied by a backend's params (every edge
// label of one scheme serializes to the same number of bytes).
std::size_t core_edge_blob_bytes(const LabelParams& params);
std::size_t cycle_edge_blob_bytes(const CycleParams& params);
std::size_t agm_edge_blob_bytes(const AgmParams& params);

// Decodes the params blob just far enough to answer "how many bytes is
// one edge blob" / "how many bits is one label" for any backend; both
// throw StoreError when the blob is inconsistent with the backend. Used
// by the container reader to cross-check the offset index and by the
// sharded-manifest reader (sharded_store.hpp), which carries the params
// blob itself.
std::size_t expected_edge_blob_bytes(BackendKind backend,
                                     std::span<const std::uint8_t> params,
                                     std::uint32_t version);
struct StoreLabelBits {
  std::size_t vertex_label_bits = 0;
  std::size_t edge_label_bits = 0;
};
StoreLabelBits derive_label_bits(BackendKind backend,
                                 std::span<const std::uint8_t> params,
                                 std::uint32_t version);

// Generation-resolved flat route table: one pointer per vertex record
// and per edge blob, straight into the (already open and validated)
// mapping(s). Resolving routing ONCE — at container open for a flat
// store, or when the last shard of a sharded store is mapped — replaces
// the per-query virtual dispatch + binary-search + lazy-open check with
// a single array deref, so a K-shard store serves at flat-container
// speed. Pointers stay valid for the lifetime of the StoreView that
// published the table. Cost is 16 bytes per ID; a page-granular variant
// (shard+offset per fixed-size ID page) is the follow-on if that ever
// dominates label bytes.
struct FlatRoutes {
  graph::VertexId num_vertices = 0;
  graph::EdgeId num_edges = 0;
  std::size_t edge_blob_bytes = 0;  // fixed width implied by the params
  std::vector<const std::uint8_t*> vertex_ptr;  // [n] 8-byte records
  std::vector<const std::uint8_t*> edge_ptr;    // [m] label blobs
};

// What one prefetch() call did: thread fan-out, wall time, and the
// per-shard map+digest cost (empty for single-container views; 0 for a
// shard that was already mapped when the call claimed it).
struct PrefetchStats {
  unsigned threads = 1;
  double total_us = 0.0;
  std::size_t shards_opened = 0;  // newly mapped by this call
  // Shards this view ADOPTED from a previous-generation view at open()
  // instead of mapping — byte-identical shards of a delta push
  // (open_store_view's reuse_from parameter). Constant per view, reported
  // by every prefetch() call on it; such shards never count in
  // shards_opened.
  std::size_t shards_adopted = 0;
  std::vector<double> shard_us;  // per shard, manifest order
};

// The CSR adjacency side-table layout shared by container v2 and the
// sharded-store manifest: (n + 1) u64 entry offsets followed by 2m u32
// edge IDs. validate() enforces the full structural contract (exact
// size, offsets monotone and covering exactly 2m entries, every edge ID
// in range) and throws StoreError; degree()/append() are only legal
// after a successful validate().
struct CsrAdjacency {
  const std::uint8_t* base = nullptr;  // file mapping
  std::size_t off = 0;                 // section start within the mapping
  std::size_t bytes = 0;               // recorded section size
  graph::VertexId n = 0;
  graph::EdgeId m = 0;

  void validate(const std::string& path) const;
  std::size_t degree(graph::VertexId v) const;
  void append(graph::VertexId v, std::vector<graph::EdgeId>& out) const;
};

// Serializes one container holding the scheme's labels restricted to
// the given vertex/edge ranges — the whole scheme for save(), one shard
// for save_sharded() (sharded_store.hpp). include_adjacency emits the
// CSR side-table when the scheme carries one and requires the full
// ranges (the lists name global edge IDs); shard containers pass false —
// the manifest carries the adjacency instead.
std::vector<std::uint8_t> build_container_bytes(
    const ConnectivityScheme& scheme, graph::VertexId v_begin,
    graph::VertexId v_end, graph::EdgeId e_begin, graph::EdgeId e_end,
    bool include_adjacency);

// The CSR adjacency section bytes for a scheme, or empty when it
// carries no adjacency. Shared by the container writer above and the
// manifest writer (sharded_store.cpp).
std::vector<std::uint8_t> build_adjacency_section(
    const ConnectivityScheme& scheme);

// Identity of one serialized container: enough to decide delta-push
// shard reuse (sharded_store.cpp) without writing — or even fully
// materializing — the container.
struct ContainerDigest {
  std::uint64_t file_bytes = 0;
  // FNV-1a over bytes [kHeaderBytes, file end), as stored at header
  // offset 40.
  std::uint64_t payload_checksum = 0;
};

// Streams the container for the given ranges straight to `path`: label
// records are serialized in bounded chunks and written as they are
// produced, so peak writer memory is O(chunk), not O(container). The
// bytes, the temp-file + fsync + rename atomicity protocol, and the
// store.write.* failpoint sites are IDENTICAL to build_container_bytes
// + write_file_atomic (one shared emitter produces both). Returns the
// written container's digest. Throws StoreIoError on I/O failure, with
// the temp file removed.
ContainerDigest write_container_streamed(const ConnectivityScheme& scheme,
                                         const std::string& path,
                                         graph::VertexId v_begin,
                                         graph::VertexId v_end,
                                         graph::EdgeId e_begin,
                                         graph::EdgeId e_end,
                                         bool include_adjacency);

// The digest write_container_streamed would produce, with no file I/O:
// one serialization pass folded directly into the checksum. Used by
// delta pushes to detect byte-identical shards before writing anything.
ContainerDigest digest_container(const ConnectivityScheme& scheme,
                                 graph::VertexId v_begin,
                                 graph::VertexId v_end,
                                 graph::EdgeId e_begin, graph::EdgeId e_end,
                                 bool include_adjacency);

// Durable atomic file write shared by the container and manifest
// writers: unique temp file (per process and per call) + fsync + rename
// into place + best-effort directory fsync, so a crashed, failed or
// racing write never leaves a half-written artifact under the target
// name. Throws StoreError on I/O failure.
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

// Read-only mmap of a regular file, shared by the container and
// manifest readers. Throws StoreIoError when the file cannot be opened,
// stat'ed or mapped, StoreError when it is not regular or smaller than
// min_bytes (`kind` names the artifact in messages). The mapping's
// range is registered with the process-wide SIGBUS translator
// (util/sigbus_guard.hpp); the caller owns the mapping and releases it
// with unmap_file().
struct MappedFile {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};
MappedFile map_readonly(const std::string& path, std::size_t min_bytes,
                        const char* kind);

// munmap + SIGBUS-range unregistration for a map_readonly() mapping.
void unmap_file(const MappedFile& file);

// Runs `fn` — a read-only scan over a registered mapping — under a
// SIGBUS guard: a fault inside the scan (backing file truncated or
// replaced behind the mmap) surfaces as StoreIoError instead of killing
// the process. `fn` should hold no resources while touching mapped
// bytes (siglongjmp skips destructors of frames between the guard and
// the fault); the validation scans this wraps are plain loops.
template <typename Fn>
void with_sigbus_guard(const std::string& path, const char* what, Fn&& fn) {
  util::SigbusGuard guard;
  if (sigsetjmp(guard.jump(), 0) == 0) {
    guard.arm();
    fn();
    return;
  }
  throw StoreIoError(std::string(what) +
                     " read faulted (file truncated or replaced behind the "
                     "mapping): " +
                     path);
}

}  // namespace store

// Parsed header + section accounting of an open store, for inspection
// tooling and sanity assertions.
struct StoreInfo {
  std::uint32_t format_version = 0;
  BackendKind backend = BackendKind::kCoreFtc;
  graph::VertexId num_vertices = 0;
  graph::EdgeId num_edges = 0;
  std::uint64_t payload_checksum = 0;
  std::size_t file_bytes = 0;
  std::size_t params_bytes = 0;
  std::size_t vertex_section_bytes = 0;
  std::size_t edge_index_bytes = 0;
  std::size_t edge_blob_bytes = 0;
  // Format v2: optional adjacency side-table (vertex-fault capability).
  bool has_adjacency = false;
  std::size_t adjacency_bytes = 0;
  // Sharded manifests (sharded_store.hpp): number of shard containers
  // behind this view; 0 for a plain single-container store. When
  // nonzero, file_bytes covers the manifest plus every shard.
  std::uint32_t num_shards = 0;
  // Manifest lineage (format v2 manifests; see sharded_store.hpp).
  // Epoch 1 with parent_digest 0 for full saves and v1 manifests; a
  // delta push writes parent epoch + 1 and the parent manifest's payload
  // checksum. Both 0 for single-container stores.
  std::uint64_t manifest_epoch = 0;
  std::uint64_t parent_digest = 0;
  // Derived from the params blob; match the builder scheme's accounting.
  std::size_t vertex_label_bits = 0;
  std::size_t edge_label_bits = 0;
};

// The read interface every store serving path programs against: a
// validated, immutable view of one scheme's labels. Two implementations:
// LabelStoreView (one mmapped container file, below) and ShardedStoreView
// (a manifest routing over K shard containers, sharded_store.hpp).
// load_scheme() and everything downstream — the label-served backends,
// BatchQueryEngine sessions, ConnectivityOracle::from_store — only ever
// see this interface, so single-file and sharded stores serve queries
// through identical code. Implementations are safe to share across
// threads after a successful open.
class StoreView {
 public:
  virtual ~StoreView() = default;
  StoreView(const StoreView&) = delete;
  StoreView& operator=(const StoreView&) = delete;

  const StoreInfo& info() const { return info_; }
  virtual std::span<const std::uint8_t> params_blob() const = 0;
  virtual std::span<const std::uint8_t> vertex_blob(
      graph::VertexId v) const = 0;
  virtual std::span<const std::uint8_t> edge_blob(graph::EdgeId e) const = 0;

  // Adjacency side-table reads (valid only when info().has_adjacency).
  virtual std::size_t adjacency_degree(graph::VertexId v) const = 0;
  virtual void adjacency_append(graph::VertexId v,
                                std::vector<graph::EdgeId>& out) const = 0;

  // Maps and digest-verifies any lazily-opened backing (every shard of a
  // sharded view) so nothing cold remains on the query path, and
  // publishes the flat route table. threads = 0 picks min(shards,
  // hardware concurrency); work is stolen over shard indices. Idempotent
  // and safe to call concurrently with queries and with lazy first-touch
  // opens; a corrupt shard throws the same typed StoreError the lazy
  // open would. Single-container views are fully mapped and validated at
  // open(), so the base implementation is a no-op.
  virtual store::PrefetchStats prefetch(unsigned threads = 0) const {
    (void)threads;
    return {};
  }

  // The resolved flat route table, or nullptr while part of the backing
  // is still unmapped (a sharded view before prefetch() or before every
  // shard has been lazily touched). Never reverts to nullptr once
  // published; the table lives as long as this view.
  virtual const store::FlatRoutes* routes() const { return nullptr; }

  // Translates a SIGBUS caught inside this view's registered mappings:
  // guarded reads (query-path ancestry reads, prepare-time blob copies)
  // land here with the faulting address. A sharded view attributes the
  // fault to the owning shard, quarantines it, and throws DegradedError
  // naming the unservable ranges; the base and single-container views
  // throw StoreIoError.
  [[noreturn]] virtual void on_mapped_fault(const void* addr) const;

 protected:
  StoreView() = default;
  StoreInfo info_;
};

// Read-only mmap view of a single container file. open() validates the
// complete structure up front (see the format comment); accessors after
// a successful open are zero-copy spans into the mapping and cannot go
// out of bounds. Immutable and safe to share across threads.
class LabelStoreView final : public StoreView {
 public:
  // Maps the file and validates it. verify_checksum=false skips only the
  // full-payload FNV pass (an O(file) read) — every structural check and
  // all per-read bounds checks stay on unconditionally.
  static std::shared_ptr<const LabelStoreView> open(
      const std::string& path, bool verify_checksum = true);

  ~LabelStoreView() override;

  std::span<const std::uint8_t> params_blob() const override;
  std::span<const std::uint8_t> vertex_blob(graph::VertexId v) const override;
  std::span<const std::uint8_t> edge_blob(graph::EdgeId e) const override;

  // Adjacency side-table reads (valid only when info().has_adjacency;
  // offsets were validated monotone and in-range at open).
  std::size_t adjacency_degree(graph::VertexId v) const override;
  void adjacency_append(graph::VertexId v,
                        std::vector<graph::EdgeId>& out) const override;

  // A single container is mapped, validated and route-resolved entirely
  // at open(): prefetch has nothing left to do and routes() is always
  // available.
  const store::FlatRoutes* routes() const override { return &routes_; }

  [[noreturn]] void on_mapped_fault(const void* addr) const override;

  const std::string& path() const { return path_; }

  // Whether addr falls inside this view's mapping — how a sharded view
  // attributes a translated SIGBUS to the owning shard.
  bool contains(const void* addr) const;

 private:
  LabelStoreView() = default;

  std::string path_;
  const std::uint8_t* map_ = nullptr;  // whole file
  std::size_t map_bytes_ = 0;
  std::size_t params_off_ = 0;
  std::size_t vertex_off_ = 0;
  std::size_t index_off_ = 0;
  std::size_t blob_off_ = 0;
  store::CsrAdjacency adj_;  // base == nullptr when no adjacency section
  store::FlatRoutes routes_;  // built at open (the index walk is O(m) anyway)
};

// How load_scheme materializes a store:
//  kMmap        — zero-copy: vertex labels are decoded on the fly from
//                 the mapping (8-byte reads, no allocation) and only the
//                 fault-edge labels of a session are ever materialized.
//  kMaterialize — eager full deserialize of every label into in-memory
//                 vectors (the classical load path; bench baseline).
enum class LoadMode {
  kMmap = 0,
  kMaterialize = 1,
};

struct LoadOptions {
  LoadMode mode = LoadMode::kMmap;
  bool verify_checksum = true;
  // When a "<path>.jrnl" deletion-journal sidecar exists next to the
  // store (journal.hpp), fold its journaled deletions into every query's
  // fault set. Off = serve the store as written, ignoring the sidecar.
  bool replay_journal = true;
};

// Opens a store behind the common StoreView interface, dispatching on
// the file magic: a single-container file yields a LabelStoreView, a
// sharded-store manifest (sharded_store.hpp) yields a ShardedStoreView.
// Implemented in sharded_store.cpp.
std::shared_ptr<const StoreView> open_store_view(const std::string& path,
                                                 bool verify_checksum = true);

// Same, threading a previous-generation view through as a reuse source:
// when both the opened artifact and reuse_from are sharded stores of the
// same backend, shards whose manifests record identical payload digests
// (and sizes and ID extents) are ADOPTED — the new view shares the old
// view's already-open shard mapping instead of re-mapping the file. This
// is the in-process half of a delta push (sharded_store.hpp): after
// save_sharded_delta rewrites 1 of K shards, opening the new manifest
// against the serving view maps exactly 1 shard. reuse_from == nullptr,
// a single-container artifact, or a non-sharded reuse_from all degrade
// to the plain open above.
std::shared_ptr<const StoreView> open_store_view(
    const std::string& path, bool verify_checksum,
    const std::shared_ptr<const StoreView>& reuse_from);

// Reconstructs a ConnectivityScheme from a container file or a sharded
// manifest (dispatching on the magic). The returned scheme answers
// queries through the backend's universal decoder — identical results to
// the scheme that wrote the store — and supports save() (re-emitting a
// single container, even from a sharded source) but, by design, never
// needs the graph. Throws StoreError on any malformed input.
std::unique_ptr<ConnectivityScheme> load_scheme(const std::string& path,
                                                const LoadOptions& options = {});

// Same, over an already-open view (shares the mapping; several schemes
// and threads may serve from one view).
std::unique_ptr<ConnectivityScheme> load_scheme(
    std::shared_ptr<const StoreView> view, LoadMode mode = LoadMode::kMmap);

}  // namespace ftc::core
