// ShardHttpServer: a minimal HTTP/1.1 static file server for shard
// directories — the origin half of the remote tier, built (like the
// client in shard_source.hpp) on plain POSIX sockets with no new
// dependencies.
//
// It exists for two callers: `ftc_store serve <dir> --port N` (a
// self-contained demo/e2e origin), and in-process tests/benches that
// need a loopback origin without forking. It binds 127.0.0.1 ONLY —
// this is a test and intranet-demo origin, not a hardened edge server;
// production serving belongs behind a real static file server, which
// works just as well because the protocol surface the client needs is
// exactly GET/HEAD + Range + Content-Length.
//
// Supported: GET and HEAD, single-range `Range: bytes=a-b` / `bytes=a-`
// (206 + Content-Range), 404 for absent objects, 416 for unsatisfiable
// ranges, keep-alive with `Connection: close` honored. Object names
// resolve under the served directory with the same traversal rules as
// manifest shard names (no "..", no absolute paths).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ftc::core {

class ShardHttpServer {
 public:
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t range_requests = 0;
    std::uint64_t not_found = 0;
    std::uint64_t bytes_sent = 0;
  };

  // Serves files under `dir`. port == 0 picks an ephemeral port
  // (read it back with port() after start()).
  explicit ShardHttpServer(std::string dir, std::uint16_t port = 0);
  ~ShardHttpServer();

  ShardHttpServer(const ShardHttpServer&) = delete;
  ShardHttpServer& operator=(const ShardHttpServer&) = delete;

  // Binds, listens and starts the accept thread. Throws StoreIoError
  // when the port cannot be bound.
  void start();
  // Stops accepting, closes live connections and joins all threads.
  // Idempotent; also called by the destructor.
  void stop();

  std::uint16_t port() const { return port_; }
  // "http://127.0.0.1:<port>/" — prepend to an object name or pass a
  // "<base_url><manifest name>" URL straight to open_store_view.
  std::string base_url() const;

  Stats stats() const;

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::string dir_;  // includes trailing slash
  std::uint16_t port_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  mutable std::mutex mu_;  // guards conn_threads_, conn_fds_, stats_
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  Stats stats_;
};

}  // namespace ftc::core
