// ShardedLabelStore: one labeling scheme split across K container files
// plus a checksummed manifest, served back through the same StoreView
// interface as a single container.
//
// The paper's O(f)-size polylog labels make connectivity queries
// servable from precomputed artifacts; sharding is what lets those
// artifacts outgrow one file. save_sharded() splits a scheme's labels
// across K shards by CONTIGUOUS vertex and edge ranges — shard k holds
// vertex records [vk, vk+1) and edge blobs [ek, ek+1), each shard a
// fully valid format-v2 container in its own right (inspectable and
// loadable with the ordinary tools) — and writes a manifest recording
// the ranges, the params blob, and a per-shard digest. Shards build and
// write in parallel, the first concrete step toward billion-edge stores
// whose labels are produced and distributed shard-by-shard.
//
// Manifest format, version 1 (all integers little-endian):
//
//   header (80 bytes)
//     0   u64  magic "FTCMANIF"
//     8   u32  manifest format version (1)
//     12  u8   BackendKind
//     13  u8   flags (bit 0: adjacency section present), u8[2] reserved
//     16  u64  total num_vertices
//     24  u64  total num_edges
//     32  u64  num_shards (K >= 1)
//     40  u64  params blob size in bytes
//     48  u64  params blob hash (FNV-1a over the params blob bytes;
//              every shard's params blob must match byte-for-byte)
//     56  u64  adjacency section size in bytes (0 when absent)
//     64  u64  payload checksum: FNV-1a over bytes [80, file end)
//     72  u64  header checksum: FNV-1a over bytes [0, 72)
//   params blob          verbatim copy of the (shared) backend params,
//                        so schemes load from the manifest alone without
//                        touching any shard
//   (pad to 8)
//   shard table          K records (see store::ShardRecord): vertex and
//                        edge ranges, expected shard file size, the
//                        shard's payload checksum as its digest, and the
//                        shard's file name relative to the manifest
//   adjacency section    optional CSR incidence side-table, identical
//                        layout and validation to container v2 — carried
//                        by the manifest (not the shards: incidence
//                        lists name global edge IDs), so sharded stores
//                        keep vertex-fault capability
//
// Validation at open: magic, both checksums, version, backend, flags,
// dimension ranges, and the shard table — ranges must tile [0, n) and
// [0, m) exactly (no overlap, no gap), names must be relative paths
// without ".." segments, and every shard file must exist with exactly
// the recorded size. Shards themselves are mmapped LAZILY, on the first
// lookup that routes into them; at that point the shard is opened with
// the full container-v2 validation plus the manifest cross-checks
// (backend, range dimensions, byte-identical params blob, digest). Any
// mismatch throws the typed StoreError.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/label_store.hpp"

namespace ftc::core {

namespace store {

inline constexpr std::uint64_t kManifestFormatVersion = 1;
inline constexpr std::size_t kManifestHeaderBytes = 80;
// "FTCMANIF" read as a little-endian u64.
inline constexpr std::uint64_t kManifestMagic = 0x46494E414D435446ULL;
// Guardrails against absurd shard tables in adversarial manifests.
inline constexpr std::uint64_t kMaxShards = 1u << 20;
inline constexpr std::size_t kMaxShardNameBytes = 4096;

// One shard-table entry. Encoded fixed-prefix + name: six u64 fields,
// u32 name length, name bytes, pad to 8 (codec in serialize.cpp).
struct ShardRecord {
  std::uint64_t vertex_begin = 0;
  std::uint64_t vertex_end = 0;
  std::uint64_t edge_begin = 0;
  std::uint64_t edge_end = 0;
  std::uint64_t file_bytes = 0;       // exact shard file size
  std::uint64_t payload_digest = 0;   // the shard's own payload checksum
  std::string name;                   // relative to the manifest directory
};

void encode_shard_record(const ShardRecord& rec, ByteWriter& w);
ShardRecord decode_shard_record(ByteReader& r);

}  // namespace store

// Writes `scheme` as num_shards containers plus a manifest at
// manifest_path. Shard files land next to the manifest, named
// "<manifest-filename>.shard<k>.ftcs"; each is written atomically, in
// parallel across worker threads, and the manifest is written last — a
// crash mid-save never leaves a manifest naming missing or stale
// shards. num_shards may exceed the vertex/edge counts (the surplus
// shards hold empty ranges). Load the result back with load_scheme() /
// open_store_view() on the manifest path. Throws StoreError on I/O
// failure.
void save_sharded(const ConnectivityScheme& scheme,
                  const std::string& manifest_path, unsigned num_shards);

// Manifest-routed StoreView over K lazily-opened shard containers.
// vertex_blob/edge_blob binary-search the range index and forward to the
// owning shard, mmapping it on first touch (thread-safe; concurrent
// queries may race to open the same shard and one open wins). Adjacency
// reads come from the manifest's own side-table. info() aggregates the
// whole store: file_bytes spans manifest plus shards, num_shards > 0.
class ShardedStoreView final : public StoreView {
 public:
  // Maps and validates the manifest (structure always; the manifest
  // payload FNV pass only when verify_checksum). Shard files are
  // stat-checked here (existence + exact size) but mapped lazily;
  // verify_checksum also governs the per-shard payload pass at first
  // touch.
  static std::shared_ptr<const ShardedStoreView> open(
      const std::string& path, bool verify_checksum = true);

  ~ShardedStoreView() override;

  std::span<const std::uint8_t> params_blob() const override;
  std::span<const std::uint8_t> vertex_blob(graph::VertexId v) const override;
  std::span<const std::uint8_t> edge_blob(graph::EdgeId e) const override;
  std::size_t adjacency_degree(graph::VertexId v) const override;
  void adjacency_append(graph::VertexId v,
                        std::vector<graph::EdgeId>& out) const override;

  // Maps + digest-verifies every still-unmapped shard in parallel
  // (work-stealing over shard indices, the same thread pattern as
  // save_sharded's writers) and publishes the flat route table, so the
  // first-touch cliff and the lazy double-checked open leave the query
  // path entirely. Idempotent; safe concurrently with queries, with lazy
  // first-touch opens, and with other prefetch calls. A shard that fails
  // validation throws the same typed StoreError a lazy open would (the
  // first failure wins; already-published shards stay served).
  store::PrefetchStats prefetch(unsigned threads = 0) const override;

  // Non-null once every shard is mapped — after prefetch(), or once lazy
  // traffic has touched all K shards.
  const store::FlatRoutes* routes() const override {
    return routes_ptr_.load(std::memory_order_acquire);
  }

  // Manifest metadata, for inspection tooling.
  std::span<const store::ShardRecord> shards() const { return records_; }
  // Number of shards actually mmapped so far (lazy-open observability).
  std::size_t shards_open() const;

 private:
  ShardedStoreView() = default;

  // Opens and validates shard k against the manifest (full container
  // validation + cross-checks). Throws StoreError on any mismatch.
  std::shared_ptr<const LabelStoreView> open_shard(std::size_t k) const;
  // Returns shard k, opening it on first touch (open_shard runs outside
  // the slot lock; racing opens of one shard let the first win).
  const LabelStoreView& shard(std::size_t k) const;
  // Publishes an opened shard into slot k under mutex_; returns false
  // when a racing open published first. When the last slot fills,
  // splices the shards' per-container route tables into the global one
  // and publishes routes_ptr_.
  bool publish_shard(std::size_t k,
                     std::shared_ptr<const LabelStoreView> v) const;
  std::size_t shard_of_vertex(graph::VertexId v) const;
  std::size_t shard_of_edge(graph::EdgeId e) const;

  const std::uint8_t* map_ = nullptr;  // manifest file
  std::size_t map_bytes_ = 0;
  std::size_t params_off_ = 0;
  store::CsrAdjacency adj_;  // base == nullptr when no adjacency section
  std::string dir_;          // manifest directory, for shard resolution
  std::string path_;         // manifest path, for error messages
  bool verify_checksum_ = true;
  std::vector<store::ShardRecord> records_;

  // Lazy shard slots: slot k is written exactly once under mutex_ and
  // read lock-free afterwards through an acquire load of opened_[k].
  mutable std::mutex mutex_;
  mutable std::vector<std::shared_ptr<const LabelStoreView>> shard_views_;
  mutable std::unique_ptr<std::atomic<bool>[]> opened_;
  mutable std::size_t open_count_ = 0;  // slots published, guarded by mutex_
  // Global flat route table, built once under mutex_ when open_count_
  // reaches K and then read lock-free through routes_ptr_.
  mutable std::unique_ptr<store::FlatRoutes> routes_storage_;
  mutable std::atomic<const store::FlatRoutes*> routes_ptr_{nullptr};
};

}  // namespace ftc::core
