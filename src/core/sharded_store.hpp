// ShardedLabelStore: one labeling scheme split across K container files
// plus a checksummed manifest, served back through the same StoreView
// interface as a single container.
//
// The paper's O(f)-size polylog labels make connectivity queries
// servable from precomputed artifacts; sharding is what lets those
// artifacts outgrow one file. save_sharded() splits a scheme's labels
// across K shards by CONTIGUOUS vertex and edge ranges — shard k holds
// vertex records [vk, vk+1) and edge blobs [ek, ek+1), each shard a
// fully valid format-v2 container in its own right (inspectable and
// loadable with the ordinary tools) — and writes a manifest recording
// the ranges, the params blob, and a per-shard digest. Shards build and
// write in parallel, the first concrete step toward billion-edge stores
// whose labels are produced and distributed shard-by-shard.
//
// Manifest format, version 2 (all integers little-endian):
//
//   header (96 bytes)
//     0   u64  magic "FTCMANIF"
//     8   u32  manifest format version (2)
//     12  u8   BackendKind
//     13  u8   flags (bit 0: adjacency section present), u8[2] reserved
//     16  u64  total num_vertices
//     24  u64  total num_edges
//     32  u64  num_shards (K >= 1)
//     40  u64  params blob size in bytes
//     48  u64  params blob hash (FNV-1a over the params blob bytes;
//              every shard's params blob must match byte-for-byte)
//     56  u64  adjacency section size in bytes (0 when absent)
//     64  u64  epoch (>= 1; 1 for a full save, parent epoch + 1 for a
//              delta push)
//     72  u64  parent digest: the parent manifest's payload checksum for
//              a delta push, 0 for a full save — a verifiable lineage
//              chain across pushes
//     80  u64  payload checksum: FNV-1a over bytes [96, file end)
//     88  u64  header checksum: FNV-1a over bytes [0, 88)
//   params blob          verbatim copy of the (shared) backend params,
//                        so schemes load from the manifest alone without
//                        touching any shard
//   (pad to 8)
//   shard table          K records (see store::ShardRecord): vertex and
//                        edge ranges, expected shard file size, the
//                        shard's payload checksum as its digest, and the
//                        shard's file name relative to the manifest
//   adjacency section    optional CSR incidence side-table, identical
//                        layout and validation to container v2 — carried
//                        by the manifest (not the shards: incidence
//                        lists name global edge IDs), so sharded stores
//                        keep vertex-fault capability
//
// Version 1 manifests (80-byte header: no epoch/parent fields, payload
// checksum at offset 64 over [80, end), header checksum at 72 over
// [0, 72)) still load read-compatibly and report epoch 1 with parent
// digest 0.
//
// Delta pushes. Shard digests make the store content-addressed:
// save_sharded_delta() rebuilds the shard byte images but compares each
// against the parent manifest's records and REUSES byte-identical shards
// — hard-linking the parent's file under the new name (or keeping it in
// place when pushing over the same path) instead of writing it — so the
// bytes hitting the disk scale with the CHANGED shards, not the store.
// The new manifest records epoch = parent + 1 and the parent's payload
// checksum as its parent digest. On the serving side,
// open_store_view(path, verify, reuse_from) adopts the unchanged shards'
// already-open mmaps from the previous generation's view, so a
// BatchQueryEngine::swap_store over a delta push maps only the changed
// shards.
//
// Validation at open: magic, both checksums, version, backend, flags,
// dimension ranges, and the shard table — ranges must tile [0, n) and
// [0, m) exactly (no overlap, no gap), names must be relative paths
// without ".." segments, and every shard file must exist with exactly
// the recorded size. Shards themselves are mmapped LAZILY, on the first
// lookup that routes into them; at that point the shard is opened with
// the full container-v2 validation plus the manifest cross-checks
// (backend, range dimensions, byte-identical params blob, digest). Any
// mismatch throws the typed StoreError.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/label_store.hpp"

namespace ftc::core {

// A query routed into a quarantined shard: the shard failed to open
// persistently (retries exhausted), failed validation, or had a SIGBUS
// translated off its live mapping. Carries the unservable ID ranges so
// callers can degrade exactly that slice of the keyspace while every
// other shard keeps serving. Derives from StoreError so existing
// "artifact failure" handling keeps catching it.
class DegradedError : public StoreError {
 public:
  DegradedError(const std::string& what, std::size_t shard_index,
                std::uint64_t vb, std::uint64_t ve, std::uint64_t eb,
                std::uint64_t ee)
      : StoreError(what),
        shard(shard_index),
        vertex_begin(vb),
        vertex_end(ve),
        edge_begin(eb),
        edge_end(ee) {}

  std::size_t shard = 0;
  std::uint64_t vertex_begin = 0;
  std::uint64_t vertex_end = 0;
  std::uint64_t edge_begin = 0;
  std::uint64_t edge_end = 0;
};

// Retry schedule for transient (StoreIoError-class) failures on the
// shard open / prefetch / swap paths: flaky disks, fd pressure, racing
// publishes. Validation failures (plain StoreError) never retry —
// re-reading corrupt bytes cannot help.
struct RetryPolicy {
  unsigned max_attempts = 3;  // total attempts, >= 1
  std::chrono::microseconds initial_backoff{100};
  double multiplier = 2.0;  // backoff growth per attempt
  // Ceiling the exponential growth stops at — remote fetches retry
  // under the same policy as local opens, and unbounded doubling
  // against a flapping origin turns a 3-attempt budget into seconds.
  std::chrono::microseconds max_backoff{100000};
};

// Process-wide policy ShardedStoreView retries under (tests shrink it;
// not synchronized — set it before serving traffic). Seeded once, on
// first use, from the environment so operators can tune remote-fetch
// retries without a rebuild:
//   FTC_RETRY_ATTEMPTS  total attempts (>= 1)
//   FTC_RETRY_BASE_US   initial backoff in microseconds
//   FTC_RETRY_CAP_US    backoff ceiling in microseconds
RetryPolicy& default_retry_policy();

// One quarantined shard: index, the ID ranges it makes unservable, and
// the failure that quarantined it.
struct QuarantineRecord {
  std::size_t shard = 0;
  std::uint64_t vertex_begin = 0;
  std::uint64_t vertex_end = 0;
  std::uint64_t edge_begin = 0;
  std::uint64_t edge_end = 0;
  std::string reason;
};

namespace store {

// Written manifest version; readers accept
// [kMinManifestFormatVersion, kManifestFormatVersion].
inline constexpr std::uint64_t kManifestFormatVersion = 2;
inline constexpr std::uint64_t kMinManifestFormatVersion = 1;
inline constexpr std::size_t kManifestHeaderBytes = 96;
inline constexpr std::size_t kManifestHeaderBytesV1 = 80;
// "FTCMANIF" read as a little-endian u64.
inline constexpr std::uint64_t kManifestMagic = 0x46494E414D435446ULL;
// Guardrails against absurd shard tables in adversarial manifests.
inline constexpr std::uint64_t kMaxShards = 1u << 20;
inline constexpr std::size_t kMaxShardNameBytes = 4096;

// One shard-table entry. Encoded fixed-prefix + name: six u64 fields,
// u32 name length, name bytes, pad to 8 (codec in serialize.cpp).
struct ShardRecord {
  std::uint64_t vertex_begin = 0;
  std::uint64_t vertex_end = 0;
  std::uint64_t edge_begin = 0;
  std::uint64_t edge_end = 0;
  std::uint64_t file_bytes = 0;       // exact shard file size
  std::uint64_t payload_digest = 0;   // the shard's own payload checksum
  std::string name;                   // relative to the manifest directory
};

void encode_shard_record(const ShardRecord& rec, ByteWriter& w);
ShardRecord decode_shard_record(ByteReader& r);

}  // namespace store

// Writes `scheme` as num_shards containers plus a manifest at
// manifest_path. Shard files land next to the manifest, named
// "<manifest-filename>.shard<k>.ftcs"; each is written atomically, in
// parallel across worker threads, and the manifest is written last — a
// crash mid-save never leaves a manifest naming missing or stale
// shards. A failure mid-save (any shard build or write, or the manifest
// write itself) unlinks every shard file this call created before
// rethrowing, so aborted saves leave no orphan "<base>.shard<k>.ftcs"
// litter; a successful save additionally unlinks stale higher-numbered
// shard files left behind by an earlier save with a larger K under the
// same path. num_shards may exceed the vertex/edge counts (the surplus
// shards hold empty ranges). Load the result back with load_scheme() /
// open_store_view() on the manifest path. Throws StoreError on I/O
// failure.
void save_sharded(const ConnectivityScheme& scheme,
                  const std::string& manifest_path, unsigned num_shards);

// Accounting for one save_sharded_delta() call. bytes_written counts
// shard payload bytes that actually hit the disk (rebuilt shards);
// bytes_reused counts shard bytes satisfied by hard-linking or keeping
// the parent's byte-identical file. shards_written + shards_reused ==
// shards_total. The whole point of a delta push: with 1 of K shards
// changed, bytes_written is O(1 shard), not O(store).
struct DeltaPushStats {
  std::uint64_t epoch = 0;  // the new manifest's epoch (parent + 1)
  std::size_t shards_total = 0;
  std::size_t shards_written = 0;
  std::size_t shards_reused = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_reused = 0;
  std::uint64_t manifest_bytes = 0;
  // Byte-identical shards whose hard-link reuse failed with EXDEV/EPERM
  // (cross-filesystem or link-restricted mounts) and fell back to a
  // full byte copy; counted in shards_written/bytes_written.
  std::size_t shards_link_fallback = 0;
};

// Content-addressed delta push: saves `scheme` like save_sharded, but
// compares every shard's byte image against the parent manifest at
// parent_manifest_path and reuses byte-identical shards (same payload
// digest and size) via hard link instead of rewriting them — falling
// back to a full write when linking fails (e.g. across filesystems).
// The new manifest chains to the parent: epoch = parent epoch + 1,
// parent digest = the parent manifest's payload checksum. num_shards ==
// 0 inherits the parent's shard count (the common case — shard-count
// changes defeat range-aligned reuse). Pushing over the parent's own
// path is allowed: unchanged shards are kept in place untouched. Same
// failure hygiene as save_sharded. Throws StoreError on I/O failure or
// a malformed parent manifest.
DeltaPushStats save_sharded_delta(const ConnectivityScheme& scheme,
                                  const std::string& manifest_path,
                                  const std::string& parent_manifest_path,
                                  unsigned num_shards = 0);

// Manifest-routed StoreView over K lazily-opened shard containers.
// vertex_blob/edge_blob binary-search the range index and forward to the
// owning shard, mmapping it on first touch (thread-safe; concurrent
// queries may race to open the same shard and one open wins). Adjacency
// reads come from the manifest's own side-table. info() aggregates the
// whole store: file_bytes spans manifest plus shards, num_shards > 0.
//
// Subclassable at exactly one seam: shard_local_path() resolves shard k
// to a local file the container opener can mmap. The base class reads
// next to the manifest — the local-directory transport today's opens
// always were. RemoteStoreView overrides it to pull the shard through a
// ShardSource into the digest-verified ShardCache first; everything
// else (lazy opens, retry, quarantine, routes, adoption) is shared.
class ShardedStoreView : public StoreView {
 public:
  // Maps and validates the manifest (structure always; the manifest
  // payload FNV pass only when verify_checksum). Shard files are
  // stat-checked here (existence + exact size) but mapped lazily;
  // verify_checksum also governs the per-shard payload pass at first
  // touch. When reuse_from names a previous-generation view of the same
  // backend with a byte-identical params blob, shards whose manifest
  // records match one of the parent's (payload digest, file size, and
  // ID extents) AND are already open there are ADOPTED: the new view
  // shares the parent's shard mapping, the slot counts as open, and
  // only genuinely changed shards are left for lazy opens / prefetch —
  // the serving half of a delta push.
  static std::shared_ptr<const ShardedStoreView> open(
      const std::string& path, bool verify_checksum = true,
      const std::shared_ptr<const ShardedStoreView>& reuse_from = nullptr);

  // Like open(), but a shard file that is missing or has the wrong size
  // QUARANTINES that shard instead of failing the whole open — the fsck
  // / incident-response entry point: the manifest itself must still be
  // fully valid, but a store with damaged shard files opens and serves
  // every healthy range (queries into the dead ranges throw
  // DegradedError). Serving swaps keep using the strict open() so a
  // damaged generation never replaces a healthy one.
  static std::shared_ptr<const ShardedStoreView> open_degraded(
      const std::string& path, bool verify_checksum = true);

  ~ShardedStoreView() override;

  std::span<const std::uint8_t> params_blob() const override;
  std::span<const std::uint8_t> vertex_blob(graph::VertexId v) const override;
  std::span<const std::uint8_t> edge_blob(graph::EdgeId e) const override;
  std::size_t adjacency_degree(graph::VertexId v) const override;
  void adjacency_append(graph::VertexId v,
                        std::vector<graph::EdgeId>& out) const override;

  // Maps + digest-verifies every still-unmapped shard in parallel
  // (work-stealing over shard indices, the same thread pattern as
  // save_sharded's writers) and publishes the flat route table, so the
  // first-touch cliff and the lazy double-checked open leave the query
  // path entirely. Idempotent; safe concurrently with queries, with lazy
  // first-touch opens, and with other prefetch calls. A shard that fails
  // validation throws the same typed StoreError a lazy open would (the
  // first failure wins; already-published shards stay served).
  store::PrefetchStats prefetch(unsigned threads = 0) const override;

  // Non-null once every shard is mapped — after prefetch(), or once lazy
  // traffic has touched all K shards.
  const store::FlatRoutes* routes() const override {
    return routes_ptr_.load(std::memory_order_acquire);
  }

  // Manifest metadata, for inspection tooling.
  std::span<const store::ShardRecord> shards() const { return records_; }
  // Number of shards actually mmapped so far (lazy-open observability).
  // Adopted shards count as open.
  std::size_t shards_open() const;
  // Shards adopted from reuse_from at open() (constant per view; also
  // reported in every PrefetchStats from this view).
  std::size_t shards_adopted() const { return adopted_count_; }

  // Degraded-serving observability: quarantined shard count and the full
  // per-shard report (ranges + reason) for health endpoints and fsck.
  std::size_t shards_quarantined() const;
  std::vector<QuarantineRecord> quarantine_report() const;

  // Opens and fully validates shard k against the manifest WITHOUT
  // retry, quarantine, or publication into the serving slots — the
  // offline fsck primitive. Throws the shard's StoreError on failure;
  // the probe mapping is discarded either way.
  void verify_shard(std::size_t k) const;

  // Attributes a translated SIGBUS to the owning shard, quarantines it,
  // and throws DegradedError naming its ranges; faults that match no
  // shard mapping throw StoreIoError for the whole store.
  [[noreturn]] void on_mapped_fault(const void* addr) const override;

 protected:
  ShardedStoreView() = default;

  // Resolves shard k to a local file path LabelStoreView::open can
  // mmap. Called on the lazy first-touch / prefetch / verify paths,
  // outside any lock; may block (a remote override fetches here) and
  // may throw StoreIoError (transient, retried) or StoreError
  // (structural, quarantines). Base: the file named by the manifest
  // record, next to the manifest.
  virtual std::string shard_local_path(std::size_t k) const;
  // Names shard k in quarantine reasons and fault reports WITHOUT side
  // effects — never fetches. Base: the same path shard_local_path
  // returns; remote: the origin URL.
  virtual std::string shard_display_name(std::size_t k) const;

  // Shared body of open() / open_degraded() / RemoteStoreView::open():
  // maps + validates the manifest at `path` and populates the
  // caller-allocated `view` (which may be a subclass instance).
  // tolerate_missing_shards turns shard stat failures into quarantines
  // instead of throws; stat_shards=false skips the local existence
  // check entirely (remote shards have no local file until fetched —
  // info().file_bytes then trusts the manifest's recorded sizes).
  static void open_impl(
      const std::shared_ptr<ShardedStoreView>& view, const std::string& path,
      bool verify_checksum,
      const std::shared_ptr<const ShardedStoreView>& reuse_from,
      bool tolerate_missing_shards, bool stat_shards);

  // Opens and validates shard k against the manifest (full container
  // validation + cross-checks), one attempt. Throws StoreError /
  // StoreIoError on any mismatch or I/O failure.
  std::shared_ptr<const LabelStoreView> open_shard_once(std::size_t k) const;
  // open_shard_once under default_retry_policy(): transient
  // (StoreIoError) failures retry with backoff; exhausted retries and
  // validation failures quarantine the shard and throw DegradedError.
  std::shared_ptr<const LabelStoreView> open_shard(std::size_t k) const;
  // Marks shard k unservable and remembers why (first reason wins).
  void quarantine_shard(std::size_t k, const std::string& reason) const;
  [[noreturn]] void throw_degraded(std::size_t k) const;
  // Returns shard k, opening it on first touch (open_shard runs outside
  // the slot lock; racing opens of one shard let the first win).
  const LabelStoreView& shard(std::size_t k) const;
  // Publishes an opened shard into slot k under mutex_; returns false
  // when a racing open published first. When the last slot fills,
  // splices the shards' per-container route tables into the global one
  // and publishes routes_ptr_.
  bool publish_shard(std::size_t k,
                     std::shared_ptr<const LabelStoreView> v) const;
  // Splices the K per-shard route tables into the global one and
  // publishes routes_ptr_. Callers must hold mutex_ or have exclusive
  // access (open-time adoption, before the view is shared).
  void resolve_routes() const;
  // Open-time only (exclusive access): adopt byte-identical, already-
  // open shards from a previous-generation view of the same store.
  void adopt_shards(const ShardedStoreView& parent);
  std::size_t shard_of_vertex(graph::VertexId v) const;
  std::size_t shard_of_edge(graph::EdgeId e) const;

  const std::uint8_t* map_ = nullptr;  // manifest file
  std::size_t map_bytes_ = 0;
  std::size_t params_off_ = 0;
  store::CsrAdjacency adj_;  // base == nullptr when no adjacency section
  std::string dir_;          // manifest directory, for shard resolution
  std::string path_;         // manifest path, for error messages
  bool verify_checksum_ = true;
  std::vector<store::ShardRecord> records_;

  // Lazy shard slots: slot k is written exactly once under mutex_ and
  // read lock-free afterwards through an acquire load of opened_[k].
  mutable std::mutex mutex_;
  mutable std::vector<std::shared_ptr<const LabelStoreView>> shard_views_;
  mutable std::unique_ptr<std::atomic<bool>[]> opened_;
  mutable std::size_t open_count_ = 0;  // slots published, guarded by mutex_
  // Quarantine state: flag read lock-free on the routing path, reasons
  // guarded by mutex_. Sticky for the life of the view — a repaired file
  // is picked up by the next generation's swap, not by un-quarantining.
  mutable std::unique_ptr<std::atomic<bool>[]> quarantined_;
  mutable std::vector<std::string> quarantine_reasons_;  // guarded by mutex_
  std::size_t adopted_count_ = 0;       // set once at open()
  // Global flat route table, built once under mutex_ when open_count_
  // reaches K and then read lock-free through routes_ptr_.
  mutable std::unique_ptr<store::FlatRoutes> routes_storage_;
  mutable std::atomic<const store::FlatRoutes*> routes_ptr_{nullptr};
};

class ShardSource;  // core/shard_source.hpp
class ShardCache;   // core/shard_cache.hpp

// A sharded store served from an http:// manifest URL. The manifest is
// fetched (with retry under default_retry_policy()), verified and
// parked in the shard cache, then parsed by the ordinary manifest
// reader; shards are fetched through the cache on first touch — a warm
// cache makes a remote open byte-for-byte the local lazy-open path.
// Everything above this class (FlatRoutes, BatchQueryEngine,
// swap_store adoption, quarantine/degraded serving, journal sidecars)
// is unchanged: open_store_view() dispatches URLs here, so callers
// never name this type.
class RemoteStoreView final : public ShardedStoreView {
 public:
  // cache == nullptr uses default_remote_cache(). reuse_from enables
  // the same delta-push shard adoption as the local open — combined
  // with content-addressed caching, a swap to a child epoch transfers
  // only the changed shards.
  static std::shared_ptr<const RemoteStoreView> open(
      const std::string& url, bool verify_checksum = true,
      const std::shared_ptr<const ShardedStoreView>& reuse_from = nullptr,
      std::shared_ptr<ShardCache> cache = nullptr);

  const std::string& url() const { return url_; }
  const std::shared_ptr<ShardCache>& cache() const { return cache_; }

 protected:
  std::string shard_local_path(std::size_t k) const override;
  std::string shard_display_name(std::size_t k) const override;

 private:
  RemoteStoreView() = default;

  std::string url_;
  std::shared_ptr<ShardCache> cache_;
  std::shared_ptr<const ShardSource> source_;
};

// Fetches the deletion-journal sidecar "<store url>.jrnl" into the
// default cache and returns its local path, or "" when the origin has
// none (journals are optional). Transient transport failures retry
// under default_retry_policy() before throwing.
std::string fetch_remote_journal(const std::string& store_url);

}  // namespace ftc::core
