// LabelStore implementation: container writer (ConnectivityScheme::save),
// validating mmap reader (LabelStoreView), and the loaded label-served
// backends behind load_scheme().
//
// A loaded scheme is the labeling-scheme model made literal: it holds no
// graph and no construction state, only the label blobs, and answers
// queries through the same universal decoders as the in-memory backends.
// In kMmap mode the per-query cost is two 8-byte vertex-record reads from
// the mapping — no std::vector is materialized on the query path; only
// the <= f fault-edge labels of a session are decoded, once, inside
// prepare_faults(). The served hot path is therefore the shared one: the
// core backend queries through PreparedFaults + the copy-on-write
// DecoderWorkspace of core/ftc_query.cpp, and all fragment/sketch merges
// (core RS sums, AGM cells, cycle-space vectors) go through the word-XOR
// kernels in util/xor_kernel.hpp.
#include "core/label_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/ftc_query.hpp"
#include "core/journal.hpp"
#include "core/scheme_adapters.hpp"
#include "util/failpoint.hpp"
#include "util/scoped_fd.hpp"

namespace ftc::core {

namespace {

using graph::EdgeId;
using graph::VertexId;

std::size_t align8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }

// Little-endian on disk, independent of host byte order (util/digest.hpp).
std::uint64_t read_u64_at(const std::uint8_t* base, std::size_t offset) {
  return util::read_u64_le(base + offset);
}

std::uint32_t read_u32_at(const std::uint8_t* base, std::size_t offset) {
  return util::read_u32_le(base + offset);
}

}  // namespace

namespace store {

// Fixed per-edge blob size implied by the params blob, used to
// cross-check the offset index at open.
std::size_t expected_edge_blob_bytes(BackendKind backend,
                                     std::span<const std::uint8_t> params,
                                     std::uint32_t version) {
  store::ByteReader r(params);
  std::size_t expect = 0;
  switch (backend) {
    case BackendKind::kCoreFtc:
      expect =
          store::core_edge_blob_bytes(store::decode_core_params(r, version));
      break;
    case BackendKind::kDp21CycleSpace:
      expect = store::cycle_edge_blob_bytes(store::decode_cycle_params(r));
      break;
    case BackendKind::kDp21Agm:
      expect = store::agm_edge_blob_bytes(store::decode_agm_params(r));
      break;
  }
  if (r.remaining() != 0) {
    throw StoreError("params blob size inconsistent with backend");
  }
  return expect;
}

StoreLabelBits derive_label_bits(BackendKind backend,
                                 std::span<const std::uint8_t> params,
                                 std::uint32_t version) {
  store::ByteReader r(params);
  StoreLabelBits bits;
  switch (backend) {
    case BackendKind::kCoreFtc: {
      const LabelParams p = store::decode_core_params(r, version);
      bits.vertex_label_bits = 2 * p.coord_bits();
      bits.edge_label_bits = 4 * p.coord_bits() +
                             static_cast<std::size_t>(p.num_levels) * p.k *
                                 p.field_bits;
      break;
    }
    case BackendKind::kDp21CycleSpace: {
      const store::CycleParams p = store::decode_cycle_params(r);
      bits.vertex_label_bits = 2 * p.coord_bits;
      bits.edge_label_bits = 4 * p.coord_bits + p.vector_bits + 1;
      break;
    }
    case BackendKind::kDp21Agm: {
      const store::AgmParams p = store::decode_agm_params(r);
      bits.vertex_label_bits = 2 * p.coord_bits;
      bits.edge_label_bits = 4 * p.coord_bits + p.sketch_words() * 64;
      break;
    }
  }
  return bits;
}

void CsrAdjacency::validate(const std::string& path) const {
  // Exact CSR accounting: (n + 1) u64 offsets + 2m u32 edge IDs.
  const std::size_t expected =
      8 * (static_cast<std::size_t>(n) + 1) +
      8 * static_cast<std::size_t>(m);
  if (bytes != expected) {
    throw StoreError("corrupt adjacency section (size mismatch): " + path);
  }
  const std::size_t entries = 2 * static_cast<std::size_t>(m);
  const std::size_t lists_off = off + 8 * (static_cast<std::size_t>(n) + 1);
  std::uint64_t prev_off = read_u64_at(base, off);
  if (prev_off != 0) {
    throw StoreError("corrupt adjacency offsets (must start at 0): " + path);
  }
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t next_off =
        read_u64_at(base, off + 8 * (static_cast<std::size_t>(v) + 1));
    if (next_off < prev_off || next_off > entries) {
      throw StoreError("corrupt adjacency offsets (not monotone): " + path);
    }
    prev_off = next_off;
  }
  if (prev_off != entries) {
    throw StoreError("corrupt adjacency offsets (entry count): " + path);
  }
  for (std::size_t i = 0; i < entries; ++i) {
    if (read_u32_at(base, lists_off + 4 * i) >= m) {
      throw StoreError("corrupt adjacency list (edge ID out of range): " +
                       path);
    }
  }
}

std::size_t CsrAdjacency::degree(VertexId v) const {
  FTC_REQUIRE(base != nullptr, "store carries no adjacency section");
  FTC_REQUIRE(v < n, "vertex out of range");
  const std::uint64_t begin =
      read_u64_at(base, off + 8 * static_cast<std::size_t>(v));
  const std::uint64_t end =
      read_u64_at(base, off + 8 * (static_cast<std::size_t>(v) + 1));
  return static_cast<std::size_t>(end - begin);
}

void CsrAdjacency::append(VertexId v, std::vector<graph::EdgeId>& out) const {
  FTC_REQUIRE(base != nullptr, "store carries no adjacency section");
  FTC_REQUIRE(v < n, "vertex out of range");
  const std::uint64_t begin =
      read_u64_at(base, off + 8 * static_cast<std::size_t>(v));
  const std::uint64_t end =
      read_u64_at(base, off + 8 * (static_cast<std::size_t>(v) + 1));
  const std::size_t lists_off = off + 8 * (static_cast<std::size_t>(n) + 1);
  for (std::uint64_t i = begin; i < end; ++i) {
    out.push_back(
        read_u32_at(base, lists_off + 4 * static_cast<std::size_t>(i)));
  }
}

}  // namespace store

// ------------------------------------------------------------------
// Writer.

namespace store {

std::vector<std::uint8_t> build_adjacency_section(
    const ConnectivityScheme& scheme) {
  const AdjacencyProvider* adj = scheme.adjacency();
  if (adj == nullptr) return {};
  const VertexId n = scheme.num_vertices();
  FTC_CHECK(adj->num_vertices() == n,
            "adjacency provider inconsistent with the scheme");
  std::vector<graph::EdgeId> incident;
  store::ByteWriter section;
  section.u64(0);
  std::uint64_t running = 0;
  store::ByteWriter lists;
  for (VertexId v = 0; v < n; ++v) {
    incident.clear();
    adj->append_incident(v, incident);
    running += incident.size();
    section.u64(running);
    for (const graph::EdgeId e : incident) lists.u32(e);
  }
  // The invariant open() enforces: every edge appears in exactly two
  // incidence lists.
  FTC_CHECK(running == 2 * static_cast<std::uint64_t>(scheme.num_edges()),
            "adjacency provider does not cover every edge twice");
  section.bytes(lists.view());
  return section.take();
}

namespace {

// Little-endian u64 store, mirroring ByteWriter::patch_u64 for sinks
// that patch raw buffers instead of a ByteWriter.
void store_u64_le(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xff;
}

// Serial shared by every temp-file writer (write_file_atomic and the
// streaming FileSink), so concurrent saves of the same path from one
// process can never collide on a temp name.
unsigned next_save_serial() {
  static std::atomic<unsigned> save_counter{0};
  return save_counter.fetch_add(1);
}

// Flush granularity of the streaming emitter: label records are
// serialized into a scratch ByteWriter and handed to the sink whenever
// it crosses this size, so writer memory is O(chunk) regardless of the
// container size.
constexpr std::size_t kStreamChunkBytes = std::size_t{1} << 20;

// One emitter, three sinks. emit_container produces the container byte
// stream for a sink exposing
//     void write(std::span<const std::uint8_t>);
//     std::uint64_t offset() const;   // bytes written so far
// The header is emitted FIRST with both checksum fields zero; each sink
// finalizes the checksums its own way (MemorySink patches its buffer,
// FileSink rewrites the 64-byte header in place, DigestSink never needs
// them — the payload checksum is definitionally over bytes past the
// header). Routing build_container_bytes, write_container_streamed and
// digest_container through this one function is what guarantees the
// in-memory, streamed and digest-only outputs can never drift apart.
template <typename Sink>
void emit_container(const ConnectivityScheme& scheme, VertexId v_begin,
                    VertexId v_end, EdgeId e_begin, EdgeId e_end,
                    bool include_adjacency, Sink& sink) {
  FTC_REQUIRE(v_begin <= v_end && v_end <= scheme.num_vertices(),
              "vertex range out of order or out of range");
  FTC_REQUIRE(e_begin <= e_end && e_end <= scheme.num_edges(),
              "edge range out of order or out of range");
  const auto n = static_cast<VertexId>(v_end - v_begin);
  const auto m = static_cast<EdgeId>(e_end - e_begin);

  store::ByteWriter params;
  scheme.serialize_params(params);

  // The offset index precedes the blobs in the file, but blobs of one
  // scheme are uniform-width (the reader enforces this at open), so the
  // index is arithmetic: probe one blob for the width instead of
  // buffering the whole section to learn its offsets.
  std::uint64_t blob_bytes = 0;
  if (m > 0) {
    store::ByteWriter probe;
    scheme.serialize_edge_label(e_begin, probe);
    blob_bytes = probe.size();
  }

  // Adjacency side-table (format v2): present iff the scheme can name
  // its incidence lists, so saved schemes keep vertex-fault capability.
  // Only meaningful for a full-range container (the lists name global
  // edge IDs); shard containers carry none — the manifest does instead.
  std::vector<std::uint8_t> adj_section;
  if (include_adjacency && scheme.adjacency() != nullptr) {
    FTC_CHECK(v_begin == 0 && v_end == scheme.num_vertices() &&
                  e_begin == 0 && e_end == scheme.num_edges(),
              "adjacency requires the full vertex/edge ranges");
    adj_section = build_adjacency_section(scheme);
  }

  const auto pad8 = [&sink] {
    static constexpr std::uint8_t zeros[8] = {};
    const std::size_t rem = static_cast<std::size_t>(sink.offset()) % 8;
    if (rem != 0) {
      sink.write(std::span<const std::uint8_t>(zeros, 8 - rem));
    }
  };
  store::ByteWriter chunk;
  const auto flush = [&sink, &chunk](std::size_t watermark) {
    if (chunk.size() < watermark) return;
    sink.write(chunk.view());
    chunk = store::ByteWriter{};
  };

  store::ByteWriter header;
  header.u64(store::kMagic);
  header.u32(static_cast<std::uint32_t>(store::kFormatVersion));
  header.u8(static_cast<std::uint8_t>(scheme.backend()));
  header.u8(!adj_section.empty() ? store::kFlagHasAdjacency : 0);  // flags
  header.u8(0);
  header.u8(0);
  header.u64(n);
  header.u64(m);
  header.u64(params.size());
  header.u64(0);  // payload checksum, finalized by the sink
  header.u64(adj_section.size());  // adjacency section size (0 when absent)
  header.u64(0);  // header checksum, finalized by the sink
  FTC_CHECK(header.size() == store::kHeaderBytes,
            "store header layout drifted");
  sink.write(header.view());

  sink.write(params.view());
  pad8();
  for (VertexId v = v_begin; v < v_end; ++v) {
    const std::size_t before = chunk.size();
    scheme.serialize_vertex_label(v, chunk);
    FTC_CHECK(chunk.size() - before == store::kVertexRecordBytes,
              "vertex record must be fixed-size");
    flush(kStreamChunkBytes);
  }
  flush(1);
  pad8();
  for (EdgeId e = 0; e <= m; ++e) {
    chunk.u64(static_cast<std::uint64_t>(e) * blob_bytes);
    flush(kStreamChunkBytes);
  }
  for (EdgeId e = e_begin; e < e_end; ++e) {
    const std::size_t before = chunk.size();
    scheme.serialize_edge_label(e, chunk);
    // The arithmetic index above is only valid for uniform blobs; a
    // scheme violating that must fail the save, not corrupt the index.
    FTC_CHECK(chunk.size() - before == blob_bytes,
              "edge blobs must be uniform-width");
    flush(kStreamChunkBytes);
  }
  flush(1);
  if (!adj_section.empty()) {
    pad8();
    sink.write(adj_section);
  }
}

// Sink 1: buffer everything, then patch the checksums — the historical
// build_container_bytes behavior.
class MemorySink {
 public:
  void write(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  std::uint64_t offset() const { return buf_.size(); }

  std::vector<std::uint8_t> finish() {
    FTC_CHECK(buf_.size() >= store::kHeaderBytes, "container without header");
    const std::span<const std::uint8_t> file(buf_);
    store_u64_le(buf_.data() + 40,
                 store::fnv1a(file.subspan(store::kHeaderBytes)));
    store_u64_le(buf_.data() + 56, store::fnv1a(file.first(56)));
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

// Sink 2: fold the stream straight into the payload digest — the
// no-I/O pass delta pushes use to detect unchanged shards.
class DigestSink {
 public:
  void write(std::span<const std::uint8_t> b) {
    const std::uint64_t off = offset_;
    offset_ += b.size();
    if (off + b.size() <= store::kHeaderBytes) return;  // header bytes
    if (off < store::kHeaderBytes) {
      b = b.subspan(static_cast<std::size_t>(store::kHeaderBytes - off));
    }
    digest_ = store::fnv1a(b, digest_);
  }
  std::uint64_t offset() const { return offset_; }

  ContainerDigest finish() const { return {offset_, digest_}; }

 private:
  std::uint64_t offset_ = 0;
  std::uint64_t digest_ = store::kFnvBasis;
};

}  // namespace

std::vector<std::uint8_t> build_container_bytes(
    const ConnectivityScheme& scheme, VertexId v_begin, VertexId v_end,
    EdgeId e_begin, EdgeId e_end, bool include_adjacency) {
  MemorySink sink;
  emit_container(scheme, v_begin, v_end, e_begin, e_end, include_adjacency,
                 sink);
  return sink.finish();
}

MappedFile map_readonly(const std::string& path, std::size_t min_bytes,
                        const char* kind) {
  // O_NONBLOCK so opening a FIFO with no writer fails fast instead of
  // blocking; harmless for regular files (the only kind accepted below).
  util::ScopedFd fd;
  if (const int fe = FTC_FAILPOINT("store.map.open")) {
    errno = fe;
  } else {
    fd.reset(::open(path.c_str(), O_RDONLY | O_CLOEXEC | O_NONBLOCK));
  }
  if (!fd) {
    throw StoreIoError(std::string("cannot open ") + kind + ": " + path +
                       " (" + std::strerror(errno) + ")");
  }
  struct stat st{};
  int rc;
  if (const int fe = FTC_FAILPOINT("store.map.fstat")) {
    errno = fe;
    rc = -1;
  } else {
    rc = ::fstat(fd.get(), &st);
  }
  if (rc != 0) {
    throw StoreIoError("cannot stat " + path + " (" + std::strerror(errno) +
                       ")");
  }
  if (!S_ISREG(st.st_mode)) {
    throw StoreError("not a regular file: " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < min_bytes) {
    throw StoreError(std::string(kind) + " truncated (no header): " + path);
  }
  void* map = MAP_FAILED;
  if (const int fe = FTC_FAILPOINT("store.map.mmap")) {
    errno = fe;
  } else {
    map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.get(), 0);
  }
  if (map == MAP_FAILED) {
    throw StoreIoError("mmap failed: " + path + " (" + std::strerror(errno) +
                       ")");
  }
  // Register with the SIGBUS translator so a file mutated behind this
  // mapping surfaces as a typed error at the guarded read, not a crash.
  util::register_mapped_range(map, size);
  return {static_cast<const std::uint8_t*>(map), size};
}

void unmap_file(const MappedFile& file) {
  if (file.data == nullptr) return;
  util::unregister_mapped_range(file.data);
  ::munmap(const_cast<std::uint8_t*>(file.data), file.size);
}

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> file) {
  // Write to a unique temp file (per process AND per call, for
  // concurrent saves from one process), fsync it, rename into place and
  // fsync the directory — so a crashed, failed or racing save never
  // leaves a half-written store under the target name, even across
  // power loss on writeback filesystems.
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) +
                          "." + std::to_string(next_save_serial());
  util::ScopedFd fd;
  if (const int fe = FTC_FAILPOINT("store.write.open")) {
    errno = fe;
  } else {
    fd.reset(
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  }
  if (!fd) throw StoreIoError("cannot open for writing: " + tmp);
  const auto fail_write = [&](const std::string& what) -> StoreIoError {
    fd.reset();
    std::remove(tmp.c_str());
    return StoreIoError(what + ": " + tmp);
  };
  std::size_t written = 0;
  while (written < file.size()) {
    ::ssize_t n;
    if (const int fe = FTC_FAILPOINT("store.write.write")) {
      errno = fe;
      n = -1;
    } else {
      n = ::write(fd.get(), file.data() + written, file.size() - written);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw fail_write("write failed");
    }
    written += static_cast<std::size_t>(n);
  }
  int rc;
  if (const int fe = FTC_FAILPOINT("store.write.fsync")) {
    errno = fe;
    rc = -1;
  } else {
    rc = ::fsync(fd.get());
  }
  if (rc != 0) throw fail_write("fsync failed");
  if (const int fe = FTC_FAILPOINT("store.write.close")) {
    errno = fe;
    fd.reset();  // still close the real fd; the injected error wins
    rc = -1;
  } else {
    rc = fd.close_now();
  }
  if (rc != 0) {
    std::remove(tmp.c_str());
    throw StoreIoError("close failed: " + tmp);
  }
  if (const int fe = FTC_FAILPOINT("store.write.rename")) {
    errno = fe;
    rc = -1;
  } else {
    rc = std::rename(tmp.c_str(), path.c_str());
  }
  if (rc != 0) {
    std::remove(tmp.c_str());
    throw StoreIoError("cannot rename " + tmp + " -> " + path);
  }
  // Persist the rename itself (best-effort: the data is already synced,
  // and some filesystems reject directory fsync). The failpoint only
  // counts the boundary — a skipped directory sync never fails a save.
  if (FTC_FAILPOINT("store.write.dirsync") == 0) {
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash + 1);
    const util::ScopedFd dir_fd(
        ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
    if (dir_fd) ::fsync(dir_fd.get());
  }
}

namespace {

// Sink 3: stream straight to disk with write_file_atomic's exact crash
// story and failpoint surface (store.write.{open,write,fsync,close,
// rename,dirsync}), without ever materializing the container: the only
// buffered state is the 64-byte header copy (its checksum fields are
// patched with one pwrite at finish) and the emitter's flush chunk.
class FileSink {
 public:
  explicit FileSink(std::string path)
      : path_(std::move(path)),
        tmp_(path_ + ".tmp." + std::to_string(static_cast<long>(::getpid())) +
             "." + std::to_string(next_save_serial())) {
    if (const int fe = FTC_FAILPOINT("store.write.open")) {
      errno = fe;
    } else {
      fd_.reset(
          ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
    }
    if (!fd_) throw StoreIoError("cannot open for writing: " + tmp_);
  }

  ~FileSink() {
    // Abandoned before finish() (the emitter threw): never leave the
    // partial temp file behind.
    if (!finished_) {
      fd_.reset();
      std::remove(tmp_.c_str());
    }
  }

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  void write(std::span<const std::uint8_t> b) {
    // Keep a copy of the header bytes (they stream out with zeroed
    // checksum fields) and fold everything after them into the payload
    // checksum as it passes through.
    if (offset_ < store::kHeaderBytes) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(b.size(), store::kHeaderBytes - offset_));
      std::copy_n(b.data(), take,
                  header_ + static_cast<std::size_t>(offset_));
      if (take < b.size()) digest_ = store::fnv1a(b.subspan(take), digest_);
    } else {
      digest_ = store::fnv1a(b, digest_);
    }
    offset_ += b.size();
    std::size_t written = 0;
    while (written < b.size()) {
      ::ssize_t n;
      if (const int fe = FTC_FAILPOINT("store.write.write")) {
        errno = fe;
        n = -1;
      } else {
        n = ::write(fd_.get(), b.data() + written, b.size() - written);
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        throw fail("write failed");
      }
      written += static_cast<std::size_t>(n);
    }
  }

  std::uint64_t offset() const { return offset_; }

  // Patches the header checksums in place, then fsync + rename exactly
  // like write_file_atomic. After this returns the container is durably
  // at path_.
  ContainerDigest finish() {
    FTC_CHECK(offset_ >= store::kHeaderBytes, "container without header");
    store_u64_le(header_ + 40, digest_);
    store_u64_le(header_ + 56,
                 store::fnv1a(std::span<const std::uint8_t>(header_, 56)));
    std::size_t written = 0;
    while (written < store::kHeaderBytes) {
      ::ssize_t n;
      if (const int fe = FTC_FAILPOINT("store.write.write")) {
        errno = fe;
        n = -1;
      } else {
        n = ::pwrite(fd_.get(), header_ + written,
                     store::kHeaderBytes - written,
                     static_cast<::off_t>(written));
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        throw fail("write failed");
      }
      written += static_cast<std::size_t>(n);
    }
    int rc;
    if (const int fe = FTC_FAILPOINT("store.write.fsync")) {
      errno = fe;
      rc = -1;
    } else {
      rc = ::fsync(fd_.get());
    }
    if (rc != 0) throw fail("fsync failed");
    if (const int fe = FTC_FAILPOINT("store.write.close")) {
      errno = fe;
      fd_.reset();  // still close the real fd; the injected error wins
      rc = -1;
    } else {
      rc = fd_.close_now();
    }
    if (rc != 0) {
      std::remove(tmp_.c_str());
      finished_ = true;
      throw StoreIoError("close failed: " + tmp_);
    }
    if (const int fe = FTC_FAILPOINT("store.write.rename")) {
      errno = fe;
      rc = -1;
    } else {
      rc = std::rename(tmp_.c_str(), path_.c_str());
    }
    if (rc != 0) {
      std::remove(tmp_.c_str());
      finished_ = true;
      throw StoreIoError("cannot rename " + tmp_ + " -> " + path_);
    }
    finished_ = true;
    if (FTC_FAILPOINT("store.write.dirsync") == 0) {
      const std::size_t slash = path_.find_last_of('/');
      const std::string dir = slash == std::string::npos
                                  ? std::string(".")
                                  : path_.substr(0, slash + 1);
      const util::ScopedFd dir_fd(
          ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
      if (dir_fd) ::fsync(dir_fd.get());
    }
    return {offset_, digest_};
  }

 private:
  StoreIoError fail(const std::string& what) {
    fd_.reset();
    std::remove(tmp_.c_str());
    finished_ = true;
    return StoreIoError(what + ": " + tmp_);
  }

  const std::string path_;
  const std::string tmp_;
  util::ScopedFd fd_;
  std::uint8_t header_[store::kHeaderBytes] = {};
  std::uint64_t offset_ = 0;
  std::uint64_t digest_ = store::kFnvBasis;
  bool finished_ = false;
};

}  // namespace

ContainerDigest write_container_streamed(const ConnectivityScheme& scheme,
                                         const std::string& path,
                                         VertexId v_begin, VertexId v_end,
                                         EdgeId e_begin, EdgeId e_end,
                                         bool include_adjacency) {
  FileSink sink(path);
  emit_container(scheme, v_begin, v_end, e_begin, e_end, include_adjacency,
                 sink);
  return sink.finish();
}

ContainerDigest digest_container(const ConnectivityScheme& scheme,
                                 VertexId v_begin, VertexId v_end,
                                 EdgeId e_begin, EdgeId e_end,
                                 bool include_adjacency) {
  DigestSink sink;
  emit_container(scheme, v_begin, v_end, e_begin, e_end, include_adjacency,
                 sink);
  return sink.finish();
}

}  // namespace store

void ConnectivityScheme::save(const std::string& path) const {
  // Streamed: labels serialize straight to disk in O(chunk) memory, so
  // saving never doubles the resident footprint of a large scheme.
  store::write_container_streamed(*this, path, 0, num_vertices(), 0,
                                  num_edges(), /*include_adjacency=*/true);
}

// ------------------------------------------------------------------
// Mmap view.

LabelStoreView::~LabelStoreView() {
  store::unmap_file({map_, map_bytes_});
}

bool LabelStoreView::contains(const void* addr) const {
  const auto* p = static_cast<const std::uint8_t*>(addr);
  return p >= map_ && p < map_ + map_bytes_;
}

void LabelStoreView::on_mapped_fault(const void* addr) const {
  (void)addr;
  throw StoreIoError(
      "mapped read faulted (store file truncated or replaced behind the "
      "live mapping): " +
      path_);
}

void StoreView::on_mapped_fault(const void* addr) const {
  (void)addr;
  throw StoreIoError(
      "mapped label store read faulted (backing file truncated or replaced)");
}

std::shared_ptr<const LabelStoreView> LabelStoreView::open(
    const std::string& path, bool verify_checksum) {
  const store::MappedFile mapped =
      store::map_readonly(path, store::kHeaderBytes, "label store");
  const std::size_t size = mapped.size;

  std::shared_ptr<LabelStoreView> view(new LabelStoreView());
  view->path_ = path;
  view->map_ = mapped.data;
  view->map_bytes_ = size;

  const std::span<const std::uint8_t> bytes(view->map_, size);
  // Parse the header from a stack copy taken under a SIGBUS guard, so
  // even the first page disappearing under the mapping is a typed error.
  std::uint8_t header_copy[store::kHeaderBytes];
  store::with_sigbus_guard(path, "label store header", [&] {
    std::memcpy(header_copy, view->map_, store::kHeaderBytes);
  });
  const std::span<const std::uint8_t> header_bytes(header_copy,
                                                   store::kHeaderBytes);
  store::ByteReader h(header_bytes);
  if (h.u64() != store::kMagic) {
    throw StoreError("bad magic (not a label store file): " + path);
  }
  StoreInfo& info = view->info_;
  info.file_bytes = size;
  info.format_version = h.u32();
  const std::uint8_t backend_byte = h.u8();
  const std::uint8_t flags = h.u8();
  h.u8();
  h.u8();
  const std::uint64_t n64 = h.u64();
  const std::uint64_t m64 = h.u64();
  const std::uint64_t params_size = h.u64();
  info.payload_checksum = h.u64();
  const std::uint64_t adj_size = h.u64();  // reserved (zero) in v1
  const std::size_t header_checksum_off = h.pos();
  const std::uint64_t header_checksum = h.u64();
  if (store::fnv1a(header_bytes.first(header_checksum_off)) !=
      header_checksum) {
    throw StoreError("corrupt header (checksum mismatch): " + path);
  }
  if (info.format_version < store::kMinFormatVersion ||
      info.format_version > store::kFormatVersion) {
    throw StoreError("unsupported label store format version " +
                     std::to_string(info.format_version) + ": " + path);
  }
  if (info.format_version < 2 && (flags != 0 || adj_size != 0)) {
    throw StoreError("corrupt v1 header (reserved fields nonzero): " + path);
  }
  if ((flags & ~store::kFlagHasAdjacency) != 0) {
    throw StoreError("unknown header flags in label store: " + path);
  }
  info.has_adjacency = (flags & store::kFlagHasAdjacency) != 0;
  if (info.has_adjacency != (adj_size != 0)) {
    throw StoreError(
        "corrupt header (adjacency flag/size disagree): " + path);
  }
  if (backend_byte > static_cast<std::uint8_t>(BackendKind::kDp21Agm)) {
    throw StoreError("unknown backend kind in label store: " + path);
  }
  info.backend = static_cast<BackendKind>(backend_byte);
  if (n64 >= graph::kNoVertex || m64 >= graph::kNoEdge) {
    throw StoreError("label store dimensions out of range: " + path);
  }
  info.num_vertices = static_cast<VertexId>(n64);
  info.num_edges = static_cast<EdgeId>(m64);

  // Section layout, with every bound checked against the mapped size.
  const auto fail_bounds = [&]() -> StoreError {
    return StoreError("label store truncated (sections exceed file): " +
                      path);
  };
  if (params_size > size - store::kHeaderBytes) throw fail_bounds();
  view->params_off_ = store::kHeaderBytes;
  info.params_bytes = static_cast<std::size_t>(params_size);
  view->vertex_off_ = align8(view->params_off_ + info.params_bytes);
  if (view->vertex_off_ > size) throw fail_bounds();
  info.vertex_section_bytes =
      static_cast<std::size_t>(info.num_vertices) * store::kVertexRecordBytes;
  if (info.vertex_section_bytes > size - view->vertex_off_) {
    throw fail_bounds();
  }
  view->index_off_ = view->vertex_off_ + info.vertex_section_bytes;
  info.edge_index_bytes = (static_cast<std::size_t>(info.num_edges) + 1) * 8;
  if (info.edge_index_bytes > size - view->index_off_) throw fail_bounds();
  view->blob_off_ = view->index_off_ + info.edge_index_bytes;

  // The blob section runs to the (8-aligned) adjacency section when one
  // is present (format v2), otherwise to the end of the file.
  info.adjacency_bytes = static_cast<std::size_t>(adj_size);
  std::size_t blob_region = size - view->blob_off_;
  std::size_t adj_off = 0;
  if (info.has_adjacency) {
    // Placement only; CsrAdjacency::validate() (below) enforces the
    // exact CSR size and every structural property of the section.
    if (info.adjacency_bytes > blob_region) throw fail_bounds();
    adj_off = size - info.adjacency_bytes;
    if (adj_off % 8 != 0) {
      throw StoreError("corrupt adjacency section (misaligned): " + path);
    }
    blob_region = adj_off - view->blob_off_;
  }

  // Offset index: starts at 0, non-decreasing, ends exactly at the blob
  // section end (up to the pre-adjacency alignment pad), and (the blobs
  // being fixed-size per scheme) every spacing must match the width
  // implied by the params blob.
  std::size_t expected_blob = 0;
  store::with_sigbus_guard(path, "label store params", [&] {
    expected_blob = store::expected_edge_blob_bytes(
        info.backend, view->params_blob(), info.format_version);
  });
  store::with_sigbus_guard(path, "label store edge index", [&] {
    std::uint64_t prev = read_u64_at(view->map_, view->index_off_);
    if (prev != 0) {
      throw StoreError("corrupt edge index (must start at 0): " + path);
    }
    for (EdgeId e = 0; e < info.num_edges; ++e) {
      const std::uint64_t next = read_u64_at(
          view->map_,
          view->index_off_ + 8 * (static_cast<std::size_t>(e) + 1));
      if (next < prev || next > blob_region) {
        throw StoreError("corrupt edge index (offsets not monotone): " + path);
      }
      if (next - prev != expected_blob) {
        throw StoreError("corrupt edge index (blob size mismatch): " + path);
      }
      prev = next;
    }
    info.edge_blob_bytes = static_cast<std::size_t>(prev);
  });
  const bool blob_end_ok =
      info.has_adjacency
          ? align8(info.edge_blob_bytes) == blob_region
          : info.edge_blob_bytes == blob_region;
  if (!blob_end_ok) {
    throw StoreError("corrupt edge index (trailing bytes): " + path);
  }

  // Adjacency CSR validation: monotone offsets covering exactly 2m
  // entries, every entry a valid edge ID (shared with the sharded
  // manifest, which carries the same section layout).
  if (info.has_adjacency) {
    view->adj_ = store::CsrAdjacency{view->map_, adj_off, info.adjacency_bytes,
                                     info.num_vertices, info.num_edges};
    store::with_sigbus_guard(path, "label store adjacency",
                             [&] { view->adj_.validate(path); });
  }

  store::StoreLabelBits bits;
  store::with_sigbus_guard(path, "label store params", [&] {
    bits = store::derive_label_bits(info.backend, view->params_blob(),
                                    info.format_version);
  });
  info.vertex_label_bits = bits.vertex_label_bits;
  info.edge_label_bits = bits.edge_label_bits;

  if (verify_checksum) {
    // The O(file) scan — by far the widest SIGBUS window at open.
    std::uint64_t payload_fnv = 0;
    store::with_sigbus_guard(path, "label store payload", [&] {
      payload_fnv = store::fnv1a(bytes.subspan(store::kHeaderBytes));
    });
    if (payload_fnv != info.payload_checksum) {
      throw StoreError("payload checksum mismatch (corrupt label store): " +
                       path);
    }
  }

  // Flat route table: the container is one contiguous mapping with
  // fixed-width records (the index walk above proved it), so routing
  // resolves to base + stride arithmetic captured once as per-ID
  // pointers. Sharded views splice these per-shard tables into their
  // global one (sharded_store.cpp).
  store::FlatRoutes& routes = view->routes_;
  routes.num_vertices = info.num_vertices;
  routes.num_edges = info.num_edges;
  routes.edge_blob_bytes = expected_blob;
  routes.vertex_ptr.reserve(info.num_vertices);
  for (VertexId v = 0; v < info.num_vertices; ++v) {
    routes.vertex_ptr.push_back(
        view->map_ + view->vertex_off_ +
        static_cast<std::size_t>(v) * store::kVertexRecordBytes);
  }
  routes.edge_ptr.reserve(info.num_edges);
  for (EdgeId e = 0; e < info.num_edges; ++e) {
    routes.edge_ptr.push_back(view->map_ + view->blob_off_ +
                              static_cast<std::size_t>(e) * expected_blob);
  }
  return view;
}

std::span<const std::uint8_t> LabelStoreView::params_blob() const {
  return {map_ + params_off_, info_.params_bytes};
}

std::span<const std::uint8_t> LabelStoreView::vertex_blob(VertexId v) const {
  FTC_REQUIRE(v < info_.num_vertices, "vertex out of range");
  return {map_ + vertex_off_ +
              static_cast<std::size_t>(v) * store::kVertexRecordBytes,
          store::kVertexRecordBytes};
}

std::span<const std::uint8_t> LabelStoreView::edge_blob(EdgeId e) const {
  // The route table was derived from (and validated against) the offset
  // index at open — blobs are fixed-width — so this is the same span the
  // two index reads would produce, minus the two reads.
  FTC_REQUIRE(e < info_.num_edges, "edge out of range");
  return {routes_.edge_ptr[e], routes_.edge_blob_bytes};
}

std::size_t LabelStoreView::adjacency_degree(VertexId v) const {
  return adj_.degree(v);
}

void LabelStoreView::adjacency_append(VertexId v,
                                      std::vector<graph::EdgeId>& out) const {
  adj_.append(v, out);
}

// ------------------------------------------------------------------
// Loaded (label-served) backends.

namespace {

// The store-served backends wrap the same per-backend session state as
// the in-memory adapters; the wrappers are shared (scheme_adapters.hpp)
// so the two serving paths cannot drift apart.
using detail::BackendWorkspace;
using detail::PreparedFaultSet;
using detail::checked_cast;

using CoreStoredFaults = PreparedFaultSet<PreparedFaults>;
using CoreStoredWorkspace = BackendWorkspace<DecoderWorkspace>;
using CycleStoredFaults = PreparedFaultSet<dp21::CycleSpaceFtc::Prepared>;
using AgmStoredFaults = PreparedFaultSet<dp21::AgmFtc::Prepared>;
using AgmStoredWorkspace = BackendWorkspace<dp21::AgmFtc::Workspace>;
using EmptyStoredWorkspace = detail::EmptyWorkspace;

// Zero-copy adjacency provider over the mapped v2 side-table: degrees
// and incidence lists decode on the fly from the (validated) CSR
// section, so serving vertex faults costs no load-time materialization.
class MappedAdjacency final : public AdjacencyProvider {
 public:
  explicit MappedAdjacency(std::shared_ptr<const StoreView> view)
      : view_(std::move(view)) {}

  VertexId num_vertices() const override {
    return view_->info().num_vertices;
  }
  std::size_t degree(VertexId v) const override {
    return view_->adjacency_degree(v);
  }
  void append_incident(VertexId v,
                       std::vector<EdgeId>& out) const override {
    view_->adjacency_append(v, out);
  }

 private:
  std::shared_ptr<const StoreView> view_;
};

// Shared plumbing: the mapping, header-derived sizes, the adjacency
// side-table (when the container carries one), and save() support by
// re-emitting the stored blobs (a loaded store round-trips bit-exactly).
class StoredSchemeBase : public ConnectivityScheme {
 public:
  StoredSchemeBase(std::shared_ptr<const StoreView> view, LoadMode mode)
      : view_(std::move(view)) {
    if (!view_->info().has_adjacency) return;
    if (mode == LoadMode::kMaterialize) {
      // Eager decode into owned CSR vectors.
      std::vector<std::uint64_t> offsets;
      std::vector<EdgeId> lists;
      offsets.reserve(static_cast<std::size_t>(num_vertices()) + 1);
      offsets.push_back(0);
      lists.reserve(2 * static_cast<std::size_t>(num_edges()));
      for (VertexId v = 0; v < num_vertices(); ++v) {
        view_->adjacency_append(v, lists);
        offsets.push_back(lists.size());
      }
      adjacency_ = std::make_unique<VectorAdjacency>(std::move(offsets),
                                                     std::move(lists));
    } else {
      adjacency_ = std::make_unique<MappedAdjacency>(view_);
    }
  }

  VertexId num_vertices() const override {
    return view_->info().num_vertices;
  }
  EdgeId num_edges() const override { return view_->info().num_edges; }
  std::size_t vertex_label_bits() const override {
    return view_->info().vertex_label_bits;
  }
  std::size_t edge_label_bits() const override {
    return view_->info().edge_label_bits;
  }

  // Vertex-fault capability is exactly "the container had the side-table".
  const AdjacencyProvider* adjacency() const override {
    return adjacency_.get();
  }

  void serialize_params(store::ByteWriter& out) const override {
    out.bytes(view_->params_blob());
  }
  void serialize_vertex_label(VertexId v,
                              store::ByteWriter& out) const override {
    out.bytes(view_->vertex_blob(v));
  }
  void serialize_edge_label(EdgeId e, store::ByteWriter& out) const override {
    out.bytes(view_->edge_blob(e));
  }

  // Warm-up: map every lazily-opened shard and resolve the route table,
  // surfacing the view's typed StoreError on a corrupt backing.
  void prefetch(unsigned threads = 0) const override {
    view_->prefetch(threads);
  }

  // The backing view, so a swap can thread the serving generation's
  // mappings through open_store_view(path, verify, reuse_from) and adopt
  // unchanged shards across a delta push.
  std::shared_ptr<const StoreView> store_view() const override {
    return view_;
  }

 protected:
  // Zero-copy vertex-label read: one bounds-checked 8-byte record
  // straight from the mapping.
  graph::AncestryLabel mapped_anc(VertexId v) const {
    store::ByteReader r(view_->vertex_blob(v));
    return store::decode_vertex_record(r);
  }

  // kMaterialize: pre-decode every vertex record (the record layout is
  // backend-universal, so the cache lives here for all three schemes).
  void materialize_vertices() {
    vertex_cache_.reserve(num_vertices());
    for (VertexId v = 0; v < num_vertices(); ++v) {
      vertex_cache_.push_back(mapped_anc(v));
    }
  }

  graph::AncestryLabel anc(VertexId v) const {
    if (!vertex_cache_.empty()) {
      FTC_REQUIRE(v < vertex_cache_.size(), "vertex out of range");
      return vertex_cache_[v];
    }
    // Resolved-route fast path: one cached pointer load and a direct
    // index, no virtual dispatch (and for sharded views no binary
    // search or lazy-open check).
    if (const store::FlatRoutes* rt = routes_.get()) {
      FTC_REQUIRE(v < rt->num_vertices, "vertex out of range");
      return store::decode_vertex_record_at(rt->vertex_ptr[v]);
    }
    return mapped_anc(v);
  }

  // Edge blob bytes through the same resolved-route fast path (used by
  // the per-backend decode_edge helpers on prepare_faults).
  std::span<const std::uint8_t> edge_bytes(EdgeId e) const {
    if (const store::FlatRoutes* rt = routes_.get()) {
      FTC_REQUIRE(e < rt->num_edges, "edge out of range");
      return {rt->edge_ptr[e], rt->edge_blob_bytes};
    }
    return view_->edge_blob(e);
  }

  // Both endpoint ancestry records under ONE SIGBUS guard — the only
  // mapped reads of an edge-fault query. A backing file mutated behind
  // the mapping lands in on_mapped_fault (the sharded view quarantines
  // the shard and throws DegradedError) instead of killing the process.
  // Cost when nothing faults: one sigsetjmp with no mask save — noise
  // against the decode the query then runs.
  std::pair<graph::AncestryLabel, graph::AncestryLabel> anc_pair(
      VertexId s, VertexId t) const {
    if (!vertex_cache_.empty()) return {anc(s), anc(t)};
    const std::uint8_t* ps;
    const std::uint8_t* pt;
    if (const store::FlatRoutes* rt = routes_.get()) {
      FTC_REQUIRE(s < rt->num_vertices, "vertex out of range");
      FTC_REQUIRE(t < rt->num_vertices, "vertex out of range");
      ps = rt->vertex_ptr[s];
      pt = rt->vertex_ptr[t];
    } else {
      // Pre-routes path: may lazily open (and internally guard) the
      // owning shards; only the final record reads run under our guard.
      ps = view_->vertex_blob(s).data();
      pt = view_->vertex_blob(t).data();
    }
    util::SigbusGuard guard;
    if (sigsetjmp(guard.jump(), 0) == 0) {
      guard.arm();
      const graph::AncestryLabel a = store::decode_vertex_record_at(ps);
      const graph::AncestryLabel b = store::decode_vertex_record_at(pt);
      return {a, b};
    }
    view_->on_mapped_fault(guard.fault_addr());
    __builtin_unreachable();  // noreturn through a virtual call
  }

  // Copies one edge blob out of the mapping under a SIGBUS guard; the
  // decoder then runs on the owned copy, unguarded (it allocates).
  // Prepare-time only (<= f blobs per fault set), so the copy is off
  // the per-query path.
  std::vector<std::uint8_t> copy_edge_blob(EdgeId e) const {
    const std::span<const std::uint8_t> src = edge_bytes(e);
    std::vector<std::uint8_t> out(src.size());
    util::SigbusGuard guard;
    if (sigsetjmp(guard.jump(), 0) == 0) {
      guard.arm();
      std::memcpy(out.data(), src.data(), src.size());
      return out;
    }
    view_->on_mapped_fault(guard.fault_addr());
    __builtin_unreachable();  // noreturn through a virtual call
  }

  std::shared_ptr<const StoreView> view_;
  detail::RouteCache routes_{*view_};  // after view_: init order matters
  std::vector<graph::AncestryLabel> vertex_cache_;  // kMaterialize only
  std::unique_ptr<AdjacencyProvider> adjacency_;    // null: v1 container
};

class StoredCoreScheme final : public StoredSchemeBase {
 public:
  StoredCoreScheme(std::shared_ptr<const StoreView> view, LoadMode mode)
      : StoredSchemeBase(std::move(view), mode) {
    store::ByteReader pr(view_->params_blob());
    params_ = store::decode_core_params(pr, view_->info().format_version,
                                        &level_bounds_);
    if (mode == LoadMode::kMaterialize) {
      materialize_vertices();
      edge_cache_.reserve(num_edges());
      for (EdgeId e = 0; e < num_edges(); ++e) {
        edge_cache_.push_back(decode_edge(e));
      }
    }
  }

  BackendKind backend() const override { return BackendKind::kCoreFtc; }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<CoreStoredWorkspace>();
  }

  // Re-encode instead of re-emitting the stored blob: a v1 container's
  // core params carry no bounds fields, and save() always writes format
  // v2 (the re-encode emits count 0 then; for v2 inputs it reproduces
  // the stored bytes exactly, keeping re-saves byte-identical).
  void serialize_params(store::ByteWriter& out) const override {
    store::encode_core_params(params_, level_bounds_, out);
  }

 protected:
  std::unique_ptr<FaultSet> prepare_edge_faults(
      std::span<const EdgeId> edge_faults) const override {
    std::vector<EdgeLabel> labels;
    labels.reserve(edge_faults.size());
    for (const EdgeId e : edge_faults) {
      labels.push_back(edge_cache_.empty() ? decode_edge(e) : edge_cache_[e]);
    }
    // v2 containers carry the builder's per-level population bounds, so
    // store-served decodes run the same shrunken windows.
    auto prepared = PreparedFaults::prepare(labels, level_bounds_);
    const std::size_t nf = prepared.num_faults();
    return std::make_unique<CoreStoredFaults>(std::move(prepared), nf);
  }

  bool query_edges(VertexId s, VertexId t, const FaultSet& faults,
                   Workspace& workspace,
                   const QueryOptions& options) const override {
    const auto& fs = checked_cast<const CoreStoredFaults&>(
        faults, "fault set from a different backend");
    auto& ws = checked_cast<CoreStoredWorkspace&>(
        workspace, "workspace from a different backend");
    const auto [anc_s, anc_t] = anc_pair(s, t);
    return FtcDecoder::connected(VertexLabel{params_, anc_s},
                                 VertexLabel{params_, anc_t}, fs.prepared(),
                                 ws.inner(), options);
  }

 private:
  EdgeLabel decode_edge(EdgeId e) const {
    const std::vector<std::uint8_t> blob = copy_edge_blob(e);
    store::ByteReader r(blob);
    return store::decode_core_edge(r, params_);
  }

  LabelParams params_;
  std::vector<std::uint32_t> level_bounds_;  // empty for v1 containers
  std::vector<EdgeLabel> edge_cache_;        // kMaterialize only
};

class StoredCycleScheme final : public StoredSchemeBase {
 public:
  StoredCycleScheme(std::shared_ptr<const StoreView> view, LoadMode mode)
      : StoredSchemeBase(std::move(view), mode) {
    store::ByteReader pr(view_->params_blob());
    params_ = store::decode_cycle_params(pr);
    if (mode == LoadMode::kMaterialize) {
      materialize_vertices();
      edge_cache_.reserve(num_edges());
      for (EdgeId e = 0; e < num_edges(); ++e) {
        edge_cache_.push_back(decode_edge(e));
      }
    }
  }

  BackendKind backend() const override {
    return BackendKind::kDp21CycleSpace;
  }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<EmptyStoredWorkspace>();
  }

 protected:
  std::unique_ptr<FaultSet> prepare_edge_faults(
      std::span<const EdgeId> edge_faults) const override {
    std::vector<dp21::CsEdgeLabel> labels;
    labels.reserve(edge_faults.size());
    for (const EdgeId e : edge_faults) {
      labels.push_back(edge_cache_.empty() ? decode_edge(e) : edge_cache_[e]);
    }
    return std::make_unique<CycleStoredFaults>(
        dp21::CycleSpaceFtc::Prepared::prepare(labels), labels.size());
  }

  bool query_edges(VertexId s, VertexId t, const FaultSet& faults,
                   Workspace& /*workspace*/,
                   const QueryOptions& /*options*/) const override {
    const auto& fs = checked_cast<const CycleStoredFaults&>(
        faults, "fault set from a different backend");
    const auto [anc_s, anc_t] = anc_pair(s, t);
    return dp21::CycleSpaceFtc::connected(dp21::CsVertexLabel{anc_s},
                                          dp21::CsVertexLabel{anc_t},
                                          fs.prepared());
  }

 private:
  dp21::CsEdgeLabel decode_edge(EdgeId e) const {
    const std::vector<std::uint8_t> blob = copy_edge_blob(e);
    store::ByteReader r(blob);
    return store::decode_cycle_edge(r, params_);
  }

  store::CycleParams params_;
  std::vector<dp21::CsEdgeLabel> edge_cache_;  // kMaterialize only
};

class StoredAgmScheme final : public StoredSchemeBase {
 public:
  StoredAgmScheme(std::shared_ptr<const StoreView> view, LoadMode mode)
      : StoredSchemeBase(std::move(view), mode) {
    store::ByteReader pr(view_->params_blob());
    params_ = store::decode_agm_params(pr);
    if (mode == LoadMode::kMaterialize) {
      materialize_vertices();
      edge_cache_.reserve(num_edges());
      for (EdgeId e = 0; e < num_edges(); ++e) {
        edge_cache_.push_back(decode_edge(e));
      }
    }
  }

  BackendKind backend() const override { return BackendKind::kDp21Agm; }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<AgmStoredWorkspace>();
  }

 protected:
  std::unique_ptr<FaultSet> prepare_edge_faults(
      std::span<const EdgeId> edge_faults) const override {
    std::vector<dp21::AgmEdgeLabel> labels;
    labels.reserve(edge_faults.size());
    for (const EdgeId e : edge_faults) {
      labels.push_back(edge_cache_.empty() ? decode_edge(e) : edge_cache_[e]);
    }
    return std::make_unique<AgmStoredFaults>(
        dp21::AgmFtc::Prepared::prepare(labels), labels.size());
  }

  bool query_edges(VertexId s, VertexId t, const FaultSet& faults,
                   Workspace& workspace,
                   const QueryOptions& /*options*/) const override {
    const auto& fs = checked_cast<const AgmStoredFaults&>(
        faults, "fault set from a different backend");
    auto& ws = checked_cast<AgmStoredWorkspace&>(
        workspace, "workspace from a different backend");
    const auto [anc_s, anc_t] = anc_pair(s, t);
    return dp21::AgmFtc::connected(dp21::AgmVertexLabel{anc_s},
                                   dp21::AgmVertexLabel{anc_t},
                                   fs.prepared(), ws.inner());
  }

 private:
  dp21::AgmEdgeLabel decode_edge(EdgeId e) const {
    const std::vector<std::uint8_t> blob = copy_edge_blob(e);
    store::ByteReader r(blob);
    return store::decode_agm_edge(r, params_);
  }

  store::AgmParams params_;
  std::vector<dp21::AgmEdgeLabel> edge_cache_;  // kMaterialize only
};

}  // namespace

std::unique_ptr<ConnectivityScheme> load_scheme(
    std::shared_ptr<const StoreView> view, LoadMode mode) {
  FTC_REQUIRE(view != nullptr, "null label store view");
  switch (view->info().backend) {
    case BackendKind::kCoreFtc:
      return std::make_unique<StoredCoreScheme>(std::move(view), mode);
    case BackendKind::kDp21CycleSpace:
      return std::make_unique<StoredCycleScheme>(std::move(view), mode);
    case BackendKind::kDp21Agm:
      return std::make_unique<StoredAgmScheme>(std::move(view), mode);
  }
  FTC_CHECK(false, "unknown BackendKind in validated store");
  return nullptr;  // unreachable
}

std::unique_ptr<ConnectivityScheme> load_scheme(const std::string& path,
                                                const LoadOptions& options) {
  // open_store_view dispatches on the magic: single containers and
  // sharded manifests load through the same StoreView interface.
  auto scheme = load_scheme(open_store_view(path, options.verify_checksum),
                            options.mode);
  // Fold a "<path>.jrnl" deletion-journal sidecar into the session
  // (journal.hpp): journaled deletions then behave as implicit faults in
  // every query until the store is rebuilt or compacted away.
  attach_journal_sidecar(*scheme, path, options.replay_journal);
  return scheme;
}

}  // namespace ftc::core
