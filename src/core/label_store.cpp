// LabelStore implementation: container writer (ConnectivityScheme::save),
// validating mmap reader (LabelStoreView), and the loaded label-served
// backends behind load_scheme().
//
// A loaded scheme is the labeling-scheme model made literal: it holds no
// graph and no construction state, only the label blobs, and answers
// queries through the same universal decoders as the in-memory backends.
// In kMmap mode the per-query cost is two 8-byte vertex-record reads from
// the mapping — no std::vector is materialized on the query path; only
// the <= f fault-edge labels of a session are decoded, once, inside
// prepare_faults(). The served hot path is therefore the shared one: the
// core backend queries through PreparedFaults + the copy-on-write
// DecoderWorkspace of core/ftc_query.cpp, and all fragment/sketch merges
// (core RS sums, AGM cells, cycle-space vectors) go through the word-XOR
// kernels in util/xor_kernel.hpp.
#include "core/label_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/ftc_query.hpp"

namespace ftc::core {

namespace {

using graph::EdgeId;
using graph::VertexId;

std::size_t align8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }

std::uint64_t read_u64_at(const std::uint8_t* base, std::size_t offset) {
  // Little-endian on disk, independent of host byte order.
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{base[offset + i]} << (8 * i);
  return v;
}

// Fixed per-edge blob size implied by the params blob, used to
// cross-check the offset index at open.
std::size_t expected_edge_blob_bytes(BackendKind backend,
                                     std::span<const std::uint8_t> params) {
  store::ByteReader r(params);
  std::size_t expect = 0;
  switch (backend) {
    case BackendKind::kCoreFtc:
      expect = store::core_edge_blob_bytes(store::decode_core_params(r));
      break;
    case BackendKind::kDp21CycleSpace:
      expect = store::cycle_edge_blob_bytes(store::decode_cycle_params(r));
      break;
    case BackendKind::kDp21Agm:
      expect = store::agm_edge_blob_bytes(store::decode_agm_params(r));
      break;
  }
  if (r.remaining() != 0) {
    throw StoreError("params blob size inconsistent with backend");
  }
  return expect;
}

void derive_label_bits(BackendKind backend,
                       std::span<const std::uint8_t> params, StoreInfo& info) {
  store::ByteReader r(params);
  switch (backend) {
    case BackendKind::kCoreFtc: {
      const LabelParams p = store::decode_core_params(r);
      info.vertex_label_bits = 2 * p.coord_bits();
      info.edge_label_bits = 4 * p.coord_bits() +
                             static_cast<std::size_t>(p.num_levels) * p.k *
                                 p.field_bits;
      break;
    }
    case BackendKind::kDp21CycleSpace: {
      const store::CycleParams p = store::decode_cycle_params(r);
      info.vertex_label_bits = 2 * p.coord_bits;
      info.edge_label_bits = 4 * p.coord_bits + p.vector_bits + 1;
      break;
    }
    case BackendKind::kDp21Agm: {
      const store::AgmParams p = store::decode_agm_params(r);
      info.vertex_label_bits = 2 * p.coord_bits;
      info.edge_label_bits = 4 * p.coord_bits + p.sketch_words() * 64;
      break;
    }
  }
}

}  // namespace

// ------------------------------------------------------------------
// Writer.

void ConnectivityScheme::save(const std::string& path) const {
  const VertexId n = num_vertices();
  const EdgeId m = num_edges();

  store::ByteWriter params;
  serialize_params(params);

  // Edge blobs first (the offset index precedes them in the file).
  store::ByteWriter blobs;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(static_cast<std::size_t>(m) + 1);
  for (EdgeId e = 0; e < m; ++e) {
    offsets.push_back(blobs.size());
    serialize_edge_label(e, blobs);
  }
  offsets.push_back(blobs.size());

  store::ByteWriter w;
  w.u64(store::kMagic);
  w.u32(static_cast<std::uint32_t>(store::kFormatVersion));
  w.u8(static_cast<std::uint8_t>(backend()));
  w.u8(0);
  w.u8(0);
  w.u8(0);
  w.u64(n);
  w.u64(m);
  w.u64(params.size());
  const std::size_t payload_checksum_off = w.size();
  w.u64(0);  // payload checksum, patched below
  w.u64(0);  // reserved
  const std::size_t header_checksum_off = w.size();
  w.u64(0);  // header checksum, patched below
  FTC_CHECK(w.size() == store::kHeaderBytes, "store header layout drifted");

  w.bytes(params.view());
  w.pad_to(8);
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t before = w.size();
    serialize_vertex_label(v, w);
    FTC_CHECK(w.size() - before == store::kVertexRecordBytes,
              "vertex record must be fixed-size");
  }
  w.pad_to(8);
  for (const std::uint64_t off : offsets) w.u64(off);
  w.bytes(blobs.view());

  const auto file = w.view();
  w.patch_u64(payload_checksum_off,
              store::fnv1a(file.subspan(store::kHeaderBytes)));
  w.patch_u64(header_checksum_off,
              store::fnv1a(file.first(header_checksum_off)));

  // Write to a unique temp file (per process AND per call, for
  // concurrent saves from one process), fsync it, rename into place and
  // fsync the directory — so a crashed, failed or racing save never
  // leaves a half-written store under the target name, even across
  // power loss on writeback filesystems.
  static std::atomic<unsigned> save_counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) +
                          "." + std::to_string(save_counter.fetch_add(1));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) throw StoreError("cannot open for writing: " + tmp);
  const auto fail_write = [&](const std::string& what) -> StoreError {
    ::close(fd);
    std::remove(tmp.c_str());
    return StoreError(what + ": " + tmp);
  };
  std::size_t written = 0;
  while (written < file.size()) {
    const ::ssize_t n =
        ::write(fd, file.data() + written, file.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw fail_write("write failed");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) throw fail_write("fsync failed");
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw StoreError("close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StoreError("cannot rename " + tmp + " -> " + path);
  }
  // Persist the rename itself (best-effort: the data is already synced,
  // and some filesystems reject directory fsync).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

// ------------------------------------------------------------------
// Mmap view.

LabelStoreView::~LabelStoreView() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
  }
}

std::shared_ptr<const LabelStoreView> LabelStoreView::open(
    const std::string& path, bool verify_checksum) {
  // O_NONBLOCK so opening a FIFO with no writer fails fast instead of
  // blocking; harmless for regular files (the only kind accepted below).
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC | O_NONBLOCK);
  if (fd < 0) {
    throw StoreError("cannot open label store: " + path + " (" +
                     std::strerror(errno) + ")");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    throw StoreError("not a regular file: " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < store::kHeaderBytes) {
    ::close(fd);
    throw StoreError("label store truncated (no header): " + path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    throw StoreError("mmap failed: " + path + " (" + std::strerror(errno) +
                     ")");
  }

  std::shared_ptr<LabelStoreView> view(new LabelStoreView());
  view->map_ = static_cast<const std::uint8_t*>(map);
  view->map_bytes_ = size;

  const std::span<const std::uint8_t> bytes(view->map_, size);
  store::ByteReader h(bytes.first(store::kHeaderBytes));
  if (h.u64() != store::kMagic) {
    throw StoreError("bad magic (not a label store file): " + path);
  }
  StoreInfo& info = view->info_;
  info.file_bytes = size;
  info.format_version = h.u32();
  const std::uint8_t backend_byte = h.u8();
  h.u8();
  h.u8();
  h.u8();
  const std::uint64_t n64 = h.u64();
  const std::uint64_t m64 = h.u64();
  const std::uint64_t params_size = h.u64();
  info.payload_checksum = h.u64();
  h.u64();  // reserved
  const std::size_t header_checksum_off = h.pos();
  const std::uint64_t header_checksum = h.u64();
  if (store::fnv1a(bytes.first(header_checksum_off)) != header_checksum) {
    throw StoreError("corrupt header (checksum mismatch): " + path);
  }
  if (info.format_version != store::kFormatVersion) {
    throw StoreError("unsupported label store format version " +
                     std::to_string(info.format_version) + ": " + path);
  }
  if (backend_byte > static_cast<std::uint8_t>(BackendKind::kDp21Agm)) {
    throw StoreError("unknown backend kind in label store: " + path);
  }
  info.backend = static_cast<BackendKind>(backend_byte);
  if (n64 >= graph::kNoVertex || m64 >= graph::kNoEdge) {
    throw StoreError("label store dimensions out of range: " + path);
  }
  info.num_vertices = static_cast<VertexId>(n64);
  info.num_edges = static_cast<EdgeId>(m64);

  // Section layout, with every bound checked against the mapped size.
  const auto fail_bounds = [&]() -> StoreError {
    return StoreError("label store truncated (sections exceed file): " +
                      path);
  };
  if (params_size > size - store::kHeaderBytes) throw fail_bounds();
  view->params_off_ = store::kHeaderBytes;
  info.params_bytes = static_cast<std::size_t>(params_size);
  view->vertex_off_ = align8(view->params_off_ + info.params_bytes);
  if (view->vertex_off_ > size) throw fail_bounds();
  info.vertex_section_bytes =
      static_cast<std::size_t>(info.num_vertices) * store::kVertexRecordBytes;
  if (info.vertex_section_bytes > size - view->vertex_off_) {
    throw fail_bounds();
  }
  view->index_off_ = view->vertex_off_ + info.vertex_section_bytes;
  info.edge_index_bytes = (static_cast<std::size_t>(info.num_edges) + 1) * 8;
  if (info.edge_index_bytes > size - view->index_off_) throw fail_bounds();
  view->blob_off_ = view->index_off_ + info.edge_index_bytes;
  info.edge_blob_bytes = size - view->blob_off_;

  // Offset index: starts at 0, non-decreasing, ends exactly at the blob
  // section end, and (the blobs being fixed-size per scheme) every
  // spacing must match the width implied by the params blob.
  const std::size_t expected_blob =
      expected_edge_blob_bytes(info.backend, view->params_blob());
  std::uint64_t prev = read_u64_at(view->map_, view->index_off_);
  if (prev != 0) {
    throw StoreError("corrupt edge index (must start at 0): " + path);
  }
  for (EdgeId e = 0; e < info.num_edges; ++e) {
    const std::uint64_t next = read_u64_at(
        view->map_,
        view->index_off_ + 8 * (static_cast<std::size_t>(e) + 1));
    if (next < prev || next > info.edge_blob_bytes) {
      throw StoreError("corrupt edge index (offsets not monotone): " + path);
    }
    if (next - prev != expected_blob) {
      throw StoreError("corrupt edge index (blob size mismatch): " + path);
    }
    prev = next;
  }
  if (prev != info.edge_blob_bytes) {
    throw StoreError("corrupt edge index (trailing bytes): " + path);
  }

  derive_label_bits(info.backend, view->params_blob(), info);

  if (verify_checksum &&
      store::fnv1a(bytes.subspan(store::kHeaderBytes)) !=
          info.payload_checksum) {
    throw StoreError("payload checksum mismatch (corrupt label store): " +
                     path);
  }
  return view;
}

std::span<const std::uint8_t> LabelStoreView::params_blob() const {
  return {map_ + params_off_, info_.params_bytes};
}

std::span<const std::uint8_t> LabelStoreView::vertex_blob(VertexId v) const {
  FTC_REQUIRE(v < info_.num_vertices, "vertex out of range");
  return {map_ + vertex_off_ +
              static_cast<std::size_t>(v) * store::kVertexRecordBytes,
          store::kVertexRecordBytes};
}

std::span<const std::uint8_t> LabelStoreView::edge_blob(EdgeId e) const {
  FTC_REQUIRE(e < info_.num_edges, "edge out of range");
  const std::uint64_t begin =
      read_u64_at(map_, index_off_ + 8 * static_cast<std::size_t>(e));
  const std::uint64_t end =
      read_u64_at(map_, index_off_ + 8 * (static_cast<std::size_t>(e) + 1));
  return {map_ + blob_off_ + begin, static_cast<std::size_t>(end - begin)};
}

// ------------------------------------------------------------------
// Loaded (label-served) backends.

namespace {

// Downcast guard for fault sets / workspaces, mirroring the in-memory
// adapters: static in release, RTTI-checked in debug.
template <typename T, typename U>
T& stored_cast(U& obj, const char* what) {
#ifndef NDEBUG
  FTC_REQUIRE(dynamic_cast<std::remove_reference_t<T>*>(&obj) != nullptr,
              what);
#else
  (void)what;
#endif
  return static_cast<T&>(obj);
}

class CoreStoredFaults final : public ConnectivityScheme::FaultSet {
 public:
  explicit CoreStoredFaults(PreparedFaults prepared)
      : prepared_(std::move(prepared)) {}
  std::size_t num_faults() const override { return prepared_.num_faults(); }
  const PreparedFaults& prepared() const { return prepared_; }

 private:
  PreparedFaults prepared_;
};

class CoreStoredWorkspace final : public ConnectivityScheme::Workspace {
 public:
  DecoderWorkspace& decoder() { return decoder_; }

 private:
  DecoderWorkspace decoder_;
};

template <typename Label>
class LabelVecFaults final : public ConnectivityScheme::FaultSet {
 public:
  explicit LabelVecFaults(std::vector<Label> labels)
      : labels_(std::move(labels)) {}
  std::size_t num_faults() const override { return labels_.size(); }
  std::span<const Label> labels() const { return labels_; }

 private:
  std::vector<Label> labels_;
};

class EmptyStoredWorkspace final : public ConnectivityScheme::Workspace {};

// Shared plumbing: the mapping, header-derived sizes, and save() support
// by re-emitting the raw blobs (a loaded store round-trips bit-exactly).
class StoredSchemeBase : public ConnectivityScheme {
 public:
  explicit StoredSchemeBase(std::shared_ptr<const LabelStoreView> view)
      : view_(std::move(view)) {}

  VertexId num_vertices() const override {
    return view_->info().num_vertices;
  }
  EdgeId num_edges() const override { return view_->info().num_edges; }
  std::size_t vertex_label_bits() const override {
    return view_->info().vertex_label_bits;
  }
  std::size_t edge_label_bits() const override {
    return view_->info().edge_label_bits;
  }

  void serialize_params(store::ByteWriter& out) const override {
    out.bytes(view_->params_blob());
  }
  void serialize_vertex_label(VertexId v,
                              store::ByteWriter& out) const override {
    out.bytes(view_->vertex_blob(v));
  }
  void serialize_edge_label(EdgeId e, store::ByteWriter& out) const override {
    out.bytes(view_->edge_blob(e));
  }

 protected:
  // Zero-copy vertex-label read: one bounds-checked 8-byte record
  // straight from the mapping.
  graph::AncestryLabel mapped_anc(VertexId v) const {
    store::ByteReader r(view_->vertex_blob(v));
    return store::decode_vertex_record(r);
  }

  // kMaterialize: pre-decode every vertex record (the record layout is
  // backend-universal, so the cache lives here for all three schemes).
  void materialize_vertices() {
    vertex_cache_.reserve(num_vertices());
    for (VertexId v = 0; v < num_vertices(); ++v) {
      vertex_cache_.push_back(mapped_anc(v));
    }
  }

  graph::AncestryLabel anc(VertexId v) const {
    if (vertex_cache_.empty()) return mapped_anc(v);
    FTC_REQUIRE(v < vertex_cache_.size(), "vertex out of range");
    return vertex_cache_[v];
  }

  std::shared_ptr<const LabelStoreView> view_;
  std::vector<graph::AncestryLabel> vertex_cache_;  // kMaterialize only
};

class StoredCoreScheme final : public StoredSchemeBase {
 public:
  StoredCoreScheme(std::shared_ptr<const LabelStoreView> view, LoadMode mode)
      : StoredSchemeBase(std::move(view)) {
    store::ByteReader pr(view_->params_blob());
    params_ = store::decode_core_params(pr);
    if (mode == LoadMode::kMaterialize) {
      materialize_vertices();
      edge_cache_.reserve(num_edges());
      for (EdgeId e = 0; e < num_edges(); ++e) {
        edge_cache_.push_back(decode_edge(e));
      }
    }
  }

  BackendKind backend() const override { return BackendKind::kCoreFtc; }

  std::unique_ptr<FaultSet> prepare_faults(
      std::span<const EdgeId> edge_faults) const override {
    const auto ids = canonicalize_faults(edge_faults, num_edges());
    std::vector<EdgeLabel> labels;
    labels.reserve(ids.size());
    for (const EdgeId e : ids) {
      labels.push_back(edge_cache_.empty() ? decode_edge(e) : edge_cache_[e]);
    }
    return std::make_unique<CoreStoredFaults>(PreparedFaults::prepare(labels));
  }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<CoreStoredWorkspace>();
  }

  bool query(VertexId s, VertexId t, const FaultSet& faults,
             Workspace& workspace,
             const QueryOptions& options) const override {
    const auto& fs = stored_cast<const CoreStoredFaults&>(
        faults, "fault set from a different backend");
    auto& ws = stored_cast<CoreStoredWorkspace&>(
        workspace, "workspace from a different backend");
    return FtcDecoder::connected(VertexLabel{params_, anc(s)},
                                 VertexLabel{params_, anc(t)}, fs.prepared(),
                                 ws.decoder(), options);
  }

 private:
  EdgeLabel decode_edge(EdgeId e) const {
    store::ByteReader r(view_->edge_blob(e));
    return store::decode_core_edge(r, params_);
  }

  LabelParams params_;
  std::vector<EdgeLabel> edge_cache_;  // kMaterialize only
};

class StoredCycleScheme final : public StoredSchemeBase {
 public:
  StoredCycleScheme(std::shared_ptr<const LabelStoreView> view, LoadMode mode)
      : StoredSchemeBase(std::move(view)) {
    store::ByteReader pr(view_->params_blob());
    params_ = store::decode_cycle_params(pr);
    if (mode == LoadMode::kMaterialize) {
      materialize_vertices();
      edge_cache_.reserve(num_edges());
      for (EdgeId e = 0; e < num_edges(); ++e) {
        edge_cache_.push_back(decode_edge(e));
      }
    }
  }

  BackendKind backend() const override {
    return BackendKind::kDp21CycleSpace;
  }

  std::unique_ptr<FaultSet> prepare_faults(
      std::span<const EdgeId> edge_faults) const override {
    const auto ids = canonicalize_faults(edge_faults, num_edges());
    std::vector<dp21::CsEdgeLabel> labels;
    labels.reserve(ids.size());
    for (const EdgeId e : ids) {
      labels.push_back(edge_cache_.empty() ? decode_edge(e) : edge_cache_[e]);
    }
    return std::make_unique<LabelVecFaults<dp21::CsEdgeLabel>>(
        std::move(labels));
  }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<EmptyStoredWorkspace>();
  }

  bool query(VertexId s, VertexId t, const FaultSet& faults,
             Workspace& /*workspace*/,
             const QueryOptions& /*options*/) const override {
    const auto& fs = stored_cast<const LabelVecFaults<dp21::CsEdgeLabel>&>(
        faults, "fault set from a different backend");
    return dp21::CycleSpaceFtc::connected(dp21::CsVertexLabel{anc(s)},
                                          dp21::CsVertexLabel{anc(t)},
                                          fs.labels());
  }

 private:
  dp21::CsEdgeLabel decode_edge(EdgeId e) const {
    store::ByteReader r(view_->edge_blob(e));
    return store::decode_cycle_edge(r, params_);
  }

  store::CycleParams params_;
  std::vector<dp21::CsEdgeLabel> edge_cache_;  // kMaterialize only
};

class StoredAgmScheme final : public StoredSchemeBase {
 public:
  StoredAgmScheme(std::shared_ptr<const LabelStoreView> view, LoadMode mode)
      : StoredSchemeBase(std::move(view)) {
    store::ByteReader pr(view_->params_blob());
    params_ = store::decode_agm_params(pr);
    if (mode == LoadMode::kMaterialize) {
      materialize_vertices();
      edge_cache_.reserve(num_edges());
      for (EdgeId e = 0; e < num_edges(); ++e) {
        edge_cache_.push_back(decode_edge(e));
      }
    }
  }

  BackendKind backend() const override { return BackendKind::kDp21Agm; }

  std::unique_ptr<FaultSet> prepare_faults(
      std::span<const EdgeId> edge_faults) const override {
    const auto ids = canonicalize_faults(edge_faults, num_edges());
    std::vector<dp21::AgmEdgeLabel> labels;
    labels.reserve(ids.size());
    for (const EdgeId e : ids) {
      labels.push_back(edge_cache_.empty() ? decode_edge(e) : edge_cache_[e]);
    }
    return std::make_unique<LabelVecFaults<dp21::AgmEdgeLabel>>(
        std::move(labels));
  }

  std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<EmptyStoredWorkspace>();
  }

  bool query(VertexId s, VertexId t, const FaultSet& faults,
             Workspace& /*workspace*/,
             const QueryOptions& /*options*/) const override {
    const auto& fs = stored_cast<const LabelVecFaults<dp21::AgmEdgeLabel>&>(
        faults, "fault set from a different backend");
    return dp21::AgmFtc::connected(dp21::AgmVertexLabel{anc(s)},
                                   dp21::AgmVertexLabel{anc(t)},
                                   fs.labels());
  }

 private:
  dp21::AgmEdgeLabel decode_edge(EdgeId e) const {
    store::ByteReader r(view_->edge_blob(e));
    return store::decode_agm_edge(r, params_);
  }

  store::AgmParams params_;
  std::vector<dp21::AgmEdgeLabel> edge_cache_;  // kMaterialize only
};

}  // namespace

std::unique_ptr<ConnectivityScheme> load_scheme(
    std::shared_ptr<const LabelStoreView> view, LoadMode mode) {
  FTC_REQUIRE(view != nullptr, "null label store view");
  switch (view->info().backend) {
    case BackendKind::kCoreFtc:
      return std::make_unique<StoredCoreScheme>(std::move(view), mode);
    case BackendKind::kDp21CycleSpace:
      return std::make_unique<StoredCycleScheme>(std::move(view), mode);
    case BackendKind::kDp21Agm:
      return std::make_unique<StoredAgmScheme>(std::move(view), mode);
  }
  FTC_CHECK(false, "unknown BackendKind in validated store");
  return nullptr;  // unreachable
}

std::unique_ptr<ConnectivityScheme> load_scheme(const std::string& path,
                                                const LoadOptions& options) {
  return load_scheme(LabelStoreView::open(path, options.verify_checksum),
                     options.mode);
}

}  // namespace ftc::core
