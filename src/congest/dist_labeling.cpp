#include "congest/dist_labeling.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/common.hpp"

namespace ftc::congest {

using gf::GF2_64;
using graph::EdgeId;
using graph::VertexId;

namespace {

enum Tag : std::uint64_t {
  kExplore = 1,   // BFS: payload = depth of sender
  kAdopt = 2,     // child -> parent
  kSize = 3,      // subtree size convergecast
  kInterval = 4,  // parent -> child: [tin, tout] of the child subtree
  kAnc = 5,       // ancestry label exchange on every edge
  kSyn = 6,       // pipelined syndrome slot: [slot, value]
};

// Packs two ancestry intervals into a GF(2^64) edge ID (16-bit coords),
// mirroring core::EdgeCode but local to the CONGEST demo (which runs on
// the input tree rather than the auxiliary tree).
GF2_64 edge_id(std::uint32_t tin_a, std::uint32_t tout_a, std::uint32_t tin_b,
               std::uint32_t tout_b) {
  if (tin_a > tin_b) {
    std::swap(tin_a, tin_b);
    std::swap(tout_a, tout_b);
  }
  return GF2_64((std::uint64_t{tin_a}) | (std::uint64_t{tout_a} << 16) |
                (std::uint64_t{tin_b} << 32) | (std::uint64_t{tout_b} << 48));
}

class LabelNode : public Node {
 public:
  LabelNode(const graph::Graph& g, VertexId self, VertexId root, unsigned k,
            unsigned anc_bits)
      : g_(g), self_(self), root_(root), k_(k), anc_bits_(anc_bits) {
    // Receive buffers exist from round 0: a child may start its syndrome
    // pipeline before this node finishes earlier phases.
    syn_acc_.assign(k_, GF2_64::zero());
    child_syn_count_.assign(k_, 0);
  }

  // Exposed state, read by run_distributed_labeling after quiescence.
  VertexId parent = graph::kNoVertex;
  EdgeId parent_edge = graph::kNoEdge;
  std::uint32_t depth = 0;
  std::uint32_t tin = 0;
  std::uint32_t tout = 0;
  std::uint32_t subtree_size = 0;
  std::vector<GF2_64> subtree_syndromes;
  unsigned sketch_done_round = 0;

  void on_round(unsigned round, std::span<const Message> inbox,
                std::vector<Message>* outbox) override {
    // ---- Phase 1: BFS adoption.
    if (round == 0 && self_ == root_) {
      parent = self_;
      depth = 0;
      adopted_ = true;
      for (const EdgeId e : g_.incident_edges(self_)) {
        send(outbox, e, {kExplore, 0});
      }
    }
    for (const Message& msg : inbox) {
      switch (msg.payload[0]) {
        case kExplore:
          if (!adopted_) {
            adopted_ = true;
            parent = msg.from;
            parent_edge = msg.edge;
            depth = static_cast<std::uint32_t>(msg.payload[1]) + 1;
            send(outbox, msg.edge, {kAdopt});
            for (const EdgeId e : g_.incident_edges(self_)) {
              if (e != msg.edge) send(outbox, e, {kExplore, depth});
            }
          }
          break;
        case kAdopt:
          children_.push_back({msg.from, msg.edge});
          break;
        case kSize:
          child_sizes_[msg.from] = static_cast<std::uint32_t>(msg.payload[1]);
          break;
        case kInterval:
          tin = static_cast<std::uint32_t>(msg.payload[1]);
          tout = static_cast<std::uint32_t>(msg.payload[2]);
          have_interval_ = true;
          break;
        case kAnc:
          neighbor_anc_[msg.edge] = {
              static_cast<std::uint32_t>(msg.payload[1]),
              static_cast<std::uint32_t>(msg.payload[2])};
          break;
        case kSyn: {
          const unsigned slot = static_cast<unsigned>(msg.payload[1]);
          child_syn_count_[slot] += 1;
          syn_acc_[slot] += GF2_64(msg.payload[2]);
          break;
        }
        default:
          FTC_CHECK(false, "unknown message tag");
      }
    }

    // ---- Phase 2: subtree sizes. Children are final 2 rounds after
    // adoption (adopt messages arrive at depth+2).
    if (adopted_ && !size_sent_ && round >= depth + 2) {
      std::sort(children_.begin(), children_.end());
      if (child_sizes_.size() == children_.size()) {
        subtree_size = 1;
        for (const auto& [cv, ce] : children_) subtree_size += child_sizes_[cv];
        size_sent_ = true;
        if (self_ == root_) {
          tin = 0;
          tout = subtree_size - 1;
          have_interval_ = true;
        } else {
          send(outbox, parent_edge, {kSize, subtree_size});
        }
      }
    }

    // Phase-5 sends must not share an edge with this round's phase-4
    // broadcast: latch the pre-round state.
    const bool anc_ready_at_entry = anc_sent_;

    // ---- Phase 3: interval assignment to children (pre-order, children
    // in increasing vertex-id order, matching the centralized layout).
    if (have_interval_ && !intervals_sent_ && size_sent_) {
      intervals_sent_ = true;
      std::uint32_t next = tin + 1;
      for (const auto& [cv, ce] : children_) {
        send(outbox, ce, {kInterval, next, next + child_sizes_[cv] - 1});
        next += child_sizes_[cv];
      }
    } else if (intervals_sent_ && !anc_sent_) {
      // ---- Phase 4 (next round, avoiding two messages on one edge):
      // announce the ancestry label on every edge.
      anc_sent_ = true;
      for (const EdgeId e : g_.incident_edges(self_)) {
        send(outbox, e, {kAnc, tin, tout});
      }
    }

    // ---- Phase 5: pipelined syndrome convergecast. Starts once all
    // neighbor labels arrived (degree known, one kAnc per edge).
    if (anc_ready_at_entry && !sketch_started_ &&
        neighbor_anc_.size() == g_.incident_edges(self_).size()) {
      sketch_started_ = true;
      own_syn_.assign(k_, GF2_64::zero());
      subtree_syndromes.assign(k_, GF2_64::zero());
      for (const EdgeId e : g_.incident_edges(self_)) {
        if (e == parent_edge) continue;
        bool is_child_edge = false;
        for (const auto& [cv, ce] : children_) is_child_edge |= (ce == e);
        if (is_child_edge) continue;
        // Non-tree edge: add its ID's odd power sums.
        const auto& [ntin, ntout] = neighbor_anc_[e];
        const GF2_64 id = edge_id(tin, tout, ntin, ntout);
        const GF2_64 id2 = id.square();
        GF2_64 p = id;
        for (unsigned j = 0; j < k_; ++j) {
          own_syn_[j] += p;
          p *= id2;
        }
      }
    }
    if (sketch_started_ && next_slot_ < k_) {
      // Forward at most ONE slot per round (one message per edge per
      // round is the CONGEST constraint); slots become ready in order,
      // which is exactly the pipelining of Section 8.
      if (next_slot_ < k_ &&
          child_syn_count_[next_slot_] == children_.size()) {
        const GF2_64 total = own_syn_[next_slot_] + syn_acc_[next_slot_];
        subtree_syndromes[next_slot_] = total;
        if (self_ != root_) {
          send(outbox, parent_edge, {kSyn, next_slot_, total.value()});
        }
        ++next_slot_;
        if (next_slot_ == k_) sketch_done_round = round;
      }
    }
  }

 private:
  void send(std::vector<Message>* outbox, EdgeId e,
            std::vector<std::uint64_t> payload) {
    Message msg;
    msg.edge = e;
    // Tag + up to two coordinates/values; a field element counts as
    // O(log n) machine words in the standard CONGEST accounting.
    msg.bits = 8;
    for (std::size_t i = 1; i < payload.size(); ++i) {
      msg.bits += std::max(anc_bits_, 64u);
    }
    msg.payload = std::move(payload);
    outbox->push_back(msg);
  }

  const graph::Graph& g_;
  VertexId self_;
  VertexId root_;
  unsigned k_;
  unsigned anc_bits_;

  bool adopted_ = false;
  bool size_sent_ = false;
  bool have_interval_ = false;
  bool intervals_sent_ = false;
  bool anc_sent_ = false;
  bool sketch_started_ = false;
  std::vector<std::pair<VertexId, EdgeId>> children_;
  std::map<VertexId, std::uint32_t> child_sizes_;
  std::map<EdgeId, std::pair<std::uint32_t, std::uint32_t>> neighbor_anc_;
  std::vector<GF2_64> own_syn_;
  std::vector<GF2_64> syn_acc_;
  std::vector<std::size_t> child_syn_count_;
  unsigned next_slot_ = 0;
};

}  // namespace

DistLabelingResult run_distributed_labeling(const graph::Graph& g,
                                            VertexId root, unsigned k) {
  FTC_REQUIRE(g.num_vertices() >= 1, "empty graph");
  const unsigned anc_bits =
      2 * std::max(1u, ceil_log2(std::max<VertexId>(g.num_vertices(), 2)));
  // Budget: tag + two values, where a value is a coordinate pair or one
  // 64-bit field word (O(log n) for the sizes simulated here).
  Simulator sim(g, /*message_budget_bits=*/8 + 2 * std::max(anc_bits, 64u));
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<LabelNode*> raw;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto node = std::make_unique<LabelNode>(g, v, root, k, anc_bits);
    raw.push_back(node.get());
    nodes.push_back(std::move(node));
  }
  sim.attach(std::move(nodes));
  const unsigned max_rounds = 10 * g.num_vertices() + 10 * k + 100;
  DistLabelingResult result;
  result.stats = sim.run(max_rounds);
  FTC_CHECK(result.stats.rounds < max_rounds,
            "distributed labeling did not quiesce");

  const VertexId n = g.num_vertices();
  result.parent.resize(n);
  result.depth.resize(n);
  result.tin.resize(n);
  result.tout.resize(n);
  result.subtree_size.resize(n);
  result.subtree_syndromes.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.parent[v] = raw[v]->parent;
    result.depth[v] = raw[v]->depth;
    result.tin[v] = raw[v]->tin;
    result.tout[v] = raw[v]->tout;
    result.subtree_size[v] = raw[v]->subtree_size;
    result.subtree_syndromes[v] = raw[v]->subtree_syndromes;
    result.sketch_phase_rounds =
        std::max(result.sketch_phase_rounds, raw[v]->sketch_done_round);
  }
  return result;
}

std::uint64_t netfind_round_model(std::uint64_t m_prime,
                                  std::uint64_t diameter) {
  if (m_prime == 0) return 0;
  const double m = static_cast<double>(m_prime);
  const double d = static_cast<double>(diameter);
  const double logm = std::max(1.0, std::log2(m));
  // Parallel recursion levels (depth > log(m')/2): (log m')/2 levels at
  // O(sqrt(m') + D) each; shallow levels: O(sqrt(m')) sequential calls at
  // O~(D) each; O(log n) hierarchy repetitions.
  const double per_netfind =
      (logm / 2) * (std::sqrt(m) + d) + std::sqrt(m) * (d + logm);
  return static_cast<std::uint64_t>(per_netfind * logm);
}

}  // namespace ftc::congest
