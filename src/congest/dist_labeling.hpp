// Distributed label construction in the CONGEST model (Section 8,
// Theorem 3). Real message-passing phases, all O(log n)-bit messages:
//
//   1. synchronous BFS tree construction from the root;
//   2. subtree-size convergecast;
//   3. top-down pre-order interval assignment — the KNR ancestry labels;
//   4. neighbor ancestry exchange (gives every edge its sketch-domain ID);
//   5. pipelined convergecast of the k outdetect syndromes: a node
//      forwards syndrome slot j as soon as all children delivered slot j,
//      so the phase completes in O(depth + k) rounds — the O~(D + f^2)
//      term of Theorem 3.
//
// The NetFind hierarchy construction is *modeled* per Lemma 13 (see
// DESIGN.md Substitutions #3): `netfind_round_model` returns the round
// cost the lemma derives; the hierarchy itself is computed by the
// verified sequential NetFind.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/simulator.hpp"
#include "gf/gf2.hpp"
#include "graph/graph.hpp"

namespace ftc::congest {

// Runs phases 1-5 on graph g rooted at root, with k syndrome slots.
// Returns per-phase round counts plus every node's computed state so
// tests can compare against the centralized algorithms.
struct DistLabelingResult {
  SimStats stats;
  std::vector<graph::VertexId> parent;
  std::vector<std::uint32_t> depth;
  std::vector<std::uint32_t> tin;
  std::vector<std::uint32_t> tout;
  std::vector<std::uint32_t> subtree_size;
  // Per vertex: subtree XOR of the k odd power sums of incident non-tree
  // edge IDs (the quantity a tree edge's label carries, Prop. 4).
  std::vector<std::vector<gf::GF2_64>> subtree_syndromes;
  // Rounds at which the pipelined sketch phase started/completed.
  unsigned sketch_phase_rounds = 0;
};

DistLabelingResult run_distributed_labeling(const graph::Graph& g,
                                            graph::VertexId root, unsigned k);

// Lemma 13's analytical round cost for the distributed NetFind hierarchy:
// parallel recursion levels above depth (log m')/2 cost O(sqrt(m') + D)
// each; the O(sqrt(m')) shallow calls run sequentially at O~(D) each;
// O(log n) hierarchy levels repeat the recursion.
std::uint64_t netfind_round_model(std::uint64_t num_nontree_edges,
                                  std::uint64_t diameter);

}  // namespace ftc::congest
