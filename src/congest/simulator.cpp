#include "congest/simulator.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace ftc::congest {

Simulator::Simulator(const graph::Graph& g, unsigned message_budget_bits)
    : g_(g), budget_(message_budget_bits) {
  FTC_REQUIRE(budget_ >= 1, "message budget must be positive");
}

void Simulator::attach(std::vector<std::unique_ptr<Node>> nodes) {
  FTC_REQUIRE(nodes.size() == g_.num_vertices(),
              "need exactly one node per vertex");
  nodes_ = std::move(nodes);
}

SimStats Simulator::run(unsigned max_rounds) {
  FTC_REQUIRE(!nodes_.empty(), "attach nodes before running");
  SimStats stats;
  std::vector<std::vector<Message>> inbox(g_.num_vertices());
  std::vector<std::vector<Message>> next(g_.num_vertices());
  bool in_flight = true;  // nodes get at least one activation
  for (unsigned round = 0; round < max_rounds; ++round) {
    if (round > 0 && !in_flight) break;
    in_flight = false;
    ++stats.rounds;
    for (graph::VertexId v = 0; v < g_.num_vertices(); ++v) {
      std::vector<Message> outbox;
      nodes_[v]->on_round(round, inbox[v], &outbox);
      std::vector<graph::EdgeId> used;
      for (Message& msg : outbox) {
        FTC_REQUIRE(msg.edge < g_.num_edges(), "message on unknown edge");
        const auto& ed = g_.edge(msg.edge);
        FTC_REQUIRE(ed.u == v || ed.v == v,
                    "node sent on a non-incident edge");
        FTC_REQUIRE(std::find(used.begin(), used.end(), msg.edge) ==
                        used.end(),
                    "CONGEST allows one message per edge per round");
        used.push_back(msg.edge);
        msg.from = v;
        msg.to = g_.other_endpoint(msg.edge, v);
        FTC_REQUIRE(msg.bits >= 1 && msg.bits <= budget_,
                    "message exceeds the CONGEST bit budget");
        FTC_REQUIRE(msg.payload.size() * 64 >= msg.bits ||
                        msg.payload.size() * 64 + 64 > msg.bits,
                    "declared bits inconsistent with payload");
        ++stats.messages;
        stats.total_bits += msg.bits;
        stats.max_message_bits = std::max(stats.max_message_bits, msg.bits);
        next[msg.to].push_back(std::move(msg));
        in_flight = true;
      }
    }
    for (graph::VertexId v = 0; v < g_.num_vertices(); ++v) {
      inbox[v] = std::move(next[v]);
      next[v].clear();
    }
  }
  return stats;
}

}  // namespace ftc::congest
