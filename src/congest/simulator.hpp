// Synchronous message-passing simulator for the CONGEST model
// (Section 8): per round, every node may send one B-bit message over each
// incident edge; B = O(log n) is enforced per message, and the simulator
// accounts rounds, message count and bit volume.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ftc::congest {

struct Message {
  graph::EdgeId edge = graph::kNoEdge;
  graph::VertexId from = graph::kNoVertex;
  graph::VertexId to = graph::kNoVertex;
  std::vector<std::uint64_t> payload;
  unsigned bits = 0;  // declared size; must cover payload and fit budget
};

// Node behavior: invoked once per round with the messages delivered this
// round; sends by appending to outbox.
class Node {
 public:
  virtual ~Node() = default;
  virtual void on_round(unsigned round, std::span<const Message> inbox,
                        std::vector<Message>* outbox) = 0;
};

struct SimStats {
  unsigned rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  unsigned max_message_bits = 0;
};

class Simulator {
 public:
  // message_budget_bits: the CONGEST B; messages larger than this throw.
  Simulator(const graph::Graph& g, unsigned message_budget_bits);

  // One node object per vertex, in vertex order.
  void attach(std::vector<std::unique_ptr<Node>> nodes);

  // Runs until no messages are in flight (quiescence) or max_rounds.
  SimStats run(unsigned max_rounds);

  unsigned message_budget_bits() const { return budget_; }

 private:
  const graph::Graph& g_;
  unsigned budget_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace ftc::congest
