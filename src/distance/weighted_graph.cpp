#include "distance/weighted_graph.hpp"

#include <queue>

namespace ftc::distance {

std::vector<Weight> dijkstra(const WeightedGraph& g, graph::VertexId src,
                             std::span<const graph::EdgeId> faults,
                             Weight radius) {
  const auto& topo = g.topology();
  std::vector<char> faulty(topo.num_edges(), 0);
  for (const graph::EdgeId e : faults) faulty[e] = 1;
  std::vector<Weight> dist(topo.num_vertices(), kInfinity);
  using Item = std::pair<Weight, graph::VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[src] = 0;
  pq.emplace(0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const graph::EdgeId e : topo.incident_edges(u)) {
      if (faulty[e]) continue;
      const graph::VertexId w = topo.other_endpoint(e, u);
      const Weight nd = d + g.weight(e);
      if (nd <= radius && nd < dist[w]) {
        dist[w] = nd;
        pq.emplace(nd, w);
      }
    }
  }
  return dist;
}

Weight exact_distance(const WeightedGraph& g, graph::VertexId s,
                      graph::VertexId t,
                      std::span<const graph::EdgeId> faults) {
  return dijkstra(g, s, faults)[t];
}

}  // namespace ftc::distance
