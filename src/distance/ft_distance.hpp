// Fault-tolerant approximate distance labeling (Corollary 1), via the
// DP21 black-box reduction the paper invokes: for every distance scale
// r = 1, 2, 4, ..., build a sparse cover (radius ~k*r, overlap ~n^(1/k))
// and an f-FTC labeling of every cluster subgraph. A query walks the
// scales bottom-up; at the first scale where s and t share a cluster that
// stays connected under the faults, the cluster diameter bounds the
// distance: the reported estimate is a true upper bound on
// dist_{G-F}(s, t) within a factor O(|F| k) of optimal.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/ftc_labels.hpp"
#include "core/ftc_scheme.hpp"
#include "distance/sparse_cover.hpp"

namespace ftc::distance {

struct FtDistanceConfig {
  unsigned f = 2;        // fault capacity of every cluster labeling
  unsigned k = 2;        // cover parameter (stretch/size tradeoff)
  double k_scale = 4.0;  // forwarded to the per-cluster FTC schemes
};

// Globally unique cluster identity: (scale index, cluster index).
struct ClusterKey {
  std::uint32_t scale = 0;
  std::uint32_t index = 0;
  friend bool operator==(const ClusterKey&, const ClusterKey&) = default;
  friend auto operator<=>(const ClusterKey&, const ClusterKey&) = default;
};

struct DistVertexLabel {
  struct Entry {
    ClusterKey key;
    core::VertexLabel local;
  };
  std::uint32_t cover_k = 2;   // cover parameter, needed for the estimate
  std::vector<Entry> entries;  // across all scales, sorted by key
  std::size_t size_bits() const;
};

struct DistEdgeLabel {
  struct Entry {
    ClusterKey key;
    core::EdgeLabel local;
  };
  std::uint32_t cover_k = 2;
  std::vector<Entry> entries;
  std::size_t size_bits() const;
};

class FtDistanceScheme {
 public:
  static FtDistanceScheme build(const WeightedGraph& g,
                                const FtDistanceConfig& config);

  DistVertexLabel vertex_label(graph::VertexId v) const;
  DistEdgeLabel edge_label(graph::EdgeId e) const;

  // Universal decoder: an upper bound on dist_{G-F}(s, t) with stretch
  // O(|F| k), or kInfinity when s and t are disconnected in G - F.
  static Weight approx_distance(const DistVertexLabel& s,
                                const DistVertexLabel& t,
                                std::span<const DistEdgeLabel> faults);

  unsigned num_scales() const { return static_cast<unsigned>(scales_.size()); }
  double average_cover_membership(unsigned scale) const;

 private:
  struct Scale {
    Weight r = 0;
    SparseCover cover;
    // Per cluster: the FTC scheme and local vertex index of each member.
    std::vector<core::FtcScheme> schemes;
    std::vector<std::vector<graph::VertexId>> members;  // sorted
    // Per cluster: global EdgeId -> local EdgeId (parallel vectors).
    std::vector<std::vector<graph::EdgeId>> edge_global;
    std::vector<std::vector<graph::EdgeId>> edge_local;
  };

  // The decoder reconstructs the scale radius as 2^key.scale and the
  // stretch constants from cover_k, so it needs no scheme object.
  FtDistanceConfig config_;
  std::vector<Scale> scales_;
};

}  // namespace ftc::distance
