// Awerbuch-Peleg-style sparse covers: for a radius r and parameter k,
// a collection of clusters such that every ball B(v, r) is contained in
// some cluster and cluster radii stay below k*r, with cluster overlap
// governed by n^(1/k). These are the scale-structures behind the
// fault-tolerant approximate distance labeling of Corollary 1 (via the
// DP21 reduction the paper invokes).
#pragma once

#include <vector>

#include "distance/weighted_graph.hpp"

namespace ftc::distance {

struct Cluster {
  graph::VertexId center = graph::kNoVertex;
  Weight radius = 0;                      // achieved radius around center
  std::vector<graph::VertexId> vertices;  // sorted
};

struct SparseCover {
  std::vector<Cluster> clusters;
  // For every vertex, the id of a cluster containing its whole r-ball.
  std::vector<int> home_cluster;
  // All clusters containing each vertex.
  std::vector<std::vector<int>> memberships;

  double average_membership() const {
    std::size_t total = 0;
    for (const auto& m : memberships) total += m.size();
    return memberships.empty()
               ? 0.0
               : static_cast<double>(total) / memberships.size();
  }
};

// Builds a cover: ball growing stops as soon as the next layer grows the
// cluster by less than factor n^(1/k), so radii are below k*r and the
// measured overlap tracks n^(1/k) (reported by bench_distance).
SparseCover build_sparse_cover(const WeightedGraph& g, Weight r, unsigned k);

}  // namespace ftc::distance
