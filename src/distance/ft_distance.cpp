#include "distance/ft_distance.hpp"

#include <algorithm>
#include <map>

#include "core/ftc_query.hpp"

namespace ftc::distance {

using graph::EdgeId;
using graph::VertexId;

std::size_t DistVertexLabel::size_bits() const {
  std::size_t bits = 32;
  for (const auto& e : entries) bits += 64 + e.local.size_bits();
  return bits;
}

std::size_t DistEdgeLabel::size_bits() const {
  std::size_t bits = 32;
  for (const auto& e : entries) bits += 64 + e.local.size_bits();
  return bits;
}

FtDistanceScheme FtDistanceScheme::build(const WeightedGraph& g,
                                         const FtDistanceConfig& config) {
  FTC_REQUIRE(graph::is_connected(g.topology()),
              "input graph must be connected");
  FtDistanceScheme scheme;
  scheme.config_ = config;

  // Top scale must cover the whole graph and admit every edge through the
  // weight filter.
  const auto ecc = dijkstra(g, 0);
  Weight reach = 1;
  for (const Weight d : ecc) reach = std::max(reach, d == kInfinity ? 1 : d);
  const Weight top = std::max<Weight>(2 * reach, g.max_weight());
  Weight r = 1;
  while (true) {
    Scale scale;
    scale.r = r;
    scale.cover = build_sparse_cover(g, r, config.k);
    const Weight edge_cap = 2 * static_cast<Weight>(config.k + 1) * r;
    for (const Cluster& cl : scale.cover.clusters) {
      // Induced subgraph on the cluster with the scale's weight filter.
      std::vector<VertexId> local_of(g.num_vertices(), graph::kNoVertex);
      for (std::size_t i = 0; i < cl.vertices.size(); ++i) {
        local_of[cl.vertices[i]] = static_cast<VertexId>(i);
      }
      graph::Graph sub(static_cast<VertexId>(cl.vertices.size()));
      std::vector<EdgeId> eg, el;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const auto& ed = g.topology().edge(e);
        if (local_of[ed.u] == graph::kNoVertex ||
            local_of[ed.v] == graph::kNoVertex || g.weight(e) > edge_cap) {
          continue;
        }
        el.push_back(sub.add_edge(local_of[ed.u], local_of[ed.v]));
        eg.push_back(e);
      }
      core::FtcConfig fcfg;
      fcfg.f = config.f;
      fcfg.k_scale = config.k_scale;
      scale.schemes.push_back(core::FtcScheme::build(sub, fcfg));
      scale.members.push_back(cl.vertices);
      scale.edge_global.push_back(std::move(eg));
      scale.edge_local.push_back(std::move(el));
    }
    scheme.scales_.push_back(std::move(scale));
    if (r >= top) break;
    r *= 2;
  }
  return scheme;
}

DistVertexLabel FtDistanceScheme::vertex_label(VertexId v) const {
  DistVertexLabel label;
  label.cover_k = config_.k;
  for (std::uint32_t s = 0; s < scales_.size(); ++s) {
    const Scale& sc = scales_[s];
    for (const int c : sc.cover.memberships[v]) {
      const auto& mem = sc.members[c];
      const auto it = std::lower_bound(mem.begin(), mem.end(), v);
      const auto local = static_cast<VertexId>(it - mem.begin());
      label.entries.push_back(
          {ClusterKey{s, static_cast<std::uint32_t>(c)},
           sc.schemes[c].vertex_label(local)});
    }
  }
  return label;
}

DistEdgeLabel FtDistanceScheme::edge_label(EdgeId e) const {
  DistEdgeLabel label;
  label.cover_k = config_.k;
  for (std::uint32_t s = 0; s < scales_.size(); ++s) {
    const Scale& sc = scales_[s];
    for (std::uint32_t c = 0; c < sc.schemes.size(); ++c) {
      const auto& eg = sc.edge_global[c];
      const auto it = std::lower_bound(eg.begin(), eg.end(), e);
      if (it == eg.end() || *it != e) continue;
      const EdgeId local = sc.edge_local[c][it - eg.begin()];
      label.entries.push_back(
          {ClusterKey{s, c}, sc.schemes[c].edge_label(local)});
    }
  }
  return label;
}

double FtDistanceScheme::average_cover_membership(unsigned scale) const {
  FTC_REQUIRE(scale < scales_.size(), "scale out of range");
  return scales_[scale].cover.average_membership();
}

Weight FtDistanceScheme::approx_distance(
    const DistVertexLabel& s, const DistVertexLabel& t,
    std::span<const DistEdgeLabel> faults) {
  // Group fault labels per cluster key.
  std::map<ClusterKey, std::vector<core::EdgeLabel>> cluster_faults;
  for (const DistEdgeLabel& f : faults) {
    for (const auto& entry : f.entries) {
      cluster_faults[entry.key].push_back(entry.local);
    }
  }
  // Scan scales bottom-up over common clusters: entries are strictly
  // increasing by (scale, cluster), so a two-pointer intersection visits
  // shared clusters in ascending-scale order.
  std::size_t ia = 0, ib = 0;
  while (ia < s.entries.size() && ib < t.entries.size()) {
    const auto& ka = s.entries[ia].key;
    const auto& kb = t.entries[ib].key;
    if (ka < kb) {
      ++ia;
    } else if (kb < ka) {
      ++ib;
    } else {
      const auto it = cluster_faults.find(ka);
      const std::vector<core::EdgeLabel> empty;
      const auto& cf = it == cluster_faults.end() ? empty : it->second;
      bool connected = false;
      try {
        connected = core::FtcDecoder::connected(s.entries[ia].local,
                                                t.entries[ib].local, cf);
      } catch (const core::FtcCapacityError&) {
        connected = false;  // conservative: try higher scales
      }
      if (connected) {
        // Cluster diameter <= 2 (k+1) r; a fault-avoiding path crosses at
        // most 2|F|+1 tree fragments of the cluster, each of diameter
        // <= 2 (k+1) r: estimate = (2|F|+1) * 2 (k+1) * 2^scale.
        const Weight r = Weight{1} << ka.scale;
        const Weight diam = 2 * static_cast<Weight>(s.cover_k + 1) * r;
        return (2 * static_cast<Weight>(faults.size()) + 1) * diam;
      }
      ++ia;
      ++ib;
    }
  }
  return kInfinity;
}

}  // namespace ftc::distance
