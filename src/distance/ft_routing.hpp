// Fault-tolerant (forbidden-set) compact routing simulation (Corollary 2).
//
// Every router stores a table: its own distance label plus, per incident
// link, the neighbor's distance label — the Õ(f^2 n^(1/k))-per-entry
// flavor of the corollary. A packet carries the destination's vertex
// label and the labels of the currently-forbidden edges; each hop
// forwards greedily to the live neighbor minimizing the estimated
// remaining distance. The simulation measures delivery rate and stretch
// against exact fault-avoiding distances.
#pragma once

#include <span>
#include <vector>

#include "distance/ft_distance.hpp"

namespace ftc::distance {

struct RouteResult {
  bool delivered = false;
  Weight path_weight = 0;
  unsigned hops = 0;
};

class FtRouter {
 public:
  // Builds per-vertex tables from the distance scheme.
  FtRouter(const WeightedGraph& g, const FtDistanceScheme& scheme);

  // Simulates forwarding s -> t while avoiding the fault set. The router
  // logic consults only tables and the packet's labels; the topology is
  // used solely to move the (simulated) packet.
  RouteResult route(graph::VertexId s, graph::VertexId t,
                    std::span<const graph::EdgeId> faults,
                    std::span<const DistEdgeLabel> fault_labels) const;

  std::size_t table_bits(graph::VertexId v) const;

 private:
  const WeightedGraph& g_;
  std::vector<DistVertexLabel> vertex_labels_;
};

}  // namespace ftc::distance
