#include "distance/ft_routing.hpp"

#include <set>

#include "util/common.hpp"

namespace ftc::distance {

using graph::EdgeId;
using graph::VertexId;

FtRouter::FtRouter(const WeightedGraph& g, const FtDistanceScheme& scheme)
    : g_(g) {
  vertex_labels_.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    vertex_labels_.push_back(scheme.vertex_label(v));
  }
}

std::size_t FtRouter::table_bits(VertexId v) const {
  // Own label plus one neighbor label per incident link.
  std::size_t bits = vertex_labels_[v].size_bits();
  for (const EdgeId e : g_.topology().incident_edges(v)) {
    bits += vertex_labels_[g_.topology().other_endpoint(e, v)].size_bits();
  }
  return bits;
}

RouteResult FtRouter::route(VertexId s, VertexId t,
                            std::span<const EdgeId> faults,
                            std::span<const DistEdgeLabel> fault_labels) const {
  std::vector<char> faulty(g_.num_edges(), 0);
  for (const EdgeId e : faults) faulty[e] = 1;

  RouteResult result;
  std::set<VertexId> visited{s};
  VertexId cur = s;
  const unsigned max_hops = 4 * g_.num_vertices();
  while (cur != t && result.hops < max_hops) {
    VertexId best = graph::kNoVertex;
    EdgeId best_edge = graph::kNoEdge;
    Weight best_score = kInfinity;
    for (const EdgeId e : g_.topology().incident_edges(cur)) {
      if (faulty[e]) continue;  // forbidden link
      const VertexId w = g_.topology().other_endpoint(e, cur);
      if (visited.count(w)) continue;  // loop avoidance
      if (w == t) {
        best = w;
        best_edge = e;
        break;
      }
      const Weight est = FtDistanceScheme::approx_distance(
          vertex_labels_[w], vertex_labels_[t], fault_labels);
      if (est == kInfinity) continue;
      const Weight score = est + g_.weight(e);
      if (score < best_score) {
        best_score = score;
        best = w;
        best_edge = e;
      }
    }
    if (best == graph::kNoVertex) break;  // stuck: delivery failed
    result.path_weight += g_.weight(best_edge);
    ++result.hops;
    visited.insert(best);
    cur = best;
  }
  result.delivered = (cur == t);
  return result;
}

}  // namespace ftc::distance
