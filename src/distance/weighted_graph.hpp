// Weighted graphs and single-source shortest paths — substrate for the
// fault-tolerant approximate distance labeling of Corollary 1.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace ftc::distance {

using Weight = std::uint64_t;
inline constexpr Weight kInfinity = std::numeric_limits<Weight>::max();

class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(graph::VertexId n) : g_(n) {}

  graph::VertexId add_vertex() { return g_.add_vertex(); }

  graph::EdgeId add_edge(graph::VertexId u, graph::VertexId v, Weight w) {
    FTC_REQUIRE(w >= 1, "edge weights must be positive integers");
    const graph::EdgeId id = g_.add_edge(u, v);
    weights_.push_back(w);
    return id;
  }

  const graph::Graph& topology() const { return g_; }
  Weight weight(graph::EdgeId e) const { return weights_[e]; }
  graph::VertexId num_vertices() const { return g_.num_vertices(); }
  graph::EdgeId num_edges() const { return g_.num_edges(); }
  Weight max_weight() const {
    Weight w = 1;
    for (const Weight x : weights_) w = std::max(w, x);
    return w;
  }

 private:
  graph::Graph g_;
  std::vector<Weight> weights_;
};

// Dijkstra from src, optionally avoiding a fault set and stopping at a
// radius bound. dist[v] == kInfinity for unreachable vertices.
std::vector<Weight> dijkstra(const WeightedGraph& g, graph::VertexId src,
                             std::span<const graph::EdgeId> faults = {},
                             Weight radius = kInfinity);

// Exact s-t distance in g - faults (kInfinity if disconnected).
Weight exact_distance(const WeightedGraph& g, graph::VertexId s,
                      graph::VertexId t,
                      std::span<const graph::EdgeId> faults = {});

}  // namespace ftc::distance
