#include "distance/sparse_cover.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace ftc::distance {

using graph::VertexId;

SparseCover build_sparse_cover(const WeightedGraph& g, Weight r, unsigned k) {
  FTC_REQUIRE(k >= 1, "cover parameter k must be >= 1");
  const VertexId n = g.num_vertices();
  SparseCover cover;
  cover.home_cluster.assign(n, -1);
  cover.memberships.assign(n, {});
  const double growth = std::pow(static_cast<double>(std::max<VertexId>(n, 2)),
                                 1.0 / static_cast<double>(k));

  for (VertexId v = 0; v < n; ++v) {
    if (cover.home_cluster[v] != -1) continue;
    // Grow the ball around v by r-layers until the growth factor drops.
    const auto dist = dijkstra(g, v);
    Weight radius = r;
    std::size_t inner = 0, outer = 0;
    const auto count_within = [&](Weight b) {
      std::size_t c = 0;
      for (VertexId u = 0; u < n; ++u) {
        if (dist[u] != kInfinity && dist[u] <= b) ++c;
      }
      return c;
    };
    inner = count_within(radius);
    while (true) {
      outer = count_within(radius + r);
      if (static_cast<double>(outer) <=
              growth * static_cast<double>(inner) ||
          radius > static_cast<Weight>(k) * r) {
        break;
      }
      radius += r;
      inner = outer;
    }
    // Cluster = ball(v, radius + r); core = ball(v, radius): every core
    // vertex's r-ball lies inside the cluster.
    Cluster cl;
    cl.center = v;
    cl.radius = radius + r;
    for (VertexId u = 0; u < n; ++u) {
      if (dist[u] != kInfinity && dist[u] <= radius + r) {
        cl.vertices.push_back(u);
      }
    }
    const int id = static_cast<int>(cover.clusters.size());
    for (const VertexId u : cl.vertices) {
      cover.memberships[u].push_back(id);
    }
    for (VertexId u = 0; u < n; ++u) {
      if (dist[u] != kInfinity && dist[u] <= radius &&
          cover.home_cluster[u] == -1) {
        cover.home_cluster[u] = id;
      }
    }
    cover.clusters.push_back(std::move(cl));
  }
  return cover;
}

}  // namespace ftc::distance
