// Carry-less (polynomial over GF(2)) 64x64 -> 128 multiplication.
//
// Uses the PCLMULQDQ instruction when available, with a portable
// shift-and-xor fallback that is bit-identical (verified in tests).
#pragma once

#include <cstdint>

#if defined(__PCLMUL__)
#include <wmmintrin.h>
#define FTC_HAVE_CLMUL 1
#else
#define FTC_HAVE_CLMUL 0
#endif

namespace ftc::gf {

// 128-bit carry-less product, little-endian words.
struct U128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

inline U128 clmul_portable(std::uint64_t a, std::uint64_t b) {
  U128 r;
  while (b != 0) {
    const int i = __builtin_ctzll(b);
    b &= b - 1;
    r.lo ^= a << i;
    if (i != 0) r.hi ^= a >> (64 - i);
  }
  return r;
}

#if FTC_HAVE_CLMUL
inline U128 clmul(std::uint64_t a, std::uint64_t b) {
  const __m128i va = _mm_set_epi64x(0, static_cast<long long>(a));
  const __m128i vb = _mm_set_epi64x(0, static_cast<long long>(b));
  const __m128i p = _mm_clmulepi64_si128(va, vb, 0x00);
  U128 r;
  r.lo = static_cast<std::uint64_t>(_mm_cvtsi128_si64(p));
  r.hi = static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_srli_si128(p, 8)));
  return r;
}
#else
inline U128 clmul(std::uint64_t a, std::uint64_t b) {
  return clmul_portable(a, b);
}
#endif

}  // namespace ftc::gf
