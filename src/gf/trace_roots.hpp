// Deterministic root finding over GF(2^m): the Berlekamp Trace Algorithm.
//
// This is the second half of the k-threshold outdetect decoder
// (Proposition 2): the error-locator polynomial produced by
// Berlekamp-Massey splits completely over F with distinct roots (the
// outgoing-edge IDs), and in characteristic 2 the trace maps
// x -> Tr(beta_i x) for a GF(2)-basis {beta_i} deterministically separate
// any two distinct roots. Degrees 1 and 2 take closed-form fast paths
// (linear solve / Artin-Schreier), which dominate in real queries where
// the number of outgoing edges is small.
#pragma once

#include <algorithm>
#include <vector>

#include "gf/gf2.hpp"
#include "gf/gf2_poly.hpp"

namespace ftc::gf {

namespace detail {

// (sum a_i x^i)^2 mod f, using the characteristic-2 identity
// (sum a_i x^i)^2 = sum a_i^2 x^(2i).
template <typename F>
Poly<F> square_mod(const Poly<F>& a, const Poly<F>& f) {
  if (a.is_zero()) return Poly<F>::zero();
  std::vector<F> r(2 * a.degree() + 1, F::zero());
  for (int i = 0; i <= a.degree(); ++i) r[2 * i] = a.coeff(i).square();
  return Poly<F>(std::move(r)) % f;
}

// Appends the (distinct) roots of monic f, assuming all roots lie in F.
// frob[j] = x^(2^j) mod f for j = 0..m-1; reduced copies are pushed down
// the recursion so each node works modulo its own factor.
template <typename F>
void bta_recurse(const Poly<F>& f, const std::vector<Poly<F>>& frob,
                 unsigned basis_start, std::vector<F>* out) {
  const int deg = f.degree();
  if (deg <= 0) return;
  if (deg == 1) {
    out->push_back(f.coeff(0));  // monic x + c -> root c (char 2)
    return;
  }
  if (deg == 2) {
    std::vector<F> roots = solve_quadratic(f.coeff(1), f.coeff(0));
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    for (const F& r : roots) {
      if (f.eval(r).is_zero()) out->push_back(r);
    }
    return;
  }
  for (unsigned i = basis_start; i < F::kBits; ++i) {
    // T(x) = Tr(beta_i x) mod f = sum_j beta_i^(2^j) * (x^(2^j) mod f).
    // Assembled coefficient-wise into one buffer to avoid per-term
    // allocations (this loop dominates decode latency).
    const F beta = F::basis_element(i);
    std::vector<F> tc(static_cast<std::size_t>(deg), F::zero());
    F bp = beta;  // beta^(2^j)
    for (unsigned j = 0; j < F::kBits; ++j) {
      const Poly<F>& fj = frob[j];
      for (int c = 0; c <= fj.degree(); ++c) tc[c] += fj.coeff(c) * bp;
      bp = bp.square();
    }
    const Poly<F> t(std::move(tc));
    const Poly<F> g = gcd(f, t);
    if (g.degree() <= 0 || g.degree() >= deg) continue;  // no split; next beta
    const Poly<F> h = (f / g).monic();
    std::vector<Poly<F>> frob_g(F::kBits), frob_h(F::kBits);
    for (unsigned j = 0; j < F::kBits; ++j) {
      frob_g[j] = frob[j] % g;
      frob_h[j] = frob[j] % h;
    }
    bta_recurse(g, frob_g, i + 1, out);
    bta_recurse(h, frob_h, i + 1, out);
    return;
  }
  // No basis element separates the roots: f has repeated roots or roots
  // outside F. Report nothing; callers verify root counts.
}

// Square root of a polynomial that is a perfect square (all exponents
// even): sqrt(sum a_{2i} x^{2i}) = sum sqrt(a_{2i}) x^i.
template <typename F>
Poly<F> poly_sqrt(const Poly<F>& f) {
  if (f.is_zero()) return f;
  std::vector<F> r(f.degree() / 2 + 1, F::zero());
  for (int i = 0; i <= f.degree(); i += 2) r[i / 2] = sqrt(f.coeff(i));
  return Poly<F>(std::move(r));
}

// Radical (squarefree part) of f in characteristic 2. The naive
// f / gcd(f, f') loses roots of even multiplicity because their factor
// vanishes from f'; this recursion handles them via polynomial square
// roots.
template <typename F>
Poly<F> radical(const Poly<F>& fin) {
  Poly<F> f = fin.monic();
  if (f.degree() <= 0) return Poly<F>::constant(F::one());
  const Poly<F> fp = f.derivative();
  if (fp.is_zero()) return radical(poly_sqrt(f));  // all exponents even
  const Poly<F> g = gcd(f, fp);
  const Poly<F> w = (f / g).monic();  // odd-multiplicity roots, once each
  if (g.degree() <= 0) return w;
  const Poly<F> rg = radical(g);
  // Roots of f = roots of w  U  roots of g; merge without duplicates.
  return (w * (rg / gcd(rg, w))).monic();
}

}  // namespace detail

// Returns the distinct roots of f that lie in F. If f splits completely
// over F with distinct roots, returns exactly deg(f) roots; otherwise the
// returned set may be incomplete (callers detect this by comparing sizes).
template <typename F>
std::vector<F> find_roots(const Poly<F>& fin) {
  std::vector<F> out;
  if (fin.degree() <= 0) return out;
  const Poly<F> f = fin.monic();
  if (f.degree() <= 2) {
    detail::bta_recurse(f, {}, 0, &out);
    std::sort(out.begin(), out.end());
    return out;
  }
  // Squarefree part with the same distinct roots.
  const Poly<F> sf = detail::radical(f);
  if (sf.degree() <= 0) return out;
  if (sf.degree() <= 2) {
    detail::bta_recurse(sf, {}, 0, &out);
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<Poly<F>> frob(F::kBits);
  frob[0] = Poly<F>::x() % sf;
  for (unsigned j = 1; j < F::kBits; ++j)
    frob[j] = detail::square_mod(frob[j - 1], sf);
  detail::bta_recurse(sf, frob, 0, &out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ftc::gf
