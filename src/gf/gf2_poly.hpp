// Dense univariate polynomials over a GF(2^m) field.
//
// Used by the syndrome decoder of the k-threshold outdetect labeling
// scheme (paper Section 7.4): Berlekamp-Massey produces an error-locator
// polynomial, whose roots (found by the Berlekamp trace algorithm) are the
// IDs of the outgoing edges.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace ftc::gf {

template <typename F>
class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<F> coeffs) : c_(std::move(coeffs)) { normalize(); }

  static Poly zero() { return Poly(); }
  static Poly constant(F v) { return Poly(std::vector<F>{v}); }
  static Poly x() { return Poly(std::vector<F>{F::zero(), F::one()}); }
  // c1 * x + c0
  static Poly linear(F c1, F c0) { return Poly(std::vector<F>{c0, c1}); }

  // Degree; -1 for the zero polynomial.
  int degree() const { return static_cast<int>(c_.size()) - 1; }
  bool is_zero() const { return c_.empty(); }

  F coeff(int i) const {
    return (i >= 0 && i < static_cast<int>(c_.size())) ? c_[i] : F::zero();
  }
  F leading() const {
    FTC_REQUIRE(!c_.empty(), "leading coefficient of zero polynomial");
    return c_.back();
  }
  std::span<const F> coeffs() const { return c_; }

  friend Poly operator+(const Poly& a, const Poly& b) {
    std::vector<F> r(std::max(a.c_.size(), b.c_.size()), F::zero());
    for (std::size_t i = 0; i < a.c_.size(); ++i) r[i] += a.c_[i];
    for (std::size_t i = 0; i < b.c_.size(); ++i) r[i] += b.c_[i];
    return Poly(std::move(r));
  }
  friend Poly operator-(const Poly& a, const Poly& b) { return a + b; }

  friend Poly operator*(const Poly& a, const Poly& b) {
    if (a.is_zero() || b.is_zero()) return zero();
    std::vector<F> r(a.c_.size() + b.c_.size() - 1, F::zero());
    for (std::size_t i = 0; i < a.c_.size(); ++i) {
      if (a.c_[i].is_zero()) continue;
      for (std::size_t j = 0; j < b.c_.size(); ++j) r[i + j] += a.c_[i] * b.c_[j];
    }
    return Poly(std::move(r));
  }

  Poly scaled(F s) const {
    std::vector<F> r(c_);
    for (F& v : r) v *= s;
    return Poly(std::move(r));
  }

  // Multiplies by x^k.
  Poly shifted(unsigned k) const {
    if (is_zero()) return zero();
    std::vector<F> r(c_.size() + k, F::zero());
    for (std::size_t i = 0; i < c_.size(); ++i) r[i + k] = c_[i];
    return Poly(std::move(r));
  }

  // Euclidean division: returns {quotient, remainder}.
  friend std::pair<Poly, Poly> divmod(const Poly& a, const Poly& b) {
    FTC_REQUIRE(!b.is_zero(), "polynomial division by zero");
    if (a.degree() < b.degree()) return {zero(), a};
    std::vector<F> rem(a.c_);
    // Monic divisors (the common case in gcd/mod chains) skip the
    // ~m-operation field inversion.
    const F lead_inv =
        b.leading() == F::one() ? F::one() : inverse(b.leading());
    const int db = b.degree();
    std::vector<F> quot(a.degree() - db + 1, F::zero());
    for (int i = a.degree(); i >= db; --i) {
      const F q = rem[i] * lead_inv;
      if (q.is_zero()) continue;
      quot[i - db] = q;
      for (int j = 0; j <= db; ++j) rem[i - db + j] += q * b.c_[j];
    }
    return {Poly(std::move(quot)), Poly(std::move(rem))};
  }

  friend Poly operator%(const Poly& a, const Poly& b) {
    return divmod(a, b).second;
  }
  friend Poly operator/(const Poly& a, const Poly& b) {
    return divmod(a, b).first;
  }

  friend bool operator==(const Poly& a, const Poly& b) { return a.c_ == b.c_; }

  F eval(F x) const {  // Horner
    F r = F::zero();
    for (std::size_t i = c_.size(); i-- > 0;) r = r * x + c_[i];
    return r;
  }

  // Formal derivative. In characteristic 2 only odd-degree terms survive.
  Poly derivative() const {
    if (c_.size() <= 1) return zero();
    std::vector<F> r(c_.size() - 1, F::zero());
    for (std::size_t i = 1; i < c_.size(); i += 2) r[i - 1] = c_[i];
    return Poly(std::move(r));
  }

  Poly monic() const {
    FTC_REQUIRE(!is_zero(), "monic of zero polynomial");
    if (leading() == F::one()) return *this;
    return scaled(inverse(leading()));
  }

 private:
  void normalize() {
    while (!c_.empty() && c_.back().is_zero()) c_.pop_back();
  }

  std::vector<F> c_;  // little-endian coefficients, no trailing zeros
};

template <typename F>
Poly<F> gcd(Poly<F> a, Poly<F> b) {
  while (!b.is_zero()) {
    Poly<F> r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a.is_zero() ? a : a.monic();
}

// prod (x - r) over roots (== prod (x + r) in characteristic 2).
template <typename F>
Poly<F> poly_from_roots(std::span<const F> roots) {
  Poly<F> p = Poly<F>::constant(F::one());
  for (const F& r : roots) p = p * Poly<F>::linear(F::one(), r);
  return p;
}

}  // namespace ftc::gf
