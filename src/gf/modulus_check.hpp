// Irreducibility verification of the field moduli (Rabin's criterion),
// over GF(2) bit-polynomials. Used by tests to certify the modulus tables
// in gf2.hpp; exposed in the library so downstream users can self-check.
#pragma once

namespace ftc::gf {

// Returns true iff the modulus used for GF(2^bits) in gf2.hpp is
// irreducible. bits must be one of {16, 32, 64, 128}.
bool standard_modulus_is_irreducible(unsigned bits);

}  // namespace ftc::gf
