// Binary extension fields GF(2^m) for m in {16, 32, 64, 128}.
//
// These fields are the algebraic substrate of the paper's deterministic
// graph sketch (Section 4.2 / 7.4): edge IDs are embedded as nonzero field
// elements and the k-threshold outdetect label is a vector of Reed-Solomon
// power-sum syndromes over the field.
//
// Moduli are standard low-weight irreducible polynomials (verified
// irreducible by tests/test_gf2.cpp via Rabin's criterion):
//   m = 16 : x^16 + x^5 + x^3 + x + 1
//   m = 32 : x^32 + x^7 + x^3 + x^2 + 1
//   m = 64 : x^64 + x^4 + x^3 + x + 1
//   m = 128: x^128 + x^7 + x^2 + x + 1   (the GCM polynomial)
//
// All types are trivially-copyable value types; addition is XOR;
// multiplication uses carry-less multiply with reduction folds.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <vector>

#include "gf/clmul.hpp"
#include "util/common.hpp"

namespace ftc::gf {

// --------------------------------------------------------------------------
// GF(2^Bits) for Bits <= 32, single machine word storage.
// ReducerPoly encodes the modulus minus its leading term, i.e. the
// congruence x^Bits == ReducerPoly(x).
// --------------------------------------------------------------------------
template <unsigned Bits, std::uint64_t ReducerPoly>
class GF2Small {
  static_assert(Bits >= 8 && Bits <= 32);

 public:
  static constexpr unsigned kBits = Bits;
  static constexpr unsigned kWords = 1;
  static constexpr std::uint64_t kMask =
      (Bits == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << Bits) - 1);

  constexpr GF2Small() = default;
  explicit constexpr GF2Small(std::uint64_t v) : v_(v & kMask) {}

  static constexpr GF2Small zero() { return GF2Small(0); }
  static constexpr GF2Small one() { return GF2Small(1); }
  // i-th standard-basis element (the monomial x^i viewed as a GF(2)-basis
  // vector of the field). Used by the Berlekamp trace algorithm.
  static constexpr GF2Small basis_element(unsigned i) {
    return GF2Small(std::uint64_t{1} << i);
  }

  constexpr bool is_zero() const { return v_ == 0; }
  constexpr std::uint64_t value() const { return v_; }
  constexpr std::uint64_t word(unsigned) const { return v_; }

  friend constexpr GF2Small operator+(GF2Small a, GF2Small b) {
    return GF2Small(a.v_ ^ b.v_);
  }
  friend constexpr GF2Small operator-(GF2Small a, GF2Small b) {
    return a + b;  // characteristic 2
  }
  GF2Small& operator+=(GF2Small o) {
    v_ ^= o.v_;
    return *this;
  }

  friend GF2Small operator*(GF2Small a, GF2Small b) {
    std::uint64_t p = clmul(a.v_, b.v_).lo;
    for (int rep = 0; rep < 2; ++rep) {
      const std::uint64_t hi = p >> Bits;
      p = (p & kMask) ^ clmul(hi, ReducerPoly).lo;
    }
    return GF2Small(p);
  }
  GF2Small& operator*=(GF2Small o) {
    *this = *this * o;
    return *this;
  }

  GF2Small square() const { return *this * *this; }

  friend constexpr bool operator==(GF2Small a, GF2Small b) = default;
  friend constexpr auto operator<=>(GF2Small a, GF2Small b) = default;

 private:
  std::uint64_t v_ = 0;
};

using GF2_16 = GF2Small<16, 0x2B>;   // x^5 + x^3 + x + 1
using GF2_32 = GF2Small<32, 0x8D>;   // x^7 + x^3 + x^2 + 1

// --------------------------------------------------------------------------
// GF(2^64)
// --------------------------------------------------------------------------
class GF2_64 {
 public:
  static constexpr unsigned kBits = 64;
  static constexpr unsigned kWords = 1;
  static constexpr std::uint64_t kReducer = 0x1B;  // x^4 + x^3 + x + 1

  constexpr GF2_64() = default;
  explicit constexpr GF2_64(std::uint64_t v) : v_(v) {}

  static constexpr GF2_64 zero() { return GF2_64(0); }
  static constexpr GF2_64 one() { return GF2_64(1); }
  static constexpr GF2_64 basis_element(unsigned i) {
    return GF2_64(std::uint64_t{1} << i);
  }

  constexpr bool is_zero() const { return v_ == 0; }
  constexpr std::uint64_t value() const { return v_; }
  constexpr std::uint64_t word(unsigned) const { return v_; }

  friend constexpr GF2_64 operator+(GF2_64 a, GF2_64 b) {
    return GF2_64(a.v_ ^ b.v_);
  }
  friend constexpr GF2_64 operator-(GF2_64 a, GF2_64 b) { return a + b; }
  GF2_64& operator+=(GF2_64 o) {
    v_ ^= o.v_;
    return *this;
  }

  friend GF2_64 operator*(GF2_64 a, GF2_64 b) {
    const U128 p = clmul(a.v_, b.v_);
    // Fold the high word: x^64 == kReducer (degree 4), two folds suffice.
    const U128 t = clmul(p.hi, kReducer);
    std::uint64_t lo = p.lo ^ t.lo;
    lo ^= clmul(t.hi, kReducer).lo;
    return GF2_64(lo);
  }
  GF2_64& operator*=(GF2_64 o) {
    *this = *this * o;
    return *this;
  }

  GF2_64 square() const { return *this * *this; }

  friend constexpr bool operator==(GF2_64 a, GF2_64 b) = default;
  friend constexpr auto operator<=>(GF2_64 a, GF2_64 b) = default;

 private:
  std::uint64_t v_ = 0;
};

// --------------------------------------------------------------------------
// GF(2^128), two-word storage, Karatsuba carry-less multiply with GCM-style
// reduction by x^128 + x^7 + x^2 + x + 1.
// --------------------------------------------------------------------------
class GF2_128 {
 public:
  static constexpr unsigned kBits = 128;
  static constexpr unsigned kWords = 2;
  static constexpr std::uint64_t kReducer = 0x87;  // x^7 + x^2 + x + 1

  constexpr GF2_128() = default;
  explicit constexpr GF2_128(std::uint64_t lo, std::uint64_t hi = 0)
      : lo_(lo), hi_(hi) {}

  static constexpr GF2_128 zero() { return GF2_128(0, 0); }
  static constexpr GF2_128 one() { return GF2_128(1, 0); }
  static constexpr GF2_128 basis_element(unsigned i) {
    return i < 64 ? GF2_128(std::uint64_t{1} << i, 0)
                  : GF2_128(0, std::uint64_t{1} << (i - 64));
  }

  constexpr bool is_zero() const { return lo_ == 0 && hi_ == 0; }
  constexpr std::uint64_t lo() const { return lo_; }
  constexpr std::uint64_t hi() const { return hi_; }
  constexpr std::uint64_t word(unsigned i) const { return i == 0 ? lo_ : hi_; }

  friend constexpr GF2_128 operator+(GF2_128 a, GF2_128 b) {
    return GF2_128(a.lo_ ^ b.lo_, a.hi_ ^ b.hi_);
  }
  friend constexpr GF2_128 operator-(GF2_128 a, GF2_128 b) { return a + b; }
  GF2_128& operator+=(GF2_128 o) {
    lo_ ^= o.lo_;
    hi_ ^= o.hi_;
    return *this;
  }

  friend GF2_128 operator*(GF2_128 a, GF2_128 b) {
    // Karatsuba: 3 carry-less multiplies for the 128x128 -> 256 product.
    const U128 p0 = clmul(a.lo_, b.lo_);
    const U128 p2 = clmul(a.hi_, b.hi_);
    const U128 pm = clmul(a.lo_ ^ a.hi_, b.lo_ ^ b.hi_);
    std::uint64_t w0 = p0.lo;
    std::uint64_t w1 = p0.hi ^ pm.lo ^ p0.lo ^ p2.lo;
    std::uint64_t w2 = p2.lo ^ pm.hi ^ p0.hi ^ p2.hi;
    std::uint64_t w3 = p2.hi;
    // Reduce 256 -> 128 bits. x^192 == kReducer * x^64, x^128 == kReducer.
    const U128 d = clmul(w3, kReducer);
    w1 ^= d.lo;
    w0 ^= clmul(d.hi, kReducer).lo;
    const U128 e = clmul(w2, kReducer);
    w0 ^= e.lo;
    w1 ^= e.hi;
    return GF2_128(w0, w1);
  }
  GF2_128& operator*=(GF2_128 o) {
    *this = *this * o;
    return *this;
  }

  GF2_128 square() const { return *this * *this; }

  friend constexpr bool operator==(GF2_128 a, GF2_128 b) = default;
  friend constexpr auto operator<=>(GF2_128 a, GF2_128 b) = default;

 private:
  std::uint64_t lo_ = 0;
  std::uint64_t hi_ = 0;
};

// --------------------------------------------------------------------------
// Generic field helpers (work for any of the field types above).
// --------------------------------------------------------------------------

// a^e by square-and-multiply.
template <typename F>
F pow(F a, std::uint64_t e) {
  F r = F::one();
  while (e != 0) {
    if (e & 1) r *= a;
    a = a.square();
    e >>= 1;
  }
  return r;
}

// Multiplicative inverse: a^(2^m - 2) = prod_{i=1}^{m-1} a^(2^i).
template <typename F>
F inverse(F a) {
  FTC_REQUIRE(!a.is_zero(), "inverse of zero");
  F r = F::one();
  F s = a;
  for (unsigned i = 1; i < F::kBits; ++i) {
    s = s.square();
    r *= s;
  }
  return r;
}

// Absolute trace Tr: F -> GF(2) (returned as the field's 0 or 1 element).
template <typename F>
F trace(F x) {
  F acc = x;
  F cur = x;
  for (unsigned i = 1; i < F::kBits; ++i) {
    cur = cur.square();
    acc += cur;
  }
  return acc;
}

// Square root (unique in characteristic 2): x^(2^(m-1)).
template <typename F>
F sqrt(F x) {
  for (unsigned i = 0; i + 1 < F::kBits; ++i) x = x.square();
  return x;
}

namespace detail {
// An element theta with Tr(theta) = 1, found by scanning basis elements.
template <typename F>
F trace_one_element() {
  for (unsigned i = 0; i < F::kBits; ++i) {
    const F b = F::basis_element(i);
    if (trace(b) == F::one()) return b;
  }
  FTC_CHECK(false, "no trace-one element found (modulus not irreducible?)");
}
}  // namespace detail

// Solves y^2 + y = c. Returns true and writes a solution to *out iff
// Tr(c) = 0 (the solvability criterion); the other solution is *out + 1.
template <typename F>
bool solve_artin_schreier(F c, F* out) {
  if (trace(c) != F::zero()) return false;
  static const F theta = detail::trace_one_element<F>();
  // y = sum_{i=0}^{m-2} c^(2^i) * s_i with s_i = sum_{j=i+1}^{m-1} theta^(2^j).
  const unsigned m = F::kBits;
  std::vector<F> theta_pow(m);  // theta^(2^j)
  theta_pow[0] = theta;
  for (unsigned j = 1; j < m; ++j) theta_pow[j] = theta_pow[j - 1].square();
  std::vector<F> suffix(m + 1, F::zero());  // suffix[i] = sum_{j>=i} theta^(2^j)
  for (int j = static_cast<int>(m) - 1; j >= 0; --j)
    suffix[j] = suffix[j + 1] + theta_pow[j];
  F y = F::zero();
  F cpow = c;  // c^(2^i)
  for (unsigned i = 0; i + 1 < m; ++i) {
    y += cpow * suffix[i + 1];
    cpow = cpow.square();
  }
  FTC_CHECK(y.square() + y == c, "Artin-Schreier solver self-check failed");
  *out = y;
  return true;
}

// Roots of x^2 + b*x + c over F. Returns 0, 1 (double root), or 2 roots.
template <typename F>
std::vector<F> solve_quadratic(F b, F c) {
  if (b.is_zero()) {
    return {sqrt(c)};  // (x + sqrt(c))^2: a double root, reported once
  }
  const F binv2 = inverse(b * b);
  F y;
  if (!solve_artin_schreier(c * binv2, &y)) return {};
  return {b * y, b * y + b};
}

}  // namespace ftc::gf

namespace std {
template <unsigned Bits, uint64_t R>
struct hash<ftc::gf::GF2Small<Bits, R>> {
  size_t operator()(const ftc::gf::GF2Small<Bits, R>& x) const noexcept {
    return std::hash<uint64_t>{}(x.value());
  }
};
template <>
struct hash<ftc::gf::GF2_64> {
  size_t operator()(const ftc::gf::GF2_64& x) const noexcept {
    return std::hash<uint64_t>{}(x.value());
  }
};
template <>
struct hash<ftc::gf::GF2_128> {
  size_t operator()(const ftc::gf::GF2_128& x) const noexcept {
    return std::hash<uint64_t>{}(x.lo() * 0x9e3779b97f4a7c15ULL ^ x.hi());
  }
};
}  // namespace std
