#include "gf/modulus_check.hpp"

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace ftc::gf {
namespace {

// Bit-packed polynomial over GF(2), little-endian 64-bit words.
using BitPoly = std::vector<std::uint64_t>;

int bp_degree(const BitPoly& p) {
  for (int w = static_cast<int>(p.size()) - 1; w >= 0; --w) {
    if (p[w] != 0) return w * 64 + 63 - __builtin_clzll(p[w]);
  }
  return -1;
}

bool bp_get(const BitPoly& p, int i) {
  const int w = i / 64;
  if (w >= static_cast<int>(p.size())) return false;
  return (p[w] >> (i % 64)) & 1;
}

void bp_flip(BitPoly& p, int i) {
  const int w = i / 64;
  if (w >= static_cast<int>(p.size())) p.resize(w + 1, 0);
  p[w] ^= std::uint64_t{1} << (i % 64);
}

// p ^= q << shift
void bp_xor_shifted(BitPoly& p, const BitPoly& q, int shift) {
  const int dq = bp_degree(q);
  if (dq < 0) return;
  const int need = (dq + shift) / 64 + 1;
  if (static_cast<int>(p.size()) < need) p.resize(need, 0);
  const int ws = shift / 64;
  const int bs = shift % 64;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i] == 0) continue;
    p[i + ws] ^= q[i] << bs;
    if (bs != 0 && i + ws + 1 < p.size()) p[i + ws + 1] ^= q[i] >> (64 - bs);
  }
}

BitPoly bp_mod(BitPoly a, const BitPoly& m) {
  const int dm = bp_degree(m);
  FTC_CHECK(dm >= 0, "mod by zero bit-polynomial");
  for (int da = bp_degree(a); da >= dm; da = bp_degree(a)) {
    bp_xor_shifted(a, m, da - dm);
  }
  return a;
}

BitPoly bp_mul(const BitPoly& a, const BitPoly& b) {
  BitPoly r;
  const int da = bp_degree(a);
  for (int i = 0; i <= da; ++i) {
    if (bp_get(a, i)) bp_xor_shifted(r, b, i);
  }
  return r;
}

BitPoly bp_gcd(BitPoly a, BitPoly b) {
  while (bp_degree(b) >= 0) {
    BitPoly r = bp_mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BitPoly modulus_for(unsigned bits) {
  BitPoly p;
  bp_flip(p, static_cast<int>(bits));
  switch (bits) {
    case 16:  // x^16 + x^5 + x^3 + x + 1
      bp_flip(p, 5), bp_flip(p, 3), bp_flip(p, 1), bp_flip(p, 0);
      break;
    case 32:  // x^32 + x^7 + x^3 + x^2 + 1
      bp_flip(p, 7), bp_flip(p, 3), bp_flip(p, 2), bp_flip(p, 0);
      break;
    case 64:  // x^64 + x^4 + x^3 + x + 1
      bp_flip(p, 4), bp_flip(p, 3), bp_flip(p, 1), bp_flip(p, 0);
      break;
    case 128:  // x^128 + x^7 + x^2 + x + 1
      bp_flip(p, 7), bp_flip(p, 2), bp_flip(p, 1), bp_flip(p, 0);
      break;
    default:
      FTC_REQUIRE(false, "unsupported field width");
  }
  return p;
}

// x^(2^e) mod m, by e repeated squarings.
BitPoly frobenius_power(unsigned e, const BitPoly& m) {
  BitPoly x;
  bp_flip(x, 1);
  BitPoly cur = bp_mod(x, m);
  for (unsigned i = 0; i < e; ++i) cur = bp_mod(bp_mul(cur, cur), m);
  return cur;
}

}  // namespace

bool standard_modulus_is_irreducible(unsigned bits) {
  // Rabin: P (deg m) irreducible over GF(2) iff x^(2^m) == x (mod P) and
  // gcd(x^(2^(m/q)) - x, P) = 1 for every prime q | m. Here m is a power
  // of two, so q = 2 is the only prime divisor.
  const BitPoly p = modulus_for(bits);
  BitPoly diff = frobenius_power(bits, p);
  bp_flip(diff, 1);  // x^(2^m) + x, already reduced mod p
  if (bp_degree(diff) >= 0) return false;

  BitPoly half = frobenius_power(bits / 2, p);
  BitPoly hdiff = half;
  bp_flip(hdiff, 1);  // x^(2^(m/2)) + x
  const BitPoly g = bp_gcd(p, bp_mod(hdiff, p));
  return bp_degree(g) == 0;
}

}  // namespace ftc::gf
