// Baseline: the second Dory-Parter scheme (PODC'21) — the sketch-based
// construction the paper de-randomizes. Identical framework to the
// deterministic scheme (auxiliary graph, ancestry labels, subtree
// aggregation, fragment merging) but the outdetect engine is the
// randomized AGM l0-sampler: no sparsification hierarchy is needed since
// the sampler's internal geometric levels handle any boundary size, and
// correctness is "with high probability" (label O(log^3 n) whp; the
// full-support variant multiplies repetitions by f, giving O(f log^3 n)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/ancestry.hpp"
#include "graph/fragments.hpp"
#include "graph/graph.hpp"
#include "graph/union_find.hpp"
#include "sketch/agm_sketch.hpp"

namespace ftc::dp21 {

struct AgmFtcConfig {
  unsigned f = 2;
  bool full_support = false;  // multiply repetitions by (f + 1)
  double scale = 1.0;         // multiplier on the log n repetition count
  unsigned reps_override = 0;
  std::uint64_t seed = 1;
  // Build worker threads (0 = hardware concurrency); byte-identical
  // labels for any value (sketch toggles/merges are XOR-commutative).
  unsigned build_threads = 1;
};

struct AgmVertexLabel {
  graph::AncestryLabel anc;
};

struct AgmEdgeLabel {
  graph::AncestryLabel upper;  // endpoint nearer the root in T'
  graph::AncestryLabel lower;  // subtree side
  sketch::AgmSketch sketch;    // subtree XOR of vertex sketches
};

class AgmFtc {
 public:
  static AgmFtc build(const graph::Graph& g, const AgmFtcConfig& config);

  AgmVertexLabel vertex_label(graph::VertexId v) const;
  AgmEdgeLabel edge_label(graph::EdgeId e) const;

  // Immutable per-fault-set session state: deduplicated faults, the
  // fragment locator of T' - sigma(F), and every fragment's initial
  // sketch as one flat word row (Proposition 4). Built once; any number
  // of threads may query against the same Prepared concurrently.
  class Prepared {
   public:
    static Prepared prepare(std::span<const AgmEdgeLabel> faults);

    bool trivial() const { return num_frag_ == 0; }  // empty fault set

   private:
    Prepared() = default;
    friend class AgmFtc;

    graph::FragmentLocator loc_{
        std::vector<std::pair<std::uint32_t, std::uint32_t>>{}};
    int num_frag_ = 0;
    unsigned levels_ = 0;
    unsigned reps_ = 0;
    std::uint64_t seed_ = 0;
    std::size_t words_per_frag_ = 0;
    std::vector<std::uint64_t> frag_words_;  // num_frag_ * words_per_frag_
  };

  // Reusable per-thread scratch: the mutable fragment-sketch rows the
  // source-first growth merges into (seeded from Prepared at query
  // start; buffers are recycled so steady-state queries allocate
  // nothing), plus the union-find forest and closed flags. NOT
  // thread-safe; one workspace per worker thread. The AGM sketches are
  // the largest per-query state of any backend, which is why this
  // backend gains the most from workspace reuse.
  class Workspace {
   private:
    friend class AgmFtc;
    std::vector<std::uint64_t> frag_words_;
    graph::UnionFind uf_{0};
    std::vector<char> closed_;
  };

  // Session decoder: the batch-engine hot path.
  static bool connected(const AgmVertexLabel& s, const AgmVertexLabel& t,
                        const Prepared& prepared, Workspace& workspace);

  // One-shot universal decoder; correct whp over the sketch hash seeds.
  static bool connected(const AgmVertexLabel& s, const AgmVertexLabel& t,
                        std::span<const AgmEdgeLabel> faults);

  std::size_t vertex_label_bits() const { return 2 * coord_bits_; }
  std::size_t edge_label_bits() const {
    return 4 * coord_bits_ + sketch_bits_;
  }

  // Sketch geometry, shared by every edge label (serialization stores it
  // once per scheme instead of once per sketch).
  unsigned coord_bits() const { return coord_bits_; }
  unsigned sketch_levels() const { return levels_; }
  unsigned sketch_reps() const { return reps_; }
  std::uint64_t sketch_seed() const { return seed_; }

 private:
  unsigned coord_bits_ = 0;
  unsigned levels_ = 0;
  unsigned reps_ = 0;
  std::uint64_t seed_ = 0;
  std::size_t sketch_bits_ = 0;
  std::vector<graph::AncestryLabel> vertex_anc_;
  std::vector<AgmEdgeLabel> edge_labels_;
};

}  // namespace ftc::dp21
