#include "dp21/cycle_space_ftc.hpp"

#include <algorithm>

#include "graph/euler_tour.hpp"
#include "graph/fragments.hpp"
#include "graph/spanning_tree.hpp"
#include "util/common.hpp"
#include "util/worker_pool.hpp"
#include "util/xor_kernel.hpp"

namespace ftc::dp21 {

using graph::AncestryLabel;
using graph::EdgeId;
using graph::VertexId;

namespace {

// Cycle-space vectors add over GF(2); route through the shared word-XOR
// kernel (util/xor_kernel.hpp) like every other merge on the query path.
void xor_into(std::vector<std::uint64_t>& dst,
              const std::vector<std::uint64_t>& src) {
  FTC_REQUIRE(dst.size() == src.size(), "vector width mismatch");
  xor_words(dst.data(), src.data(), dst.size());
}

bool is_zero(const std::vector<std::uint64_t>& v) {
  return !any_word_nonzero(v.data(), v.size());
}

}  // namespace

CycleSpaceFtc CycleSpaceFtc::build(const graph::Graph& g,
                                   const CycleSpaceConfig& config) {
  FTC_REQUIRE(graph::is_connected(g), "input graph must be connected");
  const VertexId n = g.num_vertices();
  const unsigned logn = std::max(1u, ceil_log2(std::max<VertexId>(n, 2)));

  CycleSpaceFtc scheme;
  scheme.bits_ =
      config.bits_override != 0
          ? config.bits_override
          : std::max<unsigned>(
                8, static_cast<unsigned>(
                       config.scale *
                       (config.full_support
                            ? static_cast<double>(config.f) * logn
                            : static_cast<double>(config.f) + logn)));
  scheme.coord_bits_ = logn;
  const std::size_t words = (scheme.bits_ + 63) / 64;
  const std::uint64_t top_mask =
      (scheme.bits_ % 64 == 0) ? ~std::uint64_t{0}
                               : ((std::uint64_t{1} << (scheme.bits_ % 64)) - 1);

  const graph::SpanningTree t = graph::bfs_spanning_tree(g, 0);
  const graph::EulerTour et = graph::euler_tour(t);
  const graph::AncestryLabeling anc(t, et);
  scheme.vertex_anc_.reserve(n);
  for (VertexId v = 0; v < n; ++v) scheme.vertex_anc_.push_back(anc.label(v));

  // Pass 1 (always serial): lambda draws per non-tree edge in edge-ID
  // order — the RNG stream is position-dependent, so this order IS the
  // determinism contract and must not depend on the thread count.
  SplitMix64 rng(config.seed);
  scheme.edge_labels_.resize(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    CsEdgeLabel& label = scheme.edge_labels_[e];
    label.is_tree = t.is_tree_edge[e] != 0;
    if (label.is_tree) continue;
    label.a = anc.label(g.edge(e).u);
    label.b = anc.label(g.edge(e).v);
    label.vec.resize(words);
    for (auto& w : label.vec) w = rng.next();
    label.vec.back() &= top_mask;
  }

  // Pass 2: a tree edge (p, v) is crossed by exactly the non-tree edges
  // with an odd number of endpoints below v, i.e. the subtree XOR of the
  // endpoint accumulators. Subtrees are contiguous Euler-tin ranges and
  // the sum is XOR, so instead of the bottom-up fold compute a prefix
  // scan over the tin axis (see ftc_scheme.cpp for the stage contract;
  // GF(2) makes any accumulation order bit-identical):
  //     P[t]       = XOR of endpoint accumulators with tin <= t
  //     subtree(v) = P[tout(v)] ^ P[tin(v) - 1]
  util::WorkerPool pool(
      util::WorkerPool::resolve_threads(config.build_threads));
  std::vector<std::uint32_t> tin(n), tout(n);
  for (VertexId v = 0; v < n; ++v) {
    const AncestryLabel l = anc.label(v);
    tin[v] = l.tin;
    tout[v] = l.tout;
  }
  const unsigned stripes = static_cast<unsigned>(std::min<std::size_t>(
      pool.default_active(), static_cast<std::size_t>(n)));
  std::vector<std::size_t> bounds(stripes + 1);
  for (unsigned b = 0; b <= stripes; ++b) {
    bounds[b] = static_cast<std::size_t>(n) * b / stripes;
  }
  std::vector<std::uint64_t> acc(static_cast<std::size_t>(n) * words, 0);
  // Accumulate + stripe-local scan: each worker touches only the tin
  // rows of its own stripe.
  pool.run(stripes, [&](unsigned b) {
    const std::size_t lo = bounds[b];
    const std::size_t hi = bounds[b + 1];
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const CsEdgeLabel& label = scheme.edge_labels_[e];
      if (label.is_tree) continue;
      for (const VertexId u : {g.edge(e).u, g.edge(e).v}) {
        const std::size_t tu = tin[u];
        if (tu >= lo && tu < hi) {
          xor_words(acc.data() + tu * words, label.vec.data(), words);
        }
      }
    }
    for (std::size_t ti = lo + 1; ti < hi; ++ti) {
      xor_words(acc.data() + ti * words, acc.data() + (ti - 1) * words,
                words);
    }
  });
  // Serial carry chain of stripe totals, then parallel application.
  std::vector<std::uint64_t> carry(static_cast<std::size_t>(stripes) * words,
                                   0);
  for (unsigned b = 1; b < stripes; ++b) {
    std::uint64_t* cb = carry.data() + static_cast<std::size_t>(b) * words;
    std::copy(carry.data() + static_cast<std::size_t>(b - 1) * words,
              carry.data() + static_cast<std::size_t>(b) * words, cb);
    xor_words(cb, acc.data() + (bounds[b] - 1) * words, words);
  }
  pool.run(stripes, [&](unsigned b) {
    if (b == 0) return;
    const std::uint64_t* cb =
        carry.data() + static_cast<std::size_t>(b) * words;
    for (std::size_t ti = bounds[b]; ti < bounds[b + 1]; ++ti) {
      xor_words(acc.data() + ti * words, cb, words);
    }
  });
  // Write-out: non-root v finalizes its (unique) parent tree edge.
  pool.run(stripes, [&](unsigned b) {
    for (VertexId v = static_cast<VertexId>(bounds[b]);
         v < static_cast<VertexId>(bounds[b + 1]); ++v) {
      if (v == t.root) continue;
      CsEdgeLabel& label = scheme.edge_labels_[t.parent_edge[v]];
      label.a = anc.label(t.parent[v]);
      label.b = anc.label(v);
      label.vec.assign(words, 0);
      xor_words(label.vec.data(),
                acc.data() + static_cast<std::size_t>(tout[v]) * words,
                words);
      xor_words(label.vec.data(),
                acc.data() + (static_cast<std::size_t>(tin[v]) - 1) * words,
                words);
    }
  });
  return scheme;
}

CsVertexLabel CycleSpaceFtc::vertex_label(VertexId v) const {
  FTC_REQUIRE(v < vertex_anc_.size(), "vertex out of range");
  return CsVertexLabel{vertex_anc_[v]};
}

CsEdgeLabel CycleSpaceFtc::edge_label(EdgeId e) const {
  FTC_REQUIRE(e < edge_labels_.size(), "edge out of range");
  return edge_labels_[e];
}

std::size_t CycleSpaceFtc::vertex_label_bits() const {
  return 2 * coord_bits_;
}

std::size_t CycleSpaceFtc::edge_label_bits() const {
  return 4 * coord_bits_ + bits_ + 1;
}

// All fault-set-only work — fragment structure, per-fragment cut
// vectors, and the GF(2) kernel of the fragment-vector matrix — happens
// here, once per session. Queries never mutate any of it.
CycleSpaceFtc::Prepared CycleSpaceFtc::Prepared::prepare(
    std::span<const CsEdgeLabel> faults) {
  Prepared prep;
  if (faults.empty()) return prep;

  // Distinct tree faults, identified by the lower endpoint's tin.
  std::vector<const CsEdgeLabel*> tree_faults;
  for (const CsEdgeLabel& f : faults) {
    if (f.is_tree) tree_faults.push_back(&f);
  }
  std::sort(tree_faults.begin(), tree_faults.end(),
            [](const CsEdgeLabel* x, const CsEdgeLabel* y) {
              return x->b.tin < y->b.tin;
            });
  tree_faults.erase(std::unique(tree_faults.begin(), tree_faults.end(),
                                [](const CsEdgeLabel* x,
                                   const CsEdgeLabel* y) {
                                  return x->b.tin == y->b.tin;
                                }),
                    tree_faults.end());
  if (tree_faults.empty()) return prep;  // the spanning tree survives
  prep.trivial_ = false;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  intervals.reserve(tree_faults.size());
  for (const auto* f : tree_faults) intervals.push_back({f->b.tin, f->b.tout});
  graph::FragmentLocator loc(std::move(intervals));
  const int num_frag = loc.fragment_count();

  const std::size_t words = tree_faults[0]->vec.size();
  std::vector<std::vector<std::uint64_t>> vec(
      num_frag, std::vector<std::uint64_t>(words, 0));
  // Sigma over the fragment's tree cut: XOR of lambda over the non-tree
  // edges leaving the fragment.
  for (std::size_t j = 0; j < tree_faults.size(); ++j) {
    const int below = loc.fragment_of_fault(j);
    const int above = loc.parent_fragment(below);
    xor_into(vec[below], tree_faults[j]->vec);
    xor_into(vec[above], tree_faults[j]->vec);
  }
  // Remove the faulty non-tree edges themselves (dedup by endpoint pair).
  std::vector<const CsEdgeLabel*> nontree;
  for (const CsEdgeLabel& f : faults) {
    if (!f.is_tree) nontree.push_back(&f);
  }
  std::sort(nontree.begin(), nontree.end(),
            [](const CsEdgeLabel* x, const CsEdgeLabel* y) {
              return std::make_pair(x->a.tin, x->b.tin) <
                     std::make_pair(y->a.tin, y->b.tin);
            });
  nontree.erase(std::unique(nontree.begin(), nontree.end(),
                            [](const CsEdgeLabel* x, const CsEdgeLabel* y) {
                              return x->a.tin == y->a.tin &&
                                     x->b.tin == y->b.tin;
                            }),
                nontree.end());
  for (const auto* f : nontree) {
    FTC_REQUIRE(f->vec.size() == words, "label width mismatch");
    const int fu = loc.locate(f->a.tin);
    const int fv = loc.locate(f->b.tin);
    if (fu == fv) continue;  // does not cross any fragment boundary
    xor_into(vec[fu], f->vec);
    xor_into(vec[fv], f->vec);
  }

  // Kernel of the fragment-vector matrix over GF(2): whp it is spanned by
  // the component indicator vectors. Gaussian elimination over columns;
  // combos track which fragments participate.
  std::vector<std::vector<std::uint64_t>> basis;      // reduced vectors
  std::vector<std::vector<std::uint64_t>> combos;     // their fragment sets
  std::vector<std::vector<std::uint64_t>> kernel;     // kernel combos
  const std::size_t combo_words = (num_frag + 63) / 64;
  for (int i = 0; i < num_frag; ++i) {
    std::vector<std::uint64_t> v = vec[i];
    std::vector<std::uint64_t> combo(combo_words, 0);
    combo[i / 64] |= std::uint64_t{1} << (i % 64);
    for (std::size_t b = 0; b < basis.size(); ++b) {
      // Reduce on the leading bit of basis[b].
      const auto lead = [](const std::vector<std::uint64_t>& x) -> int {
        for (int w = static_cast<int>(x.size()) - 1; w >= 0; --w) {
          if (x[w] != 0) return w * 64 + 63 - __builtin_clzll(x[w]);
        }
        return -1;
      };
      const int lb = lead(basis[b]);
      const int lv = lead(v);
      if (lv == lb && lv >= 0) {
        xor_into(v, basis[b]);
        xor_into(combo, combos[b]);
      }
    }
    if (is_zero(v)) {
      kernel.push_back(combo);
    } else {
      basis.push_back(std::move(v));
      combos.push_back(std::move(combo));
      // Keep basis sorted by leading bit descending for stable reduction.
      for (std::size_t b = basis.size(); b-- > 1;) {
        const auto lead_of = [](const std::vector<std::uint64_t>& x) -> int {
          for (int w = static_cast<int>(x.size()) - 1; w >= 0; --w) {
            if (x[w] != 0) return w * 64 + 63 - __builtin_clzll(x[w]);
          }
          return -1;
        };
        if (lead_of(basis[b]) > lead_of(basis[b - 1])) {
          std::swap(basis[b], basis[b - 1]);
          std::swap(combos[b], combos[b - 1]);
        } else {
          break;
        }
      }
    }
  }

  prep.kernel_ = std::move(kernel);
  prep.loc_ = std::move(loc);
  return prep;
}

bool CycleSpaceFtc::connected(const CsVertexLabel& s, const CsVertexLabel& t,
                              const Prepared& prepared) {
  if (s.anc == t.anc) return true;
  if (prepared.trivial_) return true;
  const int fs = prepared.loc_.locate(s.anc.tin);
  const int ft = prepared.loc_.locate(t.anc.tin);
  if (fs == ft) return true;
  // Fragments are in the same component of G - F iff they agree on every
  // kernel basis vector.
  const auto bit = [](const std::vector<std::uint64_t>& m, int i) -> bool {
    return (m[i / 64] >> (i % 64)) & 1;
  };
  for (const auto& kv : prepared.kernel_) {
    if (bit(kv, fs) != bit(kv, ft)) return false;
  }
  return true;
}

bool CycleSpaceFtc::connected(const CsVertexLabel& s, const CsVertexLabel& t,
                              std::span<const CsEdgeLabel> faults) {
  return connected(s, t, Prepared::prepare(faults));
}

}  // namespace ftc::dp21
