// Baseline: the first Dory-Parter scheme (PODC'21), built on cycle-space
// sampling in the style of Pritchard-Thurimella — the randomized scheme
// whose label size O(f + log n) (whp) / O(f log n) (full support) the
// paper's Table 1 compares against.
//
// Every non-tree edge draws a random bit-vector lambda(e). A tree edge's
// label aggregates the lambdas of all non-tree edges whose fundamental
// cycle crosses it, so for any fragment union S the XOR of cut-edge labels
// equals the XOR of lambda over the non-tree edges leaving S. A fragment
// union is closed in G - F iff its vector is zero (whp), and the
// connected components of the fragment graph are recovered as the
// co-occurrence classes of the GF(2) kernel of the fragment-vector matrix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/ancestry.hpp"
#include "graph/fragments.hpp"
#include "graph/graph.hpp"

namespace ftc::dp21 {

struct CycleSpaceConfig {
  unsigned f = 2;
  // full_support = false: b = scale * (f + log2 n) bits (whp variant);
  // true: b = scale * f * log2 n bits (full-support variant).
  bool full_support = false;
  double scale = 2.0;
  unsigned bits_override = 0;
  std::uint64_t seed = 1;
  // Build worker threads (0 = hardware concurrency); byte-identical
  // labels for any value (the RNG pass stays serial in edge-ID order).
  unsigned build_threads = 1;
};

struct CsVertexLabel {
  graph::AncestryLabel anc;
};

struct CsEdgeLabel {
  bool is_tree = false;
  // Tree edges: a = upper endpoint, b = lower endpoint (in T).
  // Non-tree edges: the two endpoints in arbitrary order.
  graph::AncestryLabel a;
  graph::AncestryLabel b;
  // Tree edges: XOR of lambda over non-tree edges crossing it.
  // Non-tree edges: the edge's own lambda.
  std::vector<std::uint64_t> vec;
};

class CycleSpaceFtc {
 public:
  static CycleSpaceFtc build(const graph::Graph& g,
                             const CycleSpaceConfig& config);

  CsVertexLabel vertex_label(graph::VertexId v) const;
  CsEdgeLabel edge_label(graph::EdgeId e) const;

  // Per-fault-set session state, built once and shared by any number of
  // queries (and threads — it is immutable after prepare). Everything
  // the decoder derives from the fault labels is (s, t)-independent
  // here: the fragment locator AND the GF(2) kernel of the
  // fragment-vector matrix, so a query is just two fragment locations
  // plus one bit comparison per kernel vector.
  class Prepared {
   public:
    static Prepared prepare(std::span<const CsEdgeLabel> faults);

    // True when the spanning tree survives (no tree fault): every query
    // answers "connected" without touching the locator.
    bool trivial() const { return trivial_; }

   private:
    Prepared() = default;
    friend class CycleSpaceFtc;

    bool trivial_ = true;
    graph::FragmentLocator loc_{
        std::vector<std::pair<std::uint32_t, std::uint32_t>>{}};
    // Kernel combos over fragments: two fragments are connected in G - F
    // iff they agree on every kernel vector (whp).
    std::vector<std::vector<std::uint64_t>> kernel_;
  };

  // Session decoder: the batch-engine hot path.
  static bool connected(const CsVertexLabel& s, const CsVertexLabel& t,
                        const Prepared& prepared);

  // One-shot universal decoder; correct with high probability over the
  // sampled lambdas (one-sided: "connected" answers are always correct,
  // a "disconnected" answer is wrong only on a lambda collision).
  static bool connected(const CsVertexLabel& s, const CsVertexLabel& t,
                        std::span<const CsEdgeLabel> faults);

  unsigned vector_bits() const { return bits_; }
  unsigned coord_bits() const { return coord_bits_; }
  std::size_t vertex_label_bits() const;
  std::size_t edge_label_bits() const;

 private:
  unsigned bits_ = 0;
  unsigned coord_bits_ = 0;
  std::vector<graph::AncestryLabel> vertex_anc_;
  std::vector<CsEdgeLabel> edge_labels_;
};

}  // namespace ftc::dp21
