#include "dp21/agm_ftc.hpp"

#include <algorithm>

#include "graph/aux_graph.hpp"
#include "graph/euler_tour.hpp"
#include "graph/fragments.hpp"
#include "graph/spanning_tree.hpp"
#include "graph/union_find.hpp"
#include "util/common.hpp"
#include "util/worker_pool.hpp"
#include "util/xor_kernel.hpp"

namespace ftc::dp21 {

using graph::AncestryLabel;
using graph::EdgeId;
using graph::VertexId;
using sketch::AgmSketch;
using sketch::PackedId;

namespace {

// Pack an endpoint pair of ancestry labels into a 128-bit ID (32-bit
// coordinates; the canonical endpoint order is by tin).
PackedId pack_id(const AncestryLabel& x, const AncestryLabel& y) {
  const AncestryLabel& a = x.tin < y.tin ? x : y;
  const AncestryLabel& b = x.tin < y.tin ? y : x;
  return PackedId{std::uint64_t{a.tin} | (std::uint64_t{a.tout} << 32),
                  std::uint64_t{b.tin} | (std::uint64_t{b.tout} << 32)};
}

std::pair<AncestryLabel, AncestryLabel> unpack_id(const PackedId& id) {
  AncestryLabel a{static_cast<std::uint32_t>(id.lo & 0xffffffffULL),
                  static_cast<std::uint32_t>(id.lo >> 32)};
  AncestryLabel b{static_cast<std::uint32_t>(id.hi & 0xffffffffULL),
                  static_cast<std::uint32_t>(id.hi >> 32)};
  return {a, b};
}

}  // namespace

AgmFtc AgmFtc::build(const graph::Graph& g, const AgmFtcConfig& config) {
  FTC_REQUIRE(graph::is_connected(g), "input graph must be connected");
  const graph::SpanningTree t = graph::bfs_spanning_tree(g, 0);
  const graph::AuxGraph aux = graph::build_aux_graph(g, t);
  const graph::EulerTour et2 = graph::euler_tour(aux.t2);
  const graph::AncestryLabeling anc2(aux.t2, et2);
  const VertexId n2 = aux.g2.num_vertices();
  const unsigned logn = std::max(1u, ceil_log2(std::max<VertexId>(n2, 2)));

  unsigned reps = config.reps_override;
  if (reps == 0) {
    reps = std::max(2u, static_cast<unsigned>(config.scale * logn));
    if (config.full_support) reps *= (config.f + 1);
  }
  const unsigned levels = 2 * logn + 2;

  AgmFtc scheme;
  scheme.coord_bits_ = logn;
  scheme.levels_ = levels;
  scheme.reps_ = reps;
  scheme.seed_ = config.seed;
  scheme.vertex_anc_.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    scheme.vertex_anc_.push_back(anc2.label(v));
  }

  // Per-T'-vertex sketch of incident non-tree edges, then subtree XOR.
  // AGM sketch cells are XOR fingerprints (toggle == merge == word XOR),
  // so the subtree sum below v — a contiguous Euler-tin range — comes
  // from a prefix scan over the tin axis exactly as in ftc_scheme.cpp:
  //     P[t]       = merge of per-vertex sketches with tin <= t
  //     subtree(v) = P[tout(v)] ^ P[tin(v) - 1]
  // Each stage stripes the tin axis per worker; XOR commutativity makes
  // the result byte-identical for any worker count.
  util::WorkerPool pool(
      util::WorkerPool::resolve_threads(config.build_threads));
  std::vector<std::uint32_t> tin(n2), tout(n2);
  for (VertexId v = 0; v < n2; ++v) {
    const AncestryLabel l = anc2.label(v);
    tin[v] = l.tin;
    tout[v] = l.tout;
  }
  const unsigned stripes = static_cast<unsigned>(std::min<std::size_t>(
      pool.default_active(), static_cast<std::size_t>(n2)));
  std::vector<std::size_t> bounds(stripes + 1);
  for (unsigned b = 0; b <= stripes; ++b) {
    bounds[b] = static_cast<std::size_t>(n2) * b / stripes;
  }
  std::vector<AgmSketch> acc(n2, AgmSketch(levels, reps, config.seed));
  // Accumulate + stripe-local scan (acc indexed by tin).
  pool.run(stripes, [&](unsigned b) {
    const std::size_t lo = bounds[b];
    const std::size_t hi = bounds[b + 1];
    for (EdgeId e2 = 0; e2 < aux.g2.num_edges(); ++e2) {
      if (aux.t2.is_tree_edge[e2]) continue;
      const auto& ed = aux.g2.edge(e2);
      const std::size_t tu = tin[ed.u];
      const std::size_t tv = tin[ed.v];
      const bool own_u = tu >= lo && tu < hi;
      const bool own_v = tv >= lo && tv < hi;
      if (!own_u && !own_v) continue;
      const PackedId id = pack_id(anc2.label(ed.u), anc2.label(ed.v));
      if (own_u) acc[tu].toggle(id);
      if (own_v) acc[tv].toggle(id);
    }
    for (std::size_t ti = lo + 1; ti < hi; ++ti) acc[ti].merge(acc[ti - 1]);
  });
  // Serial carry chain of stripe totals, then parallel application.
  std::vector<AgmSketch> carry(stripes, AgmSketch(levels, reps, config.seed));
  for (unsigned b = 1; b < stripes; ++b) {
    carry[b] = carry[b - 1];
    carry[b].merge(acc[bounds[b] - 1]);
  }
  pool.run(stripes, [&](unsigned b) {
    if (b == 0) return;
    for (std::size_t ti = bounds[b]; ti < bounds[b + 1]; ++ti) {
      acc[ti].merge(carry[b]);
    }
  });

  std::vector<EdgeId> sigma_inv(aux.g2.num_edges(), graph::kNoEdge);
  for (EdgeId e = 0; e < g.num_edges(); ++e) sigma_inv[aux.sigma[e]] = e;

  // Write-out: non-root v (tin >= 1) finalizes its unique parent edge.
  scheme.edge_labels_.resize(g.num_edges());
  pool.run(stripes, [&](unsigned b) {
    for (VertexId v = static_cast<VertexId>(bounds[b]);
         v < static_cast<VertexId>(bounds[b + 1]); ++v) {
      if (v == aux.t2.root) continue;
      const EdgeId eo = sigma_inv[aux.t2.parent_edge[v]];
      FTC_CHECK(eo != graph::kNoEdge, "T' tree edge without sigma preimage");
      AgmEdgeLabel& label = scheme.edge_labels_[eo];
      label.lower = anc2.label(v);
      label.upper = anc2.label(aux.t2.parent[v]);
      AgmSketch s = acc[tout[v]];
      s.merge(acc[static_cast<std::size_t>(tin[v]) - 1]);
      label.sketch = std::move(s);
    }
  });
  scheme.sketch_bits_ = scheme.edge_labels_.empty()
                            ? 0
                            : scheme.edge_labels_[0].sketch.size_bits();
  return scheme;
}

AgmVertexLabel AgmFtc::vertex_label(VertexId v) const {
  FTC_REQUIRE(v < vertex_anc_.size(), "vertex out of range");
  return AgmVertexLabel{vertex_anc_[v]};
}

AgmEdgeLabel AgmFtc::edge_label(EdgeId e) const {
  FTC_REQUIRE(e < edge_labels_.size(), "edge out of range");
  return edge_labels_[e];
}

// Fault-set-only work: dedup, fragment structure, and the initial
// per-fragment sketches (Proposition 4), flattened to one word row per
// fragment so queries can seed their mutable state with a single copy
// and merge through the shared word-XOR kernel.
AgmFtc::Prepared AgmFtc::Prepared::prepare(
    std::span<const AgmEdgeLabel> faults) {
  Prepared prep;
  if (faults.empty()) return prep;

  std::vector<const AgmEdgeLabel*> uniq;
  for (const AgmEdgeLabel& f : faults) uniq.push_back(&f);
  std::sort(uniq.begin(), uniq.end(),
            [](const AgmEdgeLabel* a, const AgmEdgeLabel* b) {
              return a->lower.tin < b->lower.tin;
            });
  uniq.erase(std::unique(uniq.begin(), uniq.end(),
                         [](const AgmEdgeLabel* a, const AgmEdgeLabel* b) {
                           return a->lower.tin == b->lower.tin;
                         }),
             uniq.end());
  const std::size_t nf = uniq.size();

  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  for (const auto* f : uniq) intervals.push_back({f->lower.tin, f->lower.tout});
  graph::FragmentLocator loc(std::move(intervals));
  prep.num_frag_ = loc.fragment_count();
  prep.levels_ = uniq[0]->sketch.levels();
  prep.reps_ = uniq[0]->sketch.reps();
  prep.seed_ = uniq[0]->sketch.seed();
  prep.words_per_frag_ = uniq[0]->sketch.num_words();

  prep.frag_words_.assign(
      static_cast<std::size_t>(prep.num_frag_) * prep.words_per_frag_, 0);
  std::vector<std::uint64_t> scratch;
  for (std::size_t j = 0; j < nf; ++j) {
    // Full geometry check (not just word count): sketches built under a
    // different seed have incompatible fingerprints and must fail fast,
    // not silently merge into whp-rejected cells.
    FTC_REQUIRE(uniq[j]->sketch.levels() == prep.levels_ &&
                    uniq[j]->sketch.reps() == prep.reps_ &&
                    uniq[j]->sketch.seed() == prep.seed_,
                "fault labels from different AGM schemes");
    scratch.clear();
    uniq[j]->sketch.append_words(scratch);
    FTC_CHECK(scratch.size() == prep.words_per_frag_,
              "AGM sketch word count inconsistent with its geometry");
    const int below = loc.fragment_of_fault(j);
    const int above = loc.parent_fragment(below);
    for (const int fr : {below, above}) {
      xor_words(prep.frag_words_.data() + fr * prep.words_per_frag_,
                scratch.data(), prep.words_per_frag_);
    }
  }
  prep.loc_ = std::move(loc);
  return prep;
}

bool AgmFtc::connected(const AgmVertexLabel& s, const AgmVertexLabel& t,
                       const Prepared& prepared, Workspace& workspace) {
  if (s.anc == t.anc) return true;
  if (prepared.trivial()) return true;

  const graph::FragmentLocator& loc = prepared.loc_;
  const int fs = loc.locate(s.anc.tin);
  const int ft = loc.locate(t.anc.tin);
  if (fs == ft) return true;

  const std::size_t num_frag = static_cast<std::size_t>(prepared.num_frag_);
  const std::size_t wpf = prepared.words_per_frag_;
  // Seed the mutable state from the immutable session rows. assign()
  // reuses the workspace buffers' capacity, so steady-state queries are
  // allocation-free.
  workspace.frag_words_.assign(prepared.frag_words_.begin(),
                               prepared.frag_words_.end());
  workspace.uf_.reset(num_frag);
  workspace.closed_.assign(num_frag, 0);
  graph::UnionFind& uf = workspace.uf_;
  const auto frag_row = [&](std::size_t fr) {
    return workspace.frag_words_.data() + fr * wpf;
  };

  // Source-first growth, as in DP21: grow the set containing s.
  while (true) {
    const std::size_t cur = uf.find(static_cast<std::size_t>(fs));
    if (workspace.closed_[cur]) return false;
    const auto sample = sketch::AgmSketch::sample_words(
        std::span<const std::uint64_t>(frag_row(cur), wpf), prepared.seed_);
    if (!sample.has_value()) {
      // Empty (whp) -> the component of s is complete without t.
      workspace.closed_[cur] = 1;
      return false;
    }
    const auto [a, b] = unpack_id(*sample);
    const std::size_t fa = uf.find(loc.locate(a.tin));
    const std::size_t fb = uf.find(loc.locate(b.tin));
    if (fa == fb) {
      // A stale or colliding sample that no longer crosses: whp this means
      // the sketch is misleading; declare failure conservatively.
      return false;
    }
    uf.unite(fa, fb);
    const std::size_t root = uf.find(fa);
    const std::size_t other = root == fa ? fb : fa;
    xor_words(frag_row(root), frag_row(other), wpf);
    if (uf.find(static_cast<std::size_t>(fs)) ==
        uf.find(static_cast<std::size_t>(ft))) {
      return true;
    }
  }
}

bool AgmFtc::connected(const AgmVertexLabel& s, const AgmVertexLabel& t,
                       std::span<const AgmEdgeLabel> faults) {
  Workspace workspace;
  return connected(s, t, Prepared::prepare(faults), workspace);
}

}  // namespace ftc::dp21
