#include "dp21/agm_ftc.hpp"

#include <algorithm>

#include "graph/aux_graph.hpp"
#include "graph/euler_tour.hpp"
#include "graph/fragments.hpp"
#include "graph/spanning_tree.hpp"
#include "graph/union_find.hpp"
#include "util/common.hpp"

namespace ftc::dp21 {

using graph::AncestryLabel;
using graph::EdgeId;
using graph::VertexId;
using sketch::AgmSketch;
using sketch::PackedId;

namespace {

// Pack an endpoint pair of ancestry labels into a 128-bit ID (32-bit
// coordinates; the canonical endpoint order is by tin).
PackedId pack_id(const AncestryLabel& x, const AncestryLabel& y) {
  const AncestryLabel& a = x.tin < y.tin ? x : y;
  const AncestryLabel& b = x.tin < y.tin ? y : x;
  return PackedId{std::uint64_t{a.tin} | (std::uint64_t{a.tout} << 32),
                  std::uint64_t{b.tin} | (std::uint64_t{b.tout} << 32)};
}

std::pair<AncestryLabel, AncestryLabel> unpack_id(const PackedId& id) {
  AncestryLabel a{static_cast<std::uint32_t>(id.lo & 0xffffffffULL),
                  static_cast<std::uint32_t>(id.lo >> 32)};
  AncestryLabel b{static_cast<std::uint32_t>(id.hi & 0xffffffffULL),
                  static_cast<std::uint32_t>(id.hi >> 32)};
  return {a, b};
}

}  // namespace

AgmFtc AgmFtc::build(const graph::Graph& g, const AgmFtcConfig& config) {
  FTC_REQUIRE(graph::is_connected(g), "input graph must be connected");
  const graph::SpanningTree t = graph::bfs_spanning_tree(g, 0);
  const graph::AuxGraph aux = graph::build_aux_graph(g, t);
  const graph::EulerTour et2 = graph::euler_tour(aux.t2);
  const graph::AncestryLabeling anc2(aux.t2, et2);
  const VertexId n2 = aux.g2.num_vertices();
  const unsigned logn = std::max(1u, ceil_log2(std::max<VertexId>(n2, 2)));

  unsigned reps = config.reps_override;
  if (reps == 0) {
    reps = std::max(2u, static_cast<unsigned>(config.scale * logn));
    if (config.full_support) reps *= (config.f + 1);
  }
  const unsigned levels = 2 * logn + 2;

  AgmFtc scheme;
  scheme.coord_bits_ = logn;
  scheme.levels_ = levels;
  scheme.reps_ = reps;
  scheme.seed_ = config.seed;
  scheme.vertex_anc_.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    scheme.vertex_anc_.push_back(anc2.label(v));
  }

  // Per-T'-vertex sketch of incident non-tree edges, then subtree XOR.
  std::vector<AgmSketch> acc(n2, AgmSketch(levels, reps, config.seed));
  for (EdgeId e2 = 0; e2 < aux.g2.num_edges(); ++e2) {
    if (aux.t2.is_tree_edge[e2]) continue;
    const auto& ed = aux.g2.edge(e2);
    const PackedId id = pack_id(anc2.label(ed.u), anc2.label(ed.v));
    acc[ed.u].toggle(id);
    acc[ed.v].toggle(id);
  }
  std::vector<EdgeId> sigma_inv(aux.g2.num_edges(), graph::kNoEdge);
  for (EdgeId e = 0; e < g.num_edges(); ++e) sigma_inv[aux.sigma[e]] = e;

  std::vector<VertexId> order;
  {
    std::vector<VertexId> stack{aux.t2.root};
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      order.push_back(u);
      for (const VertexId c : aux.t2.children[u]) stack.push_back(c);
    }
    std::reverse(order.begin(), order.end());
  }
  scheme.edge_labels_.resize(g.num_edges());
  for (const VertexId v : order) {
    if (v == aux.t2.root) continue;
    const EdgeId eo = sigma_inv[aux.t2.parent_edge[v]];
    FTC_CHECK(eo != graph::kNoEdge, "T' tree edge without sigma preimage");
    AgmEdgeLabel& label = scheme.edge_labels_[eo];
    label.lower = anc2.label(v);
    label.upper = anc2.label(aux.t2.parent[v]);
    label.sketch = acc[v];  // subtree sum is final when v is reached
    acc[aux.t2.parent[v]].merge(acc[v]);
  }
  scheme.sketch_bits_ = scheme.edge_labels_.empty()
                            ? 0
                            : scheme.edge_labels_[0].sketch.size_bits();
  return scheme;
}

AgmVertexLabel AgmFtc::vertex_label(VertexId v) const {
  FTC_REQUIRE(v < vertex_anc_.size(), "vertex out of range");
  return AgmVertexLabel{vertex_anc_[v]};
}

AgmEdgeLabel AgmFtc::edge_label(EdgeId e) const {
  FTC_REQUIRE(e < edge_labels_.size(), "edge out of range");
  return edge_labels_[e];
}

bool AgmFtc::connected(const AgmVertexLabel& s, const AgmVertexLabel& t,
                       std::span<const AgmEdgeLabel> faults) {
  if (s.anc == t.anc) return true;
  if (faults.empty()) return true;

  std::vector<const AgmEdgeLabel*> uniq;
  for (const AgmEdgeLabel& f : faults) uniq.push_back(&f);
  std::sort(uniq.begin(), uniq.end(),
            [](const AgmEdgeLabel* a, const AgmEdgeLabel* b) {
              return a->lower.tin < b->lower.tin;
            });
  uniq.erase(std::unique(uniq.begin(), uniq.end(),
                         [](const AgmEdgeLabel* a, const AgmEdgeLabel* b) {
                           return a->lower.tin == b->lower.tin;
                         }),
             uniq.end());
  const std::size_t nf = uniq.size();

  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  for (const auto* f : uniq) intervals.push_back({f->lower.tin, f->lower.tout});
  const graph::FragmentLocator loc(std::move(intervals));
  const int num_frag = loc.fragment_count();

  const int fs = loc.locate(s.anc.tin);
  const int ft = loc.locate(t.anc.tin);
  if (fs == ft) return true;

  // Per-fragment sketches (Proposition 4).
  std::vector<AgmSketch> frag(num_frag, AgmSketch(uniq[0]->sketch.levels(),
                                                  uniq[0]->sketch.reps(),
                                                  uniq[0]->sketch.seed()));
  for (std::size_t j = 0; j < nf; ++j) {
    const int below = loc.fragment_of_fault(j);
    const int above = loc.parent_fragment(below);
    frag[below].merge(uniq[j]->sketch);
    frag[above].merge(uniq[j]->sketch);
  }

  graph::UnionFind uf(static_cast<std::size_t>(num_frag));
  std::vector<char> closed(num_frag, 0);
  // Source-first growth, as in DP21: grow the set containing s.
  while (true) {
    const std::size_t cur = uf.find(static_cast<std::size_t>(fs));
    if (closed[cur]) return false;
    const auto sample = frag[cur].sample();
    if (!sample.has_value()) {
      // Empty (whp) -> the component of s is complete without t.
      closed[cur] = 1;
      return false;
    }
    const auto [a, b] = unpack_id(*sample);
    const std::size_t fa = uf.find(loc.locate(a.tin));
    const std::size_t fb = uf.find(loc.locate(b.tin));
    if (fa == fb) {
      // A stale or colliding sample that no longer crosses: whp this means
      // the sketch is misleading; declare failure conservatively.
      return false;
    }
    uf.unite(fa, fb);
    const std::size_t root = uf.find(fa);
    const std::size_t other = root == fa ? fb : fa;
    frag[root].merge(frag[other]);
    if (uf.find(static_cast<std::size_t>(fs)) ==
        uf.find(static_cast<std::size_t>(ft))) {
      return true;
    }
  }
}

}  // namespace ftc::dp21
