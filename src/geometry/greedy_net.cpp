#include "geometry/greedy_net.hpp"

#include <algorithm>
#include <set>

#include "util/common.hpp"

namespace ftc::geometry {

namespace {

// Subset of points as a bitmask over point indices.
using Mask = std::vector<std::uint64_t>;

Mask make_mask(std::size_t n) { return Mask((n + 63) / 64, 0); }

void mask_set(Mask& m, std::size_t i) { m[i / 64] |= std::uint64_t{1} << (i % 64); }

bool mask_get(const Mask& m, std::size_t i) {
  return (m[i / 64] >> (i % 64)) & 1;
}

}  // namespace

std::vector<Point2> greedy_rect_net(std::span<const Point2> points,
                                    unsigned threshold) {
  const std::size_t n = points.size();
  FTC_REQUIRE(n <= 256, "greedy_rect_net is for small instances (N <= 256)");
  FTC_REQUIRE(threshold >= 1, "threshold must be positive");
  if (n == 0) return {};

  std::vector<std::uint32_t> xs, ys;
  for (const auto& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // Collect the DISTINCT heavy rectangle point-subsets (canonical corners).
  std::set<Mask> heavy;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = i; j < xs.size(); ++j) {
      for (std::size_t k = 0; k < ys.size(); ++k) {
        for (std::size_t l = k; l < ys.size(); ++l) {
          Mask m = make_mask(n);
          std::size_t count = 0;
          for (std::size_t p = 0; p < n; ++p) {
            if (points[p].x >= xs[i] && points[p].x <= xs[j] &&
                points[p].y >= ys[k] && points[p].y <= ys[l]) {
              mask_set(m, p);
              ++count;
            }
          }
          if (count >= threshold) heavy.insert(std::move(m));
        }
      }
    }
  }

  std::vector<Mask> todo(heavy.begin(), heavy.end());
  std::vector<char> alive(todo.size(), 1);
  std::size_t remaining = todo.size();
  std::vector<Point2> net;
  std::vector<char> chosen(n, 0);
  while (remaining > 0) {
    // Greedy: the point hitting the most not-yet-hit heavy rectangles.
    std::size_t best_point = n;
    std::size_t best_gain = 0;
    for (std::size_t p = 0; p < n; ++p) {
      if (chosen[p]) continue;
      std::size_t gain = 0;
      for (std::size_t r = 0; r < todo.size(); ++r) {
        if (alive[r] && mask_get(todo[r], p)) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_point = p;
      }
    }
    FTC_CHECK(best_point < n, "heavy rectangle with no points");
    chosen[best_point] = 1;
    net.push_back(points[best_point]);
    for (std::size_t r = 0; r < todo.size(); ++r) {
      if (alive[r] && mask_get(todo[r], best_point)) {
        alive[r] = 0;
        --remaining;
      }
    }
  }
  return net;
}

}  // namespace ftc::geometry
