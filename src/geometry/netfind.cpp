#include "geometry/netfind.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "util/common.hpp"
#include "util/worker_pool.hpp"

namespace ftc::geometry {

namespace {

// Total orders with deterministic tie-breaking by edge id. The x-order is
// used for split lines (ties broken by id keep both sides nonempty); the
// y-order defines the Lemma 11 groups.
struct XLess {
  bool operator()(const Point2& a, const Point2& b) const {
    if (a.x != b.x) return a.x < b.x;
    return a.edge < b.edge;
  }
};
struct YLess {
  bool operator()(const Point2& a, const Point2& b) const {
    if (a.y != b.y) return a.y < b.y;
    return a.edge < b.edge;
  }
};

// Lemma 11 gadget: from each y-group, the x-maximal point on/left of the
// pivot and the x-minimal point right of it (in the tie-broken x-order).
void emit_crossing_net(const std::vector<Point2>& y_sorted,
                       const Point2& pivot, unsigned group_len,
                       std::vector<Point2>* out) {
  const XLess xless;
  for (std::size_t base = 0; base < y_sorted.size(); base += group_len) {
    const std::size_t end = std::min(base + group_len, y_sorted.size());
    const Point2* best_left = nullptr;
    const Point2* best_right = nullptr;
    for (std::size_t i = base; i < end; ++i) {
      const Point2& p = y_sorted[i];
      if (!xless(pivot, p)) {  // p <= pivot in x-order
        if (best_left == nullptr || xless(*best_left, p)) best_left = &p;
      } else {
        if (best_right == nullptr || xless(p, *best_right)) best_right = &p;
      }
    }
    if (best_left != nullptr) out->push_back(*best_left);
    if (best_right != nullptr) out->push_back(*best_right);
  }
}

// One node of the divide-and-conquer tree: emits the node's crossing net
// into *out and stable-partitions the node around its tie-broken x-median
// into *left / *right (both preserve the y-order). Returns false — and
// leaves the children empty — when the node is below the heaviness
// threshold (no rectangle inside it can be heavy). Deterministic: the
// same input set produces the same pivot, the same emissions and the
// same children regardless of which thread runs it, which is what lets
// the parallel frontier walk emit the exact set of the serial recursion.
bool split_node(const std::vector<Point2>& y_sorted, unsigned group_len,
                std::vector<Point2>* out, std::vector<Point2>* left,
                std::vector<Point2>* right) {
  const std::size_t n = y_sorted.size();
  if (n < static_cast<std::size_t>(netfind_threshold(group_len))) {
    return false;
  }
  // Split line: the x-median under the tie-broken order.
  std::vector<Point2> scratch(y_sorted);
  const std::size_t mid = n / 2;
  std::nth_element(scratch.begin(), scratch.begin() + (mid - 1),
                   scratch.end(), XLess{});
  const Point2 pivot = scratch[mid - 1];

  emit_crossing_net(y_sorted, pivot, group_len, out);

  left->reserve(mid);
  right->reserve(n - mid);
  const XLess xless;
  for (const Point2& p : y_sorted) {
    if (!xless(pivot, p)) {
      left->push_back(p);
    } else {
      right->push_back(p);
    }
  }
  FTC_CHECK(left->size() == mid && right->size() == n - mid,
            "median partition sizes mismatch");
  return true;
}

void netfind_rec(std::vector<Point2> y_sorted, unsigned group_len,
                 std::vector<Point2>* out) {
  std::vector<Point2> left, right;
  if (!split_node(y_sorted, group_len, out, &left, &right)) return;
  y_sorted.clear();
  y_sorted.shrink_to_fit();
  netfind_rec(std::move(left), group_len, out);
  netfind_rec(std::move(right), group_len, out);
}

// Breadth-first walk of the same tree: each round splits every frontier
// node, fanned across the pool with a strided assignment. Workers write
// only their own emission buffer and their own nodes' child slots, so
// rounds are race-free; the union of emissions equals the serial
// recursion's (each node computes the identical pivot and gadget).
void netfind_frontier(std::vector<Point2> y_sorted, unsigned group_len,
                      std::vector<Point2>* out, util::WorkerPool* pool) {
  const std::size_t threshold = netfind_threshold(group_len);
  std::vector<std::vector<Point2>> worker_out(pool->default_active());
  std::vector<std::vector<Point2>> frontier;
  if (y_sorted.size() >= threshold) frontier.push_back(std::move(y_sorted));
  while (!frontier.empty()) {
    std::vector<std::vector<Point2>> children(frontier.size() * 2);
    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        pool->default_active(), frontier.size()));
    pool->run(workers, [&](unsigned w) {
      for (std::size_t i = w; i < frontier.size(); i += workers) {
        split_node(frontier[i], group_len, &worker_out[w], &children[2 * i],
                   &children[2 * i + 1]);
      }
    });
    frontier.clear();
    for (std::vector<Point2>& child : children) {
      if (child.size() >= threshold) frontier.push_back(std::move(child));
    }
  }
  for (const std::vector<Point2>& w : worker_out) {
    out->insert(out->end(), w.begin(), w.end());
  }
}

}  // namespace

unsigned provable_group_len(std::size_t n) {
  return 4 * std::max(1u, ceil_log2(std::max<std::size_t>(n, 2)));
}

std::vector<Point2> netfind(std::vector<Point2> points, unsigned group_len,
                            util::WorkerPool* pool) {
  FTC_REQUIRE(group_len >= 2, "group length must be >= 2");
  util::parallel_sort(points, YLess{}, pool);
  std::vector<Point2> out;
  if (pool != nullptr && pool->default_active() > 1) {
    netfind_frontier(std::move(points), group_len, &out, pool);
  } else {
    netfind_rec(std::move(points), group_len, &out);
  }
  // Canonical order + dedup (a point may be emitted at several levels).
  const auto canon = [](const Point2& a, const Point2& b) {
    return std::tie(a.x, a.y, a.edge) < std::tie(b.x, b.y, b.edge);
  };
  util::parallel_sort(out, canon, pool);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t points_in_rect(std::span<const Point2> pts, std::uint32_t x1,
                           std::uint32_t x2, std::uint32_t y1,
                           std::uint32_t y2) {
  std::size_t count = 0;
  for (const Point2& p : pts) {
    if (p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2) ++count;
  }
  return count;
}

namespace {

// 2D prefix-sum grid over coordinate-compressed points: O(1) counting per
// canonical rectangle.
class RectCounter {
 public:
  RectCounter(std::span<const Point2> pts, const std::vector<std::uint32_t>& xv,
              const std::vector<std::uint32_t>& yv)
      : cols_(xv.size()), rows_(yv.size()), sum_((cols_ + 1) * (rows_ + 1), 0) {
    const auto xi = [&](std::uint32_t x) {
      return static_cast<std::size_t>(
          std::lower_bound(xv.begin(), xv.end(), x) - xv.begin());
    };
    const auto yi = [&](std::uint32_t y) {
      return static_cast<std::size_t>(
          std::lower_bound(yv.begin(), yv.end(), y) - yv.begin());
    };
    for (const Point2& p : pts) {
      sum_[(xi(p.x) + 1) * (rows_ + 1) + yi(p.y) + 1] += 1;
    }
    for (std::size_t i = 1; i <= cols_; ++i) {
      for (std::size_t j = 1; j <= rows_; ++j) {
        sum_[i * (rows_ + 1) + j] += sum_[(i - 1) * (rows_ + 1) + j] +
                                     sum_[i * (rows_ + 1) + j - 1] -
                                     sum_[(i - 1) * (rows_ + 1) + j - 1];
      }
    }
  }

  // Count of points with compressed coordinates in [i1, i2] x [j1, j2].
  std::size_t count(std::size_t i1, std::size_t i2, std::size_t j1,
                    std::size_t j2) const {
    return sum_[(i2 + 1) * (rows_ + 1) + j2 + 1] -
           sum_[i1 * (rows_ + 1) + j2 + 1] -
           sum_[(i2 + 1) * (rows_ + 1) + j1] + sum_[i1 * (rows_ + 1) + j1];
  }

 private:
  std::size_t cols_;
  std::size_t rows_;
  std::vector<std::size_t> sum_;
};

}  // namespace

bool net_hits_all_heavy_rects(std::span<const Point2> pts,
                              std::span<const Point2> net,
                              unsigned threshold) {
  std::set<std::uint32_t> xs, ys;
  for (const Point2& p : pts) {
    xs.insert(p.x);
    ys.insert(p.y);
  }
  const std::vector<std::uint32_t> xv(xs.begin(), xs.end());
  const std::vector<std::uint32_t> yv(ys.begin(), ys.end());
  const RectCounter all(pts, xv, yv);
  const RectCounter hit(net, xv, yv);
  for (std::size_t i = 0; i < xv.size(); ++i) {
    for (std::size_t j = i; j < xv.size(); ++j) {
      for (std::size_t k = 0; k < yv.size(); ++k) {
        for (std::size_t l = k; l < yv.size(); ++l) {
          if (all.count(i, j, k, l) >= threshold &&
              hit.count(i, j, k, l) == 0) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace ftc::geometry
