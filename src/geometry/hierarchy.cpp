#include "geometry/hierarchy.hpp"

#include <algorithm>
#include <tuple>

#include "geometry/greedy_net.hpp"
#include "geometry/netfind.hpp"
#include "util/common.hpp"
#include "util/worker_pool.hpp"

namespace ftc::geometry {

namespace {

std::vector<Point2> next_level(const std::vector<Point2>& cur,
                               const HierarchyConfig& config,
                               unsigned level, util::WorkerPool* pool) {
  switch (config.kind) {
    case HierarchyKind::kDeterministicNetFind: {
      const unsigned gl = config.group_len != 0
                              ? config.group_len
                              : provable_group_len(cur.size());
      std::vector<Point2> net = netfind(cur, gl, pool);
      if (net.size() >= cur.size()) {
        // Only reachable with non-provable (too small) group lengths: the
        // net failed to shrink. Keep every other point to force progress;
        // the provable guarantee is void in this regime anyway and the
        // decoder is fail-stop.
        std::vector<Point2> half;
        for (std::size_t i = 0; i < net.size(); i += 2) half.push_back(net[i]);
        return half;
      }
      return net;
    }
    case HierarchyKind::kDeterministicGreedy: {
      const unsigned thr =
          config.greedy_threshold != 0
              ? config.greedy_threshold
              : std::max<unsigned>(
                    2, static_cast<unsigned>(cur.size() / 4));
      std::vector<Point2> net = greedy_rect_net(cur, thr);
      std::sort(net.begin(), net.end(),
                [](const Point2& a, const Point2& b) {
                  return std::tie(a.x, a.y, a.edge) <
                         std::tie(b.x, b.y, b.edge);
                });
      net.erase(std::unique(net.begin(), net.end()), net.end());
      if (net.size() >= cur.size()) {
        std::vector<Point2> half;
        for (std::size_t i = 0; i < net.size(); i += 2) half.push_back(net[i]);
        return half;
      }
      return net;
    }
    case HierarchyKind::kRandomSampling: {
      SplitMix64 rng(mix_hash(level + 1, config.seed));
      std::vector<Point2> out;
      for (const Point2& p : cur) {
        if (rng.next_bool()) out.push_back(p);
      }
      if (out.size() == cur.size() && !out.empty()) out.pop_back();
      return out;
    }
  }
  FTC_CHECK(false, "unknown hierarchy kind");
}

}  // namespace

EdgeHierarchy build_hierarchy(std::span<const Point2> points,
                              const HierarchyConfig& config,
                              util::WorkerPool* pool) {
  EdgeHierarchy h;
  std::vector<Point2> cur(points.begin(), points.end());
  // Canonical order so the hierarchy is independent of input order.
  util::parallel_sort(
      cur,
      [](const Point2& a, const Point2& b) {
        return std::tie(a.x, a.y, a.edge) < std::tie(b.x, b.y, b.edge);
      },
      pool);
  while (true) {
    std::vector<graph::EdgeId> ids;
    ids.reserve(cur.size());
    for (const Point2& p : cur) ids.push_back(p.edge);
    h.levels.push_back(std::move(ids));
    if (cur.empty()) break;
    cur = next_level(cur, config, h.depth() - 1, pool);
  }
  return h;
}

unsigned provable_hierarchy_k(unsigned f, unsigned group_len) {
  // H_{2f} regions decompose into at most (2f+1)^2 / 2 rectangles
  // (Section 4.3); a region with more than k points has a rectangle with
  // >= 3 * group_len of them, which the net hits.
  const unsigned rects = ((2 * f + 1) * (2 * f + 1) + 1) / 2;
  return netfind_threshold(group_len) * rects;
}

unsigned randomized_hierarchy_k(unsigned f, std::size_t n) {
  // Proposition 5: k = 5 f log n.
  return 5 * f * std::max(1u, ceil_log2(std::max<std::size_t>(n, 2)));
}

}  // namespace ftc::geometry
