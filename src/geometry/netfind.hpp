// NetFind (Lemma 11 + Lemma 12): a deterministic near-linear-time epsilon
// net for points and axis-aligned rectangles.
//
// Divide and conquer on the x-median: at each node, the Lemma 11 gadget
// picks, from every group of `group_len` consecutive points in y-order,
// the x-maximal point left of the split line and the x-minimal point right
// of it. Guarantee: every axis-aligned rectangle containing at least
// 3 * group_len input points contains a net point. Output size is at most
// 2 * |P| * ceil(log2 |P|) / group_len, so group_len >= 4 ceil(log2 |P|)
// yields a constant-fraction (<= 1/2) net — the paper's provable setting
// group_len = 4 log N, threshold 12 log N.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point_map.hpp"

namespace ftc::util {
class WorkerPool;
}  // namespace ftc::util

namespace ftc::geometry {

// The provable group length for universe size N (Lemma 12's epsilon =
// 1 / (2 log N), i.e. groups of 2/eps = 4 log N points).
unsigned provable_group_len(std::size_t n);

// The rectangle-weight threshold guaranteed to be hit: 3 * group_len.
inline unsigned netfind_threshold(unsigned group_len) { return 3 * group_len; }

// Computes the net. Deterministic; output order is canonical (sorted by
// (x, y, edge)). group_len must be >= 2. When `pool` is non-null the
// divide-and-conquer tree is walked breadth-first with the frontier
// fanned across the pool's workers; every split uses the same tie-broken
// x-median as the serial recursion, so the emitted point SET — and after
// the canonical sort + dedup, the returned bytes — are identical for any
// worker count.
std::vector<Point2> netfind(std::vector<Point2> points, unsigned group_len,
                            util::WorkerPool* pool = nullptr);

// Test/bench helper: count input points inside the closed rectangle.
std::size_t points_in_rect(std::span<const Point2> pts, std::uint32_t x1,
                           std::uint32_t x2, std::uint32_t y1,
                           std::uint32_t y2);

// Test/bench helper: verifies the net property exhaustively over all
// canonical rectangles (corners at point coordinates) containing at least
// `threshold` points. O(N^4 * N) — small inputs only.
bool net_hits_all_heavy_rects(std::span<const Point2> pts,
                              std::span<const Point2> net,
                              unsigned threshold);

}  // namespace ftc::geometry
