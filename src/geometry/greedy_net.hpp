// Deterministic poly(N) epsilon-net for axis-aligned rectangles via greedy
// hitting set over the distinct heavy canonical rectangles.
//
// This is the library's stand-in for the Mustafa-Dutta-Ghosh construction
// cited in Lemma 10 (see DESIGN.md, Substitutions): same role in the
// pipeline — a deterministic polynomial-time net that the hierarchy
// builder can plug in instead of NetFind — with the classic greedy
// O(log)-approximation guarantee instead of MDG's O(log log) net size.
// Intended for small instances (tests, examples, ablation benches).
#pragma once

#include <vector>

#include "geometry/point_map.hpp"

namespace ftc::geometry {

// Returns a subset hitting every axis-aligned rectangle that contains at
// least `threshold` of the input points. Complexity is a high-degree
// polynomial (distinct canonical rectangles are enumerated), so the input
// size is capped.
std::vector<Point2> greedy_rect_net(std::span<const Point2> points,
                                    unsigned threshold);

}  // namespace ftc::geometry
