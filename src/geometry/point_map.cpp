#include "geometry/point_map.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace ftc::geometry {

using graph::EdgeId;
using graph::VertexId;

std::vector<Point2> map_nontree_edges(const graph::Graph& g,
                                      const graph::SpanningTree& t,
                                      const graph::EulerTour& et) {
  std::vector<Point2> pts;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (t.is_tree_edge[e]) continue;
    const auto& ed = g.edge(e);
    const std::uint32_t cu = et.coord[ed.u];
    const std::uint32_t cv = et.coord[ed.v];
    FTC_CHECK(cu != cv, "distinct vertices share an Euler coordinate");
    pts.push_back(Point2{std::min(cu, cv), std::max(cu, cv), e});
  }
  return pts;
}

std::vector<std::uint32_t> directed_cut_positions(
    const graph::SpanningTree& t, const graph::EulerTour& et,
    std::span<const char> in_set) {
  FTC_REQUIRE(in_set.size() == t.num_vertices(),
              "membership mask must cover every vertex");
  std::vector<std::uint32_t> positions;
  for (VertexId v = 0; v < t.num_vertices(); ++v) {
    if (v == t.root) continue;
    if (in_set[v] != in_set[t.parent[v]]) {
      positions.push_back(et.coord[v]);     // downward copy
      positions.push_back(et.exit_pos[v]);  // upward copy
    }
  }
  return positions;
}

bool in_cut_region(const Point2& p,
                   std::span<const std::uint32_t> cut_positions) {
  unsigned covered = 0;
  for (const std::uint32_t a : cut_positions) {
    if (p.x >= a) ++covered;  // halfspace hs(x, a)
    if (p.y >= a) ++covered;  // halfspace hs(y, a)
  }
  return covered % 2 == 1;
}

}  // namespace ftc::geometry
