// (S_{f,T}, k)-good hierarchies (Definition 1): nested edge subsets
// E_0 (all non-tree edges) >= E_1 >= ... >= E_h = {} such that any vertex
// set S cutting few tree edges, whose boundary in E_i exceeds k, keeps a
// nonempty boundary in E_{i+1}. Combined with the checkered-region
// argument (Lemma 3), a rectangle epsilon-net of each level yields the
// next level (Lemma 5); random halving does the same with high
// probability (Proposition 5 / Appendix A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point_map.hpp"

namespace ftc::util {
class WorkerPool;
}  // namespace ftc::util

namespace ftc::geometry {

enum class HierarchyKind {
  kDeterministicNetFind,  // Lemma 5 via NetFind (Lemma 12)
  kDeterministicGreedy,   // Lemma 5 via the greedy net (Lemma 10 stand-in)
  kRandomSampling,        // Proposition 5: independent halving
};

struct HierarchyConfig {
  HierarchyKind kind = HierarchyKind::kDeterministicNetFind;
  // NetFind group length; 0 = provable default (4 ceil(log2 N)).
  unsigned group_len = 0;
  // Greedy-net heaviness threshold; 0 = provable-analogue default.
  unsigned greedy_threshold = 0;
  // Seed for kRandomSampling.
  std::uint64_t seed = 1;
};

struct EdgeHierarchy {
  // levels[i] = edge IDs of E_i, with levels.front() = all input edges and
  // levels.back() = {} (the empty E_h is stored explicitly).
  std::vector<std::vector<graph::EdgeId>> levels;

  unsigned depth() const { return static_cast<unsigned>(levels.size()); }
  std::size_t total_edges() const {
    std::size_t s = 0;
    for (const auto& l : levels) s += l.size();
    return s;
  }
};

// Builds the hierarchy over the given points (one per non-tree edge).
// `pool` parallelizes the per-level net computation (the NetFind
// frontier walk and the canonical sorts); the resulting levels are
// byte-identical for any worker count — see netfind().
EdgeHierarchy build_hierarchy(std::span<const Point2> points,
                              const HierarchyConfig& config,
                              util::WorkerPool* pool = nullptr);

// The k for which the deterministic NetFind hierarchy is provably
// (S_{f,T}, k)-good (Lemma 5): a checkered H_{2f} region decomposes into
// (2f+1)^2/2 rectangles, each heavy one containing >= 3*group_len points.
unsigned provable_hierarchy_k(unsigned f, unsigned group_len);

// The k for which random halving is (S_{f,T}, k)-good whp (Prop. 5).
unsigned randomized_hierarchy_k(unsigned f, std::size_t n);

}  // namespace ftc::geometry
