// Geometric embedding of non-tree edges (Section 4.3, Figure 2): with the
// Euler-tour coordinate c(v) per vertex, a non-tree edge (u, v) becomes
// the 2D point (c(u), c(v)) with x < y. Lemma 3 identifies the outgoing
// edge set of any vertex set S with the intersection of the point set and
// a "checkered" region — the symmetric difference of axis-aligned
// halfspaces anchored at the directed tree edges cut by S.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/euler_tour.hpp"
#include "graph/graph.hpp"
#include "graph/spanning_tree.hpp"

namespace ftc::geometry {

struct Point2 {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  graph::EdgeId edge = graph::kNoEdge;  // payload: the edge this point encodes

  friend bool operator==(const Point2&, const Point2&) = default;
};

// Maps every non-tree edge of g (w.r.t. tree t) to its 2D point.
std::vector<Point2> map_nontree_edges(const graph::Graph& g,
                                      const graph::SpanningTree& t,
                                      const graph::EulerTour& et);

// Directed cut positions of a vertex set S (mask over vertices): for every
// tree edge with endpoints on both sides, the tour positions of its
// downward and upward copies. These are the halfspace anchors of Lemma 3.
std::vector<std::uint32_t> directed_cut_positions(
    const graph::SpanningTree& t, const graph::EulerTour& et,
    std::span<const char> in_set);

// Membership of p in the symmetric difference of the halfspaces
// {z >= a : a in cut_positions, z in {x, y}} — true iff p is covered by an
// odd number of them. By Lemma 3 this holds iff p's edge crosses S.
bool in_cut_region(const Point2& p,
                   std::span<const std::uint32_t> cut_positions);

}  // namespace ftc::geometry
