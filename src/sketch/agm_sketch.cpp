#include "sketch/agm_sketch.hpp"

#include "util/common.hpp"
#include "util/xor_kernel.hpp"

namespace ftc::sketch {

AgmSketch::AgmSketch(unsigned levels, unsigned reps, std::uint64_t seed)
    : levels_(levels), reps_(reps), seed_(seed) {
  FTC_REQUIRE(levels >= 1 && reps >= 1, "AgmSketch needs levels, reps >= 1");
  words_.assign(static_cast<std::size_t>(levels_) * reps_ * 3, 0);
}

std::uint64_t AgmSketch::item_hash(const PackedId& id, unsigned rep) const {
  return mix_hash(id.lo ^ (id.hi * 0x9e3779b97f4a7c15ULL),
                  seed_ + 0x1000003 * (rep + 1));
}

std::uint64_t AgmSketch::fingerprint(std::uint64_t lo, std::uint64_t hi,
                                     std::uint64_t seed) {
  return mix_hash(lo + 0x6a09e667f3bcc909ULL * hi, seed ^ 0xdeadbeefULL);
}

void AgmSketch::toggle(const PackedId& id) {
  FTC_REQUIRE(!id.is_zero(), "sketch items must be nonzero");
  const std::uint64_t f = fingerprint(id.lo, id.hi, seed_);
  for (unsigned r = 0; r < reps_; ++r) {
    const std::uint64_t h = item_hash(id, r);
    unsigned level = h == 0 ? 63u : static_cast<unsigned>(__builtin_ctzll(h));
    if (level >= levels_) level = levels_ - 1;
    std::uint64_t* c =
        words_.data() + 3 * (static_cast<std::size_t>(r) * levels_ + level);
    c[0] ^= id.lo;
    c[1] ^= id.hi;
    c[2] ^= f;
  }
}

void AgmSketch::merge(const AgmSketch& o) {
  FTC_REQUIRE(levels_ == o.levels_ && reps_ == o.reps_ && seed_ == o.seed_,
              "merging incompatible AGM sketches");
  // Every cell field is XOR-additive, so the whole sketch merges as one
  // flat word-XOR kernel call (shared with the core decoder's fragment
  // merges, util/xor_kernel.hpp).
  xor_words(words_.data(), o.words_.data(), words_.size());
}

std::optional<PackedId> AgmSketch::sample() const {
  return sample_words(words_, seed_);
}

std::optional<PackedId> AgmSketch::sample_words(
    std::span<const std::uint64_t> words, std::uint64_t seed) {
  for (std::size_t i = 0; i + 2 < words.size(); i += 3) {
    const std::uint64_t id_lo = words[i];
    const std::uint64_t id_hi = words[i + 1];
    const std::uint64_t fp = words[i + 2];
    if (id_lo == 0 && id_hi == 0 && fp == 0) continue;
    if (fp == fingerprint(id_lo, id_hi, seed)) {
      return PackedId{id_lo, id_hi};
    }
  }
  return std::nullopt;
}

void AgmSketch::append_words(std::vector<std::uint64_t>& out) const {
  out.insert(out.end(), words_.begin(), words_.end());
}

AgmSketch AgmSketch::from_words(unsigned levels, unsigned reps,
                                std::uint64_t seed,
                                std::span<const std::uint64_t> words) {
  AgmSketch s(levels, reps, seed);
  FTC_REQUIRE(words.size() == s.num_words(),
              "AGM sketch word count inconsistent with (levels, reps)");
  s.words_.assign(words.begin(), words.end());
  return s;
}

bool AgmSketch::looks_empty() const {
  return !any_word_nonzero(words_.data(), words_.size());
}

}  // namespace ftc::sketch
