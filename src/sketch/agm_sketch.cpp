#include "sketch/agm_sketch.hpp"

#include "util/common.hpp"

namespace ftc::sketch {

AgmSketch::AgmSketch(unsigned levels, unsigned reps, std::uint64_t seed)
    : levels_(levels), reps_(reps), seed_(seed) {
  FTC_REQUIRE(levels >= 1 && reps >= 1, "AgmSketch needs levels, reps >= 1");
  cells_.assign(static_cast<std::size_t>(levels_) * reps_, Cell{});
}

std::uint64_t AgmSketch::item_hash(const PackedId& id, unsigned rep) const {
  return mix_hash(id.lo ^ (id.hi * 0x9e3779b97f4a7c15ULL),
                  seed_ + 0x1000003 * (rep + 1));
}

std::uint64_t AgmSketch::fingerprint(std::uint64_t lo, std::uint64_t hi) const {
  return mix_hash(lo + 0x6a09e667f3bcc909ULL * hi, seed_ ^ 0xdeadbeefULL);
}

void AgmSketch::toggle(const PackedId& id) {
  FTC_REQUIRE(!id.is_zero(), "sketch items must be nonzero");
  const std::uint64_t f = fingerprint(id.lo, id.hi);
  for (unsigned r = 0; r < reps_; ++r) {
    const std::uint64_t h = item_hash(id, r);
    unsigned level = h == 0 ? 63u : static_cast<unsigned>(__builtin_ctzll(h));
    if (level >= levels_) level = levels_ - 1;
    Cell& c = cells_[static_cast<std::size_t>(r) * levels_ + level];
    c.id_lo ^= id.lo;
    c.id_hi ^= id.hi;
    c.fp ^= f;
  }
}

void AgmSketch::merge(const AgmSketch& o) {
  FTC_REQUIRE(levels_ == o.levels_ && reps_ == o.reps_ && seed_ == o.seed_,
              "merging incompatible AGM sketches");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].id_lo ^= o.cells_[i].id_lo;
    cells_[i].id_hi ^= o.cells_[i].id_hi;
    cells_[i].fp ^= o.cells_[i].fp;
  }
}

std::optional<PackedId> AgmSketch::sample() const {
  for (const Cell& c : cells_) {
    if (c.id_lo == 0 && c.id_hi == 0 && c.fp == 0) continue;
    if (c.fp == fingerprint(c.id_lo, c.id_hi)) {
      return PackedId{c.id_lo, c.id_hi};
    }
  }
  return std::nullopt;
}

void AgmSketch::append_words(std::vector<std::uint64_t>& out) const {
  out.reserve(out.size() + num_words());
  for (const Cell& c : cells_) {
    out.push_back(c.id_lo);
    out.push_back(c.id_hi);
    out.push_back(c.fp);
  }
}

AgmSketch AgmSketch::from_words(unsigned levels, unsigned reps,
                                std::uint64_t seed,
                                std::span<const std::uint64_t> words) {
  AgmSketch s(levels, reps, seed);
  FTC_REQUIRE(words.size() == s.num_words(),
              "AGM sketch word count inconsistent with (levels, reps)");
  for (std::size_t i = 0; i < s.cells_.size(); ++i) {
    s.cells_[i].id_lo = words[3 * i];
    s.cells_[i].id_hi = words[3 * i + 1];
    s.cells_[i].fp = words[3 * i + 2];
  }
  return s;
}

bool AgmSketch::looks_empty() const {
  for (const Cell& c : cells_) {
    if (c.id_lo != 0 || c.id_hi != 0 || c.fp != 0) return false;
  }
  return true;
}

}  // namespace ftc::sketch
