// Randomized l0-sampler sketch in the style of Ahn-Guha-McGregor (AGM'12),
// the randomized technique the paper de-randomizes (Section 4.1).
//
// Serves as the engine of the Dory-Parter second scheme baseline
// (src/dp21/agm_ftc.*): each cell of the sketch is a 1-sparse recovery
// unit (XOR of IDs + XOR of fingerprints); items are subsampled
// geometrically per level, and independent repetitions drive the failure
// probability down. Guarantees are "with high probability", in contrast
// to the deterministic RsSketch.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ftc::sketch {

// 128-bit opaque item identifier (edge IDs packed from ancestry labels).
struct PackedId {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool is_zero() const { return lo == 0 && hi == 0; }
  friend bool operator==(const PackedId&, const PackedId&) = default;
  friend auto operator<=>(const PackedId&, const PackedId&) = default;
};

class AgmSketch {
 public:
  AgmSketch() = default;
  // levels: geometric subsampling depth (>= log2 of universe size in use);
  // reps: independent repetitions; seed: shared across all sketches that
  // are to be merged with one another.
  AgmSketch(unsigned levels, unsigned reps, std::uint64_t seed);

  void toggle(const PackedId& id);
  void merge(const AgmSketch& o);

  // Attempts to return some element of the sketched set. Fails (whp only
  // if the set is empty; with small probability also on nonempty sets or
  // returns a bogus ID on adversarial collisions — callers may verify).
  std::optional<PackedId> sample() const;

  // True iff every cell is zero; whp equivalent to the set being empty.
  bool looks_empty() const;

  std::size_t size_bits() const { return words_.size() * 64; }
  unsigned levels() const { return levels_; }
  unsigned reps() const { return reps_; }
  std::uint64_t seed() const { return seed_; }

  // Serialization: the raw cell payload as 3 u64 words per cell
  // (id_lo, id_hi, fp), rep-major — num_words() of them. This is also the
  // in-memory layout (the sketch IS a flat word array), which makes
  // merge() a single word-XOR kernel call and (de)serialization a copy.
  // Round-trips exactly through from_words with the same
  // (levels, reps, seed).
  std::size_t num_words() const { return words_.size(); }
  void append_words(std::vector<std::uint64_t>& out) const;
  static AgmSketch from_words(unsigned levels, unsigned reps,
                              std::uint64_t seed,
                              std::span<const std::uint64_t> words);

  // sample() over a raw cell array (3 u64 per cell, the layout above)
  // without materializing an AgmSketch — the dp21 query workspace keeps
  // per-fragment sketches as flat word rows and samples them in place.
  static std::optional<PackedId> sample_words(
      std::span<const std::uint64_t> words, std::uint64_t seed);

 private:
  std::uint64_t item_hash(const PackedId& id, unsigned rep) const;
  static std::uint64_t fingerprint(std::uint64_t lo, std::uint64_t hi,
                                   std::uint64_t seed);

  unsigned levels_ = 0;
  unsigned reps_ = 0;
  std::uint64_t seed_ = 0;
  // reps_ x levels_ cells, row-major by rep, 3 words per cell:
  // words_[3 * (rep * levels_ + level) + {0, 1, 2}] = id_lo, id_hi, fp.
  std::vector<std::uint64_t> words_;
};

}  // namespace ftc::sketch
