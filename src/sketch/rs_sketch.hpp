// Deterministic k-threshold set sketch (the paper's first key technique,
// Sections 4.2 and 7.4).
//
// A sketch of a set X of nonzero field elements stores the k odd power
// sums S_1, S_3, ..., S_{2k-1} with S_j = sum_{x in X} x^j — exactly the
// syndrome of X's characteristic vector under the parity-check matrix of a
// Reed-Solomon/BCH code with designed distance 2k+1. Because the
// characteristic vector is binary and char(F) = 2, the even power sums are
// squares of earlier ones (S_{2j} = S_j^2), so k field elements suffice:
// this is the O(k log n)-bit label of Proposition 2.
//
// Properties (all verified by tests):
//  * XOR-homomorphic: merge(a, b) sketches the symmetric difference.
//  * Decodable: if |X| <= k, decode() recovers X exactly in O(k^2) field
//    operations (Berlekamp-Massey + Berlekamp trace root finding).
//  * Prefix-adaptive (Proposition 6 / Appendix B): the first k' syndromes
//    are precisely the k'-threshold sketch of the same set, so a decoder
//    may start small and grow.
//  * Fail-stop: decode() re-verifies every stored syndrome against the
//    recovered support; if |X| > k it returns nullopt or falls through —
//    by the minimum-distance argument it never mis-reports a set of size
//    <= k.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "gf/berlekamp_massey.hpp"
#include "gf/gf2.hpp"
#include "gf/gf2_poly.hpp"
#include "gf/trace_roots.hpp"
#include "util/common.hpp"

namespace ftc::sketch {

// Odd power sums S_1, S_3, ..., S_{2k-1} of xs.
template <typename F>
std::vector<F> odd_power_sums(std::span<const F> xs, unsigned k) {
  std::vector<F> syn(k, F::zero());
  for (const F& x : xs) {
    const F x2 = x.square();
    F p = x;
    for (unsigned j = 0; j < k; ++j) {
      syn[j] += p;
      p *= x2;
    }
  }
  return syn;
}

template <typename F>
class RsSketch {
 public:
  using Field = F;

  RsSketch() = default;
  explicit RsSketch(unsigned k) : syn_(k, F::zero()) {}
  explicit RsSketch(std::vector<F> syndromes) : syn_(std::move(syndromes)) {}

  unsigned k() const { return static_cast<unsigned>(syn_.size()); }
  std::span<const F> syndromes() const { return syn_; }

  // Toggles membership of x (insert if absent, erase if present).
  void toggle(F x) {
    FTC_REQUIRE(!x.is_zero(), "sketch elements must be nonzero");
    const F x2 = x.square();
    F p = x;
    for (F& s : syn_) {
      s += p;
      p *= x2;
    }
  }

  // After merging, this sketches the symmetric difference of the two sets.
  void merge(const RsSketch& o) {
    FTC_REQUIRE(o.k() == k(), "merging sketches of different capacity");
    for (unsigned j = 0; j < k(); ++j) syn_[j] += o.syn_[j];
  }

  bool is_zero() const {
    for (const F& s : syn_) {
      if (!s.is_zero()) return false;
    }
    return true;
  }

  // The k'-threshold sketch of the same set (Proposition 6).
  RsSketch prefix(unsigned k2) const {
    FTC_REQUIRE(k2 <= k(), "prefix larger than sketch");
    return RsSketch(std::vector<F>(syn_.begin(), syn_.begin() + k2));
  }

  // Attempts to recover the sketched set assuming |X| <= t (t <= k). Uses
  // only the first t stored syndromes for locator synthesis but verifies
  // the candidate support against all k stored syndromes. Returns the
  // sorted support on success.
  std::optional<std::vector<F>> decode(unsigned t) const {
    FTC_REQUIRE(t <= k(), "decode threshold exceeds sketch capacity");
    if (t == 0) {
      if (is_zero()) return std::vector<F>{};
      return std::nullopt;
    }
    // Reconstruct S_1..S_2k: odd entries stored, even entries are squares.
    const unsigned kk = k();
    std::vector<F> s(2 * kk + 1, F::zero());  // s[i] = S_i, index 1-based
    for (unsigned i = 1; i <= 2 * kk; ++i) {
      s[i] = (i % 2 == 1) ? syn_[(i - 1) / 2] : s[i / 2].square();
    }
    const gf::Poly<F> sigma =
        gf::berlekamp_massey(std::span<const F>(s.data() + 1, 2 * t));
    const int deg = sigma.degree();
    if (deg < 0 || static_cast<unsigned>(deg) > t) return std::nullopt;
    if (deg == 0) {
      if (is_zero()) return std::vector<F>{};
      return std::nullopt;
    }
    // Cheap consistency filter before the (expensive) root finding: a
    // correct locator annihilates the whole syndrome sequence, so check
    // the LFSR recurrence on the syndromes beyond the 2t used by BM.
    // Wrong-threshold attempts (t < |X|) are rejected here in O(k deg)
    // instead of surviving to the trace algorithm.
    for (unsigned i = 2 * t + 1; i <= 2 * kk; ++i) {
      F acc = s[i];
      for (int j = 1; j <= deg; ++j) acc += sigma.coeff(j) * s[i - j];
      if (!acc.is_zero()) return std::nullopt;
    }
    // sigma(z) = prod (1 - x z): its roots are the inverses of the support.
    std::vector<F> roots = gf::find_roots(sigma);
    if (static_cast<int>(roots.size()) != deg) return std::nullopt;
    std::vector<F> support;
    support.reserve(roots.size());
    for (const F& r : roots) {
      if (r.is_zero()) return std::nullopt;
      support.push_back(gf::inverse(r));
    }
    // Full verification against every stored syndrome (fail-stop).
    const std::vector<F> check = odd_power_sums<F>(support, k());
    for (unsigned j = 0; j < k(); ++j) {
      if (check[j] != syn_[j]) return std::nullopt;
    }
    std::sort(support.begin(), support.end());
    return support;
  }

  // Doubling search over thresholds (the adaptive decoding of Section 6 /
  // Appendix B): total cost is dominated by the final successful attempt,
  // so a set of size d decodes in ~O(d^2) instead of O(k^2).
  std::optional<std::vector<F>> decode_adaptive(unsigned start = 1) const {
    if (is_zero()) return std::vector<F>{};
    unsigned t = std::max(1u, std::min(start, k()));
    while (true) {
      if (auto r = decode(t)) return r;
      if (t == k()) return std::nullopt;
      t = std::min(2 * t, k());
    }
  }

  std::size_t size_bits() const { return syn_.size() * F::kBits; }

 private:
  std::vector<F> syn_;
};

}  // namespace ftc::sketch
