// Deterministic k-threshold set sketch (the paper's first key technique,
// Sections 4.2 and 7.4).
//
// A sketch of a set X of nonzero field elements stores the k odd power
// sums S_1, S_3, ..., S_{2k-1} with S_j = sum_{x in X} x^j — exactly the
// syndrome of X's characteristic vector under the parity-check matrix of a
// Reed-Solomon/BCH code with designed distance 2k+1. Because the
// characteristic vector is binary and char(F) = 2, the even power sums are
// squares of earlier ones (S_{2j} = S_j^2), so k field elements suffice:
// this is the O(k log n)-bit label of Proposition 2.
//
// Properties (all verified by tests):
//  * XOR-homomorphic: merge(a, b) sketches the symmetric difference.
//  * Decodable: if |X| <= k, decode() recovers X exactly in O(k^2) field
//    operations (Berlekamp-Massey + Berlekamp trace root finding).
//  * Prefix-adaptive (Proposition 6 / Appendix B): the first k' syndromes
//    are precisely the k'-threshold sketch of the same set, so a decoder
//    may start small and grow.
//  * Fail-stop: decode() re-verifies every stored syndrome against the
//    recovered support; if |X| > k it returns nullopt or falls through —
//    by the minimum-distance argument it never mis-reports a set of size
//    <= k.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "gf/berlekamp_massey.hpp"
#include "gf/gf2.hpp"
#include "gf/gf2_poly.hpp"
#include "gf/trace_roots.hpp"
#include "util/common.hpp"

namespace ftc::sketch {

// Odd power sums S_1, S_3, ..., S_{2k-1} of xs, into a reused buffer.
template <typename F>
void odd_power_sums_into(std::span<const F> xs, unsigned k,
                         std::vector<F>& syn) {
  syn.assign(k, F::zero());
  for (const F& x : xs) {
    const F x2 = x.square();
    F p = x;
    for (unsigned j = 0; j < k; ++j) {
      syn[j] += p;
      p *= x2;
    }
  }
}

// Odd power sums S_1, S_3, ..., S_{2k-1} of xs.
template <typename F>
std::vector<F> odd_power_sums(std::span<const F> xs, unsigned k) {
  std::vector<F> syn;
  odd_power_sums_into(xs, k, syn);
  return syn;
}

// Streaming check that the odd power sums of xs equal syn[0 .. w).
// This is the decoder's fail-stop verification, so it runs on every
// accepted decode and its constant matters. The walk is striped: stripe
// s of 4 holds x^(2(4q+s)+1) and advances by x^8, giving 4 * |xs|
// independent carry-less-multiply chains — throughput-bound, versus the
// latency-bound single chain per element of odd_power_sums_into. Exits
// on the first mismatched syndrome. pow_buf/sq_buf are caller-provided
// scratch (clobbered); syn must not alias them.
template <typename F>
bool power_sums_match(std::span<const F> xs, std::span<const F> syn,
                      unsigned w, std::vector<F>& pow_buf,
                      std::vector<F>& sq_buf) {
  const std::size_t d = xs.size();
  constexpr unsigned kStripes = 4;
  pow_buf.resize(d * kStripes);
  sq_buf.resize(d);
  for (std::size_t i = 0; i < d; ++i) {
    const F x2 = xs[i].square();
    F p = xs[i];
    for (unsigned s = 0; s < kStripes; ++s) {
      pow_buf[s * d + i] = p;  // x^1, x^3, x^5, x^7
      p *= x2;
    }
    sq_buf[i] = x2.square().square();  // the stride: x^8
  }
  for (unsigned base = 0; base < w; base += kStripes) {
    const unsigned lanes = std::min(kStripes, w - base);
    for (unsigned s = 0; s < lanes; ++s) {
      F* row = pow_buf.data() + s * d;
      F acc = F::zero();
      for (std::size_t i = 0; i < d; ++i) {
        acc += row[i];
        row[i] *= sq_buf[i];
      }
      if (acc != syn[base + s]) return false;
    }
  }
  return true;
}

// Reusable scratch for the span-based decoders below. Owning one of these
// per worker thread (the decoder keeps one in DecoderWorkspace) makes the
// query-time decode allocation-free after warm-up: the expanded power-sum
// table, the candidate support and the verification syndromes all live in
// buffers that are recycled across calls instead of re-allocated per
// sketch.
template <typename F>
struct SketchDecodeScratch {
  std::vector<F> syn;      // staging: syndromes gathered from raw words
  std::vector<F> s;        // expanded S_1..S_2k (index 1-based)
  std::vector<F> support;  // decoded support — the decoders' output
  std::vector<F> check;    // verification power sums
};

// Span-based core of RsSketch::decode: attempts to recover the set
// sketched by `syn` assuming its size is <= t (t <= syn.size()). On
// success returns true with the sorted support in scratch.support; on
// failure returns false (fail-stop, never mis-reports a set of size <= k).
// Allocation-free given a warm scratch, except inside Berlekamp-Massey /
// root finding whose temporaries are O(t).
template <typename F>
bool decode_syndromes(std::span<const F> syn, unsigned t,
                      SketchDecodeScratch<F>& scratch) {
  const unsigned kk = static_cast<unsigned>(syn.size());
  FTC_REQUIRE(t <= kk, "decode threshold exceeds sketch capacity");
  scratch.support.clear();
  const auto all_zero = [&syn] {
    for (const F& x : syn) {
      if (!x.is_zero()) return false;
    }
    return true;
  };
  if (t == 0) return all_zero();
  // Reconstruct S_1..S_2k: odd entries stored, even entries are squares.
  std::vector<F>& s = scratch.s;
  s.assign(2 * kk + 1, F::zero());  // s[i] = S_i, index 1-based
  for (unsigned i = 1; i <= 2 * kk; ++i) {
    s[i] = (i % 2 == 1) ? syn[(i - 1) / 2] : s[i / 2].square();
  }
  const gf::Poly<F> sigma =
      gf::berlekamp_massey(std::span<const F>(s.data() + 1, 2 * t));
  const int deg = sigma.degree();
  if (deg < 0 || static_cast<unsigned>(deg) > t) return false;
  if (deg == 0) return all_zero();
  // Cheap consistency filter before the (expensive) root finding: a
  // correct locator annihilates the whole syndrome sequence, so check
  // the LFSR recurrence on the syndromes beyond the 2t used by BM.
  // Wrong-threshold attempts (t < |X|) are rejected here in O(k deg)
  // instead of surviving to the trace algorithm.
  for (unsigned i = 2 * t + 1; i <= 2 * kk; ++i) {
    F acc = s[i];
    for (int j = 1; j <= deg; ++j) acc += sigma.coeff(j) * s[i - j];
    if (!acc.is_zero()) return false;
  }
  // sigma(z) = prod (1 - x z): its roots are the inverses of the support.
  const std::vector<F> roots = gf::find_roots(sigma);
  if (static_cast<int>(roots.size()) != deg) return false;
  scratch.support.reserve(roots.size());
  for (const F& r : roots) {
    if (r.is_zero()) {
      scratch.support.clear();
      return false;
    }
    scratch.support.push_back(gf::inverse(r));
  }
  // Full verification against every stored syndrome (fail-stop). s is
  // done serving the expansion at this point and doubles as scratch.
  if (!power_sums_match<F>(scratch.support, syn, kk, scratch.check,
                           scratch.s)) {
    scratch.support.clear();
    return false;
  }
  std::sort(scratch.support.begin(), scratch.support.end());
  return true;
}

// One field element from its little-endian word representation (the
// flattened layout shared by edge-label payloads, PreparedFaults rows and
// AgmSketch cells: F::kWords std::uint64_t words per element).
template <typename F>
F element_from_words(const std::uint64_t* w) {
  if constexpr (F::kWords == 1) {
    return F(w[0]);
  } else {
    return F(w[0], w[1]);
  }
}

// Word-lazy windowed adaptive decoder — the query hot path's entry point.
//
// `words` is a flattened array of k syndromes (F::kWords words each).
// Rather than materializing all k field elements and verifying every
// attempt against the full sketch (O(k) field operations per attempt even
// for tiny sets), this exploits the prefix property (Proposition 6): the
// first w syndromes are exactly the w-threshold sketch of the same set,
// so each doubling attempt at threshold t decodes the w = 4t prefix and
// verifies against it alone.
//
// Fail-stop is preserved EXACTLY: a candidate support S (|S| = d) is
// accepted only after it also matches the first w* >= (kb + d) / 2
// syndromes, where kb <= k is a SOUND upper bound on the sketched set's
// size (kb = k when the caller has none). Matching w* odd power sums pins
// S_1..S_{2w*} (even sums are squares in characteristic 2), so by the BCH
// minimum-distance argument X != S would need
// |X Δ S| >= 2w* + 1 > kb + d >= |X| + |S| — impossible for any true set
// X of size <= kb. Hence, like the full decoder, a set within the bound
// is never mis-reported; sets exceeding capacity fail (false). Cost: a
// set of size d pays O(d^2) per failed attempt and one O(d * kb/2)
// closure verification, and only ~kb/2 of the k elements are ever
// gathered — label format v2 persists per-level population bounds
// precisely to shrink kb below k.
//
// start_hint seeds the doubling threshold (0 = start at 1). Any value is
// sound — every attempt is exact and closure-verified — so callers pass
// the previous decode's support size: fragment boundaries change slowly
// across merges within one query, making the first attempt usually the
// last.
template <typename F>
bool decode_sketch_words(const std::uint64_t* words, unsigned k,
                         SketchDecodeScratch<F>& scratch, bool adaptive,
                         unsigned k_bound = 0, unsigned start_hint = 0) {
  std::vector<F>& syn = scratch.syn;
  syn.clear();
  const auto gather = [&](unsigned upto) {
    while (syn.size() < upto) {
      syn.push_back(element_from_words<F>(words + syn.size() * F::kWords));
    }
  };
  if (!adaptive) {
    // Ablation path (QueryOptions::adaptive = false): the plain full-width
    // decode, verified against every syndrome.
    gather(k);
    return decode_syndromes<F>(syn, k, scratch);
  }
  const unsigned kb =
      k_bound == 0 ? k : std::max(1u, std::min(k, k_bound));
  unsigned t = std::max(1u, std::min(kb, start_hint));
  while (true) {
    const unsigned w = std::min(kb, 4 * t);
    gather(w);
    // An empty support from a zero window can only be trusted at full
    // width (a nonzero sketch with a zero w*-prefix means |X| > kb): keep
    // doubling so the t = kb round gives the exact bounded-width answer.
    if (decode_syndromes<F>(std::span<const F>(syn.data(), w), t, scratch) &&
        (!scratch.support.empty() || w == kb)) {
      const unsigned d = static_cast<unsigned>(scratch.support.size());
      const unsigned w_star = std::min(kb, std::max(w, (kb + d + 1) / 2));
      if (w_star <= w) return true;  // the attempt window already closes it
      gather(w_star);
      if (!scratch.support.empty() &&
          power_sums_match<F>(scratch.support,
                              std::span<const F>(syn.data(), w_star), w_star,
                              scratch.check, scratch.s)) {
        return true;
      }
      // A window-w collision from a set larger than w: keep doubling —
      // at t = kb this becomes the exact bounded-width decode.
      scratch.support.clear();
    }
    if (t == kb) return false;
    t = std::min(2 * t, kb);
  }
}

// Doubling search over thresholds (the adaptive decoding of Section 6 /
// Appendix B), span form: total cost is dominated by the final successful
// attempt, so a set of size d decodes in ~O(d^2) instead of O(k^2).
template <typename F>
bool decode_syndromes_adaptive(std::span<const F> syn,
                               SketchDecodeScratch<F>& scratch,
                               unsigned start = 1) {
  const unsigned kk = static_cast<unsigned>(syn.size());
  bool nonzero = false;
  for (const F& x : syn) {
    if (!x.is_zero()) {
      nonzero = true;
      break;
    }
  }
  if (!nonzero) {
    scratch.support.clear();
    return true;
  }
  unsigned t = std::max(1u, std::min(start, kk));
  while (true) {
    if (decode_syndromes<F>(syn, t, scratch)) return true;
    if (t == kk) return false;
    t = std::min(2 * t, kk);
  }
}

template <typename F>
class RsSketch {
 public:
  using Field = F;

  RsSketch() = default;
  explicit RsSketch(unsigned k) : syn_(k, F::zero()) {}
  explicit RsSketch(std::vector<F> syndromes) : syn_(std::move(syndromes)) {}

  unsigned k() const { return static_cast<unsigned>(syn_.size()); }
  std::span<const F> syndromes() const { return syn_; }

  // Toggles membership of x (insert if absent, erase if present).
  void toggle(F x) {
    FTC_REQUIRE(!x.is_zero(), "sketch elements must be nonzero");
    const F x2 = x.square();
    F p = x;
    for (F& s : syn_) {
      s += p;
      p *= x2;
    }
  }

  // After merging, this sketches the symmetric difference of the two sets.
  void merge(const RsSketch& o) {
    FTC_REQUIRE(o.k() == k(), "merging sketches of different capacity");
    for (unsigned j = 0; j < k(); ++j) syn_[j] += o.syn_[j];
  }

  bool is_zero() const {
    for (const F& s : syn_) {
      if (!s.is_zero()) return false;
    }
    return true;
  }

  // The k'-threshold sketch of the same set (Proposition 6).
  RsSketch prefix(unsigned k2) const {
    FTC_REQUIRE(k2 <= k(), "prefix larger than sketch");
    return RsSketch(std::vector<F>(syn_.begin(), syn_.begin() + k2));
  }

  // Attempts to recover the sketched set assuming |X| <= t (t <= k). Uses
  // only the first t stored syndromes for locator synthesis but verifies
  // the candidate support against all k stored syndromes. Returns the
  // sorted support on success. Owning convenience over decode_syndromes();
  // hot paths pass a long-lived SketchDecodeScratch instead.
  std::optional<std::vector<F>> decode(unsigned t) const {
    SketchDecodeScratch<F> scratch;
    if (!decode_syndromes<F>(syn_, t, scratch)) return std::nullopt;
    return std::move(scratch.support);
  }

  // Doubling search over thresholds (the adaptive decoding of Section 6 /
  // Appendix B): total cost is dominated by the final successful attempt,
  // so a set of size d decodes in ~O(d^2) instead of O(k^2).
  std::optional<std::vector<F>> decode_adaptive(unsigned start = 1) const {
    SketchDecodeScratch<F> scratch;
    if (!decode_syndromes_adaptive<F>(syn_, scratch, start)) {
      return std::nullopt;
    }
    return std::move(scratch.support);
  }

  std::size_t size_bits() const { return syn_.size() * F::kBits; }

 private:
  std::vector<F> syn_;
};

}  // namespace ftc::sketch
