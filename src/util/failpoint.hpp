// Zero-cost-when-off failpoint harness for syscall-boundary fault
// injection.
//
// A failpoint is a named site in the code (e.g. "store.write.fsync")
// that can be armed to report a synthetic errno instead of letting the
// real syscall run. Sites are compiled in unconditionally; when no
// failpoint is armed the per-site cost is ONE relaxed atomic load and a
// predictable branch, so sites are cheap enough to leave on hot-ish
// paths (they still stay off the per-query label-read path, which does
// no syscalls).
//
// Usage at a site:
//
//   int rc;
//   if (const int fe = FTC_FAILPOINT("store.write.fsync")) {
//     errno = fe;
//     rc = -1;
//   } else {
//     rc = ::fsync(fd);
//   }
//
// Arming, programmatically or via the FTC_FAILPOINTS environment
// variable (parsed once at startup and again by load_env()):
//
//   FTC_FAILPOINTS="store.write.fsync=once:EIO;store.shard.link=always:EXDEV"
//
// Spec grammar: `mode[:arg][:ERRNO]` where mode is one of
//   off        — never fires (clears the point but keeps counting hits)
//   once       — fires on the first hit only
//   nth:N      — fires on the Nth hit only (1-based)
//   prob:P     — fires each hit with probability P in [0,1]
//   always     — fires on every hit
//   count      — never fires; used to count how many times a site is
//                hit by an operation (torture sweeps enumerate
//                boundaries with this, then replay with nth:N)
// ERRNO is a symbolic name (EIO, ENOSPC, EXDEV, ...) or a decimal
// number; it defaults to EIO. Hits are counted for every armed point,
// whether or not it fires.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ftc::failpoint {

namespace detail {
// Number of armed failpoints across the process. Zero means every
// FTC_FAILPOINT expands to a single relaxed load + untaken branch.
extern std::atomic<int> g_active_count;

// Slow path: looks the name up in the registry, bumps its hit count,
// and decides whether to fire. Returns the errno to inject, or 0.
int check_slow(const char* name);
}  // namespace detail

inline bool armed() {
  return detail::g_active_count.load(std::memory_order_relaxed) != 0;
}

// Returns the errno this site should fail with, or 0 to proceed.
inline int fire(const char* name) {
  if (!armed()) return 0;
  return detail::check_slow(name);
}

// Arms `name` with the given spec (see grammar above). Replacing an
// existing spec resets its hit count. Throws std::invalid_argument on
// a malformed spec.
void set(const std::string& name, const std::string& spec);

// Disarms one point / every point. Hit counts are discarded.
void clear(const std::string& name);
void clear_all();

// Times the named site was reached since it was armed (0 if unknown).
std::uint64_t hit_count(const std::string& name);

// Names of currently armed failpoints (including exhausted `once`
// points and `count` observers).
std::vector<std::string> active();

// Parses FTC_FAILPOINTS ("name=spec;name=spec"). Also run by a static
// initializer so env-armed failpoints work without any call site.
void load_env();

// RAII arm/disarm for tests.
class Scoped {
 public:
  Scoped(std::string name, const std::string& spec) : name_(std::move(name)) {
    set(name_, spec);
  }
  ~Scoped() { clear(name_); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

  std::uint64_t hits() const { return hit_count(name_); }

 private:
  std::string name_;
};

}  // namespace ftc::failpoint

#define FTC_FAILPOINT(name) ::ftc::failpoint::fire(name)
