// RAII file descriptor + the small read helpers the store and sniff
// paths used to hand-roll. Every early-error return closes the fd.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <utility>

namespace ftc::util {

class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  int release() { return std::exchange(fd_, -1); }

  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

  // Close explicitly and report the close() result — write paths need
  // to surface a failed close, which the destructor must swallow.
  int close_now() {
    const int fd = release();
    return fd >= 0 ? ::close(fd) : 0;
  }

 private:
  int fd_ = -1;
};

// Reads exactly `len` bytes at the fd's current offset, retrying on
// EINTR / short reads. Returns false on EOF-before-len or read error
// (errno is left set by the failing read; 0 on plain EOF).
inline bool read_full(int fd, void* buf, std::size_t len) {
  auto* out = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ::ssize_t n = ::read(fd, out + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      errno = 0;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace ftc::util
