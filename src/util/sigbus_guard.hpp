// Process-wide SIGBUS translation for mmap-backed reads.
//
// A file truncated or replaced behind a live read-only mapping delivers
// SIGBUS on the next access to a page past the new EOF; untreated, that
// kills the process. This module turns such faults — and only those
// inside ranges explicitly registered by the store layer — into a
// longjmp back to the innermost armed SigbusGuard on the faulting
// thread, where the caller rethrows a typed error.
//
// Contract for guarded regions: the code between arm() and the end of
// the guarded block must not allocate or otherwise own resources whose
// destructors matter, because siglongjmp skips them. Guards therefore
// wrap tight scan loops and raw memcpy/reads of mapped bytes; the
// throw happens back in the guard's own frame, which unwinds normally.
//
//   util::SigbusGuard g;
//   if (sigsetjmp(g.jump(), 0) == 0) {
//     g.arm();
//     ... read mapped bytes only ...
//   } else {
//     throw ...;  // g.fault_addr() names the faulting page
//   }
//
// Faults outside registered ranges, or with no armed guard on the
// faulting thread, are forwarded to the previously installed handler
// (ASan's, or the default — i.e. still a crash, as it should be).
#pragma once

#include <csetjmp>
#include <cstddef>

namespace ftc::util {

// Registers [base, base + len) as a mapped region whose faults should
// be translated. Installs the process-wide handler on first use.
// Thread-safe. No-op for len == 0.
void register_mapped_range(const void* base, std::size_t len);
void unregister_mapped_range(const void* base);

class SigbusGuard {
 public:
  SigbusGuard();
  ~SigbusGuard();
  SigbusGuard(const SigbusGuard&) = delete;
  SigbusGuard& operator=(const SigbusGuard&) = delete;

  sigjmp_buf& jump() { return jump_; }

  // Makes this guard the landing site for SIGBUS on this thread. Must
  // be called after sigsetjmp(jump(), 0) returned 0. Guards nest: the
  // innermost armed guard wins; the destructor re-exposes the outer.
  void arm();

  // Faulting address, valid after the sigsetjmp returned nonzero.
  const void* fault_addr() const { return fault_addr_; }

 private:
  friend void deliver_to_guard(SigbusGuard* g, const void* addr);
  sigjmp_buf jump_;
  SigbusGuard* prev_ = nullptr;
  const void* fault_addr_ = nullptr;
  bool armed_ = false;
};

}  // namespace ftc::util
