#include "util/failpoint.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

namespace ftc::failpoint {

namespace detail {
std::atomic<int> g_active_count{0};
}  // namespace detail

namespace {

enum class Mode { kOff, kOnce, kNth, kProb, kAlways, kCount };

struct Point {
  Mode mode = Mode::kOff;
  std::uint64_t nth = 0;       // kNth: 1-based hit index that fires
  double probability = 0.0;    // kProb
  int error = EIO;             // errno injected when the point fires
  std::uint64_t hits = 0;
  bool fired = false;          // kOnce latch
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Point> points;
  // Deterministic stream for prob mode: fixed seed so a given arm
  // sequence fires the same hits in every run.
  std::uint64_t rng_state = 0x9e3779b97f4a7c15ULL;
};

Registry& registry() {
  static Registry r;
  return r;
}

double next_uniform(Registry& r) {
  // splitmix64
  std::uint64_t z = (r.rng_state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

int parse_errno(const std::string& text) {
  static const std::map<std::string, int> kNames = {
      {"EIO", EIO},       {"EINTR", EINTR},   {"ENOSPC", ENOSPC},
      {"EXDEV", EXDEV},   {"EPERM", EPERM},   {"EMFILE", EMFILE},
      {"ENFILE", ENFILE}, {"ENOENT", ENOENT}, {"EACCES", EACCES},
      {"EAGAIN", EAGAIN}, {"EBADF", EBADF},   {"EFAULT", EFAULT},
      {"ENOMEM", ENOMEM}, {"EROFS", EROFS},   {"EDQUOT", EDQUOT},
  };
  if (const auto it = kNames.find(text); it != kNames.end()) return it->second;
  std::size_t pos = 0;
  int value = 0;
  try {
    value = std::stoi(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size() || value <= 0) {
    throw std::invalid_argument("failpoint: unknown errno '" + text + "'");
  }
  return value;
}

Point parse_spec(const std::string& name, const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t colon = spec.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(begin));
      break;
    }
    parts.push_back(spec.substr(begin, colon - begin));
    begin = colon + 1;
  }
  const auto fail = [&](const char* why) -> Point {
    throw std::invalid_argument("failpoint '" + name + "': " + why + " in '" +
                                spec + "'");
  };
  if (parts.empty() || parts[0].empty()) fail("empty spec");

  Point p;
  std::size_t next = 1;
  const std::string& mode = parts[0];
  if (mode == "off") {
    p.mode = Mode::kOff;
  } else if (mode == "once") {
    p.mode = Mode::kOnce;
  } else if (mode == "always") {
    p.mode = Mode::kAlways;
  } else if (mode == "count") {
    p.mode = Mode::kCount;
  } else if (mode == "nth") {
    p.mode = Mode::kNth;
    if (parts.size() < 2) fail("nth needs an index");
    try {
      p.nth = std::stoull(parts[1]);
    } catch (const std::exception&) {
      fail("bad nth index");
    }
    if (p.nth == 0) fail("nth index is 1-based");
    next = 2;
  } else if (mode == "prob") {
    p.mode = Mode::kProb;
    if (parts.size() < 2) fail("prob needs a probability");
    try {
      p.probability = std::stod(parts[1]);
    } catch (const std::exception&) {
      fail("bad probability");
    }
    if (p.probability < 0.0 || p.probability > 1.0) {
      fail("probability outside [0,1]");
    }
    next = 2;
  } else {
    fail("unknown mode");
  }
  if (parts.size() > next + 1) fail("trailing fields");
  if (parts.size() == next + 1) p.error = parse_errno(parts[next]);
  return p;
}

}  // namespace

namespace detail {

int check_slow(const char* name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.points.find(name);
  if (it == r.points.end()) return 0;
  Point& p = it->second;
  ++p.hits;
  switch (p.mode) {
    case Mode::kOff:
    case Mode::kCount:
      return 0;
    case Mode::kOnce:
      if (p.fired) return 0;
      p.fired = true;
      return p.error;
    case Mode::kNth:
      return p.hits == p.nth ? p.error : 0;
    case Mode::kProb:
      return next_uniform(r) < p.probability ? p.error : 0;
    case Mode::kAlways:
      return p.error;
  }
  return 0;
}

}  // namespace detail

void set(const std::string& name, const std::string& spec) {
  const Point p = parse_spec(name, spec);  // validate before locking
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto [it, inserted] = r.points.insert_or_assign(name, p);
  (void)it;
  if (inserted) {
    detail::g_active_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void clear(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (r.points.erase(name) > 0) {
    detail::g_active_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void clear_all() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  detail::g_active_count.fetch_sub(static_cast<int>(r.points.size()),
                                   std::memory_order_relaxed);
  r.points.clear();
}

std::uint64_t hit_count(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> active() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.points.size());
  for (const auto& [name, point] : r.points) names.push_back(name);
  return names;
}

void load_env() {
  const char* env = std::getenv("FTC_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  const std::string spec(env);
  std::size_t begin = 0;
  while (begin < spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("FTC_FAILPOINTS: expected name=spec, got '" +
                                  entry + "'");
    }
    set(entry.substr(0, eq), entry.substr(eq + 1));
  }
}

namespace {
// Arm env-specified failpoints before main() so CLI runs need no code
// changes. A malformed env spec aborts loudly rather than silently
// skipping the injection a test asked for.
const bool g_env_loaded = [] {
  load_env();
  return true;
}();
}  // namespace

}  // namespace ftc::failpoint
