// Word-level GF(2) kernels for the decoder hot path.
//
// Everything the serving path accumulates — RS-sketch power sums over
// GF(2^64)/GF(2^128), AGM l0-sampler cells, cycle-space bit vectors and
// the per-fragment cut bitsets — is addition in characteristic 2, i.e.
// XOR of flattened std::uint64_t arrays. Keeping the merge kernels here,
// as plain restrict-qualified word loops, lets the compiler auto-vectorize
// one implementation that is shared by the in-memory decoder
// (core/ftc_query.cpp), the label-served backends behind load_scheme()
// (core/label_store.cpp -> dp21/*, sketch/agm_sketch.cpp), and
// prepare-time fragment-sum accumulation. bench_decoder_hotpath measures
// the result.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ftc {

// dst[i] ^= src[i]. The ranges must not overlap.
inline void xor_words(std::uint64_t* __restrict dst,
                      const std::uint64_t* __restrict src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

// dst[i] = a[i] ^ b[i]. No range may overlap another. Fuses the decoder's
// copy-on-write materialization with the first merge into that row: one
// streaming pass instead of copy-then-xor.
inline void xor_words_into(std::uint64_t* __restrict dst,
                           const std::uint64_t* __restrict a,
                           const std::uint64_t* __restrict b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] ^ b[i];
}

// Population count of an n-word bitset.
inline unsigned popcount_words(const std::uint64_t* w, std::size_t n) {
  unsigned c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += static_cast<unsigned>(__builtin_popcountll(w[i]));
  }
  return c;
}

// True iff any of the n words is nonzero (word-level zero scan: the
// decoder's per-level emptiness test never materializes field elements).
inline bool any_word_nonzero(const std::uint64_t* w, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= w[i];
  return acc != 0;
}

}  // namespace ftc
