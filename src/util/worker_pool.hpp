// WorkerPool: the parked-pool pattern extracted from BatchQueryEngine so
// the label *builders* (ftc_scheme.cpp, dp21/*.cpp, geometry/netfind.cpp)
// can fan work across cores with the same cost model the query path
// already pays: threads are created once (lazily, growing to the largest
// fan-out ever requested) and parked on a condition variable between
// dispatches, so a dispatch costs two mutex hand-offs instead of
// fan-out thread spawns + joins. The build pipeline dispatches a few
// times per hierarchy level, which is exactly the regime where parking
// wins over spawn-per-phase.
//
// Determinism contract (the reason this pool is safe under the
// byte-identical-build guarantee of test_parallel_build): the pool only
// *schedules* work; every caller partitions output locations disjointly
// per worker id (or accumulates in a GF(2)/XOR structure where order is
// irrelevant), so results never depend on interleaving. run() returns
// only after every id of the dispatch finished.
//
// Unlike the original batch-engine pool, tasks MAY throw: the first
// exception (by completion order) is captured and rethrown from run()
// on the dispatching thread after the generation drains, so builder
// invariant checks (FTC_CHECK) keep their fail-fast semantics under
// parallel execution.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ftc::util {

class WorkerPool {
 public:
  // Thread-count knob semantics shared by every build config: 0 = one
  // worker per hardware thread, N = exactly N workers (1 = serial).
  static unsigned resolve_threads(unsigned requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
  }

  explicit WorkerPool(unsigned default_active = 1)
      : default_active_(std::max(1u, default_active)) {}

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // The fan-out run(task) uses; callers partition work into this many
  // stripes/blocks.
  unsigned default_active() const { return default_active_; }

  // Runs task(id) for id in [0, active): ids 1..active-1 on pool
  // threads, id 0 on the calling thread. Returns once every id has
  // finished; rethrows the first captured task exception. Only one
  // run() may be active at a time (single dispatching thread; no
  // nesting from inside a task).
  void run(unsigned active, const std::function<void(unsigned)>& task) {
    if (active <= 1) {
      invoke(task, 0);
      rethrow_pending();
      return;
    }
    while (threads_.size() < active - 1) {
      const unsigned id = static_cast<unsigned>(threads_.size()) + 1;
      threads_.emplace_back([this, id] { worker_main(id); });
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job_ = &task;
      active_workers_ = active;
      running_ = active - 1;
      ++generation_;
    }
    cv_work_.notify_all();
    invoke(task, 0);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_done_.wait(lock, [this] { return running_ == 0; });
      job_ = nullptr;
    }
    rethrow_pending();
  }

  void run(const std::function<void(unsigned)>& task) {
    run(default_active_, task);
  }

 private:
  void invoke(const std::function<void(unsigned)>& task, unsigned id) {
    try {
      task(id);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }

  void rethrow_pending() {
    std::exception_ptr err;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      err = std::exchange(first_error_, nullptr);
    }
    if (err) std::rethrow_exception(err);
  }

  void worker_main(unsigned id) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_work_.wait(lock, [&] {
          return stop_ || (generation_ != seen && job_ != nullptr);
        });
        if (stop_) return;
        seen = generation_;
        if (id >= active_workers_) continue;  // not part of this fan-out
        task = job_;
      }
      invoke(*task, id);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (--running_ == 0) cv_done_.notify_one();
      }
    }
  }

  const unsigned default_active_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;  // thread i serves worker id i + 1
  const std::function<void(unsigned)>* job_ = nullptr;
  unsigned active_workers_ = 0;
  unsigned running_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  // guarded by mutex_
};

namespace detail {

// The split index std::merge would reach after `s` outputs when merging
// A[0, nA) with B[0, nB): the number of elements taken from A. std::merge
// takes from A on ties, which makes the split unique even with equal keys
// across the runs — so every worker computing boundaries of its output
// chunk lands on the same (i, s - i), and chunk outputs tile the merged
// range exactly.
template <typename T, typename Comp>
std::size_t merge_corank(std::size_t s, const T* a, std::size_t na,
                         const T* b, std::size_t nb, const Comp& comp) {
  std::size_t lo = s > nb ? s - nb : 0;
  std::size_t hi = std::min(s, na);
  // Largest i with: everything taken from A so far precedes (or ties,
  // A winning) the next B element.
  while (lo < hi) {
    const std::size_t i = lo + (hi - lo + 1) / 2;  // i >= lo + 1 >= 1
    const std::size_t j = s - i;
    const bool ok = j >= nb || !comp(b[j], a[i - 1]);
    if (ok) {
      lo = i;
    } else {
      hi = i - 1;
    }
  }
  return lo;
}

}  // namespace detail

// Parallel stable-ish merge sort whose output is BYTE-IDENTICAL to
// std::sort(v, comp) whenever ties under comp only occur between
// bit-identical elements (true for every order the geometry pipeline
// uses: point orders tie-break by edge id, and fully-equal points are
// identical structs). Block-sorts then merges with merge-path (co-rank)
// splitting so every worker participates in every round. Falls back to
// std::sort for small inputs or a serial pool.
template <typename T, typename Comp>
void parallel_sort(std::vector<T>& v, Comp comp, WorkerPool* pool) {
  const std::size_t n = v.size();
  const unsigned workers =
      pool != nullptr
          ? static_cast<unsigned>(std::min<std::size_t>(
                pool->default_active(), std::max<std::size_t>(n / 4096, 1)))
          : 1;
  if (workers <= 1) {
    std::sort(v.begin(), v.end(), comp);
    return;
  }

  // Block boundaries; blocks are the initial sorted runs.
  std::vector<std::size_t> runs(workers + 1);
  for (unsigned b = 0; b <= workers; ++b) runs[b] = n * b / workers;
  pool->run(workers, [&](unsigned b) {
    std::sort(v.begin() + static_cast<std::ptrdiff_t>(runs[b]),
              v.begin() + static_cast<std::ptrdiff_t>(runs[b + 1]), comp);
  });

  std::vector<T> scratch(n);
  T* src = v.data();
  T* dst = scratch.data();
  while (runs.size() > 2) {
    // Pair up runs; the merged output of pair p covers
    // [runs[2p], runs[2p + 2]) of dst. Workers split the total output
    // range evenly and co-rank their chunk boundaries inside each pair.
    const std::size_t pairs = (runs.size() - 1) / 2;
    const bool odd_tail = (runs.size() - 1) % 2 != 0;
    pool->run(workers, [&](unsigned w) {
      const std::size_t g0 = n * w / workers;
      const std::size_t g1 = n * (w + 1) / workers;
      for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t lo = runs[2 * p];
        const std::size_t mid = runs[2 * p + 1];
        const std::size_t hi = runs[2 * p + 2];
        const std::size_t s0 = std::clamp(g0, lo, hi) - lo;
        const std::size_t s1 = std::clamp(g1, lo, hi) - lo;
        if (s0 >= s1) continue;
        const T* a = src + lo;
        const std::size_t na = mid - lo;
        const T* b = src + mid;
        const std::size_t nb = hi - mid;
        std::size_t i = detail::merge_corank(s0, a, na, b, nb, comp);
        std::size_t j = s0 - i;
        const std::size_t i_end = detail::merge_corank(s1, a, na, b, nb, comp);
        const std::size_t j_end = s1 - i_end;
        T* out = dst + lo + s0;
        while (i < i_end && j < j_end) {
          // std::merge's rule: take from B only when strictly smaller.
          if (comp(b[j], a[i])) {
            *out++ = b[j++];
          } else {
            *out++ = a[i++];
          }
        }
        while (i < i_end) *out++ = a[i++];
        while (j < j_end) *out++ = b[j++];
      }
      if (odd_tail) {
        // Unpaired trailing run: copy through, split across workers.
        const std::size_t lo = runs[runs.size() - 2];
        const std::size_t hi = runs.back();
        const std::size_t c0 = std::clamp(g0, lo, hi);
        const std::size_t c1 = std::clamp(g1, lo, hi);
        if (c0 < c1) std::copy(src + c0, src + c1, dst + c0);
      }
    });
    std::vector<std::size_t> next;
    next.reserve(pairs + 2);
    for (std::size_t p = 0; p <= pairs; ++p) next.push_back(runs[2 * p]);
    if (odd_tail) next.push_back(runs.back());
    if (next.back() != n) next.push_back(n);
    runs = std::move(next);
    std::swap(src, dst);
  }
  if (src != v.data()) {
    std::copy(src, src + n, v.data());
  }
}

}  // namespace ftc::util
