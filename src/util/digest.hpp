// The one FNV-1a implementation every artifact format shares.
//
// Container headers (label_store.hpp), sharded manifests
// (sharded_store.hpp), deletion-journal frame chains (journal.hpp), the
// remote shard cache's fetch verification (shard_cache.hpp) and the
// delta-push content addresses all digest bytes the same way: 64-bit
// FNV-1a, seedable so checksums can be streamed or chained. Keeping the
// constants and the loop here — plus the little-endian field readers the
// binary parsers share — is what guarantees a digest computed by one
// layer (say, a shard writer) verifies in another (say, the cache
// publishing a fetched shard against its manifest record).
#pragma once

#include <cstdint>
#include <span>

namespace ftc::util {

inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

// FNV-1a over a byte range, seedable with a previous digest so
// checksums can be streamed (journal frame chains seed each frame with
// the previous frame's running digest).
inline std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                           std::uint64_t h = kFnvBasis) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

// Unchecked little-endian field reads for binary parsers that have
// already bounds-checked the enclosing region (header copies, validated
// section scans). The store formats are LE regardless of host order.
inline std::uint64_t read_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

inline std::uint32_t read_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

}  // namespace ftc::util
