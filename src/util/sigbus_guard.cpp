#include "util/sigbus_guard.hpp"

#include <signal.h>

#include <atomic>
#include <cstdint>
#include <mutex>

namespace ftc::util {

void deliver_to_guard(SigbusGuard* g, const void* addr);

namespace {

// Registered mapping table. The handler scans it lock-free (atomics
// only — it runs in signal context); writers serialize on a mutex and
// publish base last so a half-written slot never matches.
constexpr std::size_t kMaxRanges = 16384;

struct Range {
  std::atomic<std::uintptr_t> base{0};
  std::atomic<std::size_t> len{0};
};

Range g_ranges[kMaxRanges];
std::atomic<std::size_t> g_high_water{0};  // slots ever used; scan bound
std::mutex g_ranges_mutex;

// Innermost armed guard on this thread. SIGBUS from a bad mapped read
// is synchronous, so touching a thread_local in the handler is sound.
thread_local SigbusGuard* t_top = nullptr;

struct sigaction g_old_action;
std::once_flag g_install_once;

bool in_registered_range(const void* addr) {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::size_t n = g_high_water.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uintptr_t base =
        g_ranges[i].base.load(std::memory_order_acquire);
    if (base == 0) continue;
    const std::size_t len = g_ranges[i].len.load(std::memory_order_relaxed);
    if (a >= base && a - base < len) return true;
  }
  return false;
}

void forward_to_previous(int sig, siginfo_t* info, void* ctx) {
  if ((g_old_action.sa_flags & SA_SIGINFO) != 0 &&
      g_old_action.sa_sigaction != nullptr) {
    g_old_action.sa_sigaction(sig, info, ctx);
    return;
  }
  if (g_old_action.sa_handler == SIG_IGN) return;
  if (g_old_action.sa_handler != SIG_DFL &&
      g_old_action.sa_handler != nullptr) {
    g_old_action.sa_handler(sig);
    return;
  }
  // Default disposition: restore and re-raise so the process dies with
  // the genuine SIGBUS (core dump / sanitizer report intact).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void handle_sigbus(int sig, siginfo_t* info, void* ctx) {
  SigbusGuard* guard = t_top;
  if (guard != nullptr && info != nullptr &&
      in_registered_range(info->si_addr)) {
    deliver_to_guard(guard, info->si_addr);  // siglongjmp; no return
  }
  forward_to_previous(sig, info, ctx);
}

void install_handler() {
  struct sigaction action {};
  action.sa_sigaction = &handle_sigbus;
  sigemptyset(&action.sa_mask);
  // SA_NODEFER: the handler exits via siglongjmp, so SIGBUS must not be
  // left blocked (guards sigsetjmp with savemask=0 — no mask to
  // restore, and no sigprocmask syscall per guarded read).
  action.sa_flags = SA_SIGINFO | SA_NODEFER;
  ::sigaction(SIGBUS, &action, &g_old_action);
}

}  // namespace

void deliver_to_guard(SigbusGuard* g, const void* addr) {
  g->fault_addr_ = addr;
  g->armed_ = false;
  t_top = g->prev_;  // re-expose the outer guard before jumping
  siglongjmp(g->jump_, 1);
}

void register_mapped_range(const void* base, std::size_t len) {
  if (base == nullptr || len == 0) return;
  std::call_once(g_install_once, install_handler);
  const std::lock_guard<std::mutex> lock(g_ranges_mutex);
  const std::size_t n = g_high_water.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (g_ranges[i].base.load(std::memory_order_relaxed) == 0) {
      g_ranges[i].len.store(len, std::memory_order_relaxed);
      g_ranges[i].base.store(reinterpret_cast<std::uintptr_t>(base),
                             std::memory_order_release);
      return;
    }
  }
  if (n < kMaxRanges) {
    g_ranges[n].len.store(len, std::memory_order_relaxed);
    g_ranges[n].base.store(reinterpret_cast<std::uintptr_t>(base),
                           std::memory_order_relaxed);
    g_high_water.store(n + 1, std::memory_order_release);
    return;
  }
  // Out of slots: this mapping simply stays untranslated (a fault in it
  // forwards to the previous handler). 16384 concurrent mappings is far
  // beyond any real generation; don't fail an open over bookkeeping.
}

void unregister_mapped_range(const void* base) {
  if (base == nullptr) return;
  const auto key = reinterpret_cast<std::uintptr_t>(base);
  const std::lock_guard<std::mutex> lock(g_ranges_mutex);
  const std::size_t n = g_high_water.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (g_ranges[i].base.load(std::memory_order_relaxed) == key) {
      g_ranges[i].base.store(0, std::memory_order_release);
      g_ranges[i].len.store(0, std::memory_order_relaxed);
      return;
    }
  }
}

SigbusGuard::SigbusGuard() = default;

SigbusGuard::~SigbusGuard() {
  if (armed_ && t_top == this) t_top = prev_;
  armed_ = false;
}

void SigbusGuard::arm() {
  prev_ = t_top;
  fault_addr_ = nullptr;
  armed_ = true;
  t_top = this;
}

}  // namespace ftc::util
