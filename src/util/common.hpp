// Common utility macros and small helpers shared across the library.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ftc {

namespace detail {
[[noreturn]] inline void throw_requirement(const char* cond, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "FTC_REQUIRE failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_internal(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "FTC_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

// Precondition check on public API arguments. Throws std::invalid_argument.
#define FTC_REQUIRE(cond, msg)                                             \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ftc::detail::throw_requirement(#cond, __FILE__, __LINE__, (msg));  \
  } while (0)

// Internal invariant check. Throws std::logic_error (a bug if it fires).
#define FTC_CHECK(cond, msg)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ftc::detail::throw_internal(#cond, __FILE__, __LINE__, (msg));     \
  } while (0)

// Deterministic splittable PRNG (splitmix64). Used wherever the library
// needs reproducible pseudo-randomness (randomized baselines, generators).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    FTC_REQUIRE(bound > 0, "bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t v;
    do {
      v = next();
    } while (v >= limit);
    return v % bound;
  }

  bool next_bool() { return (next() & 1) != 0; }

  double next_double() {  // in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

// Stateless 64-bit mix hash (for seeded hashing in randomized sketches).
inline std::uint64_t mix_hash(std::uint64_t x, std::uint64_t seed) {
  x += seed + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Number of bits needed to represent v (0 -> 0).
inline unsigned bit_width_u64(std::uint64_t v) {
  unsigned w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

// ceil(log2(v)) for v >= 1.
inline unsigned ceil_log2(std::uint64_t v) {
  FTC_REQUIRE(v >= 1, "ceil_log2 of zero");
  unsigned w = bit_width_u64(v);
  return ((std::uint64_t{1} << (w - 1)) == v) ? w - 1 : w;
}

}  // namespace ftc
