// Experiment E8 (DESIGN.md): the practical-k safety margin (DESIGN.md
// Section 2.3). The provable k of Lemma 5 has galactic constants; the
// library defaults to k = ceil(k_scale (f+1) log2 n') with a fail-stop
// decoder. This bench sweeps k downward and reports, over many random
// queries: answers correct / capacity errors raised (fail-stop) / wrong
// answers (must be zero — the decoder detects shortfalls, it never lies).
#include "bench_util.hpp"
#include "core/ftc_query.hpp"
#include "core/ftc_scheme.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;

void run(unsigned n, unsigned m, unsigned f) {
  const auto g = graph::random_connected(n, m, 2024);
  const auto cases = make_query_cases(g, f, 150, 31337);

  std::printf("\n== k tradeoff: n=%u m=%u f=%u (150 queries each) ==\n", n, m,
              f);
  Table table({"k", "edge label", "correct", "fail-stop", "wrong"});
  for (const unsigned k : {4u, 6u, 8u, 12u, 24u, 48u}) {
    core::FtcConfig cfg;
    cfg.f = f;
    cfg.k_override = k;
    const auto scheme = core::FtcScheme::build(g, cfg);
    int correct = 0, failstop = 0, wrong = 0;
    for (const auto& qc : cases) {
      std::vector<core::EdgeLabel> labels;
      for (const EdgeId e : qc.faults) labels.push_back(scheme.edge_label(e));
      try {
        const bool got = core::FtcDecoder::connected(
            scheme.vertex_label(qc.s), scheme.vertex_label(qc.t), labels);
        (got == qc.expected ? correct : wrong)++;
      } catch (const core::FtcCapacityError&) {
        ++failstop;
      }
    }
    table.add_row({std::to_string(k), fmt_bits(scheme.edge_label_bits()),
                   std::to_string(correct), std::to_string(failstop),
                   std::to_string(wrong)});
  }
  table.print();
  std::printf("(practical default for this size would be k=%u)\n",
              std::max(4u, static_cast<unsigned>(
                               4.0 * (f + 1) *
                               ceil_log2(std::max<unsigned>(2 * m, 2)))));
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_k_tradeoff: practical sketch capacity vs fail-stop rate\n");
  ftc::bench::run(1024, 4096, 4);
  ftc::bench::run(1024, 4096, 8);
  return 0;
}
