// Experiment E4 (DESIGN.md): the NetFind epsilon-net (Lemmas 11/12).
// Claims verified empirically:
//  * net size <= |P| log2 |P| / (2 log2 N) (= |P|/2 at the provable
//    group length);
//  * construction time O~(N) (log-log slope ~1);
//  * the net property: every heavy axis-aligned rectangle is hit
//    (sampled rectangles at scale, exhaustive canonical rectangles in
//    tests).
// Also compares against the greedy poly(N) net (the Lemma 10 slot) and
// random sampling on small inputs.
#include <set>

#include "bench_util.hpp"
#include "geometry/greedy_net.hpp"
#include "geometry/netfind.hpp"

namespace ftc::bench {
namespace {

using geometry::Point2;

std::vector<Point2> random_points(SplitMix64& rng, std::size_t n,
                                  std::uint32_t range) {
  std::vector<Point2> pts;
  std::set<std::pair<std::uint32_t, std::uint32_t>> used;
  while (pts.size() < n) {
    const auto x = static_cast<std::uint32_t>(rng.next_below(range));
    const auto y = static_cast<std::uint32_t>(rng.next_below(range));
    if (!used.insert({x, y}).second) continue;
    pts.push_back(Point2{x, y, static_cast<graph::EdgeId>(pts.size())});
  }
  return pts;
}

void size_and_time() {
  std::printf("\n== NetFind: size and time vs N (provable group length) ==\n");
  SplitMix64 rng(3);
  Table table({"N", "group len", "net size", "Lemma 12 bound", "time",
               "heavy rects hit"});
  std::vector<double> ns, ts;
  for (const std::size_t n : {2000u, 8000u, 32000u, 128000u}) {
    auto pts = random_points(rng, n, 1u << 20);
    const unsigned gl = geometry::provable_group_len(n);
    Timer t;
    const auto net = geometry::netfind(pts, gl);
    const double sec = t.seconds();
    // Lemma 12 size bound: 2 |P| ceil(log2 |P|) / group_len.
    const double bound =
        2.0 * static_cast<double>(n) * std::ceil(std::log2(double(n))) / gl;
    // Sampled heavy rectangles must all contain a net point.
    const unsigned thr = geometry::netfind_threshold(gl);
    int heavy = 0, hit = 0;
    SplitMix64 rrng(17);
    while (heavy < 40) {
      std::uint32_t x1 = static_cast<std::uint32_t>(rrng.next_below(1u << 20));
      std::uint32_t x2 = static_cast<std::uint32_t>(rrng.next_below(1u << 20));
      std::uint32_t y1 = static_cast<std::uint32_t>(rrng.next_below(1u << 20));
      std::uint32_t y2 = static_cast<std::uint32_t>(rrng.next_below(1u << 20));
      if (x1 > x2) std::swap(x1, x2);
      if (y1 > y2) std::swap(y1, y2);
      if (geometry::points_in_rect(pts, x1, x2, y1, y2) < thr) continue;
      ++heavy;
      if (geometry::points_in_rect(net, x1, x2, y1, y2) > 0) ++hit;
    }
    table.add_row({std::to_string(n), std::to_string(gl),
                   std::to_string(net.size()), fmt(bound, "%.0f"),
                   fmt(sec * 1e3, "%.1f ms"),
                   std::to_string(hit) + "/" + std::to_string(heavy)});
    ns.push_back(static_cast<double>(n));
    ts.push_back(sec);
  }
  table.print();
  std::printf("log-log time slope: %.2f (O~(N) expected, ~1)\n",
              loglog_slope(ns, ts));
}

void compare_constructions() {
  std::printf("\n== small-instance comparison: NetFind vs greedy vs random "
              "(N=100, threshold=15) ==\n");
  SplitMix64 rng(5);
  auto pts = random_points(rng, 100, 4096);
  const unsigned thr = 15;  // = 3 * group_len for group_len 5
  Table table({"method", "net size", "all heavy rects hit"});

  const auto nf = geometry::netfind(pts, thr / 3);
  table.add_row({"NetFind (Lemma 12)", std::to_string(nf.size()),
                 geometry::net_hits_all_heavy_rects(pts, nf, thr) ? "yes"
                                                                  : "NO"});
  const auto gr = geometry::greedy_rect_net(pts, thr);
  table.add_row({"greedy (Lemma 10 slot)", std::to_string(gr.size()),
                 geometry::net_hits_all_heavy_rects(pts, gr, thr) ? "yes"
                                                                  : "NO"});
  // Random halving: hits heavy rects only with some probability.
  std::vector<Point2> rnd;
  for (const auto& p : pts) {
    if (rng.next_bool()) rnd.push_back(p);
  }
  table.add_row({"random half (Prop. 5)", std::to_string(rnd.size()),
                 geometry::net_hits_all_heavy_rects(pts, rnd, thr)
                     ? "yes"
                     : "NO (allowed: whp only)"});
  table.print();
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_netfind: Lemma 11/12 epsilon-net properties\n");
  ftc::bench::size_and_time();
  ftc::bench::compare_constructions();
  return 0;
}
