// Remote serving tier cost: what the HTTP transport + digest-verified
// shard cache add on top of local-directory serving.
//
// For each K (shard count), against an in-process loopback
// ShardHttpServer over the artifact's directory:
//   cold open   — RemoteStoreView::open() with an empty cache (manifest
//                 fetch + validation; shards stay lazy);
//   cold pf     — prefetch() on that view (fetch + digest-verify + mmap
//                 every shard through the cache);
//   warm open   — a second open over the now-populated cache (manifest
//                 re-fetch, shard hits);
//   warm pf     — prefetch() on the warm view (all cache hits, no wire);
//   cold first  — session spin-up + first query with an empty cache
//                 (load_scheme(url), engine install prefetch, decode);
//   warm first  — the same over the populated cache;
//   local/remote q/s — steady-state parallel batch throughput of
//                 sessions over the local path vs the URL (post-warmup
//                 these must converge: queries run on mmaps, the wire is
//                 out of the loop).
// Answers are spot-checked against the BFS ground truth.
//
// Usage: bench_remote_fetch [--smoke]
// Output: a human table, one `JSON [...]` line, and
// BENCH_remote_fetch.json (checked-in baseline at the repo root;
// regenerate with scripts/bench_all.sh).
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch_engine.hpp"
#include "core/shard_cache.hpp"
#include "core/shard_server.hpp"
#include "core/sharded_store.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

constexpr std::size_t kBatchSize = 64;
constexpr unsigned kBatchThreads = 4;

struct Sizes {
  VertexId n = 256;
  unsigned f = 8;
  std::size_t num_queries = 400;
  std::size_t batch_reps = 60;
  std::size_t checked = 32;
};

core::SchemeConfig bench_config(unsigned f) {
  core::SchemeConfig cfg;
  cfg.backend = core::BackendKind::kCoreFtc;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  return cfg;
}

// Scratch directory in the working dir; removed with all contents.
struct ScratchDir {
  explicit ScratchDir(const std::string& stem)
      : path(stem + "_" + std::to_string(::getpid())) {
    ::mkdir(path.c_str(), 0755);
  }
  ~ScratchDir() {
    for (const std::string& f : files) std::remove((path + "/" + f).c_str());
    ::rmdir(path.c_str());
  }
  void track(const std::string& name) { files.push_back(name); }
  std::string path;
  std::vector<std::string> files;
};

// The cache directory's contents are content-addressed and unknown up
// front; sweep whatever the run left behind.
void remove_tree(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const struct dirent* ent = ::readdir(d)) {
      const std::string name = ent->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

void run_case(const core::ConnectivityScheme& scheme, const Graph& g,
              unsigned k_shards, const Sizes& sz, Table& table,
              JsonRecords& json) {
  ScratchDir origin("bench_remote_origin_k" + std::to_string(k_shards));
  const std::string manifest = origin.path + "/store.ftcm";
  core::save_sharded(scheme, manifest, k_shards);
  origin.track("store.ftcm");
  for (unsigned k = 0; k < k_shards; ++k) {
    origin.track("store.ftcm.shard" + std::to_string(k) + ".ftcs");
  }

  core::ShardHttpServer server(origin.path);
  server.start();
  const std::string url = server.base_url() + "store.ftcm";

  const std::string cache_dir =
      "bench_remote_cache_k" + std::to_string(k_shards) + "_" +
      std::to_string(::getpid());
  auto cache = std::make_shared<core::ShardCache>(cache_dir, 0);
  const auto prior_default = core::set_default_remote_cache(cache);

  // Cold: empty cache — the open fetches the manifest, prefetch moves
  // every shard over loopback and digest-verifies it.
  Timer cold_open_timer;
  auto cold_view = core::RemoteStoreView::open(url, true, nullptr, cache);
  const double cold_open_ms = cold_open_timer.millis();
  Timer cold_pf_timer;
  (void)cold_view->prefetch();
  const double cold_pf_ms = cold_pf_timer.millis();
  const std::uint64_t bytes_fetched = cache->stats().bytes_fetched;

  // Warm: same cache — shard bytes are already on local disk.
  Timer warm_open_timer;
  auto warm_view = core::RemoteStoreView::open(url, true, nullptr, cache);
  const double warm_open_ms = warm_open_timer.millis();
  Timer warm_pf_timer;
  (void)warm_view->prefetch();
  const double warm_pf_ms = warm_pf_timer.millis();
  FTC_REQUIRE(cache->stats().bytes_fetched == bytes_fetched,
              "warm reopen re-fetched shard bytes");
  cold_view.reset();
  warm_view.reset();

  SplitMix64 rng(0x9e + k_shards);
  std::vector<EdgeId> faults;
  for (unsigned i = 0; i < sz.f / 2; ++i) {
    faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
  }
  const core::FaultSpec spec = core::FaultSpec::edges(faults);
  std::vector<core::BatchQueryEngine::Query> queries;
  queries.reserve(sz.num_queries);
  for (std::size_t i = 0; i < sz.num_queries; ++i) {
    queries.push_back(
        {static_cast<VertexId>(rng.next_below(g.num_vertices())),
         static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }

  // Cold session spin-up: empty cache again, so the engine's install
  // prefetch pays the full transfer before the first answer.
  const std::string cold_cache_dir = cache_dir + "_cold";
  auto cold_cache = std::make_shared<core::ShardCache>(cold_cache_dir, 0);
  (void)core::set_default_remote_cache(cold_cache);
  Timer cold_first_timer;
  core::BatchQueryEngine cold_engine(core::load_scheme(url), spec);
  const bool cold_first = cold_engine.connected(queries[0].s, queries[0].t);
  const double cold_first_us = cold_first_timer.micros();
  FTC_REQUIRE(cold_first == graph::connected_avoiding(g, queries[0].s,
                                                      queries[0].t, faults),
              "remote-served decoder disagrees with BFS ground truth");

  // Warm session spin-up over the populated cache.
  (void)core::set_default_remote_cache(cache);
  Timer warm_first_timer;
  core::BatchQueryEngine remote_engine(core::load_scheme(url), spec);
  const bool warm_first = remote_engine.connected(queries[0].s, queries[0].t);
  const double warm_first_us = warm_first_timer.micros();
  FTC_REQUIRE(warm_first == cold_first,
              "warm remote session disagrees with the cold one");

  core::BatchQueryEngine local_engine(core::load_scheme(manifest), spec);
  for (std::size_t i = 0; i < std::min(sz.checked, queries.size()); ++i) {
    const bool expected = graph::connected_avoiding(g, queries[i].s,
                                                    queries[i].t, faults);
    FTC_REQUIRE(local_engine.connected(queries[i].s, queries[i].t) ==
                    expected,
                "local decoder disagrees with BFS ground truth");
    FTC_REQUIRE(remote_engine.connected(queries[i].s, queries[i].t) ==
                    expected,
                "remote decoder disagrees with BFS ground truth");
  }

  const std::vector<core::BatchQueryEngine::Query> batch(
      queries.begin(), queries.begin() + std::min(kBatchSize, queries.size()));
  const auto throughput = [&](core::BatchQueryEngine& engine) {
    (void)engine.run_parallel(batch, kBatchThreads);  // warm the pool
    Timer timer;
    std::size_t batches = 0;
    for (std::size_t r = 0; r < sz.batch_reps; ++r) {
      (void)engine.run_parallel(batch, kBatchThreads);
      ++batches;
      if (timer.seconds() > 2.0 && batches >= 8) break;  // time box
    }
    return static_cast<double>(batches * batch.size()) / timer.seconds();
  };
  const double local_qps = throughput(local_engine);
  const double remote_qps = throughput(remote_engine);

  std::uint64_t store_bytes = 0;
  {
    auto view = core::open_store_view(manifest);
    store_bytes = view->info().file_bytes;
  }

  server.stop();
  (void)core::set_default_remote_cache(prior_default);
  remove_tree(cold_cache_dir);
  remove_tree(cache_dir);

  table.add_row({std::to_string(k_shards), fmt(cold_open_ms, "%.2f"),
                 fmt(cold_pf_ms, "%.2f"), fmt(warm_open_ms, "%.2f"),
                 fmt(warm_pf_ms, "%.2f"), fmt(cold_first_us, "%.0f"),
                 fmt(warm_first_us, "%.0f"), fmt(local_qps, "%.0f"),
                 fmt(remote_qps, "%.0f")});
  json.add();
  json.field("k_shards", k_shards);
  json.field("n", g.num_vertices());
  json.field("m", g.num_edges());
  json.field("f", sz.f);
  json.field("store_bytes", store_bytes);
  json.field("bytes_fetched", bytes_fetched);
  json.field("cold_open_ms", cold_open_ms);
  json.field("cold_prefetch_ms", cold_pf_ms);
  json.field("warm_open_ms", warm_open_ms);
  json.field("warm_prefetch_ms", warm_pf_ms);
  json.field("cold_first_query_us", cold_first_us);
  json.field("warm_first_query_us", warm_first_us);
  json.field("batch_size", batch.size());
  json.field("batch_threads", kBatchThreads);
  json.field("local_batch_qps", local_qps);
  json.field("remote_batch_qps", remote_qps);
  json.field("checked_queries", std::min(sz.checked, queries.size()));
}

}  // namespace
}  // namespace ftc::bench

int main(int argc, char** argv) {
  using namespace ftc;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  bench::Sizes sz;
  std::vector<unsigned> shard_counts{2, 8};
  if (smoke) {
    sz = {96, 4, 64, 8, 16};
    shard_counts = {2};
  }
  const graph::EdgeId m = 3 * sz.n;
  const graph::Graph g = graph::random_connected(sz.n, m, 47);
  std::printf("bench_remote_fetch: n=%u m=%u f=%u, %zu queries, batch=%zu x "
              "%u threads%s\n",
              sz.n, m, sz.f, sz.num_queries, bench::kBatchSize,
              bench::kBatchThreads, smoke ? " [smoke]" : "");

  bench::Table table({"shards", "cold open ms", "cold pf ms", "warm open ms",
                      "warm pf ms", "cold first us", "warm first us",
                      "local q/s", "remote q/s"});
  bench::JsonRecords json;
  const auto scheme = core::make_scheme(g, bench::bench_config(sz.f));
  for (const unsigned k : shard_counts) {
    bench::run_case(*scheme, g, k, sz, table, json);
  }
  table.print();
  json.print("JSON");
  std::ofstream out("BENCH_remote_fetch.json", std::ios::trunc);
  out << json.dump() << "\n";
  std::printf("wrote BENCH_remote_fetch.json\n");
  return 0;
}
