// Experiment E1 (DESIGN.md): label-size scaling of Theorem 1.
// Claim: O(log n) bits per vertex and O(f^2 log^3 n) bits per edge.
// We measure serialized edge-label bits versus f (fixed n) and versus n
// (fixed f) and report log-log slopes. Expected shape: slope in f between
// 1 and 2 (the k factor is Theta(f) in practical mode and Theta(f^2) in
// provable mode — both are printed), polylog growth in n.
#include "bench_util.hpp"
#include "core/ftc_scheme.hpp"
#include "geometry/netfind.hpp"

namespace ftc::bench {
namespace {

void scaling_in_f() {
  std::printf("\n== edge label bits vs f (n=1024, m=3072) ==\n");
  const auto g = graph::random_connected(1024, 3072, 99);
  Table table({"f", "practical k", "practical bits", "provable k",
               "provable bits (formula)"});
  std::vector<double> fs, practical_bits, provable_bits;
  for (const unsigned f : {1u, 2u, 4u, 8u, 16u}) {
    core::FtcConfig cfg;
    cfg.f = f;
    cfg.k_scale = 2.0;
    const auto scheme = core::FtcScheme::build(g, cfg);
    // Provable-mode sizes follow from the Lemma 5 k; compute the label
    // size formula without materializing the (huge) labels.
    core::FtcConfig prov = cfg;
    prov.k_mode = core::KMode::kProvable;
    const unsigned prov_k = geometry::provable_hierarchy_k(
        f, geometry::provable_group_len(3072));
    const std::size_t prov_bits =
        static_cast<std::size_t>(scheme.params().num_levels) * prov_k *
            scheme.params().field_bits +
        4 * scheme.params().coord_bits();
    table.add_row({std::to_string(f), std::to_string(scheme.params().k),
                   fmt_bits(scheme.edge_label_bits()),
                   std::to_string(prov_k), fmt_bits(prov_bits)});
    fs.push_back(f);
    practical_bits.push_back(static_cast<double>(scheme.edge_label_bits()));
    provable_bits.push_back(static_cast<double>(prov_bits));
  }
  table.print();
  std::printf("log-log slope in f: practical %.2f (expected ~1),"
              " provable %.2f (expected ->2 for large f)\n",
              loglog_slope(fs, practical_bits),
              loglog_slope(fs, provable_bits));
}

void scaling_in_n() {
  std::printf("\n== edge label bits vs n (m=3n, f=4) ==\n");
  Table table({"n", "levels", "k", "edge label bits", "vertex label bits"});
  std::vector<double> ns, bits;
  for (const unsigned n : {256u, 1024u, 4096u, 16384u}) {
    const auto g = graph::random_connected(n, 3 * n, 7 * n);
    core::FtcConfig cfg;
    cfg.f = 4;
    cfg.k_scale = 2.0;
    const auto scheme = core::FtcScheme::build(g, cfg);
    table.add_row({std::to_string(n),
                   std::to_string(scheme.params().num_levels),
                   std::to_string(scheme.params().k),
                   fmt_bits(scheme.edge_label_bits()),
                   std::to_string(scheme.vertex_label_bits())});
    ns.push_back(n);
    bits.push_back(static_cast<double>(scheme.edge_label_bits()));
  }
  table.print();
  std::printf("log-log slope in n: %.2f (polylog: slope -> 0 as n grows;"
              " bits/log^3(n') should be ~flat)\n",
              loglog_slope(ns, bits));
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_label_scaling: Theorem 1 label-size shape\n");
  ftc::bench::scaling_in_f();
  ftc::bench::scaling_in_n();
  return 0;
}
