// bench_label_store: the serving-from-disk story in numbers.
//
// For each backend: build labels once, save() them as a container, then
// measure the two load paths —
//   mmap        zero-copy view (LoadMode::kMmap), optionally without the
//               payload-checksum pass,
//   materialize eager full deserialize into in-memory label vectors —
// reporting cold-load latency, first-query latency (fault prep + one
// decode on cold caches) and steady-state sequential query throughput,
// with every answer parity-checked against the in-memory scheme.
//
// Output: a human table plus BENCH_label_store.json (a JsonRecords dump)
// in the working directory.
//
//   bench_label_store [backend|all] [n] [queries]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/label_store.hpp"

namespace ftc::bench {
namespace {

struct LoadVariant {
  const char* name;
  core::LoadOptions options;
};

void run_backend(core::BackendKind backend, const graph::Graph& g, unsigned f,
                 std::size_t num_queries, Table& table, JsonRecords& json) {
  core::SchemeConfig config;
  config.backend = backend;
  config.set_f(f);

  Timer build_timer;
  const auto scheme = core::make_scheme(g, config);
  const double build_ms = build_timer.millis();

  const std::string path = "bench_label_store_" +
                           std::string(core::backend_name(backend)) + ".ftcs";
  Timer save_timer;
  scheme->save(path);
  const double save_ms = save_timer.millis();
  std::size_t file_bytes = 0;
  {
    const auto view = core::LabelStoreView::open(path);
    file_bytes = view->info().file_bytes;
  }

  // One fixed fault set and query stream per backend, shared by every
  // variant so the comparison is apples-to-apples.
  SplitMix64 rng(99);
  std::vector<graph::EdgeId> faults;
  for (unsigned i = 0; i < f; ++i) {
    faults.push_back(static_cast<graph::EdgeId>(rng.next_below(g.num_edges())));
  }
  std::vector<core::BatchQueryEngine::Query> queries;
  queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    queries.push_back(
        {static_cast<graph::VertexId>(rng.next_below(g.num_vertices())),
         static_cast<graph::VertexId>(rng.next_below(g.num_vertices()))});
  }
  core::BatchQueryEngine reference(*scheme, core::FaultSpec::edges(faults));
  const auto expected = reference.run_sequential(queries);

  const LoadVariant variants[] = {
      {"mmap", {core::LoadMode::kMmap, true}},
      {"mmap-noverify", {core::LoadMode::kMmap, false}},
      {"materialize", {core::LoadMode::kMaterialize, true}},
  };
  for (const LoadVariant& variant : variants) {
    Timer load_timer;
    auto loaded = core::load_scheme(path, variant.options);
    const double load_ms = load_timer.millis();

    Timer first_timer;
    core::BatchQueryEngine session(std::move(loaded),
                                   core::FaultSpec::edges(faults));
    const bool first = session.connected(queries[0].s, queries[0].t);
    const double first_ms = first_timer.millis();
    if (first != expected[0]) {
      std::fprintf(stderr, "PARITY FAILURE (%s/%s, first query)\n",
                   core::backend_name(backend), variant.name);
      std::exit(1);
    }

    Timer query_timer;
    const auto results = session.run_sequential(queries);
    const double steady_s = query_timer.seconds();
    if (results != expected) {
      std::fprintf(stderr, "PARITY FAILURE (%s/%s, batch)\n",
                   core::backend_name(backend), variant.name);
      std::exit(1);
    }
    const double qps = static_cast<double>(queries.size()) / steady_s;

    table.add_row({core::backend_name(backend), variant.name,
                   fmt(static_cast<double>(file_bytes) / 1048576.0, "%.2f"),
                   fmt(load_ms, "%.3f"), fmt(first_ms, "%.3f"),
                   fmt(qps / 1e3, "%.0f")});
    json.add();
    json.field("backend", core::backend_name(backend));
    json.field("variant", variant.name);
    json.field("n", g.num_vertices());
    json.field("m", g.num_edges());
    json.field("f", f);
    json.field("file_bytes", file_bytes);
    json.field("build_ms", build_ms);
    json.field("save_ms", save_ms);
    json.field("cold_load_ms", load_ms);
    json.field("first_query_ms", first_ms);
    json.field("steady_qps", qps);
    json.field("queries", queries.size());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftc::bench

int main(int argc, char** argv) {
  using namespace ftc;

  const std::string backend_arg = argc > 1 ? argv[1] : "all";
  const graph::VertexId n =
      argc > 2 ? static_cast<graph::VertexId>(std::stoul(argv[2])) : 2048;
  const std::size_t num_queries =
      argc > 3 ? static_cast<std::size_t>(std::stoull(argv[3])) : 10000;

  const graph::EdgeId m = 3 * n;
  const unsigned f = 4;
  const graph::Graph g = graph::random_connected(n, m, 17);
  std::printf("bench_label_store: n=%u m=%u f=%u, %zu queries per variant\n",
              n, m, f, num_queries);

  bench::Table table({"backend", "load path", "file MiB", "cold load ms",
                      "first query ms", "kqueries/s"});
  bench::JsonRecords json;
  if (backend_arg == "all") {
    for (const core::BackendKind b : core::kAllBackends) {
      bench::run_backend(b, g, f, num_queries, table, json);
    }
  } else {
    bench::run_backend(core::parse_backend(backend_arg), g, f, num_queries,
                       table, json);
  }
  table.print();
  json.print("JSON");
  std::ofstream out("BENCH_label_store.json", std::ios::trunc);
  out << json.dump() << "\n";
  std::printf("wrote BENCH_label_store.json\n");
  return 0;
}
