// Shared helpers for the benchmark harness: wall-clock timing, aligned
// table printing (the benches emit paper-style tables), and fault/query
// workload generation with ground-truth checking.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Minimal aligned-column table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < header_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::printf("|");
    for (std::size_t c = 0; c < header_.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, const char* spec = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

inline std::string fmt_bits(std::size_t bits) {
  if (bits < 8192) return std::to_string(bits) + " b";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(bits) / 8192);
  return buf;
}

// Machine-readable bench output: a flat array of records, each a JSON
// object of scalar fields. Benches print tables for humans and call
// print("tag") to emit one `tag [{...},...]` line for scripts.
class JsonRecords {
 public:
  void add() { records_.emplace_back(); }

  void field(const std::string& key, const std::string& value) {
    record().push_back(quote(key) + ":" + quote(value));
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  void field(const std::string& key, double value) {
    record().push_back(quote(key) + ":" + fmt(value, "%.6g"));
  }
  void field(const std::string& key, bool value) {
    record().push_back(quote(key) + (value ? ":true" : ":false"));
  }
  template <typename Int>
    requires std::is_integral_v<Int>
  void field(const std::string& key, Int value) {
    record().push_back(quote(key) + ":" + std::to_string(value));
  }

  std::string dump() const {
    std::string out = "[";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      if (r != 0) out += ",";
      out += "{";
      for (std::size_t i = 0; i < records_[r].size(); ++i) {
        if (i != 0) out += ",";
        out += records_[r][i];
      }
      out += "}";
    }
    return out + "]";
  }

  void print(const char* tag) const {
    std::printf("%s %s\n", tag, dump().c_str());
  }

 private:
  std::vector<std::string>& record() {
    FTC_REQUIRE(!records_.empty(), "JsonRecords::field before add()");
    return records_.back();
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    return out + "\"";
  }

  std::vector<std::vector<std::string>> records_;
};

// A fault set plus a query endpoint pair with its ground-truth answer.
struct QueryCase {
  std::vector<graph::EdgeId> faults;
  graph::VertexId s = 0;
  graph::VertexId t = 0;
  bool expected = false;
};

inline std::vector<QueryCase> make_query_cases(const graph::Graph& g,
                                               unsigned num_faults,
                                               int count, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<QueryCase> cases;
  cases.reserve(count);
  for (int i = 0; i < count; ++i) {
    QueryCase qc;
    for (unsigned j = 0; j < num_faults; ++j) {
      qc.faults.push_back(
          static_cast<graph::EdgeId>(rng.next_below(g.num_edges())));
    }
    qc.s = static_cast<graph::VertexId>(rng.next_below(g.num_vertices()));
    qc.t = static_cast<graph::VertexId>(rng.next_below(g.num_vertices()));
    qc.expected = graph::connected_avoiding(g, qc.s, qc.t, qc.faults);
    cases.push_back(std::move(qc));
  }
  return cases;
}

// Log-log least-squares slope: how measured scales with the driver.
inline double loglog_slope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  FTC_REQUIRE(x.size() == y.size() && x.size() >= 2, "need >= 2 samples");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double lx = std::log2(x[i]);
    const double ly = std::log2(std::max(y[i], 1e-12));
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace ftc::bench
