// Experiment E5 (DESIGN.md): (S_{f,T}, k)-good hierarchies (Definition 1,
// Lemma 5, Proposition 5). Measures depth, per-level shrink factor and —
// the operative quantity — the empirical "needed k": over sampled
// S in S_{f,T}, the boundary size at the top nonempty hierarchy level,
// which is exactly what the sketch threshold k must cover. Expected
// shape: depth = O(log m), needed-k far below the provable bounds, and
// the deterministic NetFind hierarchy no worse than random halving.
#include <algorithm>

#include "bench_util.hpp"
#include "geometry/hierarchy.hpp"
#include "geometry/netfind.hpp"
#include "geometry/point_map.hpp"
#include "graph/euler_tour.hpp"
#include "graph/spanning_tree.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::VertexId;

struct Needed {
  std::size_t max_needed = 0;
  double avg_needed = 0;
};

// Samples random S in S_{f,T} (unions of fragments of T minus f random
// tree edges) and reports the boundary size at the top nonempty level.
Needed sample_needed_k(const graph::Graph& g, const graph::SpanningTree& t,
                       const geometry::EdgeHierarchy& h, unsigned f,
                       int samples, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<EdgeId> tree_edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (t.is_tree_edge[e]) tree_edges.push_back(e);
  }
  Needed out;
  std::size_t total = 0;
  int counted = 0;
  for (int it = 0; it < samples; ++it) {
    // Random fragment union.
    graph::Graph tree_only(g.num_vertices());
    std::vector<EdgeId> fault_ids;
    std::vector<EdgeId> remap(g.num_edges(), graph::kNoEdge);
    for (const EdgeId e : tree_edges) {
      remap[e] = tree_only.add_edge(g.edge(e).u, g.edge(e).v);
    }
    for (unsigned i = 0; i < f; ++i) {
      fault_ids.push_back(
          remap[tree_edges[rng.next_below(tree_edges.size())]]);
    }
    const auto comp = graph::components_avoiding(tree_only, fault_ids);
    const int num_frag =
        1 + *std::max_element(comp.begin(), comp.end());
    std::vector<char> frag_in(num_frag);
    for (auto& b : frag_in) b = rng.next_bool();
    std::vector<char> in_set(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      in_set[v] = frag_in[comp[v]];
    }
    // Top nonempty level boundary.
    std::size_t needed = 0;
    for (std::size_t lev = h.levels.size(); lev-- > 0;) {
      const auto bd = graph::boundary_edges(g, in_set, h.levels[lev]);
      if (!bd.empty()) {
        needed = bd.size();
        break;
      }
    }
    if (needed > 0) {
      out.max_needed = std::max(out.max_needed, needed);
      total += needed;
      ++counted;
    }
  }
  out.avg_needed = counted ? static_cast<double>(total) / counted : 0;
  return out;
}

void run(unsigned n, unsigned m, unsigned f) {
  const auto g = graph::random_connected(n, m, 1234);
  const auto t = graph::bfs_spanning_tree(g, 0);
  const auto et = graph::euler_tour(t);
  const auto pts = geometry::map_nontree_edges(g, t, et);

  std::printf("\n== hierarchy quality: n=%u m=%u f=%u (%zu non-tree edges) ==\n",
              n, m, f, pts.size());
  Table table({"hierarchy", "depth", "total edges", "needed k (max)",
               "needed k (avg)", "provable k"});
  for (const auto kind : {geometry::HierarchyKind::kDeterministicNetFind,
                          geometry::HierarchyKind::kRandomSampling}) {
    geometry::HierarchyConfig cfg;
    cfg.kind = kind;
    const auto h = geometry::build_hierarchy(pts, cfg);
    const auto needed = sample_needed_k(g, t, h, f, 300, 5);
    const bool det =
        kind == geometry::HierarchyKind::kDeterministicNetFind;
    const unsigned provable =
        det ? geometry::provable_hierarchy_k(
                  f, geometry::provable_group_len(pts.size()))
            : geometry::randomized_hierarchy_k(f, n);
    table.add_row({det ? "NetFind (det)" : "random halving",
                   std::to_string(h.depth()),
                   std::to_string(h.total_edges()),
                   std::to_string(needed.max_needed),
                   fmt(needed.avg_needed, "%.1f"),
                   std::to_string(provable)});
  }
  table.print();
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_hierarchy: Definition 1 goodness, Lemma 5 vs Prop 5\n");
  ftc::bench::run(512, 2048, 2);
  ftc::bench::run(2048, 8192, 4);
  ftc::bench::run(8192, 24576, 8);
  return 0;
}
