// Content-addressed delta-push cost, per backend and per number of
// changed shards.
//
// For each backend and c in {0, 1, K/2, K} changed shards of a K-shard
// store:
//   full ms   — a full save_sharded of the generation (the rebuild
//               baseline a delta push replaces);
//   delta ms  — save_sharded_delta against the parent manifest;
//   wrote/reu — shards rewritten vs hard-link-reused by the push;
//   MBw/MBr   — payload bytes written vs reused (the tentpole claim:
//               bytes written scale with the CHANGED shards, not the
//               store);
//   swap ms   — BatchQueryEngine::swap_store(child path) on a warm
//               session over the parent (loads, adopts, prefetches,
//               re-prepares faults, installs the epoch);
//   adopt/map — shards adopted from the serving generation vs freshly
//               mapped by that swap (adopted + mapped == K).
// The c=1 row is load-bearing: the bench REQUIRES exactly one shard
// written and K-1 adopted, and that answers do not move across the
// swap.
//
// Usage: bench_delta_push [backend|all] [--smoke]
// Output: a human table, one `JSON [...]` line, and
// BENCH_delta_push.json (checked-in baseline at the repo root;
// regenerate with scripts/bench_all.sh).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch_engine.hpp"
#include "core/sharded_store.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

constexpr std::size_t kBatchSize = 64;
constexpr unsigned kBatchThreads = 4;

struct Sizes {
  VertexId n = 256;
  unsigned f = 8;
  unsigned k_shards = 8;
  std::size_t num_queries = 200;
};

core::SchemeConfig bench_config(core::BackendKind backend, unsigned f) {
  core::SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

// Serializes exactly like `inner` except the given edges, whose label
// bytes are inverted — the cheapest way to dirty exactly the shards
// that own them. Never used to serve queries.
class FlipEdgesScheme : public core::ConnectivityScheme {
 public:
  FlipEdgesScheme(const core::ConnectivityScheme& inner,
                  std::vector<EdgeId> flips)
      : inner_(inner), flips_(std::move(flips)) {
    std::sort(flips_.begin(), flips_.end());
  }
  core::BackendKind backend() const override { return inner_.backend(); }
  VertexId num_vertices() const override { return inner_.num_vertices(); }
  EdgeId num_edges() const override { return inner_.num_edges(); }
  std::size_t vertex_label_bits() const override {
    return inner_.vertex_label_bits();
  }
  std::size_t edge_label_bits() const override {
    return inner_.edge_label_bits();
  }
  const core::AdjacencyProvider* adjacency() const override {
    return inner_.adjacency();
  }
  void serialize_params(core::store::ByteWriter& out) const override {
    inner_.serialize_params(out);
  }
  void serialize_vertex_label(VertexId v,
                              core::store::ByteWriter& out) const override {
    inner_.serialize_vertex_label(v, out);
  }
  void serialize_edge_label(EdgeId e,
                            core::store::ByteWriter& out) const override {
    if (!std::binary_search(flips_.begin(), flips_.end(), e)) {
      inner_.serialize_edge_label(e, out);
      return;
    }
    core::store::ByteWriter tmp;
    inner_.serialize_edge_label(e, tmp);
    std::vector<std::uint8_t> flipped(tmp.view().begin(), tmp.view().end());
    for (std::uint8_t& b : flipped) b ^= 0xff;
    out.bytes(flipped);
  }
  std::unique_ptr<Workspace> make_workspace() const override {
    throw std::logic_error("FlipEdgesScheme does not serve queries");
  }

 protected:
  std::unique_ptr<FaultSet> prepare_edge_faults(
      std::span<const EdgeId>) const override {
    throw std::logic_error("FlipEdgesScheme does not serve queries");
  }
  bool query_edges(VertexId, VertexId, const FaultSet&, Workspace&,
                   const core::QueryOptions&) const override {
    throw std::logic_error("FlipEdgesScheme does not serve queries");
  }

 private:
  const core::ConnectivityScheme& inner_;
  std::vector<EdgeId> flips_;
};

void remove_artifact(const std::string& path, unsigned k_shards) {
  for (unsigned k = 0; k < k_shards; ++k) {
    std::remove((path + ".shard" + std::to_string(k) + ".ftcs").c_str());
  }
  std::remove(path.c_str());
}

void run_case(const core::ConnectivityScheme& scheme, const Graph& g,
              unsigned changed, const Sizes& sz, Table& table,
              JsonRecords& json) {
  const unsigned K = sz.k_shards;
  const std::string stem = "bench_delta_push_" + std::to_string(::getpid()) +
                           "_c" + std::to_string(changed);
  const std::string parent_path = stem + "_parent.ftcm";
  const std::string child_path = stem + "_child.ftcm";

  Timer full_timer;
  core::save_sharded(scheme, parent_path, K);
  const double full_save_ms = full_timer.millis();

  // One dirtied edge per changed shard: the first edge of shard j's
  // range, so the write set is exactly `changed` shards.
  const EdgeId m = g.num_edges();
  std::vector<EdgeId> flips;
  for (unsigned j = 0; j < changed; ++j) {
    flips.push_back(static_cast<EdgeId>(
        static_cast<std::uint64_t>(m) * j / K));
  }
  const FlipEdgesScheme patched(scheme, flips);
  const core::ConnectivityScheme& pushee =
      changed == 0 ? scheme : static_cast<const core::ConnectivityScheme&>(patched);

  Timer delta_timer;
  const core::DeltaPushStats stats =
      core::save_sharded_delta(pushee, child_path, parent_path);
  const double delta_push_ms = delta_timer.millis();
  FTC_REQUIRE(stats.shards_written == changed,
              "delta push rewrote a shard whose bytes did not change");

  // Serving-side cut-over: a warm session on the parent swaps to the
  // child by path. Fault set and queries avoid the flipped edge labels,
  // so answers must not move across the swap.
  SplitMix64 rng(0x7e + static_cast<unsigned>(scheme.backend()));
  std::vector<EdgeId> faults;
  while (faults.size() < sz.f / 2) {
    const auto e = static_cast<EdgeId>(rng.next_below(m));
    if (!std::binary_search(flips.begin(), flips.end(), e) &&
        std::find(faults.begin(), faults.end(), e) == faults.end()) {
      faults.push_back(e);
    }
  }
  std::vector<core::BatchQueryEngine::Query> batch;
  for (std::size_t i = 0; i < std::min(kBatchSize, sz.num_queries); ++i) {
    batch.push_back({static_cast<VertexId>(rng.next_below(g.num_vertices())),
                     static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }
  core::BatchQueryEngine session(core::load_scheme(parent_path),
                                 core::FaultSpec::edges(faults));
  const auto before = session.run_parallel(batch, kBatchThreads);

  Timer swap_timer;
  session.swap_store(child_path);
  const double swap_ms = swap_timer.millis();
  const auto view = std::dynamic_pointer_cast<const core::ShardedStoreView>(
      session.scheme().store_view());
  FTC_REQUIRE(view != nullptr, "swap did not install the sharded child");
  const std::size_t adopted = view->shards_adopted();
  const std::size_t remapped = K - adopted;
  FTC_REQUIRE(remapped == changed,
              "swap remapped shards the delta push did not change");
  const auto after = session.run_parallel(batch, kBatchThreads);
  FTC_REQUIRE(before == after, "answers moved across a delta swap");

  remove_artifact(child_path, K);
  remove_artifact(parent_path, K);

  table.add_row({core::backend_name(scheme.backend()),
                 std::to_string(changed) + "/" + std::to_string(K),
                 fmt(full_save_ms, "%.1f"), fmt(delta_push_ms, "%.1f"),
                 std::to_string(stats.shards_written),
                 std::to_string(stats.shards_reused),
                 fmt(static_cast<double>(stats.bytes_written) / 1e6, "%.2f"),
                 fmt(static_cast<double>(stats.bytes_reused) / 1e6, "%.2f"),
                 fmt(swap_ms, "%.2f"), std::to_string(adopted),
                 std::to_string(remapped)});
  json.add();
  json.field("backend", core::backend_name(scheme.backend()));
  json.field("k_shards", K);
  json.field("shards_changed", changed);
  json.field("n", g.num_vertices());
  json.field("m", g.num_edges());
  json.field("f", sz.f);
  json.field("epoch", stats.epoch);
  json.field("full_save_ms", full_save_ms);
  json.field("delta_push_ms", delta_push_ms);
  json.field("shards_written", stats.shards_written);
  json.field("shards_reused", stats.shards_reused);
  json.field("bytes_written", stats.bytes_written);
  json.field("bytes_reused", stats.bytes_reused);
  json.field("manifest_bytes", stats.manifest_bytes);
  json.field("swap_ms", swap_ms);
  json.field("shards_adopted", adopted);
  json.field("shards_remapped", remapped);
  json.field("batch_size", batch.size());
  json.field("batch_threads", kBatchThreads);
}

}  // namespace
}  // namespace ftc::bench

int main(int argc, char** argv) {
  using namespace ftc;

  bool smoke = false;
  std::string backend_arg = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      backend_arg = arg;
    }
  }

  bench::Sizes sz;
  if (smoke) {
    sz = {96, 4, 4, 64};
  }
  const std::vector<unsigned> changed_counts{0, 1, sz.k_shards / 2,
                                             sz.k_shards};
  const graph::EdgeId m = 3 * sz.n;
  const graph::Graph g = graph::random_connected(sz.n, m, 47);
  std::printf("bench_delta_push: n=%u m=%u f=%u, K=%u shards%s\n", sz.n, m,
              sz.f, sz.k_shards, smoke ? " [smoke]" : "");

  bench::Table table({"backend", "changed", "full ms", "delta ms", "wrote",
                      "reused", "MB written", "MB reused", "swap ms",
                      "adopted", "mapped"});
  bench::JsonRecords json;
  const auto run_backend = [&](core::BackendKind b) {
    const auto scheme = core::make_scheme(g, bench::bench_config(b, sz.f));
    for (const unsigned c : changed_counts) {
      bench::run_case(*scheme, g, c, sz, table, json);
    }
  };
  if (backend_arg == "all") {
    for (const core::BackendKind b : core::kAllBackends) run_backend(b);
  } else {
    run_backend(core::parse_backend(backend_arg));
  }
  table.print();
  json.print("JSON");
  std::ofstream out("BENCH_delta_push.json", std::ios::trunc);
  out << json.dump() << "\n";
  std::printf("wrote BENCH_delta_push.json\n");
  return 0;
}
