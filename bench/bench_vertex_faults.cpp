// Vertex-fault serving cost: what the Delta * f incident-edge reduction
// (Section 1.4, FaultSpec vertex faults) actually costs on the serving
// path, per backend.
//
// For each (backend, |F_v|): delete |F_v| random vertices, open a
// BatchQueryEngine session on the FaultSpec and measure
//   reduced  — the deduplicated fault-edge count after the reduction
//              (the Delta * f label blow-up the paper's open-problems
//              section wants to beat);
//   prep     — session open time (reduction + label materialization);
//   single   — session single-query latency (reused workspace);
//   batch    — small-batch parallel throughput.
// Answers are spot-checked against the vertex-avoiding BFS ground truth.
// The scheme is built with capacity f = reduced + margin so the sketch
// threshold covers the inflated fault set — the build-time price of
// serving vertex faults through an edge-fault labeling.
//
// Usage: bench_vertex_faults [backend|all] [--smoke]
// Output: a human table, one `JSON [...]` line, and
// BENCH_vertex_faults.json (checked-in baseline at the repo root;
// regenerate with scripts/bench_all.sh).
#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch_engine.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

constexpr std::size_t kBatchSize = 8;
constexpr unsigned kBatchThreads = 4;

struct Sizes {
  VertexId n = 256;
  std::size_t num_queries = 500;
  std::size_t batch_reps = 100;
  std::size_t checked = 32;
};

core::SchemeConfig bench_config(core::BackendKind backend, unsigned f) {
  core::SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

// dp21-agm labels grow ~quadratically in the capacity f; vertex faults
// inflate f by Delta, so cap the AGM column early. Logged: no silent caps.
bool feasible(core::BackendKind backend, unsigned f_build) {
  return backend != core::BackendKind::kDp21Agm || f_build <= 64;
}

void run_case(core::BackendKind backend, const Graph& g, unsigned fv,
              const Sizes& sz, Table& table, JsonRecords& json) {
  SplitMix64 rng(0xfau * (fv + 1) + static_cast<unsigned>(backend));
  std::vector<VertexId> vertex_faults;
  while (vertex_faults.size() < fv) {
    const auto v = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    if (std::find(vertex_faults.begin(), vertex_faults.end(), v) ==
        vertex_faults.end()) {
      vertex_faults.push_back(v);
    }
  }
  // The reduction's size, to pick a sound build capacity.
  std::vector<EdgeId> reduced;
  for (const VertexId v : vertex_faults) {
    const auto inc = g.incident_edges(v);
    reduced.insert(reduced.end(), inc.begin(), inc.end());
  }
  std::sort(reduced.begin(), reduced.end());
  reduced.erase(std::unique(reduced.begin(), reduced.end()), reduced.end());
  const unsigned f_build =
      std::max(4u, static_cast<unsigned>(reduced.size()) + 4);
  if (!feasible(backend, f_build)) {
    std::printf("skipping %s |Fv|=%u (f=%u): label memory would exceed the "
                "bench budget\n",
                core::backend_name(backend), fv, f_build);
    return;
  }

  Timer build_timer;
  const auto scheme = core::make_scheme(g, bench_config(backend, f_build));
  const double build_ms = build_timer.millis();

  const core::FaultSpec spec = core::FaultSpec::vertices(vertex_faults);
  Timer prep_timer;
  core::BatchQueryEngine engine(*scheme, spec);
  const double prep_ms = prep_timer.millis();

  std::vector<core::BatchQueryEngine::Query> queries;
  queries.reserve(sz.num_queries);
  for (std::size_t i = 0; i < sz.num_queries; ++i) {
    queries.push_back(
        {static_cast<VertexId>(rng.next_below(g.num_vertices())),
         static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }

  // Ground truth on a prefix, plus workspace warm-up.
  const std::size_t checked = std::min(sz.checked, queries.size());
  for (std::size_t i = 0; i < checked; ++i) {
    const bool got = engine.connected(queries[i].s, queries[i].t);
    const bool expected = graph::connected_avoiding(
        g, queries[i].s, queries[i].t, {}, vertex_faults);
    FTC_REQUIRE(got == expected,
                "vertex-fault decoder disagrees with BFS ground truth");
  }

  Timer single_timer;
  std::size_t answered = 0;
  for (const auto& q : queries) {
    (void)engine.connected(q.s, q.t);
    ++answered;
    if (single_timer.seconds() > 2.0 && answered >= 16) break;  // time box
  }
  const double single_us = single_timer.micros() / answered;

  const std::vector<core::BatchQueryEngine::Query> batch(
      queries.begin(),
      queries.begin() + std::min(kBatchSize, queries.size()));
  (void)engine.run_parallel(batch, kBatchThreads);  // warm the pool
  Timer batch_timer;
  std::size_t batches = 0;
  for (std::size_t r = 0; r < sz.batch_reps; ++r) {
    (void)engine.run_parallel(batch, kBatchThreads);
    ++batches;
    if (batch_timer.seconds() > 2.0 && batches >= 8) break;  // time box
  }
  const double batch_qps = static_cast<double>(batches * batch.size()) /
                           batch_timer.seconds();

  table.add_row({core::backend_name(backend), std::to_string(fv),
                 std::to_string(engine.num_faults()),
                 std::to_string(f_build), fmt(prep_ms, "%.2f"),
                 fmt(single_us, "%.2f"), fmt(batch_qps, "%.0f"),
                 fmt(build_ms, "%.0f")});
  json.add();
  json.field("backend", core::backend_name(backend));
  json.field("vertex_faults", fv);
  json.field("reduced_edge_faults", engine.num_faults());
  json.field("f", f_build);
  json.field("n", g.num_vertices());
  json.field("m", g.num_edges());
  json.field("prepare_ms", prep_ms);
  json.field("single_query_us", single_us);
  json.field("batch_size", batch.size());
  json.field("batch_threads", kBatchThreads);
  json.field("batch_qps", batch_qps);
  json.field("build_ms", build_ms);
  json.field("checked_queries", checked);
}

}  // namespace
}  // namespace ftc::bench

int main(int argc, char** argv) {
  using namespace ftc;

  bool smoke = false;
  std::string backend_arg = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      backend_arg = arg;
    }
  }

  bench::Sizes sz;
  std::vector<unsigned> fv_sizes{1, 4, 16};
  if (smoke) {
    sz = {96, 48, 8, 16};
    fv_sizes = {1, 2};
  }
  const graph::EdgeId m = 3 * sz.n;
  const graph::Graph g = graph::random_connected(sz.n, m, 23);
  std::printf("bench_vertex_faults: n=%u m=%u, %zu queries, batch=%zu x %u "
              "threads%s\n",
              sz.n, m, sz.num_queries, bench::kBatchSize,
              bench::kBatchThreads, smoke ? " [smoke]" : "");

  bench::Table table({"backend", "|Fv|", "reduced", "f", "prep ms",
                      "single us", "batch q/s", "build ms"});
  bench::JsonRecords json;
  const auto run_backend = [&](core::BackendKind b) {
    for (const unsigned fv : fv_sizes) {
      bench::run_case(b, g, fv, sz, table, json);
    }
  };
  if (backend_arg == "all") {
    for (const core::BackendKind b : core::kAllBackends) run_backend(b);
  } else {
    run_backend(core::parse_backend(backend_arg));
  }
  table.print();
  json.print("JSON");
  std::ofstream out("BENCH_vertex_faults.json", std::ios::trunc);
  out << json.dump() << "\n";
  std::printf("wrote BENCH_vertex_faults.json\n");
  return 0;
}
