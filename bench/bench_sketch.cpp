// Experiment E6 (DESIGN.md): the deterministic k-threshold sketch
// (Proposition 2). google-benchmark micro-measurements:
//  * field multiplication throughput (GF(2^64) vs GF(2^128));
//  * sketch toggle cost ~ k;
//  * decode cost versus actual support size d (adaptive decoding makes it
//    ~d^2 rather than k^2 — the Section 6 / Appendix B point);
//  * Berlekamp-Massey vs root-finding split.
#include <benchmark/benchmark.h>

#include <set>

#include "gf/berlekamp_massey.hpp"
#include "gf/trace_roots.hpp"
#include "sketch/rs_sketch.hpp"
#include "util/common.hpp"

namespace {

using ftc::SplitMix64;
using ftc::gf::GF2_128;
using ftc::gf::GF2_64;

template <typename F>
std::vector<F> random_distinct(SplitMix64& rng, unsigned count) {
  std::set<F> s;
  while (s.size() < count) {
    F v;
    if constexpr (F::kWords == 2) {
      v = F(rng.next(), rng.next());
    } else {
      v = F(rng.next());
    }
    if (!v.is_zero()) s.insert(v);
  }
  return {s.begin(), s.end()};
}

template <typename F>
void BM_FieldMul(benchmark::State& state) {
  SplitMix64 rng(1);
  F a, b;
  if constexpr (F::kWords == 2) {
    a = F(rng.next(), rng.next());
    b = F(rng.next(), rng.next());
  } else {
    a = F(rng.next());
    b = F(rng.next());
  }
  for (auto _ : state) {
    a = a * b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK_TEMPLATE(BM_FieldMul, GF2_64);
BENCHMARK_TEMPLATE(BM_FieldMul, GF2_128);

void BM_SketchToggle(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  ftc::sketch::RsSketch<GF2_64> sk(k);
  SplitMix64 rng(2);
  const GF2_64 x(rng.next());
  for (auto _ : state) {
    sk.toggle(x);
    benchmark::DoNotOptimize(sk);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_SketchToggle)->RangeMultiplier(2)->Range(8, 256)->Complexity();

// Decode cost as a function of the true support size d with adaptive
// (prefix-doubling) decoding; capacity k fixed at 256.
void BM_SketchDecodeAdaptive(benchmark::State& state) {
  const unsigned d = static_cast<unsigned>(state.range(0));
  const unsigned k = 256;
  SplitMix64 rng(3);
  const auto xs = random_distinct<GF2_64>(rng, d);
  ftc::sketch::RsSketch<GF2_64> sk(k);
  for (const auto& x : xs) sk.toggle(x);
  for (auto _ : state) {
    auto r = sk.decode_adaptive();
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_SketchDecodeAdaptive)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Complexity();

// Non-adaptive decode at full capacity: the k^2 baseline being avoided.
void BM_SketchDecodeFullK(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  SplitMix64 rng(4);
  const auto xs = random_distinct<GF2_64>(rng, std::max(1u, k / 4));
  ftc::sketch::RsSketch<GF2_64> sk(k);
  for (const auto& x : xs) sk.toggle(x);
  for (auto _ : state) {
    auto r = sk.decode(k);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_SketchDecodeFullK)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_BerlekampMassey(benchmark::State& state) {
  const unsigned t = static_cast<unsigned>(state.range(0));
  SplitMix64 rng(5);
  const auto xs = random_distinct<GF2_64>(rng, t);
  std::vector<GF2_64> syn(2 * t, GF2_64::zero());
  for (const auto& x : xs) {
    GF2_64 p = GF2_64::one();
    for (unsigned i = 0; i < 2 * t; ++i) {
      p *= x;
      syn[i] += p;
    }
  }
  for (auto _ : state) {
    auto sigma = ftc::gf::berlekamp_massey(std::span<const GF2_64>(syn));
    benchmark::DoNotOptimize(sigma);
  }
  state.SetComplexityN(t);
}
BENCHMARK(BM_BerlekampMassey)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_TraceRootFinding(benchmark::State& state) {
  const unsigned d = static_cast<unsigned>(state.range(0));
  SplitMix64 rng(6);
  const auto xs = random_distinct<GF2_64>(rng, d);
  const auto poly = ftc::gf::poly_from_roots<GF2_64>(xs);
  for (auto _ : state) {
    auto roots = ftc::gf::find_roots(poly);
    benchmark::DoNotOptimize(roots);
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_TraceRootFinding)->RangeMultiplier(2)->Range(2, 32)->Complexity();

}  // namespace

BENCHMARK_MAIN();
