// Experiment T1 (DESIGN.md): empirical reproduction of the paper's
// Table 1 — all implementable scheme variants side by side, with measured
// (not asymptotic) label sizes, construction time, query time and
// correctness.
//
// Paper rows -> implementations:
//   1st (whp)  [DP21]  -> CycleSpaceFtc (full_support = false)
//   2nd (whp)  [DP21]  -> AgmFtc        (full_support = false)
//   1st (full) [DP21]  -> CycleSpaceFtc (full_support = true)
//   2nd (full) [DP21]  -> AgmFtc        (full_support = true)
//   This paper Det     -> FtcScheme     (SchemeKind::kDeterministic)
//   This paper Rand    -> FtcScheme     (SchemeKind::kRandomized)
// (The O(f^2 log^2 n loglog n) poly(n)-time deterministic row shares the
// pipeline with Det via the greedy-net hierarchy; see bench_hierarchy.)
//
// Expected shape: deterministic labels are the largest, DP21-1st labels
// the smallest; deterministic queries cost more than randomized;
// correctness is 1.000 for deterministic and full-support rows.
#include "bench_util.hpp"
#include "core/ftc_query.hpp"
#include "core/ftc_scheme.hpp"
#include "dp21/agm_ftc.hpp"
#include "dp21/cycle_space_ftc.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::Graph;

struct RowResult {
  std::string name;
  std::size_t vertex_bits = 0;
  std::size_t edge_bits = 0;
  double build_ms = 0;
  double query_us = 0;
  double correct = 0;
};

template <typename BuildFn, typename QueryFn, typename BitsFn>
RowResult run_scheme(const std::string& name,
                     const std::vector<QueryCase>& cases, BuildFn build,
                     QueryFn query, BitsFn bits) {
  RowResult r;
  r.name = name;
  Timer tb;
  const auto scheme = build();
  r.build_ms = tb.millis();
  std::tie(r.vertex_bits, r.edge_bits) = bits(scheme);
  int correct = 0;
  Timer tq;
  for (const auto& qc : cases) {
    if (query(scheme, qc) == qc.expected) ++correct;
  }
  r.query_us = tq.micros() / static_cast<double>(cases.size());
  r.correct = static_cast<double>(correct) / static_cast<double>(cases.size());
  return r;
}

void run_config(graph::VertexId n, EdgeId m, unsigned f) {
  const Graph g = graph::random_connected(n, m, /*seed=*/n * 31 + f);
  const auto cases = make_query_cases(g, f, 60, /*seed=*/12345);

  const auto cs_query = [](const dp21::CycleSpaceFtc& s, const QueryCase& qc) {
    std::vector<dp21::CsEdgeLabel> labels;
    for (const EdgeId e : qc.faults) labels.push_back(s.edge_label(e));
    return dp21::CycleSpaceFtc::connected(s.vertex_label(qc.s),
                                          s.vertex_label(qc.t), labels);
  };
  const auto cs_bits = [](const dp21::CycleSpaceFtc& s) {
    return std::make_pair(s.vertex_label_bits(), s.edge_label_bits());
  };
  const auto agm_query = [](const dp21::AgmFtc& s, const QueryCase& qc) {
    std::vector<dp21::AgmEdgeLabel> labels;
    for (const EdgeId e : qc.faults) labels.push_back(s.edge_label(e));
    return dp21::AgmFtc::connected(s.vertex_label(qc.s), s.vertex_label(qc.t),
                                   labels);
  };
  const auto agm_bits = [](const dp21::AgmFtc& s) {
    return std::make_pair(s.vertex_label_bits(), s.edge_label_bits());
  };
  const auto ftc_query = [](const core::FtcScheme& s, const QueryCase& qc) {
    std::vector<core::EdgeLabel> labels;
    for (const EdgeId e : qc.faults) labels.push_back(s.edge_label(e));
    return core::FtcDecoder::connected(s.vertex_label(qc.s),
                                       s.vertex_label(qc.t), labels);
  };
  const auto ftc_bits = [](const core::FtcScheme& s) {
    return std::make_pair(s.vertex_label_bits(), s.edge_label_bits());
  };

  std::vector<RowResult> rows;
  for (const bool full : {false, true}) {
    dp21::CycleSpaceConfig cfg;
    cfg.f = f;
    cfg.full_support = full;
    rows.push_back(run_scheme(
        full ? "DP21-1st (full)" : "DP21-1st (whp)", cases,
        [&] { return dp21::CycleSpaceFtc::build(g, cfg); }, cs_query,
        cs_bits));
  }
  for (const bool full : {false, true}) {
    dp21::AgmFtcConfig cfg;
    cfg.f = f;
    cfg.full_support = full;
    rows.push_back(run_scheme(
        full ? "DP21-2nd (full)" : "DP21-2nd (whp)", cases,
        [&] { return dp21::AgmFtc::build(g, cfg); }, agm_query, agm_bits));
  }
  for (const auto kind :
       {core::SchemeKind::kDeterministic, core::SchemeKind::kRandomized}) {
    core::FtcConfig cfg;
    cfg.f = f;
    cfg.kind = kind;
    cfg.k_scale = 2.0;
    rows.push_back(run_scheme(
        kind == core::SchemeKind::kDeterministic ? "This paper (Det)"
                                                 : "This paper (Rand full)",
        cases, [&] { return core::FtcScheme::build(g, cfg); }, ftc_query,
        ftc_bits));
  }

  std::printf("\n== Table 1 (empirical): n=%u m=%u f=%u (%zu queries) ==\n",
              n, m, f, cases.size());
  Table table({"scheme", "vertex label", "edge label", "construction",
               "query", "correct"});
  for (const auto& r : rows) {
    table.add_row({r.name, fmt_bits(r.vertex_bits), fmt_bits(r.edge_bits),
                   fmt(r.build_ms, "%.1f ms"), fmt(r.query_us, "%.1f us"),
                   fmt(r.correct, "%.3f")});
  }
  table.print();
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_table1: empirical reproduction of paper Table 1\n");
  ftc::bench::run_config(512, 1536, 2);
  ftc::bench::run_config(512, 1536, 4);
  ftc::bench::run_config(2048, 6144, 2);
  ftc::bench::run_config(2048, 6144, 4);
  return 0;
}
