// Experiment T1 (DESIGN.md): empirical reproduction of the paper's
// Table 1 — all implementable scheme variants side by side, with measured
// (not asymptotic) label sizes, construction time, query time and
// correctness. Every row now runs through the same ConnectivityScheme
// factory, so this bench is also the smoke test that the polymorphic
// interface covers all backends and variants.
//
// Paper rows -> factory configs:
//   1st (whp)  [DP21]  -> kDp21CycleSpace (full_support = false)
//   2nd (whp)  [DP21]  -> kDp21Agm        (full_support = false)
//   1st (full) [DP21]  -> kDp21CycleSpace (full_support = true)
//   2nd (full) [DP21]  -> kDp21Agm        (full_support = true)
//   This paper Det     -> kCoreFtc        (SchemeKind::kDeterministic)
//   This paper Rand    -> kCoreFtc        (SchemeKind::kRandomized)
// (The O(f^2 log^2 n loglog n) poly(n)-time deterministic row shares the
// pipeline with Det via the greedy-net hierarchy; see bench_hierarchy.)
//
// Expected shape: deterministic labels are the largest, DP21-1st labels
// the smallest; deterministic queries cost more than randomized;
// correctness is 1.000 for deterministic and full-support rows.
#include "bench_util.hpp"
#include "core/connectivity_scheme.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::Graph;

struct TableRow {
  std::string name;
  core::SchemeConfig config;
};

std::vector<TableRow> table1_rows(unsigned f) {
  std::vector<TableRow> rows;
  for (const bool full : {false, true}) {
    core::SchemeConfig cfg;
    cfg.backend = core::BackendKind::kDp21CycleSpace;
    cfg.set_f(f);
    cfg.cycle.full_support = full;
    rows.push_back({full ? "DP21-1st (full)" : "DP21-1st (whp)", cfg});
  }
  for (const bool full : {false, true}) {
    core::SchemeConfig cfg;
    cfg.backend = core::BackendKind::kDp21Agm;
    cfg.set_f(f);
    cfg.agm.full_support = full;
    rows.push_back({full ? "DP21-2nd (full)" : "DP21-2nd (whp)", cfg});
  }
  for (const auto kind :
       {core::SchemeKind::kDeterministic, core::SchemeKind::kRandomized}) {
    core::SchemeConfig cfg;
    cfg.backend = core::BackendKind::kCoreFtc;
    cfg.set_f(f);
    cfg.ftc.kind = kind;
    cfg.ftc.k_scale = 2.0;
    rows.push_back({kind == core::SchemeKind::kDeterministic
                        ? "This paper (Det)"
                        : "This paper (Rand full)",
                    cfg});
  }
  return rows;
}

void run_config(graph::VertexId n, EdgeId m, unsigned f) {
  const Graph g = graph::random_connected(n, m, /*seed=*/n * 31 + f);
  const auto cases = make_query_cases(g, f, 60, /*seed=*/12345);

  std::printf("\n== Table 1 (empirical): n=%u m=%u f=%u (%zu queries) ==\n",
              n, m, f, cases.size());
  Table table({"scheme", "vertex label", "edge label", "construction",
               "query", "correct"});
  for (const auto& row : table1_rows(f)) {
    Timer tb;
    const auto scheme = core::make_scheme(g, row.config);
    const double build_ms = tb.millis();
    int correct = 0;
    Timer tq;
    for (const auto& qc : cases) {
      if (scheme->connected(qc.s, qc.t, core::FaultSpec::edges(qc.faults)) ==
          qc.expected) {
        ++correct;
      }
    }
    const double query_us = tq.micros() / static_cast<double>(cases.size());
    table.add_row({row.name, fmt_bits(scheme->vertex_label_bits()),
                   fmt_bits(scheme->edge_label_bits()),
                   fmt(build_ms, "%.1f ms"), fmt(query_us, "%.1f us"),
                   fmt(static_cast<double>(correct) /
                           static_cast<double>(cases.size()),
                       "%.3f")});
  }
  table.print();
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_table1: empirical reproduction of paper Table 1\n");
  ftc::bench::run_config(512, 1536, 2);
  ftc::bench::run_config(512, 1536, 4);
  ftc::bench::run_config(2048, 6144, 2);
  ftc::bench::run_config(2048, 6144, 4);
  return 0;
}
