// Experiment E3 (DESIGN.md): construction-time scaling (Theorem 1:
// O~(m f^2) for the near-linear deterministic scheme). We measure build
// time versus m (fixed f; expected near-linear, log-log slope ~1) and
// versus f (fixed m; expected <= quadratic), with the hierarchy and
// sketch-aggregation phases broken out.
#include "bench_util.hpp"
#include "core/ftc_scheme.hpp"

namespace ftc::bench {
namespace {

void vs_m() {
  std::printf("\n== construction time vs m (n = m/3, f = 4) ==\n");
  Table table({"m", "total", "hierarchy", "sketches", "levels", "k"});
  std::vector<double> ms, ts;
  for (const unsigned m : {1500u, 3000u, 6000u, 12000u, 24000u}) {
    const unsigned n = m / 3;
    const auto g = graph::random_connected(n, m, m);
    core::FtcConfig cfg;
    cfg.f = 4;
    cfg.k_scale = 1.0;
    Timer t;
    const auto scheme = core::FtcScheme::build(g, cfg);
    const double total = t.seconds();
    const auto& st = scheme.build_stats();
    table.add_row({std::to_string(m), fmt(total * 1e3, "%.1f ms"),
                   fmt(st.hierarchy_seconds * 1e3, "%.1f ms"),
                   fmt(st.sketch_seconds * 1e3, "%.1f ms"),
                   std::to_string(st.num_levels), std::to_string(st.k)});
    ms.push_back(m);
    ts.push_back(total);
  }
  table.print();
  std::printf("log-log slope in m: %.2f (near-linear expected, ~1)\n",
              loglog_slope(ms, ts));
}

void vs_f() {
  std::printf("\n== construction time vs f (n=2048, m=6144) ==\n");
  const auto g = graph::random_connected(2048, 6144, 11);
  Table table({"f", "total", "k", "edge label"});
  std::vector<double> fs, ts;
  for (const unsigned f : {1u, 2u, 4u, 8u, 16u}) {
    core::FtcConfig cfg;
    cfg.f = f;
    cfg.k_scale = 1.0;
    Timer t;
    const auto scheme = core::FtcScheme::build(g, cfg);
    const double total = t.seconds();
    table.add_row({std::to_string(f), fmt(total * 1e3, "%.1f ms"),
                   std::to_string(scheme.params().k),
                   fmt_bits(scheme.edge_label_bits())});
    fs.push_back(f);
    ts.push_back(total);
  }
  table.print();
  std::printf("log-log slope in f: %.2f (k ~ f in practical mode, so ~1;"
              " provable mode would add another factor f)\n",
              loglog_slope(fs, ts));
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_construction: Theorem 1 construction-time shape\n");
  ftc::bench::vs_m();
  ftc::bench::vs_f();
  return 0;
}
