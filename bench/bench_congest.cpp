// Experiment E11 (DESIGN.md): distributed construction in the CONGEST
// model (Section 8 / Theorem 3). Measured: real message-passing rounds
// for BFS + ancestry + pipelined sketch aggregation (the O~(D + k) part);
// modeled per Lemma 13: the NetFind hierarchy rounds O~(sqrt(m) D).
// Expected shape: measured rounds ~ depth + k (pipelining!); the model
// grows with sqrt(m) and D.
#include "bench_util.hpp"
#include "congest/dist_labeling.hpp"
#include "graph/spanning_tree.hpp"

namespace ftc::bench {
namespace {

using graph::VertexId;

unsigned tree_depth(const graph::Graph& g) {
  const auto t = graph::bfs_spanning_tree(g, 0);
  unsigned d = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) d = std::max(d, t.depth[v]);
  return d;
}

void measured_rounds() {
  std::printf("\n== measured rounds: BFS + ancestry + k-slot pipeline ==\n");
  Table table({"graph", "n", "m", "depth", "k", "rounds", "depth+k",
               "messages", "max msg bits"});
  struct Case {
    const char* name;
    graph::Graph g;
    unsigned k;
  };
  std::vector<Case> cases;
  cases.push_back({"grid 16x16", graph::grid(16, 16), 8});
  cases.push_back({"grid 16x16", graph::grid(16, 16), 64});
  cases.push_back({"random sparse", graph::random_connected(512, 1536, 3), 8});
  cases.push_back({"random sparse", graph::random_connected(512, 1536, 3), 64});
  cases.push_back({"random dense", graph::random_connected(256, 4096, 4), 64});
  for (auto& c : cases) {
    const unsigned depth = tree_depth(c.g);
    const auto r = congest::run_distributed_labeling(c.g, 0, c.k);
    table.add_row({c.name, std::to_string(c.g.num_vertices()),
                   std::to_string(c.g.num_edges()), std::to_string(depth),
                   std::to_string(c.k), std::to_string(r.stats.rounds),
                   std::to_string(depth + c.k),
                   std::to_string(r.stats.messages),
                   std::to_string(r.stats.max_message_bits)});
  }
  table.print();
  std::printf("(rounds track depth + k up to small constants: Theorem 3's "
              "O~(D + f^2) aggregation term)\n");
}

void modeled_netfind() {
  std::printf("\n== Lemma 13 model: NetFind hierarchy rounds O~(sqrt(m') D) ==\n");
  Table table({"m'", "D", "modeled rounds"});
  for (const std::uint64_t m : {1000u, 4000u, 16000u}) {
    for (const std::uint64_t d : {8u, 32u}) {
      table.add_row({std::to_string(m), std::to_string(d),
                     std::to_string(congest::netfind_round_model(m, d))});
    }
  }
  table.print();
  std::vector<double> ms{1000, 4000, 16000};
  std::vector<double> rounds;
  for (const double m : ms) {
    rounds.push_back(static_cast<double>(
        congest::netfind_round_model(static_cast<std::uint64_t>(m), 16)));
  }
  std::printf("log-log slope in m': %.2f (sqrt scaling expected, ~0.5)\n",
              loglog_slope(ms, rounds));
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_congest: Section 8 distributed construction\n");
  ftc::bench::measured_rounds();
  ftc::bench::modeled_netfind();
  return 0;
}
