// Experiment E7 (DESIGN.md): ablation of the two query optimizations of
// Section 6 / Lemma 6 on an adversarial workload.
//  * merge order: smallest-cut-first (refined, Section 7.6) vs
//    source-first (the basic Section 3.1 procedure);
//  * adaptive prefix decoding vs always decoding at full capacity k.
// Workload: a long path of cliques with all bridges + a few chords
// faulted, maximizing fragment count and fragment-size imbalance — the
// regime where Lemma 6's reordering provably saves an |F| factor.
#include "bench_util.hpp"
#include "core/ftc_query.hpp"
#include "core/ftc_scheme.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::VertexId;

void run(unsigned cliques, unsigned k) {
  // Path of cliques with an extra long-range chord per pair of adjacent
  // cliques so faulted bridges remain reconnectable.
  graph::Graph g = graph::path_of_cliques(cliques, k);
  SplitMix64 rng(9);
  std::vector<EdgeId> bridges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (ed.u / k != ed.v / k) bridges.push_back(e);
  }
  for (unsigned c = 0; c + 1 < cliques; ++c) {
    g.add_edge(c * k + 1, (c + 1) * k + 1);  // chord parallel to bridge c
  }

  core::FtcConfig cfg;
  cfg.f = static_cast<unsigned>(bridges.size());
  cfg.k_scale = 1.0;
  const auto scheme = core::FtcScheme::build(g, cfg);

  // Fault ALL bridges: |F| = cliques-1 fragments chained by chords.
  std::vector<core::EdgeLabel> fault_labels;
  for (const EdgeId e : bridges) fault_labels.push_back(scheme.edge_label(e));
  const auto s = scheme.vertex_label(0);
  const auto t = scheme.vertex_label((cliques - 1) * k);

  std::printf("\n== query ablation: %u cliques of %u, |F|=%zu ==\n", cliques,
              k, fault_labels.size());
  Table table({"strategy", "query time", "outdetect calls", "merges"});
  for (const bool smallest : {true, false}) {
    for (const bool adaptive : {true, false}) {
      core::QueryOptions opt;
      opt.smallest_cut_first = smallest;
      opt.adaptive = adaptive;
      core::QueryStats stats;
      Timer timer;
      bool ok = false;
      const int reps = 20;
      for (int i = 0; i < reps; ++i) {
        stats = core::QueryStats{};
        ok = core::FtcDecoder::connected(s, t, fault_labels, opt, &stats);
      }
      const double us = timer.micros() / reps;
      FTC_CHECK(ok, "chords must reconnect the cliques");
      table.add_row(
          {std::string(smallest ? "smallest-cut" : "source-first") +
               (adaptive ? " + adaptive" : " + fixed-k"),
           fmt(us, "%.1f us"), std::to_string(stats.outdetect_calls),
           std::to_string(stats.merges)});
    }
  }
  table.print();
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_query_ablation: Lemma 6 / Section 6 optimizations\n");
  ftc::bench::run(8, 6);
  ftc::bench::run(24, 6);
  ftc::bench::run(48, 6);
  return 0;
}
