// Build-scaling bench: wall-clock construction time vs worker threads,
// across graph families and all three backends — the measurement side
// of the parallel build pipeline's contract.
//
// Two numbers per (family, backend, threads) cell:
//   build_ms      — full make_scheme wall clock at that thread count;
//   speedup       — serial build_ms / this build_ms.
// For the core-ftc backend the BuildStats phase split (hierarchy_ms,
// sketch_ms — wall-clock on the coordinating thread) is also recorded,
// since the hierarchy phase is the scaling target.
//
// HARD correctness gate: every parallel build's container digest
// (store::digest_container — file size + payload checksum, no I/O) must
// equal the serial build's. A digest mismatch aborts the bench with a
// nonzero exit — timing output from a non-deterministic build would be
// meaningless.
//
// Speedups are only meaningful on a multicore host; the JSON records
// hardware_concurrency so readers can tell a 1-core CI box (speedup
// ~1.0 everywhere, expected) from a real regression. See
// OPERATIONS.md's build runbook for interpretation and regeneration.
//
// Usage: bench_build_scaling [backend|all] [--smoke]
#include <fstream>
#include <thread>

#include "bench_util.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/ftc_scheme.hpp"
#include "core/label_store.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

struct Family {
  std::string name;
  Graph g;
};

std::vector<Family> make_families(bool smoke) {
  std::vector<Family> families;
  if (smoke) {
    families.push_back({"random", graph::random_connected(160, 520, 11)});
    families.push_back({"grid", graph::grid(10, 12)});
  } else {
    families.push_back({"random", graph::random_connected(3000, 12000, 11)});
    families.push_back({"grid", graph::grid(48, 52)});
    families.push_back(
        {"pref_attach", graph::preferential_attachment(2500, 4, 3)});
  }
  return families;
}

core::SchemeConfig scaling_config(core::BackendKind backend, unsigned f,
                                  unsigned threads) {
  core::SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  cfg.set_build_threads(threads);
  return cfg;
}

void run_family(const Family& family, core::BackendKind backend, unsigned f,
                const std::vector<unsigned>& thread_counts, Table& table,
                JsonRecords& json) {
  const Graph& g = family.g;
  core::store::ContainerDigest serial_digest{};
  double serial_ms = 0;

  // Untimed warm-up: the first build of a family pays the allocator's
  // page-fault bill (multi-GB sketch arrays for dp21-agm); later builds
  // reuse warm heap pages. Without this, whichever thread count runs
  // first looks arbitrarily slower.
  (void)core::make_scheme(g, scaling_config(backend, f, 1));

  for (const unsigned threads : thread_counts) {
    const auto cfg = scaling_config(backend, f, threads);
    Timer tb;
    const auto scheme = core::make_scheme(g, cfg);
    const double build_ms = tb.millis();

    // Phase split from BuildStats — core-ftc only (the dp21 backends
    // keep no phase accounting).
    double hierarchy_ms = 0;
    double sketch_ms = 0;
    if (backend == core::BackendKind::kCoreFtc) {
      const auto ftc = core::FtcScheme::build(g, cfg.ftc);
      hierarchy_ms = ftc.build_stats().hierarchy_seconds * 1e3;
      sketch_ms = ftc.build_stats().sketch_seconds * 1e3;
    }

    const core::store::ContainerDigest digest = core::store::digest_container(
        *scheme, 0, g.num_vertices(), 0, g.num_edges(),
        /*include_adjacency=*/true);
    if (threads == thread_counts.front()) {
      serial_digest = digest;
      serial_ms = build_ms;
    }
    // The determinism gate: any divergence from the serial bytes is a
    // correctness bug, not a data point.
    FTC_REQUIRE(digest.file_bytes == serial_digest.file_bytes &&
                    digest.payload_checksum == serial_digest.payload_checksum,
                "parallel build digest differs from serial build");

    const double speedup = build_ms > 0 ? serial_ms / build_ms : 1.0;
    table.add_row({family.name, std::string(core::backend_name(backend)),
                   std::to_string(threads), fmt(build_ms, "%.2f"),
                   fmt(hierarchy_ms, "%.2f"), fmt(sketch_ms, "%.2f"),
                   fmt(speedup, "%.2f")});
    json.add();
    json.field("family", family.name);
    json.field("n", g.num_vertices());
    json.field("m", g.num_edges());
    json.field("f", f);
    json.field("backend", std::string(core::backend_name(backend)));
    json.field("threads", threads);
    json.field("build_ms", build_ms);
    json.field("hierarchy_ms", hierarchy_ms);
    json.field("sketch_ms", sketch_ms);
    json.field("speedup_vs_serial", speedup);
    json.field("digest_matches_serial", true);
    json.field("hardware_concurrency", std::thread::hardware_concurrency());
  }
}

}  // namespace
}  // namespace ftc::bench

int main(int argc, char** argv) {
  using namespace ftc;

  bool smoke = false;
  std::string backend_arg = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      backend_arg = arg;
    }
  }

  const unsigned f = 4;
  // Serial first: its digest and wall clock anchor every other row.
  const std::vector<unsigned> thread_counts = smoke
                                                  ? std::vector<unsigned>{1, 2,
                                                                          8}
                                                  : std::vector<unsigned>{
                                                        1, 2, 4, 8};
  const auto families = bench::make_families(smoke);
  std::printf("bench_build_scaling: f=%u, hardware_concurrency=%u%s\n", f,
              std::thread::hardware_concurrency(), smoke ? " [smoke]" : "");

  bench::Table table({"family", "backend", "threads", "build ms",
                      "hierarchy ms", "sketch ms", "speedup"});
  bench::JsonRecords json;
  const auto run_backend = [&](core::BackendKind b) {
    for (const auto& family : families) {
      bench::run_family(family, b, f, thread_counts, table, json);
    }
  };
  if (backend_arg == "all") {
    for (const core::BackendKind b : core::kAllBackends) run_backend(b);
  } else {
    run_backend(core::parse_backend(backend_arg));
  }
  table.print();
  json.print("JSON");
  std::ofstream out("BENCH_build_scaling.json", std::ios::trunc);
  out << json.dump() << "\n";
  std::printf("wrote BENCH_build_scaling.json\n");
  return 0;
}
