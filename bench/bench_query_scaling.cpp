// Experiment E2 (DESIGN.md): query-time scaling in |F| (Theorem 1 and
// Section 6). Claims: the deterministic scheme decodes in O~(|F|^4), the
// randomized framework variant in O~(|F|^2); adaptive decoding makes the
// cost depend on |F| (actual faults), not f (capacity).
// Expected shape: query time grows polynomially in |F| with the
// deterministic curve steeper than the randomized one, and the adaptive
// decoder beats the non-adaptive one at small |F|.
#include "bench_util.hpp"
#include "core/ftc_query.hpp"
#include "core/ftc_scheme.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;

double measure_query_us(const core::FtcScheme& scheme,
                        const graph::Graph& g,
                        const std::vector<QueryCase>& cases,
                        const core::QueryOptions& opts) {
  // Pre-fetch labels so the measurement is decode-only.
  std::vector<std::vector<core::EdgeLabel>> fault_labels;
  std::vector<std::pair<core::VertexLabel, core::VertexLabel>> endpoints;
  for (const auto& qc : cases) {
    std::vector<core::EdgeLabel> labels;
    for (const EdgeId e : qc.faults) labels.push_back(scheme.edge_label(e));
    fault_labels.push_back(std::move(labels));
    endpoints.emplace_back(scheme.vertex_label(qc.s), scheme.vertex_label(qc.t));
  }
  (void)g;
  Timer t;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const bool got = core::FtcDecoder::connected(
        endpoints[i].first, endpoints[i].second, fault_labels[i], opts);
    if (got != cases[i].expected) {
      std::printf("  !! incorrect answer on case %zu\n", i);
    }
  }
  return t.micros() / static_cast<double>(cases.size());
}

void run() {
  const unsigned n = 2048;
  const auto g = graph::random_connected(n, 3 * n, 5);
  const unsigned fmax = 16;

  core::FtcConfig det;
  det.f = fmax;
  det.kind = core::SchemeKind::kDeterministic;
  det.k_scale = 1.0;
  const auto det_scheme = core::FtcScheme::build(g, det);

  core::FtcConfig rnd = det;
  rnd.kind = core::SchemeKind::kRandomized;
  const auto rnd_scheme = core::FtcScheme::build(g, rnd);

  std::printf("\n== query time vs |F| (n=%u, m=%u, schemes built for f=%u) ==\n",
              n, 3 * n, fmax);
  Table table({"|F|", "det adaptive", "det fixed-k", "rand adaptive"});
  std::vector<double> xs, det_t, rnd_t;
  for (const unsigned nf : {1u, 2u, 4u, 8u, 16u}) {
    const auto cases = make_query_cases(g, nf, 40, 777 + nf);
    core::QueryOptions adaptive;
    core::QueryOptions fixed;
    fixed.adaptive = false;
    const double da = measure_query_us(det_scheme, g, cases, adaptive);
    const double df = measure_query_us(det_scheme, g, cases, fixed);
    const double ra = measure_query_us(rnd_scheme, g, cases, adaptive);
    table.add_row({std::to_string(nf), fmt(da, "%.1f us"), fmt(df, "%.1f us"),
                   fmt(ra, "%.1f us")});
    xs.push_back(nf);
    det_t.push_back(da);
    rnd_t.push_back(ra);
  }
  table.print();
  std::printf(
      "log-log slope in |F|: det %.2f, rand %.2f (theory: <=4 and <=2; both "
      "are upper bounds, real instances decode far below worst case)\n",
      loglog_slope(xs, det_t), loglog_slope(xs, rnd_t));
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_query_scaling: Theorem 1 / Section 6 query-time shape\n");
  ftc::bench::run();
  return 0;
}
