// Decoder hot-path benchmark: the serving-path cost model of the repo.
//
// Two measurements per (backend, fault-set size):
//   single — session single-query latency: faults prepared once, one
//            reused workspace, mean micros per connected() call. This is
//            the number the copy-on-write workspace and allocation-free
//            decode attack: at large f the old decoder re-copied the full
//            per-fragment state (O(fragments * levels * k)) per query.
//   batch  — small-batch throughput: run_parallel on batches of
//            kBatchSize queries, repeated; exposes per-batch fan-out
//            overhead (thread spawn vs. the persistent pool).
// Answers are spot-checked against BFS ground truth.
//
// Usage: bench_decoder_hotpath [backend|all] [--smoke]
//   --smoke: tiny sizes for CI (scripts/ci.sh bench-smoke).
// Output: a human table, one `JSON [...]` line, and
// BENCH_decoder_hotpath.json (the checked-in baseline lives at the repo
// root; regenerate with scripts/bench_all.sh).
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch_engine.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

constexpr std::size_t kBatchSize = 8;
constexpr unsigned kBatchThreads = 4;

struct Sizes {
  VertexId n = 256;
  std::size_t num_queries = 1000;
  std::size_t batch_reps = 200;
  std::size_t checked = 64;
};

core::SchemeConfig bench_config(core::BackendKind backend, unsigned f) {
  core::SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

// dp21-agm label size grows ~quadratically in f (reps x levels cells per
// edge); f = 256 would need gigabytes of labels on this graph, so the agm
// column stops at 64. Logged explicitly: no silent caps.
bool feasible(core::BackendKind backend, unsigned f) {
  return backend != core::BackendKind::kDp21Agm || f <= 64;
}

void run_case(core::BackendKind backend, const Graph& g, unsigned f,
              const Sizes& sz, Table& table, JsonRecords& json) {
  if (!feasible(backend, f)) {
    std::printf("skipping %s f=%u: label memory would exceed the bench "
                "budget\n",
                core::backend_name(backend), f);
    return;
  }
  Timer build_timer;
  const auto scheme = core::make_scheme(g, bench_config(backend, f));
  const double build_ms = build_timer.millis();

  SplitMix64 rng(0x9e1u * (f + 1) + static_cast<unsigned>(backend));
  std::vector<EdgeId> faults;
  faults.reserve(f);
  for (unsigned i = 0; i < f; ++i) {
    faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
  }
  std::vector<core::BatchQueryEngine::Query> queries;
  queries.reserve(sz.num_queries);
  for (std::size_t i = 0; i < sz.num_queries; ++i) {
    queries.push_back(
        {static_cast<VertexId>(rng.next_below(g.num_vertices())),
         static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }

  Timer prep_timer;
  core::BatchQueryEngine engine(*scheme, core::FaultSpec::edges(faults));
  const double prep_ms = prep_timer.millis();

  // Ground truth on a prefix, plus a warm-up for the session workspace.
  const std::size_t checked = std::min(sz.checked, queries.size());
  for (std::size_t i = 0; i < checked; ++i) {
    const bool got = engine.connected(queries[i].s, queries[i].t);
    const bool expected = graph::connected_avoiding(g, queries[i].s,
                                                    queries[i].t, faults);
    FTC_REQUIRE(got == expected, "decoder disagrees with BFS ground truth");
  }

  // Single-query latency over the prepared session.
  Timer single_timer;
  std::size_t answered = 0;
  for (const auto& q : queries) {
    (void)engine.connected(q.s, q.t);
    ++answered;
    if (single_timer.seconds() > 2.0 && answered >= 16) break;  // time box
  }
  const double single_us = single_timer.micros() / answered;

  // Sequential full-batch throughput (context for the batch number).
  Timer seq_timer;
  const auto seq = engine.run_sequential(queries);
  const double seq_qps = static_cast<double>(seq.size()) / seq_timer.seconds();

  // Small-batch parallel throughput: many tiny run_parallel() calls.
  const std::vector<core::BatchQueryEngine::Query> batch(
      queries.begin(),
      queries.begin() + std::min(kBatchSize, queries.size()));
  (void)engine.run_parallel(batch, kBatchThreads);  // warm the pool
  Timer batch_timer;
  std::size_t batches = 0;
  for (std::size_t r = 0; r < sz.batch_reps; ++r) {
    (void)engine.run_parallel(batch, kBatchThreads);
    ++batches;
    if (batch_timer.seconds() > 2.0 && batches >= 8) break;  // time box
  }
  const double batch_qps = static_cast<double>(batches * batch.size()) /
                           batch_timer.seconds();

  table.add_row({core::backend_name(backend), std::to_string(f),
                 std::to_string(engine.num_faults()), fmt(single_us, "%.2f"),
                 fmt(seq_qps, "%.0f"), fmt(batch_qps, "%.0f"),
                 fmt(build_ms, "%.0f"), fmt(prep_ms, "%.2f")});
  json.add();
  json.field("backend", core::backend_name(backend));
  json.field("f", f);
  json.field("num_faults", engine.num_faults());
  json.field("n", g.num_vertices());
  json.field("m", g.num_edges());
  json.field("single_query_us", single_us);
  json.field("single_queries_timed", answered);
  json.field("seq_qps", seq_qps);
  json.field("batch_size", batch.size());
  json.field("batch_threads", kBatchThreads);
  json.field("batch_qps", batch_qps);
  json.field("build_ms", build_ms);
  json.field("prepare_ms", prep_ms);
  json.field("checked_queries", checked);
}

}  // namespace
}  // namespace ftc::bench

int main(int argc, char** argv) {
  using namespace ftc;

  bool smoke = false;
  std::string backend_arg = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      backend_arg = arg;
    }
  }

  bench::Sizes sz;
  std::vector<unsigned> fault_sizes{4, 16, 64, 256};
  if (smoke) {
    sz = {96, 64, 8, 32};
    fault_sizes = {2, 4};
  }
  const graph::EdgeId m = 3 * sz.n;
  const graph::Graph g = graph::random_connected(sz.n, m, 17);
  std::printf("bench_decoder_hotpath: n=%u m=%u, %zu queries, batch=%zu x "
              "%u threads%s\n",
              sz.n, m, sz.num_queries, bench::kBatchSize,
              bench::kBatchThreads, smoke ? " [smoke]" : "");

  bench::Table table({"backend", "f", "dedup", "single us", "seq q/s",
                      "batch q/s", "build ms", "prep ms"});
  bench::JsonRecords json;
  const auto run_backend = [&](core::BackendKind b) {
    for (const unsigned f : fault_sizes) {
      bench::run_case(b, g, f, sz, table, json);
    }
  };
  if (backend_arg == "all") {
    for (const core::BackendKind b : core::kAllBackends) run_backend(b);
  } else {
    run_backend(core::parse_backend(backend_arg));
  }
  table.print();
  json.print("JSON");
  std::ofstream out("BENCH_decoder_hotpath.json", std::ios::trunc);
  out << json.dump() << "\n";
  std::printf("wrote BENCH_decoder_hotpath.json\n");
  return 0;
}
