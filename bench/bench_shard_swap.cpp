// Sharded-store serving and epoch-swap cost, per backend.
//
// For each (backend, K in {1, 4, 16}) plus the unsharded container as
// the K=0 baseline:
//   save     — artifact write time (save_sharded builds and writes the K
//              shard containers in parallel, then the manifest);
//   open     — cold open_store_view() on the artifact (manifest opens
//              validate the shard table and stat every shard, but mmap
//              nothing);
//   first    — first query latency on a fresh session (lazy shard maps +
//              fault-label decode amortize here);
//   batch    — steady-state parallel batch throughput from the artifact
//              (lazy shard opens, exactly as a cold session serves);
//   pf       — StoreView::prefetch() cost on a fresh view (parallel shard
//              map + digest verification + route-table resolution);
//   pf first — first query latency on a session over the prefetched view;
//   pf q/s   — steady-state batch throughput on the prefetched session
//              (the route-table fast path);
//   swap     — swap_store() latency: load_scheme on the artifact plus
//              prefetch plus fault re-preparation plus the epoch install;
//   swap q/s — batch throughput while a second thread swap_store()s the
//              same artifact in a tight loop (serving through cut-overs).
// Answers are spot-checked against the BFS ground truth.
//
// Usage: bench_shard_swap [backend|all] [--smoke]
// Output: a human table, one `JSON [...]` line, and
// BENCH_shard_swap.json (checked-in baseline at the repo root;
// regenerate with scripts/bench_all.sh).
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/batch_engine.hpp"
#include "core/sharded_store.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

constexpr std::size_t kBatchSize = 64;
constexpr unsigned kBatchThreads = 4;

struct Sizes {
  VertexId n = 256;
  unsigned f = 8;
  std::size_t num_queries = 400;
  std::size_t batch_reps = 60;
  std::size_t swap_reps = 10;
  std::size_t checked = 32;
};

core::SchemeConfig bench_config(core::BackendKind backend, unsigned f) {
  core::SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

std::string artifact_path(unsigned k_shards) {
  const std::string stem = "bench_shard_swap_" + std::to_string(::getpid()) +
                           "_k" + std::to_string(k_shards);
  return stem + (k_shards == 0 ? ".ftcs" : ".ftcm");
}

void remove_artifact(const std::string& path, unsigned k_shards) {
  for (unsigned k = 0; k < k_shards; ++k) {
    std::remove((path + ".shard" + std::to_string(k) + ".ftcs").c_str());
  }
  std::remove(path.c_str());
}

void run_case(const core::ConnectivityScheme& scheme, const Graph& g,
              unsigned k_shards, const Sizes& sz, Table& table,
              JsonRecords& json) {
  const std::string path = artifact_path(k_shards);

  Timer save_timer;
  if (k_shards == 0) {
    scheme.save(path);
  } else {
    core::save_sharded(scheme, path, k_shards);
  }
  const double save_ms = save_timer.millis();

  Timer open_timer;
  auto view = core::open_store_view(path);
  const double open_us = open_timer.micros();

  // Same seed for every K of a backend: the fault set and query mix must
  // be identical across rows, or the shard-count columns measure workload
  // variance instead of sharding overhead.
  SplitMix64 rng(0x5a + static_cast<unsigned>(scheme.backend()));
  std::vector<EdgeId> faults;
  for (unsigned i = 0; i < sz.f / 2; ++i) {
    faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
  }
  const core::FaultSpec spec = core::FaultSpec::edges(faults);
  std::vector<core::BatchQueryEngine::Query> queries;
  queries.reserve(sz.num_queries);
  for (std::size_t i = 0; i < sz.num_queries; ++i) {
    queries.push_back(
        {static_cast<VertexId>(rng.next_below(g.num_vertices())),
         static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }

  Timer first_timer;
  core::BatchQueryEngine engine(core::load_scheme(view), spec);
  const bool first = engine.connected(queries[0].s, queries[0].t);
  const double first_us = first_timer.micros();
  FTC_REQUIRE(first == graph::connected_avoiding(g, queries[0].s,
                                                 queries[0].t, faults),
              "store-served decoder disagrees with BFS ground truth");
  for (std::size_t i = 1; i < std::min(sz.checked, queries.size()); ++i) {
    FTC_REQUIRE(engine.connected(queries[i].s, queries[i].t) ==
                    graph::connected_avoiding(g, queries[i].s, queries[i].t,
                                              faults),
                "store-served decoder disagrees with BFS ground truth");
  }

  const std::vector<core::BatchQueryEngine::Query> batch(
      queries.begin(), queries.begin() + std::min(kBatchSize, queries.size()));
  (void)engine.run_parallel(batch, kBatchThreads);  // warm the pool
  Timer batch_timer;
  std::size_t batches = 0;
  for (std::size_t r = 0; r < sz.batch_reps; ++r) {
    (void)engine.run_parallel(batch, kBatchThreads);
    ++batches;
    if (batch_timer.seconds() > 2.0 && batches >= 8) break;  // time box
  }
  const double batch_qps =
      static_cast<double>(batches * batch.size()) / batch_timer.seconds();

  // Prefetched serving path: a fresh view over the same artifact, warmed
  // with prefetch() before the session's first query. For the flat
  // container prefetch is a no-op (routes resolve at open), so these
  // columns double as the parity target for the sharded rows.
  auto pf_view = core::open_store_view(path);
  Timer prefetch_timer;
  (void)pf_view->prefetch();
  const double prefetch_us = prefetch_timer.micros();

  Timer pf_first_timer;
  core::BatchQueryEngine pf_engine(core::load_scheme(pf_view), spec);
  const bool pf_first = pf_engine.connected(queries[0].s, queries[0].t);
  const double pf_first_us = pf_first_timer.micros();
  FTC_REQUIRE(pf_first == first,
              "prefetched session disagrees with the lazy session");

  (void)pf_engine.run_parallel(batch, kBatchThreads);  // warm the pool
  Timer pf_batch_timer;
  std::size_t pf_batches = 0;
  for (std::size_t r = 0; r < sz.batch_reps; ++r) {
    (void)pf_engine.run_parallel(batch, kBatchThreads);
    ++pf_batches;
    if (pf_batch_timer.seconds() > 2.0 && pf_batches >= 8) break;  // time box
  }
  const double pf_batch_qps =
      static_cast<double>(pf_batches * batch.size()) /
      pf_batch_timer.seconds();
  pf_view.reset();

  // Swap latency: reload the same artifact and install it as the next
  // epoch (what a production label push costs on the serving session).
  Timer swap_timer;
  std::size_t swaps = 0;
  for (std::size_t r = 0; r < sz.swap_reps; ++r) {
    engine.swap_store(core::load_scheme(path));
    ++swaps;
    if (swap_timer.seconds() > 2.0 && swaps >= 3) break;  // time box
  }
  const double swap_us = swap_timer.micros() / static_cast<double>(swaps);

  // Throughput while swaps land continuously from another thread.
  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      engine.swap_store(core::load_scheme(path));
    }
  });
  Timer swapping_timer;
  std::size_t swapping_batches = 0;
  for (std::size_t r = 0; r < sz.batch_reps; ++r) {
    (void)engine.run_parallel(batch, kBatchThreads);
    ++swapping_batches;
    if (swapping_timer.seconds() > 2.0 && swapping_batches >= 8) break;
  }
  const double swap_qps =
      static_cast<double>(swapping_batches * batch.size()) /
      swapping_timer.seconds();
  stop.store(true);
  swapper.join();

  const std::size_t file_bytes = view->info().file_bytes;
  view.reset();
  remove_artifact(path, k_shards);

  table.add_row({core::backend_name(scheme.backend()),
                 k_shards == 0 ? "flat" : std::to_string(k_shards),
                 fmt(save_ms, "%.1f"), fmt(open_us, "%.0f"),
                 fmt(first_us, "%.0f"), fmt(batch_qps, "%.0f"),
                 fmt(prefetch_us, "%.0f"), fmt(pf_first_us, "%.0f"),
                 fmt(pf_batch_qps, "%.0f"),
                 fmt(swap_us, "%.0f"), fmt(swap_qps, "%.0f")});
  json.add();
  json.field("backend", core::backend_name(scheme.backend()));
  json.field("k_shards", k_shards);
  json.field("n", g.num_vertices());
  json.field("m", g.num_edges());
  json.field("f", sz.f);
  json.field("file_bytes", file_bytes);
  json.field("save_ms", save_ms);
  json.field("open_us", open_us);
  json.field("first_query_us", first_us);
  json.field("batch_size", batch.size());
  json.field("batch_threads", kBatchThreads);
  json.field("batch_qps", batch_qps);
  json.field("prefetch_us", prefetch_us);
  json.field("prefetched_first_query_us", pf_first_us);
  json.field("prefetched_batch_qps", pf_batch_qps);
  json.field("swap_us", swap_us);
  json.field("swapping_batch_qps", swap_qps);
  json.field("checked_queries", std::min(sz.checked, queries.size()));
}

}  // namespace
}  // namespace ftc::bench

int main(int argc, char** argv) {
  using namespace ftc;

  bool smoke = false;
  std::string backend_arg = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      backend_arg = arg;
    }
  }

  bench::Sizes sz;
  std::vector<unsigned> shard_counts{0, 1, 4, 16};
  if (smoke) {
    sz = {96, 4, 64, 8, 3, 16};
    shard_counts = {0, 4};
  }
  const graph::EdgeId m = 3 * sz.n;
  const graph::Graph g = graph::random_connected(sz.n, m, 31);
  std::printf("bench_shard_swap: n=%u m=%u f=%u, %zu queries, batch=%zu x %u "
              "threads%s\n",
              sz.n, m, sz.f, sz.num_queries, bench::kBatchSize,
              bench::kBatchThreads, smoke ? " [smoke]" : "");

  bench::Table table({"backend", "shards", "save ms", "open us", "first us",
                      "batch q/s", "pf us", "pf first us", "pf q/s",
                      "swap us", "swap q/s"});
  bench::JsonRecords json;
  const auto run_backend = [&](core::BackendKind b) {
    const auto scheme = core::make_scheme(g, bench::bench_config(b, sz.f));
    for (const unsigned k : shard_counts) {
      bench::run_case(*scheme, g, k, sz, table, json);
    }
  };
  if (backend_arg == "all") {
    for (const core::BackendKind b : core::kAllBackends) run_backend(b);
  } else {
    run_backend(core::parse_backend(backend_arg));
  }
  table.print();
  json.print("JSON");
  std::ofstream out("BENCH_shard_swap.json", std::ios::trunc);
  out << json.dump() << "\n";
  std::printf("wrote BENCH_shard_swap.json\n");
  return 0;
}
