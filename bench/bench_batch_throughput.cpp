// Batch query throughput: queries/sec of the three query paths every
// ConnectivityScheme backend exposes —
//   single    — one-shot ConnectivityScheme::connected per query: the
//               fault labels are re-materialized and re-prepared and the
//               decode scratch re-allocated for every single query;
//   batch-1   — BatchQueryEngine sequential session: faults prepared
//               once, one reused workspace;
//   batch-T   — the same session fanned across T worker threads.
// The gap between `single` and `batch-1` is the amortization win of the
// session design; the gap between batch-1 and batch-T is thread scaling
// (bounded by the machine's core count).
//
// Usage: bench_batch_throughput [backend] [num_queries]
//   backend: core-ftc | dp21-cycle | dp21-agm | all (default all)
// Emits a human table plus one `JSON [...]` line for scripts.
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "core/batch_engine.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

struct PathResult {
  std::string path;
  double seconds = 0;
  double qps = 0;
};

void run_backend(core::BackendKind backend, const Graph& g, unsigned f,
                 std::size_t num_queries, Table& table, JsonRecords& json) {
  core::SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;

  Timer build_timer;
  const auto scheme = core::make_scheme(g, cfg);
  const double build_ms = build_timer.millis();

  SplitMix64 rng(99);
  std::vector<EdgeId> faults;
  for (unsigned i = 0; i < f; ++i) {
    faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
  }
  std::vector<core::BatchQueryEngine::Query> queries;
  queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    queries.push_back(
        {static_cast<VertexId>(rng.next_below(g.num_vertices())),
         static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }

  core::BatchQueryEngine engine(*scheme, core::FaultSpec::edges(faults));
  const auto reference = engine.run_sequential(queries);

  std::vector<PathResult> results;
  const auto record = [&](const std::string& path, double seconds,
                          const std::vector<bool>& answers) {
    FTC_REQUIRE(answers == reference, "query paths disagree: " + path);
    results.push_back(
        {path, seconds, static_cast<double>(num_queries) / seconds});
  };

  {
    Timer t;
    std::vector<bool> answers;
    answers.reserve(num_queries);
    for (const auto& q : queries) {
      answers.push_back(
          scheme->connected(q.s, q.t, core::FaultSpec::edges(faults)));
    }
    record("single", t.seconds(), answers);
  }
  {
    Timer t;
    const auto answers = engine.run_sequential(queries);
    record("batch-1", t.seconds(), answers);
  }
  for (const unsigned threads : {2u, 4u, 8u}) {
    Timer t;
    const auto answers = engine.run_parallel(queries, threads);
    record("batch-" + std::to_string(threads), t.seconds(), answers);
  }

  const double single_qps = results[0].qps;
  for (const auto& r : results) {
    table.add_row({backend_name(backend), r.path, fmt(r.qps, "%.0f"),
                   fmt(r.qps / single_qps, "%.2fx"),
                   fmt(build_ms, "%.0f ms")});
    json.add();
    json.field("backend", backend_name(backend));
    json.field("path", r.path);
    json.field("n", g.num_vertices());
    json.field("m", g.num_edges());
    json.field("f", f);
    json.field("num_queries", num_queries);
    json.field("seconds", r.seconds);
    json.field("qps", r.qps);
    json.field("speedup_vs_single", r.qps / single_qps);
    json.field("build_ms", build_ms);
  }
}

}  // namespace
}  // namespace ftc::bench

int main(int argc, char** argv) {
  using namespace ftc;

  const std::string backend_arg = argc > 1 ? argv[1] : "all";
  const std::size_t num_queries =
      argc > 2 ? static_cast<std::size_t>(std::stoull(argv[2])) : 4000;

  const graph::VertexId n = 2048;
  const graph::EdgeId m = 3 * n;
  const unsigned f = 4;
  const graph::Graph g = graph::random_connected(n, m, 17);

  std::printf("bench_batch_throughput: n=%u m=%u f=%u, %zu queries/path "
              "(hardware threads: %u)\n",
              n, m, f, num_queries, std::thread::hardware_concurrency());

  bench::Table table({"backend", "path", "queries/s", "vs single", "build"});
  bench::JsonRecords json;
  if (backend_arg == "all") {
    for (const core::BackendKind b : core::kAllBackends) {
      bench::run_backend(b, g, f, num_queries, table, json);
    }
  } else {
    bench::run_backend(core::parse_backend(backend_arg), g, f, num_queries,
                       table, json);
  }
  table.print();
  json.print("JSON");
  return 0;
}
