// Cost of the fault-injection and degraded-serving machinery:
//
//   check ns      — one FTC_FAILPOINT() evaluation with the registry
//                   empty (the cost every syscall boundary pays in
//                   production: a relaxed load + untaken branch) and
//                   with an unrelated point armed (slow-path lookup
//                   that misses);
//   open ms       — cold strict open + prefetch of a K-shard store,
//                   clean vs with one transient EAGAIN injected into
//                   the first shard open (the retry-with-backoff
//                   path);
//   healthy µs/q  — per-query latency over a generation with one shard
//                   quarantined, queries confined to healthy ranges
//                   (degraded serving must not tax the live ranges);
//   degraded µs/q — per-query cost of the typed DegradedError throw on
//                   the quarantined range.
//
// Usage: bench_fault_injection [--smoke]
// Output: a human table, one `JSON [...]` line, and
// BENCH_fault_injection.json (checked-in baseline at the repo root;
// regenerate with scripts/bench_all.sh).
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch_engine.hpp"
#include "core/sharded_store.hpp"
#include "util/failpoint.hpp"

namespace ftc::bench {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

struct Sizes {
  VertexId n = 2048;
  EdgeId m = 6144;
  unsigned f = 8;
  unsigned k_shards = 16;
  std::size_t check_iters = 20'000'000;
  std::size_t num_queries = 4000;
};

core::SchemeConfig bench_config(unsigned f) {
  core::SchemeConfig cfg;
  cfg.backend = core::BackendKind::kCoreFtc;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  return cfg;
}

void remove_artifact(const std::string& path, unsigned k_shards) {
  for (unsigned k = 0; k < k_shards; ++k) {
    std::remove((path + ".shard" + std::to_string(k) + ".ftcs").c_str());
  }
  std::remove(path.c_str());
}

// ns per FTC_FAILPOINT() evaluation. The volatile sink keeps the loop
// from folding away; the returned errno is always 0 here.
double checked_ns(std::size_t iters) {
  volatile int sink = 0;
  Timer t;
  for (std::size_t i = 0; i < iters; ++i) {
    sink = sink + FTC_FAILPOINT("bench.disabled.site");
  }
  const double ns = t.seconds() * 1e9 / static_cast<double>(iters);
  FTC_REQUIRE(sink == 0, "disarmed failpoint fired");
  return ns;
}

}  // namespace
}  // namespace ftc::bench

int main(int argc, char** argv) {
  using namespace ftc;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  bench::Sizes sz;
  if (smoke) {
    sz = {256, 768, 4, 8, 2'000'000, 400};
  }
  std::printf("bench_fault_injection: n=%u m=%u f=%u, K=%u shards%s\n", sz.n,
              sz.m, sz.f, sz.k_shards, smoke ? " [smoke]" : "");

  // -- failpoint check overhead ------------------------------------
  const double off_ns = bench::checked_ns(sz.check_iters);
  double armed_miss_ns = 0.0;
  {
    // An unrelated armed point forces every check through the
    // registry lookup (the slow path a drill pays process-wide).
    failpoint::Scoped other("bench.unrelated.site", "count");
    armed_miss_ns = bench::checked_ns(sz.check_iters);
  }

  // -- store under test --------------------------------------------
  const graph::Graph g = graph::random_connected(sz.n, sz.m, 61);
  const auto scheme = core::make_scheme(g, bench::bench_config(sz.f));
  const std::string path = "bench_fault_injection_" +
                           std::to_string(::getpid()) + ".ftcm";
  core::save_sharded(*scheme, path, sz.k_shards);

  // Cold strict open + full prefetch, clean.
  double open_clean_ms = 0.0;
  {
    bench::Timer t;
    const auto view = core::ShardedStoreView::open(path);
    (void)view->prefetch();
    open_clean_ms = t.millis();
    FTC_REQUIRE(view->shards_open() == sz.k_shards, "prefetch skipped shards");
  }

  // Cold open with one transient EAGAIN on the first shard open: the
  // retry path (1 backoff sleep) plus the second attempt.
  core::default_retry_policy() = {3, std::chrono::microseconds(50), 2.0};
  double open_retry_ms = 0.0;
  {
    failpoint::Scoped fp("store.map.open", "nth:2:EAGAIN");
    bench::Timer t;
    const auto view = core::ShardedStoreView::open(path);
    (void)view->prefetch();
    open_retry_ms = t.millis();
    FTC_REQUIRE(view->shards_open() == sz.k_shards,
                "retry path lost a shard");
    FTC_REQUIRE(view->shards_quarantined() == 0, "transient fault stuck");
  }

  // -- degraded serving --------------------------------------------
  const std::vector<graph::EdgeId> faults = {
      3, static_cast<graph::EdgeId>(sz.m / 2)};
  core::BatchQueryEngine session(core::load_scheme(path),
                                 core::FaultSpec::edges(faults));
  const auto view = std::dynamic_pointer_cast<const core::ShardedStoreView>(
      session.scheme().store_view());
  FTC_REQUIRE(view != nullptr, "store did not load sharded");
  (void)view->prefetch();

  // Truncate the last shard behind the live mapping; the first touch
  // quarantines it.
  const auto recs = view->shards();
  const std::size_t dead = sz.k_shards - 1;
  FTC_REQUIRE(::truncate((path + ".shard" + std::to_string(dead) + ".ftcs")
                             .c_str(),
                         0) == 0,
              "cannot damage shard");
  const auto dead_begin =
      static_cast<graph::VertexId>(recs[dead].vertex_begin);
  try {
    (void)session.connected(dead_begin, 0);
    FTC_REQUIRE(false, "truncated shard answered");
  } catch (const core::DegradedError&) {
  }
  FTC_REQUIRE(view->shards_quarantined() == 1, "quarantine did not stick");

  // Healthy-range queries on the degraded generation.
  SplitMix64 rng(77);
  std::vector<core::BatchQueryEngine::Query> healthy;
  while (healthy.size() < sz.num_queries) {
    const auto s = static_cast<graph::VertexId>(rng.next_below(sz.n));
    const auto t = static_cast<graph::VertexId>(rng.next_below(sz.n));
    if (s >= dead_begin || t >= dead_begin) continue;
    healthy.push_back({s, t});
  }
  double healthy_us_per_q = 0.0;
  {
    bench::Timer t;
    const auto res = session.run_sequential(healthy);
    healthy_us_per_q = t.micros() / static_cast<double>(healthy.size());
    FTC_REQUIRE(res.size() == healthy.size(), "degraded run dropped queries");
  }

  // Typed-throw cost on the dead range.
  double degraded_us_per_q = 0.0;
  {
    const std::size_t iters = sz.num_queries / 4;
    bench::Timer t;
    std::size_t caught = 0;
    for (std::size_t i = 0; i < iters; ++i) {
      try {
        (void)session.connected(dead_begin, 0);
      } catch (const core::DegradedError&) {
        ++caught;
      }
    }
    degraded_us_per_q = t.micros() / static_cast<double>(iters);
    FTC_REQUIRE(caught == iters, "dead range answered");
  }

  bench::remove_artifact(path, sz.k_shards);

  bench::Table table({"metric", "value"});
  table.add_row({"failpoint check (off)", bench::fmt(off_ns, "%.2f ns")});
  table.add_row(
      {"failpoint check (armed miss)", bench::fmt(armed_miss_ns, "%.2f ns")});
  table.add_row({"cold open+prefetch", bench::fmt(open_clean_ms, "%.2f ms")});
  table.add_row(
      {"open+prefetch w/ retry", bench::fmt(open_retry_ms, "%.2f ms")});
  table.add_row({"healthy query (degraded gen)",
                 bench::fmt(healthy_us_per_q, "%.2f us")});
  table.add_row(
      {"degraded-range throw", bench::fmt(degraded_us_per_q, "%.2f us")});
  table.print();

  bench::JsonRecords json;
  json.add();
  json.field("n", sz.n);
  json.field("m", sz.m);
  json.field("f", sz.f);
  json.field("k_shards", sz.k_shards);
  json.field("check_iters", sz.check_iters);
  json.field("failpoint_off_ns", off_ns);
  json.field("failpoint_armed_miss_ns", armed_miss_ns);
  json.field("open_clean_ms", open_clean_ms);
  json.field("open_retry_ms", open_retry_ms);
  json.field("healthy_queries", healthy.size());
  json.field("healthy_us_per_query", healthy_us_per_q);
  json.field("degraded_us_per_query", degraded_us_per_q);
  json.field("shards_quarantined", 1);
  json.print("JSON");
  std::ofstream out("BENCH_fault_injection.json", std::ios::trunc);
  out << json.dump() << "\n";
  std::printf("wrote BENCH_fault_injection.json\n");
  return 0;
}
