// Experiment E10 (DESIGN.md): fault-tolerant compact routing simulation
// (Corollary 2). Measures delivery rate, path stretch and per-router
// table sizes as the fault count grows. Expected shape: high delivery
// rate, stretch well under the Corollary 2 bound, table bits dominated by
// the neighbor distance labels (the O~(f^2 n^(1/k))-per-entry regime).
#include "bench_util.hpp"
#include "distance/ft_routing.hpp"

namespace ftc::bench {
namespace {

using namespace ftc::distance;
using graph::EdgeId;
using graph::VertexId;

void run() {
  const VertexId n = 72;
  const graph::Graph base = graph::random_connected(n, 3 * n, 4242);
  SplitMix64 wrng(1);
  WeightedGraph g(n);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    g.add_edge(base.edge(e).u, base.edge(e).v, 1 + wrng.next_below(4));
  }
  FtDistanceConfig cfg;
  cfg.f = 4;
  cfg.k = 2;
  Timer tb;
  const auto scheme = FtDistanceScheme::build(g, cfg);
  const FtRouter router(g, scheme);
  std::printf("built distance labels + tables in %.1f ms\n", tb.millis());

  std::size_t total_table = 0, max_table = 0;
  for (VertexId v = 0; v < n; ++v) {
    total_table += router.table_bits(v);
    max_table = std::max(max_table, router.table_bits(v));
  }
  std::printf("routing tables: total %s, max per-router %s\n",
              fmt_bits(total_table).c_str(), fmt_bits(max_table).c_str());

  Table table({"|F|", "delivered", "unreachable", "stuck", "avg stretch",
               "max stretch"});
  SplitMix64 rng(7);
  for (const unsigned nf : {0u, 1u, 2u, 4u}) {
    int delivered = 0, unreachable = 0, stuck = 0, counted = 0;
    double sum_stretch = 0, max_stretch = 0;
    for (int it = 0; it < 80; ++it) {
      std::vector<EdgeId> faults;
      std::vector<DistEdgeLabel> fl;
      for (unsigned i = 0; i < nf; ++i) {
        const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
        faults.push_back(e);
        fl.push_back(scheme.edge_label(e));
      }
      const VertexId s = static_cast<VertexId>(rng.next_below(n));
      const VertexId t = static_cast<VertexId>(rng.next_below(n));
      if (s == t) continue;
      const Weight exact = exact_distance(g, s, t, faults);
      if (exact == kInfinity) {
        ++unreachable;
        continue;
      }
      const auto res = router.route(s, t, faults, fl);
      if (!res.delivered) {
        ++stuck;
        continue;
      }
      ++delivered;
      const double stretch = static_cast<double>(res.path_weight) /
                             static_cast<double>(exact);
      sum_stretch += stretch;
      max_stretch = std::max(max_stretch, stretch);
      ++counted;
    }
    table.add_row({std::to_string(nf), std::to_string(delivered),
                   std::to_string(unreachable), std::to_string(stuck),
                   fmt(sum_stretch / std::max(counted, 1), "%.2f"),
                   fmt(max_stretch, "%.2f")});
  }
  table.print();
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_routing: Corollary 2 forbidden-set routing simulation\n");
  ftc::bench::run();
  return 0;
}
