// Experiment E9 (DESIGN.md): the fault-tolerant approximate distance
// labeling (Corollary 1). Claims checked by shape:
//  * label size tracks n^(1/k): higher k -> smaller labels (and larger
//    stretch); cover overlap tracks n^(1/k);
//  * measured stretch grows ~linearly in |F| and stays below the
//    O(|F| k) analytical cap;
//  * disconnection is always detected exactly.
#include "bench_util.hpp"
#include "distance/ft_distance.hpp"

namespace ftc::bench {
namespace {

using distance::DistEdgeLabel;
using distance::FtDistanceConfig;
using distance::FtDistanceScheme;
using distance::kInfinity;
using distance::Weight;
using distance::WeightedGraph;
using graph::EdgeId;
using graph::VertexId;

WeightedGraph random_weighted(VertexId n, EdgeId m, Weight max_w,
                              std::uint64_t seed) {
  const graph::Graph g = graph::random_connected(n, m, seed);
  SplitMix64 rng(seed * 7 + 1);
  WeightedGraph wg(n);
  for (EdgeId e = 0; e < m; ++e) {
    wg.add_edge(g.edge(e).u, g.edge(e).v, 1 + rng.next_below(max_w));
  }
  return wg;
}

void label_size_vs_k() {
  std::printf("\n== distance labels vs cover parameter k (n=96, m=288) ==\n");
  const WeightedGraph g = random_weighted(96, 288, 6, 5);
  Table table({"k", "scales", "avg vertex label", "avg overlap (scale 1)",
               "avg stretch (|F|=2)", "max stretch"});
  SplitMix64 rng(77);
  for (const unsigned k : {1u, 2u, 3u}) {
    FtDistanceConfig cfg;
    cfg.f = 2;
    cfg.k = k;
    const auto scheme = FtDistanceScheme::build(g, cfg);
    double vbits = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      vbits += static_cast<double>(scheme.vertex_label(v).size_bits());
    }
    vbits /= g.num_vertices();
    double sum_stretch = 0, max_stretch = 0;
    int counted = 0;
    for (int it = 0; it < 80; ++it) {
      std::vector<EdgeId> faults;
      std::vector<DistEdgeLabel> fl;
      for (int i = 0; i < 2; ++i) {
        const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
        faults.push_back(e);
        fl.push_back(scheme.edge_label(e));
      }
      const VertexId s = static_cast<VertexId>(rng.next_below(96));
      const VertexId t = static_cast<VertexId>(rng.next_below(96));
      const Weight exact = distance::exact_distance(g, s, t, faults);
      if (exact == kInfinity || exact == 0) continue;
      const Weight est = FtDistanceScheme::approx_distance(
          scheme.vertex_label(s), scheme.vertex_label(t), fl);
      const double stretch =
          static_cast<double>(est) / static_cast<double>(exact);
      sum_stretch += stretch;
      max_stretch = std::max(max_stretch, stretch);
      ++counted;
    }
    table.add_row({std::to_string(k), std::to_string(scheme.num_scales()),
                   fmt_bits(static_cast<std::size_t>(vbits)),
                   fmt(scheme.average_cover_membership(
                           std::min(1u, scheme.num_scales() - 1)),
                       "%.2f"),
                   fmt(sum_stretch / std::max(counted, 1), "%.1f"),
                   fmt(max_stretch, "%.1f")});
  }
  table.print();
}

void stretch_vs_faults() {
  std::printf("\n== stretch vs |F| (n=96, m=288, k=2; cap = (2|F|+1)*2(k+1)*2) ==\n");
  const WeightedGraph g = random_weighted(96, 288, 6, 9);
  FtDistanceConfig cfg;
  cfg.f = 6;
  cfg.k = 2;
  const auto scheme = FtDistanceScheme::build(g, cfg);
  Table table({"|F|", "avg stretch", "max stretch", "analytical cap",
               "disconnects exact"});
  SplitMix64 rng(88);
  for (const unsigned nf : {0u, 1u, 2u, 4u, 6u}) {
    double sum = 0, mx = 0;
    int counted = 0;
    bool disc_ok = true;
    for (int it = 0; it < 60; ++it) {
      std::vector<EdgeId> faults;
      std::vector<DistEdgeLabel> fl;
      for (unsigned i = 0; i < nf; ++i) {
        const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
        faults.push_back(e);
        fl.push_back(scheme.edge_label(e));
      }
      const VertexId s = static_cast<VertexId>(rng.next_below(96));
      const VertexId t = static_cast<VertexId>(rng.next_below(96));
      const Weight exact = distance::exact_distance(g, s, t, faults);
      const Weight est = FtDistanceScheme::approx_distance(
          scheme.vertex_label(s), scheme.vertex_label(t), fl);
      if (exact == kInfinity) {
        disc_ok = disc_ok && est == kInfinity;
        continue;
      }
      if (exact == 0) continue;
      const double stretch =
          static_cast<double>(est) / static_cast<double>(exact);
      sum += stretch;
      mx = std::max(mx, stretch);
      ++counted;
    }
    const double cap = (2.0 * nf + 1) * 2 * (cfg.k + 1) * 2;
    table.add_row({std::to_string(nf), fmt(sum / std::max(counted, 1), "%.1f"),
                   fmt(mx, "%.1f"), fmt(cap, "%.0f"),
                   disc_ok ? "yes" : "NO"});
  }
  table.print();
}

}  // namespace
}  // namespace ftc::bench

int main() {
  std::printf("bench_distance: Corollary 1 fault-tolerant distance labels\n");
  ftc::bench::label_size_vs_k();
  ftc::bench::stretch_vs_faults();
  return 0;
}
