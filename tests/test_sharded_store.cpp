// ShardedLabelStore coverage.
//
// Parity: for every backend and K in {1, 4, 16}, labels served through a
// ShardedStoreView must match the unsharded container byte-for-byte
// (params / vertex / edge blobs) and answer-for-answer (edge, vertex and
// mixed FaultSpec queries, cross-checked against BFS ground truth),
// including through BatchQueryEngine sessions and a merge back to a
// byte-identical single container.
//
// Adversarial: every manifest failure mode — truncation, bad magic or
// version, shard-range overlap/gap, digest mismatch, missing or resized
// shard files, params tampering, path-traversal shard names — must
// surface as the typed StoreError, never UB (the suite also runs under
// the asan preset).
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/label_store.hpp"
#include "core/oracle.hpp"
#include "core/sharded_store.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

SchemeConfig test_config(BackendKind backend, unsigned f) {
  SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

// Unique path prefix per test under gtest's temp dir; removes the
// manifest AND its shard files on teardown.
class ManifestFile {
 public:
  explicit ManifestFile(const std::string& name)
      : path_(::testing::TempDir() + "ftc_manifest_" + name + "_" +
              std::to_string(::getpid()) + ".ftcm") {
    cleanup();
  }
  ~ManifestFile() { cleanup(); }
  const std::string& path() const { return path_; }
  std::string shard_path(unsigned k) const {
    return path_ + ".shard" + std::to_string(k) + ".ftcs";
  }

 private:
  void cleanup() {
    std::remove(path_.c_str());
    for (unsigned k = 0; k < 64; ++k) {
      std::remove(shard_path(k).c_str());
    }
  }
  std::string path_;
};

class StoreFile {
 public:
  explicit StoreFile(const std::string& name)
      : path_(::testing::TempDir() + "ftc_store_" + name + "_" +
              std::to_string(::getpid()) + ".ftcs") {
    std::remove(path_.c_str());
  }
  ~StoreFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// After editing manifest header fields, restore the header checksum so
// the edit (not the checksum guard) is what open() trips over.
void fix_manifest_header_checksum(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), store::kManifestHeaderBytes);
  const std::uint64_t sum =
      store::fnv1a(std::span<const std::uint8_t>(bytes.data(), 88));
  for (int i = 0; i < 8; ++i) bytes[88 + i] = (sum >> (8 * i)) & 0xff;
}

bool spans_equal(std::span<const std::uint8_t> a,
                 std::span<const std::uint8_t> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

class ShardedStoreParity : public ::testing::TestWithParam<BackendKind> {};

TEST_P(ShardedStoreParity, BlobsAndAnswersMatchUnshardedAcrossShardCounts) {
  const unsigned f = 4;
  const Graph g = graph::random_connected(48, 120, 13);
  const auto scheme = make_scheme(g, test_config(GetParam(), f));
  StoreFile flat("parity_flat_" + std::to_string(static_cast<int>(GetParam())));
  scheme->save(flat.path());
  const auto flat_view = LabelStoreView::open(flat.path());

  for (const unsigned k_shards : {1u, 4u, 16u}) {
    ManifestFile manifest("parity_k" + std::to_string(k_shards) + "_" +
                          std::to_string(static_cast<int>(GetParam())));
    save_sharded(*scheme, manifest.path(), k_shards);
    const auto view = ShardedStoreView::open(manifest.path());

    // Aggregate info matches the single container.
    EXPECT_EQ(view->info().backend, GetParam());
    EXPECT_EQ(view->info().num_shards, k_shards);
    EXPECT_EQ(view->info().num_vertices, flat_view->info().num_vertices);
    EXPECT_EQ(view->info().num_edges, flat_view->info().num_edges);
    EXPECT_EQ(view->info().vertex_label_bits,
              flat_view->info().vertex_label_bits);
    EXPECT_EQ(view->info().edge_label_bits, flat_view->info().edge_label_bits);
    EXPECT_TRUE(view->info().has_adjacency);

    // Byte-for-byte parity of every label blob against the unsharded
    // container — the sharded layout must be a pure re-arrangement.
    EXPECT_TRUE(spans_equal(view->params_blob(), flat_view->params_blob()));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_TRUE(spans_equal(view->vertex_blob(v), flat_view->vertex_blob(v)))
          << "k=" << k_shards << " v=" << v;
    }
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_TRUE(spans_equal(view->edge_blob(e), flat_view->edge_blob(e)))
          << "k=" << k_shards << " e=" << e;
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(view->adjacency_degree(v), flat_view->adjacency_degree(v));
    }

    // Query parity incl. vertex and mixed faults, vs BFS ground truth.
    for (const LoadMode mode : {LoadMode::kMmap, LoadMode::kMaterialize}) {
      const auto loaded = load_scheme(view, mode);
      SplitMix64 rng(500 + k_shards);
      for (int it = 0; it < 25; ++it) {
        std::vector<EdgeId> edge_faults;
        for (unsigned i = 0; i < rng.next_below(3u); ++i) {
          edge_faults.push_back(
              static_cast<EdgeId>(rng.next_below(g.num_edges())));
        }
        std::vector<VertexId> vertex_faults;
        if (rng.next_below(2u) == 0) {
          vertex_faults.push_back(
              static_cast<VertexId>(rng.next_below(g.num_vertices())));
        }
        const auto spec = FaultSpec::of(edge_faults, vertex_faults);
        const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
        const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
        const bool expected =
            graph::connected_avoiding(g, s, t, edge_faults, vertex_faults);
        EXPECT_EQ(loaded->connected(s, t, spec), expected)
            << "k=" << k_shards << " mode=" << static_cast<int>(mode)
            << " it=" << it;
        EXPECT_EQ(scheme->connected(s, t, spec), expected) << "it=" << it;
      }
    }
  }
}

TEST_P(ShardedStoreParity, BatchEngineOverManifestMatchesInMemory) {
  const Graph g = graph::grid(7, 9);
  const auto scheme = make_scheme(g, test_config(GetParam(), 3));
  ManifestFile manifest("batch_" + std::to_string(static_cast<int>(GetParam())));
  save_sharded(*scheme, manifest.path(), 4);

  SplitMix64 rng(7);
  std::vector<EdgeId> faults;
  for (int i = 0; i < 3; ++i) {
    faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
  }
  std::vector<BatchQueryEngine::Query> queries;
  for (int i = 0; i < 2000; ++i) {
    queries.push_back({static_cast<VertexId>(rng.next_below(g.num_vertices())),
                       static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }
  BatchQueryEngine in_memory(*scheme, FaultSpec::edges(faults));
  BatchQueryEngine from_manifest(load_scheme(manifest.path()),
                                 FaultSpec::edges(faults));
  EXPECT_EQ(from_manifest.run_parallel(queries, 4),
            in_memory.run_sequential(queries));
}

TEST_P(ShardedStoreParity, MergeBackToContainerIsByteIdentical) {
  const Graph g = graph::barbell(7, 3);
  const auto scheme = make_scheme(g, test_config(GetParam(), 2));
  StoreFile flat("merge_flat_" + std::to_string(static_cast<int>(GetParam())));
  StoreFile merged("merge_out_" + std::to_string(static_cast<int>(GetParam())));
  ManifestFile manifest("merge_" + std::to_string(static_cast<int>(GetParam())));
  scheme->save(flat.path());
  save_sharded(*scheme, manifest.path(), 4);
  // A scheme loaded from the manifest re-saves as a single container
  // byte-identical to the direct save (adjacency included).
  load_scheme(manifest.path())->save(merged.path());
  EXPECT_EQ(read_file(flat.path()), read_file(merged.path()));
}

TEST_P(ShardedStoreParity, OracleFromManifestServesMixedFaults) {
  const Graph g = graph::barbell(8, 3);
  const auto scheme = make_scheme(g, test_config(GetParam(), 10));
  ManifestFile manifest("oracle_" + std::to_string(static_cast<int>(GetParam())));
  save_sharded(*scheme, manifest.path(), 4);
  const ConnectivityOracle oracle =
      ConnectivityOracle::from_store(manifest.path());
  EXPECT_TRUE(oracle.supports_vertex_faults());
  SplitMix64 rng(5);
  for (int it = 0; it < 20; ++it) {
    std::vector<EdgeId> edge_faults;
    for (unsigned i = 0; i < rng.next_below(3u); ++i) {
      edge_faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    std::vector<VertexId> vertex_faults;
    if (rng.next_below(2u) == 0) {
      vertex_faults.push_back(
          static_cast<VertexId>(rng.next_below(g.num_vertices())));
    }
    const auto s = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    EXPECT_EQ(
        oracle.connected(s, t, FaultSpec::of(edge_faults, vertex_faults)),
        graph::connected_avoiding(g, s, t, edge_faults, vertex_faults))
        << "it=" << it;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ShardedStoreParity,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           std::string name = backend_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// More shards than vertices: the surplus shards hold empty ranges and
// everything still routes correctly.
TEST(ShardedStore, MoreShardsThanVertices) {
  const Graph g = graph::cycle(10);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 2));
  ManifestFile manifest("tiny");
  save_sharded(*scheme, manifest.path(), 16);
  const auto view = ShardedStoreView::open(manifest.path());
  EXPECT_EQ(view->info().num_shards, 16u);
  const auto loaded = load_scheme(view);
  const std::vector<EdgeId> faults{0, 5};
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    EXPECT_EQ(loaded->connected(s, (s + 3) % g.num_vertices(),
                                FaultSpec::edges(faults)),
              graph::connected_avoiding(g, s, (s + 3) % g.num_vertices(),
                                        faults));
  }
}

// Shards mmap lazily: queries that only touch one shard's ranges open
// only that shard (plus the shard(s) owning the fault-edge labels).
TEST(ShardedStore, ShardsOpenLazily) {
  const Graph g = graph::grid(8, 8);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 2));
  ManifestFile manifest("lazy");
  save_sharded(*scheme, manifest.path(), 8);
  const auto view = ShardedStoreView::open(manifest.path());
  EXPECT_EQ(view->shards_open(), 0u);
  (void)view->vertex_blob(0);
  EXPECT_EQ(view->shards_open(), 1u);
  (void)view->vertex_blob(0);
  EXPECT_EQ(view->shards_open(), 1u);  // cached, not reopened
  (void)view->edge_blob(g.num_edges() - 1);
  EXPECT_EQ(view->shards_open(), 2u);
}

// ------------------------------------------------------------------
// Prefetch: the parallel warm-up path and the flat route table it
// publishes must compose with lazy opens, concurrent queries and
// corrupt shards exactly like the lazy path does.

// prefetch() maps every shard, publishes the route table, and the blobs
// served through the resolved routes are byte-identical to the
// unsharded container.
TEST(ShardedStorePrefetch, OpensAllShardsResolvesRoutesAndKeepsParity) {
  const Graph g = graph::random_connected(40, 100, 21);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  StoreFile flat("prefetch_flat");
  scheme->save(flat.path());
  const auto flat_view = LabelStoreView::open(flat.path());
  ManifestFile manifest("prefetch");
  save_sharded(*scheme, manifest.path(), 8);

  const auto view = ShardedStoreView::open(manifest.path());
  EXPECT_EQ(view->routes(), nullptr);
  const store::PrefetchStats stats = view->prefetch(4);
  EXPECT_EQ(stats.shards_opened, 8u);
  EXPECT_EQ(stats.shard_us.size(), 8u);
  EXPECT_GT(stats.threads, 0u);
  EXPECT_EQ(view->shards_open(), 8u);
  ASSERT_NE(view->routes(), nullptr);
  EXPECT_EQ(view->routes()->num_vertices, g.num_vertices());
  EXPECT_EQ(view->routes()->num_edges, g.num_edges());

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(spans_equal(view->vertex_blob(v), flat_view->vertex_blob(v)));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_TRUE(spans_equal(view->edge_blob(e), flat_view->edge_blob(e)));
  }

  // Idempotent: a second prefetch opens nothing and changes nothing.
  const store::PrefetchStats again = view->prefetch();
  EXPECT_EQ(again.shards_opened, 0u);
  EXPECT_EQ(view->shards_open(), 8u);
}

// The single-container view resolves its routes at open; prefetch is a
// no-op there but routes() is live immediately.
TEST(ShardedStorePrefetch, FlatContainerRoutesAvailableAtOpen) {
  const Graph g = graph::cycle(16);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 2));
  StoreFile flat("routes_flat");
  scheme->save(flat.path());
  const auto view = LabelStoreView::open(flat.path());
  ASSERT_NE(view->routes(), nullptr);
  EXPECT_EQ(view->routes()->num_vertices, g.num_vertices());
  EXPECT_EQ(view->routes()->num_edges, g.num_edges());
  (void)view->prefetch(3);  // no-op, must not throw
}

// Prefetch racing lazy first-touch opens and concurrent queries: every
// read must come back correct and every shard end up mapped exactly
// once. (This is the test the tsan preset is aimed at.)
TEST(ShardedStorePrefetch, RacesLazyOpensAndConcurrentQueries) {
  const Graph g = graph::random_connected(64, 160, 33);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 2));
  StoreFile flat("race_flat");
  scheme->save(flat.path());
  const auto flat_view = LabelStoreView::open(flat.path());
  ManifestFile manifest("race");
  save_sharded(*scheme, manifest.path(), 16);

  for (int round = 0; round < 4; ++round) {
    const auto view = ShardedStoreView::open(manifest.path());
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    // Two prefetchers racing each other...
    for (int p = 0; p < 2; ++p) {
      threads.emplace_back([&] { (void)view->prefetch(4); });
    }
    // ...while readers drive lazy first-touch opens across all shards.
    for (int r = 0; r < 3; ++r) {
      threads.emplace_back([&, r] {
        for (VertexId v = r; v < g.num_vertices(); v += 3) {
          if (!spans_equal(view->vertex_blob(v), flat_view->vertex_blob(v))) {
            mismatches.fetch_add(1);
          }
        }
        for (EdgeId e = r; e < g.num_edges(); e += 3) {
          if (!spans_equal(view->edge_blob(e), flat_view->edge_blob(e))) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(view->shards_open(), 16u);
    EXPECT_NE(view->routes(), nullptr);
  }
}

// A corrupt shard fails prefetch with the SAME typed error the lazy
// open throws, and the healthy shards keep serving.
TEST(ShardedStorePrefetch, CorruptShardThrowsTypedStoreError) {
  ManifestFile manifest("prefetch_corrupt");
  const Graph g = graph::random_connected(24, 60, 9);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 2));
  save_sharded(*scheme, manifest.path(), 4);
  // Flip one payload byte of shard 2 and re-patch nothing: its digest no
  // longer matches the manifest record.
  auto shard = read_file(manifest.shard_path(2));
  shard.back() ^= 0x01;
  write_file(manifest.shard_path(2), shard);

  const auto view = ShardedStoreView::open(manifest.path());
  EXPECT_THROW((void)view->prefetch(4), StoreError);
  // The failure is sticky for the bad shard, not for the store: healthy
  // shards were published and still serve, the route table never
  // resolves, and re-touching the bad shard throws again.
  EXPECT_EQ(view->routes(), nullptr);
  EXPECT_LT(view->shards_open(), 4u);
  (void)view->vertex_blob(0);  // shard 0 serves
  EXPECT_THROW((void)view->edge_blob(g.num_edges() - 25), StoreError);
}

// ------------------------------------------------------------------
// Adversarial manifest corpus. Structural validation must hold with the
// payload-checksum pass disabled, mirroring the container corpus.

class ShardedStoreAdversarial : public ::testing::Test {
 protected:
  // A small 4-shard store; returns the manifest bytes.
  std::vector<std::uint8_t> make_manifest(ManifestFile& manifest) {
    const Graph g = graph::random_connected(24, 60, 9);
    const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 2));
    save_sharded(*scheme, manifest.path(), 4);
    return read_file(manifest.path());
  }

  // Offset of shard record k inside the manifest bytes (the records
  // follow the 8-aligned params blob; each is 48 bytes of ranges/digest
  // plus the length-prefixed name padded to 8).
  std::size_t record_offset(const std::vector<std::uint8_t>& bytes,
                            const ManifestFile& manifest, unsigned k) {
    const auto view = [&] {
      // Parse params size from the (valid) header copy we were given.
      std::uint64_t params_size = 0;
      for (int i = 0; i < 8; ++i) {
        params_size |= std::uint64_t{bytes[40 + i]} << (8 * i);
      }
      return store::kManifestHeaderBytes + ((params_size + 7) & ~7ull);
    }();
    std::size_t off = view;
    for (unsigned i = 0; i < k; ++i) {
      const std::string name = shard_name(manifest, i);
      off += 48 + ((4 + name.size() + 7) & ~std::size_t{7});
    }
    return off;
  }

  static std::string shard_name(const ManifestFile& manifest, unsigned k) {
    const std::string& p = manifest.path();
    const std::size_t slash = p.find_last_of('/');
    const std::string base = slash == std::string::npos ? p : p.substr(slash + 1);
    return base + ".shard" + std::to_string(k) + ".ftcs";
  }
};

TEST_F(ShardedStoreAdversarial, TruncatedManifestThrows) {
  ManifestFile manifest("trunc");
  const auto bytes = make_manifest(manifest);
  const std::size_t cuts[] = {0,
                              1,
                              16,
                              store::kManifestHeaderBytes - 1,
                              store::kManifestHeaderBytes,
                              store::kManifestHeaderBytes + 3,
                              bytes.size() / 2,
                              bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    write_file(manifest.path(),
               std::span<const std::uint8_t>(bytes.data(), cut));
    EXPECT_THROW((void)ShardedStoreView::open(manifest.path()), StoreError)
        << "truncated to " << cut;
    EXPECT_THROW((void)ShardedStoreView::open(manifest.path(), false),
                 StoreError)
        << "truncated to " << cut << " (no verify)";
  }
}

TEST_F(ShardedStoreAdversarial, BadMagicAndVersionThrow) {
  ManifestFile manifest("magic");
  auto bytes = make_manifest(manifest);
  auto corrupt = bytes;
  corrupt[0] ^= 0xff;
  write_file(manifest.path(), corrupt);
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path()), StoreError);
  // open_store_view must reject it too (neither magic matches).
  EXPECT_THROW((void)open_store_view(manifest.path()), StoreError);

  corrupt = bytes;
  corrupt[8] = 99;  // manifest version field
  fix_manifest_header_checksum(corrupt);
  write_file(manifest.path(), corrupt);
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path(), false),
               StoreError);

  corrupt = bytes;
  corrupt[13] |= 0x80;  // undefined flag bit
  fix_manifest_header_checksum(corrupt);
  write_file(manifest.path(), corrupt);
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path(), false),
               StoreError);
}

TEST_F(ShardedStoreAdversarial, ShardRangeOverlapAndGapThrow) {
  ManifestFile manifest("ranges");
  const auto bytes = make_manifest(manifest);
  // Record 1's vertex_begin (record offset + 0): bump it by one — now it
  // no longer abuts record 0's vertex_end (a gap; bumping down overlaps).
  for (const int delta : {+1, -1}) {
    auto corrupt = bytes;
    const std::size_t off = record_offset(corrupt, manifest, 1);
    corrupt[off] = static_cast<std::uint8_t>(corrupt[off] + delta);
    write_file(manifest.path(), corrupt);
    EXPECT_THROW((void)ShardedStoreView::open(manifest.path(), false),
                 StoreError)
        << "delta=" << delta;
  }
  // Last record's edge_end (offset 24 in the record) shrunk: the ranges
  // no longer cover [0, m).
  auto corrupt = bytes;
  const std::size_t off = record_offset(corrupt, manifest, 3) + 24;
  corrupt[off] -= 1;
  write_file(manifest.path(), corrupt);
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path(), false),
               StoreError);
}

TEST_F(ShardedStoreAdversarial, DigestMismatchThrowsAtFirstTouch) {
  ManifestFile manifest("digest");
  auto bytes = make_manifest(manifest);
  // Record 0's payload digest (offset 40 in the record).
  bytes[record_offset(bytes, manifest, 0) + 40] ^= 0x01;
  write_file(manifest.path(), bytes);
  // Structure is fine, so open (without the payload pass) succeeds; the
  // lazy shard open is what must catch the stale digest.
  const auto view = ShardedStoreView::open(manifest.path(), false);
  EXPECT_EQ(view->shards_open(), 0u);
  EXPECT_THROW((void)view->vertex_blob(0), StoreError);
}

TEST_F(ShardedStoreAdversarial, SwappedShardFilesThrow) {
  ManifestFile manifest("swapped");
  (void)make_manifest(manifest);
  // Shards 0 and 2 trade places: sizes match the manifest, digests don't.
  const auto shard0 = read_file(manifest.shard_path(0));
  const auto shard2 = read_file(manifest.shard_path(2));
  ASSERT_EQ(shard0.size(), shard2.size());
  write_file(manifest.shard_path(0), shard2);
  write_file(manifest.shard_path(2), shard0);
  const auto view = ShardedStoreView::open(manifest.path(), false);
  EXPECT_THROW((void)view->vertex_blob(0), StoreError);
}

TEST_F(ShardedStoreAdversarial, MissingShardFileThrowsAtOpen) {
  ManifestFile manifest("missing");
  (void)make_manifest(manifest);
  std::remove(manifest.shard_path(2).c_str());
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path()), StoreError);
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path(), false),
               StoreError);
  EXPECT_THROW((void)load_scheme(manifest.path()), StoreError);
}

TEST_F(ShardedStoreAdversarial, ResizedShardFileThrowsAtOpen) {
  ManifestFile manifest("resized");
  (void)make_manifest(manifest);
  auto shard = read_file(manifest.shard_path(1));
  shard.pop_back();
  write_file(manifest.shard_path(1), shard);
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path(), false),
               StoreError);
}

TEST_F(ShardedStoreAdversarial, TamperedParamsBlobThrows) {
  ManifestFile manifest("params");
  auto bytes = make_manifest(manifest);
  bytes[store::kManifestHeaderBytes] ^= 0x01;  // first params byte
  write_file(manifest.path(), bytes);
  // Hash check fires even with the payload-checksum pass disabled.
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path(), false),
               StoreError);
}

TEST_F(ShardedStoreAdversarial, PathTraversalShardNameThrows) {
  ManifestFile manifest("traverse");
  auto bytes = make_manifest(manifest);
  // Overwrite the first bytes of record 0's name with "../" — same
  // length, but now names a parent-directory path.
  const std::size_t name_off = record_offset(bytes, manifest, 0) + 52;
  bytes[name_off] = '.';
  bytes[name_off + 1] = '.';
  bytes[name_off + 2] = '/';
  write_file(manifest.path(), bytes);
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path(), false),
               StoreError);
}

TEST_F(ShardedStoreAdversarial, PayloadChecksumGuardsEverythingElse) {
  ManifestFile manifest("paysum");
  auto bytes = make_manifest(manifest);
  // Any payload flip must fail the default (verifying) open.
  bytes[bytes.size() - 1] ^= 0x10;
  write_file(manifest.path(), bytes);
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path()), StoreError);
}

TEST_F(ShardedStoreAdversarial, EpochZeroManifestThrows) {
  ManifestFile manifest("epoch0");
  auto bytes = make_manifest(manifest);
  for (int i = 0; i < 8; ++i) bytes[64 + i] = 0;  // epoch field
  fix_manifest_header_checksum(bytes);
  write_file(manifest.path(), bytes);
  EXPECT_THROW((void)ShardedStoreView::open(manifest.path(), false),
               StoreError);
}

// ------------------------------------------------------------------
// save_sharded failure / shrink hygiene, and the content-addressed
// delta-push + shard-adoption path.

// Delegating wrapper that serializes exactly like `inner` except for
// one poisoned edge, whose label either throws mid-save (failure
// hygiene) or flips its bytes (a one-shard content change for the delta
// tests). Never used for queries.
class EdgePatchScheme : public ConnectivityScheme {
 public:
  enum class Mode { kThrow, kFlip };
  EdgePatchScheme(const ConnectivityScheme& inner, EdgeId poison, Mode mode)
      : inner_(inner), poison_(poison), mode_(mode) {}

  BackendKind backend() const override { return inner_.backend(); }
  VertexId num_vertices() const override { return inner_.num_vertices(); }
  EdgeId num_edges() const override { return inner_.num_edges(); }
  std::size_t vertex_label_bits() const override {
    return inner_.vertex_label_bits();
  }
  std::size_t edge_label_bits() const override {
    return inner_.edge_label_bits();
  }
  const AdjacencyProvider* adjacency() const override {
    return inner_.adjacency();
  }
  void serialize_params(store::ByteWriter& out) const override {
    inner_.serialize_params(out);
  }
  void serialize_vertex_label(VertexId v,
                              store::ByteWriter& out) const override {
    inner_.serialize_vertex_label(v, out);
  }
  void serialize_edge_label(EdgeId e, store::ByteWriter& out) const override {
    if (e != poison_) {
      inner_.serialize_edge_label(e, out);
      return;
    }
    if (mode_ == Mode::kThrow) {
      throw std::runtime_error("poisoned edge label");
    }
    store::ByteWriter tmp;
    inner_.serialize_edge_label(e, tmp);
    std::vector<std::uint8_t> flipped(tmp.view().begin(), tmp.view().end());
    for (std::uint8_t& b : flipped) b ^= 0xff;
    out.bytes(flipped);
  }
  std::unique_ptr<Workspace> make_workspace() const override {
    throw std::logic_error("EdgePatchScheme does not serve queries");
  }

 protected:
  std::unique_ptr<FaultSet> prepare_edge_faults(
      std::span<const EdgeId>) const override {
    throw std::logic_error("EdgePatchScheme does not serve queries");
  }
  bool query_edges(VertexId, VertexId, const FaultSet&, Workspace&,
                   const QueryOptions&) const override {
    throw std::logic_error("EdgePatchScheme does not serve queries");
  }

 private:
  const ConnectivityScheme& inner_;
  EdgeId poison_;
  Mode mode_;
};

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

TEST(ShardedStoreHygiene, MidSaveThrowLeavesNoOrphanShards) {
  const Graph g = graph::random_connected(48, 120, 13);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  ManifestFile manifest("midthrow");
  // An edge in the LAST shard's range, so earlier shard files have
  // already been written when the save aborts.
  const EdgePatchScheme poisoned(*scheme, g.num_edges() - 1,
                                 EdgePatchScheme::Mode::kThrow);
  EXPECT_THROW(save_sharded(poisoned, manifest.path(), 4),
               std::runtime_error);
  EXPECT_FALSE(file_exists(manifest.path()));
  for (unsigned k = 0; k < 8; ++k) {
    EXPECT_FALSE(file_exists(manifest.shard_path(k))) << "shard " << k;
  }
  // The path is clean: a real save afterwards succeeds and serves.
  save_sharded(*scheme, manifest.path(), 4);
  EXPECT_NE(ShardedStoreView::open(manifest.path()), nullptr);
}

TEST(ShardedStoreHygiene, MidSaveThrowKeepsPriorGenerationIntact) {
  const Graph g = graph::random_connected(32, 80, 17);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  ManifestFile manifest("midthrow_prior");
  save_sharded(*scheme, manifest.path(), 4);
  const auto manifest_before = read_file(manifest.path());
  const auto shard0_before = read_file(manifest.shard_path(0));

  const EdgePatchScheme poisoned(*scheme, g.num_edges() - 1,
                                 EdgePatchScheme::Mode::kThrow);
  EXPECT_THROW(save_sharded(poisoned, manifest.path(), 4),
               std::runtime_error);
  // A failed re-save must not tear down the generation already on disk
  // (the build failed before anything was published over it).
  EXPECT_EQ(read_file(manifest.path()), manifest_before);
  EXPECT_EQ(read_file(manifest.shard_path(0)), shard0_before);
  EXPECT_NE(ShardedStoreView::open(manifest.path()), nullptr);
}

TEST(ShardedStoreHygiene, ResaveWithFewerShardsUnlinksStaleFiles) {
  const Graph g = graph::random_connected(40, 100, 19);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  ManifestFile manifest("shrink");
  save_sharded(*scheme, manifest.path(), 8);
  for (unsigned k = 0; k < 8; ++k) {
    ASSERT_TRUE(file_exists(manifest.shard_path(k))) << "shard " << k;
  }
  save_sharded(*scheme, manifest.path(), 3);
  for (unsigned k = 0; k < 3; ++k) {
    EXPECT_TRUE(file_exists(manifest.shard_path(k))) << "shard " << k;
  }
  // Stale K >= 3 files would shadow the live store (and resurrect on a
  // later K-grow); the re-save must have removed them.
  for (unsigned k = 3; k < 8; ++k) {
    EXPECT_FALSE(file_exists(manifest.shard_path(k))) << "shard " << k;
  }
  const auto view = ShardedStoreView::open(manifest.path());
  EXPECT_EQ(view->info().num_shards, 3u);
  EXPECT_EQ(view->prefetch(2).shards_opened, 3u);
}

class DeltaFiles {
 public:
  explicit DeltaFiles(const std::string& name)
      : parent_(name + "_parent"), child_(name + "_child") {}
  ManifestFile& parent() { return parent_; }
  ManifestFile& child() { return child_; }

 private:
  ManifestFile parent_;
  ManifestFile child_;
};

TEST(ShardedStoreDelta, ZeroDeltaPushReusesEveryShardByHardLink) {
  const Graph g = graph::random_connected(48, 120, 23);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  DeltaFiles files("zerodelta");
  save_sharded(*scheme, files.parent().path(), 4);
  const auto parent_view = ShardedStoreView::open(files.parent().path());
  EXPECT_EQ(parent_view->info().manifest_epoch, 1u);
  EXPECT_EQ(parent_view->info().parent_digest, 0u);

  const DeltaPushStats stats =
      save_sharded_delta(*scheme, files.child().path(), files.parent().path());
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(stats.shards_total, 4u);
  EXPECT_EQ(stats.shards_written, 0u);
  EXPECT_EQ(stats.shards_reused, 4u);
  EXPECT_EQ(stats.bytes_written, 0u);
  EXPECT_GT(stats.bytes_reused, 0u);
  EXPECT_GT(stats.manifest_bytes, 0u);

  // Reuse is by hard link, not copy: same inode, link count >= 2.
  struct stat parent_st{};
  struct stat child_st{};
  ASSERT_EQ(::stat(files.parent().shard_path(0).c_str(), &parent_st), 0);
  ASSERT_EQ(::stat(files.child().shard_path(0).c_str(), &child_st), 0);
  EXPECT_EQ(parent_st.st_ino, child_st.st_ino);
  EXPECT_GE(child_st.st_nlink, 2u);

  // The child verifies clean and chains to the parent generation.
  const auto child_view = ShardedStoreView::open(files.child().path());
  EXPECT_EQ(child_view->info().manifest_epoch, 2u);
  EXPECT_EQ(child_view->info().parent_digest,
            parent_view->info().payload_checksum);
}

TEST(ShardedStoreDelta, SingleChangedShardWritesExactlyOneShard) {
  const Graph g = graph::random_connected(48, 120, 29);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  DeltaFiles files("onechanged");
  save_sharded(*scheme, files.parent().path(), 4);

  // Edge 0 lives in shard 0's range; flipping its label bytes must
  // rewrite shard 0 and ONLY shard 0.
  const EdgePatchScheme patched(*scheme, 0, EdgePatchScheme::Mode::kFlip);
  const DeltaPushStats stats = save_sharded_delta(
      patched, files.child().path(), files.parent().path());
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(stats.shards_written, 1u);
  EXPECT_EQ(stats.shards_reused, 3u);
  EXPECT_GT(stats.bytes_written, 0u);
  // O(1 shard), not O(store): the rewrite is far below the reused bytes
  // of the three untouched shards.
  EXPECT_LT(stats.bytes_written, stats.bytes_reused);

  struct stat parent_st{};
  struct stat child_st{};
  ASSERT_EQ(::stat(files.parent().shard_path(0).c_str(), &parent_st), 0);
  ASSERT_EQ(::stat(files.child().shard_path(0).c_str(), &child_st), 0);
  EXPECT_NE(parent_st.st_ino, child_st.st_ino);  // rewritten, not linked
  ASSERT_EQ(::stat(files.parent().shard_path(1).c_str(), &parent_st), 0);
  ASSERT_EQ(::stat(files.child().shard_path(1).c_str(), &child_st), 0);
  EXPECT_EQ(parent_st.st_ino, child_st.st_ino);  // linked, not rewritten

  // Digest bookkeeping is consistent: the child verifies clean.
  EXPECT_NE(ShardedStoreView::open(files.child().path()), nullptr);
}

TEST(ShardedStoreDelta, PushOverParentPathKeepsUnchangedShardsInPlace) {
  const Graph g = graph::random_connected(40, 100, 31);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  ManifestFile manifest("inplace");
  save_sharded(*scheme, manifest.path(), 4);
  struct stat before{};
  ASSERT_EQ(::stat(manifest.shard_path(2).c_str(), &before), 0);

  const DeltaPushStats stats =
      save_sharded_delta(*scheme, manifest.path(), manifest.path());
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(stats.shards_reused, 4u);
  EXPECT_EQ(stats.bytes_written, 0u);
  struct stat after{};
  ASSERT_EQ(::stat(manifest.shard_path(2).c_str(), &after), 0);
  EXPECT_EQ(before.st_ino, after.st_ino);  // untouched in place
  const auto view = ShardedStoreView::open(manifest.path());
  EXPECT_EQ(view->info().manifest_epoch, 2u);
}

TEST(ShardedStoreDelta, ChainedPushesIncrementEpochAndLinkDigests) {
  const Graph g = graph::random_connected(40, 100, 37);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  ManifestFile a("chain_a");
  ManifestFile b("chain_b");
  ManifestFile c("chain_c");
  save_sharded(*scheme, a.path(), 4);
  // num_shards = 0 inherits the parent's K.
  EXPECT_EQ(save_sharded_delta(*scheme, b.path(), a.path()).epoch, 2u);
  EXPECT_EQ(save_sharded_delta(*scheme, c.path(), b.path()).epoch, 3u);
  const auto va = ShardedStoreView::open(a.path());
  const auto vb = ShardedStoreView::open(b.path());
  const auto vc = ShardedStoreView::open(c.path());
  EXPECT_EQ(vb->info().num_shards, 4u);
  EXPECT_EQ(vb->info().parent_digest, va->info().payload_checksum);
  EXPECT_EQ(vc->info().parent_digest, vb->info().payload_checksum);
}

TEST(ShardedStoreDelta, AdoptionSharesUnchangedShardMaps) {
  const Graph g = graph::random_connected(48, 120, 41);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  DeltaFiles files("adopt");
  save_sharded(*scheme, files.parent().path(), 4);
  const auto parent_view = ShardedStoreView::open(files.parent().path());
  (void)parent_view->prefetch(2);  // all four shards mapped

  // One changed shard: adoption must carry the three unchanged maps
  // over and leave exactly the changed one for prefetch to open.
  const EdgePatchScheme patched(*scheme, 0, EdgePatchScheme::Mode::kFlip);
  save_sharded_delta(patched, files.child().path(), files.parent().path());
  const auto child_view = ShardedStoreView::open(
      files.child().path(), /*verify_checksum=*/true, parent_view);
  EXPECT_EQ(child_view->shards_adopted(), 3u);
  EXPECT_EQ(child_view->shards_open(), 3u);
  const store::PrefetchStats stats = child_view->prefetch(2);
  EXPECT_EQ(stats.shards_adopted, 3u);
  EXPECT_EQ(stats.shards_opened, 1u);
  EXPECT_EQ(child_view->shards_open(), 4u);

  // Unchanged labels serve byte-identically through the adopted maps
  // (skip shard 0's edge range — its labels were deliberately flipped).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(
        spans_equal(child_view->vertex_blob(v), parent_view->vertex_blob(v)));
  }
}

TEST(ShardedStoreDelta, ZeroDeltaAdoptionResolvesRoutesImmediately) {
  const Graph g = graph::random_connected(40, 100, 43);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  DeltaFiles files("adoptall");
  save_sharded(*scheme, files.parent().path(), 4);
  const auto parent_view = ShardedStoreView::open(files.parent().path());
  (void)parent_view->prefetch(2);

  save_sharded_delta(*scheme, files.child().path(), files.parent().path());
  const auto child_view = ShardedStoreView::open(
      files.child().path(), /*verify_checksum=*/true, parent_view);
  // Everything adopted: the view is fully warm at open — routes already
  // resolved, a prefetch has nothing left to map.
  EXPECT_EQ(child_view->shards_adopted(), 4u);
  EXPECT_NE(child_view->routes(), nullptr);
  EXPECT_EQ(child_view->prefetch(2).shards_opened, 0u);
}

TEST(ShardedStoreDelta, AdoptionFromColdParentAdoptsNothing) {
  const Graph g = graph::random_connected(40, 100, 47);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  DeltaFiles files("coldparent");
  save_sharded(*scheme, files.parent().path(), 4);
  const auto parent_view = ShardedStoreView::open(files.parent().path());
  // Parent never touched: no maps to share, so adoption is a no-op and
  // the child serves through ordinary lazy opens.
  save_sharded_delta(*scheme, files.child().path(), files.parent().path());
  const auto child_view = ShardedStoreView::open(
      files.child().path(), /*verify_checksum=*/true, parent_view);
  EXPECT_EQ(child_view->shards_adopted(), 0u);
  EXPECT_EQ(child_view->prefetch(2).shards_opened, 4u);
}

}  // namespace
}  // namespace ftc::core
