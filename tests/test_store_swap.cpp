// Epoch-based zero-downtime store swapping in BatchQueryEngine.
//
// The contract under test: swap_store() installs a new label generation
// without draining the session — queries already in flight finish on
// their pinned epoch, new queries start on the new one, every answer is
// consistent with EXACTLY one epoch's labels (never torn across two),
// and the old generation (including its mmapped store) is released once
// its last pin drops. The stress case drives a concurrent batch-query
// session across repeated swaps between two different label generations
// whose ground truths provably differ, from sequential, parallel and
// single-query paths, partly under the asan preset.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/connectivity_scheme.hpp"
#include "core/journal.hpp"
#include "core/label_store.hpp"
#include "core/sharded_store.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace ftc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

SchemeConfig test_config(BackendKind backend, unsigned f) {
  SchemeConfig cfg;
  cfg.backend = backend;
  cfg.set_f(f);
  cfg.ftc.k_scale = 2.0;
  cfg.cycle.scale = 3.0;
  cfg.agm.scale = 1.5;
  return cfg;
}

// Smallest single-edge fault set whose BFS ground truth differs between
// the two graphs over the given queries — guaranteeing the two label
// generations are distinguishable by the test workload.
std::vector<EdgeId> find_distinguishing_faults(
    const Graph& g_a, const Graph& g_b,
    const std::vector<BatchQueryEngine::Query>& queries,
    std::vector<bool>* truth_a, std::vector<bool>* truth_b) {
  const EdgeId m = std::min(g_a.num_edges(), g_b.num_edges());
  for (EdgeId e = 0; e < m; ++e) {
    const std::vector<EdgeId> faults{e};
    truth_a->clear();
    truth_b->clear();
    for (const auto& q : queries) {
      truth_a->push_back(graph::connected_avoiding(g_a, q.s, q.t, faults));
      truth_b->push_back(graph::connected_avoiding(g_b, q.s, q.t, faults));
    }
    if (*truth_a != *truth_b) return faults;
  }
  ADD_FAILURE() << "no single-edge fault distinguishes the generations";
  return {};
}

class TempStore {
 public:
  explicit TempStore(const std::string& name)
      : path_(::testing::TempDir() + "ftc_swap_" + name + "_" +
              std::to_string(::getpid()) + ".ftcs") {
    cleanup();
  }
  ~TempStore() { cleanup(); }
  const std::string& path() const { return path_; }

 private:
  void cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".jrnl").c_str());
    for (unsigned k = 0; k < 8; ++k) {
      std::remove((path_ + ".shard" + std::to_string(k) + ".ftcs").c_str());
    }
  }
  std::string path_;
};

TEST(StoreSwap, EpochAdvancesAndAnswersFollowTheNewGeneration) {
  // Sparse (near-tree) graphs: the removed edges genuinely disconnect
  // pairs, and differently per generation, so the two ground truths are
  // distinguishable.
  const Graph g_a = graph::random_connected(40, 44, 3);
  const Graph g_b = graph::random_connected(40, 44, 21);
  const auto cfg = test_config(BackendKind::kCoreFtc, 3);
  TempStore store_a("basic_a");
  TempStore store_b("basic_b");
  make_scheme(g_a, cfg)->save(store_a.path());
  make_scheme(g_b, cfg)->save(store_b.path());

  std::vector<BatchQueryEngine::Query> queries;
  SplitMix64 rng(11);
  for (int i = 0; i < 400; ++i) {
    queries.push_back(
        {static_cast<VertexId>(rng.next_below(g_a.num_vertices())),
         static_cast<VertexId>(rng.next_below(g_a.num_vertices()))});
  }
  std::vector<bool> truth_a;
  std::vector<bool> truth_b;
  const std::vector<EdgeId> faults =
      find_distinguishing_faults(g_a, g_b, queries, &truth_a, &truth_b);
  ASSERT_FALSE(faults.empty());

  BatchQueryEngine session(load_scheme(store_a.path()),
                           FaultSpec::edges(faults));
  EXPECT_EQ(session.epoch(), 1u);

  EXPECT_EQ(session.run_sequential(queries), truth_a);
  EXPECT_EQ(session.last_run_epoch(), 1u);

  EXPECT_EQ(session.swap_store(load_scheme(store_b.path())), 2u);
  EXPECT_EQ(session.epoch(), 2u);
  EXPECT_EQ(session.run_sequential(queries), truth_b);
  EXPECT_EQ(session.run_parallel(queries, 4), truth_b);
  EXPECT_EQ(session.last_run_epoch(), 2u);

  // Swapping back re-prepares the same fault set against generation A.
  EXPECT_EQ(session.swap_store(load_scheme(store_a.path())), 3u);
  EXPECT_EQ(session.run_sequential(queries), truth_a);
  EXPECT_EQ(session.num_faults(), faults.size());
}

TEST(StoreSwap, SwapAcceptsShardedManifestsAndOpenViews) {
  const Graph g = graph::grid(6, 8);
  const auto cfg = test_config(BackendKind::kCoreFtc, 3);
  const auto scheme = make_scheme(g, cfg);
  TempStore flat("view_flat");
  TempStore manifest("view_manifest");
  scheme->save(flat.path());
  save_sharded(*scheme, manifest.path(), 4);

  const std::vector<EdgeId> faults{1, 17};
  std::vector<BatchQueryEngine::Query> queries;
  SplitMix64 rng(4);
  for (int i = 0; i < 200; ++i) {
    queries.push_back({static_cast<VertexId>(rng.next_below(g.num_vertices())),
                       static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }
  BatchQueryEngine session(*scheme, FaultSpec::edges(faults));
  const auto truth = session.run_sequential(queries);

  // Same labels behind three artifact shapes: answers never move.
  session.swap_store(load_scheme(flat.path()));
  EXPECT_EQ(session.run_sequential(queries), truth);
  session.swap_store(open_store_view(manifest.path()));
  EXPECT_EQ(session.run_parallel(queries, 3), truth);
  EXPECT_EQ(session.epoch(), 3u);
}

TEST(StoreSwap, OldGenerationReleasedWhenLastPinDrops) {
  const Graph g = graph::grid(5, 5);
  const auto cfg = test_config(BackendKind::kCoreFtc, 2);
  TempStore store_a("release_a");
  TempStore store_b("release_b");
  const auto scheme = make_scheme(g, cfg);
  scheme->save(store_a.path());
  scheme->save(store_b.path());

  auto view_a = LabelStoreView::open(store_a.path());
  std::weak_ptr<const LabelStoreView> weak_a = view_a;
  BatchQueryEngine session(load_scheme(view_a), FaultSpec{});
  view_a.reset();
  ASSERT_FALSE(weak_a.expired());  // generation 1 still pins the mapping

  session.swap_store(load_scheme(store_b.path()));
  // No in-flight queries: the swap retires generation 1 and the mmap
  // behind it drops immediately.
  EXPECT_TRUE(weak_a.expired());
  EXPECT_TRUE(session.connected(0, 24));
}

TEST(StoreSwap, CrossBackendSwapRebuildsWorkspaces) {
  const Graph g = graph::random_connected(32, 80, 5);
  TempStore store_core("cross_core");
  TempStore store_cycle("cross_cycle");
  make_scheme(g, test_config(BackendKind::kCoreFtc, 3))->save(store_core.path());
  make_scheme(g, test_config(BackendKind::kDp21CycleSpace, 3))
      ->save(store_cycle.path());

  const std::vector<EdgeId> faults{3, 9, 40};
  std::vector<BatchQueryEngine::Query> queries;
  SplitMix64 rng(9);
  for (int i = 0; i < 300; ++i) {
    queries.push_back({static_cast<VertexId>(rng.next_below(g.num_vertices())),
                       static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }
  std::vector<bool> truth;
  for (const auto& q : queries) {
    truth.push_back(graph::connected_avoiding(g, q.s, q.t, faults));
  }

  BatchQueryEngine session(load_scheme(store_core.path()),
                           FaultSpec::edges(faults));
  EXPECT_EQ(session.run_parallel(queries, 4), truth);
  session.swap_store(load_scheme(store_cycle.path()));
  EXPECT_EQ(session.scheme().backend(), BackendKind::kDp21CycleSpace);
  EXPECT_EQ(session.run_parallel(queries, 4), truth);
  session.swap_store(load_scheme(store_core.path()));
  EXPECT_EQ(session.run_sequential(queries), truth);
}

TEST(StoreSwap, RejectedSwapLeavesSessionServing) {
  const Graph g_big = graph::random_connected(30, 80, 2);
  const Graph g_small = graph::cycle(10);  // only 10 edges
  const auto cfg = test_config(BackendKind::kCoreFtc, 2);
  TempStore store_small("reject_small");
  make_scheme(g_small, cfg)->save(store_small.path());
  const auto scheme = make_scheme(g_big, cfg);

  const std::vector<EdgeId> faults{55};  // invalid in the small store
  BatchQueryEngine session(*scheme, FaultSpec::edges(faults));
  const bool before = session.connected(0, 20);
  EXPECT_THROW(session.swap_store(load_scheme(store_small.path())),
               std::invalid_argument);
  // The failed swap must not have touched the serving generation.
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(session.connected(0, 20), before);
}

TEST(StoreSwap, ResetFaultsKeepsEpochAndCurrentGeneration) {
  const Graph g = graph::random_connected(30, 70, 8);
  const auto cfg = test_config(BackendKind::kCoreFtc, 3);
  TempStore store("reset");
  const auto scheme = make_scheme(g, cfg);
  scheme->save(store.path());
  BatchQueryEngine session(load_scheme(store.path()), FaultSpec{});
  EXPECT_EQ(session.num_faults(), 0u);

  const std::vector<EdgeId> faults{4, 12};
  session.reset_faults(FaultSpec::edges(faults));
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(session.num_faults(), 2u);
  for (VertexId s = 0; s < 10; ++s) {
    EXPECT_EQ(session.connected(s, 20),
              graph::connected_avoiding(g, s, 20, faults));
  }
}

// reset_faults racing swap_store: once reset_faults returns, the
// serving generation — and every generation a concurrent or later swap
// installs — must carry the NEW spec. (Regression: a swap publishing
// between reset's snapshot and its install used to strand the session
// on the old fault set.)
TEST(StoreSwap, ConcurrentResetFaultsAndSwapStayCoherent) {
  const Graph g_a = graph::random_connected(36, 40, 15);
  const Graph g_b = graph::random_connected(36, 40, 51);
  const auto cfg = test_config(BackendKind::kCoreFtc, 3);
  TempStore store_a("coherent_a");
  TempStore store_b("coherent_b");
  make_scheme(g_a, cfg)->save(store_a.path());
  make_scheme(g_b, cfg)->save(store_b.path());

  std::vector<BatchQueryEngine::Query> queries;
  SplitMix64 rng(77);
  for (int i = 0; i < 128; ++i) {
    queries.push_back(
        {static_cast<VertexId>(rng.next_below(g_a.num_vertices())),
         static_cast<VertexId>(rng.next_below(g_a.num_vertices()))});
  }
  // Two specs whose truths differ on BOTH stores (empty vs a single
  // edge that disconnects pairs in both graphs), so serving a stale
  // spec is detectable no matter which epoch answers.
  const auto truth_of = [&](const Graph& g, const std::vector<EdgeId>& f) {
    std::vector<bool> t;
    for (const auto& q : queries) {
      t.push_back(graph::connected_avoiding(g, q.s, q.t, f));
    }
    return t;
  };
  std::vector<EdgeId> cut;
  for (EdgeId e = 0; e < std::min(g_a.num_edges(), g_b.num_edges()); ++e) {
    if (truth_of(g_a, {e}) != truth_of(g_a, {}) &&
        truth_of(g_b, {e}) != truth_of(g_b, {})) {
      cut = {e};
      break;
    }
  }
  ASSERT_FALSE(cut.empty()) << "no edge disconnects pairs in both graphs";
  // truth[store parity][spec index]: epoch 1 = A, swaps alternate B, A.
  const std::vector<bool> truth[2][2] = {
      {truth_of(g_b, {}), truth_of(g_b, cut)},
      {truth_of(g_a, {}), truth_of(g_a, cut)},
  };

  BatchQueryEngine session(load_scheme(store_a.path()), FaultSpec{});
  std::atomic<bool> done{false};
  std::thread swapper([&] {
    std::uint64_t swaps = 0;
    while (!done.load(std::memory_order_relaxed)) {
      session.swap_store(
          load_scheme(swaps % 2 == 0 ? store_b.path() : store_a.path()));
      ++swaps;
    }
  });

  std::uint64_t wrong = 0;
  for (int it = 0; it < 40; ++it) {
    const int spec_idx = it % 2;
    session.reset_faults(spec_idx == 0 ? FaultSpec{}
                                       : FaultSpec::edges(cut));
    const auto results = session.run_sequential(queries);
    const std::uint64_t ep = session.last_run_epoch();
    const std::vector<bool>& want = truth[ep % 2][spec_idx];
    for (std::size_t i = 0; i < queries.size(); ++i) {
      wrong += results[i] != want[i];
    }
  }
  done.store(true);
  swapper.join();
  EXPECT_EQ(wrong, 0u)
      << "a batch answered with a spec reset_faults had already replaced";
}

// swap_store() prefetches the incoming generation before publishing it:
// when the swap returns, every shard of a sharded store is already
// mapped and the flat route table is resolved — the new epoch never
// serves a cold lazy open.
TEST(StoreSwap, SwapPrefetchesShardedGenerationBeforePublish) {
  const Graph g = graph::grid(6, 8);
  const auto cfg = test_config(BackendKind::kCoreFtc, 3);
  const auto scheme = make_scheme(g, cfg);
  TempStore flat("warm_flat");
  TempStore manifest("warm_manifest");
  scheme->save(flat.path());
  save_sharded(*scheme, manifest.path(), 4);

  BatchQueryEngine session(load_scheme(flat.path()), FaultSpec{});
  const auto view = ShardedStoreView::open(manifest.path());
  EXPECT_EQ(view->shards_open(), 0u);
  session.swap_store(view);
  EXPECT_EQ(view->shards_open(), 4u);
  EXPECT_NE(view->routes(), nullptr);
  EXPECT_TRUE(session.connected(0, g.num_vertices() - 1));
}

// Explicit prefetch() racing a swap_store() that installs a generation
// over the SAME sharded view (whose install prefetches it again), while
// queries stream: publication must stay single-shot per shard and every
// answer correct.
TEST(StoreSwap, PrefetchRacesSwapStoreOverOneView) {
  const Graph g = graph::random_connected(48, 120, 19);
  const auto cfg = test_config(BackendKind::kCoreFtc, 3);
  const auto scheme = make_scheme(g, cfg);
  TempStore flat("pfrace_flat");
  TempStore manifest("pfrace_manifest");
  scheme->save(flat.path());
  save_sharded(*scheme, manifest.path(), 8);

  const std::vector<EdgeId> faults{2, 31};
  std::vector<BatchQueryEngine::Query> queries;
  SplitMix64 rng(6);
  for (int i = 0; i < 200; ++i) {
    queries.push_back({static_cast<VertexId>(rng.next_below(g.num_vertices())),
                       static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }
  std::vector<bool> truth;
  for (const auto& q : queries) {
    truth.push_back(graph::connected_avoiding(g, q.s, q.t, faults));
  }

  for (int round = 0; round < 3; ++round) {
    const auto view = ShardedStoreView::open(manifest.path());
    BatchQueryEngine session(load_scheme(flat.path()),
                             FaultSpec::edges(faults));
    std::thread prefetcher([&] { (void)view->prefetch(2); });
    std::thread swapper([&] { session.swap_store(view); });
    // Same labels both generations: answers never move mid-race.
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(session.run_sequential(queries), truth) << "round=" << round;
    }
    prefetcher.join();
    swapper.join();
    EXPECT_EQ(view->shards_open(), 8u);
    EXPECT_NE(view->routes(), nullptr);
    EXPECT_EQ(session.run_parallel(queries, 4), truth);
  }
}

// The acceptance stress: a session under continuous query load while
// another thread swaps stores back and forth. Every batch/query answer
// set must equal the ground truth of exactly the epoch it reports — no
// lost queries, no failures, no answers torn across generations.
TEST(StoreSwap, LiveSwapUnderLoadIsNeverTorn) {
  const unsigned f = 3;
  const Graph g_a = graph::random_connected(40, 44, 7);
  const Graph g_b = graph::random_connected(40, 44, 29);
  const auto cfg = test_config(BackendKind::kCoreFtc, f);
  TempStore store_a("stress_a");
  TempStore store_b("stress_b");
  make_scheme(g_a, cfg)->save(store_a.path());
  // Generation B is sharded: the swap path must not care.
  save_sharded(*make_scheme(g_b, cfg), store_b.path(), 4);

  std::vector<BatchQueryEngine::Query> queries;
  SplitMix64 rng(123);
  for (int i = 0; i < 256; ++i) {
    queries.push_back(
        {static_cast<VertexId>(rng.next_below(g_a.num_vertices())),
         static_cast<VertexId>(rng.next_below(g_a.num_vertices()))});
  }
  std::vector<bool> truth_a;
  std::vector<bool> truth_b;
  const std::vector<EdgeId> faults =
      find_distinguishing_faults(g_a, g_b, queries, &truth_a, &truth_b);
  ASSERT_FALSE(faults.empty());

  // Epoch 1 = A; the swapper alternates B, A, B, ... so odd epochs carry
  // truth_a and even epochs truth_b.
  BatchQueryEngine session(load_scheme(store_a.path()),
                           FaultSpec::edges(faults));
  std::atomic<std::uint64_t> batches_done{0};
  constexpr std::uint64_t kBatches = 60;
  std::thread swapper([&] {
    std::uint64_t swaps = 0;
    while (batches_done.load(std::memory_order_relaxed) < kBatches) {
      const bool to_b = swaps % 2 == 0;
      session.swap_store(load_scheme(to_b ? store_b.path() : store_a.path()));
      ++swaps;
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::uint64_t torn = 0;
  std::vector<std::uint64_t> epochs_seen;
  for (std::uint64_t b = 0; b < kBatches; ++b) {
    std::vector<bool> results;
    switch (b % 3) {
      case 0:
        results = session.run_sequential(queries);
        break;
      case 1:
        results = session.run_parallel(queries, 4);
        break;
      default: {
        results.reserve(queries.size());
        // Single-query path: each query may land on a different epoch,
        // so check each answer against its own reported epoch.
        for (const auto& q : queries) {
          const bool got = session.connected(q.s, q.t);
          const std::uint64_t ep = session.last_run_epoch();
          const bool want =
              (ep % 2 == 1 ? graph::connected_avoiding(g_a, q.s, q.t, faults)
                           : graph::connected_avoiding(g_b, q.s, q.t, faults));
          torn += got != want;
        }
        batches_done.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    const std::uint64_t epoch = session.last_run_epoch();
    epochs_seen.push_back(epoch);
    const std::vector<bool>& truth = epoch % 2 == 1 ? truth_a : truth_b;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      torn += results[i] != truth[i];
    }
    batches_done.fetch_add(1, std::memory_order_relaxed);
  }
  swapper.join();

  EXPECT_EQ(torn, 0u) << "answers inconsistent with their reported epoch";
  // The load really did span generations (not one epoch throughout).
  std::sort(epochs_seen.begin(), epochs_seen.end());
  epochs_seen.erase(std::unique(epochs_seen.begin(), epochs_seen.end()),
                    epochs_seen.end());
  EXPECT_GE(epochs_seen.size(), 2u)
      << "stress load never observed a swap; swapper too slow?";
}

// ------------------------------------------------------------------
// swap_store(path): the delta-push serving path. A swap onto a
// delta-pushed manifest must adopt the unchanged shards' mmaps from the
// outgoing generation (mapping only the changed ones) and replay the
// new path's journal sidecar.

// Serializes exactly like `inner` except edge `flip`, whose label bytes
// are inverted — a one-shard content change. Only used to WRITE stores;
// the flipped edge is never queried or faulted in these tests.
class FlipEdgeScheme : public ConnectivityScheme {
 public:
  FlipEdgeScheme(const ConnectivityScheme& inner, EdgeId flip)
      : inner_(inner), flip_(flip) {}
  BackendKind backend() const override { return inner_.backend(); }
  VertexId num_vertices() const override { return inner_.num_vertices(); }
  EdgeId num_edges() const override { return inner_.num_edges(); }
  std::size_t vertex_label_bits() const override {
    return inner_.vertex_label_bits();
  }
  std::size_t edge_label_bits() const override {
    return inner_.edge_label_bits();
  }
  const AdjacencyProvider* adjacency() const override {
    return inner_.adjacency();
  }
  void serialize_params(store::ByteWriter& out) const override {
    inner_.serialize_params(out);
  }
  void serialize_vertex_label(VertexId v,
                              store::ByteWriter& out) const override {
    inner_.serialize_vertex_label(v, out);
  }
  void serialize_edge_label(EdgeId e, store::ByteWriter& out) const override {
    if (e != flip_) {
      inner_.serialize_edge_label(e, out);
      return;
    }
    store::ByteWriter tmp;
    inner_.serialize_edge_label(e, tmp);
    std::vector<std::uint8_t> flipped(tmp.view().begin(), tmp.view().end());
    for (std::uint8_t& b : flipped) b ^= 0xff;
    out.bytes(flipped);
  }
  std::unique_ptr<Workspace> make_workspace() const override {
    throw std::logic_error("FlipEdgeScheme does not serve queries");
  }

 protected:
  std::unique_ptr<FaultSet> prepare_edge_faults(
      std::span<const EdgeId>) const override {
    throw std::logic_error("FlipEdgeScheme does not serve queries");
  }
  bool query_edges(VertexId, VertexId, const FaultSet&, Workspace&,
                   const QueryOptions&) const override {
    throw std::logic_error("FlipEdgeScheme does not serve queries");
  }

 private:
  const ConnectivityScheme& inner_;
  EdgeId flip_;
};

std::shared_ptr<const ShardedStoreView> serving_sharded_view(
    const BatchQueryEngine& session) {
  return std::dynamic_pointer_cast<const ShardedStoreView>(
      session.scheme().store_view());
}

TEST(StoreSwapDelta, SwapByPathAdoptsAllShardsOfZeroDeltaPush) {
  const Graph g = graph::random_connected(48, 120, 9);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  TempStore store_a("deltaswap_a");
  TempStore store_b("deltaswap_b");
  save_sharded(*scheme, store_a.path(), 4);

  const std::vector<EdgeId> faults{2, 31};
  std::vector<BatchQueryEngine::Query> queries;
  SplitMix64 rng(13);
  for (int i = 0; i < 200; ++i) {
    queries.push_back({static_cast<VertexId>(rng.next_below(g.num_vertices())),
                       static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }
  BatchQueryEngine session(load_scheme(store_a.path()),
                           FaultSpec::edges(faults));
  const auto baseline = session.run_sequential(queries);

  const DeltaPushStats stats =
      save_sharded_delta(*scheme, store_b.path(), store_a.path());
  ASSERT_EQ(stats.shards_reused, 4u);
  EXPECT_EQ(session.swap_store(store_b.path()), 2u);
  const auto view = serving_sharded_view(session);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->info().manifest_epoch, 2u);
  // Every shard byte-identical: the swap re-mapped nothing at all.
  EXPECT_EQ(view->shards_adopted(), 4u);
  EXPECT_EQ(view->prefetch().shards_opened, 0u);
  EXPECT_EQ(session.run_parallel(queries, 3), baseline);
}

TEST(StoreSwapDelta, SwapByPathMapsOnlyTheChangedShard) {
  const Graph g = graph::random_connected(48, 120, 25);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, 3));
  TempStore store_a("onechanged_a");
  TempStore store_b("onechanged_b");
  save_sharded(*scheme, store_a.path(), 4);

  // Faults and queries keep clear of edge 0 — the label this test
  // deliberately corrupts in shard 0 of generation B.
  const std::vector<EdgeId> faults{40, 77};
  std::vector<BatchQueryEngine::Query> queries;
  SplitMix64 rng(17);
  for (int i = 0; i < 200; ++i) {
    queries.push_back({static_cast<VertexId>(rng.next_below(g.num_vertices())),
                       static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }
  BatchQueryEngine session(load_scheme(store_a.path()),
                           FaultSpec::edges(faults));
  const auto baseline = session.run_sequential(queries);

  const FlipEdgeScheme patched(*scheme, 0);
  const DeltaPushStats stats =
      save_sharded_delta(patched, store_b.path(), store_a.path());
  ASSERT_EQ(stats.shards_written, 1u);
  ASSERT_EQ(stats.shards_reused, 3u);

  EXPECT_EQ(session.swap_store(store_b.path()), 2u);
  const auto view = serving_sharded_view(session);
  ASSERT_NE(view, nullptr);
  // The acceptance assertion: 3 of 4 shards adopted from the previous
  // generation, only the changed one freshly mapped — and the swap's
  // own prefetch already did that mapping (nothing left to open).
  EXPECT_EQ(view->shards_adopted(), 3u);
  EXPECT_EQ(view->shards_open(), 4u);
  const store::PrefetchStats after = view->prefetch();
  EXPECT_EQ(after.shards_adopted, 3u);
  EXPECT_EQ(after.shards_opened, 0u);
  // Vertex labels and the queried fault labels are untouched by the
  // flip, so every answer matches generation A.
  EXPECT_EQ(session.run_parallel(queries, 3), baseline);
}

TEST(StoreSwapDelta, JournalSidecarFollowsTheGeneration) {
  const unsigned f = 4;
  // Near-tree, so single deleted edges genuinely disconnect pairs.
  const Graph g = graph::random_connected(40, 44, 35);
  const auto scheme = make_scheme(g, test_config(BackendKind::kCoreFtc, f));
  TempStore store_a("jrnl_a");
  TempStore store_b("jrnl_b");
  TempStore store_c("jrnl_c");
  save_sharded(*scheme, store_a.path(), 4);

  std::vector<BatchQueryEngine::Query> queries;
  SplitMix64 rng(19);
  for (int i = 0; i < 200; ++i) {
    queries.push_back({static_cast<VertexId>(rng.next_below(g.num_vertices())),
                       static_cast<VertexId>(rng.next_below(g.num_vertices()))});
  }

  const std::vector<EdgeId> query_faults{21};
  // A journaled deletion the workload can actually observe on top of
  // the query's own fault.
  std::vector<EdgeId> journaled;
  for (EdgeId e = 0; e < g.num_edges() && journaled.empty(); ++e) {
    if (e == query_faults[0]) continue;
    const std::vector<EdgeId> both{e, query_faults[0]};
    for (const auto& q : queries) {
      if (graph::connected_avoiding(g, q.s, q.t, both) !=
          graph::connected_avoiding(g, q.s, q.t, query_faults)) {
        journaled = {e};
        break;
      }
    }
  }
  ASSERT_FALSE(journaled.empty()) << "no deletion is observable";
  std::vector<EdgeId> merged = journaled;
  merged.insert(merged.end(), query_faults.begin(), query_faults.end());

  DeletionJournal::append(
      journal_path_for(store_a.path()),
      open_store_view(store_a.path())->info().payload_checksum, f, journaled);

  BatchQueryEngine explicit_session(*scheme, FaultSpec::edges(merged));
  const auto truth_merged = explicit_session.run_sequential(queries);
  BatchQueryEngine plain_session(*scheme, FaultSpec::edges(query_faults));
  const auto truth_plain = plain_session.run_sequential(queries);
  ASSERT_NE(truth_merged, truth_plain)
      << "journaled deletions must be observable for this test to bite";

  // Generation A serves with its journal folded in.
  BatchQueryEngine session(load_scheme(store_a.path()),
                           FaultSpec::edges(query_faults));
  ASSERT_NE(session.scheme().journal(), nullptr);
  EXPECT_EQ(session.run_sequential(queries), truth_merged);

  // Generation B carries its own sidecar (journals bind to a digest, so
  // each generation gets its own): the swap replays it.
  save_sharded_delta(*scheme, store_b.path(), store_a.path());
  DeletionJournal::append(journal_path_for(store_b.path()),
                          open_store_view(store_b.path())->info().payload_checksum,
                          f, journaled);
  EXPECT_EQ(session.swap_store(store_b.path()), 2u);
  ASSERT_NE(session.scheme().journal(), nullptr);
  EXPECT_EQ(session.run_sequential(queries), truth_merged);

  // Generation C has no sidecar: after this swap the deletions are gone
  // and only the query's own faults apply.
  save_sharded_delta(*scheme, store_c.path(), store_b.path());
  EXPECT_EQ(session.swap_store(store_c.path()), 3u);
  EXPECT_EQ(session.scheme().journal(), nullptr);
  EXPECT_EQ(session.run_sequential(queries), truth_plain);
}

}  // namespace
}  // namespace ftc::core
