// Tests for polynomial arithmetic over GF(2^m).
#include <gtest/gtest.h>

#include "gf/gf2.hpp"
#include "gf/gf2_poly.hpp"
#include "util/common.hpp"

namespace ftc::gf {
namespace {

using F = GF2_64;

F rnd(SplitMix64& rng) { return F(rng.next()); }

Poly<F> random_poly(SplitMix64& rng, int deg) {
  if (deg < 0) return Poly<F>::zero();
  std::vector<F> c(deg + 1);
  for (auto& v : c) v = rnd(rng);
  if (c.back().is_zero()) c.back() = F::one();
  return Poly<F>(std::move(c));
}

TEST(Poly, DegreeAndNormalization) {
  EXPECT_EQ(Poly<F>::zero().degree(), -1);
  EXPECT_TRUE(Poly<F>::zero().is_zero());
  EXPECT_EQ(Poly<F>::constant(F::one()).degree(), 0);
  EXPECT_EQ(Poly<F>::x().degree(), 1);
  // Trailing zeros are stripped.
  Poly<F> p(std::vector<F>{F::one(), F::zero(), F::zero()});
  EXPECT_EQ(p.degree(), 0);
}

TEST(Poly, RingAxioms) {
  SplitMix64 rng(11);
  for (int it = 0; it < 100; ++it) {
    const auto a = random_poly(rng, static_cast<int>(rng.next_below(8)) - 1);
    const auto b = random_poly(rng, static_cast<int>(rng.next_below(8)) - 1);
    const auto c = random_poly(rng, static_cast<int>(rng.next_below(8)) - 1);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_TRUE((a + a).is_zero());
  }
}

TEST(Poly, MulDegree) {
  SplitMix64 rng(12);
  for (int it = 0; it < 50; ++it) {
    const int da = static_cast<int>(rng.next_below(10));
    const int db = static_cast<int>(rng.next_below(10));
    const auto a = random_poly(rng, da);
    const auto b = random_poly(rng, db);
    EXPECT_EQ((a * b).degree(), da + db);
  }
}

TEST(Poly, DivMod) {
  SplitMix64 rng(13);
  for (int it = 0; it < 200; ++it) {
    const auto a = random_poly(rng, static_cast<int>(rng.next_below(16)) - 1);
    const auto b = random_poly(rng, static_cast<int>(rng.next_below(8)));
    const auto [q, r] = divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.degree(), b.degree());
  }
  EXPECT_THROW(divmod(Poly<F>::x(), Poly<F>::zero()), std::invalid_argument);
}

TEST(Poly, GcdDividesBoth) {
  SplitMix64 rng(14);
  for (int it = 0; it < 100; ++it) {
    const auto f = random_poly(rng, static_cast<int>(rng.next_below(5)));
    const auto g = random_poly(rng, static_cast<int>(rng.next_below(5)));
    const auto h = random_poly(rng, static_cast<int>(rng.next_below(5)));
    const auto d = gcd(f * g, f * h);
    // f divides gcd(f*g, f*h).
    EXPECT_TRUE((d % f.monic()).is_zero());
    EXPECT_TRUE(((f * g) % d).is_zero());
    EXPECT_TRUE(((f * h) % d).is_zero());
  }
}

TEST(Poly, EvalIsRingHomomorphism) {
  SplitMix64 rng(15);
  for (int it = 0; it < 100; ++it) {
    const auto a = random_poly(rng, static_cast<int>(rng.next_below(8)) - 1);
    const auto b = random_poly(rng, static_cast<int>(rng.next_below(8)) - 1);
    const F x = rnd(rng);
    EXPECT_EQ((a + b).eval(x), a.eval(x) + b.eval(x));
    EXPECT_EQ((a * b).eval(x), a.eval(x) * b.eval(x));
  }
}

TEST(Poly, DerivativeProductRule) {
  SplitMix64 rng(16);
  for (int it = 0; it < 100; ++it) {
    const auto a = random_poly(rng, static_cast<int>(rng.next_below(8)) - 1);
    const auto b = random_poly(rng, static_cast<int>(rng.next_below(8)) - 1);
    EXPECT_EQ((a * b).derivative(),
              a.derivative() * b + a * b.derivative());
  }
  // In characteristic 2, (x^2)' = 0 and (x^3)' = x^2.
  const auto x = Poly<F>::x();
  EXPECT_TRUE((x * x).derivative().is_zero());
  EXPECT_EQ((x * x * x).derivative(), x * x);
}

TEST(Poly, FromRootsEvaluatesToZero) {
  SplitMix64 rng(17);
  for (int it = 0; it < 50; ++it) {
    std::vector<F> roots;
    for (int i = 0; i < 6; ++i) roots.push_back(rnd(rng));
    const auto p = poly_from_roots<F>(roots);
    EXPECT_EQ(p.degree(), 6);
    for (const F& r : roots) EXPECT_TRUE(p.eval(r).is_zero());
  }
}

TEST(Poly, MonicAndScaled) {
  SplitMix64 rng(18);
  const auto p = random_poly(rng, 5);
  const auto m = p.monic();
  EXPECT_EQ(m.leading(), F::one());
  EXPECT_EQ(m.degree(), p.degree());
  const F s(12345);
  EXPECT_EQ(p.scaled(s).coeff(3), p.coeff(3) * s);
}

TEST(Poly, Shifted) {
  const auto x = Poly<F>::x();
  EXPECT_EQ(Poly<F>::constant(F::one()).shifted(3), x * x * x);
  EXPECT_TRUE(Poly<F>::zero().shifted(5).is_zero());
}

}  // namespace
}  // namespace ftc::gf
